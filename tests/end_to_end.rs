//! Cross-crate integration tests: the full pipeline from data generation
//! through the simulated-GPU matrix profile to the paper's metrics.

use mdmp_core::baseline::{brute_force, mstamp};
use mdmp_core::{run_with_mode, MdmpConfig, MdmpError};
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_metrics::{embedded_recall, recall_rate, relative_accuracy};
use mdmp_precision::PrecisionMode;

fn pair(n: usize, d: usize, m: usize, seed: u64) -> mdmp_data::SyntheticPair {
    generate_pair(&SyntheticConfig {
        n_subsequences: n,
        dims: d,
        m,
        pattern: Pattern::GaussBump,
        embeddings: 3,
        noise: 0.3,
        pattern_amplitude: 1.1,
        seed,
    })
}

#[test]
fn fp64_gpu_pipeline_agrees_with_both_baselines() {
    let p = pair(160, 3, 12, 1);
    let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
    let cfg = MdmpConfig::new(12, PrecisionMode::Fp64).with_tiles(4);
    let run = run_with_mode(&p.reference, &p.query, &cfg, &mut sys).unwrap();
    let ms = mstamp(&p.reference, &p.query, 12, None, None);
    let bf = brute_force(&p.reference, &p.query, 12, None);
    assert!(recall_rate(&ms, &run.profile) > 0.999);
    assert!(relative_accuracy(&ms, &run.profile) > 0.999999);
    assert!(recall_rate(&bf, &run.profile) > 0.999);
    assert!(relative_accuracy(&bf, &ms) > 0.999999);
}

#[test]
fn precision_hierarchy_holds() {
    // FP32 at least as accurate as Mixed/FP16C, which beat plain FP16 —
    // the ordering of Fig. 2 (checked on relative accuracy with slack for
    // near-tie noise).
    let p = pair(1024, 4, 16, 2);
    let reference = mstamp(&p.reference, &p.query, 16, None, None);
    let acc = |mode: PrecisionMode| {
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let cfg = MdmpConfig::new(16, mode);
        let run = run_with_mode(&p.reference, &p.query, &cfg, &mut sys).unwrap();
        relative_accuracy(&reference, &run.profile)
    };
    let a32 = acc(PrecisionMode::Fp32);
    let a16 = acc(PrecisionMode::Fp16);
    let a_mixed = acc(PrecisionMode::Mixed);
    let a16c = acc(PrecisionMode::Fp16c);
    assert!(a32 > 0.9999, "FP32 ~ exact, got {a32}");
    assert!(
        a_mixed >= a16,
        "Mixed {a_mixed} must not lose to FP16 {a16}"
    );
    assert!(a16c >= a16, "FP16C {a16c} must not lose to FP16 {a16}");
    assert!(a16 > 0.9, "FP16 at n=1024 stays usable, got {a16}");
}

#[test]
fn tiling_improves_fp16_accuracy() {
    let p = pair(2048, 4, 16, 3);
    let reference = mstamp(&p.reference, &p.query, 16, None, None);
    let acc = |tiles: usize| {
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let cfg = MdmpConfig::new(16, PrecisionMode::Fp16).with_tiles(tiles);
        let run = run_with_mode(&p.reference, &p.query, &cfg, &mut sys).unwrap();
        relative_accuracy(&reference, &run.profile)
    };
    let one = acc(1);
    let many = acc(64);
    assert!(
        many > one,
        "64 tiles should improve FP16 accuracy: {one} -> {many}"
    );
}

#[test]
fn embedded_motifs_found_in_all_paper_modes() {
    let p = pair(1024, 4, 32, 4);
    for mode in PrecisionMode::PAPER_MODES {
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let cfg = MdmpConfig::new(32, mode);
        let run = run_with_mode(&p.reference, &p.query, &cfg, &mut sys).unwrap();
        let (recall, _, _) = embedded_recall(&run.profile, 3, &p.query_locs, &p.reference_locs, 2);
        assert!(
            recall >= 2.0 / 3.0,
            "{mode}: embedded recall {recall} too low"
        );
    }
}

#[test]
fn extension_modes_bf16_tf32_run_and_rank_sensibly() {
    let p = pair(512, 3, 16, 5);
    let reference = mstamp(&p.reference, &p.query, 16, None, None);
    let acc = |mode: PrecisionMode| {
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let run =
            run_with_mode(&p.reference, &p.query, &MdmpConfig::new(16, mode), &mut sys).unwrap();
        relative_accuracy(&reference, &run.profile)
    };
    let tf32 = acc(PrecisionMode::Tf32);
    let bf16 = acc(PrecisionMode::Bf16);
    let fp16 = acc(PrecisionMode::Fp16);
    // TF32 has FP16's mantissa with FP32's range: at least as good as FP16.
    assert!(tf32 >= fp16 - 1e-6, "TF32 {tf32} vs FP16 {fp16}");
    // BF16 (8-bit significand) is the least accurate format.
    assert!(
        bf16 <= fp16 + 0.02,
        "BF16 {bf16} should not beat FP16 {fp16}"
    );
    assert!(bf16 > 0.5, "BF16 still produces usable output, got {bf16}");
}

#[test]
fn self_join_never_matches_itself() {
    let p = pair(400, 2, 16, 6);
    let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
    let cfg = MdmpConfig::new(16, PrecisionMode::Fp64).self_join();
    let run = run_with_mode(&p.reference, &p.reference, &cfg, &mut sys).unwrap();
    let excl = cfg.exclusion_zone.unwrap();
    for k in 0..2 {
        for j in 0..run.profile.n_query() {
            let i = run.profile.index(j, k);
            assert!(i >= 0);
            assert!(
                (i as usize).abs_diff(j) >= excl,
                "trivial match at ({j}, {i}) with exclusion {excl}"
            );
        }
    }
}

#[test]
fn errors_are_reported_not_panicked() {
    let p = pair(64, 2, 8, 7);
    let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
    // m larger than the series.
    let bad = MdmpConfig::new(100_000, PrecisionMode::Fp64);
    assert!(matches!(
        run_with_mode(&p.reference, &p.query, &bad, &mut sys),
        Err(MdmpError::BadConfig(_))
    ));
    // Too many tiles.
    let bad_tiles = MdmpConfig::new(8, PrecisionMode::Fp64).with_tiles(1 << 20);
    assert!(run_with_mode(&p.reference, &p.query, &bad_tiles, &mut sys).is_err());
}

#[test]
fn oom_is_detected_for_oversized_tiles() {
    // A device with a tiny memory cannot hold the single-tile working set.
    let mut tiny_spec = DeviceSpec::a100();
    tiny_spec.mem_bytes = 1 << 10;
    let mut sys = GpuSystem::new(vec![tiny_spec]);
    let p = pair(256, 2, 8, 8);
    let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
    match run_with_mode(&p.reference, &p.query, &cfg, &mut sys) {
        Err(MdmpError::OutOfDeviceMemory { tile, .. }) => assert_eq!(tile, 0),
        other => panic!("expected OOM, got {other:?}"),
    }
}

//! Cross-crate integration tests of the beyond-paper extensions: cluster
//! execution, streaming updates, anytime computation, motif analysis, and
//! the FP8 modes — exercised together through the public API.

use mdmp_core::{
    run_on_cluster, run_with_mode, scrimp_anytime, top_discords, top_motifs, MdmpConfig,
    StreamingProfile, TileSchedule,
};
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_gpu_sim::{ClusterSystem, DeviceSpec, GpuSystem, Interconnect};
use mdmp_metrics::{recall_rate, relative_accuracy};
use mdmp_precision::PrecisionMode;

fn pair(n: usize, seed: u64) -> mdmp_data::SyntheticPair {
    generate_pair(&SyntheticConfig {
        n_subsequences: n,
        dims: 3,
        m: 16,
        pattern: Pattern::Chirp,
        embeddings: 3,
        noise: 0.3,
        pattern_amplitude: 1.2,
        seed,
    })
}

#[test]
fn four_ways_to_compute_the_same_profile_agree() {
    // Single GPU, multi-GPU cluster, streaming appends and the anytime
    // algorithm at full fraction must all agree in FP64.
    let p = pair(300, 1);
    let m = 16;
    let cfg = MdmpConfig::new(m, PrecisionMode::Fp64).with_tiles(4);

    let mut single = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
    let base = run_with_mode(&p.reference, &p.query, &cfg, &mut single)
        .unwrap()
        .profile;

    let mut cluster = ClusterSystem::homogeneous(DeviceSpec::v100(), 2, 2, Interconnect::default());
    let clustered = run_on_cluster(&p.reference, &p.query, &cfg, &mut cluster)
        .unwrap()
        .profile;
    assert_eq!(base, clustered, "cluster result differs");

    let keep = p.query.len() - 50;
    let head = p.query.window(0, keep);
    let tail: Vec<Vec<f64>> = (0..3).map(|k| p.query.dim(k)[keep..].to_vec()).collect();
    let mut streamed = StreamingProfile::new(
        p.reference.clone(),
        head,
        MdmpConfig::new(m, PrecisionMode::Fp64),
    )
    .unwrap();
    streamed.append_query(&tail).expect("append failed");
    assert!(
        recall_rate(&base, streamed.profile()) > 0.999,
        "streaming differs"
    );
    assert!(relative_accuracy(&base, streamed.profile()) > 0.999999);

    let (anytime, _) = scrimp_anytime(&p.reference, &p.query, m, 1.0, None, 7);
    assert!(recall_rate(&base, &anytime) > 0.999, "anytime differs");
}

#[test]
fn balanced_schedule_gives_identical_results_on_heterogeneous_systems() {
    let p = pair(256, 2);
    let mut mixed = GpuSystem::new(vec![
        DeviceSpec::a100(),
        DeviceSpec::v100(),
        DeviceSpec::v100(),
    ]);
    let rr = run_with_mode(
        &p.reference,
        &p.query,
        &MdmpConfig::new(16, PrecisionMode::Fp32).with_tiles(16),
        &mut mixed,
    )
    .unwrap();
    let bal = run_with_mode(
        &p.reference,
        &p.query,
        &MdmpConfig::new(16, PrecisionMode::Fp32)
            .with_tiles(16)
            .with_schedule(TileSchedule::Balanced),
        &mut mixed,
    )
    .unwrap();
    assert_eq!(
        rr.profile, bal.profile,
        "scheduling must not change results"
    );
    // Greedy balancing uses tile area as its work proxy; at tiny problem
    // sizes per-tile fixed overheads can cost it a sliver, so only require
    // near-parity here (the >1.2x gain at realistic scale is asserted in
    // crates/bench/tests/experiment_smoke.rs).
    assert!(
        bal.modeled_seconds <= rr.modeled_seconds * 1.05,
        "balanced far slower than round-robin: {} vs {}",
        bal.modeled_seconds,
        rr.modeled_seconds
    );
}

#[test]
fn fp8_modes_produce_usable_motifs_despite_heavy_quantization() {
    let p = pair(512, 3);
    let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
    for mode in [PrecisionMode::Fp8E4M3, PrecisionMode::Fp8E5M2] {
        let run = run_with_mode(
            &p.reference,
            &p.query,
            &MdmpConfig::new(16, mode).with_tiles(16),
            &mut sys,
        )
        .unwrap();
        assert!(
            run.profile.unset_fraction() < 0.05,
            "{mode}: {} unset",
            run.profile.unset_fraction()
        );
        // Even in FP8, the strongest embedded motif should rank among the
        // top few (quantized distances preserve gross ordering).
        let motifs = top_motifs(&run.profile, 2, 16, 5);
        assert!(!motifs.is_empty(), "{mode}: no motifs");
        let found = motifs
            .iter()
            .any(|mo| p.query_locs.iter().any(|&l| mo.query_pos.abs_diff(l) < 16));
        assert!(found, "{mode}: embedded motif not in top-5");
    }
}

#[test]
fn discords_and_motifs_are_disjoint_extremes() {
    let p = pair(400, 4);
    let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
    let run = run_with_mode(
        &p.reference,
        &p.query,
        &MdmpConfig::new(16, PrecisionMode::Fp64),
        &mut sys,
    )
    .unwrap();
    let motifs = top_motifs(&run.profile, 2, 16, 3);
    let discords = top_discords(&run.profile, 2, 16, 3);
    assert!(!motifs.is_empty() && !discords.is_empty());
    // The best motif distance is below the worst discord distance.
    assert!(motifs[0].distance < discords[0].distance);
    // No position is both a top motif and a top discord.
    for mo in &motifs {
        for di in &discords {
            assert!(mo.query_pos.abs_diff(di.query_pos) >= 16);
        }
    }
}

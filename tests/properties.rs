//! Property-based tests (proptest) on the core invariants.

use mdmp_core::baseline::brute_force;
use mdmp_core::kernels::{bitonic_sort, inclusive_scan_avg};
use mdmp_core::{run_with_mode, MdmpConfig};
use mdmp_data::MultiDimSeries;
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_precision::{Half, PrecisionMode};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![-1.0e4..1.0e4_f64, -1.0..1.0_f64, Just(0.0), Just(-0.0),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// binary16 round trip: widening a rounded value and re-rounding is the
    /// identity (rounding is idempotent).
    #[test]
    fn f16_rounding_is_idempotent(x in any::<f64>()) {
        let h = Half::from_f64(x);
        let rt = Half::from_f64(h.to_f64());
        if h.is_nan() {
            prop_assert!(rt.is_nan());
        } else {
            prop_assert_eq!(h.to_bits(), rt.to_bits());
        }
    }

    /// Rounding never moves a finite value by more than half a ulp
    /// (relative ~2^-11 for normals within range).
    #[test]
    fn f16_rounding_error_bounded(x in -60000.0..60000.0_f64) {
        let h = Half::from_f64(x).to_f64();
        if x.abs() >= 2f64.powi(-14) {
            prop_assert!((h - x).abs() <= x.abs() * 2f64.powi(-11) + 1e-30,
                "{x} -> {h}");
        } else {
            // Subnormal quantum is 2^-24.
            prop_assert!((h - x).abs() <= 2f64.powi(-25) * 1.0000001);
        }
    }

    /// f16 ordering agrees with f64 ordering of the widened values.
    #[test]
    fn f16_order_homomorphism(a in finite_f64(), b in finite_f64()) {
        let (ha, hb) = (Half::from_f64(a), Half::from_f64(b));
        if ha.to_f64() < hb.to_f64() {
            prop_assert!(ha < hb);
        }
        if ha.to_f64() == hb.to_f64() {
            prop_assert!(ha == hb);
        }
    }

    /// The Bitonic network sorts arbitrary f64 data exactly like the
    /// standard library sort.
    #[test]
    fn bitonic_matches_std_sort(mut xs in prop::collection::vec(finite_f64(), 1..=128)) {
        let pad = xs.len().next_power_of_two();
        xs.resize(pad, f64::INFINITY);
        let mut expected = xs.clone();
        expected.sort_by(|x, y| x.partial_cmp(y).unwrap());
        bitonic_sort(&mut xs);
        prop_assert_eq!(xs, expected);
    }

    /// The fan-in inclusive scan average equals the serial prefix average
    /// in f64.
    #[test]
    fn scan_avg_matches_serial(xs in prop::collection::vec(-100.0..100.0_f64, 1..=64)) {
        let d = xs.len();
        let mut col = xs.clone();
        col.resize(d.next_power_of_two(), f64::INFINITY);
        inclusive_scan_avg(&mut col, d);
        let mut run = 0.0;
        for (k, &x) in xs.iter().enumerate() {
            run += x;
            prop_assert!((col[k] - run / (k + 1) as f64).abs() < 1e-9,
                "k={k}: {} vs {}", col[k], run / (k + 1) as f64);
        }
    }

    /// FP64 streaming pipeline equals brute force on random series, for
    /// random shapes and any tiling.
    #[test]
    fn pipeline_matches_brute_force(
        seed in 0u64..1000,
        n_extra in 0usize..40,
        d in 1usize..4,
        m in 4usize..10,
        tiles in 1usize..5,
    ) {
        let len = 50 + n_extra + m;
        let dims: Vec<Vec<f64>> = (0..d).map(|k| {
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
            (0..len).map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            }).collect()
        }).collect();
        let series = MultiDimSeries::from_dims(dims.clone());
        let series_q = MultiDimSeries::from_dims(
            dims.iter().map(|v| v.iter().rev().copied().collect()).collect()
        );
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let cfg = MdmpConfig::new(m, PrecisionMode::Fp64).with_tiles(tiles);
        let run = run_with_mode(&series, &series_q, &cfg, &mut sys).unwrap();
        let bf = brute_force(&series, &series_q, m, None);
        for k in 0..d {
            for j in 0..run.profile.n_query() {
                prop_assert!((run.profile.value(j, k) - bf.value(j, k)).abs() < 1e-6,
                    "P[{j}][{k}] pipeline {} vs brute {}", run.profile.value(j, k), bf.value(j, k));
                prop_assert_eq!(run.profile.index(j, k), bf.index(j, k),
                    "I[{}][{}]", j, k);
            }
        }
    }

    /// Profile values are monotone non-decreasing in the dimensionality k
    /// (inclusive averages of a sorted ascending sequence), in every mode.
    #[test]
    fn profile_monotone_in_k(seed in 0u64..100) {
        let len = 96;
        let d = 3;
        let m = 8;
        let dims: Vec<Vec<f64>> = (0..d).map(|k| {
            (0..len).map(|t| ((t as f64 + seed as f64) * (0.21 + 0.05 * k as f64)).sin()).collect()
        }).collect();
        let series = MultiDimSeries::from_dims(dims);
        for mode in [PrecisionMode::Fp64, PrecisionMode::Fp16] {
            let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
            let cfg = MdmpConfig::new(m, mode);
            let run = run_with_mode(&series, &series, &cfg, &mut sys).unwrap();
            for j in 0..run.profile.n_query() {
                for k in 1..d {
                    let lo = run.profile.value(j, k - 1);
                    let hi = run.profile.value(j, k);
                    if lo.is_finite() && hi.is_finite() {
                        // Allow one reduced-precision ulp of slack.
                        prop_assert!(hi >= lo - lo.abs() * 2e-3 - 1e-3,
                            "{mode}: P[{j}][{}]={lo} > P[{j}][{k}]={hi}", k - 1);
                    }
                }
            }
        }
    }
}

//! Chaos suite: deterministic fault injection against the tile pipeline
//! and the job service.
//!
//! The invariants under test:
//!
//! 1. Any recoverable fault plan (kernel failures, stalls, poisoned
//!    planes) with retries enabled is *invisible*: the merged profile is
//!    bit-identical to the fault-free run, in every paper precision mode.
//! 2. Exhausted retries yield a clean typed error — never a partial
//!    profile.
//! 3. A failed job is reported over the JSON-lines wire, and the
//!    resilience counters show up on the Prometheus metrics page.

use mdmp_core::{run_with_mode, MatrixProfile, MdmpConfig, MdmpError, TileError};
use mdmp_data::MultiDimSeries;
use mdmp_faults::{FaultKind, FaultPlan};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_precision::PrecisionMode;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// The five precision modes of the source paper.
const PAPER_MODES: [PrecisionMode; 5] = [
    PrecisionMode::Fp64,
    PrecisionMode::Fp32,
    PrecisionMode::Fp16,
    PrecisionMode::Mixed,
    PrecisionMode::Fp16c,
];

fn series(seed: u64, len: usize, d: usize) -> MultiDimSeries {
    let dims: Vec<Vec<f64>> = (0..d)
        .map(|k| {
            let mut state = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(k as u64);
            (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
                })
                .collect()
        })
        .collect();
    MultiDimSeries::from_dims(dims)
}

fn run(
    reference: &MultiDimSeries,
    query: &MultiDimSeries,
    cfg: &MdmpConfig,
    gpus: usize,
) -> Result<mdmp_core::MdmpRun, MdmpError> {
    let mut system = GpuSystem::homogeneous(DeviceSpec::a100(), gpus);
    run_with_mode(reference, query, cfg, &mut system)
}

/// Bit-identical comparison: values by their f64 bit patterns, indices
/// exactly.
fn assert_bit_identical(a: &MatrixProfile, b: &MatrixProfile, label: &str) {
    assert_eq!(a.n_query(), b.n_query(), "{label}: query count");
    assert_eq!(a.dims(), b.dims(), "{label}: dims");
    for k in 0..a.dims() {
        for j in 0..a.n_query() {
            assert_eq!(
                a.value(j, k).to_bits(),
                b.value(j, k).to_bits(),
                "{label}: P[{j}][{k}] {} vs {}",
                a.value(j, k),
                b.value(j, k)
            );
            assert_eq!(a.index(j, k), b.index(j, k), "{label}: I[{j}][{k}]");
        }
    }
}

/// The fault kinds a retry always recovers from with a detectable
/// signature. Bit flips are excluded by design: a flip of a low mantissa
/// bit of a small value stays inside the validation bound and is the
/// documented residual risk (see `DESIGN.md` §9); they get dedicated unit
/// tests in `tile_exec` instead.
fn recoverable_kind(tag: u8) -> FaultKind {
    match tag % 4 {
        0 => FaultKind::Kernel,
        1 => FaultKind::PoisonNan,
        2 => FaultKind::PoisonInf,
        _ => FaultKind::Stall { millis: 2 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property: any seeded plan of recoverable faults, with the default
    /// retry budget, produces a profile bit-identical to the fault-free
    /// run — in all five paper modes.
    #[test]
    fn recoverable_fault_plans_are_invisible_with_retries(
        seed in 0u64..10_000,
        // Each element encodes one (tile, kind) directive.
        faults in prop::collection::vec(0u64..16, 1..=4),
        d in 1usize..3,
    ) {
        let reference = series(seed, 70, d);
        let query = series(seed ^ 0x9e3779b97f4a7c15, 70, d);
        let mut plan = FaultPlan::new().with_seed(seed);
        for &code in &faults {
            let (tile, tag) = ((code % 4) as usize, (code / 4) as u8);
            plan = plan.with_fault(tile, recoverable_kind(tag));
        }
        let plan = Arc::new(plan);
        for mode in PAPER_MODES {
            let cfg = MdmpConfig::new(8, mode).with_tiles(4);
            let clean = run(&reference, &query, &cfg, 2).unwrap();
            let faulted = run(
                &reference,
                &query,
                &cfg.clone().with_fault_plan(Some(Arc::clone(&plan))),
                2,
            )
            .unwrap();
            prop_assert!(faulted.faults_injected > 0, "{mode}: plan never fired");
            assert_bit_identical(&clean.profile, &faulted.profile, &format!("{mode}"));
        }
    }

    /// Property: when every attempt faults and the retry budget runs out,
    /// the run fails with a typed per-tile error — it never returns a
    /// partial profile.
    #[test]
    fn exhausted_retries_fail_typed_never_partial(
        seed in 0u64..10_000,
        tile in 0usize..4,
        mode_idx in 0usize..5,
    ) {
        let reference = series(seed, 70, 1);
        let plan = FaultPlan::new()
            .with_seed(seed)
            .with_fault(tile, FaultKind::Kernel)
            .always();
        let cfg = MdmpConfig::new(8, PAPER_MODES[mode_idx])
            .with_tiles(4)
            .with_fault_plan(Some(Arc::new(plan)))
            .with_tile_retries(1);
        match run(&reference, &reference, &cfg, 2) {
            Err(MdmpError::TileFailed { tile: t, attempts, source }) => {
                prop_assert_eq!(t, tile);
                prop_assert_eq!(attempts, 2);
                let is_kernel = matches!(source, TileError::Kernel { .. });
                prop_assert!(is_kernel, "source was {}", source);
            }
            other => prop_assert!(false, "expected TileFailed, got {:?}", other.map(|r| r.profile.n_query())),
        }
    }
}

/// Acceptance scenario: a seeded plan injecting one kernel failure, one
/// stall past the deadline, and one poisoned plane recovers to a
/// bit-identical profile in every paper mode.
#[test]
fn kernel_stall_and_poison_recover_bit_identical_in_all_modes() {
    let reference = series(11, 90, 2);
    let query = series(23, 90, 2);
    // The stall must sit well above the per-kernel deadline, and the
    // deadline well above a debug-build tile compute (~10 ms).
    let plan = Arc::new(
        FaultPlan::new()
            .with_seed(7)
            .with_fault(0, FaultKind::Kernel)
            .with_fault(1, FaultKind::Stall { millis: 600 })
            .with_fault(2, FaultKind::PoisonNan),
    );
    for mode in PAPER_MODES {
        let cfg = MdmpConfig::new(8, mode).with_tiles(4);
        let clean = run(&reference, &query, &cfg, 2).unwrap();
        let faulted = run(
            &reference,
            &query,
            &cfg.clone()
                .with_fault_plan(Some(Arc::clone(&plan)))
                .with_tile_deadline(Some(Duration::from_millis(250))),
            2,
        )
        .unwrap();
        assert_eq!(faulted.faults_injected, 3, "{mode}");
        assert_eq!(faulted.tile_retries, 3, "{mode}");
        assert_eq!(faulted.plane_validation_failures, 1, "{mode}");
        assert_bit_identical(&clean.profile, &faulted.profile, &format!("{mode}"));
    }
}

/// The same plan expressed as a spec string — the CLI/wire surface —
/// parses to the same behaviour.
#[test]
fn spec_string_plan_behaves_like_the_built_one() {
    let reference = series(31, 70, 1);
    let plan: FaultPlan = "seed=7,kernel@0,nan@2".parse().unwrap();
    let cfg = MdmpConfig::new(8, PrecisionMode::Fp16)
        .with_tiles(4)
        .with_fault_plan(Some(Arc::new(plan)));
    let clean = run(
        &reference,
        &reference,
        &MdmpConfig::new(8, PrecisionMode::Fp16).with_tiles(4),
        2,
    )
    .unwrap();
    let faulted = run(&reference, &reference, &cfg, 2).unwrap();
    assert_eq!(faulted.faults_injected, 2);
    assert_bit_identical(&clean.profile, &faulted.profile, "fp16 spec string");
}

/// Strategy: one arbitrary explicit directive, spanning every [`FaultKind`].
fn arb_directive() -> impl Strategy<Value = (usize, FaultKind)> {
    (0usize..64, 0u8..5, 0u64..10_000, 0u8..64).prop_map(|(tile, tag, millis, bit)| {
        let kind = match tag {
            0 => FaultKind::Kernel,
            1 => FaultKind::Stall { millis },
            2 => FaultKind::PoisonNan,
            3 => FaultKind::PoisonInf,
            _ => FaultKind::BitFlip { bit },
        };
        (tile, kind)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property: the spec-string grammar is a fixpoint under
    /// `Display -> parse -> Display`. Rendering any plan, parsing it
    /// back, and rendering again yields the identical string, so specs
    /// logged by the service replay the exact same plan.
    #[test]
    fn spec_string_display_parse_fixpoint(
        directives in prop::collection::vec(arb_directive(), 0..=5),
        seed in prop::option::of(1u64..u64::MAX),
        pkernel in prop::option::of(0.0f64..=1.0),
        pstall in prop::option::of(0.0f64..=1.0),
        pnan in prop::option::of(0.0f64..=1.0),
        stall_ms in prop::option::of(0u64..10_000),
        attempts in prop::option::of(prop_oneof![2u32..100, Just(u32::MAX)]),
        budget in prop::option::of(0u64..1_000_000),
        drop_conn in any::<bool>(),
    ) {
        let mut plan = FaultPlan::new();
        for &(tile, kind) in &directives {
            plan = plan.with_fault(tile, kind);
        }
        if let Some(s) = seed { plan = plan.with_seed(s); }
        if let Some(p) = pkernel { plan = plan.with_p_kernel(p); }
        if let Some(p) = pstall { plan = plan.with_p_stall(p); }
        if let Some(p) = pnan { plan = plan.with_p_nan(p); }
        if let Some(ms) = stall_ms { plan = plan.with_stall_ms(ms); }
        if let Some(n) = attempts { plan = plan.with_faulty_attempts(n); }
        if let Some(b) = budget { plan = plan.with_budget(b); }
        if drop_conn { plan = plan.with_connection_drop(); }

        let rendered = plan.to_string();
        let reparsed: FaultPlan = rendered.parse().unwrap_or_else(|e| {
            panic!("rendered spec `{rendered}` must reparse: {e}")
        });
        prop_assert_eq!(
            reparsed.to_string(),
            rendered.clone(),
            "Display -> parse -> Display is not a fixpoint for `{}`",
            rendered
        );
    }
}

mod wire {
    use super::*;
    use mdmp_service::{parse_job_spec, request, serve, Json, Service, ServiceConfig};

    fn metric_value(page: &str, name: &str) -> Option<f64> {
        page.lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l[name.len() + 1..].trim().parse().ok())
    }

    fn synthetic_job(extra: Vec<(&str, Json)>) -> Json {
        let mut pairs = vec![
            (
                "input",
                Json::obj(vec![
                    ("kind", Json::str("synthetic")),
                    ("n", Json::num(64.0)),
                    ("d", Json::num(1.0)),
                    ("seed", Json::num(5.0)),
                ]),
            ),
            ("m", Json::num(8.0)),
            ("mode", Json::str("fp16")),
            ("tiles", Json::num(8.0)),
            ("gpus", Json::num(2.0)),
        ];
        pairs.extend(extra);
        Json::obj(pairs)
    }

    fn submit(addr: &str, job: Json) -> u64 {
        let response = request(
            addr,
            &Json::obj(vec![("op", Json::str("submit")), ("job", job)]),
        )
        .unwrap();
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
        response.get("id").unwrap().as_u64().unwrap()
    }

    fn wait(addr: &str, id: u64) -> Json {
        request(
            addr,
            &Json::obj(vec![
                ("op", Json::str("wait")),
                ("id", Json::num(id as f64)),
                ("timeout_seconds", Json::num(60.0)),
            ]),
        )
        .unwrap()
        .get("job")
        .unwrap()
        .clone()
    }

    /// Acceptance: with retries disabled a faulted job fails with a typed
    /// error visible over the wire, and the retry / validation /
    /// quarantine counters are visible on the Prometheus page.
    #[test]
    fn failed_job_and_resilience_counters_over_the_wire() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            devices: 2,
            ..ServiceConfig::default()
        });
        let mut server = serve(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();

        // Job 1: three kernel faults on device 0's tiles plus one poisoned
        // plane; retries recover, device 0 is quarantined (threshold 3),
        // the job completes.
        let id = submit(
            &addr,
            synthetic_job(vec![
                (
                    "fault_plan",
                    Json::str("seed=7,kernel@0,kernel@2,kernel@4,nan@6"),
                ),
                ("tile_retries", Json::num(2.0)),
            ]),
        );
        let job = wait(&addr, id);
        assert_eq!(job.get("state").unwrap().as_str(), Some("done"), "{job}");

        // Job 2: the same kernel fault on every attempt with per-tile
        // retries disabled: the job must fail with the typed tile error.
        let id = submit(
            &addr,
            synthetic_job(vec![
                ("fault_plan", Json::str("seed=7,kernel@0,attempts=all")),
                ("tile_retries", Json::num(0.0)),
            ]),
        );
        let job = wait(&addr, id);
        assert_eq!(job.get("state").unwrap().as_str(), Some("failed"), "{job}");
        let error = job.get("error").unwrap().as_str().unwrap();
        assert!(error.contains("tile 0"), "typed error on the wire: {error}");

        // The Prometheus page reflects all of it.
        let page = request(&addr, &Json::obj(vec![("op", Json::str("metrics"))])).unwrap();
        let page = page.get("text").unwrap().as_str().unwrap().to_string();
        assert!(
            metric_value(&page, "mdmp_tile_retries_total").unwrap() >= 4.0,
            "{page}"
        );
        assert!(metric_value(&page, "mdmp_plane_validation_failures_total").unwrap() >= 1.0);
        assert!(metric_value(&page, "mdmp_device_quarantined").unwrap() >= 1.0);
        assert!(metric_value(&page, "mdmp_jobs_failed_total").unwrap() >= 1.0);

        server.stop();
        service.shutdown(true);
    }

    /// A malformed fault plan is rejected at submission, not at run time.
    #[test]
    fn bad_fault_plan_is_rejected_at_parse() {
        let job = synthetic_job(vec![("fault_plan", Json::str("explode@0"))]);
        let err = parse_job_spec(&job).unwrap_err();
        assert!(err.contains("fault_plan"), "{err}");
    }
}

//! Determinism and device-invariance guarantees: results must not depend on
//! how many (simulated) GPUs execute the tiles, on repeated execution, or
//! on the host thread count — the properties that make the accuracy
//! experiments meaningful.

use mdmp_core::{run_with_mode, MdmpConfig};
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_precision::PrecisionMode;

fn data() -> mdmp_data::SyntheticPair {
    generate_pair(&SyntheticConfig {
        n_subsequences: 600,
        dims: 3,
        m: 24,
        pattern: Pattern::Chirp,
        embeddings: 2,
        noise: 0.3,
        pattern_amplitude: 1.0,
        seed: 99,
    })
}

#[test]
fn repeated_runs_are_bitwise_identical() {
    let p = data();
    for mode in PrecisionMode::PAPER_MODES {
        let cfg = MdmpConfig::new(24, mode).with_tiles(9);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let a = run_with_mode(&p.reference, &p.query, &cfg, &mut sys).unwrap();
        let b = run_with_mode(&p.reference, &p.query, &cfg, &mut sys).unwrap();
        assert_eq!(a.profile, b.profile, "{mode} not deterministic");
    }
}

#[test]
fn results_invariant_to_gpu_count() {
    let p = data();
    for mode in [PrecisionMode::Fp64, PrecisionMode::Fp16] {
        let cfg = MdmpConfig::new(24, mode).with_tiles(16);
        let mut profiles = Vec::new();
        for gpus in [1usize, 2, 3, 8] {
            let mut sys = GpuSystem::homogeneous(DeviceSpec::v100(), gpus);
            let run = run_with_mode(&p.reference, &p.query, &cfg, &mut sys).unwrap();
            profiles.push(run.profile);
        }
        for other in &profiles[1..] {
            assert_eq!(&profiles[0], other, "{mode}: result depends on GPU count");
        }
    }
}

#[test]
fn results_invariant_to_device_generation() {
    // V100 vs A100 changes the *timing model* only, never the arithmetic —
    // "our implementation has a stable accuracy regardless of the GPU
    // generation" (§V-A).
    let p = data();
    let cfg = MdmpConfig::new(24, PrecisionMode::Fp16).with_tiles(4);
    let mut v = GpuSystem::homogeneous(DeviceSpec::v100(), 1);
    let mut a = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
    let rv = run_with_mode(&p.reference, &p.query, &cfg, &mut v).unwrap();
    let ra = run_with_mode(&p.reference, &p.query, &cfg, &mut a).unwrap();
    assert_eq!(rv.profile, ra.profile);
    assert!(
        ra.modeled_seconds < rv.modeled_seconds,
        "A100 is modelled faster"
    );
}

#[test]
fn results_invariant_to_rayon_thread_count() {
    // Kernels only parallelize over independent elements, so a 2-thread
    // pool must agree bitwise with the default pool.
    let p = data();
    let cfg = MdmpConfig::new(24, PrecisionMode::Fp16c).with_tiles(4);
    let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
    let default_pool = run_with_mode(&p.reference, &p.query, &cfg, &mut sys).unwrap();
    let small_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .unwrap()
        .install(|| {
            let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
            run_with_mode(&p.reference, &p.query, &cfg, &mut sys).unwrap()
        });
    assert_eq!(default_pool.profile, small_pool.profile);
}

#[test]
fn modeled_time_is_deterministic() {
    let p = data();
    let cfg = MdmpConfig::new(24, PrecisionMode::Fp32).with_tiles(16);
    let mut t = Vec::new();
    for _ in 0..3 {
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 2);
        let run = run_with_mode(&p.reference, &p.query, &cfg, &mut sys).unwrap();
        t.push((run.modeled_seconds, run.merge_seconds));
    }
    assert_eq!(t[0], t[1]);
    assert_eq!(t[1], t[2]);
}

//! Quickstart: compute a multi-dimensional matrix profile on a synthetic
//! reference/query pair in two precision modes and compare them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mdmp_core::{run_with_mode, MdmpConfig};
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_metrics::{recall_rate, relative_accuracy};
use mdmp_precision::PrecisionMode;

fn main() {
    // A 4-dimensional series with 2048 segments of length 32, containing a
    // repeating sine motif at known (random) locations.
    let data_cfg = SyntheticConfig {
        n_subsequences: 2048,
        dims: 4,
        m: 32,
        pattern: Pattern::Sine,
        embeddings: 3,
        noise: 0.3,
        pattern_amplitude: 1.0,
        seed: 2024,
    };
    let pair = generate_pair(&data_cfg);
    println!(
        "data: reference {} / query {} (m = {})",
        pair.reference, pair.query, data_cfg.m
    );

    // One simulated A100.
    let mut system = GpuSystem::homogeneous(DeviceSpec::a100(), 1);

    // Reference run in FP64, then the paper's Mixed mode (FP32
    // precalculation + FP16 main loop) with 16 tiles.
    let fp64 = run_with_mode(
        &pair.reference,
        &pair.query,
        &MdmpConfig::new(data_cfg.m, PrecisionMode::Fp64),
        &mut system,
    )
    .expect("FP64 run failed");
    let mixed = run_with_mode(
        &pair.reference,
        &pair.query,
        &MdmpConfig::new(data_cfg.m, PrecisionMode::Mixed).with_tiles(16),
        &mut system,
    )
    .expect("Mixed run failed");

    println!(
        "FP64 : modeled GPU time {:.4} s (host wall {:.2} s)",
        fp64.modeled_seconds, fp64.wall_seconds
    );
    println!(
        "Mixed: modeled GPU time {:.4} s (host wall {:.2} s)",
        mixed.modeled_seconds, mixed.wall_seconds
    );
    println!(
        "Mixed vs FP64: relative accuracy {:.2}%, index recall {:.2}%",
        relative_accuracy(&fp64.profile, &mixed.profile) * 100.0,
        recall_rate(&fp64.profile, &mixed.profile) * 100.0
    );

    // The best full-dimensional match of each embedded motif.
    let k = data_cfg.dims - 1;
    println!("\nembedded motifs (query position -> matched reference position):");
    for &loc in &pair.query_locs {
        println!(
            "  query {:>5} -> reference {:>5} (true: one of {:?}), distance {:.4}",
            loc,
            fp64.profile.index(loc, k),
            pair.reference_locs,
            fp64.profile.value(loc, k),
        );
    }
}

//! Online monitoring: maintain a matrix profile incrementally as new sensor
//! samples stream in, and watch a newly appearing motif get detected — the
//! STAMPI-style extension built on the tiling machinery.
//!
//! ```sh
//! cargo run --release --example streaming_monitor
//! ```

use mdmp_core::{top_motifs, MdmpConfig, StreamingProfile};
use mdmp_data::rng::{fill_gaussian, seeded};
use mdmp_data::synthetic::Pattern;
use mdmp_data::MultiDimSeries;
use mdmp_precision::PrecisionMode;

fn main() {
    let m = 32;
    let d = 2;
    let mut rng = seeded(2026);

    // Reference: historical data containing one known pattern instance.
    let ref_len = 1024 + m - 1;
    let mut ref_dims: Vec<Vec<f64>> = (0..d)
        .map(|_| {
            let mut v = vec![0.0; ref_len];
            fill_gaussian(&mut rng, &mut v, 0.3);
            v
        })
        .collect();
    let shape = Pattern::DampedOsc.render(m);
    for dim in ref_dims.iter_mut() {
        for (t, &s) in shape.iter().enumerate() {
            dim[500 + t] += 1.5 * s;
        }
    }
    let reference = MultiDimSeries::from_dims(ref_dims);

    // Query: starts as plain noise.
    let q0_len = 256 + m - 1;
    let q_dims: Vec<Vec<f64>> = (0..d)
        .map(|_| {
            let mut v = vec![0.0; q0_len];
            fill_gaussian(&mut rng, &mut v, 0.3);
            v
        })
        .collect();
    let query = MultiDimSeries::from_dims(q_dims);

    let cfg = MdmpConfig::new(m, PrecisionMode::Mixed);
    let mut monitor = StreamingProfile::new(reference, query, cfg).expect("init failed");
    println!(
        "monitoring started: {} reference segments, {} query segments",
        monitor.n_reference(),
        monitor.n_query()
    );

    // Stream 4 batches of new samples; the 3rd contains the pattern.
    for batch in 0..4 {
        let mut chunk: Vec<Vec<f64>> = (0..d)
            .map(|_| {
                let mut v = vec![0.0; 128];
                fill_gaussian(&mut rng, &mut v, 0.3);
                v
            })
            .collect();
        if batch == 2 {
            for dim in chunk.iter_mut() {
                for (t, &s) in shape.iter().enumerate() {
                    dim[40 + t] += 1.5 * s;
                }
            }
        }
        monitor.append_query(&chunk).expect("append failed");
        let motifs = top_motifs(monitor.profile(), d - 1, m, 1);
        let best = motifs.first();
        println!(
            "batch {batch}: {} query segments, best match distance {}",
            monitor.n_query(),
            best.map_or("-".into(), |mo| format!(
                "{:.3} (query {} -> reference {})",
                mo.distance, mo.query_pos, mo.match_pos
            ))
        );
        if let Some(mo) = best {
            if batch >= 2 && mo.match_pos.abs_diff(500) < m {
                println!("         ^ the streamed-in pattern matched the historical instance");
            }
        }
    }
}

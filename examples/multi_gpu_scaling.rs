//! Multi-GPU strong scaling (Pseudocode 2): the same computation on 1–8
//! simulated V100s with 16 tiles, reporting modeled times and parallel
//! efficiency — the runnable version of Fig. 5, including the odd-GPU-count
//! imbalance effect.
//!
//! ```sh
//! cargo run --release --example multi_gpu_scaling
//! ```

use mdmp_core::{estimate_run, run_with_mode, MdmpConfig};
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_precision::PrecisionMode;

fn main() {
    // Functional correctness demo at small scale: 4 GPUs produce exactly
    // the same profile as 1 GPU.
    let data_cfg = SyntheticConfig {
        n_subsequences: 1024,
        dims: 4,
        m: 32,
        pattern: Pattern::Chirp,
        embeddings: 2,
        noise: 0.3,
        pattern_amplitude: 1.0,
        seed: 5,
    };
    let pair = generate_pair(&data_cfg);
    let cfg = MdmpConfig::new(data_cfg.m, PrecisionMode::Fp32).with_tiles(16);

    let mut one = GpuSystem::homogeneous(DeviceSpec::v100(), 1);
    let run1 = run_with_mode(&pair.reference, &pair.query, &cfg, &mut one).unwrap();
    let mut four = GpuSystem::homogeneous(DeviceSpec::v100(), 4);
    let run4 = run_with_mode(&pair.reference, &pair.query, &cfg, &mut four).unwrap();
    assert_eq!(run1.profile, run4.profile);
    println!("functional check: 1-GPU and 4-GPU results are identical\n");

    // Paper-scale modelled scaling (n = 2^16, d = 2^8, 16 tiles on DGX-1).
    let (n, d) = (1 << 16, 256);
    println!("modeled DGX-1 scaling (n=2^16, d=2^8, 16 tiles, FP64):");
    println!("gpus   time (s)   speedup   efficiency");
    let mut t1 = 0.0;
    for gpus in 1..=8usize {
        let mut sys = GpuSystem::homogeneous(DeviceSpec::v100(), gpus);
        let est = estimate_run(n, n, d, &cfg_fp64(), &mut sys).unwrap();
        if gpus == 1 {
            t1 = est.modeled_seconds;
        }
        let speedup = t1 / est.modeled_seconds;
        println!(
            "{gpus:>4}   {:>8.2}   {speedup:>7.2}   {:>9.1}%{}",
            est.modeled_seconds,
            100.0 * speedup / gpus as f64,
            if gpus % 2 == 1 && gpus > 1 {
                "   <- odd-count imbalance"
            } else {
                ""
            }
        );
    }
}

fn cfg_fp64() -> MdmpConfig {
    MdmpConfig::new(64, PrecisionMode::Fp64).with_tiles(16)
}

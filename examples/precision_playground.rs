//! A tour of the reduced-precision substrate: binary16 rounding behaviour,
//! swamping, Kahan compensation, and the tile-size error-bound model that
//! motivates the paper's tiling scheme.
//!
//! ```sh
//! cargo run --release --example precision_playground
//! ```

use mdmp_precision::{analysis, Bf16, Half, KahanSum, PrecisionMode, Tf32};

fn main() {
    println!("== binary16 basics");
    println!("  1/3 in FP16      : {}", Half::from_f64(1.0 / 3.0));
    println!("  max finite       : {}", Half::MAX);
    println!("  65504 + 1        : {}", Half::MAX + Half::ONE);
    println!("  65504 * 2        : {}", Half::MAX * Half::from_f64(2.0));
    println!("  2^-24 (min subn.): {}", Half::MIN_POSITIVE_SUBNORMAL);

    println!("\n== swamping: summing 4096 ones");
    let mut plain = Half::ZERO;
    let mut kahan = KahanSum::<Half>::new();
    for _ in 0..4096 {
        plain += Half::ONE;
        kahan.add(Half::ONE);
    }
    println!("  plain FP16 sum   : {plain}   (stalls at 2^11!)");
    println!("  Kahan FP16 sum   : {}", kahan.value());

    println!("\n== the same value in every format");
    let x = std::f64::consts::PI;
    println!("  f64  : {x:.17}");
    println!("  f32  : {:.17}", x as f32 as f64);
    println!("  TF32 : {:.17}", Tf32::from_f64(x).to_f64());
    println!("  FP16 : {:.17}", Half::from_f64(x).to_f64());
    println!("  BF16 : {:.17}", Bf16::from_f64(x).to_f64());

    println!("\n== dot-product error bound e ~ n*eps (Section V-B)");
    for n in [256usize, 1024, 4096, 65536] {
        let b16 = analysis::qt_error_bound(n, 2f64.powi(-10));
        let b32 = analysis::qt_error_bound(n, 2f64.powi(-23));
        println!("  recurrence length {n:>6}: FP16 bound {b16:>10.4}, FP32 bound {b32:.2e}");
    }

    println!("\n== tiles needed for a 5% FP16 error bound");
    for n in [4096usize, 16384, 65536] {
        match analysis::recommended_tiles(n, PrecisionMode::Fp16, 0.05) {
            Some(tiles) => println!("  n = {n:>6}: {tiles} tiles"),
            None => println!("  n = {n:>6}: unreachable in FP16"),
        }
    }
}

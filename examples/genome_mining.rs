//! The §VI-B case study: mining repeated "gene" motifs in integer-encoded
//! genome sequences (A→1, C→2, T→3, G→4), where reduced precision shines
//! because the alphabet is tiny — and where tiling recovers FP16 accuracy.
//!
//! ```sh
//! cargo run --release --example genome_mining
//! ```

use mdmp_core::baseline::mstamp;
use mdmp_core::{run_with_mode, MdmpConfig};
use mdmp_data::genome::{generate, GenomeConfig};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_metrics::recall_rate;
use mdmp_precision::PrecisionMode;

fn main() {
    let cfg = GenomeConfig {
        len: 2048 + 127,
        channels: 8,
        gene_len: 128,
        genes: 4,
        mutation_rate: 0.02,
        seed: 0x6E0E,
    };
    let ds = generate(&cfg);
    let m = cfg.gene_len;
    println!(
        "synthetic genome: {} channels x {} bases, {} genes x 2 copies each (m = {m})",
        ds.series.dims(),
        ds.series.len(),
        cfg.genes
    );

    // FP64 CPU reference for the recall metric.
    let reference = mstamp(&ds.series, &ds.series, m, None, None);

    println!("\nrecall of the matrix-profile index vs tile count:");
    println!("tiles   FP16      Mixed     FP16C");
    for tiles in [1usize, 4, 16] {
        print!("{tiles:<6}");
        for mode in [
            PrecisionMode::Fp16,
            PrecisionMode::Mixed,
            PrecisionMode::Fp16c,
        ] {
            let run_cfg = MdmpConfig::new(m, mode).with_tiles(tiles);
            let mut system = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
            let run = run_with_mode(&ds.series, &ds.series, &run_cfg, &mut system)
                .expect("genome run failed");
            print!("  {:>7.2}%", recall_rate(&reference, &run.profile) * 100.0);
        }
        println!();
    }

    // Show that a gene copy pair is discovered: the profile index at one
    // copy should point at (or near) the other copy of the same gene.
    println!("\ndiscovered gene-copy pairs (channel 0):");
    let copies = &ds.gene_copies[0];
    let k = ds.series.dims() - 1;
    for &(gene, start) in copies.iter().take(4) {
        if start < reference.n_query() {
            println!(
                "  gene {gene} copy at {start:>5}: 1-dim best match at {:>5} (distance {:.3})",
                reference.index(start, 0),
                reference.value(start, 0)
            );
        }
    }
    let _ = k;
}

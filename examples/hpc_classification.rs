//! The §VI-A case study: classify applications running on an HPC system
//! from multi-sensor monitoring data, using a nearest-neighbour classifier
//! on matrix-profile indices — per precision mode.
//!
//! ```sh
//! cargo run --release --example hpc_classification
//! ```

use mdmp_core::{run_with_mode, MdmpConfig};
use mdmp_data::hpcoda::{generate, HpcOdaConfig};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_metrics::{nn_classify, ClassificationReport};
use mdmp_precision::PrecisionMode;

fn main() {
    let cfg = HpcOdaConfig {
        sensors: 16,
        phase_len: 128,
        phases: 24,
        noise: 0.08,
        seed: 0x0DA,
    };
    let m = 32;
    let ds = generate(&cfg);
    let (reference, query) = ds.split_half();
    println!(
        "HPC-ODA-like dataset: {} sensors x {} samples, phases of {} samples",
        ds.series.dims(),
        ds.series.len(),
        cfg.phase_len
    );

    let d = reference.series.dims();
    let n_q = query.series.n_segments(m);
    // Score only phase-pure query segments (segments straddling a phase
    // boundary have no single true class).
    let pure: Vec<usize> = (0..n_q)
        .filter(|&j| {
            let first = query.labels[j];
            query.labels[j..j + m].iter().all(|&l| l == first)
        })
        .collect();
    let truth: Vec<_> = pure.iter().map(|&j| query.labels[j]).collect();

    println!("\nmode    accuracy  macro-F1   modeled-s");
    for mode in PrecisionMode::PAPER_MODES {
        let run_cfg = MdmpConfig::new(m, mode);
        let mut system = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let run = run_with_mode(&reference.series, &query.series, &run_cfg, &mut system)
            .expect("classification run failed");
        let all_pred = nn_classify(&run.profile, d - 1, &reference.labels);
        let pred: Vec<_> = pure.iter().map(|&j| all_pred[j]).collect();
        let report = ClassificationReport::new(&pred, &truth);
        println!(
            "{:<7} {:>7.3}  {:>8.3}  {:>9.4}",
            mode.label(),
            report.accuracy(),
            report.macro_f1(),
            run.modeled_seconds
        );
        if mode == PrecisionMode::Fp64 {
            println!("        per-class F1 (FP64):");
            for class in report.classes() {
                println!("          {:<12} {:.3}", class.label(), report.f1(class));
            }
            println!("\nconfusion matrix (FP64):\n{report}");
        }
    }
}

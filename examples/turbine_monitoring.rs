//! The §VI-C case study: detect gas-turbine startup events by matching a
//! query trace against a reference trace, with the relaxed recall metric
//! (a detection within 5% of the window length counts).
//!
//! ```sh
//! cargo run --release --example turbine_monitoring
//! ```

use mdmp_core::{run_with_mode, MdmpConfig};
use mdmp_data::turbine::{generate_series, SeriesKind, Startup, TurbineConfig};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_metrics::relaxed_tolerance;
use mdmp_precision::PrecisionMode;

fn main() {
    let n = 4096;
    let m = 256;
    let qcfg = TurbineConfig::default_case_study(n, m, 1, 41);
    let rcfg = TurbineConfig::default_case_study(n, m, 2, 99);

    // Query: a trace with both startup types; reference: a P2-only trace
    // from the other machine (the hardest pairing of Fig. 12).
    let query = generate_series(SeriesKind::Both, &qcfg);
    let reference = generate_series(SeriesKind::OnlyP2, &rcfg);
    println!("query events: {:?}", query.events);
    println!("reference events: {:?}", reference.events);

    let tol = relaxed_tolerance(0.05, m);
    println!("relaxation: 5% of m = {tol} samples\n");

    println!("mode    detection of the P2 startup");
    for mode in PrecisionMode::PAPER_MODES {
        let cfg = MdmpConfig::new(m, mode);
        let mut system = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let run = run_with_mode(&reference.series, &query.series, &cfg, &mut system)
            .expect("turbine run failed");
        // Locate the query's P2 event and check where its best match lands.
        let (_, q_loc) = *query
            .events
            .iter()
            .find(|(kind, _)| *kind == Startup::P2)
            .expect("query contains P2");
        let (_, r_loc) = reference.events[0];
        let found = run.profile.index(q_loc, 0);
        let verdict = if found >= 0 && (found as usize).abs_diff(r_loc) <= tol {
            "DETECTED"
        } else {
            "missed"
        };
        println!(
            "{:<7} query {} -> match {} (true {}, |err| {}): {}",
            mode.label(),
            q_loc,
            found,
            r_loc,
            if found >= 0 {
                (found as usize).abs_diff(r_loc).to_string()
            } else {
                "-".into()
            },
            verdict
        );
    }
}

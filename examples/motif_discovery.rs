//! Self-join motif discovery: find the top multi-dimensional motifs of a
//! single series (the classic mSTAMP use case), with the trivial-match
//! exclusion zone.
//!
//! ```sh
//! cargo run --release --example motif_discovery
//! ```

use mdmp_core::{run_with_mode, MdmpConfig};
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_precision::PrecisionMode;

/// Extract the `top` non-overlapping motifs (query position, match
/// position, distance) from the k-dimensional profile.
fn top_motifs(
    profile: &mdmp_core::MatrixProfile,
    k: usize,
    m: usize,
    top: usize,
) -> Vec<(usize, i64, f64)> {
    let mut candidates: Vec<(usize, i64, f64)> = profile
        .profile_dim(k)
        .iter()
        .zip(profile.index_dim(k))
        .enumerate()
        .filter(|(_, (p, _))| p.is_finite())
        .map(|(j, (&p, &i))| (j, i, p))
        .collect();
    candidates.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
    let mut picked: Vec<(usize, i64, f64)> = Vec::new();
    for c in candidates {
        if picked
            .iter()
            .all(|p| c.0.abs_diff(p.0) >= m && (c.1 - p.1).unsigned_abs() as usize >= m)
        {
            picked.push(c);
            if picked.len() == top {
                break;
            }
        }
    }
    picked
}

fn main() {
    // A 6-dimensional series with a damped-oscillation motif embedded four
    // times; the self-join should pair the embeddings with each other.
    let data_cfg = SyntheticConfig {
        n_subsequences: 4096,
        dims: 6,
        m: 48,
        pattern: Pattern::DampedOsc,
        embeddings: 4,
        noise: 0.3,
        pattern_amplitude: 1.2,
        seed: 7,
    };
    let pair = generate_pair(&data_cfg);
    let series = &pair.reference;
    println!(
        "self-join on {} (m = {}, exclusion zone = {})",
        series,
        data_cfg.m,
        data_cfg.m.div_ceil(4)
    );
    println!("embedded motif locations: {:?}", pair.reference_locs);

    let cfg = MdmpConfig::new(data_cfg.m, PrecisionMode::Fp32).self_join();
    let mut system = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
    let run = run_with_mode(series, series, &cfg, &mut system).expect("self-join failed");

    for k in [0, data_cfg.dims - 1] {
        println!("\ntop motifs of the {}-dimensional profile:", k + 1);
        for (j, i, dist) in top_motifs(&run.profile, k, data_cfg.m, 4) {
            let marker = if pair
                .reference_locs
                .iter()
                .any(|&l| j.abs_diff(l) < data_cfg.m || (i as usize).abs_diff(l) < data_cfg.m)
            {
                " <- embedded"
            } else {
                ""
            };
            println!("  segment {j:>5} <-> {i:>5}  distance {dist:.4}{marker}");
        }
    }
    println!(
        "\nmodeled GPU time: {:.4} s, host wall: {:.2} s",
        run.modeled_seconds, run.wall_seconds
    );
}

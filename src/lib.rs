//! # mdmp-suite
//!
//! Facade crate of the reproduction of *Exploiting Reduced Precision for
//! GPU-based Time Series Mining* (Ju, Raoofy, Yang, Laure, Schulz —
//! IPDPS 2022). Re-exports the workspace crates under one roof and hosts
//! the runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`).
//!
//! * [`precision`] — from-scratch binary16 / bfloat16 / TF32 arithmetic,
//!   Kahan summation, precision modes, error-bound analysis;
//! * [`gpu`] — the software GPU execution model (devices, streams, memory,
//!   calibrated roofline timing);
//! * [`data`] — the multi-dimensional series container and the workload
//!   generators for all case studies;
//! * [`core`] — the multi-dimensional matrix profile: single-tile and
//!   multi-tile/multi-GPU algorithms, all precision modes, baselines;
//! * [`metrics`] — the paper's accuracy metrics.
//!
//! ## Quick start
//!
//! ```
//! use mdmp_suite::core::{run_with_mode, MdmpConfig};
//! use mdmp_suite::data::synthetic::{generate_pair, SyntheticConfig};
//! use mdmp_suite::gpu::{DeviceSpec, GpuSystem};
//! use mdmp_suite::precision::PrecisionMode;
//!
//! let mut data_cfg = SyntheticConfig::paper_default();
//! data_cfg.n_subsequences = 256;
//! data_cfg.dims = 4;
//! data_cfg.m = 16;
//! let pair = generate_pair(&data_cfg);
//!
//! let cfg = MdmpConfig::new(16, PrecisionMode::Mixed).with_tiles(4);
//! let mut system = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
//! let run = run_with_mode(&pair.reference, &pair.query, &cfg, &mut system).unwrap();
//! assert!(run.profile.value(0, 3).is_finite());
//! ```

pub use mdmp_core as core;
pub use mdmp_data as data;
pub use mdmp_gpu_sim as gpu;
pub use mdmp_metrics as metrics;
pub use mdmp_precision as precision;

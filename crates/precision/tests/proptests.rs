//! Property-based tests of the from-scratch float formats.

use mdmp_precision::{Bf16, Flex, Half, Real, Tf32};
use proptest::prelude::*;

/// `Flex<8, 23>` has exactly the geometry of IEEE binary32, so its rounding
/// must agree with the hardware's `f64 → f32` conversion bit for bit.
fn flex32_matches_hardware(x: f64) -> Result<(), TestCaseError> {
    let hw = x as f32;
    let fx = Flex::<8, 23>::from_f64(x);
    if hw.is_nan() {
        prop_assert!(fx.is_nan());
    } else {
        prop_assert_eq!(
            hw as f64,
            fx.to_f64(),
            "x = {}: hardware {} vs flex {}",
            x,
            hw,
            fx.to_f64()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn flex_8_23_equals_f32_everywhere(x in any::<f64>()) {
        flex32_matches_hardware(x)?;
    }

    #[test]
    fn flex_8_23_equals_f32_in_subnormal_range(x in -1.0e-37..1.0e-37_f64) {
        flex32_matches_hardware(x)?;
    }

    /// Rounding is monotone: a ≤ b implies round(a) ≤ round(b).
    #[test]
    fn half_rounding_is_monotone(a in -1.0e5..1.0e5_f64, b in -1.0e5..1.0e5_f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Half::from_f64(lo).to_f64() <= Half::from_f64(hi).to_f64());
    }

    #[test]
    fn bf16_rounding_is_monotone(a in -1.0e30..1.0e30_f64, b in -1.0e30..1.0e30_f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Bf16::from_f64(lo).to_f64() <= Bf16::from_f64(hi).to_f64());
    }

    /// Negation is exact in every format (sign-bit flip).
    #[test]
    fn negation_is_exact(x in -60000.0..60000.0_f64) {
        prop_assert_eq!((-Half::from_f64(x)).to_f64(), -Half::from_f64(x).to_f64());
        prop_assert_eq!((-Bf16::from_f64(x)).to_f64(), -Bf16::from_f64(x).to_f64());
        prop_assert_eq!((-Tf32::from_f64(x)).to_f64(), -Tf32::from_f64(x).to_f64());
    }

    /// Addition commutes (each operation is a deterministic rounding of the
    /// exact sum).
    #[test]
    fn addition_commutes(a in -100.0..100.0_f64, b in -100.0..100.0_f64) {
        let (ha, hb) = (Half::from_f64(a), Half::from_f64(b));
        prop_assert_eq!((ha + hb).to_f64(), (hb + ha).to_f64());
        let (ta, tb) = (Tf32::from_f64(a), Tf32::from_f64(b));
        prop_assert_eq!((ta + tb).to_f64(), (tb + ta).to_f64());
    }

    /// x + 0 == x and x * 1 == x for representable x.
    #[test]
    fn additive_multiplicative_identities(x in -60000.0..60000.0_f64) {
        let h = Half::from_f64(x);
        prop_assert_eq!((h + Half::ZERO).to_f64(), h.to_f64());
        prop_assert_eq!((h * Half::ONE).to_f64(), h.to_f64());
    }

    /// total_cmp is transitive and consistent with the widened order.
    #[test]
    fn total_order_is_lawful(
        a in any::<u16>(),
        b in any::<u16>(),
        c in any::<u16>(),
    ) {
        use std::cmp::Ordering;
        let (ha, hb, hc) = (Half::from_bits(a), Half::from_bits(b), Half::from_bits(c));
        // Antisymmetry.
        prop_assert_eq!(ha.total_cmp(&hb), hb.total_cmp(&ha).reverse());
        // Transitivity.
        if ha.total_cmp(&hb) != Ordering::Greater && hb.total_cmp(&hc) != Ordering::Greater {
            prop_assert_ne!(ha.total_cmp(&hc), Ordering::Greater);
        }
        // Consistency with the numeric order on non-NaN values.
        if !ha.is_nan() && !hb.is_nan() && ha.to_f64() < hb.to_f64() {
            prop_assert_eq!(ha.total_cmp(&hb), Ordering::Less);
        }
    }

    /// Kahan summation satisfies its classical error bound
    /// `|err| ≤ 2ε·Σ|xᵢ| + O(nε²)` — independent of n, unlike plain
    /// summation whose bound grows linearly. (Plain summation can win on
    /// individual lucky inputs, so per-case dominance is NOT a property.)
    #[test]
    fn kahan_satisfies_compensated_bound(
        values in prop::collection::vec(-10.0..10.0_f64, 8..200)
    ) {
        use mdmp_precision::KahanSum;
        let hs: Vec<Half> = values.iter().map(|&v| Half::from_f64(v)).collect();
        let exact: f64 = hs.iter().map(|h| h.to_f64()).sum();
        let sum_abs: f64 = hs.iter().map(|h| h.to_f64().abs()).sum();
        let mut kahan = KahanSum::<Half>::new();
        for &h in &hs {
            kahan.add(h);
        }
        let err_kahan = (kahan.value().to_f64() - exact).abs();
        let eps = 2f64.powi(-11); // unit roundoff of binary16
        let n = hs.len() as f64;
        let bound = (2.0 * eps + 6.0 * n * eps * eps) * sum_abs
            + exact.abs() * eps; // final representation rounding
        prop_assert!(err_kahan <= bound + 1e-12,
            "kahan error {} exceeds compensated bound {} (exact {})",
            err_kahan, bound, exact);
    }

    /// On long same-sign accumulations (the matrix-profile precalculation
    /// pattern), Kahan IS strictly better than plain FP16 summation once
    /// swamping kicks in.
    #[test]
    fn kahan_beats_plain_on_long_positive_sums(
        x in 0.5..2.0_f64,
        n in 3000usize..6000,
    ) {
        use mdmp_precision::KahanSum;
        let h = Half::from_f64(x);
        let exact = h.to_f64() * n as f64;
        let mut plain = Half::ZERO;
        let mut kahan = KahanSum::<Half>::new();
        for _ in 0..n {
            plain += h;
            kahan.add(h);
        }
        let err_plain = (plain.to_f64() - exact).abs();
        let err_kahan = (kahan.value().to_f64() - exact).abs();
        prop_assert!(err_kahan < err_plain,
            "n={}: kahan {} not better than plain {}", n, err_kahan, err_plain);
    }

    /// Widening then re-rounding is the identity for every format
    /// (idempotent rounding).
    #[test]
    fn tf32_quantization_idempotent(x in any::<f32>()) {
        let t = Tf32::from_f32(x);
        let rt = Tf32::from_f64(t.to_f64());
        if t.to_f64().is_nan() {
            prop_assert!(rt.to_f64().is_nan());
        } else {
            prop_assert_eq!(rt.to_f64(), t.to_f64());
        }
    }

    /// Flex formats respect their advertised MAX_FINITE: values beyond it
    /// (past the rounding midpoint) overflow to infinity, values at it stay
    /// finite.
    #[test]
    fn flex_overflow_boundary(scale in 1.0001f64..1.5) {
        type F = Flex<4, 3>;
        let max = <F as Real>::MAX_FINITE;
        prop_assert!(F::from_f64(max).is_finite());
        prop_assert!(!F::from_f64(max * 1.07 * scale).is_finite());
    }
}

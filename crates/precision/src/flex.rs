//! Parametric ("FlexFloat-style") reduced-precision floats.
//!
//! The paper's related work (§II) cites Fernandez's matrix-profile study
//! with FlexFloat [18], a software library for transprecision computing
//! with arbitrary exponent/mantissa widths. [`Flex<E, M>`] provides the
//! same capability natively: an IEEE-754-style binary float with `E`
//! exponent bits and `M` explicit mantissa bits (plus sign), with
//! round-to-nearest-even conversions, subnormals, infinities and NaN.
//!
//! Two aliases wire the contemporary 8-bit formats into the precision-mode
//! system as extension studies beyond the paper's BF16/TF32 outlook:
//! [`Fp8E4M3`] and [`Fp8E5M2`] (IEEE-style variants: unlike the OCP FP8
//! spec, E4M3 here keeps its all-ones exponent reserved for Inf/NaN).
//!
//! ```
//! use mdmp_precision::{Flex, Half, Real};
//!
//! // Flex<5, 10> is bit-compatible with binary16.
//! let x = 1.0 / 3.0;
//! assert_eq!(Flex::<5, 10>::from_f64(x).to_f64(), Half::from_f64(x).to_f64());
//! ```

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An IEEE-754-style float with `E` exponent bits and `M` explicit mantissa
/// bits, stored in the low `1 + E + M` bits of a `u32`.
///
/// Constraints (asserted at construction): `1 ≤ E ≤ 8`, `1 ≤ M ≤ 23`,
/// so every value widens exactly to `f64`.
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct Flex<const E: u32, const M: u32>(u32);

/// IEEE-style FP8 with 4 exponent and 3 mantissa bits.
pub type Fp8E4M3 = Flex<4, 3>;
/// IEEE-style FP8 with 5 exponent and 2 mantissa bits.
pub type Fp8E5M2 = Flex<5, 2>;

impl<const E: u32, const M: u32> Flex<E, M> {
    const _VALID: () = assert!(E >= 1 && E <= 8 && M >= 1 && M <= 23);

    /// Exponent bias `2^(E−1) − 1`.
    pub const BIAS: i32 = (1 << (E - 1)) - 1;
    /// Largest unbiased exponent of a normal value.
    pub const EMAX: i32 = Self::BIAS;
    /// Smallest unbiased exponent of a normal value, `1 − bias`.
    pub const EMIN: i32 = 1 - Self::BIAS;
    /// Total storage bits.
    pub const BITS: u32 = 1 + E + M;

    const SIGN_MASK: u32 = 1 << (E + M);
    const EXP_MASK: u32 = ((1 << E) - 1) << M;
    const FRAC_MASK: u32 = (1 << M) - 1;

    /// Positive zero.
    pub const ZERO: Self = Flex(0);
    /// Positive infinity.
    pub const INFINITY: Self = Flex(Self::EXP_MASK);
    /// Negative infinity.
    pub const NEG_INFINITY: Self = Flex(Self::SIGN_MASK | Self::EXP_MASK);
    /// A quiet NaN.
    pub const NAN: Self = Flex(Self::EXP_MASK | (1 << (M - 1)));

    /// Construct from raw bits (low `1+E+M` bits used).
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        Flex(bits & (Self::SIGN_MASK | Self::EXP_MASK | Self::FRAC_MASK))
    }

    /// The raw bits.
    #[inline]
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// Round an `f64` to this format, round-to-nearest-even.
    pub fn from_f64(x: f64) -> Self {
        // Force the geometry check (associated consts are lazy).
        #[allow(clippy::let_unit_value)]
        let _ = Self::_VALID;
        let bits = x.to_bits();
        let sign = if bits >> 63 != 0 { Self::SIGN_MASK } else { 0 };
        let exp = ((bits >> 52) & 0x7FF) as i32;
        let frac = bits & 0x000F_FFFF_FFFF_FFFF;

        if exp == 0x7FF {
            return if frac != 0 {
                Flex(sign | Self::NAN.0)
            } else {
                Flex(sign | Self::EXP_MASK)
            };
        }
        if exp == 0 {
            // f64 subnormals (< 2^-1022) underflow in every supported format.
            return Flex(sign);
        }
        let e = exp - 1023;
        if e > Self::EMAX {
            return Flex(sign | Self::EXP_MASK);
        }
        if e >= Self::EMIN {
            // Normal candidate: keep M bits, RNE on the remaining 52−M.
            let drop = 52 - M;
            let mut m = (frac >> drop) as u32;
            let rest = frac & ((1u64 << drop) - 1);
            let halfway = 1u64 << (drop - 1);
            let mut e_t = (e + Self::BIAS) as u32;
            if rest > halfway || (rest == halfway && (m & 1) == 1) {
                m += 1;
                if m == (1 << M) {
                    m = 0;
                    e_t += 1;
                    if e_t >= (1 << E) - 1 {
                        return Flex(sign | Self::EXP_MASK);
                    }
                }
            }
            return Flex(sign | (e_t << M) | m);
        }
        // Subnormal (or underflow): quantum is 2^(EMIN − M).
        let sig = (1u64 << 52) | frac;
        let shift_i = 52 + (Self::EMIN - M as i32) - e;
        if shift_i >= 64 {
            return Flex(sign);
        }
        let shift = shift_i as u32;
        debug_assert!(shift >= 1);
        let mut m = (sig >> shift) as u32;
        let rest = sig & ((1u64 << shift) - 1);
        let halfway = 1u64 << (shift - 1);
        if rest > halfway || (rest == halfway && (m & 1) == 1) {
            m += 1; // may carry into the smallest normal — a valid encoding
        }
        Flex(sign | m)
    }

    /// Widen to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        let sign = if self.0 & Self::SIGN_MASK != 0 {
            -1.0
        } else {
            1.0
        };
        let exp = (self.0 & Self::EXP_MASK) >> M;
        let frac = self.0 & Self::FRAC_MASK;
        if exp == (1 << E) - 1 {
            return if frac != 0 {
                f64::NAN
            } else {
                sign * f64::INFINITY
            };
        }
        if exp == 0 {
            return sign * frac as f64 * 2f64.powi(Self::EMIN - M as i32);
        }
        let significand = 1.0 + frac as f64 / (1u64 << M) as f64;
        sign * significand * 2f64.powi(exp as i32 - Self::BIAS)
    }

    /// `true` for NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & Self::EXP_MASK) == Self::EXP_MASK && (self.0 & Self::FRAC_MASK) != 0
    }

    /// `true` for finite values.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & Self::EXP_MASK) != Self::EXP_MASK
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Flex(self.0 & !Self::SIGN_MASK)
    }

    /// Square root (rounded through the exact f64 widening).
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_f64(self.to_f64().sqrt())
    }

    /// Fused multiply-add with one final rounding.
    #[inline]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        Self::from_f64(self.to_f64().mul_add(a.to_f64(), b.to_f64()))
    }

    /// IEEE `minNum`-style minimum.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self.is_nan() {
            other
        } else if other.is_nan() || self.to_f64() <= other.to_f64() {
            self
        } else {
            other
        }
    }

    /// IEEE `maxNum`-style maximum.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self.is_nan() {
            other
        } else if other.is_nan() || self.to_f64() >= other.to_f64() {
            self
        } else {
            other
        }
    }

    /// Total order for sorting: −∞ < finite < +∞ < NaN, −0 < +0.
    #[inline]
    pub fn total_cmp(&self, other: &Self) -> Ordering {
        self.total_key().cmp(&other.total_key())
    }

    /// The monotone integer key behind [`Flex::total_cmp`]: all NaNs map to
    /// `i64::MAX`, negatives below every non-negative (−0 maps to −1 < +0).
    #[inline]
    pub fn total_key(self) -> i64 {
        if self.is_nan() {
            return i64::MAX;
        }
        let bits = self.0 as i64;
        let sign = 1i64 << (E + M);
        if bits & sign != 0 {
            -(bits & (sign - 1)) - 1
        } else {
            bits
        }
    }
}

macro_rules! flex_binop {
    ($trait:ident, $method:ident, $op:tt, $assign_trait:ident, $assign_method:ident) => {
        impl<const E: u32, const M: u32> $trait for Flex<E, M> {
            type Output = Flex<E, M>;
            #[inline]
            fn $method(self, rhs: Flex<E, M>) -> Flex<E, M> {
                Flex::from_f64(self.to_f64() $op rhs.to_f64())
            }
        }
        impl<const E: u32, const M: u32> $assign_trait for Flex<E, M> {
            #[inline]
            fn $assign_method(&mut self, rhs: Flex<E, M>) {
                *self = *self $op rhs;
            }
        }
    };
}

flex_binop!(Add, add, +, AddAssign, add_assign);
flex_binop!(Sub, sub, -, SubAssign, sub_assign);
flex_binop!(Mul, mul, *, MulAssign, mul_assign);
flex_binop!(Div, div, /, DivAssign, div_assign);

impl<const E: u32, const M: u32> Neg for Flex<E, M> {
    type Output = Flex<E, M>;
    #[inline]
    fn neg(self) -> Flex<E, M> {
        Flex(self.0 ^ Self::SIGN_MASK)
    }
}

impl<const E: u32, const M: u32> PartialEq for Flex<E, M> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        if self.is_nan() || other.is_nan() {
            return false;
        }
        self.to_f64() == other.to_f64()
    }
}

impl<const E: u32, const M: u32> PartialOrd for Flex<E, M> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f64().partial_cmp(&other.to_f64())
    }
}

impl<const E: u32, const M: u32> fmt::Debug for Flex<E, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}flex<{E},{M}>", self.to_f64())
    }
}

impl<const E: u32, const M: u32> fmt::Display for Flex<E, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

impl<const E: u32, const M: u32> crate::Real for Flex<E, M> {
    const NAME: &'static str = "FLEX";
    const BYTES: usize = if 1 + E + M <= 8 {
        1
    } else if 1 + E + M <= 16 {
        2
    } else {
        4
    };
    const EPSILON: f64 = 1.0 / (1u64 << M) as f64;
    const MAX_FINITE: f64 =
        (2.0 - 1.0 / (1u64 << M) as f64) * (1u128 << ((1 << (E - 1)) - 1)) as f64;

    #[inline]
    fn from_f64(x: f64) -> Self {
        Flex::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        Flex::to_f64(self)
    }
    #[inline]
    fn infinity() -> Self {
        Self::INFINITY
    }
    #[inline]
    fn neg_infinity() -> Self {
        Self::NEG_INFINITY
    }
    #[inline]
    fn sqrt(self) -> Self {
        Flex::sqrt(self)
    }
    #[inline]
    fn abs(self) -> Self {
        Flex::abs(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        Flex::mul_add(self, a, b)
    }
    #[inline]
    fn is_nan(self) -> bool {
        Flex::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        Flex::is_finite(self)
    }
    #[inline]
    fn min(self, other: Self) -> Self {
        Flex::min(self, other)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        Flex::max(self, other)
    }
    #[inline]
    fn total_order(self, other: Self) -> Ordering {
        self.total_cmp(&other)
    }
    type SortKey = i64;
    #[inline(always)]
    fn sort_key(self) -> i64 {
        self.total_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Half, Real};

    /// Flex<5,10> must agree with the dedicated binary16 implementation on
    /// every one of the 65536 bit patterns' widened values, and on rounding
    /// a dense sample of f64 inputs.
    #[test]
    fn flex_5_10_matches_half_exactly() {
        for bits in 0u16..=0xFFFF {
            let h = Half::from_bits(bits);
            let fx = Flex::<5, 10>::from_bits(bits as u32);
            if h.is_nan() {
                assert!(fx.is_nan(), "bits {bits:#06x}");
            } else {
                assert_eq!(h.to_f64(), fx.to_f64(), "bits {bits:#06x}");
            }
        }
        let mut x = -70000.0f64;
        while x < 70000.0 {
            let h = Half::from_f64(x);
            let fx = Flex::<5, 10>::from_f64(x);
            assert_eq!(h.to_bits() as u32, fx.to_bits(), "x = {x}");
            x += 13.37;
        }
        // Subnormal range too.
        let mut x = -1e-4f64;
        while x < 1e-4 {
            assert_eq!(
                Half::from_f64(x).to_bits() as u32,
                Flex::<5, 10>::from_f64(x).to_bits(),
                "x = {x}"
            );
            x += 3.1e-7;
        }
    }

    #[test]
    fn fp8_e4m3_constants() {
        assert_eq!(Fp8E4M3::BIAS, 7);
        assert_eq!(Fp8E4M3::EMAX, 7);
        // Max finite (IEEE-style): (2 - 2^-3) * 2^7 = 240.
        assert_eq!(<Fp8E4M3 as Real>::MAX_FINITE, 240.0);
        assert_eq!(<Fp8E4M3 as Real>::EPSILON, 0.125);
        assert_eq!(<Fp8E4M3 as Real>::BYTES, 1);
        assert_eq!(Fp8E4M3::from_f64(240.0).to_f64(), 240.0);
        assert!(!Fp8E4M3::from_f64(260.0).is_finite());
    }

    #[test]
    fn fp8_e5m2_range_vs_precision_tradeoff() {
        // E5M2 trades mantissa for range: max (2-2^-2)*2^15 = 57344.
        assert_eq!(<Fp8E5M2 as Real>::MAX_FINITE, 57344.0);
        assert!(Fp8E5M2::from_f64(30000.0).is_finite());
        assert!(!Fp8E4M3::from_f64(30000.0).is_finite());
        // E4M3 is more precise near 1.
        let x = 1.1;
        let e4 = (Fp8E4M3::from_f64(x).to_f64() - x).abs();
        let e5 = (Fp8E5M2::from_f64(x).to_f64() - x).abs();
        assert!(e4 <= e5);
    }

    #[test]
    fn fp8_round_trips() {
        for bits in 0u32..=0xFF {
            let v = Fp8E4M3::from_bits(bits);
            if v.is_nan() {
                assert!(Fp8E4M3::from_f64(v.to_f64()).is_nan());
            } else {
                assert_eq!(Fp8E4M3::from_f64(v.to_f64()).to_bits(), bits, "{bits:#04x}");
            }
        }
    }

    #[test]
    fn fp8_arithmetic_and_swamping() {
        let one = Fp8E4M3::from_f64(1.0);
        let mut acc = Fp8E4M3::ZERO;
        for _ in 0..64 {
            acc += one;
        }
        // 8-bit accumulator stalls at 2^(M+1) = 16.
        assert_eq!(acc.to_f64(), 16.0);
    }

    #[test]
    fn real_trait_contract_for_fp8() {
        let two = Fp8E4M3::from_f64(2.0);
        assert_eq!((two * two).to_f64(), 4.0);
        assert_eq!(Fp8E4M3::from_f64(4.0).sqrt().to_f64(), 2.0);
        assert_eq!(two.mul_add(two, Fp8E4M3::from_f64(1.0)).to_f64(), 5.0);
        assert!(Fp8E4M3::from_f64(f64::NAN).is_nan());
        use core::cmp::Ordering;
        assert_eq!(
            Fp8E4M3::NAN.total_cmp(&Fp8E4M3::INFINITY),
            Ordering::Greater
        );
        assert_eq!(
            Fp8E4M3::from_f64(-0.0).total_cmp(&Fp8E4M3::ZERO),
            Ordering::Less
        );
    }

    #[test]
    fn odd_geometry_flex_formats() {
        // A 6-bit float: E=3, M=2 — bias 3, max (2-0.25)*2^3 = 14.
        type Tiny = Flex<3, 2>;
        assert_eq!(<Tiny as Real>::MAX_FINITE, 14.0);
        assert_eq!(Tiny::from_f64(14.0).to_f64(), 14.0);
        assert!(!Tiny::from_f64(16.0).is_finite());
        // Subnormal quantum 2^(EMIN-M) = 2^(-2-2) = 1/16.
        assert_eq!(Tiny::from_f64(1.0 / 16.0).to_f64(), 1.0 / 16.0);
        // 0.025 is below half the quantum: flushes to zero; 0.04 rounds up.
        assert_eq!(Tiny::from_f64(0.025).to_f64(), 0.0);
        assert_eq!(Tiny::from_f64(0.04).to_f64(), 0.0625);
    }
}

//! The run-time precision-mode selector (§III-C of the paper).
//!
//! A mode fixes three things: the storage-and-arithmetic format of the main
//! loop (`dist_calc`, `sort_&_incl_scan`, `update_mat_prof`), the format of
//! the precalculation step, and whether precalculation uses Kahan
//! compensation. The five paper modes plus the two named extensions:
//!
//! | mode  | precalculation       | main loop |
//! |-------|----------------------|-----------|
//! | FP64  | FP64                 | FP64      |
//! | FP32  | FP32                 | FP32      |
//! | FP16  | FP16                 | FP16      |
//! | Mixed | FP32                 | FP16      |
//! | FP16C | FP16 + compensation  | FP16      |
//! | BF16  | BF16                 | BF16      |
//! | TF32  | TF32                 | TF32      |
//!
//! The three tensor-core modes (`FP16-TC`, `BF16-TC`, `TF32-TC`) are a
//! different axis: storage and accumulation stay FP32, but the `dist_calc`
//! kernel is reformulated as a blocked GEMM whose multiply operands are
//! rounded to the tensor-core input format per operation and whose dot
//! products accumulate in FP32 in hardware-sized chunks (Khattak &
//! Mikaitis). [`PrecisionMode::tc_input`] exposes the input format.

use core::fmt;
use core::str::FromStr;

/// A floating-point format identifier (storage + arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Format {
    /// IEEE binary64.
    Fp64,
    /// IEEE binary32.
    Fp32,
    /// IEEE binary16.
    Fp16,
    /// bfloat16.
    Bf16,
    /// TensorFloat-32 (stored in 32 bits).
    Tf32,
    /// 8-bit float, 4 exponent / 3 mantissa bits (IEEE-style E4M3).
    Fp8E4M3,
    /// 8-bit float, 5 exponent / 2 mantissa bits (IEEE-style E5M2).
    Fp8E5M2,
}

impl Format {
    /// Bytes per element in device memory.
    pub fn bytes(self) -> usize {
        match self {
            Format::Fp64 => 8,
            Format::Fp32 | Format::Tf32 => 4,
            Format::Fp16 | Format::Bf16 => 2,
            Format::Fp8E4M3 | Format::Fp8E5M2 => 1,
        }
    }

    /// Unit roundoff ε of the format.
    pub fn epsilon(self) -> f64 {
        match self {
            Format::Fp64 => 2f64.powi(-52),
            Format::Fp32 => 2f64.powi(-23),
            Format::Fp16 | Format::Tf32 => 2f64.powi(-10),
            Format::Bf16 => 2f64.powi(-7),
            Format::Fp8E4M3 => 2f64.powi(-3),
            Format::Fp8E5M2 => 2f64.powi(-2),
        }
    }

    /// Throughput of this format relative to FP64 on the modelled GPUs
    /// (vector pipelines: FP32 2×, FP16 4×; BF16 like FP16; TF32 like FP32).
    pub fn flops_ratio_vs_fp64(self) -> f64 {
        match self {
            Format::Fp64 => 1.0,
            Format::Fp32 | Format::Tf32 => 2.0,
            Format::Fp16 | Format::Bf16 => 4.0,
            // 8-bit vector throughput modelled like the 16-bit formats
            // (the paper's kernels do not use tensor cores).
            Format::Fp8E4M3 | Format::Fp8E5M2 => 4.0,
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Format::Fp64 => "FP64",
            Format::Fp32 => "FP32",
            Format::Fp16 => "FP16",
            Format::Bf16 => "BF16",
            Format::Tf32 => "TF32",
            Format::Fp8E4M3 => "FP8-E4M3",
            Format::Fp8E5M2 => "FP8-E5M2",
        };
        f.write_str(s)
    }
}

/// A precision mode: the paper's five configurations plus the BF16/TF32
/// extensions it names as future work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrecisionMode {
    /// Everything in IEEE binary64 — the reference configuration.
    Fp64,
    /// Everything in IEEE binary32.
    Fp32,
    /// Everything in IEEE binary16 — fastest, largest numerical error.
    Fp16,
    /// FP32 precalculation, FP16 main loop ("Mixed" in the paper).
    Mixed,
    /// FP16 precalculation **with Kahan compensated summation**, FP16 main
    /// loop ("FP16C" in the paper).
    Fp16c,
    /// Everything in bfloat16 (extension).
    Bf16,
    /// Everything in TF32 (extension).
    Tf32,
    /// FP32 precalculation, FP8-E4M3 main loop (extension; plain FP8 cannot
    /// survive the precalculation's cancellations at all).
    Fp8E4M3,
    /// FP32 precalculation, FP8-E5M2 main loop (extension).
    Fp8E5M2,
    /// Tensor-core GEMM `dist_calc`: FP16 multiply inputs, FP32 chunked
    /// accumulation, FP32 everywhere else.
    Fp16Tc,
    /// Tensor-core GEMM `dist_calc`: BF16 multiply inputs, FP32 chunked
    /// accumulation, FP32 everywhere else.
    Bf16Tc,
    /// Tensor-core GEMM `dist_calc`: TF32 multiply inputs, FP32 chunked
    /// accumulation, FP32 everywhere else.
    Tf32Tc,
}

impl PrecisionMode {
    /// The five modes evaluated in the paper, in the paper's plot order.
    pub const PAPER_MODES: [PrecisionMode; 5] = [
        PrecisionMode::Fp64,
        PrecisionMode::Fp32,
        PrecisionMode::Fp16,
        PrecisionMode::Mixed,
        PrecisionMode::Fp16c,
    ];

    /// The tensor-core GEMM modes, in throughput order (highest first).
    pub const TC_MODES: [PrecisionMode; 3] = [
        PrecisionMode::Fp16Tc,
        PrecisionMode::Bf16Tc,
        PrecisionMode::Tf32Tc,
    ];

    /// All supported modes including the extensions.
    pub const ALL: [PrecisionMode; 12] = [
        PrecisionMode::Fp64,
        PrecisionMode::Fp32,
        PrecisionMode::Fp16,
        PrecisionMode::Mixed,
        PrecisionMode::Fp16c,
        PrecisionMode::Bf16,
        PrecisionMode::Tf32,
        PrecisionMode::Fp8E4M3,
        PrecisionMode::Fp8E5M2,
        PrecisionMode::Fp16Tc,
        PrecisionMode::Bf16Tc,
        PrecisionMode::Tf32Tc,
    ];

    /// Format used by the main iteration loop (and for storing the active
    /// row-planes of the distance matrix).
    pub fn main_format(self) -> Format {
        match self {
            PrecisionMode::Fp64 => Format::Fp64,
            PrecisionMode::Fp32 => Format::Fp32,
            PrecisionMode::Fp16 | PrecisionMode::Mixed | PrecisionMode::Fp16c => Format::Fp16,
            PrecisionMode::Bf16 => Format::Bf16,
            PrecisionMode::Tf32 => Format::Tf32,
            PrecisionMode::Fp8E4M3 => Format::Fp8E4M3,
            PrecisionMode::Fp8E5M2 => Format::Fp8E5M2,
            // TC modes store planes and accumulate in FP32; only the GEMM
            // multiply operands are narrowed (see `tc_input`).
            PrecisionMode::Fp16Tc | PrecisionMode::Bf16Tc | PrecisionMode::Tf32Tc => Format::Fp32,
        }
    }

    /// For the tensor-core GEMM modes, the format the MMA unit rounds its
    /// multiply operands to; `None` for every vector-pipeline mode.
    pub fn tc_input(self) -> Option<Format> {
        match self {
            PrecisionMode::Fp16Tc => Some(Format::Fp16),
            PrecisionMode::Bf16Tc => Some(Format::Bf16),
            PrecisionMode::Tf32Tc => Some(Format::Tf32),
            _ => None,
        }
    }

    /// Format used by the precalculation step.
    pub fn precalc_format(self) -> Format {
        match self {
            PrecisionMode::Mixed => Format::Fp32,
            // The FP8 extension modes are mixed by construction: a running
            // sum in 2-3 mantissa bits is meaningless.
            PrecisionMode::Fp8E4M3 | PrecisionMode::Fp8E5M2 => Format::Fp32,
            other => other.main_format(),
        }
    }

    /// Whether this mode routes `dist_calc` through the simulated
    /// tensor-core GEMM path.
    pub fn uses_tensor_cores(self) -> bool {
        self.tc_input().is_some()
    }

    /// Whether precalculation uses Kahan compensated summation.
    pub fn compensated_precalc(self) -> bool {
        matches!(self, PrecisionMode::Fp16c)
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PrecisionMode::Fp64 => "FP64",
            PrecisionMode::Fp32 => "FP32",
            PrecisionMode::Fp16 => "FP16",
            PrecisionMode::Mixed => "Mixed",
            PrecisionMode::Fp16c => "FP16C",
            PrecisionMode::Bf16 => "BF16",
            PrecisionMode::Tf32 => "TF32",
            PrecisionMode::Fp8E4M3 => "FP8-E4M3",
            PrecisionMode::Fp8E5M2 => "FP8-E5M2",
            PrecisionMode::Fp16Tc => "FP16-TC",
            PrecisionMode::Bf16Tc => "BF16-TC",
            PrecisionMode::Tf32Tc => "TF32-TC",
        }
    }
}

impl fmt::Display for PrecisionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for PrecisionMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fp64" | "f64" | "double" => Ok(PrecisionMode::Fp64),
            "fp32" | "f32" | "single" => Ok(PrecisionMode::Fp32),
            "fp16" | "f16" | "half" => Ok(PrecisionMode::Fp16),
            "mixed" => Ok(PrecisionMode::Mixed),
            "fp16c" | "f16c" => Ok(PrecisionMode::Fp16c),
            "bf16" | "bfloat16" => Ok(PrecisionMode::Bf16),
            "tf32" => Ok(PrecisionMode::Tf32),
            "fp8-e4m3" | "fp8e4m3" | "e4m3" => Ok(PrecisionMode::Fp8E4M3),
            "fp8-e5m2" | "fp8e5m2" | "e5m2" => Ok(PrecisionMode::Fp8E5M2),
            "fp16-tc" | "fp16tc" => Ok(PrecisionMode::Fp16Tc),
            "bf16-tc" | "bf16tc" => Ok(PrecisionMode::Bf16Tc),
            "tf32-tc" | "tf32tc" => Ok(PrecisionMode::Tf32Tc),
            other => Err(format!(
                "unknown precision mode '{other}' (expected one of fp64, fp32, fp16, mixed, fp16c, bf16, tf32, fp16-tc, bf16-tc, tf32-tc)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mode_table() {
        // Fig. 1 of the paper: precalculation / main-loop formats per mode.
        use PrecisionMode::*;
        assert_eq!(Fp64.precalc_format(), Format::Fp64);
        assert_eq!(Fp64.main_format(), Format::Fp64);
        assert_eq!(Fp32.precalc_format(), Format::Fp32);
        assert_eq!(Fp32.main_format(), Format::Fp32);
        assert_eq!(Fp16.precalc_format(), Format::Fp16);
        assert_eq!(Fp16.main_format(), Format::Fp16);
        assert_eq!(Mixed.precalc_format(), Format::Fp32);
        assert_eq!(Mixed.main_format(), Format::Fp16);
        assert_eq!(Fp16c.precalc_format(), Format::Fp16);
        assert_eq!(Fp16c.main_format(), Format::Fp16);
        assert!(Fp16c.compensated_precalc());
        assert!(!Fp16.compensated_precalc());
        assert!(!Mixed.compensated_precalc());
    }

    #[test]
    fn format_properties() {
        assert_eq!(Format::Fp64.bytes(), 8);
        assert_eq!(Format::Fp16.bytes(), 2);
        assert_eq!(Format::Tf32.bytes(), 4);
        assert!(Format::Fp16.epsilon() > Format::Fp32.epsilon());
        assert_eq!(Format::Fp16.flops_ratio_vs_fp64(), 4.0);
    }

    #[test]
    fn parse_round_trips() {
        for mode in PrecisionMode::ALL {
            let parsed: PrecisionMode = mode.label().parse().unwrap();
            assert_eq!(parsed, mode);
        }
        assert!("fp8".parse::<PrecisionMode>().is_err());
    }

    #[test]
    fn tc_modes_accumulate_in_fp32() {
        for mode in PrecisionMode::TC_MODES {
            assert!(mode.uses_tensor_cores());
            assert_eq!(mode.main_format(), Format::Fp32);
            assert_eq!(mode.precalc_format(), Format::Fp32);
            assert!(!mode.compensated_precalc());
        }
        assert_eq!(PrecisionMode::Fp16Tc.tc_input(), Some(Format::Fp16));
        assert_eq!(PrecisionMode::Bf16Tc.tc_input(), Some(Format::Bf16));
        assert_eq!(PrecisionMode::Tf32Tc.tc_input(), Some(Format::Tf32));
        for mode in PrecisionMode::PAPER_MODES {
            assert!(!mode.uses_tensor_cores());
        }
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = PrecisionMode::PAPER_MODES
            .iter()
            .map(|m| m.label())
            .collect();
        assert_eq!(labels, ["FP64", "FP32", "FP16", "Mixed", "FP16C"]);
    }
}

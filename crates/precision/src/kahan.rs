//! Kahan compensated summation (Kahan 1965), the "improved arithmetic" of the
//! paper's **FP16C** mode.
//!
//! The precalculation step of the matrix profile builds rolling statistics
//! via long cumulative sums. In binary16 those sums suffer catastrophic
//! swamping (an accumulator of magnitude 2¹¹ absorbs unit addends entirely —
//! see the `accumulation_stalls_at_2_pow_11` test on [`crate::Half`]).
//! Compensated summation carries the rounding error of each step in a
//! correction term, recovering roughly the accuracy of twice the working
//! precision at the cost of 4 ops per addend — negligible here because
//! precalculation is O(n·d) while the main loop is O(n²·d) (§III-C).

use crate::Real;

/// A running compensated sum in precision `T`.
///
/// ```
/// use mdmp_precision::{Half, KahanSum, Real};
///
/// // Plain FP16 summation of 4096 ones stalls at 2048; Kahan gets it right.
/// let mut plain = Half::zero();
/// let mut comp = KahanSum::<Half>::new();
/// for _ in 0..4096 {
///     plain += Half::one();
///     comp.add(Half::one());
/// }
/// assert_eq!(plain.to_f64(), 2048.0);
/// assert_eq!(comp.value().to_f64(), 4096.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanSum<T: Real> {
    sum: T,
    /// Running compensation: the negated accumulated rounding error.
    c: T,
}

impl<T: Real> KahanSum<T> {
    /// An empty sum.
    pub fn new() -> Self {
        KahanSum {
            sum: T::zero(),
            c: T::zero(),
        }
    }

    /// Start from an existing value with zero compensation.
    pub fn from_value(v: T) -> Self {
        KahanSum {
            sum: v,
            c: T::zero(),
        }
    }

    /// Rebuild a sum from a previously captured `(value, compensation)`
    /// pair — the resume point for checkpointed accumulation. Resuming from
    /// `(k.value(), k.compensation())` and continuing produces the exact
    /// bit sequence the original sum would have produced.
    pub fn from_parts(sum: T, c: T) -> Self {
        KahanSum { sum, c }
    }

    /// Add one term, updating the compensation (classic Kahan step).
    #[inline]
    pub fn add(&mut self, x: T) {
        let y = x - self.c;
        let t = self.sum + y;
        // (t - sum) is the part of y that made it into the sum; subtracting y
        // recovers (negated) what was lost to rounding.
        self.c = (t - self.sum) - y;
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> T {
        self.sum
    }

    /// The current compensation term (diagnostic).
    #[inline]
    pub fn compensation(&self) -> T {
        self.c
    }
}

/// Compensated sum of a slice in precision `T`.
pub fn kahan_sum<T: Real>(xs: &[T]) -> T {
    let mut acc = KahanSum::new();
    for &x in xs {
        acc.add(x);
    }
    acc.value()
}

/// Compensated dot product of two slices in precision `T`: products are
/// rounded in `T` (as the GPU's half-precision multiplier would), the
/// accumulation is compensated.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn kahan_dot<T: Real>(a: &[T], b: &[T]) -> T {
    assert_eq!(a.len(), b.len(), "kahan_dot: length mismatch");
    let mut acc = KahanSum::new();
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc.add(x * y);
    }
    acc.value()
}

/// Plain (uncompensated) dot product in precision `T`, for comparison and for
/// the non-compensated precalculation paths.
pub fn plain_dot<T: Real>(a: &[T], b: &[T]) -> T {
    assert_eq!(a.len(), b.len(), "plain_dot: length mismatch");
    let mut acc = T::zero();
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Half;

    #[test]
    fn kahan_exact_on_exact_data() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert_eq!(kahan_sum(&xs), 499_500.0);
    }

    #[test]
    fn kahan_beats_plain_in_half_precision() {
        // Sum n copies of a value that is not a power of two.
        let x = Half::from_f64(0.1);
        let n = 2000usize;
        let xs = vec![x; n];
        let plain: Half = {
            let mut acc = Half::ZERO;
            for &v in &xs {
                acc += v;
            }
            acc
        };
        let comp = kahan_sum(&xs);
        let exact = x.to_f64() * n as f64;
        let err_plain = (plain.to_f64() - exact).abs();
        let err_comp = (comp.to_f64() - exact).abs();
        assert!(
            err_comp * 4.0 < err_plain,
            "compensation should cut the error substantially: plain {err_plain}, comp {err_comp}"
        );
    }

    #[test]
    fn kahan_dot_matches_f64_reference_in_half() {
        let a: Vec<f64> = (0..512).map(|i| ((i * 37) % 101) as f64 / 101.0).collect();
        let b: Vec<f64> = (0..512).map(|i| ((i * 61) % 97) as f64 / 97.0).collect();
        let ah: Vec<Half> = a.iter().map(|&x| Half::from_f64(x)).collect();
        let bh: Vec<Half> = b.iter().map(|&x| Half::from_f64(x)).collect();
        // Reference on the *rounded* inputs, so only accumulation error counts.
        let reference: f64 = ah
            .iter()
            .zip(&bh)
            .map(|(x, y)| x.to_f64() * y.to_f64())
            .sum();
        let comp = kahan_dot(&ah, &bh).to_f64();
        let plain = plain_dot(&ah, &bh).to_f64();
        assert!((comp - reference).abs() <= (plain - reference).abs());
        assert!((comp - reference).abs() / reference.abs() < 1e-2);
    }

    #[test]
    fn compensation_term_tracks_lost_bits() {
        let mut acc = KahanSum::<Half>::new();
        acc.add(Half::from_f64(2048.0));
        acc.add(Half::ONE); // lost by plain f16 addition
        assert_eq!(acc.value().to_f64(), 2048.0);
        assert_eq!(acc.compensation().to_f64(), -1.0);
        acc.add(Half::ONE);
        assert_eq!(
            acc.value().to_f64(),
            2050.0,
            "carried compensation reappears"
        );
    }

    #[test]
    fn from_parts_resumes_bit_identically() {
        // Sum a sequence in one go and in two halves with a checkpoint in
        // the middle; the halves must reproduce the exact same bits.
        let xs: Vec<Half> = (0..257)
            .map(|i| Half::from_f64(0.1 + (i as f64) * 0.003))
            .collect();
        let mut whole = KahanSum::<Half>::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut first = KahanSum::<Half>::new();
        for &x in &xs[..100] {
            first.add(x);
        }
        let mut resumed = KahanSum::from_parts(first.value(), first.compensation());
        for &x in &xs[100..] {
            resumed.add(x);
        }
        assert_eq!(resumed.value().to_f64(), whole.value().to_f64());
        assert_eq!(
            resumed.compensation().to_f64(),
            whole.compensation().to_f64()
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = kahan_dot::<f64>(&[1.0], &[1.0, 2.0]);
    }
}

//! # mdmp-precision
//!
//! Reduced-precision arithmetic substrate for the multi-dimensional matrix
//! profile reproduction of *Exploiting Reduced Precision for GPU-based Time
//! Series Mining* (IPDPS 2022).
//!
//! The paper evaluates five precision modes (FP64, FP32, FP16, Mixed, FP16C)
//! on NVIDIA GPUs, using CUDA `__half` intrinsics for half precision. This
//! crate provides the software equivalent, built from scratch:
//!
//! * [`Half`] — IEEE 754 binary16 with correctly rounded (round-to-nearest-
//!   even) conversions and per-operation rounding identical in unit roundoff
//!   to CUDA half intrinsics;
//! * [`Bf16`] and [`Tf32`] — the two formats the paper names as future work;
//! * the [`Real`] trait — the generic scalar abstraction every kernel in
//!   `mdmp-core` is written against;
//! * [`KahanSum`] — compensated summation used by the paper's FP16C mode in
//!   the precalculation step;
//! * [`PrecisionMode`] — the run-time mode selector (storage format of the
//!   main loop + precalculation format + compensation flag);
//! * [`analysis`] — the `e ∝ n·ε` dot-product error-bound model (§V-B of the
//!   paper, after Yang et al.) used to reason about tile sizes.
//!
//! Extensions beyond the paper: [`Flex`] — FlexFloat-style parametric
//! floats with the [`Fp8E4M3`]/[`Fp8E5M2`] aliases — and [`stochastic`] —
//! stochastic rounding with unbiased accumulation.
//!
//! ## Example
//!
//! ```
//! use mdmp_precision::{Half, Real};
//!
//! let a = Half::from_f64(1.0 / 3.0);
//! // binary16 has an 11-bit significand: unit roundoff 2^-11.
//! assert!((a.to_f64() - 1.0 / 3.0).abs() <= (1.0 / 3.0) * 2f64.powi(-11));
//! let b = a + a;
//! assert!((b.to_f64() - 2.0 / 3.0).abs() <= (2.0 / 3.0) * 2f64.powi(-10));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod analysis;
mod bf16;
mod f16;
mod flex;
mod kahan;
mod mode;
mod real;
pub mod stochastic;
mod tf32;

pub use bf16::Bf16;
pub use f16::Half;
pub use flex::{Flex, Fp8E4M3, Fp8E5M2};
pub use kahan::{kahan_dot, kahan_sum, plain_dot, KahanSum};
pub use mode::{Format, PrecisionMode};
pub use real::{convert_slice, widen_slice, Real};
pub use stochastic::{round_stochastic, SrRng, StochasticSum};
pub use tf32::Tf32;

//! TF32 ("TensorFloat-32"): NVIDIA Ampere's tensor-core input format with the
//! 8-bit exponent of binary32 and a 10-bit explicit significand. Named by the
//! paper (§VII) as a future extension.
//!
//! On hardware, TF32 values occupy a 32-bit register whose low 13 mantissa
//! bits are ignored by the tensor cores. We model that directly: a [`Tf32`]
//! stores an `f32` that is always quantized to a 10-bit significand
//! (round-to-nearest-even on the discarded 13 bits), and every arithmetic
//! result is re-quantized.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A TensorFloat-32 number (f32 range, 11-bit significand precision).
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct Tf32(f32);

/// Quantize an `f32` to a 10-bit explicit significand, RNE.
fn quantize(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    // Round-to-nearest-even on the low 13 bits; carry may ripple into the
    // exponent, which correctly rounds up to the next binade or to infinity.
    let rounded = bits.wrapping_add(0x0FFF + ((bits >> 13) & 1)) & !0x1FFF;
    let q = f32::from_bits(rounded);
    if q.is_nan() {
        x // quantization cannot create NaN from a finite value; keep input
    } else {
        q
    }
}

impl Tf32 {
    /// Positive zero.
    pub const ZERO: Tf32 = Tf32(0.0);
    /// One.
    pub const ONE: Tf32 = Tf32(1.0);
    /// Positive infinity.
    pub const INFINITY: Tf32 = Tf32(f32::INFINITY);
    /// Negative infinity.
    pub const NEG_INFINITY: Tf32 = Tf32(f32::NEG_INFINITY);
    /// A quiet NaN.
    pub const NAN: Tf32 = Tf32(f32::NAN);

    /// Round an `f64` to the nearest TF32 value.
    #[inline]
    pub fn from_f64(x: f64) -> Tf32 {
        // f64 -> f32 -> 10-bit chain; same double-rounding argument as Bf16.
        Tf32(quantize(x as f32))
    }

    /// Round an `f32` to the nearest TF32 value.
    #[inline]
    pub fn from_f32(x: f32) -> Tf32 {
        Tf32(quantize(x))
    }

    /// The quantized `f32` payload (exact).
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.0
    }

    /// Widen to `f64` exactly.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64
    }

    /// `true` for NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.0.is_nan()
    }

    /// `true` for finite values.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Tf32 {
        Tf32(self.0.abs())
    }

    /// Square root, re-quantized.
    #[inline]
    pub fn sqrt(self) -> Tf32 {
        Tf32::from_f64(self.to_f64().sqrt())
    }

    /// Fused multiply-add with a single final quantization.
    #[inline]
    pub fn mul_add(self, a: Tf32, b: Tf32) -> Tf32 {
        Tf32::from_f64(self.to_f64().mul_add(a.to_f64(), b.to_f64()))
    }

    /// IEEE `minNum` minimum.
    #[inline]
    pub fn min(self, other: Tf32) -> Tf32 {
        Tf32(self.0.min(other.0))
    }

    /// IEEE `maxNum` maximum.
    #[inline]
    pub fn max(self, other: Tf32) -> Tf32 {
        Tf32(self.0.max(other.0))
    }

    /// Total order for sorting: −∞ < finite < +∞ < NaN.
    #[inline]
    pub fn total_cmp(&self, other: &Tf32) -> Ordering {
        match (self.is_nan(), other.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self.0.total_cmp(&other.0),
        }
    }

    /// The monotone integer key behind [`Tf32::total_cmp`]: the standard
    /// sign-magnitude flip of the f32 payload bits, with all NaNs (any
    /// sign/payload) collapsed to `i32::MAX` — equal keys exactly where
    /// `total_cmp` returns `Equal`.
    #[inline]
    pub fn total_key(self) -> i32 {
        if self.is_nan() {
            return i32::MAX;
        }
        let bits = self.0.to_bits() as i32;
        bits ^ (((bits >> 31) as u32) >> 1) as i32
    }
}

macro_rules! tf32_binop {
    ($trait:ident, $method:ident, $op:tt, $assign_trait:ident, $assign_method:ident) => {
        impl $trait for Tf32 {
            type Output = Tf32;
            #[inline]
            fn $method(self, rhs: Tf32) -> Tf32 {
                Tf32::from_f64(self.to_f64() $op rhs.to_f64())
            }
        }
        impl $assign_trait for Tf32 {
            #[inline]
            fn $assign_method(&mut self, rhs: Tf32) {
                *self = *self $op rhs;
            }
        }
    };
}

tf32_binop!(Add, add, +, AddAssign, add_assign);
tf32_binop!(Sub, sub, -, SubAssign, sub_assign);
tf32_binop!(Mul, mul, *, MulAssign, mul_assign);
tf32_binop!(Div, div, /, DivAssign, div_assign);

impl Neg for Tf32 {
    type Output = Tf32;
    #[inline]
    fn neg(self) -> Tf32 {
        Tf32(-self.0)
    }
}

impl PartialEq for Tf32 {
    #[inline]
    fn eq(&self, other: &Tf32) -> bool {
        self.0 == other.0
    }
}

impl PartialOrd for Tf32 {
    #[inline]
    fn partial_cmp(&self, other: &Tf32) -> Option<Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

impl fmt::Debug for Tf32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}tf32", self.0)
    }
}

impl fmt::Display for Tf32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_keeps_10_bits() {
        let x = Tf32::from_f64(1.0 + 2f64.powi(-10));
        assert_eq!(x.to_f64(), 1.0 + 2f64.powi(-10));
        // Halfway between 1.0 and 1+2^-10: ties to even -> 1.0.
        let y = Tf32::from_f64(1.0 + 2f64.powi(-11));
        assert_eq!(y.to_f64(), 1.0);
        // Below a quarter ulp rounds down.
        let z = Tf32::from_f64(1.0 + 2f64.powi(-13));
        assert_eq!(z.to_f64(), 1.0);
    }

    #[test]
    fn range_is_f32_like() {
        let big = Tf32::from_f64(1.0e30);
        assert!(big.is_finite());
        assert!((big.to_f64() - 1.0e30).abs() / 1.0e30 < 2f64.powi(-10));
        assert!(!Tf32::from_f64(1.0e40).is_finite());
    }

    #[test]
    fn arithmetic_requantizes() {
        let a = Tf32::from_f64(1.0);
        let b = Tf32::from_f64(2f64.powi(-12));
        assert_eq!((a + b).to_f64(), 1.0, "sub-ulp addend must vanish");
        let mut acc = Tf32::ZERO;
        for _ in 0..4096 {
            acc += Tf32::ONE;
        }
        assert_eq!(acc.to_f64(), 2048.0, "accumulation stalls at 2^11");
    }

    #[test]
    fn non_finite_passthrough() {
        assert!(Tf32::NAN.is_nan());
        assert!((Tf32::INFINITY + Tf32::ONE).to_f64().is_infinite());
        assert!((Tf32::INFINITY - Tf32::INFINITY).is_nan());
    }

    #[test]
    fn total_cmp_sorts_nan_last() {
        let mut v = [Tf32::NAN, Tf32::ONE, Tf32::NEG_INFINITY];
        v.sort_by(Tf32::total_cmp);
        assert!(v[0].to_f64().is_infinite() && v[0].to_f64() < 0.0);
        assert_eq!(v[1].to_f64(), 1.0);
        assert!(v[2].is_nan());
    }
}

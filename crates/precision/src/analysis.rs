//! Rounding-error analysis for the iterative QT computation (§V-B).
//!
//! The paper traces reduced-precision inaccuracy to the streaming dot-product
//! recurrence of Eq. 1: unrolled, a QT entry after `n` update steps is a
//! length-O(n) inner product, whose classical forward error bound is
//! `|fl(xᵀy) − xᵀy| ≤ γₙ · |x|ᵀ|y|` with `γₙ = n·ε / (1 − n·ε)` (Higham;
//! the paper cites the mixed-precision variant of Yang, Fox & Sanders). Two
//! consequences drive the paper's design:
//!
//! * **Machine error** — ε₁₆ = 2⁻¹⁰ makes γₙ reach 100% at n ≈ 1024: a
//!   single-tile FP16 run on long series is meaningless, matching the ~5%
//!   relative accuracy of FP16 in Fig. 2.
//! * **Tile size** — the tiling scheme restarts the recurrence every tile,
//!   so the effective `n` in γₙ is the tile height. This is the knob the
//!   accuracy–performance tradeoff of Fig. 7 turns.

use crate::PrecisionMode;

/// The classical dot-product error factor `γₙ = n·ε / (1 − n·ε)`.
///
/// Returns `f64::INFINITY` once `n·ε ≥ 1` (the bound is vacuous there, which
/// for binary16 happens at n = 1024).
pub fn gamma(n: usize, epsilon: f64) -> f64 {
    let ne = n as f64 * epsilon;
    if ne >= 1.0 {
        f64::INFINITY
    } else {
        ne / (1.0 - ne)
    }
}

/// Forward error bound for the QT recurrence after `steps` diagonal updates
/// in a format with unit roundoff `epsilon`. Each step contributes 4 FLOPs
/// (two FMAs) to the running value, so the effective inner-product length is
/// `2·steps`.
pub fn qt_error_bound(steps: usize, epsilon: f64) -> f64 {
    gamma(2 * steps, epsilon)
}

/// Predicted relative-error bound of a tiled run: the recurrence restarts at
/// every tile boundary, so only the tile height enters the bound.
pub fn tiled_qt_error_bound(n: usize, n_tiles: usize, epsilon: f64) -> f64 {
    assert!(n_tiles > 0, "n_tiles must be positive");
    let tile_height = n.div_ceil(n_tiles);
    qt_error_bound(tile_height, epsilon)
}

/// Smallest number of tiles for which the tiled error bound drops below
/// `target` (a relative error, e.g. 0.05 for 95% relative accuracy).
///
/// Returns `None` if even one-row tiles cannot meet the target (i.e. the
/// format's ε itself is too large).
pub fn recommended_tiles(n: usize, mode: PrecisionMode, target: f64) -> Option<usize> {
    let eps = mode.main_format().epsilon();
    if qt_error_bound(1, eps) > target {
        return None;
    }
    // The bound is monotone in tile height; binary search over n_tiles.
    let mut lo = 1usize; // may fail
    let mut hi = n.max(1); // guaranteed to succeed (tile height 1)
    if tiled_qt_error_bound(n, lo, eps) <= target {
        return Some(1);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if tiled_qt_error_bound(n, mid, eps) <= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Condition-number heuristic of the distance formulation in Eq. 1 for a
/// segment with mean `mu` and standard deviation `sigma` (§V-B: "the
/// condition number … implies an ill-conditioned formulation for the flat
/// regions"): flat segments (σ → 0) make the normalised correlation
/// ill-conditioned, large-deviation segments push `QT` toward overflow.
pub fn segment_condition_indicator(mu: f64, sigma: f64, m: usize) -> f64 {
    if sigma <= 0.0 {
        return f64::INFINITY;
    }
    // |QT| scales like m·(|mu|² + sigma²) before normalisation; dividing by
    // m·sigma² gives the amplification of relative input error.
    (mu * mu + sigma * sigma) / (sigma * sigma) * (m as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::Format;

    #[test]
    fn gamma_monotone_and_vacuous_point() {
        let eps = Format::Fp16.epsilon();
        assert!(gamma(10, eps) < gamma(100, eps));
        assert!(gamma(1023, eps).is_finite());
        assert!(
            gamma(1024, eps).is_infinite(),
            "n·ε = 1 at n = 1024 for FP16"
        );
        assert!(gamma(1 << 20, Format::Fp64.epsilon()) < 1e-9);
    }

    #[test]
    fn tiling_shrinks_the_bound() {
        let eps = Format::Fp16.epsilon();
        let n = 1 << 16;
        let one_tile = tiled_qt_error_bound(n, 1, eps);
        let tiles_256 = tiled_qt_error_bound(n, 256, eps);
        let tiles_1024 = tiled_qt_error_bound(n, 1024, eps);
        assert!(one_tile.is_infinite());
        assert!(tiles_256.is_finite());
        assert!(tiles_1024 < tiles_256);
        assert!(
            tiles_1024 < 0.2,
            "height-64 tiles: γ₁₂₈ ≈ 0.14, got {tiles_1024}"
        );
    }

    #[test]
    fn recommended_tiles_hits_target() {
        let n = 1 << 16;
        let tiles = recommended_tiles(n, PrecisionMode::Fp16, 0.5).unwrap();
        assert!(tiles > 1);
        let eps = Format::Fp16.epsilon();
        assert!(tiled_qt_error_bound(n, tiles, eps) <= 0.5);
        if tiles > 1 {
            assert!(tiled_qt_error_bound(n, tiles - 1, eps) > 0.5);
        }
        // FP64 needs no tiling for any sane target.
        assert_eq!(recommended_tiles(n, PrecisionMode::Fp64, 1e-6), Some(1));
    }

    #[test]
    fn recommended_tiles_unreachable_target() {
        assert_eq!(recommended_tiles(1 << 16, PrecisionMode::Fp16, 1e-9), None);
    }

    #[test]
    fn flat_segments_are_ill_conditioned() {
        assert!(segment_condition_indicator(1.0, 0.0, 64).is_infinite());
        let flat = segment_condition_indicator(5.0, 0.01, 64);
        let lively = segment_condition_indicator(5.0, 1.0, 64);
        assert!(flat > lively);
    }
}

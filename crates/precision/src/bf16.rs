//! bfloat16: 1 sign bit, 8 exponent bits (the full f32 range), 7 explicit
//! significand bits. Named by the paper (§VII) as a future extension of its
//! reduced-precision modes.
//!
//! bfloat16 is exactly the upper 16 bits of an IEEE binary32, so conversion
//! from `f32` is a round-to-nearest-even truncation of the low 16 bits and
//! widening is a zero-extension. Arithmetic follows the same contract as
//! [`crate::Half`]: compute in `f64`, round once to the storage format.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A bfloat16 ("brain floating point") number.
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct Bf16(u16);

fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Keep a quiet NaN; ensure the payload stays nonzero after truncation.
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Round to nearest even on the low 16 bits. The add can carry all the way
    // through the exponent, which correctly turns overflow into infinity.
    let rounded = bits.wrapping_add(0x7FFF + ((bits >> 16) & 1));
    (rounded >> 16) as u16
}

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0x0000);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: Bf16 = Bf16(0xFF80);
    /// A quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7FC0);
    /// Machine epsilon, 2⁻⁷.
    pub const EPSILON: Bf16 = Bf16(0x3C00);

    /// Construct from raw bits.
    #[inline]
    pub const fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }
    /// The raw bits.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Round an `f64` to the nearest bfloat16.
    ///
    /// Goes through `f32` first; the double rounding is harmless because a
    /// 53→24→8 bit chain can only disagree with direct 53→8 rounding when the
    /// value lies within 2⁻²⁴ ulp of an 8-bit rounding boundary *and* the
    /// first rounding crosses it — impossible since 24-bit rounding moves a
    /// value by at most 2⁻²⁵ of its magnitude while 8-bit boundaries are
    /// 2⁻⁹ apart.
    #[inline]
    pub fn from_f64(x: f64) -> Bf16 {
        Bf16(f32_to_bf16_bits(x as f32))
    }

    /// Round an `f32` to the nearest bfloat16.
    #[inline]
    pub fn from_f32(x: f32) -> Bf16 {
        Bf16(f32_to_bf16_bits(x))
    }

    /// Widen to `f32` exactly.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Widen to `f64` exactly.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// `true` for NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }

    /// `true` for anything that is neither NaN nor ±∞.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7F80) != 0x7F80
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Bf16 {
        Bf16(self.0 & 0x7FFF)
    }

    /// Square root.
    #[inline]
    pub fn sqrt(self) -> Bf16 {
        Bf16::from_f64(self.to_f64().sqrt())
    }

    /// Fused multiply-add with a single final rounding.
    #[inline]
    pub fn mul_add(self, a: Bf16, b: Bf16) -> Bf16 {
        Bf16::from_f64(self.to_f64().mul_add(a.to_f64(), b.to_f64()))
    }

    /// IEEE `minNum` minimum.
    #[inline]
    pub fn min(self, other: Bf16) -> Bf16 {
        if self.is_nan() {
            other
        } else if other.is_nan() || self.to_f32() <= other.to_f32() {
            self
        } else {
            other
        }
    }

    /// IEEE `maxNum` maximum.
    #[inline]
    pub fn max(self, other: Bf16) -> Bf16 {
        if self.is_nan() {
            other
        } else if other.is_nan() || self.to_f32() >= other.to_f32() {
            self
        } else {
            other
        }
    }

    /// Total order for sorting: −∞ < finite < +∞ < NaN.
    #[inline]
    pub fn total_cmp(&self, other: &Bf16) -> Ordering {
        self.total_key().cmp(&other.total_key())
    }

    /// The monotone integer key behind [`Bf16::total_cmp`]: all NaNs map to
    /// `i32::MAX`, negatives below every non-negative (−0 maps to −1 < +0).
    #[inline]
    pub fn total_key(self) -> i32 {
        if self.is_nan() {
            return i32::MAX;
        }
        let bits = self.0 as i32;
        if bits & 0x8000 != 0 {
            -(bits & 0x7FFF) - 1
        } else {
            bits
        }
    }
}

macro_rules! bf16_binop {
    ($trait:ident, $method:ident, $op:tt, $assign_trait:ident, $assign_method:ident) => {
        impl $trait for Bf16 {
            type Output = Bf16;
            #[inline]
            fn $method(self, rhs: Bf16) -> Bf16 {
                Bf16::from_f64(self.to_f64() $op rhs.to_f64())
            }
        }
        impl $assign_trait for Bf16 {
            #[inline]
            fn $assign_method(&mut self, rhs: Bf16) {
                *self = *self $op rhs;
            }
        }
    };
}

bf16_binop!(Add, add, +, AddAssign, add_assign);
bf16_binop!(Sub, sub, -, SubAssign, sub_assign);
bf16_binop!(Mul, mul, *, MulAssign, mul_assign);
bf16_binop!(Div, div, /, DivAssign, div_assign);

impl Neg for Bf16 {
    type Output = Bf16;
    #[inline]
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ 0x8000)
    }
}

impl PartialEq for Bf16 {
    #[inline]
    fn eq(&self, other: &Bf16) -> bool {
        if self.is_nan() || other.is_nan() {
            return false;
        }
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for Bf16 {
    #[inline]
    fn partial_cmp(&self, other: &Bf16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}bf16", self.to_f64())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_patterns() {
        assert_eq!(Bf16::from_f64(0.0).to_bits(), 0x0000);
        assert_eq!(Bf16::from_f64(1.0).to_bits(), 0x3F80);
        assert_eq!(Bf16::from_f64(-2.0).to_bits(), 0xC000);
        assert_eq!(Bf16::from_f64(f64::INFINITY).to_bits(), 0x7F80);
        assert!(Bf16::from_f64(f64::NAN).is_nan());
    }

    #[test]
    fn round_trip_all_patterns() {
        for bits in 0u16..=0xFFFF {
            let b = Bf16::from_bits(bits);
            if b.is_nan() {
                assert!(Bf16::from_f32(b.to_f32()).is_nan());
                continue;
            }
            assert_eq!(
                Bf16::from_f32(b.to_f32()).to_bits(),
                bits,
                "bits {bits:#06x}"
            );
        }
    }

    #[test]
    fn rne_rounding() {
        // 1 + 2^-8 is halfway between 1.0 (even) and 1+2^-7: ties to even.
        assert_eq!(Bf16::from_f64(1.0 + 2f64.powi(-8)).to_bits(), 0x3F80);
        assert_eq!(Bf16::from_f64(1.0 + 3.0 * 2f64.powi(-8)).to_bits(), 0x3F82);
    }

    #[test]
    fn wide_range_no_overflow_at_f16_max() {
        // The key property vs binary16: 1e6 is representable.
        let big = Bf16::from_f64(1.0e6);
        assert!(big.is_finite());
        assert!((big.to_f64() - 1.0e6).abs() / 1.0e6 < 2f64.powi(-7));
    }

    #[test]
    fn accumulation_stalls_at_2_pow_8() {
        let mut acc = Bf16::ZERO;
        for _ in 0..1024 {
            acc += Bf16::ONE;
        }
        assert_eq!(acc.to_f64(), 256.0);
    }

    #[test]
    fn overflow_carry_to_infinity() {
        // Largest finite f32 rounds to bf16 infinity via the carry chain.
        assert_eq!(Bf16::from_f32(f32::MAX).to_bits(), 0x7F80);
    }
}

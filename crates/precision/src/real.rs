//! The [`Real`] trait: the generic scalar abstraction all matrix-profile
//! kernels are written against.
//!
//! `mdmp-core` instantiates every kernel once per precision mode; the trait
//! keeps that code monomorphic (no dynamic dispatch on the hot path) while
//! letting a single implementation cover FP64, FP32, FP16, BF16 and TF32 —
//! mirroring how the paper's CUDA code is templated over the data type.

use crate::{Bf16, Half, Tf32};
use core::fmt::{Debug, Display};
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A floating point scalar usable in the matrix profile kernels.
///
/// Implementations exist for [`f64`], [`f32`], [`Half`], [`Bf16`] and
/// [`Tf32`]. All conversions in and out go through `f64`, which represents
/// every value of every supported format exactly.
pub trait Real:
    Copy
    + Clone
    + Default
    + Send
    + Sync
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + 'static
{
    /// Human-readable format name ("FP64", "FP16", …).
    const NAME: &'static str;
    /// Storage size per element in bytes — drives the simulated memory
    /// traffic, hence the bandwidth advantage of the reduced formats.
    const BYTES: usize;
    /// Unit roundoff ε (2⁻⁵², 2⁻²³, 2⁻¹⁰ for FP64/FP32/FP16 as quoted in
    /// §V-B of the paper).
    const EPSILON: f64;
    /// Largest finite value, as `f64`.
    const MAX_FINITE: f64;

    /// Round an `f64` to this format (round-to-nearest-even).
    fn from_f64(x: f64) -> Self;
    /// Widen to `f64` exactly.
    fn to_f64(self) -> f64;

    /// Additive identity.
    fn zero() -> Self {
        Self::from_f64(0.0)
    }
    /// Multiplicative identity.
    fn one() -> Self {
        Self::from_f64(1.0)
    }
    /// Positive infinity (used as the sort sentinel).
    fn infinity() -> Self;
    /// Negative infinity.
    fn neg_infinity() -> Self;

    /// Square root in this precision.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `self * a + b` with the rounding the target hardware's FMA provides.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Reciprocal `1/self` in this precision.
    fn recip(self) -> Self {
        Self::one() / self
    }

    /// `true` for NaN.
    fn is_nan(self) -> bool;
    /// `true` for finite values.
    fn is_finite(self) -> bool;

    /// IEEE `minNum` minimum (NaN loses).
    fn min(self, other: Self) -> Self;
    /// IEEE `maxNum` maximum (NaN loses).
    fn max(self, other: Self) -> Self;

    /// Total order for the sort network: −∞ < finite < +∞ < NaN.
    fn total_order(self, other: Self) -> core::cmp::Ordering;

    /// Integer image of [`Real::total_order`]: a monotone key such that
    /// `a.total_order(b) == a.sort_key().cmp(&b.sort_key())` for every pair
    /// of bit patterns (NaNs of any sign/payload collapse to the maximum
    /// key, matching `total_order`'s NaN handling). The sort network hoists
    /// keys once per fiber so each compare-exchange is a single integer
    /// comparison plus conditional moves.
    type SortKey: Copy + Ord + Send + Sync + Debug + 'static;

    /// Compute the integer sort key (see [`Real::SortKey`]).
    fn sort_key(self) -> Self::SortKey;

    /// `self` strictly after `other` in [`Real::total_order`] — the swap
    /// predicate of an ascending compare-exchange. Branchless via the
    /// integer key; tests pin it to `total_order(..) == Greater` exactly.
    #[inline]
    fn total_gt(self, other: Self) -> bool {
        self.sort_key() > other.sort_key()
    }

    /// `self` strictly before `other` in [`Real::total_order`] — the swap
    /// predicate of a descending compare-exchange.
    #[inline]
    fn total_lt(self, other: Self) -> bool {
        self.sort_key() < other.sort_key()
    }

    /// Convert a small non-negative integer (segment length, dimension
    /// index, …) into this format.
    fn from_usize(x: usize) -> Self {
        Self::from_f64(x as f64)
    }
}

/// Monotone integer key for the f32 total order with NaNs collapsed to the
/// maximum: `total_order(a, b) == key(a).cmp(&key(b))` for every pair of
/// bit patterns. Standard sign-magnitude-to-two's-complement flip, then all
/// NaNs (any sign, any payload) pinned to `i32::MAX`.
#[inline(always)]
fn sort_key_f32(v: f32) -> i32 {
    let bits = v.to_bits() as i32;
    let flipped = bits ^ (((bits >> 31) as u32) >> 1) as i32;
    if v.is_nan() {
        i32::MAX
    } else {
        flipped
    }
}

/// f64 counterpart of [`sort_key_f32`].
#[inline(always)]
fn sort_key_f64(v: f64) -> i64 {
    let bits = v.to_bits() as i64;
    let flipped = bits ^ (((bits >> 63) as u64) >> 1) as i64;
    if v.is_nan() {
        i64::MAX
    } else {
        flipped
    }
}

impl Real for f64 {
    const NAME: &'static str = "FP64";
    const BYTES: usize = 8;
    const EPSILON: f64 = 2.220446049250313e-16; // 2^-52
    const MAX_FINITE: f64 = f64::MAX;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn infinity() -> Self {
        f64::INFINITY
    }
    #[inline]
    fn neg_infinity() -> Self {
        f64::NEG_INFINITY
    }
    #[inline]
    fn sqrt(self) -> Self {
        self.sqrt()
    }
    #[inline]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self.mul_add(a, b)
    }
    #[inline]
    fn is_nan(self) -> bool {
        self.is_nan()
    }
    #[inline]
    fn is_finite(self) -> bool {
        self.is_finite()
    }
    #[inline]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline]
    fn total_order(self, other: Self) -> core::cmp::Ordering {
        // Collapse -0/+0 and order NaN last regardless of sign, matching the
        // behaviour of the reduced formats' comparator.
        match (self.is_nan(), other.is_nan()) {
            (true, true) => core::cmp::Ordering::Equal,
            (true, false) => core::cmp::Ordering::Greater,
            (false, true) => core::cmp::Ordering::Less,
            (false, false) => self.total_cmp(&other),
        }
    }
    type SortKey = i64;
    #[inline(always)]
    fn sort_key(self) -> i64 {
        sort_key_f64(self)
    }
}

impl Real for f32 {
    const NAME: &'static str = "FP32";
    const BYTES: usize = 4;
    const EPSILON: f64 = 1.1920928955078125e-7; // 2^-23
    const MAX_FINITE: f64 = f32::MAX as f64;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn infinity() -> Self {
        f32::INFINITY
    }
    #[inline]
    fn neg_infinity() -> Self {
        f32::NEG_INFINITY
    }
    #[inline]
    fn sqrt(self) -> Self {
        self.sqrt()
    }
    #[inline]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self.mul_add(a, b)
    }
    #[inline]
    fn is_nan(self) -> bool {
        self.is_nan()
    }
    #[inline]
    fn is_finite(self) -> bool {
        self.is_finite()
    }
    #[inline]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline]
    fn total_order(self, other: Self) -> core::cmp::Ordering {
        match (self.is_nan(), other.is_nan()) {
            (true, true) => core::cmp::Ordering::Equal,
            (true, false) => core::cmp::Ordering::Greater,
            (false, true) => core::cmp::Ordering::Less,
            (false, false) => self.total_cmp(&other),
        }
    }
    type SortKey = i32;
    #[inline(always)]
    fn sort_key(self) -> i32 {
        sort_key_f32(self)
    }
}

impl Real for Half {
    const NAME: &'static str = "FP16";
    const BYTES: usize = 2;
    const EPSILON: f64 = 0.0009765625; // 2^-10
    const MAX_FINITE: f64 = 65504.0;

    #[inline]
    fn from_f64(x: f64) -> Self {
        Half::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        Half::to_f64(self)
    }
    #[inline]
    fn infinity() -> Self {
        Half::INFINITY
    }
    #[inline]
    fn neg_infinity() -> Self {
        Half::NEG_INFINITY
    }
    #[inline]
    fn sqrt(self) -> Self {
        Half::sqrt(self)
    }
    #[inline]
    fn abs(self) -> Self {
        Half::abs(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        Half::mul_add(self, a, b)
    }
    #[inline]
    fn is_nan(self) -> bool {
        Half::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        Half::is_finite(self)
    }
    #[inline]
    fn min(self, other: Self) -> Self {
        Half::min(self, other)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        Half::max(self, other)
    }
    #[inline]
    fn total_order(self, other: Self) -> core::cmp::Ordering {
        self.total_cmp(&other)
    }
    type SortKey = i32;
    #[inline(always)]
    fn sort_key(self) -> i32 {
        self.total_key()
    }
}

impl Real for Bf16 {
    const NAME: &'static str = "BF16";
    const BYTES: usize = 2;
    const EPSILON: f64 = 0.0078125; // 2^-7
    const MAX_FINITE: f64 = 3.3895313892515355e38;

    #[inline]
    fn from_f64(x: f64) -> Self {
        Bf16::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        Bf16::to_f64(self)
    }
    #[inline]
    fn infinity() -> Self {
        Bf16::INFINITY
    }
    #[inline]
    fn neg_infinity() -> Self {
        Bf16::NEG_INFINITY
    }
    #[inline]
    fn sqrt(self) -> Self {
        Bf16::sqrt(self)
    }
    #[inline]
    fn abs(self) -> Self {
        Bf16::abs(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        Bf16::mul_add(self, a, b)
    }
    #[inline]
    fn is_nan(self) -> bool {
        Bf16::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        Bf16::is_finite(self)
    }
    #[inline]
    fn min(self, other: Self) -> Self {
        Bf16::min(self, other)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        Bf16::max(self, other)
    }
    #[inline]
    fn total_order(self, other: Self) -> core::cmp::Ordering {
        self.total_cmp(&other)
    }
    type SortKey = i32;
    #[inline(always)]
    fn sort_key(self) -> i32 {
        self.total_key()
    }
}

impl Real for Tf32 {
    const NAME: &'static str = "TF32";
    const BYTES: usize = 4; // TF32 occupies a full 32-bit word in memory
    const EPSILON: f64 = 0.0009765625; // 2^-10 (10 explicit mantissa bits)
    const MAX_FINITE: f64 = f32::MAX as f64;

    #[inline]
    fn from_f64(x: f64) -> Self {
        Tf32::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        Tf32::to_f64(self)
    }
    #[inline]
    fn infinity() -> Self {
        Tf32::INFINITY
    }
    #[inline]
    fn neg_infinity() -> Self {
        Tf32::NEG_INFINITY
    }
    #[inline]
    fn sqrt(self) -> Self {
        Tf32::sqrt(self)
    }
    #[inline]
    fn abs(self) -> Self {
        Tf32::abs(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        Tf32::mul_add(self, a, b)
    }
    #[inline]
    fn is_nan(self) -> bool {
        Tf32::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        Tf32::is_finite(self)
    }
    #[inline]
    fn min(self, other: Self) -> Self {
        Tf32::min(self, other)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        Tf32::max(self, other)
    }
    #[inline]
    fn total_order(self, other: Self) -> core::cmp::Ordering {
        self.total_cmp(&other)
    }
    type SortKey = i32;
    #[inline(always)]
    fn sort_key(self) -> i32 {
        self.total_key()
    }
}

/// Convert a slice of `f64` into any [`Real`] format (one rounding per
/// element), as the host→device copy of a reduced-precision run does.
pub fn convert_slice<T: Real>(src: &[f64]) -> Vec<T> {
    src.iter().map(|&x| T::from_f64(x)).collect()
}

/// Widen a slice of any [`Real`] format back to `f64` exactly.
pub fn widen_slice<T: Real>(src: &[T]) -> Vec<f64> {
    src.iter().map(|&x| x.to_f64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_contract<T: Real>() {
        assert_eq!(T::zero().to_f64(), 0.0);
        assert_eq!(T::one().to_f64(), 1.0);
        assert!(T::infinity().to_f64().is_infinite());
        assert!(T::neg_infinity().to_f64() < 0.0);
        assert!(T::from_f64(f64::NAN).is_nan());
        assert!(!T::infinity().is_finite());
        let two = T::from_f64(2.0);
        assert_eq!((T::one() + T::one()).to_f64(), 2.0);
        assert_eq!((two * two).to_f64(), 4.0);
        assert_eq!((two - T::one()).to_f64(), 1.0);
        assert_eq!((T::from_f64(6.0) / two).to_f64(), 3.0);
        assert_eq!((-two).to_f64(), -2.0);
        assert_eq!(T::from_f64(4.0).sqrt().to_f64(), 2.0);
        assert_eq!(T::from_f64(-3.0).abs().to_f64(), 3.0);
        assert_eq!(two.mul_add(two, T::one()).to_f64(), 5.0);
        assert_eq!(two.recip().to_f64(), 0.5);
        assert_eq!(T::one().min(two).to_f64(), 1.0);
        assert_eq!(T::one().max(two).to_f64(), 2.0);
        assert_eq!(T::from_usize(7).to_f64(), 7.0);
        // Rounding sanity: epsilon really is the distance from 1.0 upward.
        let next = T::from_f64(1.0 + T::EPSILON);
        assert!(next.to_f64() > 1.0);
        let below = T::from_f64(1.0 + T::EPSILON / 4.0);
        assert_eq!(
            below.to_f64(),
            1.0,
            "{}: eps/4 above 1.0 must round down",
            T::NAME
        );
        // Total order sends NaN last and infinities to the ends.
        use core::cmp::Ordering;
        assert_eq!(T::neg_infinity().total_order(T::zero()), Ordering::Less);
        assert_eq!(T::infinity().total_order(T::zero()), Ordering::Greater);
        assert_eq!(
            T::from_f64(f64::NAN).total_order(T::infinity()),
            Ordering::Greater
        );
    }

    /// The branchless predicates must agree with `total_order` for every
    /// pair, including NaN (any payload), ±0 and ±∞ — they feed the sort
    /// network, so any divergence breaks bit-identity.
    fn check_predicates<T: Real>(values: &[T]) {
        use core::cmp::Ordering;
        for &x in values {
            for &y in values {
                let ord = x.total_order(y);
                assert_eq!(
                    x.sort_key().cmp(&y.sort_key()),
                    ord,
                    "{}: sort_key order for ({x:?}, {y:?}) disagrees with total_order",
                    T::NAME
                );
                assert_eq!(
                    x.total_gt(y),
                    ord == Ordering::Greater,
                    "{}: total_gt({x:?}, {y:?}) disagrees with total_order",
                    T::NAME
                );
                assert_eq!(
                    x.total_lt(y),
                    ord == Ordering::Less,
                    "{}: total_lt({x:?}, {y:?}) disagrees with total_order",
                    T::NAME
                );
            }
        }
    }

    #[test]
    fn branchless_predicates_match_total_order_f32() {
        let mut values: Vec<f32> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            f32::MAX,
            f32::MIN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            -f32::NAN,
            f32::from_bits(0x7F80_0001), // signalling-NaN payload
            f32::from_bits(0xFFC0_1234), // negative NaN, nonzero payload
            f32::from_bits(0x0000_0001), // smallest subnormal
            f32::from_bits(0x8000_0001),
        ];
        // Deterministic pseudo-random bit patterns cover the rest.
        let mut state = 0x1234_5678_u32;
        for _ in 0..64 {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            values.push(f32::from_bits(state));
        }
        check_predicates(&values);
    }

    #[test]
    fn branchless_predicates_match_total_order_f64() {
        let mut values: Vec<f64> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::MAX,
            f64::MIN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            -f64::NAN,
            f64::from_bits(0x7FF0_0000_0000_0001),
            f64::from_bits(0xFFF8_0000_0000_1234),
            f64::from_bits(0x0000_0000_0000_0001),
            f64::from_bits(0x8000_0000_0000_0001),
        ];
        let mut state = 0x1234_5678_9ABC_DEF0_u64;
        for _ in 0..64 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            values.push(f64::from_bits(state));
        }
        check_predicates(&values);
    }

    #[test]
    fn branchless_predicates_match_total_order_reduced() {
        let bits: Vec<u16> = (0..=u16::MAX).step_by(257).collect();
        let halves: Vec<Half> = bits.iter().map(|&b| Half::from_bits(b)).collect();
        check_predicates(&halves);
        let bf16s: Vec<Bf16> = bits.iter().map(|&b| Bf16::from_bits(b)).collect();
        check_predicates(&bf16s);
        let flexes: Vec<crate::Flex<5, 10>> = bits
            .iter()
            .map(|&b| crate::Flex::<5, 10>::from_bits(b as u32))
            .collect();
        check_predicates(&flexes);
        let samples = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            1e30,
            -1e30,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            -f64::NAN,
        ];
        let tf32s: Vec<Tf32> = samples.iter().map(|&x| Tf32::from_f64(x)).collect();
        check_predicates(&tf32s);
    }

    #[test]
    fn trait_contract_f64() {
        check_contract::<f64>();
    }

    #[test]
    fn trait_contract_f32() {
        check_contract::<f32>();
    }

    #[test]
    fn trait_contract_half() {
        check_contract::<Half>();
    }

    #[test]
    fn trait_contract_bf16() {
        check_contract::<Bf16>();
    }

    #[test]
    fn trait_contract_tf32() {
        check_contract::<Tf32>();
    }

    #[test]
    fn bytes_and_epsilon_constants() {
        assert_eq!(<f64 as Real>::BYTES, 8);
        assert_eq!(<f32 as Real>::BYTES, 4);
        assert_eq!(<Half as Real>::BYTES, 2);
        assert_eq!(<Bf16 as Real>::BYTES, 2);
        assert_eq!(<Tf32 as Real>::BYTES, 4);
        assert_eq!(<f64 as Real>::EPSILON, 2f64.powi(-52));
        assert_eq!(<f32 as Real>::EPSILON, 2f64.powi(-23));
        assert_eq!(<Half as Real>::EPSILON, 2f64.powi(-10));
        assert_eq!(<Bf16 as Real>::EPSILON, 2f64.powi(-7));
        assert_eq!(<Tf32 as Real>::EPSILON, 2f64.powi(-10));
    }

    #[test]
    fn convert_and_widen_slices() {
        let src = vec![0.0, 1.0, -2.5, 1.0 / 3.0];
        let halves: Vec<Half> = convert_slice(&src);
        let back = widen_slice(&halves);
        assert_eq!(back[0], 0.0);
        assert_eq!(back[1], 1.0);
        assert_eq!(back[2], -2.5);
        assert!((back[3] - 1.0 / 3.0).abs() < 1e-3);
    }
}

//! IEEE 754 binary16 (`Half`) implemented from scratch.
//!
//! Layout: 1 sign bit, 5 exponent bits (bias 15), 10 explicit significand
//! bits (11 with the implicit leading one). Finite range ±65504, smallest
//! positive normal 2⁻¹⁴, smallest positive subnormal 2⁻²⁴.
//!
//! Every arithmetic operation converts the (binary16-exact) operands to
//! `f64`, performs the operation there, and rounds the `f64` result back to
//! binary16 with round-to-nearest-even. For `+`, `-`, `*` the `f64`
//! intermediate is exact, so the single final rounding makes the operation
//! correctly rounded — the same contract CUDA's `__hadd`/`__hmul` intrinsics
//! provide. For `/` and `sqrt` the `f64` intermediate is itself correctly
//! rounded to 53 bits before the final rounding to 11 bits; the resulting
//! double rounding can differ from a directly rounded result only when the
//! 53-bit value sits within 2⁻⁴² ulp of a 11-bit rounding boundary, which is
//! irrelevant at the error magnitudes this library studies.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An IEEE 754 binary16 ("half precision") floating point number.
///
/// The in-memory representation is the 16 raw bits, so `&[Half]` models the
/// 2-byte-per-element storage footprint that gives the paper's FP16 modes
/// their bandwidth advantage.
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct Half(u16);

const EXP_MASK: u16 = 0x7C00;
const FRAC_MASK: u16 = 0x03FF;

/// Round a finite or non-finite `f64` to binary16 bits, round-to-nearest-even.
pub(crate) fn f64_to_f16_bits(x: f64) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 48) & 0x8000) as u16;
    let exp = ((bits >> 52) & 0x7FF) as i32;
    let frac = bits & 0x000F_FFFF_FFFF_FFFF;

    if exp == 0x7FF {
        // NaN propagates as a quiet NaN; infinity keeps its sign.
        return if frac != 0 {
            sign | 0x7E00
        } else {
            sign | 0x7C00
        };
    }
    let e = exp - 1023; // unbiased exponent; exp==0 (f64 subnormal) maps far below f16 range
    if exp == 0 {
        // f64 subnormals are < 2^-1022, far below the smallest f16 subnormal.
        return sign;
    }
    if e > 15 {
        return sign | 0x7C00; // magnitude >= 2^16 > 65504+ulp/2: overflow to infinity
    }
    if e >= -14 {
        // Normal binary16 candidate: keep 10 fraction bits, RNE on the low 42.
        let mut m = (frac >> 42) as u16;
        let rest = frac & ((1u64 << 42) - 1);
        let halfway = 1u64 << 41;
        let mut e16 = (e + 15) as u16;
        if rest > halfway || (rest == halfway && (m & 1) == 1) {
            m += 1;
            if m == 0x400 {
                m = 0;
                e16 += 1;
                if e16 >= 31 {
                    return sign | 0x7C00;
                }
            }
        }
        return sign | (e16 << 10) | m;
    }
    // Subnormal binary16 (or underflow to zero). The target quantum is 2^-24;
    // round(value / 2^-24) with the full 53-bit significand participating.
    let sig = (1u64 << 52) | frac;
    let shift = 28 - e; // e <= -15 => shift >= 43
    if shift >= 64 {
        return sign; // below half the smallest subnormal: flush to signed zero
    }
    let shift = shift as u32;
    let mut m = (sig >> shift) as u16;
    let rest = sig & ((1u64 << shift) - 1);
    let halfway = 1u64 << (shift - 1);
    if rest > halfway || (rest == halfway && (m & 1) == 1) {
        m += 1; // may carry into the smallest normal (0x0400) — a valid encoding
    }
    sign | m
}

/// Widen binary16 bits to `f64` exactly (every binary16 value is
/// representable in `f64`).
pub(crate) fn f16_bits_to_f64(h: u16) -> f64 {
    let sign = ((h >> 15) & 1) as u64;
    let exp = ((h >> 10) & 0x1F) as u64;
    let frac = (h & FRAC_MASK) as u64;
    if exp == 0x1F {
        let bits = if frac != 0 {
            (sign << 63) | 0x7FF8_0000_0000_0000 | (frac << 42)
        } else {
            (sign << 63) | 0x7FF0_0000_0000_0000
        };
        return f64::from_bits(bits);
    }
    if exp == 0 {
        // Zero or subnormal: frac * 2^-24 is exact in f64.
        let magnitude = (frac as f64) * 2f64.powi(-24);
        return if sign == 1 { -magnitude } else { magnitude };
    }
    let e = exp as i64 - 15 + 1023;
    f64::from_bits((sign << 63) | ((e as u64) << 52) | (frac << 42))
}

impl Half {
    /// Positive zero.
    pub const ZERO: Half = Half(0x0000);
    /// One.
    pub const ONE: Half = Half(0x3C00);
    /// Negative one.
    pub const NEG_ONE: Half = Half(0xBC00);
    /// Positive infinity.
    pub const INFINITY: Half = Half(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: Half = Half(0xFC00);
    /// A quiet NaN.
    pub const NAN: Half = Half(0x7E00);
    /// Largest finite value, 65504.
    pub const MAX: Half = Half(0x7BFF);
    /// Most negative finite value, −65504.
    pub const MIN: Half = Half(0xFBFF);
    /// Smallest positive normal value, 2⁻¹⁴.
    pub const MIN_POSITIVE: Half = Half(0x0400);
    /// Smallest positive subnormal value, 2⁻²⁴.
    pub const MIN_POSITIVE_SUBNORMAL: Half = Half(0x0001);
    /// Machine epsilon: distance from 1.0 to the next larger value, 2⁻¹⁰.
    pub const EPSILON: Half = Half(0x1400);

    /// Construct from raw binary16 bits.
    #[inline]
    pub const fn from_bits(bits: u16) -> Half {
        Half(bits)
    }

    /// The raw binary16 bits.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Round an `f64` to the nearest binary16 (ties to even).
    #[inline]
    pub fn from_f64(x: f64) -> Half {
        Half(f64_to_f16_bits(x))
    }

    /// Round an `f32` to the nearest binary16 (ties to even).
    #[inline]
    pub fn from_f32(x: f32) -> Half {
        Half(f64_to_f16_bits(x as f64))
    }

    /// Widen to `f64` (exact).
    #[inline]
    pub fn to_f64(self) -> f64 {
        f16_bits_to_f64(self.0)
    }

    /// Widen to `f32` (exact — every binary16 value fits in `f32`).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f64(self.0) as f32
    }

    /// `true` for NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & FRAC_MASK) != 0
    }

    /// `true` for ±∞.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// `true` for anything that is neither NaN nor ±∞.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// `true` for subnormal values (nonzero, exponent field zero).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & FRAC_MASK) != 0
    }

    /// `true` for +0 or −0.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & 0x7FFF) == 0
    }

    /// `true` when the sign bit is set (including −0 and NaNs with sign).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & 0x8000) != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Half {
        Half(self.0 & 0x7FFF)
    }

    /// Square root, correctly rounded through the exact f64 widening.
    #[inline]
    pub fn sqrt(self) -> Half {
        Half::from_f64(self.to_f64().sqrt())
    }

    /// Reciprocal `1/x`.
    #[inline]
    pub fn recip(self) -> Half {
        Half::from_f64(1.0 / self.to_f64())
    }

    /// Fused multiply-add `self * a + b` with a single final rounding —
    /// the behaviour of the GPU `HFMA` instruction.
    #[inline]
    pub fn mul_add(self, a: Half, b: Half) -> Half {
        Half::from_f64(self.to_f64().mul_add(a.to_f64(), b.to_f64()))
    }

    /// IEEE `minNum`-style minimum: returns the other operand if one is NaN.
    #[inline]
    pub fn min(self, other: Half) -> Half {
        if self.is_nan() {
            return other;
        }
        if other.is_nan() {
            return self;
        }
        if self.to_f64() <= other.to_f64() {
            self
        } else {
            other
        }
    }

    /// IEEE `maxNum`-style maximum: returns the other operand if one is NaN.
    #[inline]
    pub fn max(self, other: Half) -> Half {
        if self.is_nan() {
            return other;
        }
        if other.is_nan() {
            return self;
        }
        if self.to_f64() >= other.to_f64() {
            self
        } else {
            other
        }
    }

    /// Total order for sorting: −∞ < finite < +∞ < NaN, with −0 < +0.
    ///
    /// This is the comparator the simulated Bitonic sort network uses, so
    /// that NaNs produced by half-precision overflow behave deterministically
    /// (they sink to the end of the ascending order, exactly like sorting
    /// with a `+∞` sentinel on a GPU).
    #[inline]
    pub fn total_cmp(&self, other: &Half) -> Ordering {
        self.total_key().cmp(&other.total_key())
    }

    /// The monotone integer key behind [`Half::total_cmp`]: all NaNs map to
    /// `i32::MAX`, negatives below every non-negative (−0 maps to −1 < +0).
    #[inline]
    pub fn total_key(self) -> i32 {
        if self.is_nan() {
            return i32::MAX;
        }
        let bits = self.0 as i32;
        if bits & 0x8000 != 0 {
            -(bits & 0x7FFF) - 1
        } else {
            bits
        }
    }
}

macro_rules! half_binop {
    ($trait:ident, $method:ident, $op:tt, $assign_trait:ident, $assign_method:ident) => {
        impl $trait for Half {
            type Output = Half;
            #[inline]
            fn $method(self, rhs: Half) -> Half {
                Half::from_f64(self.to_f64() $op rhs.to_f64())
            }
        }
        impl $assign_trait for Half {
            #[inline]
            fn $assign_method(&mut self, rhs: Half) {
                *self = *self $op rhs;
            }
        }
    };
}

half_binop!(Add, add, +, AddAssign, add_assign);
half_binop!(Sub, sub, -, SubAssign, sub_assign);
half_binop!(Mul, mul, *, MulAssign, mul_assign);
half_binop!(Div, div, /, DivAssign, div_assign);

impl Neg for Half {
    type Output = Half;
    #[inline]
    fn neg(self) -> Half {
        Half(self.0 ^ 0x8000)
    }
}

impl PartialEq for Half {
    #[inline]
    fn eq(&self, other: &Half) -> bool {
        if self.is_nan() || other.is_nan() {
            return false;
        }
        if self.is_zero() && other.is_zero() {
            return true;
        }
        self.0 == other.0
    }
}

impl PartialOrd for Half {
    #[inline]
    fn partial_cmp(&self, other: &Half) -> Option<Ordering> {
        self.to_f64().partial_cmp(&other.to_f64())
    }
}

impl fmt::Debug for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}f16", self.to_f64())
    }
}

impl fmt::Display for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

impl From<f64> for Half {
    fn from(x: f64) -> Half {
        Half::from_f64(x)
    }
}

impl From<f32> for Half {
    fn from(x: f32) -> Half {
        Half::from_f32(x)
    }
}

impl From<Half> for f64 {
    fn from(h: Half) -> f64 {
        h.to_f64()
    }
}

impl From<Half> for f32 {
    fn from(h: Half) -> f32 {
        h.to_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_bit_patterns() {
        assert_eq!(Half::from_f64(0.0).to_bits(), 0x0000);
        assert_eq!(Half::from_f64(-0.0).to_bits(), 0x8000);
        assert_eq!(Half::from_f64(1.0).to_bits(), 0x3C00);
        assert_eq!(Half::from_f64(-1.0).to_bits(), 0xBC00);
        assert_eq!(Half::from_f64(2.0).to_bits(), 0x4000);
        assert_eq!(Half::from_f64(0.5).to_bits(), 0x3800);
        assert_eq!(Half::from_f64(65504.0).to_bits(), 0x7BFF);
        assert_eq!(Half::from_f64(f64::INFINITY).to_bits(), 0x7C00);
        assert_eq!(Half::from_f64(f64::NEG_INFINITY).to_bits(), 0xFC00);
        // 1/3 rounds to 0x3555 (0.333251953125)
        assert_eq!(Half::from_f64(1.0 / 3.0).to_bits(), 0x3555);
        // smallest subnormal
        assert_eq!(Half::from_f64(2f64.powi(-24)).to_bits(), 0x0001);
        // smallest normal
        assert_eq!(Half::from_f64(2f64.powi(-14)).to_bits(), 0x0400);
    }

    #[test]
    fn round_trip_all_finite_bit_patterns() {
        for bits in 0u16..=0xFFFF {
            let h = Half::from_bits(bits);
            if h.is_nan() {
                assert!(Half::from_f64(h.to_f64()).is_nan());
                continue;
            }
            let rt = Half::from_f64(h.to_f64());
            assert_eq!(rt.to_bits(), bits, "bits {bits:#06x} failed round trip");
        }
    }

    #[test]
    fn overflow_rounds_to_infinity_at_65520() {
        // 65504 is MAX; the overflow threshold is the midpoint 65520.
        assert_eq!(Half::from_f64(65519.999).to_bits(), 0x7BFF);
        assert_eq!(Half::from_f64(65520.0).to_bits(), 0x7C00); // tie rounds away (to even = inf)
        assert_eq!(Half::from_f64(65536.0).to_bits(), 0x7C00);
        assert_eq!(Half::from_f64(-65520.0).to_bits(), 0xFC00);
    }

    #[test]
    fn underflow_to_zero_and_subnormals() {
        let tiny = 2f64.powi(-25);
        assert_eq!(Half::from_f64(tiny).to_bits(), 0x0000); // exact tie to even (0)
        assert_eq!(Half::from_f64(tiny * 1.0001).to_bits(), 0x0001);
        assert_eq!(Half::from_f64(2f64.powi(-26)).to_bits(), 0x0000);
        assert_eq!(Half::from_f64(-2f64.powi(-24)).to_bits(), 0x8001);
        assert_eq!(Half::from_f64(2f64.powi(-300)).to_bits(), 0x0000);
        // f64 subnormal
        assert_eq!(Half::from_f64(f64::MIN_POSITIVE / 4.0).to_bits(), 0x0000);
    }

    #[test]
    fn round_to_nearest_even_ties() {
        // 1 + 2^-11 is exactly halfway between 1.0 (even) and 1+2^-10: ties to even -> 1.0
        assert_eq!(Half::from_f64(1.0 + 2f64.powi(-11)).to_bits(), 0x3C00);
        // 1 + 3*2^-11 is halfway between 1+2^-10 (odd) and 1+2^-9 (even): -> 1+2^-9
        assert_eq!(Half::from_f64(1.0 + 3.0 * 2f64.powi(-11)).to_bits(), 0x3C02);
        // just above the tie rounds up
        assert_eq!(
            Half::from_f64(1.0 + 2f64.powi(-11) + 2f64.powi(-30)).to_bits(),
            0x3C01
        );
    }

    #[test]
    fn rounding_carry_into_exponent() {
        // Largest value below 2.0 that rounds up to 2.0: 2 - 2^-11 = midpoint.
        assert_eq!(Half::from_f64(2.0 - 2f64.powi(-11)).to_bits(), 0x4000);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Half::from_f64(1.5);
        let b = Half::from_f64(2.25);
        assert_eq!((a + b).to_f64(), 3.75);
        assert_eq!((b - a).to_f64(), 0.75);
        assert_eq!((a * b).to_f64(), 3.375);
        assert_eq!((b / a).to_f64(), 1.5);
        assert_eq!((-a).to_f64(), -1.5);
        assert_eq!(a.mul_add(b, Half::ONE).to_f64(), 4.375);
    }

    #[test]
    fn arithmetic_rounds_each_operation() {
        // 1024 + 1 in binary16: 1 is below half ulp(1024)=1... ulp at 1024 is 1.0,
        // so 1025 is representable; 1024 + 0.4 rounds back to 1024.
        let big = Half::from_f64(1024.0);
        let small = Half::from_f64(0.4);
        assert_eq!((big + small).to_f64(), 1024.0);
        // Swamping: summing 2048 copies of 1.0 in f16 stalls at 2048
        let mut acc = Half::ZERO;
        for _ in 0..4096 {
            acc += Half::ONE;
        }
        assert_eq!(acc.to_f64(), 2048.0, "accumulation stalls at 2^11");
    }

    #[test]
    fn overflow_in_arithmetic() {
        let max = Half::MAX;
        assert!((max + max).is_infinite());
        assert!((max * Half::from_f64(2.0)).is_infinite());
        assert!(
            !(max + Half::ONE).is_infinite(),
            "65504+1 rounds back to 65504"
        );
    }

    #[test]
    fn nan_propagation_and_comparisons() {
        let nan = Half::NAN;
        assert!(nan.is_nan());
        assert!((nan + Half::ONE).is_nan());
        assert!(Half::from_f64(-1.0).sqrt().is_nan());
        assert!(nan != nan);
        assert!(nan.partial_cmp(&Half::ONE).is_none());
        assert_eq!(Half::ONE.min(nan).to_f64(), 1.0);
        assert_eq!(nan.max(Half::ONE).to_f64(), 1.0);
    }

    #[test]
    fn signed_zero_semantics() {
        let pz = Half::from_f64(0.0);
        let nz = Half::from_f64(-0.0);
        assert_eq!(pz, nz);
        assert_ne!(pz.to_bits(), nz.to_bits());
        assert_eq!(pz.total_cmp(&nz), Ordering::Greater);
    }

    #[test]
    fn total_cmp_ordering() {
        let mut vals = [
            Half::NAN,
            Half::INFINITY,
            Half::NEG_INFINITY,
            Half::ZERO,
            Half::ONE,
            Half::NEG_ONE,
            Half::MAX,
            Half::MIN,
        ];
        vals.sort_by(Half::total_cmp);
        let as_f64: Vec<f64> = vals.iter().map(|h| h.to_f64()).collect();
        assert_eq!(as_f64[0], f64::NEG_INFINITY);
        assert_eq!(as_f64[1], -65504.0);
        assert_eq!(as_f64[2], -1.0);
        assert_eq!(as_f64[3], 0.0);
        assert_eq!(as_f64[4], 1.0);
        assert_eq!(as_f64[5], 65504.0);
        assert_eq!(as_f64[6], f64::INFINITY);
        assert!(vals[7].is_nan());
    }

    #[test]
    fn subnormal_arithmetic() {
        let s = Half::MIN_POSITIVE_SUBNORMAL;
        assert!(s.is_subnormal());
        assert_eq!((s + s).to_bits(), 0x0002);
        assert_eq!((s / Half::from_f64(2.0)).to_bits(), 0x0000); // tie to even
        let almost_normal = Half::from_bits(0x03FF);
        assert!(almost_normal.is_subnormal());
        assert_eq!((almost_normal + s).to_bits(), 0x0400); // carries into normal
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Half::from_f64(1.5)), "1.5");
        assert_eq!(format!("{:?}", Half::from_f64(1.5)), "1.5f16");
    }
}

//! Stochastic rounding — an extension study on the reduced-precision theme.
//!
//! Round-to-nearest is *biased* for long accumulations: once the running
//! sum grows past `x / ε`, further addends round away entirely (the
//! swamping the paper's FP16C mode fights with Kahan compensation).
//! Stochastic rounding (round up with probability proportional to the
//! fractional position between the two neighbouring representable values)
//! is unbiased in expectation, which is why it is popular in low-precision
//! ML training. This module provides stochastically rounded conversion and
//! accumulation for [`Half`], with a deterministic counter-based RNG so
//! results stay reproducible.

use crate::Half;

/// A small counter-based RNG (splitmix64) so stochastic rounding is
/// reproducible and `Send + Sync` without shared state.
#[derive(Debug, Clone)]
pub struct SrRng {
    state: u64,
}

impl SrRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> SrRng {
        SrRng { state: seed }
    }

    /// Next uniform value in `[0, 1)`.
    #[inline]
    pub fn next_unit(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Round an `f64` to binary16 **stochastically**: if `x` lies between the
/// representable neighbours `lo ≤ x ≤ hi`, round up with probability
/// `(x − lo) / (hi − lo)`. Exactly representable values never move;
/// out-of-range values saturate like round-to-nearest.
pub fn round_stochastic(x: f64, rng: &mut SrRng) -> Half {
    if !x.is_finite() {
        return Half::from_f64(x);
    }
    let nearest = Half::from_f64(x);
    let nv = nearest.to_f64();
    if nv == x || !nearest.is_finite() {
        return nearest;
    }
    // The other neighbour lies on the opposite side of x.
    let (lo, hi) = if nv < x {
        (nearest, next_up(nearest))
    } else {
        (next_down(nearest), nearest)
    };
    let (lov, hiv) = (lo.to_f64(), hi.to_f64());
    if !lo.is_finite() || !hi.is_finite() || hiv == lov {
        return nearest;
    }
    let p_up = (x - lov) / (hiv - lov);
    if rng.next_unit() < p_up {
        hi
    } else {
        lo
    }
}

/// The next representable binary16 above `h` (+∞ stays put).
pub fn next_up(h: Half) -> Half {
    let bits = h.to_bits();
    if h.is_nan() || (bits & 0x7FFF) == 0x7C00 && bits < 0x8000 {
        return h;
    }
    if bits == 0x8000 {
        // -0 -> smallest positive subnormal
        return Half::from_bits(0x0001);
    }
    if bits & 0x8000 != 0 {
        Half::from_bits(bits - 1)
    } else {
        Half::from_bits(bits + 1)
    }
}

/// The next representable binary16 below `h` (−∞ stays put).
pub fn next_down(h: Half) -> Half {
    -next_up(-h)
}

/// A running binary16 sum with stochastically rounded additions: the
/// unbiased alternative to both the plain and the Kahan accumulator.
#[derive(Debug, Clone)]
pub struct StochasticSum {
    sum: Half,
    rng: SrRng,
}

impl StochasticSum {
    /// An empty sum with a seed.
    pub fn new(seed: u64) -> StochasticSum {
        StochasticSum {
            sum: Half::ZERO,
            rng: SrRng::new(seed),
        }
    }

    /// Add a term: the exact f64 sum of the current value and the addend is
    /// stochastically rounded back to binary16.
    pub fn add(&mut self, x: Half) {
        let exact = self.sum.to_f64() + x.to_f64();
        self.sum = round_stochastic(exact, &mut self.rng);
    }

    /// The current value.
    pub fn value(&self) -> Half {
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_never_move() {
        let mut rng = SrRng::new(1);
        for v in [0.0, 1.0, -2.5, 65504.0, 2f64.powi(-24)] {
            for _ in 0..20 {
                assert_eq!(round_stochastic(v, &mut rng).to_f64(), v);
            }
        }
    }

    #[test]
    fn rounds_to_one_of_the_two_neighbours() {
        let mut rng = SrRng::new(2);
        let x = 1.0 + 0.3 * 2f64.powi(-10); // 30% of the way to the next value
        let lo = 1.0;
        let hi = 1.0 + 2f64.powi(-10);
        let mut up = 0;
        let n = 20_000;
        for _ in 0..n {
            let r = round_stochastic(x, &mut rng).to_f64();
            assert!(r == lo || r == hi, "unexpected value {r}");
            if r == hi {
                up += 1;
            }
        }
        let p = up as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.02, "P(up) should be ~0.3, got {p}");
    }

    #[test]
    fn expectation_is_unbiased() {
        let mut rng = SrRng::new(3);
        let x = 2.0 + 0.77 * 2f64.powi(-9); // between 2 and 2+ulp(2)
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| round_stochastic(x, &mut rng).to_f64())
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - x).abs() < 2f64.powi(-9) * 0.02,
            "mean {mean} should approximate {x}"
        );
    }

    #[test]
    fn next_up_down_walk_the_grid() {
        assert_eq!(next_up(Half::ZERO).to_bits(), 0x0001);
        assert_eq!(next_down(Half::ZERO).to_bits(), 0x8001);
        assert_eq!(next_up(Half::from_f64(1.0)).to_f64(), 1.0 + 2f64.powi(-10));
        assert_eq!(
            next_down(Half::from_f64(1.0)).to_f64(),
            1.0 - 2f64.powi(-11)
        );
        assert_eq!(next_up(Half::MAX).to_f64(), f64::INFINITY);
        assert_eq!(next_up(Half::INFINITY).to_f64(), f64::INFINITY);
        // Round trip: down(up(x)) == x for normal values.
        let x = Half::from_f64(3.140625);
        assert_eq!(next_down(next_up(x)).to_bits(), x.to_bits());
    }

    #[test]
    fn stochastic_sum_escapes_swamping() {
        // Plain RNE summation of 8192 ones stalls at 2048; the stochastic
        // accumulator keeps growing (each add has probability ~1/ulp of
        // rounding up) and lands near the true value in expectation.
        let mut plain = Half::ZERO;
        let mut sr = StochasticSum::new(7);
        let n = 8192;
        for _ in 0..n {
            plain += Half::ONE;
            sr.add(Half::ONE);
        }
        assert_eq!(plain.to_f64(), 2048.0);
        let got = sr.value().to_f64();
        assert!(
            (got - n as f64).abs() < n as f64 * 0.15,
            "stochastic sum should track ~{n}, got {got}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut s = StochasticSum::new(seed);
            for i in 0..100 {
                s.add(Half::from_f64(0.1 + (i % 7) as f64 * 0.01));
            }
            s.value().to_bits()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}

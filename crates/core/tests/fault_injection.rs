//! Fault-injection recovery on the tensor-core GEMM path.
//!
//! The driver's retry machinery treats a tile as a transaction: a faulted
//! attempt throws away its planes and the retry starts from the tile's
//! precalculation. For the vector modes that contract is pinned by the
//! driver's own tests; the GEMM path adds a new wrinkle — the
//! tile-restarted panel recurrence carries state (`qt_prev`, `base_idx`)
//! across rows inside one attempt — so a recovered run must still be
//! **bit-identical** to a fault-free one in every TC mode.

use mdmp_core::{run_with_mode, MdmpConfig, MdmpRun};
use mdmp_data::synthetic::{generate_pair, SyntheticConfig};
use mdmp_data::MultiDimSeries;
use mdmp_faults::{FaultKind, FaultPlan};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_precision::PrecisionMode;
use std::sync::Arc;
use std::time::Duration;

fn synthetic_pair(n: usize, d: usize, m: usize, seed: u64) -> (MultiDimSeries, MultiDimSeries) {
    let cfg = SyntheticConfig {
        n_subsequences: n,
        dims: d,
        m,
        pattern: mdmp_data::Pattern::Sine,
        embeddings: 3,
        noise: 0.4,
        pattern_amplitude: 1.0,
        seed,
    };
    let pair = generate_pair(&cfg);
    (pair.reference, pair.query)
}

fn assert_bit_identical(a: &MdmpRun, b: &MdmpRun, label: &str) {
    let (pa, pb) = (&a.profile, &b.profile);
    assert_eq!(pa.n_query(), pb.n_query(), "{label}: shape");
    for j in 0..pa.n_query() {
        for k in 0..pa.dims() {
            assert_eq!(
                pa.value(j, k).to_bits(),
                pb.value(j, k).to_bits(),
                "{label}: P[{j}][{k}] bits differ"
            );
            assert_eq!(pa.index(j, k), pb.index(j, k), "{label}: I[{j}][{k}]");
        }
    }
}

/// Every TC mode, hit with one recoverable fault of each kind on distinct
/// tiles, must retry back to the exact fault-free bits — values by bit
/// pattern, argmin indices exactly, and the injection counters accounted.
#[test]
fn tensor_core_runs_recover_bit_identical_under_faults() {
    let (r, q) = synthetic_pair(160, 2, 12, 29);
    for mode in PrecisionMode::TC_MODES {
        let cfg = MdmpConfig::new(12, mode).with_tiles(4);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 2);
        let clean = run_with_mode(&r, &q, &cfg, &mut sys).unwrap();
        assert_eq!(clean.faults_injected, 0);
        assert!(clean.tc_chunk_k.is_some(), "{mode} must report a chunk");

        let plan = FaultPlan::new()
            .with_fault(0, FaultKind::Kernel)
            .with_fault(1, FaultKind::Stall { millis: 600 })
            .with_fault(3, FaultKind::PoisonNan);
        let faulted_cfg = cfg
            .clone()
            .with_fault_plan(Some(Arc::new(plan)))
            .with_tile_deadline(Some(Duration::from_millis(250)));
        let faulted = run_with_mode(&r, &q, &faulted_cfg, &mut sys).unwrap();

        assert_bit_identical(&clean, &faulted, &format!("{mode} recovered"));
        assert_eq!(faulted.faults_injected, 3, "{mode}: all three fired");
        assert_eq!(faulted.tile_retries, 3, "{mode}: one retry per fault");
        assert_eq!(
            faulted.plane_validation_failures, 1,
            "{mode}: the NaN poison is caught by the plane gate"
        );
        assert_eq!(clean.tc_chunk_k, faulted.tc_chunk_k);
    }
}

/// A mid-run retry must not perturb the *modelled* schedule either: cost
/// submission replays the clean tile costs, so the ledger and makespans of
/// a recovered TC run match the fault-free run exactly.
#[test]
fn recovered_tc_run_keeps_the_clean_cost_model() {
    let (r, q) = synthetic_pair(128, 2, 12, 31);
    let cfg = MdmpConfig::new(12, PrecisionMode::Fp16Tc).with_tiles(4);
    let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
    let clean = run_with_mode(&r, &q, &cfg, &mut sys).unwrap();
    let plan = FaultPlan::new().with_fault(2, FaultKind::Kernel);
    let faulted_cfg = cfg.clone().with_fault_plan(Some(Arc::new(plan)));
    let faulted = run_with_mode(&r, &q, &faulted_cfg, &mut sys).unwrap();
    assert_eq!(
        clean.modeled_seconds.to_bits(),
        faulted.modeled_seconds.to_bits(),
        "retries are host-side; the device schedule must not change"
    );
    assert_eq!(clean.device_makespans, faulted.device_makespans);
}

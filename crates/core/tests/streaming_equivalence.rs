//! PR 8 headline property suite: **streamed ≡ batch, bit for bit.**
//!
//! Two properties, each over random series, random append chunkings
//! (query / reference / interleaved, including chunks smaller than `m`),
//! and every precision mode including the tensor-core ones:
//!
//! 1. a streamed profile is bit-identical to a batch run tiled by the
//!    arrival pattern — replaying the session's tile log over the final
//!    series and min-merging in arrival order reproduces the streamed
//!    plane exactly;
//! 2. incremental appends (cached side statistics extended by the
//!    checkpointed fold) are bit-identical to recompute-from-scratch
//!    appends, and actually reuse cached segments while doing so.

use mdmp_core::{MatrixProfile, MdmpConfig, StreamingProfile};
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_data::MultiDimSeries;
use mdmp_precision::PrecisionMode;
use proptest::prelude::*;

/// Every mode the engine supports — the tensor-core trio included.
const MODES: [&str; 12] = [
    "fp64", "fp32", "fp16", "mixed", "fp16c", "bf16", "tf32", "fp8-e4m3", "fp8-e5m2", "fp16-tc",
    "bf16-tc", "tf32-tc",
];

/// Segment length; append chunks are drawn from 1..2m, so both sub-`m`
/// and super-`m` chunks occur.
const M: usize = 10;

fn full_pair(seed: u64) -> (MultiDimSeries, MultiDimSeries) {
    let pair = generate_pair(&SyntheticConfig {
        n_subsequences: 130,
        dims: 2,
        m: M,
        pattern: Pattern::Sine,
        embeddings: 2,
        noise: 0.3,
        pattern_amplitude: 1.0,
        seed,
    });
    (pair.reference, pair.query)
}

fn chunk(series: &MultiDimSeries, start: usize, len: usize) -> Vec<Vec<f64>> {
    (0..series.dims())
        .map(|k| series.dim(k)[start..start + len].to_vec())
        .collect()
}

/// An arrival plan applied identically to every profile under test: each
/// step appends `len` samples (clipped to the remaining tail) to one side.
#[derive(Debug, Clone)]
struct Plan {
    head_r: usize,
    head_q: usize,
    steps: Vec<(bool, usize)>,
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    (
        M..3 * M,
        M..3 * M,
        proptest::collection::vec((any::<bool>(), 1usize..2 * M), 1..6),
    )
        .prop_map(|(hr, hq, steps)| Plan {
            head_r: hr,
            head_q: hq,
            steps,
        })
}

/// Run the plan against one profile; returns the final (consumed) series
/// lengths so the replay knows the ground truth.
fn apply_plan(
    sp: &mut StreamingProfile,
    plan: &Plan,
    full_r: &MultiDimSeries,
    full_q: &MultiDimSeries,
) -> Result<(usize, usize), TestCaseError> {
    let mut cur_r = plan.head_r;
    let mut cur_q = plan.head_q;
    for &(to_query, len) in &plan.steps {
        if to_query {
            let len = len.min(full_q.len() - cur_q);
            if len == 0 {
                continue;
            }
            sp.append_query(&chunk(full_q, cur_q, len))
                .map_err(|e| TestCaseError::fail(format!("append_query: {e}")))?;
            cur_q += len;
        } else {
            let len = len.min(full_r.len() - cur_r);
            if len == 0 {
                continue;
            }
            sp.append_reference(&chunk(full_r, cur_r, len))
                .map_err(|e| TestCaseError::fail(format!("append_reference: {e}")))?;
            cur_r += len;
        }
    }
    Ok((cur_r, cur_q))
}

fn assert_bits(a: &MatrixProfile, b: &MatrixProfile, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.n_query(), b.n_query(), "{}: shape", what);
    prop_assert_eq!(a.dims(), b.dims(), "{}: dims", what);
    for k in 0..b.dims() {
        for j in 0..b.n_query() {
            prop_assert_eq!(
                a.value(j, k).to_bits(),
                b.value(j, k).to_bits(),
                "{}: value bits differ at dim {} column {} ({} vs {})",
                what,
                k,
                j,
                a.value(j, k),
                b.value(j, k)
            );
            prop_assert_eq!(
                a.index(j, k),
                b.index(j, k),
                "{}: index at {} {}",
                what,
                k,
                j
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streamed profile ≡ batch run with arrival-pattern tiling, bit for
    /// bit, in every precision mode.
    #[test]
    fn streamed_equals_arrival_tiling_batch_replay(
        mode_ix in 0usize..MODES.len(),
        seed in any::<u64>(),
        plan in plan_strategy(),
    ) {
        let mode = MODES[mode_ix].parse::<PrecisionMode>().expect("mode");
        let cfg = MdmpConfig::new(M, mode);
        let (full_r, full_q) = full_pair(seed);
        let mut sp = StreamingProfile::new(
            full_r.window(0, plan.head_r),
            full_q.window(0, plan.head_q),
            cfg.clone(),
        )
        .map_err(|e| TestCaseError::fail(format!("open: {e}")))?;
        let (end_r, end_q) = apply_plan(&mut sp, &plan, &full_r, &full_q)?;

        // Batch equivalent: the same tiles, computed from scratch over the
        // final series, min-merged in arrival order.
        let final_r = full_r.window(0, end_r);
        let final_q = full_q.window(0, end_q);
        let mut replayed = MatrixProfile::new_unset(end_q - M + 1, full_q.dims());
        for tile in sp.arrival_tiles() {
            let part = StreamingProfile::replay_tile(&final_r, &final_q, tile, &cfg);
            replayed.merge_min_columns(&part, tile.col0);
        }
        assert_bits(sp.profile(), &replayed, MODES[mode_ix])?;
    }

    /// Incremental-statistics appends ≡ recompute-from-scratch appends,
    /// bit for bit, in every precision mode — and the incremental session
    /// really does serve segments from its caches.
    #[test]
    fn incremental_appends_equal_scratch_appends(
        mode_ix in 0usize..MODES.len(),
        seed in any::<u64>(),
        plan in plan_strategy(),
    ) {
        let mode = MODES[mode_ix].parse::<PrecisionMode>().expect("mode");
        let cfg = MdmpConfig::new(M, mode);
        let (full_r, full_q) = full_pair(seed);
        let head_r = full_r.window(0, plan.head_r);
        let head_q = full_q.window(0, plan.head_q);
        let mut inc = StreamingProfile::new(head_r.clone(), head_q.clone(), cfg.clone())
            .map_err(|e| TestCaseError::fail(format!("open inc: {e}")))?;
        let mut scr = StreamingProfile::new_scratch(head_r, head_q, cfg)
            .map_err(|e| TestCaseError::fail(format!("open scratch: {e}")))?;
        let inc_ends = apply_plan(&mut inc, &plan, &full_r, &full_q)?;
        let scr_ends = apply_plan(&mut scr, &plan, &full_r, &full_q)?;
        prop_assert_eq!(inc_ends, scr_ends);
        assert_bits(inc.profile(), scr.profile(), MODES[mode_ix])?;
        if inc.stats().appends > 0 {
            prop_assert_eq!(inc.stats().appends, inc.stats().incremental_appends);
            prop_assert!(inc.stats().segments_reused > 0, "caches never used");
        }
        prop_assert_eq!(scr.stats().segments_reused, 0);
        prop_assert_eq!(scr.stats().segments_extended, 0);
    }
}

//! Bitwise determinism of the concurrent tile pipeline.
//!
//! The host worker pool changes *when* tiles are computed, never *what* is
//! computed or in which order results are merged: cost submission and
//! `merge_min_columns` happen on the coordinating thread in ascending tile
//! index, exactly like the sequential loop. These tests pin that contract —
//! parallel runs must be bit-identical to the 1-worker run in every
//! precision mode, including argmin ties that span tile boundaries.

use mdmp_core::{run_with_mode, MdmpConfig, MdmpRun};
use mdmp_data::synthetic::{generate_pair, SyntheticConfig};
use mdmp_data::MultiDimSeries;
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_precision::PrecisionMode;

const PAPER_MODES: [PrecisionMode; 5] = [
    PrecisionMode::Fp64,
    PrecisionMode::Fp32,
    PrecisionMode::Fp16,
    PrecisionMode::Mixed,
    PrecisionMode::Fp16c,
];

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// All modes the pipeline dispatches: the paper's five plus the PR 7
/// tensor-core GEMM modes, whose tile-restarted recurrence must be just as
/// schedule-independent as the streaming kernels.
fn all_modes() -> impl Iterator<Item = PrecisionMode> {
    PAPER_MODES.into_iter().chain(PrecisionMode::TC_MODES)
}

fn synthetic_pair(n: usize, d: usize, m: usize, seed: u64) -> (MultiDimSeries, MultiDimSeries) {
    let cfg = SyntheticConfig {
        n_subsequences: n,
        dims: d,
        m,
        pattern: mdmp_data::Pattern::Sine,
        embeddings: 3,
        noise: 0.4,
        pattern_amplitude: 1.0,
        seed,
    };
    let pair = generate_pair(&cfg);
    (pair.reference, pair.query)
}

fn run_with_workers(
    r: &MultiDimSeries,
    q: &MultiDimSeries,
    cfg: &MdmpConfig,
    workers: usize,
) -> MdmpRun {
    let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 2);
    let cfg = cfg.clone().with_host_workers(workers);
    run_with_mode(r, q, &cfg, &mut sys).unwrap()
}

/// Compare profiles bit-for-bit: f64 values by their bit pattern (so a
/// hypothetical -0.0 vs 0.0 or NaN-payload drift would be caught, not
/// excused) and argmin indices exactly.
fn assert_bit_identical(a: &MdmpRun, b: &MdmpRun, label: &str) {
    let (pa, pb) = (&a.profile, &b.profile);
    assert_eq!(pa.n_query(), pb.n_query(), "{label}: shape");
    assert_eq!(pa.dims(), pb.dims(), "{label}: dims");
    for j in 0..pa.n_query() {
        for k in 0..pa.dims() {
            assert_eq!(
                pa.value(j, k).to_bits(),
                pb.value(j, k).to_bits(),
                "{label}: P[{j}][{k}] bits differ"
            );
            assert_eq!(
                pa.index(j, k),
                pb.index(j, k),
                "{label}: I[{j}][{k}] differs"
            );
        }
    }
}

#[test]
fn parallel_runs_bit_identical_across_modes_and_worker_counts() {
    let (r, q) = synthetic_pair(220, 3, 16, 41);
    for mode in all_modes() {
        let cfg = MdmpConfig::new(16, mode).with_tiles(16);
        let sequential = run_with_workers(&r, &q, &cfg, 1);
        for workers in [2usize, 4, 8] {
            let parallel = run_with_workers(&r, &q, &cfg, workers);
            let label = format!("{mode} @ {workers} workers");
            assert_bit_identical(&sequential, &parallel, &label);
            // Modelled times come from in-order cost submission, so they
            // must match exactly too — same streams, same timelines.
            assert_eq!(
                sequential.modeled_seconds.to_bits(),
                parallel.modeled_seconds.to_bits(),
                "{label}: modeled time differs"
            );
            assert_eq!(
                sequential.device_makespans, parallel.device_makespans,
                "{label}: device makespans differ"
            );
            assert_eq!(parallel.host_workers, workers, "{label}: worker count");
        }
    }
}

/// A constant series makes *every* distance tie at zero, so every tile
/// proposes the same minimum for every column and the argmin is decided
/// purely by merge order (first-merged tile wins ties). If the parallel
/// pipeline merged in completion order instead of tile order, this test
/// would flake immediately.
#[test]
fn argmin_ties_spanning_tile_boundaries_resolve_identically() {
    let n = 96;
    let d = 2;
    let m = 8;
    let len = n + m - 1;
    let flat: Vec<Vec<f64>> = (0..d)
        .map(|k| (0..len).map(|t| ((t + k) % 7) as f64).collect())
        .collect();
    let r = MultiDimSeries::from_dims(flat.clone());
    let q = MultiDimSeries::from_dims(flat);
    for mode in all_modes() {
        // 9 tiles on a 3×3 grid: each query column is covered by three
        // row-tiles, so ties compete across tile boundaries.
        let cfg = MdmpConfig::new(m, mode).with_tiles(9);
        let sequential = run_with_workers(&r, &q, &cfg, 1);
        for workers in WORKER_COUNTS {
            let parallel = run_with_workers(&r, &q, &cfg, workers);
            assert_bit_identical(&sequential, &parallel, &format!("ties {mode} x{workers}"));
        }
    }
}

/// Buffer-pool accounting: reuse everywhere after each worker's first tile,
/// at most one allocation per worker, and per-worker busy times reported.
#[test]
fn buffer_pool_and_busy_accounting() {
    let (r, q) = synthetic_pair(180, 2, 12, 7);
    let cfg = MdmpConfig::new(12, PrecisionMode::Fp32).with_tiles(16);

    let seq = run_with_workers(&r, &q, &cfg, 1);
    assert_eq!(seq.buffer_pool_allocs, 1);
    assert_eq!(seq.buffer_pool_reuses, 15, "16 tiles, one fresh allocation");
    assert_eq!(seq.worker_busy_seconds.len(), 1);

    let par = run_with_workers(&r, &q, &cfg, 4);
    assert_eq!(par.worker_busy_seconds.len(), 4);
    assert!(par.buffer_pool_allocs <= 4);
    assert_eq!(
        par.buffer_pool_reuses + par.buffer_pool_allocs,
        16,
        "every tile either reuses planes or is a worker's first"
    );
    assert!(par.worker_busy_seconds.iter().all(|&b| b >= 0.0));
}

/// More workers than tiles must not deadlock or over-report workers.
#[test]
fn workers_clamped_to_tile_count() {
    let (r, q) = synthetic_pair(64, 2, 8, 3);
    let cfg = MdmpConfig::new(8, PrecisionMode::Fp64).with_tiles(2);
    let run = run_with_workers(&r, &q, &cfg, 8);
    assert_eq!(run.host_workers, 2, "worker pool clamps to tile count");
    let seq = run_with_workers(&r, &q, &cfg, 1);
    assert_bit_identical(&seq, &run, "clamped workers");
}

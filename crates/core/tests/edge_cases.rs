//! Edge-case coverage of the core pipeline: boundary shapes, degenerate
//! inputs, and the overflow scenario the paper's min-max normalization
//! guards against.

use mdmp_core::baseline::brute_force;
use mdmp_core::{run_with_mode, MdmpConfig};
use mdmp_data::rng::{fill_gaussian, seeded};
use mdmp_data::MultiDimSeries;
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_precision::PrecisionMode;

fn noise_series(seed: u64, d: usize, len: usize, amplitude: f64) -> MultiDimSeries {
    let mut rng = seeded(seed);
    let dims: Vec<Vec<f64>> = (0..d)
        .map(|_| {
            let mut v = vec![0.0; len];
            fill_gaussian(&mut rng, &mut v, amplitude);
            v
        })
        .collect();
    MultiDimSeries::from_dims(dims)
}

fn run(r: &MultiDimSeries, q: &MultiDimSeries, cfg: &MdmpConfig) -> mdmp_core::MatrixProfile {
    let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
    run_with_mode(r, q, cfg, &mut sys).unwrap().profile
}

#[test]
fn minimum_segment_length_m2() {
    let r = noise_series(1, 2, 40, 1.0);
    let q = noise_series(2, 2, 30, 1.0);
    let cfg = MdmpConfig::new(2, PrecisionMode::Fp64);
    let profile = run(&r, &q, &cfg);
    let bf = brute_force(&r, &q, 2, None);
    for k in 0..2 {
        for j in 0..profile.n_query() {
            // m=2 distances are coarse and near-ties abound; values must
            // agree, indices may flip between equally-good candidates.
            assert!((profile.value(j, k) - bf.value(j, k)).abs() < 1e-6);
        }
    }
}

#[test]
fn one_dimensional_series_like_the_turbine_case() {
    // d = 1: the sort network degenerates to the identity, the scan to a
    // division by one — the pipeline must still be exact.
    let r = noise_series(3, 1, 200, 1.0);
    let q = noise_series(4, 1, 150, 1.0);
    let cfg = MdmpConfig::new(16, PrecisionMode::Fp64).with_tiles(4);
    let profile = run(&r, &q, &cfg);
    let bf = brute_force(&r, &q, 16, None);
    for j in 0..profile.n_query() {
        assert!((profile.value(j, 0) - bf.value(j, 0)).abs() < 1e-6);
        assert_eq!(profile.index(j, 0), bf.index(j, 0));
    }
}

#[test]
fn non_power_of_two_dimensionality() {
    // d = 6 pads the sort fibers to 8 with +inf sentinels.
    let r = noise_series(5, 6, 80, 1.0);
    let q = noise_series(6, 6, 80, 1.0);
    let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
    let profile = run(&r, &q, &cfg);
    let bf = brute_force(&r, &q, 8, None);
    for k in 0..6 {
        for j in 0..profile.n_query() {
            assert!(
                (profile.value(j, k) - bf.value(j, k)).abs() < 1e-6,
                "P[{j}][{k}]"
            );
        }
    }
}

#[test]
fn single_reference_segment() {
    // n_r = 1: every query segment matches reference segment 0.
    let r = noise_series(7, 2, 16, 1.0); // len == m -> one segment
    let q = noise_series(8, 2, 60, 1.0);
    let cfg = MdmpConfig::new(16, PrecisionMode::Fp64);
    let profile = run(&r, &q, &cfg);
    for k in 0..2 {
        for j in 0..profile.n_query() {
            assert_eq!(profile.index(j, k), 0);
            assert!(profile.value(j, k).is_finite());
        }
    }
}

#[test]
fn single_query_segment() {
    let r = noise_series(9, 2, 100, 1.0);
    let q = noise_series(10, 2, 8, 1.0); // one query segment
    let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
    let profile = run(&r, &q, &cfg);
    assert_eq!(profile.n_query(), 1);
    let bf = brute_force(&r, &q, 8, None);
    assert_eq!(profile.index(0, 1), bf.index(0, 1));
}

#[test]
fn maximal_tiling_one_cell_rows() {
    // As many tiles as the grid allows on a tiny problem.
    let r = noise_series(11, 2, 20, 1.0);
    let q = noise_series(12, 2, 20, 1.0);
    let m = 8;
    let n = 13; // segments per side
    let cfg1 = MdmpConfig::new(m, PrecisionMode::Fp64);
    let cfg_many = MdmpConfig::new(m, PrecisionMode::Fp64).with_tiles(n * n);
    let a = run(&r, &q, &cfg1);
    let b = run(&r, &q, &cfg_many);
    // Per-tile precalculation computes row/column inits by direct dot
    // products where the single tile streams, so values agree to f64
    // rounding, and the argmin indices are identical.
    for k in 0..2 {
        for j in 0..a.n_query() {
            assert!((a.value(j, k) - b.value(j, k)).abs() < 1e-9);
            assert_eq!(a.index(j, k), b.index(j, k));
        }
    }
}

#[test]
fn flat_series_stays_unset_with_or_without_clamp() {
    // Constant input: zero variance, non-finite inverse norms, NaN
    // correlations. The clamp only rescues *finite* overshoot, so the NaN
    // propagates and no entry ever wins the min-update — degenerate data
    // is visible as unset entries rather than fabricated matches.
    let r = MultiDimSeries::from_dims(vec![vec![5.0; 64]]);
    let q = MultiDimSeries::from_dims(vec![vec![5.0; 64]]);
    for clamp in [true, false] {
        let mut cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
        cfg.clamp = clamp;
        let profile = run(&r, &q, &cfg);
        assert_eq!(profile.unset_fraction(), 1.0, "clamp={clamp}");
    }
}

#[test]
fn half_flat_series_flat_region_stays_unset() {
    let mut x = vec![1.0; 200];
    let mut rng = seeded(13);
    let mut tail = vec![0.0; 100];
    fill_gaussian(&mut rng, &mut tail, 1.0);
    x[100..].copy_from_slice(&tail);
    let s = MultiDimSeries::univariate(x);
    // Self-join with the exclusion zone so live segments cannot trivially
    // match themselves.
    let cfg = MdmpConfig::new(8, PrecisionMode::Fp64).self_join();
    let profile = run(&s, &s, &cfg);
    // Live-region columns find finite nonzero matches to other live
    // segments (never to a flat reference window — those are NaN).
    assert!(profile.value(150, 0).is_finite());
    assert!(profile.value(150, 0) > 0.0);
    let live_match = profile.index(150, 0) as usize;
    assert!(live_match >= 93, "live column must match a live segment");
    // Flat-region columns have no valid match at all.
    assert!(!profile.value(20, 0).is_finite());
    assert_eq!(profile.index(20, 0), -1);
}

#[test]
fn large_magnitude_data_overflows_fp16_but_not_after_normalization() {
    // The paper min-max normalizes the turbine data "to avoid overflow in
    // reduced precision computation" (Fig. 11). Reproduce the rationale:
    // raw data with magnitude ~3000 overflows binary16 intermediates
    // (sum of squares over a window exceeds 65504), normalized data works.
    let mut rng = seeded(14);
    let mut raw = vec![0.0; 300];
    fill_gaussian(&mut rng, &mut raw, 1.0);
    let big: Vec<f64> = raw.iter().map(|v| 3000.0 + 800.0 * v).collect();
    let big_series = MultiDimSeries::univariate(big.clone());
    let mut norm_series = MultiDimSeries::univariate(big);
    norm_series.min_max_normalize();

    // Overflowed FP16 intermediates (window sums of squares ~1.4e8 >>
    // 65504) yield NaN statistics; with NaN-propagating clamp semantics
    // the profile stays unset — the failure is visible, not silent.
    let cfg16 = MdmpConfig::new(16, PrecisionMode::Fp16);
    let raw16 = run(&big_series, &big_series, &cfg16);
    assert!(
        raw16.unset_fraction() > 0.9,
        "unnormalized FP16 must overflow visibly: {} unset",
        raw16.unset_fraction()
    );
    let norm16 = run(&norm_series, &norm_series, &cfg16);
    assert!(
        norm16.unset_fraction() < 0.05,
        "normalized FP16 must work: {} unset",
        norm16.unset_fraction()
    );
}

#[test]
fn rectangular_join_n_r_much_larger_than_n_q() {
    let r = noise_series(15, 3, 500, 1.0);
    let q = noise_series(16, 3, 40, 1.0);
    let cfg = MdmpConfig::new(8, PrecisionMode::Fp32).with_tiles(8);
    let profile = run(&r, &q, &cfg);
    assert_eq!(profile.n_query(), 33);
    assert!(profile.unset_fraction() < 1e-9);
    // Indices must lie within the reference range.
    for k in 0..3 {
        for j in 0..33 {
            let i = profile.index(j, k);
            assert!((0..493).contains(&i), "index {i} out of range");
        }
    }
}

//! Functional execution of one tile — the single-tile algorithm of
//! Pseudocode 1, generic over the precalculation precision `P` and the
//! main-loop precision `M`.
//!
//! The mode table (§III-C / Fig. 1):
//!
//! | mode  | `P`   | `M`   | kahan |
//! |-------|-------|-------|-------|
//! | FP64  | `f64` | `f64` | no    |
//! | FP32  | `f32` | `f32` | no    |
//! | FP16  | `Half`| `Half`| no    |
//! | Mixed | `f32` | `Half`| no    |
//! | FP16C | `Half`| `Half`| yes   |

use crate::config::MdmpConfig;
use crate::kernels::{
    self, comparator_schedule, dist_cost, dist_row, fused_row, gemm_cost, gemm_row, scan_divisors,
    sort_scan_cost, sort_scan_row, update_cost, update_profile_row, DistParams,
    DISPATCHES_ELIMINATED_PER_ROW,
};
use crate::precalc::{compute_stats, convert_qt, initial_qt, SeriesDevice, Stats};
use crate::profile::MatrixProfile;
use crate::tiling::Tile;
use mdmp_data::MultiDimSeries;
use mdmp_faults::FaultKind;
use mdmp_gpu_sim::{KernelCost, MmaConfig};
use mdmp_precision::Real;
use std::fmt;

/// The functional result of one tile plus the costs to charge the device.
#[derive(Debug)]
pub struct TileOutput {
    /// Profile over this tile's query columns, with **global** reference
    /// indices in the index plane.
    pub profile: MatrixProfile,
    /// Aggregated kernel costs in submission order
    /// (precalc, dist·rows, sort·rows, update·rows).
    pub kernel_costs: Vec<KernelCost>,
    /// H2D bytes for this tile's input windows.
    pub h2d_bytes: u64,
    /// D2H bytes for this tile's results.
    pub d2h_bytes: u64,
    /// Device-memory working set of the tile.
    pub device_bytes: u64,
    /// Host dispatches eliminated by the fused row pipeline
    /// (`2 × rows` when fused, `0` on the three-kernel path).
    pub eliminated_dispatches: u64,
}

/// The outputs of one tile's `precalculation` kernel, widened **exactly** to
/// f64 (every supported format embeds in f64 without rounding).
///
/// Because [`Stats::convert`] and [`convert_qt`] both round through f64, a
/// tile executed from a stored `TilePrecalc` is bit-identical to one whose
/// precalculation ran inline — which is what makes this the cacheable unit
/// for a result server: the cache key only needs to pin down the inputs of
/// the precalculation (series, window `m`, precalc format, kahan flag).
#[derive(Debug, Clone)]
pub struct TilePrecalc {
    /// Reference-side rolling statistics.
    pub rstats: Stats<f64>,
    /// Query-side rolling statistics.
    pub qstats: Stats<f64>,
    /// Initial correlation row `QT_r` (dimension-major, `d × n_q`).
    pub qt_row0: Vec<f64>,
    /// Initial correlation column `QT_q` (dimension-major, `d × n_r`).
    pub qt_col0: Vec<f64>,
}

impl TilePrecalc {
    /// Approximate heap footprint in bytes (for cache budgeting).
    pub fn approx_bytes(&self) -> u64 {
        let elems = self.rstats.mu.len() * 4
            + self.qstats.mu.len() * 4
            + self.qt_row0.len()
            + self.qt_col0.len();
        (elems * std::mem::size_of::<f64>()) as u64
    }
}

/// Run one tile's `precalculation` kernel in precision `P` and capture the
/// result exactly in f64.
pub fn compute_tile_precalc<P: Real>(
    reference: &MultiDimSeries,
    query: &MultiDimSeries,
    tile: &Tile,
    cfg: &MdmpConfig,
    kahan: bool,
) -> TilePrecalc {
    let m = cfg.m;
    // H2D copy: the tile's input windows, converted to the precalc format.
    let refd = SeriesDevice::<P>::load(reference, tile.row0, tile.rows + m - 1);
    let qd = SeriesDevice::<P>::load(query, tile.col0, tile.cols + m - 1);
    let rstats_p = compute_stats(&refd, m, kahan);
    let qstats_p = compute_stats(&qd, m, kahan);
    let (qt_row0_p, qt_col0_p) = initial_qt(&refd, &rstats_p, &qd, &qstats_p, m, kahan);
    TilePrecalc {
        rstats: rstats_p.convert(),
        qstats: qstats_p.convert(),
        qt_row0: convert_qt(&qt_row0_p),
        qt_col0: convert_qt(&qt_col0_p),
    }
}

/// Execute one tile functionally and collect its modelled costs.
pub fn execute_tile<P: Real, M: Real>(
    reference: &MultiDimSeries,
    query: &MultiDimSeries,
    tile: &Tile,
    cfg: &MdmpConfig,
    kahan: bool,
) -> TileOutput {
    let pre = compute_tile_precalc::<P>(reference, query, tile, cfg, kahan);
    execute_tile_from_precalc::<M>(&pre, tile, cfg, kahan, false)
}

/// Reusable per-worker scratch planes for the tile main loop — the working
/// buffers of [`execute_tile_from_precalc`], allocated once per worker
/// thread and recycled across tiles instead of re-`vec!`-ed per tile. Reuse
/// only trades allocation for a fill: every buffer is reset to exactly the
/// initial contents a fresh allocation would have (zeros, `+∞`, `-1`), so
/// pooled execution is bit-identical to unpooled.
///
/// The unfused pipeline uses six planes (`qt_prev`, `qt_next`, `dist`,
/// `scanned`, `p`, `i`); the fused pipeline drops both `dist` and
/// `scanned` — its fibers live in a small per-worker scratch block inside
/// [`fused_row`] — shrinking the pool entry by two planes. The accounting
/// in [`PlaneBuffers::plane_elems`] reflects whichever shape the last tile
/// used.
#[derive(Debug, Default)]
pub struct PlaneBuffers<M: Real> {
    qt_prev: Vec<M>,
    qt_next: Vec<M>,
    dist_plane: Vec<M>,
    scanned: Vec<M>,
    p_plane: Vec<M>,
    i_plane: Vec<i64>,
    tiles_executed: u64,
    reuses: u64,
}

impl<M: Real> PlaneBuffers<M> {
    /// An empty pool entry; the first tile sizes it.
    pub fn new() -> PlaneBuffers<M> {
        PlaneBuffers {
            qt_prev: Vec::new(),
            qt_next: Vec::new(),
            dist_plane: Vec::new(),
            scanned: Vec::new(),
            p_plane: Vec::new(),
            i_plane: Vec::new(),
            tiles_executed: 0,
            reuses: 0,
        }
    }

    /// Reset every plane to its initial contents for an `n_q × d` tile
    /// (`d_pad` = `d` rounded up to a power of two).
    ///
    /// Unfused: `dist` is `n_q × d`, `scanned` is `n_q × d_pad`. Fused:
    /// both are released — the fused pass never materializes either plane.
    fn prepare(&mut self, n_q: usize, d: usize, d_pad: usize, fused: bool) {
        let plane = n_q * d;
        if self.tiles_executed > 0 {
            self.reuses += 1;
        }
        self.tiles_executed += 1;
        reset(&mut self.qt_prev, plane, M::zero());
        reset(&mut self.qt_next, plane, M::zero());
        if fused {
            reset(&mut self.dist_plane, 0, M::zero());
            reset(&mut self.scanned, 0, M::zero());
        } else {
            reset(&mut self.dist_plane, plane, M::zero());
            reset(&mut self.scanned, n_q * d_pad, M::zero());
        }
        reset(&mut self.p_plane, plane, M::infinity());
        reset(&mut self.i_plane, plane, -1i64);
    }

    /// Tiles executed through this pool entry.
    pub fn tiles_executed(&self) -> u64 {
        self.tiles_executed
    }

    /// Tiles that reused an already-allocated set of planes (everything
    /// after the worker's first tile).
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Elements currently held across all planes of this pool entry (the
    /// fused shape is one `n_q × d_pad` plane smaller than the unfused).
    pub fn plane_elems(&self) -> usize {
        self.qt_prev.len()
            + self.qt_next.len()
            + self.dist_plane.len()
            + self.scanned.len()
            + self.p_plane.len()
            + self.i_plane.len()
    }
}

fn reset<T: Copy>(buf: &mut Vec<T>, len: usize, value: T) {
    buf.clear();
    buf.resize(len, value);
}

/// Execute one tile's main loop from a (possibly cached) precalculation.
///
/// With `precalc_cached = true` the modelled costs omit the `Precalc`
/// kernel and charge the (smaller) cached-array H2D transfer instead of the
/// raw input windows — the device never sees the precalculation.
pub fn execute_tile_from_precalc<M: Real>(
    pre: &TilePrecalc,
    tile: &Tile,
    cfg: &MdmpConfig,
    kahan: bool,
    precalc_cached: bool,
) -> TileOutput {
    let mut bufs = PlaneBuffers::<M>::new();
    execute_tile_from_precalc_pooled(pre, tile, cfg, kahan, precalc_cached, &mut bufs)
}

/// [`execute_tile_from_precalc`] with caller-owned scratch planes — the
/// hot path of the concurrent tile pipeline, where each host worker owns
/// one [`PlaneBuffers`] and runs many tiles through it.
pub fn execute_tile_from_precalc_pooled<M: Real>(
    pre: &TilePrecalc,
    tile: &Tile,
    cfg: &MdmpConfig,
    kahan: bool,
    precalc_cached: bool,
    bufs: &mut PlaneBuffers<M>,
) -> TileOutput {
    let d = pre.rstats.d;
    let d_pad = d.next_power_of_two();
    let n_r = tile.rows;
    let n_q = tile.cols;
    assert_eq!(pre.rstats.n, n_r, "precalc does not match tile rows");
    assert_eq!(pre.qstats.n, n_q, "precalc does not match tile cols");

    // Narrow to the main-loop precision (one rounding, same as the inline
    // Stats::convert / convert_qt path).
    let rstats: Stats<M> = pre.rstats.convert();
    let qstats: Stats<M> = pre.qstats.convert();
    let qt_row0: Vec<M> = convert_qt(&pre.qt_row0);
    let qt_col0: Vec<M> = convert_qt(&pre.qt_col0);

    // Tensor-core modes take the blocked-GEMM dist_calc path, which needs
    // the materialized dist/scanned planes — it supersedes row fusion.
    let tc = cfg.mode.tc_input();
    let fused = tc.is_none() && cfg.resolved_fused_rows();

    // Working planes in the main-loop precision, from the worker's pool.
    bufs.prepare(n_q, d, d_pad, fused);
    let PlaneBuffers {
        qt_prev,
        qt_next,
        dist_plane,
        scanned,
        p_plane,
        i_plane,
        ..
    } = bufs;

    let params = DistParams::<M>::new(cfg.m, cfg.clamp, tile.row0, tile.col0, cfg.exclusion_zone);

    let eliminated_dispatches = if let Some(input) = tc {
        // Blocked-GEMM main loop (DESIGN.md §13): `qt_prev` doubles as the
        // panel base plane. Each row is a rank-2t update of the base row
        // through the simulated MMA unit; every `chunk_k` rows (and after
        // row 0, whose QT comes straight from the precalculation) the fresh
        // row is promoted to the new base — the tile-restarted recurrence.
        let mma = MmaConfig::new(input).with_chunk_k(cfg.resolved_tc_chunk_k(input));
        let mut base_idx = 0usize;
        for i in 0..n_r {
            gemm_row(
                i, base_idx, &qt_row0, &qt_col0, qt_prev, qt_next, dist_plane, &rstats, &qstats,
                &params, &mma,
            );
            sort_scan_row(dist_plane, scanned, n_q, d);
            update_profile_row(scanned, p_plane, i_plane, n_q, d, (tile.row0 + i) as i64);
            if i - base_idx == mma.chunk_k || i == 0 {
                qt_prev.copy_from_slice(qt_next);
                base_idx = i;
            }
        }
        0
    } else if fused {
        // Fused main loop (DESIGN.md §10): one dispatch per row over the
        // same k-major planes as the unfused path; neither the `dist` nor
        // the `scanned` plane exists — fibers live in per-worker scratch
        // inside `fused_row`.
        let schedule = comparator_schedule(d_pad);
        let divisors = scan_divisors::<M>(d);
        for i in 0..n_r {
            fused_row(
                i,
                &qt_row0,
                &qt_col0,
                qt_prev,
                qt_next,
                p_plane,
                i_plane,
                &rstats,
                &qstats,
                &params,
                &schedule,
                &divisors,
                (tile.row0 + i) as i64,
            );
            std::mem::swap(qt_prev, qt_next);
        }
        DISPATCHES_ELIMINATED_PER_ROW * n_r as u64
    } else {
        // Main iteration loop (Pseudocode 1, lines 3-7).
        for i in 0..n_r {
            dist_row(
                i, &qt_row0, &qt_col0, qt_prev, qt_next, dist_plane, &rstats, &qstats, &params,
            );
            sort_scan_row(dist_plane, scanned, n_q, d);
            update_profile_row(scanned, p_plane, i_plane, n_q, d, (tile.row0 + i) as i64);
            std::mem::swap(qt_prev, qt_next);
        }
        0
    };
    // D2H: widen the profile exactly to f64 (the planes stay in the pool).
    let p_f64: Vec<f64> = p_plane.iter().map(|&v| v.to_f64()).collect();
    let profile = MatrixProfile::from_raw(p_f64, i_plane.clone(), n_q, d);

    let (kernel_costs, h2d_bytes, d2h_bytes, device_bytes) =
        tile_cost_bundle_reused(tile, d, cfg, kahan, precalc_cached);

    TileOutput {
        profile,
        kernel_costs,
        h2d_bytes,
        d2h_bytes,
        device_bytes,
        eliminated_dispatches,
    }
}

/// What the plane validation gate found wrong with a tile's result
/// ([`validate_profile_plane`]). Counts cover the whole plane; the first
/// offending `(column, dimension)` pair is kept for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlaneViolation {
    /// NaN profile values.
    pub nan: usize,
    /// Non-finite values paired with a real match index (a genuine unset
    /// entry is `+∞` with index `-1`, which is legal).
    pub inf: usize,
    /// Negative values (a z-normalized distance cannot be).
    pub negative: usize,
    /// Finite values above the analytic distance bound — the check that
    /// catches saturated reduced-precision values, which are finite and
    /// positive and would slip past a pure NaN/Inf scan.
    pub out_of_bound: usize,
    /// First offending `(column, dimension)`.
    pub first: (usize, usize),
}

impl PlaneViolation {
    fn any(&self) -> bool {
        self.nan + self.inf + self.negative + self.out_of_bound > 0
    }
}

impl fmt::Display for PlaneViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} NaN, {} Inf, {} negative, {} out-of-bound; first at column {} dim {}",
            self.nan, self.inf, self.negative, self.out_of_bound, self.first.0, self.first.1
        )
    }
}

/// The largest value a correct profile entry can take for segment length
/// `m`: the z-normalized distance bound `2√m`, widened by 25% of slack for
/// reduced-precision rounding plus one absolute unit for the very short
/// windows where the relative slack is thin.
pub fn max_profile_value(m: usize) -> f64 {
    2.5 * (m as f64).sqrt() + 1.0
}

/// Validate a tile's result plane: no NaN, no Inf outside genuine unset
/// entries (`+∞` paired with index `-1`), no negative distances, nothing
/// above `max_value` (see [`max_profile_value`]). The bound check is what
/// catches *saturated* reduced-precision results — e.g. an FP16 plane
/// pinned at `65504`, which is finite and would mask an overflow that FP32
/// would have reported as Inf.
pub fn validate_profile_plane(
    profile: &MatrixProfile,
    max_value: f64,
) -> Result<(), PlaneViolation> {
    let mut v = PlaneViolation::default();
    let mut first: Option<(usize, usize)> = None;
    for k in 0..profile.dims() {
        let values = profile.profile_dim(k);
        let indices = profile.index_dim(k);
        for (j, (&p, &i)) in values.iter().zip(indices).enumerate() {
            let bad = if p.is_nan() {
                v.nan += 1;
                true
            } else if p.is_infinite() || i == -1 {
                // Only the exact unset pair (+∞, -1) is legal.
                // float-eq-ok: exact sentinel-value test; +∞ is a single
                // bit pattern, no rounding is involved.
                let unset = p == f64::INFINITY && i == -1;
                if !unset {
                    v.inf += 1;
                }
                !unset
            } else if p < 0.0 {
                v.negative += 1;
                true
            } else if p > max_value {
                v.out_of_bound += 1;
                true
            } else {
                false
            };
            if bad && first.is_none() {
                first = Some((j, k));
            }
        }
    }
    if v.any() {
        v.first = first.unwrap_or((0, 0));
        return Err(v);
    }
    Ok(())
}

/// Corrupt one entry of a tile's result plane according to a poison
/// [`FaultKind`] — the functional stand-in for a device writing garbage.
/// The first *set* entry is targeted so an injected `+∞` is distinguishable
/// from a legitimate unset entry. Non-poison kinds are no-ops.
pub fn apply_plane_fault(profile: &mut MatrixProfile, kind: FaultKind) {
    let (p, idx) = profile.planes_mut();
    let o = idx.iter().position(|&i| i != -1).unwrap_or(0);
    match kind {
        FaultKind::PoisonNan => p[o] = f64::NAN,
        FaultKind::PoisonInf => p[o] = f64::INFINITY,
        FaultKind::BitFlip { bit } => p[o] = f64::from_bits(p[o].to_bits() ^ (1u64 << bit)),
        FaultKind::Kernel | FaultKind::Stall { .. } => {}
    }
}

/// The modelled costs of one tile, independent of functional execution —
/// shared by [`execute_tile`] and the paper-scale estimator
/// (`crate::estimate`).
///
/// Returns `(kernel costs in submission order, H2D bytes, D2H bytes,
/// device working-set bytes)`.
pub fn tile_cost_bundle(
    tile: &Tile,
    d: usize,
    cfg: &MdmpConfig,
    kahan: bool,
) -> (Vec<KernelCost>, u64, u64, u64) {
    tile_cost_bundle_reused(tile, d, cfg, kahan, false)
}

/// [`tile_cost_bundle`] with precalc reuse: when `precalc_cached` is set,
/// the `Precalc` kernel disappears from the submission list and the H2D
/// transfer ships the precomputed arrays instead of the raw input windows.
pub fn tile_cost_bundle_reused(
    tile: &Tile,
    d: usize,
    cfg: &MdmpConfig,
    kahan: bool,
    precalc_cached: bool,
) -> (Vec<KernelCost>, u64, u64, u64) {
    let m = cfg.m;
    let n_r = tile.rows;
    let n_q = tile.cols;
    let main_fmt = cfg.mode.main_format();
    let pre_fmt = cfg.mode.precalc_format();
    let rows = n_r as u64;
    let mut kernel_costs = Vec::with_capacity(4);
    if !precalc_cached {
        kernel_costs.push(kernels::precalc_cost(n_r, n_q, m, d, pre_fmt, kahan));
    }
    match cfg.mode.tc_input() {
        // TC modes: one blocked-GEMM dist_calc covers the whole tile, with
        // panel-amortized QT traffic instead of `rows` streaming launches.
        Some(input) => {
            let panel = cfg.resolved_tc_chunk_k(input);
            kernel_costs.push(gemm_cost(n_r, n_q, d, panel, input));
        }
        None => kernel_costs.push(dist_cost(n_q, d, main_fmt).repeated(rows)),
    }
    kernel_costs.push(sort_scan_cost(n_q, d, main_fmt).repeated(rows));
    kernel_costs.push(update_cost(n_q, d, main_fmt).repeated(rows));
    let h2d = if precalc_cached {
        kernels::h2d_bytes_cached(n_r, n_q, d, pre_fmt)
    } else {
        kernels::h2d_bytes(n_r, n_q, m, d, pre_fmt)
    };
    (
        kernel_costs,
        h2d,
        kernels::d2h_bytes(n_q, d, main_fmt),
        kernels::tile_device_bytes(n_r, n_q, m, d, main_fmt),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiling::compute_tile_list;
    use mdmp_data::stats::znorm_distance;
    use mdmp_precision::{Half, PrecisionMode};

    fn series(seed: u64, d: usize, len: usize) -> MultiDimSeries {
        let dims: Vec<Vec<f64>> = (0..d)
            .map(|k| {
                (0..len)
                    .map(|t| {
                        let x = t as f64 * (0.13 + 0.02 * k as f64) + seed as f64;
                        x.sin() + 0.4 * (2.3 * x).cos()
                    })
                    .collect()
            })
            .collect();
        MultiDimSeries::from_dims(dims)
    }

    /// Brute-force multi-dim matrix profile in f64 for validation.
    fn brute(reference: &MultiDimSeries, query: &MultiDimSeries, m: usize) -> MatrixProfile {
        let d = reference.dims();
        let n_r = reference.n_segments(m);
        let n_q = query.n_segments(m);
        let mut profile = MatrixProfile::new_unset(n_q, d);
        let (p, idx) = profile.planes_mut();
        for j in 0..n_q {
            for i in 0..n_r {
                let mut ds: Vec<f64> = (0..d)
                    .map(|k| znorm_distance(&reference.dim(k)[i..i + m], &query.dim(k)[j..j + m]))
                    .collect();
                ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let mut run = 0.0;
                for k in 0..d {
                    run += ds[k];
                    let avg = run / (k + 1) as f64;
                    if avg < p[k * n_q + j] {
                        p[k * n_q + j] = avg;
                        idx[k * n_q + j] = i as i64;
                    }
                }
            }
        }
        profile
    }

    #[test]
    fn fp64_tile_matches_brute_force() {
        let m = 10;
        let r = series(1, 3, 80);
        let q = series(5, 3, 70);
        let tile = compute_tile_list(r.n_segments(m), q.n_segments(m), 1).unwrap()[0];
        let cfg = MdmpConfig::new(m, PrecisionMode::Fp64);
        let out = execute_tile::<f64, f64>(&r, &q, &tile, &cfg, false);
        let expected = brute(&r, &q, m);
        for k in 0..3 {
            for j in 0..q.n_segments(m) {
                assert!(
                    (out.profile.value(j, k) - expected.value(j, k)).abs() < 1e-7,
                    "P[{j}][{k}]: {} vs {}",
                    out.profile.value(j, k),
                    expected.value(j, k)
                );
                assert_eq!(out.profile.index(j, k), expected.index(j, k), "I[{j}][{k}]");
            }
        }
    }

    #[test]
    fn tile_with_offsets_matches_brute_force_submatrix() {
        let m = 8;
        let r = series(2, 2, 100);
        let q = series(9, 2, 100);
        let tile = Tile {
            index: 0,
            row0: 20,
            rows: 30,
            col0: 40,
            cols: 25,
        };
        let cfg = MdmpConfig::new(m, PrecisionMode::Fp64);
        let out = execute_tile::<f64, f64>(&r, &q, &tile, &cfg, false);
        assert_eq!(out.profile.n_query(), 25);
        // Compare against brute force restricted to the tile's rows.
        let n_q = q.n_segments(m);
        let full = brute(&r, &q, m);
        let _ = (n_q, full);
        for k in 0..2 {
            for jj in 0..25 {
                let j = 40 + jj;
                // Recompute restricted min over rows 20..50.
                let mut best = f64::INFINITY;
                let mut best_i = -1i64;
                for i in 20..50 {
                    let mut ds: Vec<f64> = (0..2)
                        .map(|kk| znorm_distance(&r.dim(kk)[i..i + m], &q.dim(kk)[j..j + m]))
                        .collect();
                    ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    let avg: f64 = ds[..=k].iter().sum::<f64>() / (k + 1) as f64;
                    if avg < best {
                        best = avg;
                        best_i = i as i64;
                    }
                }
                assert!(
                    (out.profile.value(jj, k) - best).abs() < 1e-7,
                    "tile P[{jj}][{k}]"
                );
                assert_eq!(
                    out.profile.index(jj, k),
                    best_i,
                    "tile I[{jj}][{k}] (global)"
                );
            }
        }
    }

    #[test]
    fn reduced_precision_stays_close_on_small_tiles() {
        let m = 12;
        let r = series(3, 2, 120);
        let q = series(7, 2, 120);
        let tile = compute_tile_list(r.n_segments(m), q.n_segments(m), 1).unwrap()[0];
        let cfg64 = MdmpConfig::new(m, PrecisionMode::Fp64);
        let cfg16 = MdmpConfig::new(m, PrecisionMode::Fp16);
        let cfg32 = MdmpConfig::new(m, PrecisionMode::Fp32);
        let ref_out = execute_tile::<f64, f64>(&r, &q, &tile, &cfg64, false);
        let out16 = execute_tile::<Half, Half>(&r, &q, &tile, &cfg16, false);
        let out32 = execute_tile::<f32, f32>(&r, &q, &tile, &cfg32, false);
        let n_q = q.n_segments(m);
        let avg_err = |out: &TileOutput| {
            let mut total = 0.0;
            for k in 0..2 {
                for j in 0..n_q {
                    let a = ref_out.profile.value(j, k);
                    let b = out.profile.value(j, k);
                    if a > 1e-6 {
                        total += (a - b).abs() / a;
                    }
                }
            }
            total / (2 * n_q) as f64
        };
        // FP16 degrades visibly (the near-zero distances of this periodic
        // series amplify the 2^-10 roundoff through the sqrt), FP32 stays
        // essentially exact, and the ordering FP32 < FP16 must hold — the
        // precision hierarchy of Fig. 2.
        let e16 = avg_err(&out16);
        let e32 = avg_err(&out32);
        assert!(e32 < 1e-3, "FP32 should be near-exact: {e32}");
        assert!(e16 > e32, "FP16 must be worse than FP32");
        assert!(
            e16 < 1.5,
            "FP16 on a 100-row tile must stay in the right ballpark: {e16}"
        );
    }

    #[test]
    fn mixed_mode_types_compose() {
        let m = 8;
        let r = series(4, 2, 60);
        let q = series(8, 2, 60);
        let tile = compute_tile_list(r.n_segments(m), q.n_segments(m), 1).unwrap()[0];
        let mut cfg = MdmpConfig::new(m, PrecisionMode::Mixed);
        cfg.mode = PrecisionMode::Mixed;
        // P = f32, M = Half.
        let out = execute_tile::<f32, Half>(&r, &q, &tile, &cfg, false);
        assert_eq!(out.profile.n_query(), q.n_segments(m));
        assert!(out.profile.unset_fraction() < 1e-9);
        // Costs: precalc in FP32 bytes, main kernels in FP16 bytes.
        assert_eq!(out.kernel_costs[0].format, mdmp_precision::Format::Fp32);
        assert_eq!(out.kernel_costs[1].format, mdmp_precision::Format::Fp16);
    }

    /// Execute one small tile in `mode` and return its (validated-clean)
    /// profile for the gate tests to corrupt.
    fn tile_profile(mode: PrecisionMode) -> (MatrixProfile, f64) {
        let m = 10;
        let r = series(1, 2, 80);
        let q = series(5, 2, 70);
        let tile = compute_tile_list(r.n_segments(m), q.n_segments(m), 1).unwrap()[0];
        let cfg = MdmpConfig::new(m, mode);
        let out = match mode {
            PrecisionMode::Fp64 => execute_tile::<f64, f64>(&r, &q, &tile, &cfg, false),
            PrecisionMode::Fp32 => execute_tile::<f32, f32>(&r, &q, &tile, &cfg, false),
            PrecisionMode::Fp16 => execute_tile::<Half, Half>(&r, &q, &tile, &cfg, false),
            PrecisionMode::Mixed => execute_tile::<f32, Half>(&r, &q, &tile, &cfg, false),
            PrecisionMode::Fp16c => execute_tile::<Half, Half>(&r, &q, &tile, &cfg, true),
            PrecisionMode::Fp16Tc | PrecisionMode::Bf16Tc | PrecisionMode::Tf32Tc => {
                execute_tile::<f32, f32>(&r, &q, &tile, &cfg, false)
            }
            _ => unreachable!("gate tests cover the paper and TC modes"),
        };
        (out.profile, max_profile_value(m))
    }

    const PAPER_MODES: [PrecisionMode; 5] = [
        PrecisionMode::Fp64,
        PrecisionMode::Fp32,
        PrecisionMode::Fp16,
        PrecisionMode::Mixed,
        PrecisionMode::Fp16c,
    ];

    #[test]
    fn gate_passes_clean_planes_in_every_mode() {
        for mode in PAPER_MODES.into_iter().chain(PrecisionMode::TC_MODES) {
            let (profile, bound) = tile_profile(mode);
            assert!(
                validate_profile_plane(&profile, bound).is_ok(),
                "{mode}: clean plane rejected"
            );
        }
    }

    #[test]
    fn gate_catches_nan_and_inf_in_every_mode() {
        for mode in PAPER_MODES.into_iter().chain(PrecisionMode::TC_MODES) {
            let (clean, bound) = tile_profile(mode);
            let mut poisoned = clean.clone();
            apply_plane_fault(&mut poisoned, FaultKind::PoisonNan);
            let v = validate_profile_plane(&poisoned, bound).unwrap_err();
            assert_eq!(v.nan, 1, "{mode}: NaN not counted");

            let mut poisoned = clean.clone();
            apply_plane_fault(&mut poisoned, FaultKind::PoisonInf);
            let v = validate_profile_plane(&poisoned, bound).unwrap_err();
            assert_eq!(v.inf, 1, "{mode}: Inf not counted");
        }
    }

    #[test]
    fn gate_catches_sign_flip_but_not_low_mantissa_flip() {
        for mode in PAPER_MODES {
            let (clean, bound) = tile_profile(mode);
            // Sign-flip an entry with a clearly nonzero value (flipping an
            // exact 0.0 yields -0.0, which is indistinguishable on purpose).
            let mut flipped = clean.clone();
            {
                let (p, _) = flipped.planes_mut();
                let o = p
                    .iter()
                    .position(|&v| v > 0.1)
                    .expect("some distance is nonzero");
                p[o] = f64::from_bits(p[o].to_bits() ^ (1u64 << 63));
            }
            let v = validate_profile_plane(&flipped, bound).unwrap_err();
            assert_eq!(v.negative, 1, "{mode}: sign flip not caught");

            // A low-mantissa flip perturbs the value by parts-per-trillion:
            // finite, positive, in-bound — the documented blind spot of the
            // gate (DESIGN.md §9).
            let mut flipped = clean.clone();
            apply_plane_fault(&mut flipped, FaultKind::BitFlip { bit: 2 });
            assert!(
                validate_profile_plane(&flipped, bound).is_ok(),
                "{mode}: low-mantissa flips are undetectable by design"
            );
        }
    }

    #[test]
    fn gate_bound_check_catches_fp16c_saturation_that_masks_inf() {
        // In FP16/FP16C an overflowing distance can saturate at
        // Half::MAX = 65504 instead of reaching Inf (saturating arithmetic
        // masks the overflow), so `is_infinite()` alone would pass the
        // plane. The analytic bound 2.5√m + 1 is what catches it.
        let (clean, bound) = tile_profile(PrecisionMode::Fp16c);
        let saturated = Half::MAX.to_f64();
        assert!(saturated.is_finite() && saturated > bound);
        let mut poisoned = clean.clone();
        {
            let (p, idx) = poisoned.planes_mut();
            let o = idx.iter().position(|&i| i != -1).unwrap();
            p[o] = saturated;
        }
        let v = validate_profile_plane(&poisoned, bound).unwrap_err();
        assert_eq!(v.out_of_bound, 1);
        assert_eq!(v.nan + v.inf, 0, "saturation is invisible to NaN/Inf scans");
    }

    #[test]
    fn gate_accepts_genuine_unset_entries_but_not_partial_ones() {
        // Self-join exclusion zones leave legal (+Inf, -1) pairs.
        let unset = MatrixProfile::new_unset(4, 2);
        assert!(validate_profile_plane(&unset, 10.0).is_ok());

        // A set value paired with index -1 is corruption, not unset.
        let mut partial = MatrixProfile::new_unset(4, 2);
        {
            let (p, _) = partial.planes_mut();
            p[0] = 1.0;
        }
        let v = validate_profile_plane(&partial, 10.0).unwrap_err();
        assert_eq!(v.inf, 1);
        assert_eq!(v.first, (0, 0));
    }

    #[test]
    fn tensor_core_tile_tracks_fp32_and_charges_gemm_cost() {
        let m = 10;
        let r = series(1, 3, 80);
        let q = series(5, 3, 70);
        let tile = compute_tile_list(r.n_segments(m), q.n_segments(m), 1).unwrap()[0];
        let cfg32 = MdmpConfig::new(m, PrecisionMode::Fp32);
        // Pin the chunk so a CI-wide `MDMP_TC_CHUNK_K` cannot shift the
        // panel count or collapse the k=4 comparison below.
        let cfg_tc = MdmpConfig::new(m, PrecisionMode::Fp16Tc).with_tc_chunk_k(Some(8));
        let out32 = execute_tile::<f32, f32>(&r, &q, &tile, &cfg32, false);
        let out_tc = execute_tile::<f32, f32>(&r, &q, &tile, &cfg_tc, false);
        let n_q = q.n_segments(m);
        // Same storage precision, operands narrowed per-MMA: the profile
        // tracks FP32 within the FP16 input-rounding envelope. Near-zero
        // distances amplify the 2⁻¹⁰ roundoff through the sqrt (as in the
        // plain-FP16 mode), so the check is on the error mass, not a tight
        // pointwise relative bound.
        let mut total = 0.0;
        for k in 0..3 {
            for j in 0..n_q {
                let a = out32.profile.value(j, k);
                let b = out_tc.profile.value(j, k);
                let err = (a - b).abs();
                assert!(err < 1.0, "P[{j}][{k}]: {a} vs {b}");
                total += err;
            }
        }
        assert!(total / ((3 * n_q) as f64) < 0.05, "mean TC drift too large");
        // Cost descriptor: one blocked GEMM (panel-count launches, tc
        // tagged, fragment traffic) instead of `rows` streaming dispatches,
        // and no fused-eliminated dispatches.
        let gemm = &out_tc.kernel_costs[1];
        assert_eq!(gemm.tc, Some(mdmp_precision::Format::Fp16));
        assert_eq!(gemm.launches, (tile.rows as u64).div_ceil(8));
        assert!(gemm.frag_bytes > 0);
        assert_eq!(out_tc.eliminated_dispatches, 0);
        // Deterministic: a rerun is bit-identical.
        let rerun = execute_tile::<f32, f32>(&r, &q, &tile, &cfg_tc, false);
        for k in 0..3 {
            for j in 0..n_q {
                assert_eq!(
                    out_tc.profile.value(j, k).to_bits(),
                    rerun.profile.value(j, k).to_bits()
                );
                assert_eq!(out_tc.profile.index(j, k), rerun.profile.index(j, k));
            }
        }
        // The chunk width is part of the numerical contract: k=4 differs.
        let cfg_k4 = MdmpConfig::new(m, PrecisionMode::Fp16Tc).with_tc_chunk_k(Some(4));
        let out_k4 = execute_tile::<f32, f32>(&r, &q, &tile, &cfg_k4, false);
        let differs = (0..3).any(|k| {
            (0..n_q).any(|j| {
                out_tc.profile.value(j, k).to_bits() != out_k4.profile.value(j, k).to_bits()
            })
        });
        assert!(differs, "chunk width must change result bits");
    }

    #[test]
    fn kernel_costs_aggregate_rows() {
        let m = 8;
        let r = series(4, 2, 60);
        let q = series(8, 2, 60);
        let n_r = r.n_segments(m);
        let tile = compute_tile_list(n_r, q.n_segments(m), 1).unwrap()[0];
        let cfg = MdmpConfig::new(m, PrecisionMode::Fp64);
        let out = execute_tile::<f64, f64>(&r, &q, &tile, &cfg, false);
        assert_eq!(out.kernel_costs.len(), 4);
        assert_eq!(out.kernel_costs[1].launches, n_r as u64);
        assert_eq!(out.kernel_costs[2].launches, n_r as u64);
        assert!(out.h2d_bytes > 0 && out.d2h_bytes > 0 && out.device_bytes > 0);
    }
}

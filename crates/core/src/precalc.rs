//! The `precalculation` kernel (Pseudocode 1, line 2).
//!
//! For each dimension it prepares, in a single pass, the intermediate
//! vectors the streaming update of Eq. 1 consumes — `df`, `dg`, the rolling
//! means `μ` and the inverse segment norms `d⁻¹` — plus the initial
//! correlation row `QT_r` (row 0 of the tile) and column `QT_q` (column 0)
//! via naive mean-centered dot products.
//!
//! Everything is computed **in the precalculation precision `T`** with one
//! rounding per operation. The rolling statistics use windowed running sums
//! (add the entering sample, subtract the leaving one), so their rounding
//! error accumulates over the series length — this is the cancellation-prone
//! step the paper's Mixed mode lifts to FP32 and the FP16C mode repairs with
//! Kahan compensated summation (§III-C). The variance is evaluated as
//! `Σx² − (Σx)·μ`, which in FP16 exhibits exactly the "severe cancellations"
//! §III-C describes.

use mdmp_data::MultiDimSeries;
use mdmp_precision::{KahanSum, Real};

/// A window of the input series converted to the device format `T` — the
/// result of the H2D copy in Pseudocode 1, line 1.
#[derive(Debug, Clone)]
pub struct SeriesDevice<T: Real> {
    /// Dimension-major samples, `d × len`.
    pub x: Vec<T>,
    /// Samples per dimension.
    pub len: usize,
    /// Dimensionality.
    pub d: usize,
}

impl<T: Real> SeriesDevice<T> {
    /// Convert the time window `[start, start+len)` of a host series.
    pub fn load(series: &MultiDimSeries, start: usize, len: usize) -> SeriesDevice<T> {
        assert!(start + len <= series.len(), "window exceeds series");
        let d = series.dims();
        let mut x = Vec::with_capacity(d * len);
        for k in 0..d {
            let dim = &series.dim(k)[start..start + len];
            x.extend(dim.iter().map(|&v| T::from_f64(v)));
        }
        SeriesDevice { x, len, d }
    }

    /// Samples of dimension `k`.
    pub fn dim(&self, k: usize) -> &[T] {
        &self.x[k * self.len..(k + 1) * self.len]
    }

    /// Number of length-`m` segments.
    pub fn n_segments(&self, m: usize) -> usize {
        assert!(m <= self.len, "segment longer than window");
        self.len - m + 1
    }
}

/// Per-dimension rolling statistics in precision `T` (dimension-major,
/// `d × n` each).
#[derive(Debug, Clone)]
pub struct Stats<T: Real> {
    /// Number of segments.
    pub n: usize,
    /// Dimensionality.
    pub d: usize,
    /// Rolling means `μ[i]`.
    pub mu: Vec<T>,
    /// Inverse centered norms `1 / ‖seg_i − μ_i‖`.
    pub inv: Vec<T>,
    /// `df[i] = (x[i+m−1] − x[i−1]) / 2` (0 at i = 0).
    pub df: Vec<T>,
    /// `dg[i] = (x[i+m−1] − μ[i]) + (x[i−1] − μ[i−1])` (0 at i = 0).
    pub dg: Vec<T>,
}

impl<T: Real> Stats<T> {
    /// Convert to another precision `M` (the Mixed mode's FP32 → FP16 step;
    /// exact widening through f64, one rounding into `M`).
    pub fn convert<M: Real>(&self) -> Stats<M> {
        Stats {
            n: self.n,
            d: self.d,
            mu: self.mu.iter().map(|&v| M::from_f64(v.to_f64())).collect(),
            inv: self.inv.iter().map(|&v| M::from_f64(v.to_f64())).collect(),
            df: self.df.iter().map(|&v| M::from_f64(v.to_f64())).collect(),
            dg: self.dg.iter().map(|&v| M::from_f64(v.to_f64())).collect(),
        }
    }
}

/// A running sum that is either plain (one rounding per add) or Kahan
/// compensated — the switch between the FP16 and FP16C precalculation.
enum RunningSum<T: Real> {
    Plain(T),
    Kahan(KahanSum<T>),
}

impl<T: Real> RunningSum<T> {
    fn new(kahan: bool) -> RunningSum<T> {
        if kahan {
            RunningSum::Kahan(KahanSum::new())
        } else {
            RunningSum::Plain(T::zero())
        }
    }

    #[inline]
    fn add(&mut self, x: T) {
        match self {
            RunningSum::Plain(s) => *s += x,
            RunningSum::Kahan(k) => k.add(x),
        }
    }

    #[inline]
    fn value(&self) -> T {
        match self {
            RunningSum::Plain(s) => *s,
            RunningSum::Kahan(k) => k.value(),
        }
    }
}

/// Compute the rolling statistics of every dimension in precision `T`.
///
/// `kahan = true` selects the compensated-summation variant (FP16C mode).
pub fn compute_stats<T: Real>(dev: &SeriesDevice<T>, m: usize, kahan: bool) -> Stats<T> {
    assert!(m >= 2, "segment length must be at least 2");
    let n = dev.n_segments(m);
    let d = dev.d;
    let m_inv = T::one() / T::from_usize(m);
    let mut mu = vec![T::zero(); d * n];
    let mut inv = vec![T::zero(); d * n];
    let mut df = vec![T::zero(); d * n];
    let mut dg = vec![T::zero(); d * n];
    let half = T::from_f64(0.5);

    for k in 0..d {
        let x = dev.dim(k);
        let mu_k = &mut mu[k * n..(k + 1) * n];
        let inv_k = &mut inv[k * n..(k + 1) * n];
        let df_k = &mut df[k * n..(k + 1) * n];
        let dg_k = &mut dg[k * n..(k + 1) * n];

        let mut sum = RunningSum::new(kahan);
        let mut sumsq = RunningSum::new(kahan);
        for &v in &x[..m] {
            sum.add(v);
            sumsq.add(v * v);
        }
        for i in 0..n {
            if i > 0 {
                let enter = x[i + m - 1];
                let leave = x[i - 1];
                sum.add(enter);
                sum.add(-leave);
                sumsq.add(enter * enter);
                sumsq.add(-(leave * leave));
            }
            let s = sum.value();
            let mui = s * m_inv;
            mu_k[i] = mui;
            // ‖seg − μ‖² = Σx² − (Σx)·μ — the cancellation-prone form.
            let ss = sumsq.value() - s * mui;
            inv_k[i] = T::one() / ss.sqrt();
            if i > 0 {
                df_k[i] = half * (x[i + m - 1] - x[i - 1]);
                dg_k[i] = (x[i + m - 1] - mu_k[i]) + (x[i - 1] - mu_k[i - 1]);
            }
        }
    }
    Stats {
        n,
        d,
        mu,
        inv,
        df,
        dg,
    }
}

/// Mean-centered dot product of the segment at `a_start` in `a` and the
/// segment at `b_start` in `b` (dimension `k`), in precision `T`.
#[allow(clippy::too_many_arguments)]
fn centered_dot<T: Real>(
    a: &[T],
    a_start: usize,
    mu_a: T,
    b: &[T],
    b_start: usize,
    mu_b: T,
    m: usize,
    kahan: bool,
) -> T {
    let mut acc = RunningSum::new(kahan);
    for t in 0..m {
        acc.add((a[a_start + t] - mu_a) * (b[b_start + t] - mu_b));
    }
    acc.value()
}

/// Initial correlations: `QT_r` (row 0: reference segment 0 against every
/// query segment) and `QT_q` (column 0: every reference segment against
/// query segment 0), dimension-major.
pub fn initial_qt<T: Real>(
    refd: &SeriesDevice<T>,
    rstats: &Stats<T>,
    qd: &SeriesDevice<T>,
    qstats: &Stats<T>,
    m: usize,
    kahan: bool,
) -> (Vec<T>, Vec<T>) {
    let n_r = rstats.n;
    let n_q = qstats.n;
    let d = refd.d;
    assert_eq!(qd.d, d, "dimensionality mismatch");
    let mut row0 = vec![T::zero(); d * n_q];
    let mut col0 = vec![T::zero(); d * n_r];
    for k in 0..d {
        let rx = refd.dim(k);
        let qx = qd.dim(k);
        let mu_r = &rstats.mu[k * n_r..(k + 1) * n_r];
        let mu_q = &qstats.mu[k * n_q..(k + 1) * n_q];
        let row0_k = &mut row0[k * n_q..(k + 1) * n_q];
        for (j, slot) in row0_k.iter_mut().enumerate() {
            *slot = centered_dot(rx, 0, mu_r[0], qx, j, mu_q[j], m, kahan);
        }
        let col0_k = &mut col0[k * n_r..(k + 1) * n_r];
        for (i, slot) in col0_k.iter_mut().enumerate() {
            *slot = centered_dot(rx, i, mu_r[i], qx, 0, mu_q[0], m, kahan);
        }
    }
    (row0, col0)
}

/// Convert an initial-QT buffer to the main-loop precision.
pub fn convert_qt<P: Real, M: Real>(qt: &[P]) -> Vec<M> {
    qt.iter().map(|&v| M::from_f64(v.to_f64())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdmp_data::stats::{rolling_mean, rolling_std};
    use mdmp_precision::Half;

    fn test_series(d: usize, len: usize) -> MultiDimSeries {
        let dims: Vec<Vec<f64>> = (0..d)
            .map(|k| {
                (0..len)
                    .map(|t| ((t * (k + 3)) as f64 * 0.37).sin() + 0.1 * (t as f64 % 7.0))
                    .collect()
            })
            .collect();
        MultiDimSeries::from_dims(dims)
    }

    #[test]
    fn f64_stats_match_reference_rolling_stats() {
        let series = test_series(3, 200);
        let m = 16;
        let dev = SeriesDevice::<f64>::load(&series, 0, 200);
        let stats = compute_stats(&dev, m, false);
        assert_eq!(stats.n, 185);
        for k in 0..3 {
            let mu_ref = rolling_mean(series.dim(k), m);
            let sd_ref = rolling_std(series.dim(k), m);
            for i in 0..stats.n {
                let mu = stats.mu[k * stats.n + i];
                assert!((mu - mu_ref[i]).abs() < 1e-10, "mu[{k}][{i}]");
                // inv = 1 / (σ·√m)
                let inv_ref = 1.0 / (sd_ref[i] * (m as f64).sqrt());
                let inv = stats.inv[k * stats.n + i];
                assert!(
                    (inv - inv_ref).abs() / inv_ref < 1e-9,
                    "inv[{k}][{i}]: {inv} vs {inv_ref}"
                );
            }
        }
    }

    #[test]
    fn df_dg_definitions() {
        let series = test_series(1, 64);
        let m = 8;
        let dev = SeriesDevice::<f64>::load(&series, 0, 64);
        let stats = compute_stats(&dev, m, false);
        let x = series.dim(0);
        assert_eq!(stats.df[0], 0.0);
        assert_eq!(stats.dg[0], 0.0);
        for i in 1..stats.n {
            let df = 0.5 * (x[i + m - 1] - x[i - 1]);
            let dg = (x[i + m - 1] - stats.mu[i]) + (x[i - 1] - stats.mu[i - 1]);
            assert!((stats.df[i] - df).abs() < 1e-12);
            assert!((stats.dg[i] - dg).abs() < 1e-10);
        }
    }

    #[test]
    fn window_offset_slices_correctly() {
        let series = test_series(2, 300);
        let dev_full = SeriesDevice::<f64>::load(&series, 0, 300);
        let dev_win = SeriesDevice::<f64>::load(&series, 100, 50);
        assert_eq!(dev_win.len, 50);
        assert_eq!(dev_win.dim(1)[0], dev_full.dim(1)[100]);
        let m = 8;
        let stats_win = compute_stats(&dev_win, m, false);
        let stats_full = compute_stats(&dev_full, m, false);
        // Window stats equal the full-series stats at the offset.
        for i in 0..stats_win.n {
            assert!(
                (stats_win.mu[i] - stats_full.mu[100 + i]).abs() < 1e-12,
                "offset stats must match"
            );
        }
    }

    #[test]
    fn initial_qt_matches_direct_computation() {
        let series_r = test_series(2, 100);
        let series_q = test_series(2, 120);
        let m = 10;
        let rd = SeriesDevice::<f64>::load(&series_r, 0, 100);
        let qd = SeriesDevice::<f64>::load(&series_q, 0, 120);
        let rs = compute_stats(&rd, m, false);
        let qs = compute_stats(&qd, m, false);
        let (row0, col0) = initial_qt(&rd, &rs, &qd, &qs, m, false);
        // Direct check at a few positions.
        for k in 0..2 {
            let rx = series_r.dim(k);
            let qx = series_q.dim(k);
            for j in [0usize, 5, 50, 110] {
                let mu_r: f64 = rx[0..m].iter().sum::<f64>() / m as f64;
                let mu_q: f64 = qx[j..j + m].iter().sum::<f64>() / m as f64;
                let direct: f64 = (0..m).map(|t| (rx[t] - mu_r) * (qx[j + t] - mu_q)).sum();
                assert!((row0[k * qs.n + j] - direct).abs() < 1e-9, "row0[{k}][{j}]");
            }
            for i in [0usize, 7, 90] {
                let mu_r: f64 = rx[i..i + m].iter().sum::<f64>() / m as f64;
                let mu_q: f64 = qx[0..m].iter().sum::<f64>() / m as f64;
                let direct: f64 = (0..m).map(|t| (rx[i + t] - mu_r) * (qx[t] - mu_q)).sum();
                assert!((col0[k * rs.n + i] - direct).abs() < 1e-9, "col0[{k}][{i}]");
            }
        }
    }

    #[test]
    fn kahan_improves_fp16_means_on_long_windows() {
        // A long series with a drifting mean stresses the running sums.
        let len = 4096 + 63;
        let x: Vec<f64> = (0..len)
            .map(|t| 1.0 + 0.3 * ((t as f64) * 0.01).sin() + 0.2 * ((t * 13 % 17) as f64 / 17.0))
            .collect();
        let series = MultiDimSeries::univariate(x.clone());
        let m = 64;
        let dev = SeriesDevice::<Half>::load(&series, 0, len);
        let plain = compute_stats(&dev, m, false);
        let comp = compute_stats(&dev, m, true);
        let exact = rolling_mean(&x, m);
        let err = |stats: &Stats<Half>| -> f64 {
            stats
                .mu
                .iter()
                .zip(&exact)
                .map(|(&a, &b)| (a.to_f64() - b).abs())
                .sum::<f64>()
                / exact.len() as f64
        };
        let e_plain = err(&plain);
        let e_comp = err(&comp);
        assert!(
            e_comp < e_plain * 0.6,
            "kahan should reduce mean error: plain {e_plain}, comp {e_comp}"
        );
    }

    #[test]
    fn stats_conversion_rounds_to_target() {
        let series = test_series(1, 64);
        let dev = SeriesDevice::<f32>::load(&series, 0, 64);
        let stats32 = compute_stats(&dev, 8, false);
        let stats16: Stats<Half> = stats32.convert();
        assert_eq!(stats16.n, stats32.n);
        for i in 0..stats16.n {
            let expected = Half::from_f64(stats32.mu[i] as f64).to_f64();
            assert_eq!(stats16.mu[i].to_f64(), expected);
        }
    }

    #[test]
    fn flat_window_produces_infinite_inv() {
        let mut x = vec![1.0; 40];
        x[30] = 2.0; // keep later windows non-flat
        let series = MultiDimSeries::univariate(x);
        let dev = SeriesDevice::<f64>::load(&series, 0, 40);
        let stats = compute_stats(&dev, 8, false);
        assert!(
            !stats.inv[0].is_finite(),
            "flat window must yield non-finite inverse norm (ill-conditioned case, §V-B)"
        );
    }
}

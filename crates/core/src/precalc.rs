//! The `precalculation` kernel (Pseudocode 1, line 2).
//!
//! For each dimension it prepares, in a single pass, the intermediate
//! vectors the streaming update of Eq. 1 consumes — `df`, `dg`, the rolling
//! means `μ` and the inverse segment norms `d⁻¹` — plus the initial
//! correlation row `QT_r` (row 0 of the tile) and column `QT_q` (column 0)
//! via naive mean-centered dot products.
//!
//! Everything is computed **in the precalculation precision `T`** with one
//! rounding per operation. The rolling statistics use windowed running sums
//! (add the entering sample, subtract the leaving one), so their rounding
//! error accumulates over the series length — this is the cancellation-prone
//! step the paper's Mixed mode lifts to FP32 and the FP16C mode repairs with
//! Kahan compensated summation (§III-C). The variance is evaluated as
//! `Σx² − (Σx)·μ`, which in FP16 exhibits exactly the "severe cancellations"
//! §III-C describes.

use mdmp_data::MultiDimSeries;
use mdmp_precision::{KahanSum, Real};

/// A window of the input series converted to the device format `T` — the
/// result of the H2D copy in Pseudocode 1, line 1.
#[derive(Debug, Clone)]
pub struct SeriesDevice<T: Real> {
    /// Dimension-major samples, `d × len`.
    pub x: Vec<T>,
    /// Samples per dimension.
    pub len: usize,
    /// Dimensionality.
    pub d: usize,
}

impl<T: Real> SeriesDevice<T> {
    /// Convert the time window `[start, start+len)` of a host series.
    pub fn load(series: &MultiDimSeries, start: usize, len: usize) -> SeriesDevice<T> {
        assert!(start + len <= series.len(), "window exceeds series");
        let d = series.dims();
        let mut x = Vec::with_capacity(d * len);
        for k in 0..d {
            let dim = &series.dim(k)[start..start + len];
            x.extend(dim.iter().map(|&v| T::from_f64(v)));
        }
        SeriesDevice { x, len, d }
    }

    /// Samples of dimension `k`.
    pub fn dim(&self, k: usize) -> &[T] {
        &self.x[k * self.len..(k + 1) * self.len]
    }

    /// Number of length-`m` segments.
    pub fn n_segments(&self, m: usize) -> usize {
        assert!(m <= self.len, "segment longer than window");
        self.len - m + 1
    }
}

/// Per-dimension rolling statistics in precision `T` (dimension-major,
/// `d × n` each).
#[derive(Debug, Clone)]
pub struct Stats<T: Real> {
    /// Number of segments.
    pub n: usize,
    /// Dimensionality.
    pub d: usize,
    /// Rolling means `μ[i]`.
    pub mu: Vec<T>,
    /// Inverse centered norms `1 / ‖seg_i − μ_i‖`.
    pub inv: Vec<T>,
    /// `df[i] = (x[i+m−1] − x[i−1]) / 2` (0 at i = 0).
    pub df: Vec<T>,
    /// `dg[i] = (x[i+m−1] − μ[i]) + (x[i−1] − μ[i−1])` (0 at i = 0).
    pub dg: Vec<T>,
}

impl<T: Real> Stats<T> {
    /// Convert to another precision `M` (the Mixed mode's FP32 → FP16 step;
    /// exact widening through f64, one rounding into `M`).
    pub fn convert<M: Real>(&self) -> Stats<M> {
        Stats {
            n: self.n,
            d: self.d,
            mu: self.mu.iter().map(|&v| M::from_f64(v.to_f64())).collect(),
            inv: self.inv.iter().map(|&v| M::from_f64(v.to_f64())).collect(),
            df: self.df.iter().map(|&v| M::from_f64(v.to_f64())).collect(),
            dg: self.dg.iter().map(|&v| M::from_f64(v.to_f64())).collect(),
        }
    }
}

/// A running sum that is either plain (one rounding per add) or Kahan
/// compensated — the switch between the FP16 and FP16C precalculation.
enum RunningSum<T: Real> {
    Plain(T),
    Kahan(KahanSum<T>),
}

impl<T: Real> RunningSum<T> {
    fn new(kahan: bool) -> RunningSum<T> {
        if kahan {
            RunningSum::Kahan(KahanSum::new())
        } else {
            RunningSum::Plain(T::zero())
        }
    }

    /// Rebuild a sum from a checkpointed `(value, compensation)` pair;
    /// continuing the fold reproduces the original bit sequence exactly.
    fn resume(value: T, compensation: T, kahan: bool) -> RunningSum<T> {
        if kahan {
            RunningSum::Kahan(KahanSum::from_parts(value, compensation))
        } else {
            RunningSum::Plain(value)
        }
    }

    #[inline]
    fn add(&mut self, x: T) {
        match self {
            RunningSum::Plain(s) => *s += x,
            RunningSum::Kahan(k) => k.add(x),
        }
    }

    #[inline]
    fn value(&self) -> T {
        match self {
            RunningSum::Plain(s) => *s,
            RunningSum::Kahan(k) => k.value(),
        }
    }

    #[inline]
    fn parts(&self) -> (T, T) {
        match self {
            RunningSum::Plain(s) => (*s, T::zero()),
            RunningSum::Kahan(k) => (k.value(), k.compensation()),
        }
    }
}

/// The exact f64 image of one side's running-sum accumulators after the
/// last emitted segment — the resume point for [`extend_stats`].
///
/// Every supported precision embeds in f64 without rounding, so storing the
/// accumulators widened and narrowing them back on resume is the identity;
/// the extension therefore continues the *same* fold [`compute_stats`]
/// performs, making incremental statistics bit-identical to a recompute
/// over the grown window.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsCheckpoint {
    /// Per-dimension `[Σx, Σx compensation, Σx², Σx² compensation]`
    /// (compensations are zero for plain accumulation).
    pub sums: Vec<[f64; 4]>,
    /// Whether the accumulators are Kahan-compensated.
    pub kahan: bool,
}

/// Compute the rolling statistics of every dimension in precision `T`.
///
/// `kahan = true` selects the compensated-summation variant (FP16C mode).
pub fn compute_stats<T: Real>(dev: &SeriesDevice<T>, m: usize, kahan: bool) -> Stats<T> {
    compute_stats_checkpointed(dev, m, kahan).0
}

/// [`compute_stats`] plus the final accumulator state, so the fold can be
/// resumed later by [`extend_stats`] without reprocessing the window.
pub fn compute_stats_checkpointed<T: Real>(
    dev: &SeriesDevice<T>,
    m: usize,
    kahan: bool,
) -> (Stats<T>, StatsCheckpoint) {
    assert!(m >= 2, "segment length must be at least 2");
    let n = dev.n_segments(m);
    let d = dev.d;
    let m_inv = T::one() / T::from_usize(m);
    let mut mu = vec![T::zero(); d * n];
    let mut inv = vec![T::zero(); d * n];
    let mut df = vec![T::zero(); d * n];
    let mut dg = vec![T::zero(); d * n];
    let half = T::from_f64(0.5);
    let mut ckpt = StatsCheckpoint {
        sums: Vec::with_capacity(d),
        kahan,
    };

    for k in 0..d {
        let x = dev.dim(k);
        let mu_k = &mut mu[k * n..(k + 1) * n];
        let inv_k = &mut inv[k * n..(k + 1) * n];
        let df_k = &mut df[k * n..(k + 1) * n];
        let dg_k = &mut dg[k * n..(k + 1) * n];

        let mut sum = RunningSum::new(kahan);
        let mut sumsq = RunningSum::new(kahan);
        for &v in &x[..m] {
            sum.add(v);
            sumsq.add(v * v);
        }
        for i in 0..n {
            if i > 0 {
                let enter = x[i + m - 1];
                let leave = x[i - 1];
                sum.add(enter);
                sum.add(-leave);
                sumsq.add(enter * enter);
                sumsq.add(-(leave * leave));
            }
            let s = sum.value();
            let mui = s * m_inv;
            mu_k[i] = mui;
            // ‖seg − μ‖² = Σx² − (Σx)·μ — the cancellation-prone form.
            let ss = sumsq.value() - s * mui;
            inv_k[i] = T::one() / ss.sqrt();
            if i > 0 {
                df_k[i] = half * (x[i + m - 1] - x[i - 1]);
                dg_k[i] = (x[i + m - 1] - mu_k[i]) + (x[i - 1] - mu_k[i - 1]);
            }
        }
        let (sv, sc) = sum.parts();
        let (qv, qc) = sumsq.parts();
        ckpt.sums
            .push([sv.to_f64(), sc.to_f64(), qv.to_f64(), qc.to_f64()]);
    }
    (
        Stats {
            n,
            d,
            mu,
            inv,
            df,
            dg,
        },
        ckpt,
    )
}

/// Extend side statistics forward over appended samples — O(new) instead of
/// O(n) — **bit-identically** to recomputing from scratch over the grown
/// window.
///
/// `prior`/`ckpt` describe segments `0..n₀` of `series[..old_len]` as
/// captured by [`compute_stats_checkpointed`] in precision `T` and widened
/// exactly to f64. The extension re-reads only the last `m − 1` old samples
/// (the boundary band every spanning segment needs) plus the appended
/// suffix, narrows the checkpointed accumulators back to `T` (exact, since
/// each f64 is the image of a `T` value), and continues the identical
/// left-to-right fold of [`compute_stats`]. A from-scratch recompute
/// performs exactly the same operation sequence — its first `n₀` segments
/// are the already-emitted prefix — so the appended segments carry the same
/// bits either way.
pub fn extend_stats<T: Real>(
    series: &MultiDimSeries,
    old_len: usize,
    m: usize,
    prior: &Stats<f64>,
    ckpt: &StatsCheckpoint,
) -> (Stats<f64>, StatsCheckpoint) {
    let new_len = series.len();
    assert!(m >= 2, "segment length must be at least 2");
    assert!(old_len >= m, "checkpoint must cover at least one segment");
    assert!(new_len > old_len, "nothing to extend");
    let n0 = prior.n;
    assert_eq!(n0, old_len - m + 1, "checkpoint does not match old length");
    assert_eq!(prior.d, series.dims(), "dimensionality mismatch");
    assert_eq!(ckpt.sums.len(), prior.d, "checkpoint dimensionality");
    let n1 = new_len - m + 1;
    let add = n1 - n0;
    // Local window: the checkpointed segment's first sample onward — the
    // m − 1 boundary samples plus the appended suffix.
    let base = n0 - 1;
    let dev = SeriesDevice::<T>::load(series, base, new_len - base);
    let d = prior.d;
    let m_inv = T::one() / T::from_usize(m);
    let half = T::from_f64(0.5);
    let kahan = ckpt.kahan;

    let mut out = Stats {
        n: n1,
        d,
        mu: Vec::with_capacity(d * n1),
        inv: Vec::with_capacity(d * n1),
        df: Vec::with_capacity(d * n1),
        dg: Vec::with_capacity(d * n1),
    };
    let mut next = StatsCheckpoint {
        sums: Vec::with_capacity(d),
        kahan,
    };

    for k in 0..d {
        out.mu.extend_from_slice(&prior.mu[k * n0..(k + 1) * n0]);
        out.inv.extend_from_slice(&prior.inv[k * n0..(k + 1) * n0]);
        out.df.extend_from_slice(&prior.df[k * n0..(k + 1) * n0]);
        out.dg.extend_from_slice(&prior.dg[k * n0..(k + 1) * n0]);

        let x = dev.dim(k);
        let [sv, sc, qv, qc] = ckpt.sums[k];
        let mut sum = RunningSum::resume(T::from_f64(sv), T::from_f64(sc), kahan);
        let mut sumsq = RunningSum::resume(T::from_f64(qv), T::from_f64(qc), kahan);
        let mut mu_prev = T::from_f64(prior.mu[k * n0 + (n0 - 1)]);
        for j in 1..=add {
            let enter = x[j + m - 1];
            let leave = x[j - 1];
            sum.add(enter);
            sum.add(-leave);
            sumsq.add(enter * enter);
            sumsq.add(-(leave * leave));
            let s = sum.value();
            let mui = s * m_inv;
            let ss = sumsq.value() - s * mui;
            out.mu.push(mui.to_f64());
            out.inv.push((T::one() / ss.sqrt()).to_f64());
            out.df.push((half * (enter - leave)).to_f64());
            out.dg.push(((enter - mui) + (leave - mu_prev)).to_f64());
            mu_prev = mui;
        }
        let (sv, sc) = sum.parts();
        let (qv, qc) = sumsq.parts();
        next.sums
            .push([sv.to_f64(), sc.to_f64(), qv.to_f64(), qc.to_f64()]);
    }
    (out, next)
}

/// Mean-centered dot product of the segment at `a_start` in `a` and the
/// segment at `b_start` in `b` (dimension `k`), in precision `T`.
#[allow(clippy::too_many_arguments)]
fn centered_dot<T: Real>(
    a: &[T],
    a_start: usize,
    mu_a: T,
    b: &[T],
    b_start: usize,
    mu_b: T,
    m: usize,
    kahan: bool,
) -> T {
    let mut acc = RunningSum::new(kahan);
    for t in 0..m {
        acc.add((a[a_start + t] - mu_a) * (b[b_start + t] - mu_b));
    }
    acc.value()
}

/// Initial correlations: `QT_r` (row 0: reference segment 0 against every
/// query segment) and `QT_q` (column 0: every reference segment against
/// query segment 0), dimension-major.
pub fn initial_qt<T: Real>(
    refd: &SeriesDevice<T>,
    rstats: &Stats<T>,
    qd: &SeriesDevice<T>,
    qstats: &Stats<T>,
    m: usize,
    kahan: bool,
) -> (Vec<T>, Vec<T>) {
    let n_r = rstats.n;
    let n_q = qstats.n;
    let d = refd.d;
    assert_eq!(qd.d, d, "dimensionality mismatch");
    let mut row0 = vec![T::zero(); d * n_q];
    let mut col0 = vec![T::zero(); d * n_r];
    for k in 0..d {
        let rx = refd.dim(k);
        let qx = qd.dim(k);
        let mu_r = &rstats.mu[k * n_r..(k + 1) * n_r];
        let mu_q = &qstats.mu[k * n_q..(k + 1) * n_q];
        let row0_k = &mut row0[k * n_q..(k + 1) * n_q];
        for (j, slot) in row0_k.iter_mut().enumerate() {
            *slot = centered_dot(rx, 0, mu_r[0], qx, j, mu_q[j], m, kahan);
        }
        let col0_k = &mut col0[k * n_r..(k + 1) * n_r];
        for (i, slot) in col0_k.iter_mut().enumerate() {
            *slot = centered_dot(rx, i, mu_r[i], qx, 0, mu_q[0], m, kahan);
        }
    }
    (row0, col0)
}

/// [`initial_qt`] with the dot products split across `workers` host
/// threads.
///
/// Each output element is an independent mean-centered dot product, so the
/// partition changes nothing about the arithmetic — the result is
/// bit-identical to the sequential computation for any worker count. This
/// is the worker-pool route for large streaming delta tiles, whose O(n·m·d)
/// initial column dominates an append's precalculation.
#[allow(clippy::too_many_arguments)]
pub fn initial_qt_pooled<T: Real>(
    refd: &SeriesDevice<T>,
    rstats: &Stats<T>,
    qd: &SeriesDevice<T>,
    qstats: &Stats<T>,
    m: usize,
    kahan: bool,
    workers: usize,
) -> (Vec<T>, Vec<T>) {
    if workers <= 1 {
        return initial_qt(refd, rstats, qd, qstats, m, kahan);
    }
    let n_r = rstats.n;
    let n_q = qstats.n;
    let d = refd.d;
    assert_eq!(qd.d, d, "dimensionality mismatch");
    let mut row0 = vec![T::zero(); d * n_q];
    let mut col0 = vec![T::zero(); d * n_r];
    // One flat index space over both planes: [0, d·n_q) is row0,
    // [d·n_q, d·n_q + d·n_r) is col0. Contiguous chunks keep each worker's
    // writes disjoint.
    let total = d * n_q + d * n_r;
    let chunk = total.div_ceil(workers);
    let fill = |flat: usize, slot: &mut T| {
        if flat < d * n_q {
            let (k, j) = (flat / n_q, flat % n_q);
            let mu_r = rstats.mu[k * n_r];
            let mu_q = qstats.mu[k * n_q + j];
            *slot = centered_dot(refd.dim(k), 0, mu_r, qd.dim(k), j, mu_q, m, kahan);
        } else {
            let local = flat - d * n_q;
            let (k, i) = (local / n_r, local % n_r);
            let mu_r = rstats.mu[k * n_r + i];
            let mu_q = qstats.mu[k * n_q];
            *slot = centered_dot(refd.dim(k), i, mu_r, qd.dim(k), 0, mu_q, m, kahan);
        }
    };
    std::thread::scope(|scope| {
        let mut rest_row: &mut [T] = &mut row0;
        let mut rest_col: &mut [T] = &mut col0;
        let mut offset = 0usize;
        while offset < total {
            let take = chunk.min(total - offset);
            // Carve this worker's span out of whichever plane(s) it covers.
            let row_take = take.min(rest_row.len());
            let (row_span, row_tail) = rest_row.split_at_mut(row_take);
            rest_row = row_tail;
            let col_take = take - row_take;
            let (col_span, col_tail) = rest_col.split_at_mut(col_take);
            rest_col = col_tail;
            let start = offset;
            let fill = &fill;
            scope.spawn(move || {
                for (off, slot) in row_span.iter_mut().enumerate() {
                    fill(start + off, slot);
                }
                for (off, slot) in col_span.iter_mut().enumerate() {
                    fill(start + row_take + off, slot);
                }
            });
            offset += take;
        }
    });
    (row0, col0)
}

/// Convert an initial-QT buffer to the main-loop precision.
pub fn convert_qt<P: Real, M: Real>(qt: &[P]) -> Vec<M> {
    qt.iter().map(|&v| M::from_f64(v.to_f64())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdmp_data::stats::{rolling_mean, rolling_std};
    use mdmp_precision::Half;

    fn test_series(d: usize, len: usize) -> MultiDimSeries {
        let dims: Vec<Vec<f64>> = (0..d)
            .map(|k| {
                (0..len)
                    .map(|t| ((t * (k + 3)) as f64 * 0.37).sin() + 0.1 * (t as f64 % 7.0))
                    .collect()
            })
            .collect();
        MultiDimSeries::from_dims(dims)
    }

    #[test]
    fn f64_stats_match_reference_rolling_stats() {
        let series = test_series(3, 200);
        let m = 16;
        let dev = SeriesDevice::<f64>::load(&series, 0, 200);
        let stats = compute_stats(&dev, m, false);
        assert_eq!(stats.n, 185);
        for k in 0..3 {
            let mu_ref = rolling_mean(series.dim(k), m);
            let sd_ref = rolling_std(series.dim(k), m);
            for i in 0..stats.n {
                let mu = stats.mu[k * stats.n + i];
                assert!((mu - mu_ref[i]).abs() < 1e-10, "mu[{k}][{i}]");
                // inv = 1 / (σ·√m)
                let inv_ref = 1.0 / (sd_ref[i] * (m as f64).sqrt());
                let inv = stats.inv[k * stats.n + i];
                assert!(
                    (inv - inv_ref).abs() / inv_ref < 1e-9,
                    "inv[{k}][{i}]: {inv} vs {inv_ref}"
                );
            }
        }
    }

    #[test]
    fn df_dg_definitions() {
        let series = test_series(1, 64);
        let m = 8;
        let dev = SeriesDevice::<f64>::load(&series, 0, 64);
        let stats = compute_stats(&dev, m, false);
        let x = series.dim(0);
        assert_eq!(stats.df[0], 0.0);
        assert_eq!(stats.dg[0], 0.0);
        for i in 1..stats.n {
            let df = 0.5 * (x[i + m - 1] - x[i - 1]);
            let dg = (x[i + m - 1] - stats.mu[i]) + (x[i - 1] - stats.mu[i - 1]);
            assert!((stats.df[i] - df).abs() < 1e-12);
            assert!((stats.dg[i] - dg).abs() < 1e-10);
        }
    }

    #[test]
    fn window_offset_slices_correctly() {
        let series = test_series(2, 300);
        let dev_full = SeriesDevice::<f64>::load(&series, 0, 300);
        let dev_win = SeriesDevice::<f64>::load(&series, 100, 50);
        assert_eq!(dev_win.len, 50);
        assert_eq!(dev_win.dim(1)[0], dev_full.dim(1)[100]);
        let m = 8;
        let stats_win = compute_stats(&dev_win, m, false);
        let stats_full = compute_stats(&dev_full, m, false);
        // Window stats equal the full-series stats at the offset.
        for i in 0..stats_win.n {
            assert!(
                (stats_win.mu[i] - stats_full.mu[100 + i]).abs() < 1e-12,
                "offset stats must match"
            );
        }
    }

    #[test]
    fn initial_qt_matches_direct_computation() {
        let series_r = test_series(2, 100);
        let series_q = test_series(2, 120);
        let m = 10;
        let rd = SeriesDevice::<f64>::load(&series_r, 0, 100);
        let qd = SeriesDevice::<f64>::load(&series_q, 0, 120);
        let rs = compute_stats(&rd, m, false);
        let qs = compute_stats(&qd, m, false);
        let (row0, col0) = initial_qt(&rd, &rs, &qd, &qs, m, false);
        // Direct check at a few positions.
        for k in 0..2 {
            let rx = series_r.dim(k);
            let qx = series_q.dim(k);
            for j in [0usize, 5, 50, 110] {
                let mu_r: f64 = rx[0..m].iter().sum::<f64>() / m as f64;
                let mu_q: f64 = qx[j..j + m].iter().sum::<f64>() / m as f64;
                let direct: f64 = (0..m).map(|t| (rx[t] - mu_r) * (qx[j + t] - mu_q)).sum();
                assert!((row0[k * qs.n + j] - direct).abs() < 1e-9, "row0[{k}][{j}]");
            }
            for i in [0usize, 7, 90] {
                let mu_r: f64 = rx[i..i + m].iter().sum::<f64>() / m as f64;
                let mu_q: f64 = qx[0..m].iter().sum::<f64>() / m as f64;
                let direct: f64 = (0..m).map(|t| (rx[i + t] - mu_r) * (qx[t] - mu_q)).sum();
                assert!((col0[k * rs.n + i] - direct).abs() < 1e-9, "col0[{k}][{i}]");
            }
        }
    }

    #[test]
    fn kahan_improves_fp16_means_on_long_windows() {
        // A long series with a drifting mean stresses the running sums.
        let len = 4096 + 63;
        let x: Vec<f64> = (0..len)
            .map(|t| 1.0 + 0.3 * ((t as f64) * 0.01).sin() + 0.2 * ((t * 13 % 17) as f64 / 17.0))
            .collect();
        let series = MultiDimSeries::univariate(x.clone());
        let m = 64;
        let dev = SeriesDevice::<Half>::load(&series, 0, len);
        let plain = compute_stats(&dev, m, false);
        let comp = compute_stats(&dev, m, true);
        let exact = rolling_mean(&x, m);
        let err = |stats: &Stats<Half>| -> f64 {
            stats
                .mu
                .iter()
                .zip(&exact)
                .map(|(&a, &b)| (a.to_f64() - b).abs())
                .sum::<f64>()
                / exact.len() as f64
        };
        let e_plain = err(&plain);
        let e_comp = err(&comp);
        assert!(
            e_comp < e_plain * 0.6,
            "kahan should reduce mean error: plain {e_plain}, comp {e_comp}"
        );
    }

    #[test]
    fn stats_conversion_rounds_to_target() {
        let series = test_series(1, 64);
        let dev = SeriesDevice::<f32>::load(&series, 0, 64);
        let stats32 = compute_stats(&dev, 8, false);
        let stats16: Stats<Half> = stats32.convert();
        assert_eq!(stats16.n, stats32.n);
        for i in 0..stats16.n {
            let expected = Half::from_f64(stats32.mu[i] as f64).to_f64();
            assert_eq!(stats16.mu[i].to_f64(), expected);
        }
    }

    fn assert_stats_bits_equal(a: &Stats<f64>, b: &Stats<f64>, what: &str) {
        assert_eq!(a.n, b.n, "{what}: segment count");
        assert_eq!(a.d, b.d, "{what}: dims");
        for (name, xs, ys) in [
            ("mu", &a.mu, &b.mu),
            ("inv", &a.inv, &b.inv),
            ("df", &a.df, &b.df),
            ("dg", &a.dg, &b.dg),
        ] {
            for (i, (x, y)) in xs.iter().zip(ys.iter()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{what}: {name}[{i}] {x} vs {y}");
            }
        }
    }

    fn extend_matches_scratch<T: Real>(kahan: bool) {
        let series = test_series(2, 300);
        let m = 16;
        let old_len = 220;
        let head = series.window(0, old_len);
        let dev_head = SeriesDevice::<T>::load(&head, 0, old_len);
        let (stats_head, ckpt) = compute_stats_checkpointed(&dev_head, m, kahan);
        let (extended, next_ckpt) =
            extend_stats::<T>(&series, old_len, m, &stats_head.convert(), &ckpt);
        let dev_full = SeriesDevice::<T>::load(&series, 0, 300);
        let (scratch, scratch_ckpt) = compute_stats_checkpointed(&dev_full, m, kahan);
        assert_stats_bits_equal(
            &extended,
            &scratch.convert(),
            &format!("{} kahan={kahan}", T::NAME),
        );
        assert_eq!(next_ckpt, scratch_ckpt, "{} kahan={kahan}", T::NAME);
    }

    #[test]
    fn extend_stats_is_bit_identical_to_scratch_in_every_precision() {
        extend_matches_scratch::<f64>(false);
        extend_matches_scratch::<f32>(false);
        extend_matches_scratch::<Half>(false);
        extend_matches_scratch::<Half>(true);
        extend_matches_scratch::<mdmp_precision::Bf16>(false);
        extend_matches_scratch::<mdmp_precision::Tf32>(false);
    }

    #[test]
    fn extend_stats_single_sample_appends_chain() {
        // Append one sample at a time; the chained extensions must land on
        // the same bits as one big recompute.
        let series = test_series(1, 96);
        let m = 8;
        let mut len = 64;
        let dev = SeriesDevice::<Half>::load(&series.window(0, len), 0, len);
        let (stats, mut ckpt) = compute_stats_checkpointed(&dev, m, true);
        let mut stats: Stats<f64> = stats.convert();
        while len < 96 {
            len += 1;
            let grown = series.window(0, len);
            let (s, c) = extend_stats::<Half>(&grown, len - 1, m, &stats, &ckpt);
            stats = s;
            ckpt = c;
        }
        let dev_full = SeriesDevice::<Half>::load(&series, 0, 96);
        let scratch: Stats<f64> = compute_stats(&dev_full, m, true).convert();
        assert_stats_bits_equal(&stats, &scratch, "chained single-sample appends");
    }

    #[test]
    fn pooled_initial_qt_matches_sequential_for_any_worker_count() {
        let series_r = test_series(3, 140);
        let series_q = test_series(3, 90);
        let m = 12;
        let rd = SeriesDevice::<f32>::load(&series_r, 0, 140);
        let qd = SeriesDevice::<f32>::load(&series_q, 0, 90);
        let rs = compute_stats(&rd, m, false);
        let qs = compute_stats(&qd, m, false);
        let (row_seq, col_seq) = initial_qt(&rd, &rs, &qd, &qs, m, false);
        for workers in [2, 3, 7, 64] {
            let (row_p, col_p) = initial_qt_pooled(&rd, &rs, &qd, &qs, m, false, workers);
            assert_eq!(row_p, row_seq, "row0 with {workers} workers");
            assert_eq!(col_p, col_seq, "col0 with {workers} workers");
        }
    }

    #[test]
    fn flat_window_produces_infinite_inv() {
        let mut x = vec![1.0; 40];
        x[30] = 2.0; // keep later windows non-flat
        let series = MultiDimSeries::univariate(x);
        let dev = SeriesDevice::<f64>::load(&series, 0, 40);
        let stats = compute_stats(&dev, 8, false);
        assert!(
            !stats.inv[0].is_finite(),
            "flat window must yield non-finite inverse norm (ill-conditioned case, §V-B)"
        );
    }
}

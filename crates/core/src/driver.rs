//! The multi-tile, multi-GPU driver (Pseudocode 2).
//!
//! Tiles are assigned Round-robin to the system's devices, issued on
//! per-device streams (transfers overlap compute, full-device kernels
//! serialize), executed functionally on the host, and merged on the CPU
//! with min/argmin. The modelled time is the slowest device's makespan plus
//! the CPU merge.

use crate::config::{MdmpConfig, MdmpError, TileError};
use crate::profile::MatrixProfile;
use crate::tile_exec::{
    apply_plane_fault, compute_tile_precalc, execute_tile_from_precalc_pooled, max_profile_value,
    validate_profile_plane, PlaneBuffers, TileOutput, TilePrecalc,
};
use crate::tiling::{assign_tiles_weighted, compute_tile_list, Tile};
use mdmp_data::MultiDimSeries;
use mdmp_faults::FaultKind;
use mdmp_gpu_sim::{
    CostLedger, DeviceHealth, DeviceSpec, GpuSystem, KernelClass, KernelCost, TimingModel,
};
use mdmp_precision::{Bf16, Format, Fp8E4M3, Fp8E5M2, Half, PrecisionMode, Real, Tf32};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Host-side fixed cost per tile (stream setup, allocation, result
/// handling) — the overhead that makes very high tile counts slightly
/// slower in Fig. 7 ("the final merging of tiles … is executed by the CPU,
/// which results in an overhead increasing with the number of tiles").
pub const HOST_PER_TILE_OVERHEAD: f64 = 2.0e-3;

/// Concurrent streams hide launch/barrier gaps behind other tiles' compute:
/// with two or more resident tiles the host issues launches ahead and the
/// device work queue never drains, leaving ~1/16 of the nominal per-launch
/// cost visible. A single tile has nothing to overlap with. This is the
/// source of the initial speed-up when going from 1 tile to many in Fig. 7.
pub const OVERHEAD_OVERLAP_CAP: u64 = 16;

/// The result of a full matrix-profile run.
#[derive(Debug)]
pub struct MdmpRun {
    /// The merged matrix profile (global reference indices).
    pub profile: MatrixProfile,
    /// Aggregated per-kernel-class accounting (all devices + merge).
    pub ledger: CostLedger,
    /// Modelled end-to-end seconds: slowest device makespan + CPU merge.
    pub modeled_seconds: f64,
    /// Modelled CPU merge seconds (including per-tile host overhead).
    pub merge_seconds: f64,
    /// Modelled makespan per device.
    pub device_makespans: Vec<f64>,
    /// Wall-clock seconds of the functional (host) execution.
    pub wall_seconds: f64,
    /// Tiles whose precalculation was served from a [`PrecalcStore`].
    pub precalc_hits: usize,
    /// Tiles whose precalculation had to be computed.
    pub precalc_misses: usize,
    /// Host worker threads the run actually used (see
    /// [`MdmpConfig::resolved_host_workers`]).
    pub host_workers: usize,
    /// Per-worker wall seconds spent executing tiles (claim → result),
    /// one entry per worker; the spread shows load imbalance.
    pub worker_busy_seconds: Vec<f64>,
    /// Tiles executed on already-allocated [`PlaneBuffers`] (every tile
    /// after a worker's first).
    pub buffer_pool_reuses: u64,
    /// Workers that allocated a fresh set of plane buffers (at most one
    /// allocation per worker).
    pub buffer_pool_allocs: u64,
    /// Tile attempts that failed and were retried (fault injection or
    /// genuine kernel failures).
    pub tile_retries: u64,
    /// Result planes rejected by the NaN/Inf/bound validation gate.
    pub plane_validation_failures: u64,
    /// Faults the configured [`mdmp_faults::FaultPlan`] actually injected.
    pub faults_injected: u64,
    /// Simulated devices the health ledger quarantined during the run.
    pub quarantined_devices: Vec<usize>,
    /// Whether tiles ran the fused per-row pass (one dispatch per row)
    /// instead of the three-kernel pipeline (see
    /// [`MdmpConfig::resolved_fused_rows`]).
    pub fused_rows: bool,
    /// Host dispatches the fused pass eliminated relative to the unfused
    /// pipeline, summed over all tiles (two per reference row; zero when
    /// `fused_rows` is off).
    pub eliminated_dispatches: u64,
    /// MMA accumulator chunk width (= panel height) the run used, when the
    /// mode drives the simulated tensor cores (see
    /// [`MdmpConfig::resolved_tc_chunk_k`]); `None` for vector modes.
    pub tc_chunk_k: Option<usize>,
    /// Multi-worker dispatches this run handed to the persistent worker
    /// pool (delta of [`rayon::pool_stats`] across the run).
    pub pool_dispatches: u64,
    /// Of those, dispatches served entirely by already-running pool
    /// threads — the launches that a scoped spawn-per-dispatch stub would
    /// have paid thread creation for.
    pub pool_thread_reuses: u64,
}

/// External storage for per-tile precalculation results, consulted by
/// [`run_with_mode_cached`]. The store sees tiles by their deterministic
/// index within the run's tiling; distinguishing runs (series, `m`,
/// precision mode, tile count) is the caller's job — a cached-result
/// service keys an inner store like this one by exactly that tuple.
///
/// Stores are shared by the concurrent tile pipeline's worker threads, so
/// methods take `&self` (implementors use interior mutability) and the
/// trait requires `Send + Sync`.
pub trait PrecalcStore: Send + Sync {
    /// A previously stored precalculation for tile `tile_index`, if any.
    fn lookup(&self, tile_index: usize) -> Option<Arc<TilePrecalc>>;
    /// Offer a freshly computed precalculation for future reuse.
    fn store(&self, tile_index: usize, pre: &Arc<TilePrecalc>);
    /// Fetch tile `tile_index`, computing (and storing) it on a miss.
    /// Returns the precalculation and whether it was served from the store.
    ///
    /// The default is lookup-compute-store without cross-thread
    /// coordination — sufficient inside one run, where every tile is
    /// claimed by exactly one worker. Stores shared *across* concurrent
    /// runs (e.g. a service-wide cache) should override this with a
    /// single-flight implementation so simultaneous misses on the same
    /// tile compute once and record exactly one miss.
    fn fetch_or_compute(
        &self,
        tile_index: usize,
        compute: &mut dyn FnMut() -> Arc<TilePrecalc>,
    ) -> (Arc<TilePrecalc>, bool) {
        if let Some(pre) = self.lookup(tile_index) {
            return (pre, true);
        }
        let pre = compute();
        self.store(tile_index, &pre);
        (pre, false)
    }
}

impl MdmpRun {
    /// Parallel efficiency with respect to a single-device makespan
    /// (`t₁ / (p · t_p)`), the metric of Fig. 5.
    pub fn parallel_efficiency(&self, single_device_seconds: f64) -> f64 {
        let p = self.device_makespans.len() as f64;
        single_device_seconds / (p * self.modeled_seconds)
    }
}

/// Run the multi-dimensional matrix profile in the configured precision
/// mode on the given (simulated) GPU system.
pub fn run_with_mode(
    reference: &MultiDimSeries,
    query: &MultiDimSeries,
    cfg: &MdmpConfig,
    system: &mut GpuSystem,
) -> Result<MdmpRun, MdmpError> {
    run_with_mode_cached(reference, query, cfg, system, None)
}

/// [`run_with_mode`] with an optional precalculation store: tiles whose
/// precalc the store already holds skip the `Precalc` kernel entirely (no
/// device cost, smaller H2D transfer), and fresh precalcs are offered back
/// to the store. Hit/miss counts land in the returned [`MdmpRun`].
pub fn run_with_mode_cached(
    reference: &MultiDimSeries,
    query: &MultiDimSeries,
    cfg: &MdmpConfig,
    system: &mut GpuSystem,
    store: Option<&dyn PrecalcStore>,
) -> Result<MdmpRun, MdmpError> {
    match cfg.mode {
        PrecisionMode::Fp64 => run_generic::<f64, f64>(reference, query, cfg, system, false, store),
        PrecisionMode::Fp32 => run_generic::<f32, f32>(reference, query, cfg, system, false, store),
        PrecisionMode::Fp16 => {
            run_generic::<Half, Half>(reference, query, cfg, system, false, store)
        }
        PrecisionMode::Mixed => {
            run_generic::<f32, Half>(reference, query, cfg, system, false, store)
        }
        PrecisionMode::Fp16c => {
            run_generic::<Half, Half>(reference, query, cfg, system, true, store)
        }
        PrecisionMode::Bf16 => {
            run_generic::<Bf16, Bf16>(reference, query, cfg, system, false, store)
        }
        PrecisionMode::Tf32 => {
            run_generic::<Tf32, Tf32>(reference, query, cfg, system, false, store)
        }
        // FP8 extension modes: FP32 precalculation by construction.
        PrecisionMode::Fp8E4M3 => {
            run_generic::<f32, Fp8E4M3>(reference, query, cfg, system, false, store)
        }
        PrecisionMode::Fp8E5M2 => {
            run_generic::<f32, Fp8E5M2>(reference, query, cfg, system, false, store)
        }
        // Tensor-core GEMM modes: FP32 storage + accumulation; the operand
        // narrowing happens inside the blocked-GEMM dist_calc path.
        PrecisionMode::Fp16Tc | PrecisionMode::Bf16Tc | PrecisionMode::Tf32Tc => {
            run_generic::<f32, f32>(reference, query, cfg, system, false, store)
        }
    }
}

fn run_generic<P: Real, M: Real>(
    reference: &MultiDimSeries,
    query: &MultiDimSeries,
    cfg: &MdmpConfig,
    system: &mut GpuSystem,
    kahan: bool,
    store: Option<&dyn PrecalcStore>,
) -> Result<MdmpRun, MdmpError> {
    if reference.dims() != query.dims() {
        return Err(MdmpError::DimensionalityMismatch {
            reference: reference.dims(),
            query: query.dims(),
        });
    }
    if reference.len() < cfg.m || query.len() < cfg.m {
        return Err(MdmpError::BadConfig(
            "series shorter than the segment length".into(),
        ));
    }
    let n_r = reference.n_segments(cfg.m);
    let n_q = query.n_segments(cfg.m);
    cfg.validate(n_r, n_q)?;
    let d = reference.dims();
    let tiles = compute_tile_list(n_r, n_q, cfg.n_tiles)?;

    system.reset();
    let n_gpu = system.device_count();
    let overlap = overlap_factor(tiles.len(), n_gpu);
    let weights: Vec<f64> = (0..n_gpu)
        .map(|i| {
            let spec = &system.device(i).spec;
            spec.mem_bandwidth * spec.mem_eff_fp64
        })
        .collect();
    let assignment = assign_tiles_weighted(&tiles, &weights, cfg.schedule);
    let mut streams = vec![0usize; n_gpu];
    let mut global = MatrixProfile::new_unset(n_q, d);
    let host_workers = cfg.resolved_host_workers(n_gpu).min(tiles.len()).max(1);
    // TC modes run the blocked-GEMM pipeline, which supersedes row fusion.
    let tc_chunk_k = cfg.mode.tc_input().map(|f| cfg.resolved_tc_chunk_k(f));
    let fused_rows = tc_chunk_k.is_none() && cfg.resolved_fused_rows();
    let pool_before = rayon::pool_stats();
    let wall_start = Instant::now();

    // Resilience state shared by the workers and the coordinator: the
    // device health ledger plus run-level fault accounting.
    let health = DeviceHealth::new(n_gpu, cfg.quarantine_threshold);
    let retry_ctr = AtomicU64::new(0);
    let validation_ctr = AtomicU64::new(0);
    let fault_ctr = AtomicU64::new(0);
    let value_bound = max_profile_value(cfg.m);

    // One attempt at a tile: inject the planned fault (if any), execute,
    // poison the result plane if asked, then run the validation gate and
    // the per-kernel deadline check.
    let attempt_tile = |tile: &Tile,
                        bufs: &mut PlaneBuffers<M>,
                        attempt: u32|
     -> Result<(TileOutput, bool), TileError> {
        let start = Instant::now();
        let fault = cfg
            .fault_plan
            .as_deref()
            .and_then(|plan| plan.tile_fault(tile.index, attempt));
        if fault.is_some() {
            // relaxed-ok: reporting tally, read once after every worker
            // has joined (the scope join is the synchronization point).
            fault_ctr.fetch_add(1, Ordering::Relaxed);
        }
        match fault {
            Some(FaultKind::Kernel) => return Err(TileError::Kernel { tile: tile.index }),
            Some(FaultKind::Stall { millis }) => std::thread::sleep(Duration::from_millis(millis)),
            _ => {}
        }
        let mut compute = || {
            Arc::new(compute_tile_precalc::<P>(
                reference, query, tile, cfg, kahan,
            ))
        };
        let (pre, cached) = match store {
            Some(s) => s.fetch_or_compute(tile.index, &mut compute),
            None => (compute(), false),
        };
        let mut out = execute_tile_from_precalc_pooled::<M>(&pre, tile, cfg, kahan, cached, bufs);
        if let Some(kind) = fault {
            apply_plane_fault(&mut out.profile, kind);
        }
        // The gate guards every result, faulted or not — but only when
        // clamping is on; the unclamped ablation produces legitimate NaNs.
        if cfg.clamp {
            if let Err(violation) = validate_profile_plane(&out.profile, value_bound) {
                // relaxed-ok: reporting tally, read after scope join.
                validation_ctr.fetch_add(1, Ordering::Relaxed);
                return Err(TileError::PoisonedPlane {
                    tile: tile.index,
                    violation,
                });
            }
        }
        if let Some(deadline) = cfg.tile_deadline {
            let elapsed = start.elapsed();
            if elapsed > deadline {
                return Err(TileError::Timeout {
                    tile: tile.index,
                    elapsed_ms: elapsed.as_millis() as u64,
                    deadline_ms: deadline.as_millis() as u64,
                });
            }
        }
        Ok((out, cached))
    };

    // Per-tile production with retries, shared verbatim by the inline
    // single-worker path and the scoped-thread pool so both run the exact
    // same code. A failing attempt is retried with capped exponential
    // backoff and re-dispatched away from quarantined devices; the device
    // index a tile finally ran on rides along to the cost model.
    let produce =
        |tile: &Tile, bufs: &mut PlaneBuffers<M>| -> Result<(TileOutput, bool, usize), TileError> {
            let preferred = assignment[tile.index];
            let mut attempt: u32 = 0;
            loop {
                let dev = health.dispatch(preferred, attempt as usize);
                match attempt_tile(tile, bufs, attempt) {
                    Ok((out, cached)) => return Ok((out, cached, dev)),
                    Err(err) => {
                        health.record_failure(dev);
                        if attempt >= cfg.tile_retries {
                            return Err(err);
                        }
                        // relaxed-ok: reporting tally, read after scope join.
                        retry_ctr.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(retry_backoff(
                            cfg.tile_retry_base,
                            cfg.tile_retry_cap,
                            attempt,
                        ));
                        attempt += 1;
                    }
                }
            }
        };

    // In-order consumption on the coordinating thread: cost submission
    // bumps the per-device stream counters and the profile merge resolves
    // ties exactly as the sequential loop did, so results and modelled
    // times are bit-identical regardless of worker count.
    let mut precalc_hits = 0usize;
    let mut precalc_misses = 0usize;
    let mut eliminated_dispatches = 0u64;
    let mut consume = |tile_index: usize,
                       out: TileOutput,
                       cached: bool,
                       dev_idx: usize|
     -> Result<(), MdmpError> {
        if cached {
            precalc_hits += 1;
        } else {
            precalc_misses += 1;
        }
        eliminated_dispatches += out.eliminated_dispatches;
        submit_tile_costs(
            system,
            dev_idx,
            streams[dev_idx],
            tile_index,
            &out.kernel_costs,
            out.h2d_bytes,
            out.d2h_bytes,
            out.device_bytes,
            overlap,
        )?;
        streams[dev_idx] += 1;
        global.merge_min_columns(&out.profile, tiles[tile_index].col0);
        Ok(())
    };

    let mut worker_busy_seconds = vec![0.0f64; host_workers];
    let mut buffer_pool_reuses = 0u64;
    let mut buffer_pool_allocs = 0u64;
    let mut outcome: Result<(), MdmpError> = Ok(());
    let wrap_tile_error = |source: TileError| {
        let tile = match source {
            TileError::Kernel { tile }
            | TileError::Timeout { tile, .. }
            | TileError::PoisonedPlane { tile, .. } => tile,
        };
        MdmpError::TileFailed {
            tile,
            attempts: cfg.tile_retries + 1,
            source,
        }
    };

    if host_workers == 1 {
        let mut bufs = PlaneBuffers::<M>::new();
        let busy_start = Instant::now();
        for tile in &tiles {
            match produce(tile, &mut bufs) {
                Ok((out, cached, dev)) => {
                    if let Err(e) = consume(tile.index, out, cached, dev) {
                        outcome = Err(e);
                        break;
                    }
                }
                Err(source) => {
                    outcome = Err(wrap_tile_error(source));
                    break;
                }
            }
        }
        worker_busy_seconds[0] = busy_start.elapsed().as_secs_f64();
        buffer_pool_reuses = bufs.reuses();
        buffer_pool_allocs = u64::from(bufs.tiles_executed() > 0);
    } else {
        // Workers claim tiles from a shared counter and stream results to
        // the coordinator, which reorders them through a BTreeMap and
        // consumes strictly in ascending tile index.
        let next_tile = AtomicUsize::new(0);
        let cancel = AtomicBool::new(false);
        type TileResult = Result<(TileOutput, bool, usize), TileError>;
        let (tx, rx) = mpsc::channel::<(usize, TileResult)>();
        let mut worker_panics = 0usize;
        let mut tiles_merged = 0usize;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..host_workers)
                .map(|_| {
                    let tx = tx.clone();
                    let next_tile = &next_tile;
                    let cancel = &cancel;
                    let tiles = &tiles;
                    let produce = &produce;
                    scope.spawn(move || {
                        let mut bufs = PlaneBuffers::<M>::new();
                        let mut busy = 0.0f64;
                        loop {
                            // relaxed-ok: cancellation is advisory — a
                            // worker that misses the flag merely finishes
                            // one extra tile; the coordinator discards it.
                            if cancel.load(Ordering::Relaxed) {
                                break;
                            }
                            // relaxed-ok: the claim counter only needs
                            // atomicity for unique indices; tile results
                            // travel through the mpsc channel, which
                            // orders their payloads.
                            let idx = next_tile.fetch_add(1, Ordering::Relaxed);
                            if idx >= tiles.len() {
                                break;
                            }
                            let t0 = Instant::now();
                            let result = produce(&tiles[idx], &mut bufs);
                            busy += t0.elapsed().as_secs_f64();
                            if tx.send((tiles[idx].index, result)).is_err() {
                                break;
                            }
                        }
                        (busy, bufs.reuses(), bufs.tiles_executed())
                    })
                })
                .collect();
            drop(tx);

            let mut pending: BTreeMap<usize, (TileOutput, bool, usize)> = BTreeMap::new();
            'recv: while let Ok((tile_index, result)) = rx.recv() {
                match result {
                    Ok(payload) => {
                        pending.insert(tile_index, payload);
                    }
                    Err(source) => {
                        outcome = Err(wrap_tile_error(source));
                        // relaxed-ok: advisory cancellation (see the
                        // worker-side load).
                        cancel.store(true, Ordering::Relaxed);
                        break 'recv;
                    }
                }
                while let Some((out, cached, dev)) = pending.remove(&tiles_merged) {
                    if let Err(e) = consume(tiles_merged, out, cached, dev) {
                        outcome = Err(e);
                        // relaxed-ok: advisory cancellation (see above).
                        cancel.store(true, Ordering::Relaxed);
                        break 'recv;
                    }
                    tiles_merged += 1;
                }
            }
            drop(rx);
            // A panicked worker must not take the coordinator down with a
            // secondary panic: its claimed tile never arrives, which the
            // missing-tile check below converts into a typed error.
            for (slot, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok((busy, reuses, executed)) => {
                        worker_busy_seconds[slot] = busy;
                        buffer_pool_reuses += reuses;
                        buffer_pool_allocs += u64::from(executed > 0);
                    }
                    Err(_) => worker_panics += 1,
                }
            }
        });
        // The channel drained without every tile reaching the merge: a
        // worker died (panic) or went silent. Surfacing a typed error here
        // is what keeps a dead worker from yielding a *partial* profile.
        if outcome.is_ok() && (tiles_merged < tiles.len() || worker_panics > 0) {
            outcome = Err(MdmpError::TilesMissing {
                merged: tiles_merged,
                expected: tiles.len(),
            });
        }
    }
    outcome?;
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let pool_after = rayon::pool_stats();
    let pool_dispatches = pool_after.dispatches - pool_before.dispatches;
    let pool_thread_reuses = pool_after
        .thread_reuses()
        .saturating_sub(pool_before.thread_reuses());

    let (merge_seconds, merge_cost) = merge_model(&tiles, d, cfg.mode.main_format());
    let mut ledger = system.total_ledger();
    ledger.record(&merge_cost, merge_seconds);
    let device_makespans: Vec<f64> = (0..n_gpu)
        .map(|i| system.device(i).timeline.makespan())
        .collect();
    let makespan = device_makespans.iter().copied().fold(0.0, f64::max);

    Ok(MdmpRun {
        profile: global,
        ledger,
        modeled_seconds: makespan + merge_seconds,
        merge_seconds,
        device_makespans,
        wall_seconds,
        precalc_hits,
        precalc_misses,
        host_workers,
        worker_busy_seconds,
        buffer_pool_reuses,
        buffer_pool_allocs,
        // relaxed-ok: all workers have joined (scope exit) before these
        // reads, so the tallies are complete and stable.
        tile_retries: retry_ctr.load(Ordering::Relaxed),
        plane_validation_failures: validation_ctr.load(Ordering::Relaxed), // relaxed-ok: same
        faults_injected: fault_ctr.load(Ordering::Relaxed),                // relaxed-ok: same
        quarantined_devices: health.quarantined(),
        fused_rows,
        eliminated_dispatches,
        tc_chunk_k,
        pool_dispatches,
        pool_thread_reuses,
    })
}

/// Capped exponential backoff: `base · 2^attempt`, never above `cap`.
pub(crate) fn retry_backoff(base: Duration, cap: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32 << attempt.min(16)).min(cap)
}

/// Overhead-overlap factor for a run (see [`OVERHEAD_OVERLAP_CAP`]): full
/// stream pipelining once a device holds at least two tiles.
pub(crate) fn overlap_factor(n_tiles: usize, n_gpu: usize) -> u64 {
    let per_device = n_tiles.div_ceil(n_gpu) as u64;
    if per_device >= 2 {
        OVERHEAD_OVERLAP_CAP
    } else {
        1
    }
}

/// Submit one tile's transfers and kernels to a device timeline, checking
/// device memory. Shared by the functional driver and the cost estimator.
#[allow(clippy::too_many_arguments)]
pub(crate) fn submit_tile_costs(
    system: &mut GpuSystem,
    dev_idx: usize,
    stream: usize,
    tile_index: usize,
    kernel_costs: &[KernelCost],
    h2d: u64,
    d2h: u64,
    device_bytes: u64,
    overlap: u64,
) -> Result<(), MdmpError> {
    let dev = system.device_mut(dev_idx);
    let alloc = dev
        .memory
        .alloc(device_bytes)
        .map_err(|cause| MdmpError::OutOfDeviceMemory {
            tile: tile_index,
            cause,
        })?;
    dev.submit_transfer(stream, h2d, true);
    for cost in kernel_costs {
        let mut c = *cost;
        c.launches /= overlap;
        c.barriers /= overlap;
        dev.submit_kernel(stream, c);
    }
    dev.submit_transfer(stream, d2h, false);
    // One-tile-at-a-time residency model: the working set is released once
    // the tile's results are on the host (DESIGN.md §2).
    dev.memory.free(alloc);
    Ok(())
}

/// CPU merge model: stream every tile's result through the host merge
/// (min/argmin) plus the fixed per-tile host overhead.
pub(crate) fn merge_model(tiles: &[Tile], d: usize, format: Format) -> (f64, KernelCost) {
    let result_elems: u64 = tiles.iter().map(|t| (t.cols * d) as u64).sum();
    let value_bytes = format.bytes() as u64 + 8; // value + index
    let mut cost = KernelCost::new(KernelClass::Merge, Format::Fp64);
    cost.bytes_read = 2 * result_elems * value_bytes; // tile result + accumulator
    cost.bytes_written = result_elems * value_bytes / 2;
    cost.flops = result_elems;
    let cpu = TimingModel::new(DeviceSpec::skylake_16c());
    let seconds = cpu.kernel_seconds(&cost) + tiles.len() as f64 * HOST_PER_TILE_OVERHEAD;
    (seconds, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdmp_data::synthetic::{generate_pair, SyntheticConfig};
    use mdmp_gpu_sim::DeviceSpec;

    fn small_pair(n: usize, d: usize, m: usize) -> (MultiDimSeries, MultiDimSeries) {
        let cfg = SyntheticConfig {
            n_subsequences: n,
            dims: d,
            m,
            pattern: mdmp_data::Pattern::Sine,
            embeddings: 2,
            noise: 0.3,
            pattern_amplitude: 1.0,
            seed: 77,
        };
        let pair = generate_pair(&cfg);
        (pair.reference, pair.query)
    }

    #[test]
    fn single_tile_equals_multi_tile_in_fp64() {
        let (r, q) = small_pair(200, 3, 16);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let cfg1 = MdmpConfig::new(16, PrecisionMode::Fp64);
        let run1 = run_with_mode(&r, &q, &cfg1, &mut sys).unwrap();
        let cfg9 = MdmpConfig::new(16, PrecisionMode::Fp64).with_tiles(9);
        let run9 = run_with_mode(&r, &q, &cfg9, &mut sys).unwrap();
        for k in 0..3 {
            for j in 0..run1.profile.n_query() {
                assert!(
                    (run1.profile.value(j, k) - run9.profile.value(j, k)).abs() < 1e-9,
                    "P[{j}][{k}] differs across tilings"
                );
                assert_eq!(
                    run1.profile.index(j, k),
                    run9.profile.index(j, k),
                    "I[{j}][{k}] differs across tilings"
                );
            }
        }
    }

    #[test]
    fn multi_gpu_gives_same_result_and_smaller_makespan() {
        let (r, q) = small_pair(240, 2, 16);
        let cfg = MdmpConfig::new(16, PrecisionMode::Fp64).with_tiles(16);
        let mut sys1 = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let run1 = run_with_mode(&r, &q, &cfg, &mut sys1).unwrap();
        let mut sys4 = GpuSystem::homogeneous(DeviceSpec::a100(), 4);
        let run4 = run_with_mode(&r, &q, &cfg, &mut sys4).unwrap();
        assert_eq!(
            run1.profile, run4.profile,
            "results independent of GPU count"
        );
        let m1 = run1.device_makespans[0];
        let m4 = run4.device_makespans.iter().copied().fold(0.0, f64::max);
        assert!(m4 < m1 * 0.35, "4 GPUs should be ~4x faster: {m1} vs {m4}");
    }

    #[test]
    fn reduced_precision_modes_all_run() {
        let (r, q) = small_pair(128, 2, 8);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        for mode in PrecisionMode::ALL {
            let cfg = MdmpConfig::new(8, mode).with_tiles(4);
            let run = run_with_mode(&r, &q, &cfg, &mut sys)
                .unwrap_or_else(|e| panic!("{mode} failed: {e}"));
            assert_eq!(run.profile.n_query(), 128);
            assert!(
                run.profile.unset_fraction() < 0.01,
                "{mode}: too many unset entries"
            );
        }
    }

    #[test]
    fn modeled_time_reduced_precision_is_faster() {
        let (r, q) = small_pair(256, 4, 16);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let t64 = run_with_mode(&r, &q, &MdmpConfig::new(16, PrecisionMode::Fp64), &mut sys)
            .unwrap()
            .modeled_seconds;
        let t16 = run_with_mode(&r, &q, &MdmpConfig::new(16, PrecisionMode::Fp16), &mut sys)
            .unwrap()
            .modeled_seconds;
        assert!(t16 < t64, "FP16 modeled time {t16} not below FP64 {t64}");
    }

    #[test]
    fn tensor_core_run_reports_chunk_and_beats_fp64_model() {
        let (r, q) = small_pair(192, 3, 12);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let t64 = run_with_mode(
            &r,
            &q,
            &MdmpConfig::new(12, PrecisionMode::Fp64).with_tiles(4),
            &mut sys,
        )
        .unwrap()
        .modeled_seconds;
        // Fusion requests are superseded by the GEMM pipeline, and the run
        // surfaces the resolved chunk width.
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp16Tc)
            .with_tiles(4)
            .with_fused_rows(Some(true))
            // pinned so a CI-wide MDMP_TC_CHUNK_K cannot shift it
            .with_tc_chunk_k(Some(8));
        let run = run_with_mode(&r, &q, &cfg, &mut sys).unwrap();
        assert_eq!(run.tc_chunk_k, Some(8));
        assert!(!run.fused_rows, "GEMM path supersedes row fusion");
        assert_eq!(run.eliminated_dispatches, 0);
        assert!(
            run.modeled_seconds < t64,
            "Fp16Tc model {} not below FP64 {}",
            run.modeled_seconds,
            t64
        );
        // Bit-reproducible across tile and GPU counts (reorder-buffer merge
        // over panel-sequential tiles).
        let mut sys3 = GpuSystem::homogeneous(DeviceSpec::a100(), 3);
        let cfg9 = MdmpConfig::new(12, PrecisionMode::Fp16Tc).with_tiles(9);
        let run9 = run_with_mode(&r, &q, &cfg9, &mut sys3).unwrap();
        // Tilings restart panels at tile boundaries, so values may differ in
        // the last ulps between tilings — but the same tiling on a different
        // system must be identical.
        let run9b = run_with_mode(&r, &q, &cfg9, &mut sys).unwrap();
        assert_eq!(run9.profile, run9b.profile, "TC profile depends on system");
        // Vector modes report no chunk width.
        let plain =
            run_with_mode(&r, &q, &MdmpConfig::new(12, PrecisionMode::Fp32), &mut sys).unwrap();
        assert_eq!(plain.tc_chunk_k, None);
    }

    #[test]
    fn ledger_contains_all_kernel_classes() {
        let (r, q) = small_pair(128, 2, 8);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let run =
            run_with_mode(&r, &q, &MdmpConfig::new(8, PrecisionMode::Fp64), &mut sys).unwrap();
        for class in [
            KernelClass::Precalc,
            KernelClass::DistCalc,
            KernelClass::SortScan,
            KernelClass::UpdateProfile,
            KernelClass::Merge,
        ] {
            assert!(
                run.ledger.seconds(class) > 0.0,
                "{class:?} missing from ledger"
            );
        }
    }

    #[test]
    fn fused_run_matches_unfused_with_identical_cost_model() {
        let (r, q) = small_pair(160, 3, 12);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 2);
        for mode in [
            PrecisionMode::Fp64,
            PrecisionMode::Fp32,
            PrecisionMode::Fp16,
            PrecisionMode::Mixed,
            PrecisionMode::Fp16c,
        ] {
            let base = MdmpConfig::new(12, mode).with_tiles(4);
            let fused =
                run_with_mode(&r, &q, &base.clone().with_fused_rows(Some(true)), &mut sys).unwrap();
            let unfused =
                run_with_mode(&r, &q, &base.with_fused_rows(Some(false)), &mut sys).unwrap();
            assert_eq!(fused.profile, unfused.profile, "{mode}: fused != unfused");
            // The ledger charges the same three per-class kernel costs either
            // way — fusion removes host dispatches, not modelled device work.
            assert_eq!(fused.modeled_seconds, unfused.modeled_seconds, "{mode}");
            assert!(fused.fused_rows && !unfused.fused_rows);
            assert_eq!(unfused.eliminated_dispatches, 0);
            let total_rows: u64 = compute_tile_list(160, 160, 4)
                .unwrap()
                .iter()
                .map(|t| t.rows as u64)
                .sum();
            assert_eq!(fused.eliminated_dispatches, 2 * total_rows, "{mode}");
        }
    }

    #[test]
    fn fused_matches_unfused_across_randomized_configs() {
        // Seeded xorshift64* so the "random" configurations are stable
        // across runs; one configuration per precision mode, spanning odd
        // sizes, self- and AB-joins, and lane-remainder widths.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move |lo: usize, hi: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            lo + (state.wrapping_mul(0x2545_f491_4f6c_dd1d) % (hi - lo + 1) as u64) as usize
        };
        for (trial, mode) in PrecisionMode::ALL.into_iter().enumerate() {
            let n = next(90, 220);
            let d = next(1, 4);
            let m = next(8, 20);
            let tiles = next(1, 9);
            let self_join = trial % 2 == 0;
            let (r, q_gen) = small_pair(n, d, m);
            let q = if self_join { r.clone() } else { q_gen };
            let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), next(1, 3));
            let base = MdmpConfig::new(m, mode).with_tiles(tiles);
            let fused =
                run_with_mode(&r, &q, &base.clone().with_fused_rows(Some(true)), &mut sys).unwrap();
            let unfused =
                run_with_mode(&r, &q, &base.with_fused_rows(Some(false)), &mut sys).unwrap();
            let what = format!("{mode} n={n} d={d} m={m} tiles={tiles} self_join={self_join}");
            assert_eq!(fused.profile, unfused.profile, "{what}: profiles differ");
            assert_eq!(fused.modeled_seconds, unfused.modeled_seconds, "{what}");
        }
    }

    #[test]
    fn fused_run_with_recoverable_faults_matches_fault_free() {
        use mdmp_faults::{FaultKind, FaultPlan};
        let (r, q) = small_pair(160, 2, 12);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 2);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp32)
            .with_tiles(4)
            .with_fused_rows(Some(true));
        let clean = run_with_mode(&r, &q, &cfg, &mut sys).unwrap();
        let plan = FaultPlan::new()
            .with_fault(0, FaultKind::Kernel)
            .with_fault(1, FaultKind::Stall { millis: 600 })
            .with_fault(3, FaultKind::PoisonNan);
        let faulted_cfg = cfg
            .clone()
            .with_fault_plan(Some(Arc::new(plan)))
            .with_tile_deadline(Some(std::time::Duration::from_millis(250)));
        let faulted = run_with_mode(&r, &q, &faulted_cfg, &mut sys).unwrap();
        assert_eq!(
            clean.profile, faulted.profile,
            "fused path: retried faults must be invisible in the result"
        );
        assert_eq!(faulted.faults_injected, 3);
        assert_eq!(faulted.tile_retries, 3);
        assert!(faulted.fused_rows);
        assert_eq!(clean.eliminated_dispatches, faulted.eliminated_dispatches);
    }

    #[test]
    fn dimensionality_mismatch_rejected() {
        let (r, _) = small_pair(64, 2, 8);
        let (_, q) = small_pair(64, 3, 8);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let err = run_with_mode(&r, &q, &MdmpConfig::new(8, PrecisionMode::Fp64), &mut sys);
        assert!(matches!(err, Err(MdmpError::DimensionalityMismatch { .. })));
    }

    #[test]
    fn overlap_factor_behaviour() {
        assert_eq!(overlap_factor(1, 1), 1);
        assert_eq!(overlap_factor(2, 1), 16);
        assert_eq!(overlap_factor(16, 1), 16);
        assert_eq!(overlap_factor(16, 4), 16);
        assert_eq!(overlap_factor(4, 4), 1);
    }

    #[test]
    fn cached_rerun_is_identical_and_skips_precalc() {
        use std::collections::HashMap;
        use std::sync::Mutex;

        #[derive(Default)]
        struct MapStore(Mutex<HashMap<usize, Arc<crate::tile_exec::TilePrecalc>>>);
        impl PrecalcStore for MapStore {
            fn lookup(&self, tile_index: usize) -> Option<Arc<crate::tile_exec::TilePrecalc>> {
                self.0.lock().unwrap().get(&tile_index).cloned()
            }
            fn store(&self, tile_index: usize, pre: &Arc<crate::tile_exec::TilePrecalc>) {
                self.0.lock().unwrap().insert(tile_index, Arc::clone(pre));
            }
        }

        let (r, q) = small_pair(160, 2, 12);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp16).with_tiles(4);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let plain = run_with_mode(&r, &q, &cfg, &mut sys).unwrap();
        assert_eq!(plain.precalc_hits, 0);

        let store = MapStore::default();
        let cold = run_with_mode_cached(&r, &q, &cfg, &mut sys, Some(&store)).unwrap();
        assert_eq!((cold.precalc_hits, cold.precalc_misses), (0, 4));
        let warm = run_with_mode_cached(&r, &q, &cfg, &mut sys, Some(&store)).unwrap();
        assert_eq!((warm.precalc_hits, warm.precalc_misses), (4, 0));

        // Bit-identical results across plain / cold / warm paths.
        assert_eq!(plain.profile, cold.profile);
        assert_eq!(plain.profile, warm.profile);
        // The warm run charges no Precalc kernel time at all. (Whether the
        // makespan drops is a device-model question — the cached arrays
        // cost PCIe bytes roughly where the memory-bound precalc kernel
        // cost HBM bytes — but the kernel class must vanish.)
        assert_eq!(warm.ledger.seconds(KernelClass::Precalc), 0.0);
        assert!(cold.ledger.seconds(KernelClass::Precalc) > 0.0);
    }

    #[test]
    fn injected_faults_with_retries_are_invisible() {
        use mdmp_faults::{FaultKind, FaultPlan};
        let (r, q) = small_pair(160, 2, 12);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 2);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp16).with_tiles(4);
        let clean = run_with_mode(&r, &q, &cfg, &mut sys).unwrap();
        assert_eq!(clean.tile_retries, 0);
        assert_eq!(clean.faults_injected, 0);

        let plan = FaultPlan::new()
            .with_fault(0, FaultKind::Kernel)
            .with_fault(1, FaultKind::Stall { millis: 600 })
            .with_fault(2, FaultKind::PoisonNan);
        // The deadline must sit well above the genuine (debug-build) tile
        // compute time and well below the injected stall.
        let faulted_cfg = cfg
            .clone()
            .with_fault_plan(Some(Arc::new(plan)))
            .with_tile_deadline(Some(std::time::Duration::from_millis(250)));
        let faulted = run_with_mode(&r, &q, &faulted_cfg, &mut sys).unwrap();
        assert_eq!(
            clean.profile, faulted.profile,
            "retried faults must be invisible in the result"
        );
        assert_eq!(faulted.faults_injected, 3);
        assert_eq!(faulted.tile_retries, 3, "one retry per faulted tile");
        assert_eq!(faulted.plane_validation_failures, 1, "the NaN poison");
    }

    #[test]
    fn exhausted_retries_yield_typed_error_not_partial_profile() {
        use mdmp_faults::{FaultKind, FaultPlan};
        let (r, q) = small_pair(160, 2, 12);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let plan = FaultPlan::new().with_fault(2, FaultKind::Kernel).always();
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp64)
            .with_tiles(4)
            .with_fault_plan(Some(Arc::new(plan)))
            .with_tile_retries(1);
        let err = run_with_mode(&r, &q, &cfg, &mut sys).unwrap_err();
        match err {
            MdmpError::TileFailed {
                tile,
                attempts,
                source,
            } => {
                assert_eq!(tile, 2);
                assert_eq!(attempts, 2);
                assert_eq!(source, crate::config::TileError::Kernel { tile: 2 });
            }
            other => panic!("expected TileFailed, got {other:?}"),
        }
    }

    #[test]
    fn stalled_kernel_times_out_and_retry_succeeds() {
        use mdmp_faults::{FaultKind, FaultPlan};
        let (r, q) = small_pair(128, 2, 8);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let plan = FaultPlan::new().with_fault(0, FaultKind::Stall { millis: 600 });
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp32)
            .with_tiles(2)
            .with_fault_plan(Some(Arc::new(plan)))
            .with_tile_deadline(Some(std::time::Duration::from_millis(250)));
        let run = run_with_mode(&r, &q, &cfg, &mut sys).unwrap();
        assert_eq!(run.tile_retries, 1);
        // And with the deadline disabled the stall is merely slow, not fatal.
        let plan = FaultPlan::new().with_fault(0, FaultKind::Stall { millis: 5 });
        let lax = MdmpConfig::new(8, PrecisionMode::Fp32)
            .with_tiles(2)
            .with_fault_plan(Some(Arc::new(plan)));
        let slow = run_with_mode(&r, &q, &lax, &mut sys).unwrap();
        assert_eq!(slow.tile_retries, 0);
        assert_eq!(run.profile, slow.profile);
    }

    #[test]
    fn repeated_failures_quarantine_device_but_run_degrades_gracefully() {
        use mdmp_faults::{FaultKind, FaultPlan};
        let (r, q) = small_pair(240, 2, 16);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 2);
        let cfg = MdmpConfig::new(16, PrecisionMode::Fp64).with_tiles(8);
        let clean = run_with_mode(&r, &q, &cfg, &mut sys).unwrap();
        // Round-robin puts even tiles on device 0; fail three of them.
        let plan = FaultPlan::new()
            .with_fault(0, FaultKind::Kernel)
            .with_fault(2, FaultKind::Kernel)
            .with_fault(4, FaultKind::Kernel);
        let chaotic_cfg = cfg
            .clone()
            .with_fault_plan(Some(Arc::new(plan)))
            .with_quarantine_threshold(3);
        let run = run_with_mode(&r, &q, &chaotic_cfg, &mut sys).unwrap();
        assert_eq!(run.quarantined_devices, vec![0]);
        assert_eq!(
            clean.profile, run.profile,
            "degraded run still produces the full, correct profile"
        );
    }

    #[test]
    fn dead_worker_surfaces_tiles_missing_instead_of_partial_result() {
        struct PanickyStore;
        impl PrecalcStore for PanickyStore {
            fn lookup(&self, tile_index: usize) -> Option<Arc<crate::tile_exec::TilePrecalc>> {
                assert!(tile_index != 1, "injected worker death on tile 1");
                None
            }
            fn store(&self, _: usize, _: &Arc<crate::tile_exec::TilePrecalc>) {}
        }
        let (r, q) = small_pair(160, 2, 12);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp64)
            .with_tiles(4)
            .with_host_workers(2);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 2);
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the injected panic quiet
        let err = run_with_mode_cached(&r, &q, &cfg, &mut sys, Some(&PanickyStore)).unwrap_err();
        std::panic::set_hook(prev_hook);
        match err {
            MdmpError::TilesMissing { merged, expected } => {
                assert!(merged < expected, "{merged} vs {expected}");
                assert_eq!(expected, 4);
            }
            other => panic!("expected TilesMissing, got {other:?}"),
        }
    }

    #[test]
    fn retry_backoff_is_capped_exponential() {
        use std::time::Duration;
        let base = Duration::from_millis(1);
        let cap = Duration::from_millis(50);
        assert_eq!(retry_backoff(base, cap, 0), Duration::from_millis(1));
        assert_eq!(retry_backoff(base, cap, 1), Duration::from_millis(2));
        assert_eq!(retry_backoff(base, cap, 5), Duration::from_millis(32));
        assert_eq!(retry_backoff(base, cap, 6), cap);
        assert_eq!(retry_backoff(base, cap, 63), cap);
    }

    #[test]
    fn merge_model_scales_with_tiles() {
        let tiles_few = compute_tile_list(1000, 1000, 4).unwrap();
        let tiles_many = compute_tile_list(1000, 1000, 400).unwrap();
        let (t_few, _) = merge_model(&tiles_few, 16, Format::Fp64);
        let (t_many, _) = merge_model(&tiles_many, 16, Format::Fp64);
        assert!(t_many > t_few);
    }
}

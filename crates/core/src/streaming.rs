//! Online (streaming) matrix profile maintenance — incremental updates as
//! new samples arrive, in the spirit of STAMPI (Yeh et al. [22] §VII),
//! built on the tile machinery:
//!
//! * appending **query** samples adds new profile columns: one delta tile
//!   covering all reference rows × the new columns;
//! * appending **reference** samples can improve *every* column: one delta
//!   tile covering the new rows × all columns, min-merged into the running
//!   profile.
//!
//! Because a delta tile is a standalone tile (own precalculation), the
//! streamed result in FP64 is exactly the batch result; in reduced
//! precision it corresponds to a batch run whose tile boundaries follow the
//! arrival pattern — the error-bounding property of §III-B for free.
//!
//! Note: appends *extend* the series; samples within `m − 1` of the old end
//! create segments spanning old and new data, which the delta tiles cover
//! by re-reading the last `m − 1` old samples.

use crate::config::{MdmpConfig, MdmpError};
use crate::profile::MatrixProfile;
use crate::tile_exec::execute_tile;
use crate::tiling::Tile;
use mdmp_data::MultiDimSeries;
use mdmp_precision::{Bf16, Fp8E4M3, Fp8E5M2, Half, PrecisionMode, Tf32};

/// An incrementally maintained matrix profile over growing series.
///
/// ```
/// use mdmp_core::{MdmpConfig, StreamingProfile};
/// use mdmp_data::MultiDimSeries;
/// use mdmp_precision::PrecisionMode;
///
/// let wave = |off: usize, n: usize| -> Vec<f64> {
///     (0..n).map(|t| ((t + off) as f64 * 0.3).sin() + 0.01 * t as f64).collect()
/// };
/// let reference = MultiDimSeries::univariate(wave(0, 128));
/// let query = MultiDimSeries::univariate(wave(40, 64));
/// let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
/// let mut sp = StreamingProfile::new(reference, query, cfg).unwrap();
/// let before = sp.n_query();
/// sp.append_query(&[wave(104, 16)]);
/// assert_eq!(sp.n_query(), before + 16);
/// assert!(sp.profile().value(0, 0).is_finite());
/// ```
#[derive(Debug)]
pub struct StreamingProfile {
    cfg: MdmpConfig,
    reference: MultiDimSeries,
    query: MultiDimSeries,
    profile: MatrixProfile,
}

impl StreamingProfile {
    /// Start from initial series (computed as one batch tile).
    ///
    /// The configuration's `n_tiles` is ignored — streaming defines its own
    /// tiling by arrival order.
    pub fn new(
        reference: MultiDimSeries,
        query: MultiDimSeries,
        cfg: MdmpConfig,
    ) -> Result<StreamingProfile, MdmpError> {
        if reference.dims() != query.dims() {
            return Err(MdmpError::DimensionalityMismatch {
                reference: reference.dims(),
                query: query.dims(),
            });
        }
        if reference.len() < cfg.m || query.len() < cfg.m {
            return Err(MdmpError::BadConfig(
                "series shorter than the segment length".into(),
            ));
        }
        let n_r = reference.n_segments(cfg.m);
        let n_q = query.n_segments(cfg.m);
        let mut sp = StreamingProfile {
            profile: MatrixProfile::new_unset(n_q, reference.dims()),
            cfg,
            reference,
            query,
        };
        let tile = Tile {
            index: 0,
            row0: 0,
            rows: n_r,
            col0: 0,
            cols: n_q,
        };
        let out = sp.run_tile(&tile);
        sp.profile.merge_min_columns(&out, 0);
        Ok(sp)
    }

    /// The current profile.
    pub fn profile(&self) -> &MatrixProfile {
        &self.profile
    }

    /// Current number of query segments.
    pub fn n_query(&self) -> usize {
        self.query.n_segments(self.cfg.m)
    }

    /// Current number of reference segments.
    pub fn n_reference(&self) -> usize {
        self.reference.n_segments(self.cfg.m)
    }

    /// Append samples to the query (one slice per dimension) and extend the
    /// profile with the new columns.
    ///
    /// # Panics
    /// Panics if `new_samples` does not have one equally-long slice per
    /// dimension.
    pub fn append_query(&mut self, new_samples: &[Vec<f64>]) {
        let old_n_q = self.n_query();
        self.query = append_series(&self.query, new_samples);
        let n_q = self.n_query();
        if n_q == old_n_q {
            return;
        }
        // Grow the profile: new columns start unset.
        let mut grown = MatrixProfile::new_unset(n_q, self.query.dims());
        grown.merge_min_columns(&self.profile, 0);
        self.profile = grown;
        let tile = Tile {
            index: 0,
            row0: 0,
            rows: self.n_reference(),
            col0: old_n_q,
            cols: n_q - old_n_q,
        };
        let out = self.run_tile(&tile);
        self.profile.merge_min_columns(&out, old_n_q);
    }

    /// Append samples to the reference and fold the new rows into every
    /// column of the profile.
    pub fn append_reference(&mut self, new_samples: &[Vec<f64>]) {
        let old_n_r = self.n_reference();
        self.reference = append_series(&self.reference, new_samples);
        let n_r = self.n_reference();
        if n_r == old_n_r {
            return;
        }
        let tile = Tile {
            index: 0,
            row0: old_n_r,
            rows: n_r - old_n_r,
            col0: 0,
            cols: self.n_query(),
        };
        let out = self.run_tile(&tile);
        self.profile.merge_min_columns(&out, 0);
    }

    fn run_tile(&self, tile: &Tile) -> MatrixProfile {
        let kahan = self.cfg.mode.compensated_precalc();
        macro_rules! run {
            ($p:ty, $m:ty) => {
                execute_tile::<$p, $m>(&self.reference, &self.query, tile, &self.cfg, kahan).profile
            };
        }
        match self.cfg.mode {
            PrecisionMode::Fp64 => run!(f64, f64),
            PrecisionMode::Fp32 => run!(f32, f32),
            PrecisionMode::Fp16 => run!(Half, Half),
            PrecisionMode::Mixed => run!(f32, Half),
            PrecisionMode::Fp16c => run!(Half, Half),
            PrecisionMode::Bf16 => run!(Bf16, Bf16),
            PrecisionMode::Tf32 => run!(Tf32, Tf32),
            PrecisionMode::Fp8E4M3 => run!(f32, Fp8E4M3),
            PrecisionMode::Fp8E5M2 => run!(f32, Fp8E5M2),
            PrecisionMode::Fp16Tc | PrecisionMode::Bf16Tc | PrecisionMode::Tf32Tc => {
                run!(f32, f32)
            }
        }
    }
}

fn append_series(series: &MultiDimSeries, new_samples: &[Vec<f64>]) -> MultiDimSeries {
    assert_eq!(
        new_samples.len(),
        series.dims(),
        "append needs one slice per dimension"
    );
    let add = new_samples[0].len();
    assert!(
        new_samples.iter().all(|s| s.len() == add),
        "appended slices must have equal lengths"
    );
    let mut dims = Vec::with_capacity(series.dims());
    for (k, extra) in new_samples.iter().enumerate() {
        let mut v = series.dim(k).to_vec();
        v.extend_from_slice(extra);
        dims.push(v);
    }
    MultiDimSeries::from_dims(dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_with_mode;
    use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
    use mdmp_gpu_sim::{DeviceSpec, GpuSystem};

    fn series_pair(n: usize) -> (MultiDimSeries, MultiDimSeries) {
        let pair = generate_pair(&SyntheticConfig {
            n_subsequences: n,
            dims: 2,
            m: 12,
            pattern: Pattern::Sine,
            embeddings: 2,
            noise: 0.3,
            pattern_amplitude: 1.0,
            seed: 31,
        });
        (pair.reference, pair.query)
    }

    fn split_tail(series: &MultiDimSeries, tail: usize) -> (MultiDimSeries, Vec<Vec<f64>>) {
        let keep = series.len() - tail;
        let head = series.window(0, keep);
        let tail_slices: Vec<Vec<f64>> = (0..series.dims())
            .map(|k| series.dim(k)[keep..].to_vec())
            .collect();
        (head, tail_slices)
    }

    fn batch_fp64(r: &MultiDimSeries, q: &MultiDimSeries, m: usize) -> MatrixProfile {
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        run_with_mode(r, q, &MdmpConfig::new(m, PrecisionMode::Fp64), &mut sys)
            .unwrap()
            .profile
    }

    #[test]
    fn streamed_query_appends_match_batch_fp64() {
        let (r, q) = series_pair(200);
        let (q_head, q_tail) = split_tail(&q, 60);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp64);
        let mut sp = StreamingProfile::new(r.clone(), q_head, cfg).unwrap();
        // Stream the tail in three chunks.
        for chunk in q_tail_chunks(&q_tail, 3) {
            sp.append_query(&chunk);
        }
        let expected = batch_fp64(&r, &q, 12);
        assert_profiles_close(sp.profile(), &expected);
    }

    #[test]
    fn streamed_reference_appends_match_batch_fp64() {
        let (r, q) = series_pair(180);
        let (r_head, r_tail) = split_tail(&r, 50);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp64);
        let mut sp = StreamingProfile::new(r_head, q.clone(), cfg).unwrap();
        for chunk in q_tail_chunks(&r_tail, 2) {
            sp.append_reference(&chunk);
        }
        let expected = batch_fp64(&r, &q, 12);
        assert_profiles_close(sp.profile(), &expected);
    }

    #[test]
    fn interleaved_appends_match_batch() {
        let (r, q) = series_pair(160);
        let (r_head, r_tail) = split_tail(&r, 40);
        let (q_head, q_tail) = split_tail(&q, 40);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp64);
        let mut sp = StreamingProfile::new(r_head, q_head, cfg).unwrap();
        sp.append_query(&q_tail_chunks(&q_tail, 2)[0]);
        sp.append_reference(&q_tail_chunks(&r_tail, 2)[0]);
        sp.append_query(&q_tail_chunks(&q_tail, 2)[1]);
        sp.append_reference(&q_tail_chunks(&r_tail, 2)[1]);
        let expected = batch_fp64(&r, &q, 12);
        assert_profiles_close(sp.profile(), &expected);
    }

    #[test]
    fn tiny_append_below_segment_length_still_extends() {
        let (r, q) = series_pair(100);
        let (q_head, q_tail) = split_tail(&q, 5);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp64);
        let mut sp = StreamingProfile::new(r.clone(), q_head, cfg).unwrap();
        let before = sp.n_query();
        sp.append_query(&q_tail);
        assert_eq!(sp.n_query(), before + 5);
        let expected = batch_fp64(&r, &q, 12);
        assert_profiles_close(sp.profile(), &expected);
    }

    #[test]
    fn reduced_precision_streaming_runs() {
        let (r, q) = series_pair(150);
        let (q_head, q_tail) = split_tail(&q, 30);
        let cfg = MdmpConfig::new(12, PrecisionMode::Mixed);
        let mut sp = StreamingProfile::new(r, q_head, cfg).unwrap();
        sp.append_query(&q_tail);
        assert!(sp.profile().unset_fraction() < 0.01);
    }

    fn q_tail_chunks(tail: &[Vec<f64>], parts: usize) -> Vec<Vec<Vec<f64>>> {
        let len = tail[0].len();
        let base = len / parts;
        let mut out = Vec::new();
        let mut start = 0;
        for p in 0..parts {
            let end = if p == parts - 1 { len } else { start + base };
            out.push(tail.iter().map(|d| d[start..end].to_vec()).collect());
            start = end;
        }
        out
    }

    fn assert_profiles_close(got: &MatrixProfile, expected: &MatrixProfile) {
        assert_eq!(got.n_query(), expected.n_query());
        for k in 0..expected.dims() {
            for j in 0..expected.n_query() {
                assert!(
                    (got.value(j, k) - expected.value(j, k)).abs() < 1e-7,
                    "P[{j}][{k}]: {} vs {}",
                    got.value(j, k),
                    expected.value(j, k)
                );
                assert_eq!(got.index(j, k), expected.index(j, k), "I[{j}][{k}]");
            }
        }
    }
}

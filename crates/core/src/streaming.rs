//! Online (streaming) matrix profile maintenance — incremental updates as
//! new samples arrive, in the spirit of STAMPI (Yeh et al. [22] §VII),
//! built on the tile machinery:
//!
//! * appending **query** samples adds new profile columns: one delta tile
//!   covering all reference rows × the new columns;
//! * appending **reference** samples can improve *every* column: one delta
//!   tile covering the new rows × all columns, min-merged into the running
//!   profile.
//!
//! Because a delta tile is a standalone tile (own precalculation), the
//! streamed result in FP64 is exactly the batch result; in reduced
//! precision it corresponds to a batch run whose tile boundaries follow the
//! arrival pattern — the error-bounding property of §III-B for free.
//!
//! # Incremental appends
//!
//! A delta tile shares one side with everything computed before: a query
//! append's rows are the *full reference side*, a reference append's
//! columns are the *full query side*. The session therefore caches each
//! side's rolling statistics (the cacheable [`TilePrecalc`] unit of
//! `tile_exec`) together with the running-sum accumulator checkpoint, and
//! an append:
//!
//! 1. **reuses** the cached full-side statistics for the shared side —
//!    zero recompute for O(n) segments;
//! 2. **extends** the grown side's cache forward over only the appended
//!    suffix plus the `m − 1` boundary band ([`extend_stats`]) — O(new);
//! 3. computes **fresh** statistics for the delta window of the grown side
//!    (O(new)) and the initial QT row/column of the delta tile. The QT
//!    column is O(n·m·d) and cannot be extended incrementally (it is a dot
//!    product against the *new* window's first segment), so large delta
//!    tiles route it through a host worker pool
//!    ([`initial_qt_pooled`]), which is bit-identical by construction.
//!
//! Both reuse and extension are bit-identical to the recompute-from-scratch
//! delta append: the rolling statistics are a pure left-to-right fold, so
//! resuming the fold from a checkpoint emits exactly the bits a recompute's
//! suffix would (see `extend_stats`), and `Stats<f64>` round-trips every
//! supported precision exactly. The property suite in
//! `tests/streaming_equivalence.rs` enforces this in every precision mode.
//!
//! Note: appends *extend* the series; samples within `m − 1` of the old end
//! create segments spanning old and new data, which the delta tiles cover
//! by re-reading the last `m − 1` old samples.

use crate::config::{MdmpConfig, MdmpError, TileError};
use crate::driver::retry_backoff;
use crate::precalc::{
    compute_stats, compute_stats_checkpointed, convert_qt, extend_stats, initial_qt_pooled,
    SeriesDevice, Stats, StatsCheckpoint,
};
use crate::profile::MatrixProfile;
use crate::tile_exec::{
    apply_plane_fault, compute_tile_precalc, execute_tile_from_precalc, max_profile_value,
    validate_profile_plane, TilePrecalc,
};
use crate::tiling::Tile;
use mdmp_data::MultiDimSeries;
use mdmp_faults::FaultKind;
use mdmp_precision::{Bf16, Fp8E4M3, Fp8E5M2, Half, PrecisionMode, Real, Tf32};
use std::time::{Duration, Instant};

/// Route a delta tile's initial-QT computation through the host worker pool
/// once it costs at least this many dot-product operations
/// (`d · (rows + cols) · m`); below that, thread spawn overhead dominates.
const STREAM_POOL_MIN_DOT_OPS: usize = 1 << 14;

/// Dispatch `$run!(P, M)` for a precision mode's (precalc, main-loop) type
/// pair — the mode table of `tile_exec` (tensor-core modes run their vector
/// reference arithmetic in FP32; the GEMM rounding happens per operand
/// inside the MMA unit).
macro_rules! dispatch_mode {
    ($mode:expr, $run:ident) => {
        match $mode {
            PrecisionMode::Fp64 => $run!(f64, f64),
            PrecisionMode::Fp32 => $run!(f32, f32),
            PrecisionMode::Fp16 => $run!(Half, Half),
            PrecisionMode::Mixed => $run!(f32, Half),
            PrecisionMode::Fp16c => $run!(Half, Half),
            PrecisionMode::Bf16 => $run!(Bf16, Bf16),
            PrecisionMode::Tf32 => $run!(Tf32, Tf32),
            PrecisionMode::Fp8E4M3 => $run!(f32, Fp8E4M3),
            PrecisionMode::Fp8E5M2 => $run!(f32, Fp8E5M2),
            PrecisionMode::Fp16Tc | PrecisionMode::Bf16Tc | PrecisionMode::Tf32Tc => {
                $run!(f32, f32)
            }
        }
    };
}

/// One side's cached precalculation state: full-side rolling statistics
/// (exact f64 image of the precalc precision) plus the accumulator
/// checkpoint that lets [`extend_stats`] continue the fold in O(new).
#[derive(Debug, Clone)]
struct SideCache {
    stats: Stats<f64>,
    ckpt: StatsCheckpoint,
    len: usize,
}

/// Counters a [`StreamingProfile`] keeps about its own append work — the
/// source of the service's streaming metrics and the bench's reuse ratios.
#[derive(Debug, Default, Clone, Copy)]
pub struct StreamingStats {
    /// Appends applied (each is one delta tile).
    pub appends: u64,
    /// Appends that reused a cached full-side statistics unit.
    pub incremental_appends: u64,
    /// Statistics segments served from a side cache instead of recomputed.
    pub segments_reused: u64,
    /// Segments added to side caches by the O(new) checkpoint extension.
    pub segments_extended: u64,
    /// Segments computed from scratch (delta windows, or everything in
    /// scratch mode).
    pub segments_fresh: u64,
    /// Tiles whose initial-QT computation ran on the host worker pool.
    pub pooled_qt_tiles: u64,
    /// Tile attempts that failed and were retried (fault injection or
    /// validation-gate rejections).
    pub tile_retries: u64,
    /// Wall seconds of the most recent append.
    pub last_append_seconds: f64,
    /// Wall seconds of all appends, for amortized-cost reporting.
    pub total_append_seconds: f64,
}

/// An incrementally maintained matrix profile over growing series.
///
/// ```
/// use mdmp_core::{MdmpConfig, StreamingProfile};
/// use mdmp_data::MultiDimSeries;
/// use mdmp_precision::PrecisionMode;
///
/// let wave = |off: usize, n: usize| -> Vec<f64> {
///     (0..n).map(|t| ((t + off) as f64 * 0.3).sin() + 0.01 * t as f64).collect()
/// };
/// let reference = MultiDimSeries::univariate(wave(0, 128));
/// let query = MultiDimSeries::univariate(wave(40, 64));
/// let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
/// let mut sp = StreamingProfile::new(reference, query, cfg).unwrap();
/// let before = sp.n_query();
/// sp.append_query(&[wave(104, 16)]).unwrap();
/// assert_eq!(sp.n_query(), before + 16);
/// assert!(sp.profile().value(0, 0).is_finite());
/// assert!(sp.stats().segments_reused > 0);
/// ```
#[derive(Debug)]
pub struct StreamingProfile {
    cfg: MdmpConfig,
    reference: MultiDimSeries,
    query: MultiDimSeries,
    profile: MatrixProfile,
    incremental: bool,
    ref_cache: Option<SideCache>,
    query_cache: Option<SideCache>,
    tiles: Vec<Tile>,
    stats: StreamingStats,
}

impl StreamingProfile {
    /// Start from initial series (computed as one batch tile) with
    /// incremental appends enabled.
    ///
    /// The configuration's `n_tiles` is ignored — streaming defines its own
    /// tiling by arrival order.
    pub fn new(
        reference: MultiDimSeries,
        query: MultiDimSeries,
        cfg: MdmpConfig,
    ) -> Result<StreamingProfile, MdmpError> {
        StreamingProfile::build(reference, query, cfg, true)
    }

    /// [`StreamingProfile::new`] with incremental side caches disabled:
    /// every append recomputes its delta tile's precalculation from
    /// scratch. This is the pre-incremental behaviour, kept as the
    /// bit-identity baseline for the equivalence suite and the
    /// `session_multiplex` bench.
    pub fn new_scratch(
        reference: MultiDimSeries,
        query: MultiDimSeries,
        cfg: MdmpConfig,
    ) -> Result<StreamingProfile, MdmpError> {
        StreamingProfile::build(reference, query, cfg, false)
    }

    fn build(
        reference: MultiDimSeries,
        query: MultiDimSeries,
        cfg: MdmpConfig,
        incremental: bool,
    ) -> Result<StreamingProfile, MdmpError> {
        if reference.dims() != query.dims() {
            return Err(MdmpError::DimensionalityMismatch {
                reference: reference.dims(),
                query: query.dims(),
            });
        }
        if cfg.m < 2 {
            return Err(MdmpError::BadConfig(
                "segment length must be at least 2".into(),
            ));
        }
        if reference.len() < cfg.m || query.len() < cfg.m {
            return Err(MdmpError::BadConfig(
                "series shorter than the segment length".into(),
            ));
        }
        let n_r = reference.len() - cfg.m + 1;
        let n_q = query.len() - cfg.m + 1;
        let dims = reference.dims();
        let mut sp = StreamingProfile {
            profile: MatrixProfile::new_unset(n_q, dims),
            cfg,
            reference,
            query,
            incremental,
            ref_cache: None,
            query_cache: None,
            tiles: Vec::new(),
            stats: StreamingStats::default(),
        };
        let tile = Tile {
            index: 0,
            row0: 0,
            rows: n_r,
            col0: 0,
            cols: n_q,
        };
        let mode = sp.cfg.mode;
        macro_rules! run {
            ($p:ty, $m:ty) => {
                sp.initial_generic::<$p, $m>(&tile)
            };
        }
        let out = dispatch_mode!(mode, run)?;
        sp.profile.merge_min_columns(&out, 0);
        sp.tiles.push(tile);
        sp.stats.segments_fresh += (n_r + n_q) as u64;
        Ok(sp)
    }

    /// The current profile.
    pub fn profile(&self) -> &MatrixProfile {
        &self.profile
    }

    /// Current number of query segments.
    pub fn n_query(&self) -> usize {
        self.query.n_segments(self.cfg.m)
    }

    /// Current number of reference segments.
    pub fn n_reference(&self) -> usize {
        self.reference.n_segments(self.cfg.m)
    }

    /// Whether appends reuse cached side statistics.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// The session's append accounting.
    pub fn stats(&self) -> StreamingStats {
        self.stats
    }

    /// The arrival-pattern tile log: the initial batch tile followed by one
    /// delta tile per applied append, in execution order. Replaying these
    /// tiles over the final series (see [`StreamingProfile::replay_tile`])
    /// and min-merging in order reproduces the streamed profile
    /// bit-for-bit.
    pub fn arrival_tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Execute one arrival tile as a batch run would — inline scratch
    /// precalculation, no caches, no fault plan — and return its partial
    /// profile. This is the reference the equivalence suite replays the
    /// tile log against.
    pub fn replay_tile(
        reference: &MultiDimSeries,
        query: &MultiDimSeries,
        tile: &Tile,
        cfg: &MdmpConfig,
    ) -> MatrixProfile {
        let kahan = cfg.mode.compensated_precalc();
        macro_rules! run {
            ($p:ty, $m:ty) => {{
                let pre = compute_tile_precalc::<$p>(reference, query, tile, cfg, kahan);
                execute_tile_from_precalc::<$m>(&pre, tile, cfg, kahan, false).profile
            }};
        }
        dispatch_mode!(cfg.mode, run)
    }

    /// Append samples to the query (one slice per dimension) and extend the
    /// profile with the new columns.
    ///
    /// Returns a typed error when the samples do not match the session
    /// shape (wrong number of dimension slices, unequal slice lengths, or
    /// an empty append) or when the delta tile keeps failing under an
    /// injected fault plan; the profile and series are left unchanged on
    /// error.
    pub fn append_query(&mut self, new_samples: &[Vec<f64>]) -> Result<(), MdmpError> {
        let started = Instant::now();
        let old_n_q = self.n_query();
        let old_len = self.query.len();
        self.query = append_series(&self.query, new_samples)?;
        let n_q = self.n_query();
        let tile = Tile {
            index: self.tiles.len(),
            row0: 0,
            rows: self.n_reference(),
            col0: old_n_q,
            cols: n_q - old_n_q,
        };
        let mode = self.cfg.mode;
        macro_rules! run {
            ($p:ty, $m:ty) => {
                self.append_query_generic::<$p, $m>(&tile, old_len)
            };
        }
        match dispatch_mode!(mode, run) {
            Ok(out) => {
                let mut grown = MatrixProfile::new_unset(n_q, self.query.dims());
                grown.merge_min_columns(&self.profile, 0);
                grown.merge_min_columns(&out, old_n_q);
                self.profile = grown;
                self.tiles.push(tile);
                self.finish_append(started);
                Ok(())
            }
            Err(e) => {
                self.query = self.query.window(0, old_len);
                Err(e)
            }
        }
    }

    /// Append samples to the reference and fold the new rows into every
    /// column of the profile. Error behaviour matches
    /// [`StreamingProfile::append_query`].
    pub fn append_reference(&mut self, new_samples: &[Vec<f64>]) -> Result<(), MdmpError> {
        let started = Instant::now();
        let old_n_r = self.n_reference();
        let old_len = self.reference.len();
        self.reference = append_series(&self.reference, new_samples)?;
        let tile = Tile {
            index: self.tiles.len(),
            row0: old_n_r,
            rows: self.n_reference() - old_n_r,
            col0: 0,
            cols: self.n_query(),
        };
        let mode = self.cfg.mode;
        macro_rules! run {
            ($p:ty, $m:ty) => {
                self.append_reference_generic::<$p, $m>(&tile, old_len)
            };
        }
        match dispatch_mode!(mode, run) {
            Ok(out) => {
                self.profile.merge_min_columns(&out, 0);
                self.tiles.push(tile);
                self.finish_append(started);
                Ok(())
            }
            Err(e) => {
                self.reference = self.reference.window(0, old_len);
                Err(e)
            }
        }
    }

    fn finish_append(&mut self, started: Instant) {
        let seconds = started.elapsed().as_secs_f64();
        self.stats.appends += 1;
        self.stats.last_append_seconds = seconds;
        self.stats.total_append_seconds += seconds;
    }

    /// Worker count for a delta tile's initial-QT computation: the
    /// configured host pool width when the tile is large enough to amortize
    /// thread spawns, 1 (sequential) otherwise.
    fn qt_workers(&mut self, rows: usize, cols: usize) -> usize {
        let workers = self.cfg.resolved_host_workers(1);
        let dot_ops = self
            .reference
            .dims()
            .saturating_mul(rows + cols)
            .saturating_mul(self.cfg.m);
        if workers > 1 && dot_ops >= STREAM_POOL_MIN_DOT_OPS {
            self.stats.pooled_qt_tiles += 1;
            workers
        } else {
            1
        }
    }

    /// Initial batch tile: in incremental mode compute both side caches and
    /// assemble the precalc from them; in scratch mode run the canonical
    /// inline path.
    fn initial_generic<P: Real, M: Real>(
        &mut self,
        tile: &Tile,
    ) -> Result<MatrixProfile, MdmpError> {
        let m = self.cfg.m;
        let kahan = self.cfg.mode.compensated_precalc();
        let pre = if self.incremental {
            let refd = SeriesDevice::<P>::load(&self.reference, 0, self.reference.len());
            let qd = SeriesDevice::<P>::load(&self.query, 0, self.query.len());
            let (rstats_p, r_ckpt) = compute_stats_checkpointed(&refd, m, kahan);
            let (qstats_p, q_ckpt) = compute_stats_checkpointed(&qd, m, kahan);
            let workers = self.qt_workers(tile.rows, tile.cols);
            let (row0, col0) =
                initial_qt_pooled(&refd, &rstats_p, &qd, &qstats_p, m, kahan, workers);
            let pre = TilePrecalc {
                rstats: rstats_p.convert(),
                qstats: qstats_p.convert(),
                qt_row0: convert_qt(&row0),
                qt_col0: convert_qt(&col0),
            };
            self.ref_cache = Some(SideCache {
                stats: pre.rstats.clone(),
                ckpt: r_ckpt,
                len: self.reference.len(),
            });
            self.query_cache = Some(SideCache {
                stats: pre.qstats.clone(),
                ckpt: q_ckpt,
                len: self.query.len(),
            });
            pre
        } else {
            compute_tile_precalc::<P>(&self.reference, &self.query, tile, &self.cfg, kahan)
        };
        self.run_precalc_tile::<M>(&pre, tile)
    }

    /// Delta tile for a query append: rows are the full reference side
    /// (statistics reused from the cache), columns are the appended delta
    /// window (fresh O(new) statistics); the query cache is extended by the
    /// checkpoint fold.
    fn append_query_generic<P: Real, M: Real>(
        &mut self,
        tile: &Tile,
        old_query_len: usize,
    ) -> Result<MatrixProfile, MdmpError> {
        let m = self.cfg.m;
        let kahan = self.cfg.mode.compensated_precalc();
        let pre = match (self.incremental, self.ref_cache.as_ref()) {
            (true, Some(cache)) => {
                let refd = SeriesDevice::<P>::load(&self.reference, 0, tile.rows + m - 1);
                let qd = SeriesDevice::<P>::load(&self.query, tile.col0, tile.cols + m - 1);
                let qstats_p = compute_stats(&qd, m, kahan);
                // Exact f64 → P round-trip: the cached f64 values are
                // images of P values, so this reconstructs the inline
                // statistics bit-for-bit.
                let rstats_p: Stats<P> = cache.stats.convert();
                let rstats = cache.stats.clone();
                let workers = self.qt_workers(tile.rows, tile.cols);
                let (row0, col0) =
                    initial_qt_pooled(&refd, &rstats_p, &qd, &qstats_p, m, kahan, workers);
                self.stats.incremental_appends += 1;
                self.stats.segments_reused += tile.rows as u64;
                self.stats.segments_fresh += tile.cols as u64;
                TilePrecalc {
                    rstats,
                    qstats: qstats_p.convert(),
                    qt_row0: convert_qt(&row0),
                    qt_col0: convert_qt(&col0),
                }
            }
            _ => {
                self.stats.segments_fresh += (tile.rows + tile.cols) as u64;
                compute_tile_precalc::<P>(&self.reference, &self.query, tile, &self.cfg, kahan)
            }
        };
        let out = self.run_precalc_tile::<M>(&pre, tile)?;
        self.extend_cache::<P>(Side::Query, old_query_len);
        Ok(out)
    }

    /// Delta tile for a reference append: columns are the full query side
    /// (statistics reused), rows are the appended delta window (fresh);
    /// the reference cache is extended by the checkpoint fold.
    fn append_reference_generic<P: Real, M: Real>(
        &mut self,
        tile: &Tile,
        old_reference_len: usize,
    ) -> Result<MatrixProfile, MdmpError> {
        let m = self.cfg.m;
        let kahan = self.cfg.mode.compensated_precalc();
        let pre = match (self.incremental, self.query_cache.as_ref()) {
            (true, Some(cache)) => {
                let refd = SeriesDevice::<P>::load(&self.reference, tile.row0, tile.rows + m - 1);
                let qd = SeriesDevice::<P>::load(&self.query, 0, tile.cols + m - 1);
                let rstats_p = compute_stats(&refd, m, kahan);
                let qstats_p: Stats<P> = cache.stats.convert();
                let qstats = cache.stats.clone();
                let workers = self.qt_workers(tile.rows, tile.cols);
                let (row0, col0) =
                    initial_qt_pooled(&refd, &rstats_p, &qd, &qstats_p, m, kahan, workers);
                self.stats.incremental_appends += 1;
                self.stats.segments_reused += tile.cols as u64;
                self.stats.segments_fresh += tile.rows as u64;
                TilePrecalc {
                    rstats: rstats_p.convert(),
                    qstats,
                    qt_row0: convert_qt(&row0),
                    qt_col0: convert_qt(&col0),
                }
            }
            _ => {
                self.stats.segments_fresh += (tile.rows + tile.cols) as u64;
                compute_tile_precalc::<P>(&self.reference, &self.query, tile, &self.cfg, kahan)
            }
        };
        let out = self.run_precalc_tile::<M>(&pre, tile)?;
        self.extend_cache::<P>(Side::Reference, old_reference_len);
        Ok(out)
    }

    /// Extend one side's cache over the appended suffix — the O(new)
    /// checkpoint fold. Only runs after the delta tile succeeded, so a
    /// failed append leaves the caches describing the rolled-back series.
    fn extend_cache<P: Real>(&mut self, side: Side, old_len: usize) {
        let (series, cache) = match side {
            Side::Query => (&self.query, self.query_cache.as_mut()),
            Side::Reference => (&self.reference, self.ref_cache.as_mut()),
        };
        if let Some(cache) = cache {
            if series.len() > cache.len && cache.len == old_len {
                let (stats, ckpt) =
                    extend_stats::<P>(series, cache.len, self.cfg.m, &cache.stats, &cache.ckpt);
                self.stats.segments_extended += (stats.n - cache.stats.n) as u64;
                cache.stats = stats;
                cache.ckpt = ckpt;
                cache.len = series.len();
            }
        }
    }

    /// Execute a tile from its precalculation with the driver's resilience
    /// semantics: inject the fault plan's planned fault for this arrival
    /// index, validate the result plane (when clamping is on), and retry
    /// with capped exponential backoff up to `cfg.tile_retries`.
    fn run_precalc_tile<M: Real>(
        &mut self,
        pre: &TilePrecalc,
        tile: &Tile,
    ) -> Result<MatrixProfile, MdmpError> {
        let kahan = self.cfg.mode.compensated_precalc();
        let value_bound = max_profile_value(self.cfg.m);
        let mut attempt: u32 = 0;
        loop {
            let started = Instant::now();
            let fault = self
                .cfg
                .fault_plan
                .as_deref()
                .and_then(|plan| plan.tile_fault(tile.index, attempt));
            let result: Result<MatrixProfile, TileError> = (|| {
                match fault {
                    Some(FaultKind::Kernel) => return Err(TileError::Kernel { tile: tile.index }),
                    Some(FaultKind::Stall { millis }) => {
                        std::thread::sleep(Duration::from_millis(millis))
                    }
                    _ => {}
                }
                let mut out = execute_tile_from_precalc::<M>(pre, tile, &self.cfg, kahan, false);
                if let Some(kind) = fault {
                    apply_plane_fault(&mut out.profile, kind);
                }
                if self.cfg.clamp {
                    if let Err(violation) = validate_profile_plane(&out.profile, value_bound) {
                        return Err(TileError::PoisonedPlane {
                            tile: tile.index,
                            violation,
                        });
                    }
                }
                if let Some(deadline) = self.cfg.tile_deadline {
                    let elapsed = started.elapsed();
                    if elapsed > deadline {
                        return Err(TileError::Timeout {
                            tile: tile.index,
                            elapsed_ms: elapsed.as_millis() as u64,
                            deadline_ms: deadline.as_millis() as u64,
                        });
                    }
                }
                Ok(out.profile)
            })();
            match result {
                Ok(profile) => return Ok(profile),
                Err(source) => {
                    if attempt >= self.cfg.tile_retries {
                        return Err(MdmpError::TileFailed {
                            tile: tile.index,
                            attempts: attempt + 1,
                            source,
                        });
                    }
                    self.stats.tile_retries += 1;
                    std::thread::sleep(retry_backoff(
                        self.cfg.tile_retry_base,
                        self.cfg.tile_retry_cap,
                        attempt,
                    ));
                    attempt += 1;
                }
            }
        }
    }
}

#[derive(Clone, Copy)]
enum Side {
    Query,
    Reference,
}

/// Validate and apply an append: one equally-long, non-empty slice per
/// dimension.
fn append_series(
    series: &MultiDimSeries,
    new_samples: &[Vec<f64>],
) -> Result<MultiDimSeries, MdmpError> {
    if new_samples.len() != series.dims() {
        return Err(MdmpError::BadConfig(format!(
            "append carries {} dimension slices, series has {} dimensions",
            new_samples.len(),
            series.dims()
        )));
    }
    let add = new_samples[0].len();
    if new_samples.iter().any(|s| s.len() != add) {
        return Err(MdmpError::BadConfig(
            "appended slices must have equal lengths".into(),
        ));
    }
    if add == 0 {
        return Err(MdmpError::BadConfig("append carries no samples".into()));
    }
    let mut dims = Vec::with_capacity(series.dims());
    for (k, extra) in new_samples.iter().enumerate() {
        let mut v = series.dim(k).to_vec();
        v.extend_from_slice(extra);
        dims.push(v);
    }
    Ok(MultiDimSeries::from_dims(dims))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_with_mode;
    use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
    use mdmp_faults::FaultPlan;
    use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
    use std::sync::Arc;

    fn series_pair(n: usize) -> (MultiDimSeries, MultiDimSeries) {
        let pair = generate_pair(&SyntheticConfig {
            n_subsequences: n,
            dims: 2,
            m: 12,
            pattern: Pattern::Sine,
            embeddings: 2,
            noise: 0.3,
            pattern_amplitude: 1.0,
            seed: 31,
        });
        (pair.reference, pair.query)
    }

    fn split_tail(series: &MultiDimSeries, tail: usize) -> (MultiDimSeries, Vec<Vec<f64>>) {
        let keep = series.len() - tail;
        let head = series.window(0, keep);
        let tail_slices: Vec<Vec<f64>> = (0..series.dims())
            .map(|k| series.dim(k)[keep..].to_vec())
            .collect();
        (head, tail_slices)
    }

    fn batch_fp64(r: &MultiDimSeries, q: &MultiDimSeries, m: usize) -> MatrixProfile {
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        run_with_mode(r, q, &MdmpConfig::new(m, PrecisionMode::Fp64), &mut sys)
            .unwrap()
            .profile
    }

    #[test]
    fn streamed_query_appends_match_batch_fp64() {
        let (r, q) = series_pair(200);
        let (q_head, q_tail) = split_tail(&q, 60);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp64);
        let mut sp = StreamingProfile::new(r.clone(), q_head, cfg).unwrap();
        // Stream the tail in three chunks.
        for chunk in q_tail_chunks(&q_tail, 3) {
            sp.append_query(&chunk).unwrap();
        }
        let expected = batch_fp64(&r, &q, 12);
        assert_profiles_close(sp.profile(), &expected);
        assert_eq!(sp.arrival_tiles().len(), 4);
        assert_eq!(sp.stats().appends, 3);
        assert_eq!(sp.stats().incremental_appends, 3);
    }

    #[test]
    fn streamed_reference_appends_match_batch_fp64() {
        let (r, q) = series_pair(180);
        let (r_head, r_tail) = split_tail(&r, 50);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp64);
        let mut sp = StreamingProfile::new(r_head, q.clone(), cfg).unwrap();
        for chunk in q_tail_chunks(&r_tail, 2) {
            sp.append_reference(&chunk).unwrap();
        }
        let expected = batch_fp64(&r, &q, 12);
        assert_profiles_close(sp.profile(), &expected);
    }

    #[test]
    fn interleaved_appends_match_batch() {
        let (r, q) = series_pair(160);
        let (r_head, r_tail) = split_tail(&r, 40);
        let (q_head, q_tail) = split_tail(&q, 40);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp64);
        let mut sp = StreamingProfile::new(r_head, q_head, cfg).unwrap();
        sp.append_query(&q_tail_chunks(&q_tail, 2)[0]).unwrap();
        sp.append_reference(&q_tail_chunks(&r_tail, 2)[0]).unwrap();
        sp.append_query(&q_tail_chunks(&q_tail, 2)[1]).unwrap();
        sp.append_reference(&q_tail_chunks(&r_tail, 2)[1]).unwrap();
        let expected = batch_fp64(&r, &q, 12);
        assert_profiles_close(sp.profile(), &expected);
    }

    #[test]
    fn tiny_append_below_segment_length_still_extends() {
        let (r, q) = series_pair(100);
        let (q_head, q_tail) = split_tail(&q, 5);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp64);
        let mut sp = StreamingProfile::new(r.clone(), q_head, cfg).unwrap();
        let before = sp.n_query();
        sp.append_query(&q_tail).unwrap();
        assert_eq!(sp.n_query(), before + 5);
        let expected = batch_fp64(&r, &q, 12);
        assert_profiles_close(sp.profile(), &expected);
    }

    #[test]
    fn reduced_precision_streaming_runs() {
        let (r, q) = series_pair(150);
        let (q_head, q_tail) = split_tail(&q, 30);
        let cfg = MdmpConfig::new(12, PrecisionMode::Mixed);
        let mut sp = StreamingProfile::new(r, q_head, cfg).unwrap();
        sp.append_query(&q_tail).unwrap();
        assert!(sp.profile().unset_fraction() < 0.01);
    }

    #[test]
    fn incremental_appends_match_scratch_bit_for_bit() {
        for mode in [
            PrecisionMode::Fp64,
            PrecisionMode::Fp16,
            PrecisionMode::Fp16c,
            PrecisionMode::Mixed,
            PrecisionMode::Fp16Tc,
        ] {
            let (r, q) = series_pair(140);
            let (r_head, r_tail) = split_tail(&r, 30);
            let (q_head, q_tail) = split_tail(&q, 30);
            let cfg = MdmpConfig::new(12, mode);
            let mut inc =
                StreamingProfile::new(r_head.clone(), q_head.clone(), cfg.clone()).unwrap();
            let mut scr = StreamingProfile::new_scratch(r_head, q_head, cfg).unwrap();
            for sp in [&mut inc, &mut scr] {
                sp.append_query(&q_tail_chunks(&q_tail, 2)[0]).unwrap();
                sp.append_reference(&q_tail_chunks(&r_tail, 3)[0]).unwrap();
                sp.append_query(&q_tail_chunks(&q_tail, 2)[1]).unwrap();
                sp.append_reference(&q_tail_chunks(&r_tail, 3)[1]).unwrap();
                sp.append_reference(&q_tail_chunks(&r_tail, 3)[2]).unwrap();
            }
            assert_profiles_bit_equal(inc.profile(), scr.profile(), &format!("{mode:?}"));
            assert!(inc.stats().segments_reused > 0, "{mode:?}: no reuse");
            assert_eq!(scr.stats().segments_reused, 0);
        }
    }

    #[test]
    fn arrival_tile_replay_reproduces_streamed_profile() {
        let (r, q) = series_pair(150);
        let (r_head, r_tail) = split_tail(&r, 30);
        let (q_head, q_tail) = split_tail(&q, 20);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp16);
        let mut sp = StreamingProfile::new(r_head, q_head, cfg.clone()).unwrap();
        sp.append_query(&q_tail).unwrap();
        sp.append_reference(&r_tail).unwrap();
        let mut replayed = MatrixProfile::new_unset(sp.n_query(), r.dims());
        for tile in sp.arrival_tiles() {
            let part = StreamingProfile::replay_tile(&r, &q, tile, &cfg);
            replayed.merge_min_columns(&part, tile.col0);
        }
        assert_profiles_bit_equal(sp.profile(), &replayed, "replay");
    }

    #[test]
    fn malformed_appends_get_typed_errors_and_leave_state_intact() {
        let (r, q) = series_pair(100);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp64);
        let mut sp = StreamingProfile::new(r, q, cfg).unwrap();
        let before_n = sp.n_query();
        let before_tiles = sp.arrival_tiles().len();
        // Wrong number of dimension slices.
        let err = sp.append_query(&[vec![1.0; 8]]).unwrap_err();
        assert!(matches!(err, MdmpError::BadConfig(_)), "{err}");
        assert!(err.to_string().contains("dimension"), "{err}");
        // Unequal slice lengths.
        let err = sp.append_query(&[vec![1.0; 8], vec![1.0; 7]]).unwrap_err();
        assert!(err.to_string().contains("equal lengths"), "{err}");
        // Empty append.
        let err = sp.append_query(&[vec![], vec![]]).unwrap_err();
        assert!(err.to_string().contains("no samples"), "{err}");
        assert_eq!(sp.n_query(), before_n);
        assert_eq!(sp.arrival_tiles().len(), before_tiles);
    }

    #[test]
    fn recoverable_faulted_append_is_bit_identical_to_fault_free() {
        let (r, q) = series_pair(120);
        let (q_head, q_tail) = split_tail(&q, 25);
        let clean_cfg = MdmpConfig::new(12, PrecisionMode::Fp32);
        // Tile 1 is the first append's delta tile; fault its first attempt
        // only, so one retry recovers.
        let plan = FaultPlan::new()
            .with_fault(1, FaultKind::Kernel)
            .with_fault(2, FaultKind::PoisonNan)
            .with_faulty_attempts(1);
        let faulty_cfg = clean_cfg
            .clone()
            .with_fault_plan(Some(Arc::new(plan)))
            .with_tile_retries(2)
            .with_tile_backoff(Duration::from_millis(1), Duration::from_millis(2));
        let mut clean = StreamingProfile::new(r.clone(), q_head.clone(), clean_cfg).unwrap();
        let mut faulty = StreamingProfile::new(r, q_head, faulty_cfg).unwrap();
        for sp in [&mut clean, &mut faulty] {
            for chunk in q_tail_chunks(&q_tail, 2) {
                sp.append_query(&chunk).unwrap();
            }
        }
        assert!(faulty.stats().tile_retries >= 2, "faults must have fired");
        assert_eq!(clean.stats().tile_retries, 0);
        assert_profiles_bit_equal(clean.profile(), faulty.profile(), "fault recovery");
    }

    #[test]
    fn unrecoverable_fault_fails_typed_and_rolls_back() {
        let (r, q) = series_pair(100);
        let (q_head, q_tail) = split_tail(&q, 10);
        let plan = FaultPlan::new().with_fault(1, FaultKind::Kernel).always();
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp64)
            .with_fault_plan(Some(Arc::new(plan)))
            .with_tile_retries(1)
            .with_tile_backoff(Duration::from_millis(1), Duration::from_millis(1));
        let mut sp = StreamingProfile::new(r, q_head, cfg).unwrap();
        let before_n = sp.n_query();
        let err = sp.append_query(&q_tail).unwrap_err();
        match err {
            MdmpError::TileFailed { tile, attempts, .. } => {
                assert_eq!(tile, 1);
                assert_eq!(attempts, 2);
            }
            other => panic!("expected TileFailed, got {other:?}"),
        }
        // The failed append must leave the session usable at its old shape.
        assert_eq!(sp.n_query(), before_n);
        assert_eq!(sp.arrival_tiles().len(), 1);
    }

    #[test]
    fn large_delta_tiles_route_qt_through_the_pool() {
        let (r, q) = series_pair(700);
        let (q_head, q_tail) = split_tail(&q, 40);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp32).with_host_workers(4);
        let mut pooled = StreamingProfile::new(r.clone(), q_head.clone(), cfg).unwrap();
        pooled.append_query(&q_tail).unwrap();
        assert!(
            pooled.stats().pooled_qt_tiles > 0,
            "a {}-row delta tile must route through the pool",
            pooled.n_reference()
        );
        let seq_cfg = MdmpConfig::new(12, PrecisionMode::Fp32).with_host_workers(1);
        let mut seq = StreamingProfile::new(r, q_head, seq_cfg).unwrap();
        seq.append_query(&q_tail).unwrap();
        assert_eq!(seq.stats().pooled_qt_tiles, 0);
        assert_profiles_bit_equal(pooled.profile(), seq.profile(), "pooled qt");
    }

    fn q_tail_chunks(tail: &[Vec<f64>], parts: usize) -> Vec<Vec<Vec<f64>>> {
        let len = tail[0].len();
        let base = len / parts;
        let mut out = Vec::new();
        let mut start = 0;
        for p in 0..parts {
            let end = if p == parts - 1 { len } else { start + base };
            out.push(tail.iter().map(|d| d[start..end].to_vec()).collect());
            start = end;
        }
        out
    }

    fn assert_profiles_close(got: &MatrixProfile, expected: &MatrixProfile) {
        assert_eq!(got.n_query(), expected.n_query());
        for k in 0..expected.dims() {
            for j in 0..expected.n_query() {
                assert!(
                    (got.value(j, k) - expected.value(j, k)).abs() < 1e-7,
                    "P[{j}][{k}]: {} vs {}",
                    got.value(j, k),
                    expected.value(j, k)
                );
                assert_eq!(got.index(j, k), expected.index(j, k), "I[{j}][{k}]");
            }
        }
    }

    fn assert_profiles_bit_equal(a: &MatrixProfile, b: &MatrixProfile, what: &str) {
        assert_eq!(a.n_query(), b.n_query(), "{what}: shape");
        assert_eq!(a.dims(), b.dims(), "{what}: dims");
        for k in 0..a.dims() {
            for j in 0..a.n_query() {
                assert_eq!(
                    a.value(j, k).to_bits(),
                    b.value(j, k).to_bits(),
                    "{what}: P[{j}][{k}] {} vs {}",
                    a.value(j, k),
                    b.value(j, k)
                );
                assert_eq!(a.index(j, k), b.index(j, k), "{what}: I[{j}][{k}]");
            }
        }
    }
}

//! Paper-scale performance estimation.
//!
//! Functional execution of reduced-precision arithmetic in software costs
//! ~20 native operations per simulated operation, so the paper's largest
//! problem sizes (n = 2¹⁶…2¹⁸) are not tractable to run functionally.
//! This module schedules **exactly the same kernel costs** as the
//! functional driver — same tiling, same Round-robin assignment, same
//! stream overlap, same merge model — without computing any distances,
//! producing the modelled timings used for Fig. 4, 5, 6, 7 and the
//! headline speedups at the paper's full scale.

use crate::config::{MdmpConfig, MdmpError};
use crate::driver::{merge_model, overlap_factor, submit_tile_costs};
use crate::tile_exec::tile_cost_bundle;
use crate::tiling::{assign_tiles_weighted, compute_tile_list};
use mdmp_gpu_sim::{CostLedger, GpuSystem};

/// Modelled timing of a run at arbitrary scale.
#[derive(Debug, Clone)]
pub struct RunEstimate {
    /// Modelled end-to-end seconds (slowest device + merge).
    pub modeled_seconds: f64,
    /// Modelled CPU merge seconds.
    pub merge_seconds: f64,
    /// Per-device makespans.
    pub device_makespans: Vec<f64>,
    /// Per-kernel-class accounting.
    pub ledger: CostLedger,
}

impl RunEstimate {
    /// Parallel efficiency against a reference single-device time.
    pub fn parallel_efficiency(&self, single_device_seconds: f64) -> f64 {
        let p = self.device_makespans.len() as f64;
        single_device_seconds / (p * self.modeled_seconds)
    }
}

/// Estimate the modelled runtime of a matrix-profile computation with
/// `n_r` reference segments, `n_q` query segments and `d` dimensions on the
/// given system, without functional execution.
pub fn estimate_run(
    n_r: usize,
    n_q: usize,
    d: usize,
    cfg: &MdmpConfig,
    system: &mut GpuSystem,
) -> Result<RunEstimate, MdmpError> {
    cfg.validate(n_r, n_q)?;
    let tiles = compute_tile_list(n_r, n_q, cfg.n_tiles)?;
    system.reset();
    let n_gpu = system.device_count();
    let overlap = overlap_factor(tiles.len(), n_gpu);
    let kahan = cfg.mode.compensated_precalc();
    let weights: Vec<f64> = (0..n_gpu)
        .map(|i| {
            let spec = &system.device(i).spec;
            spec.mem_bandwidth * spec.mem_eff_fp64
        })
        .collect();
    let assignment = assign_tiles_weighted(&tiles, &weights, cfg.schedule);
    let mut streams = vec![0usize; n_gpu];
    for tile in &tiles {
        let (costs, h2d, d2h, device_bytes) = tile_cost_bundle(tile, d, cfg, kahan);
        let dev_idx = assignment[tile.index];
        submit_tile_costs(
            system,
            dev_idx,
            streams[dev_idx],
            tile.index,
            &costs,
            h2d,
            d2h,
            device_bytes,
            overlap,
        )?;
        streams[dev_idx] += 1;
    }
    let (merge_seconds, merge_cost) = merge_model(&tiles, d, cfg.mode.main_format());
    let mut ledger = system.total_ledger();
    ledger.record(&merge_cost, merge_seconds);
    let device_makespans: Vec<f64> = (0..n_gpu)
        .map(|i| system.device(i).timeline.makespan())
        .collect();
    let makespan = device_makespans.iter().copied().fold(0.0, f64::max);
    Ok(RunEstimate {
        modeled_seconds: makespan + merge_seconds,
        merge_seconds,
        device_makespans,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdmp_gpu_sim::{DeviceSpec, KernelClass};
    use mdmp_precision::PrecisionMode;

    fn paper_cfg(mode: PrecisionMode, tiles: usize) -> MdmpConfig {
        MdmpConfig::new(64, mode).with_tiles(tiles)
    }

    /// The paper's headline: ~54× A100 vs 16-core CPU in FP64 at
    /// (n = 2¹⁶, d = 2⁶, m = 2⁶).
    #[test]
    fn headline_a100_vs_cpu_speedup() {
        let n = 1 << 16;
        let d = 64;
        let cfg = paper_cfg(PrecisionMode::Fp64, 1);
        let mut a100 = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let t_gpu = estimate_run(n, n, d, &cfg, &mut a100)
            .unwrap()
            .modeled_seconds;
        let mut cpu = GpuSystem::homogeneous(DeviceSpec::skylake_16c(), 1);
        let t_cpu = estimate_run(n, n, d, &cfg, &mut cpu)
            .unwrap()
            .modeled_seconds;
        let speedup = t_cpu / t_gpu;
        assert!(
            (40.0..=70.0).contains(&speedup),
            "A100 vs CPU speedup {speedup:.1} outside the paper's ~54x band"
        );
    }

    /// ~41.6× V100 vs CPU.
    #[test]
    fn headline_v100_vs_cpu_speedup() {
        let n = 1 << 16;
        let d = 64;
        let cfg = paper_cfg(PrecisionMode::Fp64, 1);
        let mut v100 = GpuSystem::homogeneous(DeviceSpec::v100(), 1);
        let t_gpu = estimate_run(n, n, d, &cfg, &mut v100)
            .unwrap()
            .modeled_seconds;
        let mut cpu = GpuSystem::homogeneous(DeviceSpec::skylake_16c(), 1);
        let t_cpu = estimate_run(n, n, d, &cfg, &mut cpu)
            .unwrap()
            .modeled_seconds;
        let speedup = t_cpu / t_gpu;
        assert!(
            (30.0..=55.0).contains(&speedup),
            "V100 vs CPU speedup {speedup:.1} outside the paper's ~42x band"
        );
    }

    /// ~1.4× FP16 vs FP64 on one A100 "for common problem settings".
    #[test]
    fn headline_reduced_precision_gain() {
        let n = 1 << 16;
        let d = 64;
        let mut a100 = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let t64 = estimate_run(n, n, d, &paper_cfg(PrecisionMode::Fp64, 1), &mut a100)
            .unwrap()
            .modeled_seconds;
        let t16 = estimate_run(n, n, d, &paper_cfg(PrecisionMode::Fp16, 1), &mut a100)
            .unwrap()
            .modeled_seconds;
        let gain = t64 / t16;
        assert!(
            (1.2..=1.9).contains(&gain),
            "FP16 gain {gain:.2} outside the paper's ~1.4x band"
        );
    }

    /// ~3.8× on 4 A100s (≥95% parallel efficiency) with 16 tiles.
    #[test]
    fn headline_four_gpu_scaling() {
        let n = 1 << 16;
        let d = 64;
        let cfg = paper_cfg(PrecisionMode::Fp64, 16);
        let mut one = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let t1 = estimate_run(n, n, d, &cfg, &mut one)
            .unwrap()
            .modeled_seconds;
        let mut four = GpuSystem::homogeneous(DeviceSpec::a100(), 4);
        let t4 = estimate_run(n, n, d, &cfg, &mut four)
            .unwrap()
            .modeled_seconds;
        let speedup = t1 / t4;
        assert!(
            speedup > 3.6 && speedup <= 4.05,
            "4-GPU speedup {speedup:.2} outside the paper's ~3.8x band"
        );
    }

    /// Odd GPU counts are less efficient with 16 tiles (Fig. 5).
    #[test]
    fn odd_gpu_counts_lose_efficiency() {
        let n = 1 << 15;
        let d = 64;
        let cfg = paper_cfg(PrecisionMode::Fp64, 16);
        let mut t = [0.0; 9];
        for (g, slot) in t.iter_mut().enumerate().skip(1) {
            let mut sys = GpuSystem::homogeneous(DeviceSpec::v100(), g);
            *slot = estimate_run(n, n, d, &cfg, &mut sys)
                .unwrap()
                .modeled_seconds;
        }
        let eff = |g: usize| t[1] / (g as f64 * t[g]);
        assert!(eff(2) > 0.9);
        assert!(eff(4) > 0.9);
        assert!(eff(8) > 0.85);
        assert!(
            eff(3) < eff(2),
            "3 GPUs less efficient than 2 (6 vs 5.33 tiles)"
        );
        assert!(eff(5) < eff(4));
        assert!(eff(7) < eff(8));
    }

    /// Execution time is independent of the segment length m (Fig. 6 right).
    #[test]
    fn runtime_independent_of_m() {
        let n = 1 << 14;
        let d = 16;
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let t8 = estimate_run(n, n, d, &MdmpConfig::new(8, PrecisionMode::Fp64), &mut sys)
            .unwrap()
            .modeled_seconds;
        let t64 = estimate_run(n, n, d, &MdmpConfig::new(64, PrecisionMode::Fp64), &mut sys)
            .unwrap()
            .modeled_seconds;
        assert!(
            (t8 - t64).abs() / t8 < 0.02,
            "m should barely affect runtime: {t8} vs {t64}"
        );
    }

    /// Quadratic scaling in n, linear in d at paper scale (Fig. 6 left &
    /// middle; at small n the per-launch overheads flatten the curve, as
    /// the paper's log-log plots also show).
    #[test]
    fn complexity_scaling() {
        let d = 64;
        let cfg = MdmpConfig::new(64, PrecisionMode::Fp64);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let t1 = estimate_run(1 << 15, 1 << 15, d, &cfg, &mut sys)
            .unwrap()
            .modeled_seconds;
        let t2 = estimate_run(1 << 16, 1 << 16, d, &cfg, &mut sys)
            .unwrap()
            .modeled_seconds;
        let ratio_n = t2 / t1;
        assert!(
            (3.2..=4.3).contains(&ratio_n),
            "doubling n should ~4x the time, got {ratio_n:.2}"
        );
        let ta = estimate_run(1 << 15, 1 << 15, 32, &cfg, &mut sys)
            .unwrap()
            .modeled_seconds;
        let tb = estimate_run(1 << 15, 1 << 15, 64, &cfg, &mut sys)
            .unwrap()
            .modeled_seconds;
        let ratio_d = tb / ta;
        assert!(
            (1.5..=2.4).contains(&ratio_d),
            "doubling d should ~2x the time, got {ratio_d:.2}"
        );
    }

    /// Kernel dominance shifts from dist_calc to sort_&_incl_scan as d
    /// grows (Fig. 4).
    #[test]
    fn kernel_dominance_crossover_with_d() {
        let n = 1 << 16;
        let cfg = MdmpConfig::new(64, PrecisionMode::Fp64);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let small_d = estimate_run(n, n, 8, &cfg, &mut sys).unwrap().ledger;
        assert!(
            small_d.seconds(KernelClass::DistCalc) > small_d.seconds(KernelClass::SortScan),
            "dist_calc dominates at small d"
        );
        let big_d = estimate_run(n, n, 64, &cfg, &mut sys).unwrap().ledger;
        assert!(
            big_d.seconds(KernelClass::SortScan) > big_d.seconds(KernelClass::DistCalc),
            "sort dominates at large d"
        );
    }

    /// The modelled absolute time at the paper's Fig. 4 operating point
    /// lands in the right ballpark (~10-20 s on A100, FP64).
    #[test]
    fn fig4_operating_point_magnitude() {
        let cfg = MdmpConfig::new(64, PrecisionMode::Fp64);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let t = estimate_run(1 << 16, 1 << 16, 64, &cfg, &mut sys)
            .unwrap()
            .modeled_seconds;
        assert!(
            (8.0..=25.0).contains(&t),
            "A100 FP64 n=2^16 d=2^6: {t:.1} s"
        );
    }

    /// More tiles first help (overhead overlap), then hurt (merge overhead)
    /// — the Fig. 7 time profile.
    #[test]
    fn tile_count_time_profile() {
        let n = 1 << 16;
        let d = 64;
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let mut t = |tiles: usize| {
            estimate_run(n, n, d, &paper_cfg(PrecisionMode::Fp16, tiles), &mut sys)
                .unwrap()
                .modeled_seconds
        };
        let t1 = t(1);
        let t16 = t(16);
        let t1024 = t(1024);
        assert!(t16 < t1, "a few tiles should beat one tile: {t16} vs {t1}");
        assert!(
            t1024 > t16,
            "1024 tiles pay merge overhead: {t1024} vs {t16}"
        );
    }
}

//! Multi-node execution — the paper's §VII extension ("could be further
//! extended to multiple nodes, e.g. using MPI or a Cloud-based solution").
//!
//! The distance matrix tiles are distributed Round-robin over every GPU of
//! every node. The communication model follows an MPI implementation:
//!
//! 1. **broadcast** — both input series go to every node (tree broadcast);
//! 2. **compute** — each node runs its tiles exactly like the single-node
//!    driver (overlapping streams, per-node CPU merge of its own tiles);
//! 3. **reduce** — the per-node partial profiles (min/argmin are
//!    associative and commutative) combine to the root with a binary tree
//!    reduction.
//!
//! Functionally the result is **identical** to a single-node run — min
//! merging is order-insensitive up to ties, and ties are resolved by
//! ascending row offset before reduction order matters.

use crate::config::{MdmpConfig, MdmpError};
use crate::driver::{merge_model, overlap_factor, submit_tile_costs};
use crate::profile::MatrixProfile;
use crate::tile_exec::{execute_tile, tile_cost_bundle};
use crate::tiling::{assign_tiles_weighted, compute_tile_list};
use mdmp_data::MultiDimSeries;
use mdmp_gpu_sim::ClusterSystem;
use mdmp_precision::{Bf16, Fp8E4M3, Fp8E5M2, Half, PrecisionMode, Real, Tf32};

/// Result of a cluster run.
#[derive(Debug)]
pub struct ClusterRun {
    /// The reduced matrix profile (identical to a single-node result).
    pub profile: MatrixProfile,
    /// Modelled end-to-end seconds: broadcast + slowest node (compute +
    /// node-local merge) + tree reduction.
    pub modeled_seconds: f64,
    /// Modelled broadcast seconds.
    pub broadcast_seconds: f64,
    /// Modelled reduction seconds.
    pub reduce_seconds: f64,
    /// Per-node compute makespans.
    pub node_makespans: Vec<f64>,
}

/// Run the matrix profile across a multi-node cluster.
pub fn run_on_cluster(
    reference: &MultiDimSeries,
    query: &MultiDimSeries,
    cfg: &MdmpConfig,
    cluster: &mut ClusterSystem,
) -> Result<ClusterRun, MdmpError> {
    match cfg.mode {
        PrecisionMode::Fp64 => {
            run_cluster_generic::<f64, f64>(reference, query, cfg, cluster, false)
        }
        PrecisionMode::Fp32 => {
            run_cluster_generic::<f32, f32>(reference, query, cfg, cluster, false)
        }
        PrecisionMode::Fp16 => {
            run_cluster_generic::<Half, Half>(reference, query, cfg, cluster, false)
        }
        PrecisionMode::Mixed => {
            run_cluster_generic::<f32, Half>(reference, query, cfg, cluster, false)
        }
        PrecisionMode::Fp16c => {
            run_cluster_generic::<Half, Half>(reference, query, cfg, cluster, true)
        }
        PrecisionMode::Bf16 => {
            run_cluster_generic::<Bf16, Bf16>(reference, query, cfg, cluster, false)
        }
        PrecisionMode::Tf32 => {
            run_cluster_generic::<Tf32, Tf32>(reference, query, cfg, cluster, false)
        }
        PrecisionMode::Fp8E4M3 => {
            run_cluster_generic::<f32, Fp8E4M3>(reference, query, cfg, cluster, false)
        }
        PrecisionMode::Fp8E5M2 => {
            run_cluster_generic::<f32, Fp8E5M2>(reference, query, cfg, cluster, false)
        }
        // Tensor-core GEMM modes: FP32 storage + accumulation.
        PrecisionMode::Fp16Tc | PrecisionMode::Bf16Tc | PrecisionMode::Tf32Tc => {
            run_cluster_generic::<f32, f32>(reference, query, cfg, cluster, false)
        }
    }
}

fn run_cluster_generic<P: Real, M: Real>(
    reference: &MultiDimSeries,
    query: &MultiDimSeries,
    cfg: &MdmpConfig,
    cluster: &mut ClusterSystem,
    kahan: bool,
) -> Result<ClusterRun, MdmpError> {
    if reference.dims() != query.dims() {
        return Err(MdmpError::DimensionalityMismatch {
            reference: reference.dims(),
            query: query.dims(),
        });
    }
    if reference.len() < cfg.m || query.len() < cfg.m {
        return Err(MdmpError::BadConfig(
            "series shorter than the segment length".into(),
        ));
    }
    let n_r = reference.n_segments(cfg.m);
    let n_q = query.n_segments(cfg.m);
    cfg.validate(n_r, n_q)?;
    let d = reference.dims();
    let tiles = compute_tile_list(n_r, n_q, cfg.n_tiles)?;
    cluster.reset();

    let total_devices = cluster.total_devices();
    let nodes = cluster.node_count();
    let overlap = overlap_factor(tiles.len(), total_devices);
    let assignment = cluster_weights_assignment(cluster, &tiles, cfg.schedule);
    let mut streams = vec![0usize; total_devices];
    let mut node_tiles: Vec<Vec<crate::tiling::Tile>> = vec![Vec::new(); nodes];
    let mut global = MatrixProfile::new_unset(n_q, d);

    for tile in &tiles {
        let global_dev = assignment[tile.index];
        let (node_idx, local_dev) = cluster.locate(global_dev);
        let out = execute_tile::<P, M>(reference, query, tile, cfg, kahan);
        submit_tile_costs(
            cluster.node_mut(node_idx),
            local_dev,
            streams[global_dev],
            tile.index,
            &out.kernel_costs,
            out.h2d_bytes,
            out.d2h_bytes,
            out.device_bytes,
            overlap,
        )?;
        streams[global_dev] += 1;
        node_tiles[node_idx].push(*tile);
        // Functional merging is associative; merge in tile order for
        // deterministic tie behaviour.
        global.merge_min_columns(&out.profile, tile.col0);
    }

    // Per-node CPU merge of its own tiles; the slowest node gates.
    let node_makespans: Vec<f64> = (0..nodes)
        .map(|i| {
            let (merge_s, _) = merge_model(&node_tiles[i], d, cfg.mode.main_format());
            cluster.node(i).makespan() + merge_s
        })
        .collect();
    let compute = node_makespans.iter().copied().fold(0.0, f64::max);

    // Network: broadcast both input series, reduce the partial profiles.
    let input_bytes =
        ((reference.len() + query.len()) * d * cfg.mode.precalc_format().bytes()) as u64;
    let profile_bytes = (n_q * d) as u64 * (cfg.mode.main_format().bytes() as u64 + 8);
    let broadcast_seconds = cluster.interconnect.broadcast_seconds(input_bytes, nodes);
    let reduce_seconds = cluster.interconnect.reduce_seconds(profile_bytes, nodes);

    Ok(ClusterRun {
        profile: global,
        modeled_seconds: broadcast_seconds + compute + reduce_seconds,
        broadcast_seconds,
        reduce_seconds,
        node_makespans,
    })
}

fn cluster_weights_assignment(
    cluster: &ClusterSystem,
    tiles: &[crate::tiling::Tile],
    schedule: crate::tiling::TileSchedule,
) -> Vec<usize> {
    let weights: Vec<f64> = (0..cluster.total_devices())
        .map(|g| {
            let (node, local) = cluster.locate(g);
            let spec = &cluster.node(node).device(local).spec;
            spec.mem_bandwidth * spec.mem_eff_fp64
        })
        .collect();
    assign_tiles_weighted(tiles, &weights, schedule)
}

/// Cost-only cluster estimate at arbitrary scale (the multi-node analogue
/// of [`crate::estimate_run`]).
pub fn estimate_cluster(
    n_r: usize,
    n_q: usize,
    d: usize,
    cfg: &MdmpConfig,
    cluster: &mut ClusterSystem,
) -> Result<ClusterRun, MdmpError> {
    cfg.validate(n_r, n_q)?;
    let tiles = compute_tile_list(n_r, n_q, cfg.n_tiles)?;
    cluster.reset();
    let total_devices = cluster.total_devices();
    let nodes = cluster.node_count();
    let overlap = overlap_factor(tiles.len(), total_devices);
    let kahan = cfg.mode.compensated_precalc();
    let assignment = cluster_weights_assignment(cluster, &tiles, cfg.schedule);
    let mut streams = vec![0usize; total_devices];
    let mut node_tiles: Vec<Vec<crate::tiling::Tile>> = vec![Vec::new(); nodes];

    for tile in &tiles {
        let global_dev = assignment[tile.index];
        let (node_idx, local_dev) = cluster.locate(global_dev);
        let (costs, h2d, d2h, device_bytes) = tile_cost_bundle(tile, d, cfg, kahan);
        submit_tile_costs(
            cluster.node_mut(node_idx),
            local_dev,
            streams[global_dev],
            tile.index,
            &costs,
            h2d,
            d2h,
            device_bytes,
            overlap,
        )?;
        streams[global_dev] += 1;
        node_tiles[node_idx].push(*tile);
    }
    let node_makespans: Vec<f64> = (0..nodes)
        .map(|i| {
            let (merge_s, _) = merge_model(&node_tiles[i], d, cfg.mode.main_format());
            cluster.node(i).makespan() + merge_s
        })
        .collect();
    let compute = node_makespans.iter().copied().fold(0.0, f64::max);
    let m = cfg.m;
    let input_bytes =
        (((n_r + m - 1) + (n_q + m - 1)) * d * cfg.mode.precalc_format().bytes()) as u64;
    let profile_bytes = (n_q * d) as u64 * (cfg.mode.main_format().bytes() as u64 + 8);
    let broadcast_seconds = cluster.interconnect.broadcast_seconds(input_bytes, nodes);
    let reduce_seconds = cluster.interconnect.reduce_seconds(profile_bytes, nodes);
    Ok(ClusterRun {
        profile: MatrixProfile::new_unset(n_q.max(1), d.max(1)),
        modeled_seconds: broadcast_seconds + compute + reduce_seconds,
        broadcast_seconds,
        reduce_seconds,
        node_makespans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_with_mode;
    use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
    use mdmp_gpu_sim::{DeviceSpec, GpuSystem, Interconnect};

    fn data() -> mdmp_data::SyntheticPair {
        generate_pair(&SyntheticConfig {
            n_subsequences: 512,
            dims: 3,
            m: 16,
            pattern: Pattern::Triangle,
            embeddings: 2,
            noise: 0.3,
            pattern_amplitude: 1.0,
            seed: 21,
        })
    }

    #[test]
    fn cluster_result_matches_single_node() {
        let p = data();
        for mode in [PrecisionMode::Fp64, PrecisionMode::Fp16] {
            let cfg = MdmpConfig::new(16, mode).with_tiles(16);
            let mut single = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
            let expected = run_with_mode(&p.reference, &p.query, &cfg, &mut single).unwrap();
            let mut cluster =
                ClusterSystem::homogeneous(DeviceSpec::a100(), 4, 2, Interconnect::default());
            let got = run_on_cluster(&p.reference, &p.query, &cfg, &mut cluster).unwrap();
            assert_eq!(expected.profile, got.profile, "{mode}");
        }
    }

    #[test]
    fn more_nodes_reduce_compute_time() {
        let cfg = MdmpConfig::new(64, PrecisionMode::Fp64).with_tiles(64);
        let n = 1 << 15;
        let t = |nodes: usize| {
            let mut cluster =
                ClusterSystem::homogeneous(DeviceSpec::a100(), nodes, 4, Interconnect::default());
            estimate_cluster(n, n, 64, &cfg, &mut cluster)
                .unwrap()
                .modeled_seconds
        };
        let t1 = t(1);
        let t2 = t(2);
        let t4 = t(4);
        assert!(t2 < t1 * 0.6, "2 nodes: {t2} vs {t1}");
        assert!(t4 < t2 * 0.6, "4 nodes: {t4} vs {t2}");
        // Strong-scaling efficiency stays reasonable at 4 nodes.
        let eff = t1 / (4.0 * t4);
        assert!(eff > 0.8, "4-node efficiency {eff}");
    }

    #[test]
    fn network_overhead_dominates_tiny_problems() {
        // Communication-bound regime: very small problem, many nodes.
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64).with_tiles(64);
        let mut big = ClusterSystem::homogeneous(
            DeviceSpec::a100(),
            8,
            4,
            Interconnect {
                bandwidth: 1.0e6, // pathological 1 MB/s network
                latency: 1.0e-3,
            },
        );
        let run = estimate_cluster(4096, 4096, 8, &cfg, &mut big).unwrap();
        assert!(
            run.broadcast_seconds + run.reduce_seconds
                > run.node_makespans.iter().copied().fold(0.0, f64::max),
            "slow network must dominate"
        );
    }

    #[test]
    fn broadcast_and_reduce_grow_logarithmically() {
        let cfg = MdmpConfig::new(64, PrecisionMode::Fp64).with_tiles(64);
        let n = 1 << 14;
        let net = |nodes: usize| {
            let mut cluster =
                ClusterSystem::homogeneous(DeviceSpec::a100(), nodes, 1, Interconnect::default());
            let run = estimate_cluster(n, n, 16, &cfg, &mut cluster).unwrap();
            run.broadcast_seconds + run.reduce_seconds
        };
        let n2 = net(2);
        let n8 = net(8);
        assert!(n8 <= n2 * 3.0 + 1e-12, "tree depth 3 vs 1: {n8} vs {n2}");
        assert!(n8 > n2, "more nodes cost more rounds");
    }
}

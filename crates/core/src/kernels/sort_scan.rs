//! The `sort_&_incl_scan` kernel: Bitonic sort of each length-`d` fiber of
//! the distance plane in ascending order, followed by an inclusive scan
//! turned into inclusive averages (Eq. 2).
//!
//! The paper uses a custom O(log² d)-depth Bitonic network and an O(log d)
//! fan-in (Hillis–Steele) inclusive scan, with threads of a group
//! cooperating on one fiber and coarse-grained synchronization between
//! stages (§III-A). The functional implementation executes the **identical
//! comparator network and scan association order** — this matters in reduced
//! precision, where the scan's addition order changes the rounding — and the
//! cost model charges one group barrier per network stage.

use mdmp_gpu_sim::{KernelClass, KernelCost};
use mdmp_precision::{Format, Real};
use rayon::prelude::*;

/// Number of compare-exchange stages of a Bitonic network over `len`
/// (power-of-two) elements: `log·(log+1)/2`.
pub fn bitonic_stage_count(len: usize) -> usize {
    assert!(
        len.is_power_of_two(),
        "bitonic length must be a power of two"
    );
    let lg = len.trailing_zeros() as usize;
    lg * (lg + 1) / 2
}

/// In-place ascending Bitonic sort of a power-of-two slice, using the
/// total order (−∞ < finite < +∞ < NaN) so reduced-precision overflow
/// artifacts sort deterministically to the tail like `+∞` padding.
pub fn bitonic_sort<T: Real>(a: &mut [T]) {
    let n = a.len();
    assert!(n.is_power_of_two(), "bitonic length must be a power of two");
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    let ascending = (i & k) == 0;
                    let out_of_order = match a[i].total_order(a[l]) {
                        core::cmp::Ordering::Greater => ascending,
                        core::cmp::Ordering::Less => !ascending,
                        core::cmp::Ordering::Equal => false,
                    };
                    if out_of_order {
                        a.swap(i, l);
                    }
                }
            }
            j >>= 1;
        }
        k <<= 1;
    }
}

/// Hillis–Steele inclusive scan over the first `d` entries of `col`,
/// followed by conversion to inclusive averages: `col[k] ← (Σ_{l≤k} col[l])
/// / (k+1)`. The descending inner loop reads only not-yet-updated (old)
/// values, which is exactly the double-buffered fan-in order of the GPU
/// kernel.
pub fn inclusive_scan_avg<T: Real>(col: &mut [T], d: usize) {
    debug_assert!(d <= col.len());
    let mut s = 1;
    while s < d {
        let mut k = d - 1;
        loop {
            if k >= s {
                col[k] += col[k - s];
            }
            if k == 0 {
                break;
            }
            k -= 1;
        }
        s <<= 1;
    }
    for (k, v) in col.iter_mut().take(d).enumerate() {
        *v = *v / T::from_usize(k + 1);
    }
}

/// Process one distance plane: for every query column `j`, gather the `d`
/// distances, Bitonic-sort ascending, inclusive-scan-average, and store the
/// result in the `j`-major output plane (`n_q × d_pad`, padded with +∞).
///
/// `dist` is dimension-major (`d × n_q`); `out` is `j`-major with stride
/// `d_pad = next_power_of_two(d)`.
pub fn sort_scan_row<T: Real>(dist: &[T], out: &mut [T], n_q: usize, d: usize) {
    let d_pad = d.next_power_of_two();
    debug_assert_eq!(dist.len(), n_q * d);
    debug_assert_eq!(out.len(), n_q * d_pad);
    out.par_chunks_mut(d_pad).enumerate().for_each(|(j, col)| {
        for k in 0..d {
            col[k] = dist[k * n_q + j];
        }
        for pad in col.iter_mut().take(d_pad).skip(d) {
            *pad = T::infinity();
        }
        bitonic_sort(col);
        inclusive_scan_avg(col, d);
    });
}

/// Cost of one `sort_&_incl_scan` launch over an `n_q × d` plane.
///
/// DRAM: read the distance plane, write the scanned plane. Shared-memory
/// work per column: `(d_pad/2)` compare-exchanges per network stage, plus
/// `d_pad` adds per scan step and the final `d` divisions. Barriers: one
/// per Bitonic stage plus one per scan step (coarse-grained synchronization,
/// §III-A).
pub fn sort_scan_cost(n_q: usize, d: usize, format: Format) -> KernelCost {
    let d_pad = d.next_power_of_two();
    let lg = d_pad.trailing_zeros() as u64;
    let stages = bitonic_stage_count(d_pad) as u64;
    let b = format.bytes() as u64;
    let elems = (n_q * d) as u64;
    let ce_ops = n_q as u64 * (d_pad as u64 / 2) * stages;
    let scan_ops = n_q as u64 * (d_pad as u64 * lg + d as u64);
    KernelCost {
        class: KernelClass::SortScan,
        format,
        bytes_read: elems * b,
        bytes_written: elems * b,
        flops: 0,
        smem_ops: ce_ops + scan_ops,
        launches: 1,
        barriers: stages + lg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdmp_precision::Half;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn stage_count_formula() {
        assert_eq!(bitonic_stage_count(2), 1);
        assert_eq!(bitonic_stage_count(4), 3);
        assert_eq!(bitonic_stage_count(64), 21);
        assert_eq!(bitonic_stage_count(256), 36);
    }

    #[test]
    fn bitonic_sorts_random_arrays() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let len = 1usize << rng.gen_range(0..8u32);
            let mut a: Vec<f64> = (0..len).map(|_| rng.gen_range(-100.0..100.0)).collect();
            let mut expected = a.clone();
            expected.sort_by(|x, y| x.partial_cmp(y).unwrap());
            bitonic_sort(&mut a);
            assert_eq!(a, expected);
        }
    }

    #[test]
    fn bitonic_handles_inf_and_nan_deterministically() {
        let mut a = vec![
            3.0,
            f64::NAN,
            f64::INFINITY,
            -1.0,
            f64::NEG_INFINITY,
            0.0,
            2.0,
            f64::NAN,
        ];
        bitonic_sort(&mut a);
        assert_eq!(a[0], f64::NEG_INFINITY);
        assert_eq!(&a[1..4], &[-1.0, 0.0, 2.0]);
        assert_eq!(a[4], 3.0);
        assert_eq!(a[5], f64::INFINITY);
        assert!(a[6].is_nan() && a[7].is_nan());
    }

    #[test]
    fn bitonic_sorts_half_precision() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a: Vec<Half> = (0..64)
            .map(|_| Half::from_f64(rng.gen_range(-10.0..10.0)))
            .collect();
        bitonic_sort(&mut a);
        for w in a.windows(2) {
            assert!(w[0].to_f64() <= w[1].to_f64());
        }
    }

    #[test]
    fn scan_average_matches_serial_reference_in_f64() {
        let mut col = vec![4.0, 1.0, 3.0, 2.0, 7.0, 5.0, 0.5, 6.0];
        let orig = col.clone();
        inclusive_scan_avg(&mut col, 8);
        let mut running = 0.0;
        for (k, &v) in orig.iter().enumerate() {
            running += v;
            assert!(
                (col[k] - running / (k + 1) as f64).abs() < 1e-12,
                "scan avg at {k}"
            );
        }
    }

    #[test]
    fn scan_partial_d_ignores_padding() {
        let mut col = vec![1.0, 2.0, 3.0, f64::INFINITY];
        inclusive_scan_avg(&mut col, 3);
        assert_eq!(col[0], 1.0);
        assert_eq!(col[1], 1.5);
        assert_eq!(col[2], 2.0);
        assert!(col[3].is_infinite(), "padding untouched");
    }

    #[test]
    fn sort_scan_row_end_to_end() {
        // 3 dims (padded to 4), 2 columns.
        // dist plane (k-major): k0 = [3, 10], k1 = [1, 30], k2 = [2, 20]
        let dist = vec![3.0, 10.0, 1.0, 30.0, 2.0, 20.0];
        let mut out = vec![0.0; 2 * 4];
        sort_scan_row(&dist, &mut out, 2, 3);
        // Column 0: sorted [1,2,3] -> averages [1, 1.5, 2].
        assert_eq!(&out[0..3], &[1.0, 1.5, 2.0]);
        // Column 1: sorted [10,20,30] -> [10, 15, 20].
        assert_eq!(&out[4..7], &[10.0, 15.0, 20.0]);
    }

    #[test]
    fn hillis_steele_association_order_differs_from_serial_in_half() {
        // In f16, fan-in scan and serial scan can round differently; both
        // must still be within a few ulps of the exact value.
        let vals: Vec<f64> = (0..16).map(|i| 1.0 + (i as f64) * 0.097).collect();
        let mut fan: Vec<Half> = vals.iter().map(|&v| Half::from_f64(v)).collect();
        inclusive_scan_avg(&mut fan, 16);
        let exact_last: f64 = vals.iter().sum::<f64>() / 16.0;
        let got = fan[15].to_f64();
        assert!(
            (got - exact_last).abs() / exact_last < 0.01,
            "fan-in scan too inaccurate: {got} vs {exact_last}"
        );
    }

    #[test]
    fn cost_barriers_match_network_depth() {
        let c = sort_scan_cost(1024, 64, Format::Fp64);
        assert_eq!(c.barriers, 21 + 6);
        assert_eq!(c.launches, 1);
        let c256 = sort_scan_cost(1024, 256, Format::Fp16);
        assert_eq!(c256.barriers, 36 + 8);
        // Barriers are independent of precision; traffic is not.
        assert_eq!(sort_scan_cost(1024, 64, Format::Fp16).barriers, 27);
        assert!(c.bytes() > sort_scan_cost(1024, 64, Format::Fp16).bytes());
    }

    #[test]
    fn non_pow2_d_pads_cost_and_data() {
        let c = sort_scan_cost(10, 6, Format::Fp64);
        // d_pad = 8: 3·4/2 = 6 stages + 3 scan steps.
        assert_eq!(c.barriers, 9);
        let dist = vec![1.0; 10 * 6];
        let mut out = vec![0.0; 10 * 8];
        sort_scan_row(&dist, &mut out, 10, 6);
        // All-equal distances: averages all 1.0.
        assert!(out[0..6].iter().all(|&v| (v - 1.0_f64).abs() < 1e-12));
    }
}

//! The `sort_&_incl_scan` kernel: Bitonic sort of each length-`d` fiber of
//! the distance plane in ascending order, followed by an inclusive scan
//! turned into inclusive averages (Eq. 2).
//!
//! The paper uses a custom O(log² d)-depth Bitonic network and an O(log d)
//! fan-in (Hillis–Steele) inclusive scan, with threads of a group
//! cooperating on one fiber and coarse-grained synchronization between
//! stages (§III-A). The functional implementation executes the **identical
//! comparator network and scan association order** — this matters in reduced
//! precision, where the scan's addition order changes the rounding — and the
//! cost model charges one group barrier per network stage.

use mdmp_gpu_sim::{KernelClass, KernelCost};
use mdmp_precision::{Format, Real};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Number of compare-exchange stages of a Bitonic network over `len`
/// (power-of-two) elements: `log·(log+1)/2`.
pub fn bitonic_stage_count(len: usize) -> usize {
    assert!(
        len.is_power_of_two(),
        "bitonic length must be a power of two"
    );
    let lg = len.trailing_zeros() as usize;
    lg * (lg + 1) / 2
}

/// One compare-exchange of the Bitonic network: `(i, l, ascending)` means
/// compare positions `i < l` and order them ascending (or descending).
pub type Comparator = (u32, u32, bool);

/// The full comparator sequence of an ascending Bitonic sort over `len`
/// (power-of-two) elements, cached per length. The sequence is generated in
/// exactly the `(k, j, i)` loop order the network executes (`l = i ^ j`,
/// keep `l > i`, ascending iff `(i & k) == 0`), so driving a sort from the
/// schedule performs the *identical* comparisons in the identical order —
/// it only removes the per-fiber re-derivation of `i ^ j` bounds, which is
/// pure host overhead repeated `n_q` times per row.
pub fn comparator_schedule(len: usize) -> Arc<[Comparator]> {
    assert!(
        len.is_power_of_two(),
        "bitonic length must be a power of two"
    );
    static SCHEDULES: OnceLock<Mutex<BTreeMap<usize, Arc<[Comparator]>>>> = OnceLock::new();
    let cache = SCHEDULES.get_or_init(|| Mutex::new(BTreeMap::new()));
    if let Some(s) = cache.lock().unwrap().get(&len) {
        return Arc::clone(s);
    }
    let mut seq = Vec::with_capacity(bitonic_stage_count(len) * len / 2);
    let mut k = 2;
    while k <= len {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..len {
                let l = i ^ j;
                if l > i {
                    seq.push((i as u32, l as u32, (i & k) == 0));
                }
            }
            j >>= 1;
        }
        k <<= 1;
    }
    let seq: Arc<[Comparator]> = seq.into();
    cache
        .lock()
        .unwrap()
        .entry(len)
        .or_insert_with(|| Arc::clone(&seq))
        .clone()
}

/// In-place sort of `a` by the given comparator schedule (see
/// [`comparator_schedule`]). Comparisons use the total order
/// (−∞ < finite < +∞ < NaN) so reduced-precision overflow artifacts sort
/// deterministically to the tail like `+∞` padding; equal elements
/// (including NaNs of different payloads) are never swapped.
#[inline]
pub fn bitonic_sort_scheduled<T: Real>(a: &mut [T], schedule: &[Comparator]) {
    for &(i, l, ascending) in schedule {
        let (i, l) = (i as usize, l as usize);
        let x = a[i];
        let y = a[l];
        let out_of_order = if ascending {
            x.total_gt(y)
        } else {
            x.total_lt(y)
        };
        if out_of_order {
            a[i] = y;
            a[l] = x;
        }
    }
}

/// One compare-exchange with the network's semantics: swap only on strict
/// total-order violation (`ascending` is a const generic so the direction
/// resolves at compile time), so equal elements — including NaNs of
/// different payloads — keep their positions. Comparison happens on the
/// hoisted integer keys ([`Real::sort_key`] is a monotone image of
/// `total_order`, pinned by tests in `mdmp-precision`), and keys travel
/// with their values so each exchange is one integer compare plus
/// conditional moves — no float classify, no branch.
#[inline(always)]
fn compare_exchange_const<T: Real, const ASC: bool>(
    keys: &mut [T::SortKey],
    vals: &mut [T],
    i: usize,
    l: usize,
) {
    let (kx, ky) = (keys[i], keys[l]);
    let out_of_order = if ASC { kx > ky } else { kx < ky };
    let (x, y) = (vals[i], vals[l]);
    keys[i] = if out_of_order { ky } else { kx };
    keys[l] = if out_of_order { kx } else { ky };
    vals[i] = if out_of_order { y } else { x };
    vals[l] = if out_of_order { x } else { y };
}

/// Expand an explicit comparator list (generated from the same `(k, j, i)`
/// derivation as [`comparator_schedule`]) into straight-line code with
/// literal indices — no bounds checks, no index loads, fiber in registers.
macro_rules! net {
    ($k:ident, $v:ident, $( ($i:literal, $l:literal, $asc:literal) ),+ $(,)?) => {
        $( compare_exchange_const::<T, $asc>(&mut $k, $v, $i, $l); )+
    };
}

#[inline(always)]
fn bitonic_sort_2<T: Real>(a: &mut [T; 2]) {
    let mut k = a.map(Real::sort_key);
    net!(k, a, (0, 1, true));
}

#[inline(always)]
fn bitonic_sort_4<T: Real>(a: &mut [T; 4]) {
    let mut k = a.map(Real::sort_key);
    net!(
        k,
        a,
        (0, 1, true),
        (2, 3, false),
        (0, 2, true),
        (1, 3, true),
        (0, 1, true),
        (2, 3, true)
    );
}

#[inline(always)]
#[rustfmt::skip]
fn bitonic_sort_8<T: Real>(a: &mut [T; 8]) {
    let mut k = a.map(Real::sort_key);
    net!(k, a, (0,1,true), (2,3,false), (4,5,true), (6,7,false), (0,2,true), (1,3,true),
        (4,6,false), (5,7,false), (0,1,true), (2,3,true), (4,5,false), (6,7,false),
        (0,4,true), (1,5,true), (2,6,true), (3,7,true), (0,2,true), (1,3,true),
        (4,6,true), (5,7,true), (0,1,true), (2,3,true), (4,5,true), (6,7,true));
}

#[inline(always)]
#[rustfmt::skip]
fn bitonic_sort_16<T: Real>(a: &mut [T; 16]) {
    let mut k = a.map(Real::sort_key);
    net!(k, a, (0,1,true), (2,3,false), (4,5,true), (6,7,false), (8,9,true), (10,11,false),
        (12,13,true), (14,15,false), (0,2,true), (1,3,true), (4,6,false), (5,7,false),
        (8,10,true), (9,11,true), (12,14,false), (13,15,false), (0,1,true), (2,3,true),
        (4,5,false), (6,7,false), (8,9,true), (10,11,true), (12,13,false), (14,15,false),
        (0,4,true), (1,5,true), (2,6,true), (3,7,true), (8,12,false), (9,13,false),
        (10,14,false), (11,15,false), (0,2,true), (1,3,true), (4,6,true), (5,7,true),
        (8,10,false), (9,11,false), (12,14,false), (13,15,false), (0,1,true), (2,3,true),
        (4,5,true), (6,7,true), (8,9,false), (10,11,false), (12,13,false), (14,15,false),
        (0,8,true), (1,9,true), (2,10,true), (3,11,true), (4,12,true), (5,13,true),
        (6,14,true), (7,15,true), (0,4,true), (1,5,true), (2,6,true), (3,7,true),
        (8,12,true), (9,13,true), (10,14,true), (11,15,true), (0,2,true), (1,3,true),
        (4,6,true), (5,7,true), (8,10,true), (9,11,true), (12,14,true), (13,15,true),
        (0,1,true), (2,3,true), (4,5,true), (6,7,true), (8,9,true), (10,11,true),
        (12,13,true), (14,15,true));
}

/// Sort a power-of-two fiber: straight-line unrolled network for the small
/// paddings that dominate multi-dimensional profiles (`d_pad ≤ 16`),
/// schedule-driven loop beyond. Both execute the identical comparator
/// sequence ([`scheduled_sort_matches_triple_loop_bitwise`] and the
/// cross-size test below pin this down).
#[inline]
pub fn bitonic_sort_fiber<T: Real>(a: &mut [T], schedule: &[Comparator]) {
    match a.len() {
        0 | 1 => {}
        2 => bitonic_sort_2(a.try_into().unwrap()),
        4 => bitonic_sort_4(a.try_into().unwrap()),
        8 => bitonic_sort_8(a.try_into().unwrap()),
        16 => bitonic_sort_16(a.try_into().unwrap()),
        _ => bitonic_sort_scheduled(a, schedule),
    }
}

/// In-place ascending Bitonic sort of a power-of-two slice, using the
/// total order (−∞ < finite < +∞ < NaN) so reduced-precision overflow
/// artifacts sort deterministically to the tail like `+∞` padding.
pub fn bitonic_sort<T: Real>(a: &mut [T]) {
    let schedule = comparator_schedule(a.len());
    bitonic_sort_fiber(a, &schedule);
}

/// Hillis–Steele inclusive scan over the first `d` entries of `col`,
/// followed by conversion to inclusive averages: `col[k] ← (Σ_{l≤k} col[l])
/// / (k+1)`. The descending inner loop reads only not-yet-updated (old)
/// values, which is exactly the double-buffered fan-in order of the GPU
/// kernel.
pub fn inclusive_scan_avg<T: Real>(col: &mut [T], d: usize) {
    let divisors = scan_divisors::<T>(d);
    inclusive_scan_avg_with(col, d, &divisors);
}

/// The `1/(k+1)` average divisors `[1, 2, …, d]` in the working precision.
/// `T::from_usize` is deterministic, so hoisting the conversion out of the
/// per-fiber loop leaves every division bit-identical.
pub fn scan_divisors<T: Real>(d: usize) -> Vec<T> {
    (1..=d).map(T::from_usize).collect()
}

/// [`inclusive_scan_avg`] with the divisor table hoisted out (one table per
/// row serves all `n_q` fibers). The fan-in adds run in the identical
/// descending order; only the iterations the original loop skipped
/// (`k < s`) are elided.
#[inline]
pub fn inclusive_scan_avg_with<T: Real>(col: &mut [T], d: usize, divisors: &[T]) {
    debug_assert!(d <= col.len());
    debug_assert_eq!(divisors.len(), d);
    let mut s = 1;
    while s < d {
        let mut k = d - 1;
        while k >= s {
            col[k] += col[k - s];
            k -= 1;
        }
        s <<= 1;
    }
    for (v, div) in col.iter_mut().zip(divisors) {
        *v = *v / *div;
    }
}

/// Process one distance plane: for every query column `j`, gather the `d`
/// distances, Bitonic-sort ascending, inclusive-scan-average, and store the
/// result in the `j`-major output plane (`n_q × d_pad`, padded with +∞).
///
/// `dist` is dimension-major (`d × n_q`); `out` is `j`-major with stride
/// `d_pad = next_power_of_two(d)`.
pub fn sort_scan_row<T: Real>(dist: &[T], out: &mut [T], n_q: usize, d: usize) {
    let d_pad = d.next_power_of_two();
    debug_assert_eq!(dist.len(), n_q * d);
    debug_assert_eq!(out.len(), n_q * d_pad);
    let schedule = comparator_schedule(d_pad);
    let divisors = scan_divisors::<T>(d);
    let schedule = &schedule[..];
    let divisors = &divisors[..];
    out.par_chunks_mut(d_pad).enumerate().for_each(|(j, col)| {
        for k in 0..d {
            col[k] = dist[k * n_q + j];
        }
        for pad in col.iter_mut().take(d_pad).skip(d) {
            *pad = T::infinity();
        }
        bitonic_sort_fiber(col, schedule);
        inclusive_scan_avg_with(col, d, divisors);
    });
}

/// Cost of one `sort_&_incl_scan` launch over an `n_q × d` plane.
///
/// DRAM: read the distance plane, write the scanned plane. Shared-memory
/// work per column: `(d_pad/2)` compare-exchanges per network stage, plus
/// `d_pad` adds per scan step and the final `d` divisions. Barriers: one
/// per Bitonic stage plus one per scan step (coarse-grained synchronization,
/// §III-A).
pub fn sort_scan_cost(n_q: usize, d: usize, format: Format) -> KernelCost {
    let d_pad = d.next_power_of_two();
    let lg = d_pad.trailing_zeros() as u64;
    let stages = bitonic_stage_count(d_pad) as u64;
    let b = format.bytes() as u64;
    let elems = (n_q * d) as u64;
    let ce_ops = n_q as u64 * (d_pad as u64 / 2) * stages;
    let scan_ops = n_q as u64 * (d_pad as u64 * lg + d as u64);
    KernelCost {
        bytes_read: elems * b,
        bytes_written: elems * b,
        smem_ops: ce_ops + scan_ops,
        launches: 1,
        barriers: stages + lg,
        ..KernelCost::new(KernelClass::SortScan, format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdmp_precision::Half;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn stage_count_formula() {
        assert_eq!(bitonic_stage_count(2), 1);
        assert_eq!(bitonic_stage_count(4), 3);
        assert_eq!(bitonic_stage_count(64), 21);
        assert_eq!(bitonic_stage_count(256), 36);
    }

    /// Reference implementation: the original triple loop, re-deriving
    /// `i ^ j` per iteration. The cached schedule must reproduce it exactly.
    fn bitonic_sort_reference<T: Real>(a: &mut [T]) {
        let n = a.len();
        let mut k = 2;
        while k <= n {
            let mut j = k / 2;
            while j > 0 {
                for i in 0..n {
                    let l = i ^ j;
                    if l > i {
                        let ascending = (i & k) == 0;
                        let out_of_order = match a[i].total_order(a[l]) {
                            core::cmp::Ordering::Greater => ascending,
                            core::cmp::Ordering::Less => !ascending,
                            core::cmp::Ordering::Equal => false,
                        };
                        if out_of_order {
                            a.swap(i, l);
                        }
                    }
                }
                j >>= 1;
            }
            k <<= 1;
        }
    }

    #[test]
    fn schedule_has_one_comparator_per_pair_per_stage() {
        for lg in 0..8usize {
            let len = 1 << lg;
            let s = comparator_schedule(len);
            assert_eq!(s.len(), bitonic_stage_count(len) * len / 2);
        }
        // Cache returns the same allocation on repeat lookups.
        assert!(Arc::ptr_eq(
            &comparator_schedule(8),
            &comparator_schedule(8)
        ));
    }

    #[test]
    fn scheduled_sort_matches_triple_loop_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let len = 1usize << rng.gen_range(0..7u32);
            let vals: Vec<f32> = (0..len)
                .map(|_| match rng.gen_range(0..10u32) {
                    0 => f32::INFINITY,
                    1 => f32::NAN,
                    _ => rng.gen_range(-50.0..50.0),
                })
                .collect();
            let mut by_schedule = vals.clone();
            let mut by_loops = vals;
            bitonic_sort(&mut by_schedule);
            bitonic_sort_reference(&mut by_loops);
            let sb: Vec<u32> = by_schedule.iter().map(|v| v.to_bits()).collect();
            let lb: Vec<u32> = by_loops.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, lb, "schedule diverged from the loop derivation");
        }
    }

    #[test]
    fn hoisted_divisor_scan_matches_from_usize_scan() {
        let mut rng = StdRng::seed_from_u64(8);
        for d in 1..=16usize {
            let vals: Vec<Half> = (0..d)
                .map(|_| Half::from_f64(rng.gen_range(0.0..8.0)))
                .collect();
            let mut a = vals.clone();
            let mut b = vals;
            inclusive_scan_avg(&mut a, d);
            let div = scan_divisors::<Half>(d);
            inclusive_scan_avg_with(&mut b, d, &div);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn bitonic_sorts_random_arrays() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let len = 1usize << rng.gen_range(0..8u32);
            let mut a: Vec<f64> = (0..len).map(|_| rng.gen_range(-100.0..100.0)).collect();
            let mut expected = a.clone();
            expected.sort_by(|x, y| x.partial_cmp(y).unwrap());
            bitonic_sort(&mut a);
            assert_eq!(a, expected);
        }
    }

    #[test]
    fn bitonic_handles_inf_and_nan_deterministically() {
        let mut a = vec![
            3.0,
            f64::NAN,
            f64::INFINITY,
            -1.0,
            f64::NEG_INFINITY,
            0.0,
            2.0,
            f64::NAN,
        ];
        bitonic_sort(&mut a);
        assert_eq!(a[0], f64::NEG_INFINITY);
        assert_eq!(&a[1..4], &[-1.0, 0.0, 2.0]);
        assert_eq!(a[4], 3.0);
        assert_eq!(a[5], f64::INFINITY);
        assert!(a[6].is_nan() && a[7].is_nan());
    }

    #[test]
    fn bitonic_sorts_half_precision() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a: Vec<Half> = (0..64)
            .map(|_| Half::from_f64(rng.gen_range(-10.0..10.0)))
            .collect();
        bitonic_sort(&mut a);
        for w in a.windows(2) {
            assert!(w[0].to_f64() <= w[1].to_f64());
        }
    }

    #[test]
    fn scan_average_matches_serial_reference_in_f64() {
        let mut col = vec![4.0, 1.0, 3.0, 2.0, 7.0, 5.0, 0.5, 6.0];
        let orig = col.clone();
        inclusive_scan_avg(&mut col, 8);
        let mut running = 0.0;
        for (k, &v) in orig.iter().enumerate() {
            running += v;
            assert!(
                (col[k] - running / (k + 1) as f64).abs() < 1e-12,
                "scan avg at {k}"
            );
        }
    }

    #[test]
    fn scan_partial_d_ignores_padding() {
        let mut col = vec![1.0, 2.0, 3.0, f64::INFINITY];
        inclusive_scan_avg(&mut col, 3);
        assert_eq!(col[0], 1.0);
        assert_eq!(col[1], 1.5);
        assert_eq!(col[2], 2.0);
        assert!(col[3].is_infinite(), "padding untouched");
    }

    #[test]
    fn sort_scan_row_end_to_end() {
        // 3 dims (padded to 4), 2 columns.
        // dist plane (k-major): k0 = [3, 10], k1 = [1, 30], k2 = [2, 20]
        let dist = vec![3.0, 10.0, 1.0, 30.0, 2.0, 20.0];
        let mut out = vec![0.0; 2 * 4];
        sort_scan_row(&dist, &mut out, 2, 3);
        // Column 0: sorted [1,2,3] -> averages [1, 1.5, 2].
        assert_eq!(&out[0..3], &[1.0, 1.5, 2.0]);
        // Column 1: sorted [10,20,30] -> [10, 15, 20].
        assert_eq!(&out[4..7], &[10.0, 15.0, 20.0]);
    }

    #[test]
    fn hillis_steele_association_order_differs_from_serial_in_half() {
        // In f16, fan-in scan and serial scan can round differently; both
        // must still be within a few ulps of the exact value.
        let vals: Vec<f64> = (0..16).map(|i| 1.0 + (i as f64) * 0.097).collect();
        let mut fan: Vec<Half> = vals.iter().map(|&v| Half::from_f64(v)).collect();
        inclusive_scan_avg(&mut fan, 16);
        let exact_last: f64 = vals.iter().sum::<f64>() / 16.0;
        let got = fan[15].to_f64();
        assert!(
            (got - exact_last).abs() / exact_last < 0.01,
            "fan-in scan too inaccurate: {got} vs {exact_last}"
        );
    }

    #[test]
    fn cost_barriers_match_network_depth() {
        let c = sort_scan_cost(1024, 64, Format::Fp64);
        assert_eq!(c.barriers, 21 + 6);
        assert_eq!(c.launches, 1);
        let c256 = sort_scan_cost(1024, 256, Format::Fp16);
        assert_eq!(c256.barriers, 36 + 8);
        // Barriers are independent of precision; traffic is not.
        assert_eq!(sort_scan_cost(1024, 64, Format::Fp16).barriers, 27);
        assert!(c.bytes() > sort_scan_cost(1024, 64, Format::Fp16).bytes());
    }

    #[test]
    fn non_pow2_d_pads_cost_and_data() {
        let c = sort_scan_cost(10, 6, Format::Fp64);
        // d_pad = 8: 3·4/2 = 6 stages + 3 scan steps.
        assert_eq!(c.barriers, 9);
        let dist = vec![1.0; 10 * 6];
        let mut out = vec![0.0; 10 * 8];
        sort_scan_row(&dist, &mut out, 10, 6);
        // All-equal distances: averages all 1.0.
        assert!(out[0..6].iter().all(|&v| (v - 1.0_f64).abs() < 1e-12));
    }
}

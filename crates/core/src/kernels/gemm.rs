//! Blocked-GEMM `dist_calc` for the tensor-core precision modes.
//!
//! The streaming recurrence of Eq. 1 couples successive rows along
//! diagonals, which is hostile to a matrix-multiply unit: every output
//! depends on the previous row. The GEMM reformulation (cf. the
//! tensor-core Euclidean-distance literature) unrolls the recurrence from a
//! **panel base row** `b` instead. For a row `i` with `t = i − b`:
//!
//! ```text
//! QT[i,j,k] = QT[b, j−t, k] + Σ_{u=0}^{t−1} ( df_r[i−u,k]·dg_q[j−u,k]
//!                                           + df_q[j−u,k]·dg_r[i−u,k] )
//! ```
//!
//! i.e. a length-`2t` dot product of `df`/`dg` operand slices against the
//! stored base row — exactly the `df·dg`-style rank-update tile an MMA unit
//! consumes. Columns `j < t` chain back into the precalculated first
//! column instead: `QT[i,j] = qt_col0[i−j] + (length-2j dot)`. Every `P`
//! rows (`P` = the MMA chunk width) the freshly computed row becomes the
//! new base — the paper's *tile-restarted recurrence*. Because each row
//! within a panel depends only on the base row (never on its siblings),
//! rows keep their deterministic sequential evaluation order and the
//! result is a pure function of (inputs, input format, chunk width) — no
//! worker-count or node-count dependence, which is what keeps the TC modes
//! bit-reproducible under the existing reorder-buffer and cluster merges.
//!
//! All narrowing and accumulation happens inside [`gemm_accumulate`], the
//! blessed precision-hygiene choke point wrapping the simulated MMA unit
//! ([`mdmp_gpu_sim::mma_dot`]): operands are rounded to the TC input
//! format per multiply, products are exact in FP32, and chunks of
//! `chunk_k` products are summed in FP32 before joining the accumulator.

use crate::kernels::dist::{dist_value, DistParams};
use crate::precalc::Stats;
use mdmp_gpu_sim::{KernelClass, KernelCost, MmaConfig};
use mdmp_precision::{Format, Real};
use rayon::prelude::*;

/// Longest MMA dot product a panel can produce: `2 · chunk_k` operands
/// (one `df·dg` pair per unrolled step, `chunk_k` steps per panel).
pub const MAX_PANEL_OPERANDS: usize = 32;

/// One simulated-MMA accumulation: `base + Σ round(a)·round(b)` with FP32
/// chunked accumulation. This is the **only** place the TC modes perform
/// distance-matrix arithmetic outside the shared [`dist_value`] expression,
/// and it is allow-listed by mdmp-analyze rule R1 accordingly.
#[inline(always)]
pub fn gemm_accumulate<T: Real>(base: T, a: &[f64], b: &[f64], mma: &MmaConfig) -> T {
    T::from_f64(mdmp_gpu_sim::mma_dot(base.to_f64(), a, b, mma))
}

/// Compute row `i` of the tile's QT and distance planes from panel base row
/// `base_idx` (whose QT plane is `qt_base`).
///
/// * `qt_row0` / `qt_col0` — the precalculated first row / column
///   (`d × n_q` / `d × n_r`, dimension-major), as in `dist_row`;
/// * `qt_base` — the QT plane of row `base_idx` (ignored when `i == 0`);
/// * `qt_next` / `dist` — output planes for this row.
///
/// Requires `i − base_idx ≤ mma.chunk_k` (the panel height) so a dot never
/// exceeds [`MAX_PANEL_OPERANDS`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_row<T: Real>(
    i: usize,
    base_idx: usize,
    qt_row0: &[T],
    qt_col0: &[T],
    qt_base: &[T],
    qt_next: &mut [T],
    dist: &mut [T],
    rstats: &Stats<T>,
    qstats: &Stats<T>,
    params: &DistParams<T>,
    mma: &MmaConfig,
) {
    let n_r = rstats.n;
    let n_q = qstats.n;
    let t = i - base_idx;
    debug_assert!(i < n_r);
    debug_assert!(t <= mma.chunk_k, "panel height exceeds the MMA chunk");
    debug_assert_eq!(qt_next.len(), n_q * rstats.d);
    let global_i = params.row_offset + i;

    qt_next
        .par_chunks_mut(n_q)
        .zip(dist.par_chunks_mut(n_q))
        .enumerate()
        .for_each(|(k, (qt_k, dist_k))| {
            let dfr = &rstats.df[k * n_r..(k + 1) * n_r];
            let dgr = &rstats.dg[k * n_r..(k + 1) * n_r];
            let inv_r = rstats.inv[k * n_r + i];
            let dfq = &qstats.df[k * n_q..(k + 1) * n_q];
            let dgq = &qstats.dg[k * n_q..(k + 1) * n_q];
            let inv_q = &qstats.inv[k * n_q..(k + 1) * n_q];
            let row0_k = &qt_row0[k * n_q..(k + 1) * n_q];
            let col0_k = &qt_col0[k * n_r..(k + 1) * n_r];
            let base_k = &qt_base[k * n_q..(k + 1) * n_q];
            let mut a = [0.0f64; MAX_PANEL_OPERANDS];
            let mut b = [0.0f64; MAX_PANEL_OPERANDS];
            for j in 0..n_q {
                let qt = if i == 0 {
                    row0_k[j]
                } else {
                    // Unroll `steps` recurrence steps back from (i, j): to
                    // the stored base row when the column reach allows it,
                    // else into the precalculated first column.
                    let steps = t.min(j);
                    let base = if steps == t {
                        base_k[j - t]
                    } else {
                        col0_k[i - j]
                    };
                    for u in 0..steps {
                        a[2 * u] = dfr[i - u].to_f64();
                        b[2 * u] = dgq[j - u].to_f64();
                        a[2 * u + 1] = dfq[j - u].to_f64();
                        b[2 * u + 1] = dgr[i - u].to_f64();
                    }
                    gemm_accumulate(base, &a[..2 * steps], &b[..2 * steps], mma)
                };
                qt_k[j] = qt;
                let excluded = match params.exclusion {
                    Some(excl) => global_i.abs_diff(params.col_offset + j) < excl,
                    None => false,
                };
                dist_k[j] = dist_value(qt, inv_r, inv_q[j], params.two_m, params.clamp, excluded);
            }
        });
}

/// Cost of the blocked-GEMM `dist_calc` over a whole `n_r × n_q × d` tile
/// with panel height `panel` and MMA input format `input`.
///
/// One launch per row panel. DRAM traffic: the distance planes are written
/// as before, but the QT double-buffer traffic collapses to one base-row
/// read + one base-row write *per panel* — the in-panel rank updates live
/// in registers/fragments (the per-row `df/dg/inv` operand vectors stay
/// L2-resident as in `dist_cost`). FLOPs: each output element consumes a
/// length-`2t` MMA dot (`t ≤ panel`, average `(panel+1)/2` steps), i.e.
/// `2·(panel+1)` FLOPs per element on the tensor cores; the O(1) per-element
/// normalize + sqrt rides in the memory-bound envelope. Fragment traffic:
/// two `input`-format operands per MAC, derated by the 16-wide fragment
/// reuse of an MMA output tile.
pub fn gemm_cost(n_r: usize, n_q: usize, d: usize, panel: usize, input: Format) -> KernelCost {
    let elems = (n_r * n_q * d) as u64;
    let plane = (n_q * d) as u64;
    let b = Format::Fp32.bytes() as u64;
    let panels = n_r.div_ceil(panel) as u64;
    let mac_flops = 2 * (panel as u64 + 1) * elems;
    const FRAG_REUSE: u64 = 16;
    KernelCost {
        bytes_read: panels * plane * b,
        bytes_written: elems * b + panels * plane * b,
        flops: mac_flops,
        launches: panels,
        tc: Some(input),
        frag_bytes: mac_flops * input.bytes() as u64 / FRAG_REUSE,
        ..KernelCost::new(KernelClass::DistCalc, Format::Fp32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::dist::dist_row;
    use crate::precalc::compute_stats;
    use mdmp_data::MultiDimSeries;
    use mdmp_gpu_sim::TimingModel;
    use mdmp_precision::PrecisionMode;

    fn series(seed: u64, n: usize, d: usize) -> MultiDimSeries {
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        };
        MultiDimSeries::from_dims((0..d).map(|_| (0..n).map(|_| next()).collect()).collect())
    }

    /// Run the full tile with `gemm_row` and with `dist_row`, returning
    /// both distance-plane sequences.
    #[allow(clippy::type_complexity)]
    fn run_both(panel: usize, input: Format) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let m = 8;
        let (n, d) = (40, 3);
        let reference = series(11, n, d);
        let query = series(22, n, d);
        let ref_dev = crate::precalc::SeriesDevice::<f32>::load(&reference, 0, n);
        let query_dev = crate::precalc::SeriesDevice::<f32>::load(&query, 0, n);
        let rstats = compute_stats(&ref_dev, m, false);
        let qstats = compute_stats(&query_dev, m, false);
        let n_r = rstats.n;
        let n_q = qstats.n;
        let dims = rstats.d;
        let params = DistParams::<f32>::new(m, true, 0, 0, None);
        // Naive initial row/column, FP32 like the precalc path.
        let dot = |i: usize, j: usize, k: usize| -> f32 {
            let r = ref_dev.dim(k);
            let q = query_dev.dim(k);
            let mu_r = rstats.mu[k * n_r + i];
            let mu_q = qstats.mu[k * n_q + j];
            let mut s = 0.0f32;
            for u in 0..m {
                s += (r[i + u] - mu_r) * (q[j + u] - mu_q);
            }
            s
        };
        let mut qt_row0 = vec![0.0f32; dims * n_q];
        let mut qt_col0 = vec![0.0f32; dims * n_r];
        for k in 0..dims {
            for j in 0..n_q {
                qt_row0[k * n_q + j] = dot(0, j, k);
            }
            for i in 0..n_r {
                qt_col0[k * n_r + i] = dot(i, 0, k);
            }
        }
        let mma = MmaConfig::new(input).with_chunk_k(panel);
        let plane = dims * n_q;
        let (mut gemm_planes, mut stream_planes) = (Vec::new(), Vec::new());
        // GEMM path: panel-restarted.
        let mut qt_base = vec![0.0f32; plane];
        let mut qt_next = vec![0.0f32; plane];
        let mut dist = vec![0.0f32; plane];
        let mut base_idx = 0usize;
        for i in 0..n_r {
            gemm_row(
                i,
                base_idx,
                &qt_row0,
                &qt_col0,
                &qt_base,
                &mut qt_next,
                &mut dist,
                &rstats,
                &qstats,
                &params,
                &mma,
            );
            gemm_planes.push(dist.clone());
            if i - base_idx == mma.chunk_k || i == 0 {
                qt_base.copy_from_slice(&qt_next);
                base_idx = i;
            }
        }
        // Streaming path for comparison.
        let mut qt_prev = vec![0.0f32; plane];
        for i in 0..n_r {
            dist_row(
                i,
                &qt_row0,
                &qt_col0,
                &qt_prev,
                &mut qt_next,
                &mut dist,
                &rstats,
                &qstats,
                &params,
            );
            stream_planes.push(dist.clone());
            std::mem::swap(&mut qt_prev, &mut qt_next);
        }
        (gemm_planes, stream_planes)
    }

    #[test]
    fn gemm_tracks_streaming_within_input_precision() {
        // The GEMM path rounds operands to the TC input format, so it is
        // NOT bit-identical to streaming FP32 — but with ≤ P unrolled
        // steps its distances must stay within a few input-ulps of it.
        let (gemm, stream) = run_both(8, Format::Fp16);
        let mut max_rel = 0.0f64;
        for (g, s) in gemm.iter().zip(stream.iter()) {
            for (a, b) in g.iter().zip(s.iter()) {
                if b.is_finite() && *b > 0.0 {
                    max_rel = max_rel.max(((a - b).abs() / b) as f64);
                }
            }
        }
        assert!(max_rel > 0.0, "operand rounding must actually happen");
        assert!(max_rel < 0.2, "FP16-TC drift vs streaming: {max_rel}");
        // TF32 shares FP16's 10-bit significand (wider exponent only), so
        // its drift sits in the same band; BF16's 7-bit significand rounds
        // harder and must drift more than TF32 on this panel.
        let rel = |planes: &[Vec<f32>]| {
            let mut worst = 0.0f64;
            for (g, s) in planes.iter().zip(stream.iter()) {
                for (a, b) in g.iter().zip(s.iter()) {
                    if b.is_finite() && *b > 0.0 {
                        worst = worst.max(((a - b).abs() / b) as f64);
                    }
                }
            }
            worst
        };
        let (gemm_tf32, _) = run_both(8, Format::Tf32);
        let (gemm_bf16, _) = run_both(8, Format::Bf16);
        assert!(rel(&gemm_tf32) < 0.2);
        assert!(rel(&gemm_bf16) > rel(&gemm_tf32), "BF16 rounds harder");
    }

    #[test]
    fn gemm_is_deterministic_and_chunk_sensitive() {
        let (a, _) = run_both(8, Format::Fp16);
        let (b, _) = run_both(8, Format::Fp16);
        assert_eq!(a, b, "same chunk width must be bit-identical");
        let (c, _) = run_both(4, Format::Fp16);
        assert_ne!(a, c, "chunk width is part of the numerical contract");
    }

    #[test]
    fn gemm_cost_amortizes_qt_traffic() {
        let (n, d) = (1024, 8);
        let stream = crate::kernels::dist::dist_cost(n, d, Format::Fp64).repeated(n as u64);
        let gemm = gemm_cost(n, n, d, 8, Format::Fp16);
        assert!(gemm.bytes() < stream.bytes() / 3, "panel reuse cuts DRAM");
        assert_eq!(gemm.launches, (n as u64).div_ceil(8));
        assert_eq!(gemm.tc, Some(Format::Fp16));
        assert!(gemm.frag_bytes > 0);
        // On the A100 model the whole-tile GEMM beats per-row streaming
        // FP64 dist_calc by at least the ISSUE's spec-derived floor of 2×.
        let model = TimingModel::new(mdmp_gpu_sim::DeviceSpec::a100());
        let t_stream = model.kernel_seconds(&stream);
        let t_gemm = model.kernel_seconds(&gemm);
        assert!(
            t_stream / t_gemm > 2.0,
            "modelled TC speedup {} too small",
            t_stream / t_gemm
        );
        // A TC mode's input format must round-trip the mode table.
        assert_eq!(PrecisionMode::Fp16Tc.tc_input(), Some(Format::Fp16));
    }
}

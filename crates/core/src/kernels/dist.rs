//! The `dist_calc` kernel: one row (plane) of the 3-D distance matrix per
//! invocation, via the mean-centered streaming dot product of Eq. 1:
//!
//! ```text
//! QT[i,j,k] = QT[i−1,j−1,k] + df_r[i,k]·dg_q[j,k] + df_q[j,k]·dg_r[i,k]
//! D[i,j,k]  = sqrt( 2m · (1 − QT[i,j,k] · inv_r[i,k] · inv_q[j,k]) )
//! ```
//!
//! Each simulated thread computes one `(j, k)` element of the plane; the
//! elements of a row are mutually independent (the recurrence couples
//! *successive rows* along diagonals), so the row is embarrassingly
//! parallel. Row 0 and column 0 come from the precalculation's naive dot
//! products.

use crate::precalc::Stats;
use mdmp_gpu_sim::{KernelClass, KernelCost};
use mdmp_precision::{Format, Real};
use rayon::prelude::*;

/// Scalar parameters of the distance computation.
#[derive(Debug, Clone, Copy)]
pub struct DistParams<T: Real> {
    /// `2m` in the working precision.
    pub two_m: T,
    /// Clamp `1 − corr` at zero before the square root.
    pub clamp: bool,
    /// Global index of the tile's first reference segment.
    pub row_offset: usize,
    /// Global index of the tile's first query segment.
    pub col_offset: usize,
    /// Self-join trivial-match exclusion half-width (`None` = AB-join).
    pub exclusion: Option<usize>,
}

impl<T: Real> DistParams<T> {
    /// Build parameters for a tile.
    pub fn new(
        m: usize,
        clamp: bool,
        row_offset: usize,
        col_offset: usize,
        exclusion: Option<usize>,
    ) -> DistParams<T> {
        DistParams {
            two_m: T::from_usize(2 * m),
            clamp,
            row_offset,
            col_offset,
            exclusion,
        }
    }
}

/// One step of the streaming QT recurrence (Eq. 1):
/// `QT[i,j,k] = QT[i−1,j−1,k] + df_r·dg_q + df_q·dg_r`.
///
/// Shared by the unfused [`dist_row`] and the fused row pass
/// (`kernels::fused`) so both paths evaluate the *same* floating-point
/// expression — association order included — and stay bit-identical.
#[inline(always)]
pub fn qt_step<T: Real>(prev: T, dfr: T, dgq: T, dfq: T, dgr: T) -> T {
    prev + dfr * dgq + dfq * dgr
}

/// The distance of one `(j, k)` element from its QT value:
/// `sqrt(2m · (1 − QT · inv_r · inv_q))`, with optional clamping of finite
/// negative correlation gaps and trivial-match exclusion. Shared by the
/// unfused and fused paths (see [`qt_step`]).
#[inline(always)]
pub fn dist_value<T: Real>(qt: T, inv_r: T, inv_q: T, two_m: T, clamp: bool, excluded: bool) -> T {
    if excluded {
        return T::infinity();
    }
    let corr_gap = T::one() - qt * inv_r * inv_q;
    // Clamp only *finite* overshoot (corr marginally above 1 from
    // rounding). A NaN gap — flat windows, overflowed intermediates — must
    // stay NaN so it can never win the min-update; `max(NaN, 0)` would
    // silently turn broken statistics into perfect matches.
    let gap = if clamp && corr_gap < T::zero() {
        T::zero()
    } else {
        corr_gap
    };
    (two_m * gap).sqrt()
}

/// Lane-parallel [`dist_value`]: `out[lane] = dist_value(qt[lane], inv_r,
/// inv_q[lane], two_m, clamp, excluded[lane])`, bit-for-bit (the unit test
/// pins this). Phrased as elementary per-phase loops — multiply/subtract,
/// clamp select, sqrt, exclusion select — so each phase vectorizes across
/// the `N` independent lanes; per lane the expression tree is exactly
/// [`dist_value`]'s (same association order, same select semantics: a NaN
/// gap stays NaN because `NaN < 0` is false).
#[inline(always)]
pub fn dist_value_lanes<T: Real, const N: usize>(
    qt: &[T; N],
    inv_r: T,
    inv_q: &[T],
    two_m: T,
    clamp: bool,
    excluded: &[bool; N],
    out: &mut [T],
) {
    let inv_q = &inv_q[..N];
    let out = &mut out[..N];
    let mut gap = [T::zero(); N];
    for lane in 0..N {
        gap[lane] = T::one() - qt[lane] * inv_r * inv_q[lane];
    }
    if clamp {
        for g in gap.iter_mut() {
            *g = if *g < T::zero() { T::zero() } else { *g };
        }
    }
    for lane in 0..N {
        out[lane] = (two_m * gap[lane]).sqrt();
    }
    // `select_unpredictable` keeps the exclusion mask a data select: left as
    // an `if`, LLVM guards the whole mul/sub/sqrt chain behind a per-lane
    // branch (sqrt is "expensive, don't speculate") and the loop scalarizes.
    for lane in 0..N {
        out[lane] = core::hint::select_unpredictable(excluded[lane], T::infinity(), out[lane]);
    }
}

/// Compute row `i` of the tile's distance matrix.
///
/// * `qt_row0` — precalculated `QT` for row 0 (`d × n_q`), used when `i == 0`;
/// * `qt_col0` — precalculated `QT` for column 0 (`d × n_r`), used at `j == 0`;
/// * `qt_prev` — the previous row's `QT` (`d × n_q`);
/// * `qt_next` — output `QT` for this row;
/// * `dist` — output distances for this row (`d × n_q`, dimension-major).
#[allow(clippy::too_many_arguments)]
pub fn dist_row<T: Real>(
    i: usize,
    qt_row0: &[T],
    qt_col0: &[T],
    qt_prev: &[T],
    qt_next: &mut [T],
    dist: &mut [T],
    rstats: &Stats<T>,
    qstats: &Stats<T>,
    params: &DistParams<T>,
) {
    let n_r = rstats.n;
    let n_q = qstats.n;
    debug_assert!(i < n_r);
    debug_assert_eq!(qt_next.len(), n_q * rstats.d);
    let global_i = params.row_offset + i;

    qt_next
        .par_chunks_mut(n_q)
        .zip(dist.par_chunks_mut(n_q))
        .enumerate()
        .for_each(|(k, (qt_k, dist_k))| {
            let dfr = rstats.df[k * n_r + i];
            let dgr = rstats.dg[k * n_r + i];
            let inv_r = rstats.inv[k * n_r + i];
            let dfq = &qstats.df[k * n_q..(k + 1) * n_q];
            let dgq = &qstats.dg[k * n_q..(k + 1) * n_q];
            let inv_q = &qstats.inv[k * n_q..(k + 1) * n_q];
            let row0_k = &qt_row0[k * n_q..(k + 1) * n_q];
            let prev_k = &qt_prev[k * n_q..(k + 1) * n_q];
            for j in 0..n_q {
                let qt = if i == 0 {
                    row0_k[j]
                } else if j == 0 {
                    qt_col0[k * n_r + i]
                } else {
                    qt_step(prev_k[j - 1], dfr, dgq[j], dfq[j], dgr)
                };
                qt_k[j] = qt;
                let excluded = match params.exclusion {
                    Some(excl) => global_i.abs_diff(params.col_offset + j) < excl,
                    None => false,
                };
                dist_k[j] = dist_value(qt, inv_r, inv_q[j], params.two_m, params.clamp, excluded);
            }
        });
}

/// Cost of one `dist_calc` launch over an `n_q × d` plane.
///
/// Effective DRAM traffic: read the previous QT plane, write the new QT
/// plane and the distance plane (the per-row `df/dg/inv` operand vectors are
/// charged as L2-resident — at paper scale they are ~n·d·B ≈ 33 MB, within
/// the A100's 40 MB L2). 8 FLOPs per element (two FMAs, normalize, sqrt).
pub fn dist_cost(n_q: usize, d: usize, format: Format) -> KernelCost {
    let elems = (n_q * d) as u64;
    let b = format.bytes() as u64;
    KernelCost {
        bytes_read: elems * b,
        bytes_written: 2 * elems * b,
        flops: 8 * elems,
        launches: 1,
        ..KernelCost::new(KernelClass::DistCalc, format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precalc::{compute_stats, initial_qt, SeriesDevice};
    use mdmp_data::stats::znorm_distance;
    use mdmp_data::MultiDimSeries;

    /// The lane-parallel form must be bit-identical to the scalar
    /// [`dist_value`] per lane — including NaN gaps, negative gaps with
    /// clamping on and off, and excluded lanes.
    #[test]
    fn dist_value_lanes_matches_scalar_bitwise() {
        const N: usize = 8;
        let qt: [f32; N] = [
            0.5,
            -3.25,
            f32::NAN,
            1.0e20,
            -0.0,
            7.125,
            f32::INFINITY,
            2.0,
        ];
        let inv_q: [f32; N] = [1.0, 0.25, 2.0, 1.0e-10, 3.0, -1.5, 0.5, 1.0];
        let excluded: [bool; N] = [false, true, false, false, true, false, false, false];
        for clamp in [false, true] {
            for inv_r in [0.75f32, -2.0] {
                let two_m = 16.0f32;
                let mut out = [0.0f32; N];
                dist_value_lanes::<f32, N>(&qt, inv_r, &inv_q, two_m, clamp, &excluded, &mut out);
                for lane in 0..N {
                    let scalar =
                        dist_value(qt[lane], inv_r, inv_q[lane], two_m, clamp, excluded[lane]);
                    assert_eq!(
                        out[lane].to_bits(),
                        scalar.to_bits(),
                        "lane {lane} diverged (clamp={clamp}, inv_r={inv_r})"
                    );
                }
            }
        }
    }

    fn series(seed: u64, d: usize, len: usize) -> MultiDimSeries {
        let dims: Vec<Vec<f64>> = (0..d)
            .map(|k| {
                (0..len)
                    .map(|t| {
                        let x = (t as f64 + seed as f64 * 13.0) * (0.11 + 0.03 * k as f64);
                        x.sin() + 0.3 * (x * 0.7).cos()
                    })
                    .collect()
            })
            .collect();
        MultiDimSeries::from_dims(dims)
    }

    /// Full streaming pass in f64 must reproduce brute-force z-norm
    /// distances — validates Eq. 1 and the df/dg update formula end to end.
    #[test]
    fn streaming_distances_match_brute_force_f64() {
        let m = 12;
        let r = series(1, 2, 90);
        let q = series(2, 2, 80);
        let rd = SeriesDevice::<f64>::load(&r, 0, 90);
        let qd = SeriesDevice::<f64>::load(&q, 0, 80);
        let rs = compute_stats(&rd, m, false);
        let qs = compute_stats(&qd, m, false);
        let (row0, col0) = initial_qt(&rd, &rs, &qd, &qs, m, false);
        let n_r = rs.n;
        let n_q = qs.n;
        let d = 2;
        let params = DistParams::<f64>::new(m, true, 0, 0, None);

        let mut qt_prev = vec![0.0; n_q * d];
        let mut qt_next = vec![0.0; n_q * d];
        let mut dist = vec![0.0; n_q * d];
        for i in 0..n_r {
            dist_row(
                i,
                &row0,
                &col0,
                &qt_prev,
                &mut qt_next,
                &mut dist,
                &rs,
                &qs,
                &params,
            );
            for k in 0..d {
                for j in 0..n_q {
                    let expected = znorm_distance(&r.dim(k)[i..i + m], &q.dim(k)[j..j + m]);
                    let got = dist[k * n_q + j];
                    // sqrt amplifies f64 rounding near zero distances:
                    // |err(D)| ~ sqrt(2m·eps) ~ 1e-7, so compare at 1e-6.
                    assert!(
                        (got - expected).abs() < 1e-6,
                        "D[{i},{j},{k}] = {got}, expected {expected}"
                    );
                }
            }
            std::mem::swap(&mut qt_prev, &mut qt_next);
        }
    }

    #[test]
    fn clamp_prevents_nan_from_correlation_overshoot() {
        // Construct stats that make corr slightly exceed 1.
        let m = 4;
        let stats = Stats::<f64> {
            n: 1,
            d: 1,
            mu: vec![0.0],
            inv: vec![1.0],
            df: vec![0.0],
            dg: vec![0.0],
        };
        let params_clamp = DistParams::<f64>::new(m, true, 0, 0, None);
        let params_raw = DistParams::<f64>::new(m, false, 0, 0, None);
        let row0 = vec![1.0 + 1e-9]; // corr > 1
        let col0 = vec![1.0 + 1e-9];
        let qt_prev = vec![0.0];
        let mut qt_next = vec![0.0];
        let mut dist = vec![0.0];
        dist_row(
            0,
            &row0,
            &col0,
            &qt_prev,
            &mut qt_next,
            &mut dist,
            &stats,
            &stats,
            &params_clamp,
        );
        assert_eq!(dist[0], 0.0, "clamped overshoot gives zero distance");
        dist_row(
            0,
            &row0,
            &col0,
            &qt_prev,
            &mut qt_next,
            &mut dist,
            &stats,
            &stats,
            &params_raw,
        );
        assert!(dist[0].is_nan(), "unclamped overshoot gives NaN");
    }

    #[test]
    fn exclusion_zone_marks_trivial_matches_infinite() {
        let m = 8;
        let s = series(3, 1, 60);
        let dev = SeriesDevice::<f64>::load(&s, 0, 60);
        let st = compute_stats(&dev, m, false);
        let (row0, col0) = initial_qt(&dev, &st, &dev, &st, m, false);
        let n = st.n;
        let params = DistParams::<f64>::new(m, true, 0, 0, Some(2));
        let qt_prev = vec![0.0; n];
        let mut qt_next = vec![0.0; n];
        let mut dist = vec![0.0; n];
        dist_row(
            0,
            &row0,
            &col0,
            &qt_prev,
            &mut qt_next,
            &mut dist,
            &st,
            &st,
            &params,
        );
        assert!(dist[0].is_infinite(), "self-match excluded");
        assert!(dist[1].is_infinite(), "|i-j| = 1 < 2 excluded");
        assert!(dist[2].is_finite());
    }

    #[test]
    fn row_offset_shifts_exclusion() {
        // Tile starting at global row 10: row i=0 is global row 10, so the
        // excluded columns sit around j = 10.
        let m = 8;
        let s = series(4, 1, 80);
        let dev = SeriesDevice::<f64>::load(&s, 0, 80);
        let st = compute_stats(&dev, m, false);
        let (row0, col0) = initial_qt(&dev, &st, &dev, &st, m, false);
        let n = st.n;
        let params = DistParams::<f64>::new(m, true, 10, 0, Some(1));
        let qt_prev = vec![0.0; n];
        let mut qt_next = vec![0.0; n];
        let mut dist = vec![0.0; n];
        dist_row(
            0,
            &row0,
            &col0,
            &qt_prev,
            &mut qt_next,
            &mut dist,
            &st,
            &st,
            &params,
        );
        assert!(dist[10].is_infinite());
        assert!(dist[9].is_finite());
        assert!(dist[11].is_finite());
    }

    #[test]
    fn cost_traffic_scales_with_format() {
        let c64 = dist_cost(1024, 16, Format::Fp64);
        let c16 = dist_cost(1024, 16, Format::Fp16);
        assert_eq!(c64.bytes(), 4 * c16.bytes());
        assert_eq!(c64.flops, c16.flops);
        assert_eq!(c64.launches, 1);
    }
}

//! The `update_mat_prof` kernel: merge the current iteration's inclusive-
//! average distances into the running matrix profile with a column-wise
//! min/argmin (Eq. 3).
//!
//! Each simulated thread owns one `(j, k)` profile element — embarrassingly
//! parallel, like the precalculation (§III-A). The update is strictly-less,
//! so among equal distances the earliest reference row wins, giving
//! deterministic indices; a NaN distance never wins.

use mdmp_gpu_sim::{KernelClass, KernelCost};
use mdmp_precision::{Format, Real};
use rayon::prelude::*;

/// Merge one scanned plane into the running profile.
///
/// * `scanned` — `j`-major plane (`n_q × d_pad`) from `sort_scan_row`;
/// * `p_plane` — running profile values (`d × n_q`, working precision);
/// * `i_plane` — running index plane (`d × n_q`, global reference indices);
/// * `global_row` — the global reference-segment index of this iteration.
pub fn update_profile_row<T: Real>(
    scanned: &[T],
    p_plane: &mut [T],
    i_plane: &mut [i64],
    n_q: usize,
    d: usize,
    global_row: i64,
) {
    let d_pad = d.next_power_of_two();
    debug_assert_eq!(scanned.len(), n_q * d_pad);
    debug_assert_eq!(p_plane.len(), n_q * d);
    p_plane
        .par_chunks_mut(n_q)
        .zip(i_plane.par_chunks_mut(n_q))
        .enumerate()
        .for_each(|(k, (pk, ik))| {
            for j in 0..n_q {
                let v = scanned[j * d_pad + k];
                if v < pk[j] {
                    pk[j] = v;
                    ik[j] = global_row;
                }
            }
        });
}

/// Cost of one `update_mat_prof` launch over an `n_q × d` plane.
///
/// DRAM: read the scanned plane and the profile plane; profile writes are
/// sparse after the first iterations (only improvements are written back),
/// charged at half a plane of values plus half a plane of 8-byte indices.
/// One comparison per element.
pub fn update_cost(n_q: usize, d: usize, format: Format) -> KernelCost {
    let elems = (n_q * d) as u64;
    let b = format.bytes() as u64;
    KernelCost {
        bytes_read: 2 * elems * b,
        bytes_written: elems * b / 2 + elems * 8 / 2,
        flops: elems,
        launches: 1,
        ..KernelCost::new(KernelClass::UpdateProfile, format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdmp_precision::Half;

    #[test]
    fn min_update_with_indices() {
        // 2 dims (d_pad = 2), 3 columns; scanned is j-major.
        let scanned = vec![
            5.0, 9.0, // j=0: k0=5, k1=9
            1.0, 2.0, // j=1
            7.0, 7.0, // j=2
        ];
        let mut p = vec![6.0, 3.0, 7.0, 10.0, 1.0, 7.0]; // k-major
        let mut i = vec![0i64, 0, 0, 0, 0, 0];
        update_profile_row(&scanned, &mut p, &mut i, 3, 2, 42);
        assert_eq!(p, vec![5.0, 1.0, 7.0, 9.0, 1.0, 7.0]);
        // Strictly-less: ties (7.0 at j=2) keep the old index.
        assert_eq!(i, vec![42, 42, 0, 42, 0, 0]);
    }

    #[test]
    fn nan_never_updates() {
        let scanned = vec![f64::NAN, f64::NAN];
        let mut p = vec![5.0, f64::INFINITY];
        let mut i = vec![7i64, -1];
        update_profile_row(&scanned, &mut p, &mut i, 1, 2, 9);
        assert_eq!(p[0], 5.0);
        assert!(p[1].is_infinite());
        assert_eq!(i, vec![7, -1]);
    }

    #[test]
    fn infinity_replaced_by_finite() {
        let scanned = vec![3.5, 4.5];
        let mut p = vec![f64::INFINITY, f64::INFINITY];
        let mut i = vec![-1i64, -1];
        update_profile_row(&scanned, &mut p, &mut i, 1, 2, 0);
        assert_eq!(p, vec![3.5, 4.5]);
        assert_eq!(i, vec![0, 0]);
    }

    #[test]
    fn works_in_half_precision() {
        let scanned: Vec<Half> = [1.5, 2.5, 0.5, 9.0]
            .iter()
            .map(|&v| Half::from_f64(v))
            .collect();
        let mut p = vec![Half::from_f64(2.0); 4];
        let mut i = vec![-1i64; 4];
        // 2 columns, 2 dims, d_pad = 2.
        update_profile_row(&scanned, &mut p, &mut i, 2, 2, 3);
        assert_eq!(p[0].to_f64(), 1.5); // k0, j0
        assert_eq!(p[1].to_f64(), 0.5); // k0, j1
        assert_eq!(p[2].to_f64(), 2.0); // k1, j0 unchanged (2.5 > 2.0)
        assert_eq!(p[3].to_f64(), 2.0); // k1, j1 unchanged (9 > 2)
        assert_eq!(i, vec![3, 3, -1, -1]);
    }

    #[test]
    fn padded_dims_are_skipped() {
        // d = 3, d_pad = 4: the padding slot (k=3) must never be read as a
        // real dimension.
        let scanned = vec![1.0, 2.0, 3.0, f64::INFINITY];
        let mut p = vec![9.0; 3];
        let mut i = vec![-1i64; 3];
        update_profile_row(&scanned, &mut p, &mut i, 1, 3, 5);
        assert_eq!(p, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn cost_shape() {
        let c = update_cost(100, 8, Format::Fp32);
        assert_eq!(c.class, KernelClass::UpdateProfile);
        assert_eq!(c.flops, 800);
        assert!(c.bytes_written > 0);
        assert_eq!(c.barriers, 0);
    }
}

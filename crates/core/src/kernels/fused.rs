//! The fused per-row pass: `dist_calc → sort_&_incl_scan →
//! update_mat_prof` as **one** dispatch per reference row.
//!
//! The unfused pipeline launches three host dispatches per row and
//! materializes an intermediate `scanned` plane between the second and
//! third. The fused pass walks the row once, column chunk by column chunk:
//! for every query column `j` it evaluates the streaming QT/dist update
//! (Eq. 1) into a `d_pad` fiber, runs the *identical* Bitonic comparator
//! network and Hillis–Steele scan order on that fiber in place (Eq. 2), and
//! folds the strictly-less min/argmin straight into the profile planes
//! (Eq. 3) — two of three dispatches and the `scanned` plane are gone.
//!
//! ## Bit-identity to the unfused path
//!
//! Every floating-point expression is shared with the unfused kernels:
//! [`qt_step`]/[`dist_value`] with `dist_calc`, the cached comparator
//! schedule and divisor table with `sort_&_incl_scan`
//! ([`comparator_schedule`], [`scan_divisors`]), and the strictly-less
//! update with `update_mat_prof`. Elements of a row are mutually
//! independent (the QT recurrence couples *successive rows*), so changing
//! the traversal from three plane sweeps to one column sweep reorders only
//! independent operations — the value computed for every `(j, k)` is the
//! same expression over the same inputs, hence the same bits, and the
//! strictly-less fold over rows `i = 0, 1, …` preserves argmin ties
//! (earliest row wins) exactly.
//!
//! ## Plane layout and lane batching
//!
//! The fused path keeps its planes **`k`-major** (`d × n_q`), the same
//! layout as the unfused kernels: the recurrence reads the previous row's
//! QT at `j − 1` — one element to the left in the same plane row — and all
//! query-side statistics are contiguous in `j`. Columns are processed
//! [`LANES`] at a time through a small structure-of-arrays scratch block
//! (`d_pad × LANES`, lane-minor): the comparator network, the
//! Hillis–Steele scan and the min fold run the *same* per-fiber operation
//! sequence on `LANES` independent fibers in lock-step — straight-line
//! loops over a contiguous lane axis the compiler turns into SIMD, the
//! host analogue of the GPU kernel's thread-per-column mapping. Lanes
//! never interact, so each fiber sees exactly the scalar sequence and the
//! results stay bit-identical; the remainder columns (and the `j = 0`
//! initial-QT column) take the scalar path, which shares every
//! expression.
//!
//! For multi-worker dispatch each `k`-plane is pre-split into one
//! contiguous sub-slice per column chunk (safe disjoint `&mut` views — no
//! locks, no unsafe), so chunk boundaries cannot affect results.

use super::dist::{dist_value, dist_value_lanes, qt_step, DistParams};
use super::sort_scan::{bitonic_sort_fiber, inclusive_scan_avg_with, Comparator};
use super::{dist_cost, sort_scan_cost, update_cost};
use crate::precalc::Stats;
use mdmp_gpu_sim::KernelCost;
use mdmp_precision::{Format, Real};
use rayon::prelude::*;

/// Fibers processed per structure-of-arrays group: 8 × f32 fills one
/// 256-bit vector; wider types simply split into two.
pub const LANES: usize = 8;

/// One lane-parallel compare-exchange of the Bitonic network: the same
/// key-compare/select as the scalar network, applied to corresponding
/// elements of `LANES` independent fibers. `ii`/`ll` are the flat offsets
/// of the two compared fiber positions (`ii < ll`).
///
/// Phrased as three elementary lane loops — compare, key select, value
/// select — with [`core::hint::select_unpredictable`] so each loop
/// vectorizes; a single loop with `if` selects fully unrolls into scalar
/// `cmov` chains instead. The per-lane semantics are exactly the scalar
/// network's: swap iff strictly out of order.
#[inline(always)]
fn lane_compare_exchange<T: Real, const ASC: bool>(
    keys: &mut [T::SortKey],
    vals: &mut [T],
    ii: usize,
    ll: usize,
) {
    use core::hint::select_unpredictable as sel;
    let (khead, ktail) = keys.split_at_mut(ll);
    let ka = &mut khead[ii..ii + LANES];
    let kb = &mut ktail[..LANES];
    let (vhead, vtail) = vals.split_at_mut(ll);
    let va = &mut vhead[ii..ii + LANES];
    let vb = &mut vtail[..LANES];
    let mut ooo = [false; LANES];
    for lane in 0..LANES {
        let (kx, ky) = (ka[lane], kb[lane]);
        ooo[lane] = if ASC { kx > ky } else { kx < ky };
    }
    for lane in 0..LANES {
        let (kx, ky) = (ka[lane], kb[lane]);
        ka[lane] = sel(ooo[lane], ky, kx);
        kb[lane] = sel(ooo[lane], kx, ky);
    }
    for lane in 0..LANES {
        let (x, y) = (va[lane], vb[lane]);
        va[lane] = sel(ooo[lane], y, x);
        vb[lane] = sel(ooo[lane], x, y);
    }
}

/// One column chunk's disjoint mutable views of the QT-next, profile, and
/// index planes (`views[k]` is plane `k`'s `j`-range for the chunk).
type ChunkViews<'a, T> = (Vec<&'a mut [T]>, Vec<&'a mut [T]>, Vec<&'a mut [i64]>);

/// Split each of the `d` `k`-major plane rows into one contiguous sub-slice
/// per column chunk: `result[chunk][k]` is that chunk's `j`-range of plane
/// `k`. Disjoint `&mut` views — chunked workers write without locks.
fn split_plane_chunks<V>(plane: &mut [V], n_q: usize, cols_per: usize) -> Vec<Vec<&mut [V]>> {
    let n_chunks = n_q.div_ceil(cols_per);
    let mut parts: Vec<Vec<&mut [V]>> = (0..n_chunks).map(|_| Vec::new()).collect();
    for row in plane.chunks_mut(n_q) {
        let mut rest = row;
        for chunk in parts.iter_mut() {
            let take = cols_per.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            chunk.push(head);
            rest = tail;
        }
    }
    parts
}

/// Execute one fused row pass.
///
/// * `qt_row0` / `qt_col0` — precalculated initial QT (dimension-major,
///   as produced by the precalculation);
/// * `qt_prev` / `qt_next` — the QT double buffer, **`k`-major**
///   (`d × n_q`, same layout as the unfused pipeline);
/// * `p_plane` / `i_plane` — running profile and index planes, `k`-major;
/// * `schedule` / `divisors` — per-`d_pad` comparator schedule and
///   per-`d` divisor table (hoisted out by the caller, once per tile);
/// * `global_row` — the global reference-segment index of row `i`.
///
/// The per-column fibers live in a small per-worker scratch block, not a
/// plane: fusion eliminates both the unfused `dist` and `scanned` planes.
#[allow(clippy::too_many_arguments)]
pub fn fused_row<T: Real>(
    i: usize,
    qt_row0: &[T],
    qt_col0: &[T],
    qt_prev: &[T],
    qt_next: &mut [T],
    p_plane: &mut [T],
    i_plane: &mut [i64],
    rstats: &Stats<T>,
    qstats: &Stats<T>,
    params: &DistParams<T>,
    schedule: &[Comparator],
    divisors: &[T],
    global_row: i64,
) {
    let n_r = rstats.n;
    let n_q = qstats.n;
    let d = rstats.d;
    let d_pad = d.next_power_of_two();
    debug_assert!(i < n_r);
    debug_assert_eq!(qt_next.len(), n_q * d);
    debug_assert_eq!(p_plane.len(), n_q * d);
    debug_assert_eq!(i_plane.len(), n_q * d);
    debug_assert_eq!(divisors.len(), d);
    let global_i = params.row_offset + i;

    // This row's reference-side operands, gathered once for all columns.
    let rdf: Vec<T> = (0..d).map(|k| rstats.df[k * n_r + i]).collect();
    let rdg: Vec<T> = (0..d).map(|k| rstats.dg[k * n_r + i]).collect();
    let rinv: Vec<T> = (0..d).map(|k| rstats.inv[k * n_r + i]).collect();
    let (rdf, rdg, rinv) = (&rdf[..], &rdg[..], &rinv[..]);

    // One contiguous column chunk per worker — the whole row is a single
    // dispatch regardless of worker count, and chunk boundaries cannot
    // affect results (columns are independent).
    let cols_per = n_q.div_ceil(rayon::current_num_threads().max(1));
    let qn_parts = split_plane_chunks(qt_next, n_q, cols_per);
    let pc_parts = split_plane_chunks(p_plane, n_q, cols_per);
    let ic_parts = split_plane_chunks(i_plane, n_q, cols_per);
    let tasks: Vec<(usize, ChunkViews<'_, T>)> = qn_parts
        .into_iter()
        .zip(pc_parts)
        .zip(ic_parts)
        .map(|((qn, pc), ic)| (qn, pc, ic))
        .enumerate()
        .collect();

    tasks.into_par_iter().for_each(|(ci, (qn, pc, ic))| {
        let j0 = ci * cols_per;
        let chunk_cols = qn[0].len();
        let mut qn = qn;
        let mut pc = pc;
        let mut ic = ic;

        // Per-worker SoA scratch: LANES fibers side by side (`k`-major,
        // lane-minor) plus their integer sort keys.
        let mut fib = vec![T::zero(); d_pad * LANES];
        let mut keys = vec![T::zero().sort_key(); d_pad * LANES];

        // Scalar path for one column (j = 0 peel and lane remainder):
        // identical expressions, same comparator/scan sequence.
        let scalar_column = |jj: usize,
                             qn: &mut [&mut [T]],
                             pc: &mut [&mut [T]],
                             ic: &mut [&mut [i64]],
                             fiber: &mut [T]| {
            let j = j0 + jj;
            let excluded = match params.exclusion {
                Some(excl) => global_i.abs_diff(params.col_offset + j) < excl,
                None => false,
            };
            for k in 0..d {
                let qt = if i == 0 {
                    qt_row0[k * n_q + j]
                } else if j == 0 {
                    qt_col0[k * n_r + i]
                } else {
                    qt_step(
                        qt_prev[k * n_q + j - 1],
                        rdf[k],
                        qstats.dg[k * n_q + j],
                        qstats.df[k * n_q + j],
                        rdg[k],
                    )
                };
                qn[k][jj] = qt;
                fiber[k] = dist_value(
                    qt,
                    rinv[k],
                    qstats.inv[k * n_q + j],
                    params.two_m,
                    params.clamp,
                    excluded,
                );
            }
            for pad in fiber[d..].iter_mut() {
                *pad = T::infinity();
            }
            bitonic_sort_fiber(fiber, schedule);
            inclusive_scan_avg_with(fiber, d, divisors);
            for k in 0..d {
                let v = fiber[k];
                if v < pc[k][jj] {
                    pc[k][jj] = v;
                    ic[k][jj] = global_row;
                }
            }
        };

        let mut jj = 0;
        // Peel the initial-QT column so the lane path only ever runs the
        // streaming recurrence (j ≥ 1).
        if i > 0 && j0 == 0 && chunk_cols > 0 {
            let (fiber, _) = fib.split_at_mut(d_pad);
            scalar_column(0, &mut qn, &mut pc, &mut ic, fiber);
            jj = 1;
        }
        while jj + LANES <= chunk_cols {
            let jbase = j0 + jj;
            let mut excluded = [false; LANES];
            if let Some(excl) = params.exclusion {
                for (lane, e) in excluded.iter_mut().enumerate() {
                    *e = global_i.abs_diff(params.col_offset + jbase + lane) < excl;
                }
            }
            // Dist phase: LANES QT updates + distances per dimension. With
            // k-major planes every read and write is contiguous in j.
            for k in 0..d {
                let mut qt = [T::zero(); LANES];
                if i == 0 {
                    qt.copy_from_slice(&qt_row0[k * n_q + jbase..][..LANES]);
                } else {
                    let prev = &qt_prev[k * n_q + jbase - 1..][..LANES];
                    let qdg = &qstats.dg[k * n_q + jbase..][..LANES];
                    let qdf = &qstats.df[k * n_q + jbase..][..LANES];
                    for lane in 0..LANES {
                        qt[lane] = qt_step(prev[lane], rdf[k], qdg[lane], qdf[lane], rdg[k]);
                    }
                }
                qn[k][jj..jj + LANES].copy_from_slice(&qt);
                let qinv = &qstats.inv[k * n_q + jbase..][..LANES];
                let frow = &mut fib[k * LANES..(k + 1) * LANES];
                dist_value_lanes::<T, LANES>(
                    &qt,
                    rinv[k],
                    qinv,
                    params.two_m,
                    params.clamp,
                    &excluded,
                    frow,
                );
            }
            for pad in fib[d * LANES..].iter_mut() {
                *pad = T::infinity();
            }
            // Sort: the schedule's comparator sequence, each applied to all
            // LANES fibers in lock-step.
            for (idx, key) in keys.iter_mut().enumerate() {
                *key = fib[idx].sort_key();
            }
            for &(ci_, li, ascending) in schedule {
                let (ii, ll) = (ci_ as usize * LANES, li as usize * LANES);
                if ascending {
                    lane_compare_exchange::<T, true>(&mut keys, &mut fib, ii, ll);
                } else {
                    lane_compare_exchange::<T, false>(&mut keys, &mut fib, ii, ll);
                }
            }
            // Hillis–Steele inclusive scan + divide, lane-parallel with the
            // scalar association order per fiber.
            let mut s = 1;
            while s < d {
                let mut k = d - 1;
                while k >= s {
                    let (lo, hi) = fib.split_at_mut(k * LANES);
                    let src = &lo[(k - s) * LANES..(k - s + 1) * LANES];
                    let dst = &mut hi[..LANES];
                    for lane in 0..LANES {
                        dst[lane] += src[lane];
                    }
                    k -= 1;
                }
                s <<= 1;
            }
            for k in 0..d {
                let div = divisors[k];
                let frow = &mut fib[k * LANES..(k + 1) * LANES];
                for f in frow.iter_mut() {
                    *f = *f / div;
                }
            }
            // Strictly-less min fold into the k-major profile planes —
            // select form of `if v < p { p = v; i = row }`, contiguous per
            // dimension.
            for k in 0..d {
                let frow = &fib[k * LANES..(k + 1) * LANES];
                let pk = &mut pc[k][jj..jj + LANES];
                let ik = &mut ic[k][jj..jj + LANES];
                let mut better = [false; LANES];
                for lane in 0..LANES {
                    better[lane] = frow[lane] < pk[lane];
                }
                for lane in 0..LANES {
                    pk[lane] = core::hint::select_unpredictable(better[lane], frow[lane], pk[lane]);
                }
                for lane in 0..LANES {
                    ik[lane] = core::hint::select_unpredictable(better[lane], global_row, ik[lane]);
                }
            }
            jj += LANES;
        }
        while jj < chunk_cols {
            let (fiber, _) = fib.split_at_mut(d_pad);
            scalar_column(jj, &mut qn, &mut pc, &mut ic, fiber);
            jj += 1;
        }
    });
}

/// Dispatches eliminated per fused row relative to the three-kernel
/// pipeline (`dist_calc` + `sort_&_incl_scan` + `update_mat_prof` → one).
pub const DISPATCHES_ELIMINATED_PER_ROW: u64 = 2;

/// The modelled cost of one fused row launch: the three component kernels'
/// device-side work (traffic, FLOPs, shared-memory ops, intra-kernel
/// barriers) with their launches collapsed to **one** and a grid-wide sync
/// per eliminated launch boundary (see [`KernelCost::fuse`]).
///
/// The driver's ledger still charges the three per-class costs so the
/// paper's Fig. 4/5 breakdowns (and modeled device seconds) are unchanged —
/// on the modelled GPU, the fused kernel's cooperative grid syncs cost what
/// the launches they replace cost; what fusion removes is *host* dispatch
/// overhead. This cost exists to quantify the launch collapse.
pub fn fused_row_cost(n_q: usize, d: usize, format: Format) -> KernelCost {
    KernelCost::fuse(&[
        dist_cost(n_q, d, format),
        sort_scan_cost(n_q, d, format),
        update_cost(n_q, d, format),
    ])
}

#[cfg(test)]
mod tests {
    use super::super::{
        comparator_schedule, dist_row, scan_divisors, sort_scan_row, update_profile_row,
    };
    use super::*;
    use crate::precalc::{compute_stats, initial_qt, SeriesDevice};
    use mdmp_data::MultiDimSeries;
    use mdmp_gpu_sim::KernelClass;
    use mdmp_precision::Half;

    fn series(seed: u64, d: usize, len: usize) -> MultiDimSeries {
        let dims: Vec<Vec<f64>> = (0..d)
            .map(|k| {
                (0..len)
                    .map(|t| {
                        let x = (t as f64 + seed as f64 * 7.0) * (0.09 + 0.04 * k as f64);
                        x.sin() + 0.25 * (1.7 * x).cos()
                    })
                    .collect()
            })
            .collect();
        MultiDimSeries::from_dims(dims)
    }

    /// Drive both pipelines over a full tile and compare every plane
    /// bitwise, row by row.
    fn assert_fused_matches_unfused<T: Real>(d: usize, m: usize, exclusion: Option<usize>) {
        let r = series(1, d, 70 + m);
        let q = series(2, d, 60 + m);
        let rd = SeriesDevice::<T>::load(&r, 0, 70 + m);
        let qd = SeriesDevice::<T>::load(&q, 0, 60 + m);
        let rstats = compute_stats(&rd, m, false);
        let qstats = compute_stats(&qd, m, false);
        let (qt_row0, qt_col0) = initial_qt(&rd, &rstats, &qd, &qstats, m, false);
        let (n_r, n_q) = (rstats.n, qstats.n);
        let d_pad = d.next_power_of_two();
        let params = DistParams::<T>::new(m, true, 0, 0, exclusion);
        let schedule = comparator_schedule(d_pad);
        let divisors = scan_divisors::<T>(d);

        // Unfused reference (k-major planes).
        let mut u_qt_prev = vec![T::zero(); n_q * d];
        let mut u_qt_next = vec![T::zero(); n_q * d];
        let mut u_dist = vec![T::zero(); n_q * d];
        let mut u_scanned = vec![T::zero(); n_q * d_pad];
        let mut u_p = vec![T::infinity(); n_q * d];
        let mut u_i = vec![-1i64; n_q * d];

        // Fused (k-major planes, same layout as unfused).
        let mut f_qt_prev = vec![T::zero(); n_q * d];
        let mut f_qt_next = vec![T::zero(); n_q * d];
        let mut f_p = vec![T::infinity(); n_q * d];
        let mut f_i = vec![-1i64; n_q * d];

        for i in 0..n_r {
            dist_row(
                i,
                &qt_row0,
                &qt_col0,
                &u_qt_prev,
                &mut u_qt_next,
                &mut u_dist,
                &rstats,
                &qstats,
                &params,
            );
            sort_scan_row(&u_dist, &mut u_scanned, n_q, d);
            update_profile_row(&u_scanned, &mut u_p, &mut u_i, n_q, d, i as i64);
            std::mem::swap(&mut u_qt_prev, &mut u_qt_next);

            fused_row(
                i,
                &qt_row0,
                &qt_col0,
                &f_qt_prev,
                &mut f_qt_next,
                &mut f_p,
                &mut f_i,
                &rstats,
                &qstats,
                &params,
                &schedule,
                &divisors,
                i as i64,
            );
            std::mem::swap(&mut f_qt_prev, &mut f_qt_next);

            for k in 0..d {
                for j in 0..n_q {
                    assert_eq!(
                        u_qt_prev[k * n_q + j].to_f64().to_bits(),
                        f_qt_prev[k * n_q + j].to_f64().to_bits(),
                        "QT diverged at row {i}, (j={j}, k={k})"
                    );
                }
            }
        }
        for k in 0..d {
            for j in 0..n_q {
                assert_eq!(
                    u_p[k * n_q + j].to_f64().to_bits(),
                    f_p[k * n_q + j].to_f64().to_bits(),
                    "profile diverged at (j={j}, k={k})"
                );
                assert_eq!(
                    u_i[k * n_q + j],
                    f_i[k * n_q + j],
                    "argmin diverged at (j={j}, k={k})"
                );
            }
        }
    }

    #[test]
    fn fused_matches_unfused_f64() {
        assert_fused_matches_unfused::<f64>(3, 10, None);
    }

    #[test]
    fn fused_matches_unfused_f32_with_exclusion() {
        assert_fused_matches_unfused::<f32>(2, 8, Some(4));
    }

    #[test]
    fn fused_matches_unfused_half() {
        assert_fused_matches_unfused::<Half>(4, 12, None);
    }

    #[test]
    fn fused_cost_is_one_launch_with_component_work() {
        let fmt = Format::Fp32;
        let (n_q, d) = (256, 8);
        let fused = fused_row_cost(n_q, d, fmt);
        let parts = [
            dist_cost(n_q, d, fmt),
            sort_scan_cost(n_q, d, fmt),
            update_cost(n_q, d, fmt),
        ];
        assert_eq!(fused.class, KernelClass::FusedRow);
        assert_eq!(fused.launches, 1);
        assert_eq!(fused.flops, parts.iter().map(|c| c.flops).sum::<u64>());
        assert_eq!(fused.bytes(), parts.iter().map(|c| c.bytes()).sum::<u64>());
        assert_eq!(
            fused.barriers,
            parts.iter().map(|c| c.barriers).sum::<u64>() + DISPATCHES_ELIMINATED_PER_ROW
        );
    }
}

//! The three per-iteration GPU kernels of Pseudocode 1 and their cost
//! models.
//!
//! Each kernel comes in two parts: a **functional** implementation (exact
//! arithmetic semantics of the paper's CUDA kernel, executed data-parallel
//! on the host) and a **cost function** producing the
//! [`mdmp_gpu_sim::KernelCost`] charged to the simulated device. The
//! effective-traffic coefficients encode which operands hit DRAM versus
//! stay resident in L2/shared memory; they are part of the performance-model
//! calibration documented in EXPERIMENTS.md.

pub mod dist;
pub mod fused;
pub mod gemm;
pub mod sort_scan;
pub mod update;

pub use dist::{dist_cost, dist_row, DistParams};
pub use fused::{fused_row, fused_row_cost, DISPATCHES_ELIMINATED_PER_ROW};
pub use gemm::{gemm_accumulate, gemm_cost, gemm_row};
pub use sort_scan::{
    bitonic_sort, comparator_schedule, inclusive_scan_avg, scan_divisors, sort_scan_cost,
    sort_scan_row, Comparator,
};
pub use update::{update_cost, update_profile_row};

use mdmp_gpu_sim::{KernelClass, KernelCost};
use mdmp_precision::Format;

/// Cost of the `precalculation` kernel for a tile with `n_r` reference
/// segments, `n_q` query segments, segment length `m` and `d` dimensions.
///
/// Work: windowed running sums and derived vectors O((n_r+n_q)·d), plus the
/// naive initial dot products — `n_q + n_r` mean-centered dot products of
/// length `m` per dimension. Kahan compensation (FP16C) quadruples the
/// additions of the summation part; the paper observes (and the model
/// reproduces) that this "does not result in any significant overhead".
pub fn precalc_cost(
    n_r: usize,
    n_q: usize,
    m: usize,
    d: usize,
    format: Format,
    kahan: bool,
) -> KernelCost {
    let b = format.bytes() as u64;
    let nd = ((n_r + n_q) * d) as u64;
    let input = ((n_r + n_q + 2 * m) * d) as u64;
    let sum_flops = 10 * nd * if kahan { 4 } else { 1 };
    let dot_flops = (2 * (n_r + n_q) * m * d) as u64 * if kahan { 4 } else { 1 };
    KernelCost {
        bytes_read: input * b,
        bytes_written: 4 * nd * b, // mu, inv, df, dg
        flops: sum_flops + dot_flops,
        launches: 2,
        ..KernelCost::new(KernelClass::Precalc, format)
    }
}

/// Host→device input bytes for a tile (both series windows).
pub fn h2d_bytes(n_r: usize, n_q: usize, m: usize, d: usize, format: Format) -> u64 {
    (((n_r + m - 1) + (n_q + m - 1)) * d * format.bytes()) as u64
}

/// Host→device bytes when a tile's precalculation is served from a cache:
/// instead of the raw input windows, the host ships the precomputed arrays —
/// four rolling-statistics vectors per series plus the initial QT row and
/// column.
pub fn h2d_bytes_cached(n_r: usize, n_q: usize, d: usize, format: Format) -> u64 {
    (5 * (n_r + n_q) * d * format.bytes()) as u64
}

/// Device→host result bytes for a tile (profile in the working format plus
/// 64-bit indices).
pub fn d2h_bytes(n_q: usize, d: usize, format: Format) -> u64 {
    (n_q * d * (format.bytes() + 8)) as u64
}

/// Device-memory working set of one tile: input windows, precalculation
/// outputs for both series, the QT double buffer, the distance row-plane,
/// the sorted/scanned plane (padded to a power of two), and the running
/// profile + index planes.
pub fn tile_device_bytes(n_r: usize, n_q: usize, m: usize, d: usize, format: Format) -> u64 {
    let b = format.bytes() as u64;
    let d_pad = d.next_power_of_two() as u64;
    let inputs = h2d_bytes(n_r, n_q, m, d, format);
    let stats = 4 * ((n_r + n_q) * d) as u64 * b;
    let qt_init = ((n_r + n_q) * d) as u64 * b;
    let qt_buffers = 2 * (n_q * d) as u64 * b;
    let dist_plane = (n_q * d) as u64 * b;
    let sorted_plane = n_q as u64 * d_pad * b;
    let profile = (n_q * d) as u64 * (b + 8);
    inputs + stats + qt_init + qt_buffers + dist_plane + sorted_plane + profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precalc_cost_scales_linearly_and_kahan_is_cheap() {
        let a = precalc_cost(1000, 1000, 64, 8, Format::Fp64, false);
        let b = precalc_cost(2000, 2000, 64, 8, Format::Fp64, false);
        assert_eq!(b.bytes_written, 2 * a.bytes_written);
        let k = precalc_cost(1000, 1000, 64, 8, Format::Fp16, true);
        let p = precalc_cost(1000, 1000, 64, 8, Format::Fp16, false);
        assert_eq!(k.flops, 4 * p.flops);
        assert_eq!(k.bytes(), p.bytes(), "kahan adds no traffic");
    }

    #[test]
    fn transfer_sizes() {
        // 2 windows of (n+m-1)·d elements.
        assert_eq!(
            h2d_bytes(100, 100, 8, 2, Format::Fp64),
            (107 * 2 * 2 * 8) as u64
        );
        assert_eq!(d2h_bytes(100, 2, Format::Fp16), (100 * 2 * 10) as u64);
    }

    #[test]
    fn tile_bytes_scale_with_format() {
        let fp64 = tile_device_bytes(1 << 12, 1 << 12, 64, 64, Format::Fp64);
        let fp16 = tile_device_bytes(1 << 12, 1 << 12, 64, 64, Format::Fp16);
        assert!(fp16 < fp64);
        // Index plane (8 B) is format-independent, so not a clean 4×.
        assert!(fp64 / fp16 >= 3);
        // Paper-scale single tile fits an A100 (40 GB).
        let paper = tile_device_bytes(1 << 16, 1 << 16, 64, 64, Format::Fp64);
        assert!(paper < 40 * (1 << 30));
    }
}

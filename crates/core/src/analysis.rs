//! Downstream analysis on a computed matrix profile: motif discovery,
//! discord (anomaly) detection, and motif subspace identification — the
//! applications the paper's introduction motivates (pattern mining,
//! anomaly inspection, similarity search).

use crate::profile::MatrixProfile;
use mdmp_data::stats::znorm_distance;
use mdmp_data::MultiDimSeries;

/// A discovered motif: the query segment, its best reference match and the
/// (k+1)-dimensional inclusive-average distance between them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Motif {
    /// Query segment position.
    pub query_pos: usize,
    /// Matched reference segment position.
    pub match_pos: usize,
    /// The (k+1)-dimensional profile distance.
    pub distance: f64,
    /// Dimensionality index `k` (the motif spans `k+1` dimensions).
    pub k: usize,
}

/// A discord (anomaly): the query segment whose *best* match is worst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Discord {
    /// Query segment position.
    pub query_pos: usize,
    /// Its (distant) nearest-neighbour distance.
    pub distance: f64,
    /// Dimensionality index `k`.
    pub k: usize,
}

/// The `top` lowest-distance, mutually non-overlapping motifs of the
/// k-dimensional profile. Two motifs overlap when either their query or
/// their match segments are closer than `m`.
pub fn top_motifs(profile: &MatrixProfile, k: usize, m: usize, top: usize) -> Vec<Motif> {
    assert!(k < profile.dims(), "dimension out of range");
    let mut candidates: Vec<Motif> = profile
        .profile_dim(k)
        .iter()
        .zip(profile.index_dim(k))
        .enumerate()
        .filter(|(_, (p, i))| p.is_finite() && **i >= 0)
        .map(|(j, (&p, &i))| Motif {
            query_pos: j,
            match_pos: i as usize,
            distance: p,
            k,
        })
        .collect();
    candidates.sort_by(|a, b| a.distance.partial_cmp(&b.distance).unwrap());
    let mut picked: Vec<Motif> = Vec::new();
    for c in candidates {
        let overlaps = picked.iter().any(|p| {
            c.query_pos.abs_diff(p.query_pos) < m || c.match_pos.abs_diff(p.match_pos) < m
        });
        if !overlaps {
            picked.push(c);
            if picked.len() == top {
                break;
            }
        }
    }
    picked
}

/// The `top` highest-distance, non-overlapping discords of the
/// k-dimensional profile (entries with no finite match are skipped —
/// absence of a match is a data artefact, not an anomaly score).
pub fn top_discords(profile: &MatrixProfile, k: usize, m: usize, top: usize) -> Vec<Discord> {
    assert!(k < profile.dims(), "dimension out of range");
    let mut candidates: Vec<Discord> = profile
        .profile_dim(k)
        .iter()
        .enumerate()
        .filter(|(_, p)| p.is_finite())
        .map(|(j, &p)| Discord {
            query_pos: j,
            distance: p,
            k,
        })
        .collect();
    candidates.sort_by(|a, b| b.distance.partial_cmp(&a.distance).unwrap());
    let mut picked: Vec<Discord> = Vec::new();
    for c in candidates {
        if picked
            .iter()
            .all(|p| c.query_pos.abs_diff(p.query_pos) >= m)
        {
            picked.push(c);
            if picked.len() == top {
                break;
            }
        }
    }
    picked
}

/// The motif **subspace**: which `k+1` dimensions the (k+1)-dimensional
/// match between query segment `query_pos` and reference segment
/// `match_pos` is composed of — the dimensions with the smallest per-
/// dimension z-normalized distances (the dimensions the sorted inclusive
/// average of Eq. 2 selected). Returned sorted by distance, ascending.
pub fn motif_subspace(
    reference: &MultiDimSeries,
    query: &MultiDimSeries,
    m: usize,
    query_pos: usize,
    match_pos: usize,
    k: usize,
) -> Vec<usize> {
    let d = reference.dims();
    assert_eq!(d, query.dims(), "dimensionality mismatch");
    assert!(k < d, "k out of range");
    assert!(
        match_pos + m <= reference.len(),
        "match segment out of range"
    );
    assert!(query_pos + m <= query.len(), "query segment out of range");
    let mut dims: Vec<(usize, f64)> = (0..d)
        .map(|dim| {
            let dist = znorm_distance(
                &reference.dim(dim)[match_pos..match_pos + m],
                &query.dim(dim)[query_pos..query_pos + m],
            );
            (dim, dist)
        })
        .collect();
    dims.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    dims.truncate(k + 1);
    dims.into_iter().map(|(dim, _)| dim).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_with_mode;
    use crate::MdmpConfig;
    use mdmp_data::rng::{fill_gaussian, seeded};
    use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
    use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
    use mdmp_precision::PrecisionMode;

    fn run_pair(
        n: usize,
        d: usize,
        m: usize,
        seed: u64,
    ) -> (mdmp_data::SyntheticPair, MatrixProfile) {
        let pair = generate_pair(&SyntheticConfig {
            n_subsequences: n,
            dims: d,
            m,
            pattern: Pattern::DampedOsc,
            embeddings: 3,
            noise: 0.25,
            pattern_amplitude: 1.3,
            seed,
        });
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let cfg = MdmpConfig::new(m, PrecisionMode::Fp64);
        let run = run_with_mode(&pair.reference, &pair.query, &cfg, &mut sys).unwrap();
        (pair, run.profile)
    }

    #[test]
    fn top_motif_is_the_embedded_pattern() {
        let (pair, profile) = run_pair(1024, 3, 32, 8);
        let motifs = top_motifs(&profile, 2, 32, 3);
        assert!(!motifs.is_empty());
        let best = motifs[0];
        // The best motif pairs a query embedding with a reference embedding.
        assert!(
            pair.query_locs
                .iter()
                .any(|&l| best.query_pos.abs_diff(l) < 32),
            "best motif query {} not near embeddings {:?}",
            best.query_pos,
            pair.query_locs
        );
        assert!(
            pair.reference_locs
                .iter()
                .any(|&l| best.match_pos.abs_diff(l) < 32),
            "best motif match {} not near embeddings {:?}",
            best.match_pos,
            pair.reference_locs
        );
        // Distances ascend and picks don't overlap.
        for w in motifs.windows(2) {
            assert!(w[0].distance <= w[1].distance);
            assert!(w[0].query_pos.abs_diff(w[1].query_pos) >= 32);
        }
    }

    #[test]
    fn discord_finds_an_injected_anomaly() {
        // A self-join where one window is replaced by a unique spike burst.
        let n = 512;
        let m = 16;
        let mut rng = seeded(9);
        let mut x = vec![0.0; n + m - 1];
        // Periodic base signal: everything matches something.
        for (t, v) in x.iter_mut().enumerate() {
            *v = (t as f64 * 0.7).sin();
        }
        let mut noise = vec![0.0; x.len()];
        fill_gaussian(&mut rng, &mut noise, 0.05);
        for (v, nz) in x.iter_mut().zip(&noise) {
            *v += nz;
        }
        // The anomaly: an alternating spike burst at position 300.
        for t in 0..m {
            x[300 + t] = if t % 2 == 0 { 4.0 } else { -4.0 };
        }
        let series = mdmp_data::MultiDimSeries::univariate(x);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let cfg = MdmpConfig::new(m, PrecisionMode::Fp64).self_join();
        let run = run_with_mode(&series, &series, &cfg, &mut sys).unwrap();
        let discords = top_discords(&run.profile, 0, m, 1);
        assert_eq!(discords.len(), 1);
        assert!(
            discords[0].query_pos.abs_diff(300) < m,
            "discord at {} not near the injected anomaly at 300",
            discords[0].query_pos
        );
    }

    #[test]
    fn subspace_selects_the_motif_dimensions() {
        // Embed a pattern in dimensions 0 and 2 only; dimension 1 is noise.
        let n = 400;
        let m = 24;
        let mut rng = seeded(17);
        let mut dims: Vec<Vec<f64>> = (0..3)
            .map(|_| {
                let mut v = vec![0.0; n + m - 1];
                fill_gaussian(&mut rng, &mut v, 0.3);
                v
            })
            .collect();
        let shape = Pattern::Sine.render(m);
        for dim in [0usize, 2] {
            for (t, &s) in shape.iter().enumerate() {
                dims[dim][100 + t] += 1.5 * s; // reference embedding
                dims[dim][300 + t] += 1.5 * s; // query embedding
            }
        }
        let series = mdmp_data::MultiDimSeries::from_dims(dims);
        let subspace = motif_subspace(&series, &series, m, 300, 100, 1);
        assert_eq!(subspace.len(), 2);
        assert!(subspace.contains(&0), "subspace {subspace:?} misses dim 0");
        assert!(subspace.contains(&2), "subspace {subspace:?} misses dim 2");
    }

    #[test]
    fn motif_list_respects_top_limit_and_unset_entries() {
        let (_, profile) = run_pair(256, 2, 16, 10);
        let motifs = top_motifs(&profile, 1, 16, 2);
        assert!(motifs.len() <= 2);
        let discords = top_discords(&profile, 1, 16, 100);
        // Non-overlap cap: at most ~n/m picks.
        assert!(discords.len() <= 256 / 16 + 1);
    }
}

//! The matrix profile result type.
//!
//! For a d-dimensional query with `n` segments, the multi-dimensional matrix
//! profile is `P ∈ R^{n×d}` with index matrix `I ∈ Z^{n×d}`: `P[j][k]` is the
//! smallest (k+1)-dimensional inclusive-average distance of query segment
//! `j` to any reference segment, and `I[j][k]` is the reference segment
//! achieving it (Eq. 3).
//!
//! Values are stored dimension-major (`k`-major) in `f64` regardless of the
//! compute precision — results are widened exactly on the device→host copy,
//! as the paper's implementation does.

/// A computed multi-dimensional matrix profile with its index.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixProfile {
    p: Vec<f64>,
    i: Vec<i64>,
    n_query: usize,
    dims: usize,
}

impl MatrixProfile {
    /// An "empty" profile: all distances +∞, all indices −1.
    pub fn new_unset(n_query: usize, dims: usize) -> MatrixProfile {
        assert!(
            n_query > 0 && dims > 0,
            "profile dimensions must be positive"
        );
        MatrixProfile {
            p: vec![f64::INFINITY; n_query * dims],
            i: vec![-1; n_query * dims],
            n_query,
            dims,
        }
    }

    /// Construct from raw dimension-major buffers.
    ///
    /// # Panics
    /// Panics if buffer lengths do not equal `n_query * dims`.
    pub fn from_raw(p: Vec<f64>, i: Vec<i64>, n_query: usize, dims: usize) -> MatrixProfile {
        assert_eq!(p.len(), n_query * dims, "P buffer length mismatch");
        assert_eq!(i.len(), n_query * dims, "I buffer length mismatch");
        MatrixProfile {
            p,
            i,
            n_query,
            dims,
        }
    }

    /// Number of query segments `n`.
    pub fn n_query(&self) -> usize {
        self.n_query
    }

    /// Dimensionality `d`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Profile value for query segment `j` at dimensionality `k+1`.
    pub fn value(&self, j: usize, k: usize) -> f64 {
        self.p[self.idx(j, k)]
    }

    /// Matching reference segment for query segment `j` at dimensionality
    /// `k+1` (−1 when unset).
    pub fn index(&self, j: usize, k: usize) -> i64 {
        self.i[self.idx(j, k)]
    }

    /// The k-th dimensional profile vector (all query positions).
    pub fn profile_dim(&self, k: usize) -> &[f64] {
        assert!(k < self.dims, "dimension {k} out of range");
        &self.p[k * self.n_query..(k + 1) * self.n_query]
    }

    /// The k-th dimensional index vector.
    pub fn index_dim(&self, k: usize) -> &[i64] {
        assert!(k < self.dims, "dimension {k} out of range");
        &self.i[k * self.n_query..(k + 1) * self.n_query]
    }

    /// Merge another profile's entries into this one with min/argmin —
    /// the CPU-side `merge` of Pseudocode 2. Strictly-smaller wins, so the
    /// first-merged tile keeps ties (tiles are merged in ascending
    /// row-offset order for determinism).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn merge_min(&mut self, other: &MatrixProfile) {
        assert_eq!(self.n_query, other.n_query, "merge: query length mismatch");
        assert_eq!(self.dims, other.dims, "merge: dimensionality mismatch");
        for idx in 0..self.p.len() {
            if other.p[idx] < self.p[idx] {
                self.p[idx] = other.p[idx];
                self.i[idx] = other.i[idx];
            }
        }
    }

    /// Merge a tile's profile that covers only query columns
    /// `[col0, col0 + other.n_query)` of this profile.
    pub fn merge_min_columns(&mut self, other: &MatrixProfile, col0: usize) {
        assert_eq!(self.dims, other.dims, "merge: dimensionality mismatch");
        assert!(
            col0 + other.n_query <= self.n_query,
            "merge: column window out of range"
        );
        for k in 0..self.dims {
            let base_s = k * self.n_query + col0;
            let base_o = k * other.n_query;
            for jj in 0..other.n_query {
                if other.p[base_o + jj] < self.p[base_s + jj] {
                    self.p[base_s + jj] = other.p[base_o + jj];
                    self.i[base_s + jj] = other.i[base_o + jj];
                }
            }
        }
    }

    /// Mutable access to the raw dimension-major value and index planes —
    /// for building custom profiles (oracles, adapters) without copying.
    pub fn planes_mut(&mut self) -> (&mut [f64], &mut [i64]) {
        (&mut self.p, &mut self.i)
    }

    /// Fraction of entries that are still unset (+∞) — all-NaN degenerate
    /// inputs leave entries unset, a diagnosable condition.
    pub fn unset_fraction(&self) -> f64 {
        let unset = self.p.iter().filter(|v| v.is_infinite()).count();
        unset as f64 / self.p.len() as f64
    }

    fn idx(&self, j: usize, k: usize) -> usize {
        assert!(j < self.n_query, "query index {j} out of range");
        assert!(k < self.dims, "dimension {k} out of range");
        k * self.n_query + j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_unset_state() {
        let p = MatrixProfile::new_unset(4, 2);
        assert_eq!(p.n_query(), 4);
        assert_eq!(p.dims(), 2);
        assert!(p.value(0, 0).is_infinite());
        assert_eq!(p.index(3, 1), -1);
        assert_eq!(p.unset_fraction(), 1.0);
    }

    #[test]
    fn merge_min_takes_smaller_with_index() {
        let mut a = MatrixProfile::from_raw(vec![1.0, 5.0, 3.0, 7.0], vec![10, 11, 12, 13], 2, 2);
        let b = MatrixProfile::from_raw(vec![2.0, 4.0, 3.0, 6.0], vec![20, 21, 22, 23], 2, 2);
        a.merge_min(&b);
        assert_eq!(a.value(0, 0), 1.0);
        assert_eq!(a.index(0, 0), 10);
        assert_eq!(a.value(1, 0), 4.0);
        assert_eq!(a.index(1, 0), 21);
        // Tie keeps the first (self) entry.
        assert_eq!(a.index(0, 1), 12);
        assert_eq!(a.value(1, 1), 6.0);
        assert_eq!(a.index(1, 1), 23);
    }

    #[test]
    fn merge_min_columns_windows_into_place() {
        let mut acc = MatrixProfile::new_unset(5, 2);
        let tile = MatrixProfile::from_raw(vec![1.0, 2.0, 3.0, 4.0], vec![7, 8, 9, 10], 2, 2);
        acc.merge_min_columns(&tile, 2);
        assert!(acc.value(1, 0).is_infinite());
        assert_eq!(acc.value(2, 0), 1.0);
        assert_eq!(acc.value(3, 0), 2.0);
        assert_eq!(acc.index(2, 1), 9);
        assert!(acc.value(4, 1).is_infinite());
    }

    #[test]
    fn dim_slices() {
        let p = MatrixProfile::from_raw(vec![1.0, 2.0, 3.0, 4.0], vec![0, 1, 2, 3], 2, 2);
        assert_eq!(p.profile_dim(0), &[1.0, 2.0]);
        assert_eq!(p.profile_dim(1), &[3.0, 4.0]);
        assert_eq!(p.index_dim(1), &[2, 3]);
    }

    #[test]
    fn nan_never_wins_merge() {
        let mut a = MatrixProfile::from_raw(vec![5.0], vec![1], 1, 1);
        let b = MatrixProfile::from_raw(vec![f64::NAN], vec![2], 1, 1);
        a.merge_min(&b);
        assert_eq!(a.value(0, 0), 5.0);
        assert_eq!(a.index(0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "query length mismatch")]
    fn merge_shape_mismatch_panics() {
        let mut a = MatrixProfile::new_unset(2, 1);
        let b = MatrixProfile::new_unset(3, 1);
        a.merge_min(&b);
    }

    #[test]
    fn unset_fraction_counts() {
        let mut p = MatrixProfile::new_unset(2, 1);
        let t = MatrixProfile::from_raw(vec![1.0, f64::INFINITY], vec![0, -1], 2, 1);
        p.merge_min(&t);
        assert_eq!(p.unset_fraction(), 0.5);
    }
}

//! Run configuration and error types.

use crate::tiling::TileSchedule;
use mdmp_gpu_sim::AllocError;
use mdmp_precision::PrecisionMode;
use std::fmt;

/// Configuration of a matrix-profile computation (the tunables of
/// Pseudocode 1 + 2 plus the precision mode of §III-C).
#[derive(Debug, Clone)]
pub struct MdmpConfig {
    /// Segment (subsequence) length `m`.
    pub m: usize,
    /// Precision mode.
    pub mode: PrecisionMode,
    /// Number of tiles `n_tiles` (1 = single-tile algorithm). Tiles are laid
    /// out on a near-square 2-D grid over the distance matrix.
    pub n_tiles: usize,
    /// Clamp `1 − corr` at zero before the square root in Eq. 1 — guards
    /// against NaN distances when reduced-precision rounding pushes the
    /// correlation above 1 (the same guard SCAMP applies). On by default;
    /// the ablation benches toggle it.
    pub clamp: bool,
    /// For self-joins: trivial-match exclusion zone half-width. `None` for
    /// AB-joins (query ≠ reference), which is the paper's setting.
    pub exclusion_zone: Option<usize>,
    /// Tile→device scheduling policy (the paper uses static Round-robin).
    pub schedule: TileSchedule,
}

impl MdmpConfig {
    /// An AB-join configuration with a single tile.
    pub fn new(m: usize, mode: PrecisionMode) -> MdmpConfig {
        MdmpConfig {
            m,
            mode,
            n_tiles: 1,
            clamp: true,
            exclusion_zone: None,
            schedule: TileSchedule::RoundRobin,
        }
    }

    /// Set the tile count (builder style).
    pub fn with_tiles(mut self, n_tiles: usize) -> MdmpConfig {
        self.n_tiles = n_tiles;
        self
    }

    /// Select the tile scheduling policy (builder style).
    pub fn with_schedule(mut self, schedule: TileSchedule) -> MdmpConfig {
        self.schedule = schedule;
        self
    }

    /// Configure a self-join with the standard `⌈m/4⌉` exclusion zone.
    pub fn self_join(mut self) -> MdmpConfig {
        self.exclusion_zone = Some(self.m.div_ceil(4).max(1));
        self
    }

    /// Validate against the input sizes.
    pub fn validate(&self, n_ref: usize, n_query: usize) -> Result<(), MdmpError> {
        if self.m < 2 {
            return Err(MdmpError::BadConfig(format!(
                "segment length m must be at least 2, got {}",
                self.m
            )));
        }
        if n_ref == 0 || n_query == 0 {
            return Err(MdmpError::BadConfig(
                "series shorter than the segment length".into(),
            ));
        }
        if self.n_tiles == 0 {
            return Err(MdmpError::BadConfig("n_tiles must be at least 1".into()));
        }
        if self.n_tiles > n_ref * n_query {
            return Err(MdmpError::BadConfig(format!(
                "n_tiles {} exceeds the number of distance-matrix cells",
                self.n_tiles
            )));
        }
        Ok(())
    }
}

/// Errors of the matrix-profile driver.
#[derive(Debug, Clone)]
pub enum MdmpError {
    /// Invalid configuration or input shape.
    BadConfig(String),
    /// A tile's working set exceeds device memory (tiling too coarse).
    OutOfDeviceMemory {
        /// Index of the offending tile.
        tile: usize,
        /// The underlying allocation failure.
        cause: AllocError,
    },
    /// Reference and query dimensionality differ.
    DimensionalityMismatch {
        /// Reference dimensionality.
        reference: usize,
        /// Query dimensionality.
        query: usize,
    },
}

impl fmt::Display for MdmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdmpError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MdmpError::OutOfDeviceMemory { tile, cause } => {
                write!(f, "tile {tile} does not fit in device memory: {cause}")
            }
            MdmpError::DimensionalityMismatch { reference, query } => write!(
                f,
                "reference has {reference} dimensions but query has {query}"
            ),
        }
    }
}

impl std::error::Error for MdmpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let cfg = MdmpConfig::new(64, PrecisionMode::Fp16);
        assert_eq!(cfg.m, 64);
        assert_eq!(cfg.n_tiles, 1);
        assert!(cfg.clamp);
        assert!(cfg.exclusion_zone.is_none());
        let tiled = cfg.clone().with_tiles(16);
        assert_eq!(tiled.n_tiles, 16);
        let sj = cfg.self_join();
        assert_eq!(sj.exclusion_zone, Some(16));
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let cfg = MdmpConfig::new(1, PrecisionMode::Fp64);
        assert!(matches!(cfg.validate(10, 10), Err(MdmpError::BadConfig(_))));
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64).with_tiles(0);
        assert!(cfg.validate(10, 10).is_err());
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64).with_tiles(1000);
        assert!(cfg.validate(4, 4).is_err());
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
        assert!(cfg.validate(10, 10).is_ok());
    }

    #[test]
    fn error_messages_render() {
        let e = MdmpError::DimensionalityMismatch {
            reference: 4,
            query: 8,
        };
        assert!(e.to_string().contains("4 dimensions"));
    }
}

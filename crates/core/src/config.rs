//! Run configuration and error types.

use crate::tiling::TileSchedule;
use mdmp_gpu_sim::AllocError;
use mdmp_precision::PrecisionMode;
use std::fmt;

/// Configuration of a matrix-profile computation (the tunables of
/// Pseudocode 1 + 2 plus the precision mode of §III-C).
#[derive(Debug, Clone)]
pub struct MdmpConfig {
    /// Segment (subsequence) length `m`.
    pub m: usize,
    /// Precision mode.
    pub mode: PrecisionMode,
    /// Number of tiles `n_tiles` (1 = single-tile algorithm). Tiles are laid
    /// out on a near-square 2-D grid over the distance matrix.
    pub n_tiles: usize,
    /// Clamp `1 − corr` at zero before the square root in Eq. 1 — guards
    /// against NaN distances when reduced-precision rounding pushes the
    /// correlation above 1 (the same guard SCAMP applies). On by default;
    /// the ablation benches toggle it.
    pub clamp: bool,
    /// For self-joins: trivial-match exclusion zone half-width. `None` for
    /// AB-joins (query ≠ reference), which is the paper's setting.
    pub exclusion_zone: Option<usize>,
    /// Tile→device scheduling policy (the paper uses static Round-robin).
    pub schedule: TileSchedule,
    /// Host worker threads executing independent tiles concurrently —
    /// the host-side mirror of the paper's one-stream-per-tile model.
    /// `0` means *auto*: the `MDMP_HOST_WORKERS` environment variable if
    /// set, otherwise one worker per simulated device.
    pub host_workers: usize,
}

impl MdmpConfig {
    /// An AB-join configuration with a single tile.
    pub fn new(m: usize, mode: PrecisionMode) -> MdmpConfig {
        MdmpConfig {
            m,
            mode,
            n_tiles: 1,
            clamp: true,
            exclusion_zone: None,
            schedule: TileSchedule::RoundRobin,
            host_workers: 0,
        }
    }

    /// Set the tile count (builder style).
    pub fn with_tiles(mut self, n_tiles: usize) -> MdmpConfig {
        self.n_tiles = n_tiles;
        self
    }

    /// Select the tile scheduling policy (builder style).
    pub fn with_schedule(mut self, schedule: TileSchedule) -> MdmpConfig {
        self.schedule = schedule;
        self
    }

    /// Set the host worker-thread count (builder style); `0` restores the
    /// auto default (env `MDMP_HOST_WORKERS`, else the device count).
    pub fn with_host_workers(mut self, host_workers: usize) -> MdmpConfig {
        self.host_workers = host_workers;
        self
    }

    /// The effective worker count for a run on `n_devices` simulated
    /// devices: an explicit `host_workers` wins, then a positive
    /// `MDMP_HOST_WORKERS` environment override, then one worker per
    /// device (the paper's stream-per-tile concurrency, mirrored on the
    /// host).
    pub fn resolved_host_workers(&self, n_devices: usize) -> usize {
        if self.host_workers > 0 {
            return self.host_workers;
        }
        if let Ok(raw) = std::env::var("MDMP_HOST_WORKERS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        n_devices.max(1)
    }

    /// Configure a self-join with the standard `⌈m/4⌉` exclusion zone.
    pub fn self_join(mut self) -> MdmpConfig {
        self.exclusion_zone = Some(self.m.div_ceil(4).max(1));
        self
    }

    /// Validate against the input sizes.
    pub fn validate(&self, n_ref: usize, n_query: usize) -> Result<(), MdmpError> {
        if self.m < 2 {
            return Err(MdmpError::BadConfig(format!(
                "segment length m must be at least 2, got {}",
                self.m
            )));
        }
        if n_ref == 0 || n_query == 0 {
            return Err(MdmpError::BadConfig(
                "series shorter than the segment length".into(),
            ));
        }
        if self.n_tiles == 0 {
            return Err(MdmpError::BadConfig("n_tiles must be at least 1".into()));
        }
        if self.n_tiles > n_ref * n_query {
            return Err(MdmpError::BadConfig(format!(
                "n_tiles {} exceeds the number of distance-matrix cells",
                self.n_tiles
            )));
        }
        Ok(())
    }
}

/// Errors of the matrix-profile driver.
#[derive(Debug, Clone)]
pub enum MdmpError {
    /// Invalid configuration or input shape.
    BadConfig(String),
    /// A tile's working set exceeds device memory (tiling too coarse).
    OutOfDeviceMemory {
        /// Index of the offending tile.
        tile: usize,
        /// The underlying allocation failure.
        cause: AllocError,
    },
    /// Reference and query dimensionality differ.
    DimensionalityMismatch {
        /// Reference dimensionality.
        reference: usize,
        /// Query dimensionality.
        query: usize,
    },
}

impl fmt::Display for MdmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdmpError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MdmpError::OutOfDeviceMemory { tile, cause } => {
                write!(f, "tile {tile} does not fit in device memory: {cause}")
            }
            MdmpError::DimensionalityMismatch { reference, query } => write!(
                f,
                "reference has {reference} dimensions but query has {query}"
            ),
        }
    }
}

impl std::error::Error for MdmpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let cfg = MdmpConfig::new(64, PrecisionMode::Fp16);
        assert_eq!(cfg.m, 64);
        assert_eq!(cfg.n_tiles, 1);
        assert!(cfg.clamp);
        assert!(cfg.exclusion_zone.is_none());
        let tiled = cfg.clone().with_tiles(16);
        assert_eq!(tiled.n_tiles, 16);
        let sj = cfg.self_join();
        assert_eq!(sj.exclusion_zone, Some(16));
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let cfg = MdmpConfig::new(1, PrecisionMode::Fp64);
        assert!(matches!(cfg.validate(10, 10), Err(MdmpError::BadConfig(_))));
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64).with_tiles(0);
        assert!(cfg.validate(10, 10).is_err());
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64).with_tiles(1000);
        assert!(cfg.validate(4, 4).is_err());
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
        assert!(cfg.validate(10, 10).is_ok());
    }

    #[test]
    fn host_workers_resolution_order() {
        // Explicit setting wins regardless of the environment.
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64).with_host_workers(3);
        assert_eq!(cfg.resolved_host_workers(8), 3);
        // Auto without env: one worker per device.
        let auto = MdmpConfig::new(8, PrecisionMode::Fp64);
        assert_eq!(auto.host_workers, 0);
        if std::env::var("MDMP_HOST_WORKERS").is_err() {
            assert_eq!(auto.resolved_host_workers(4), 4);
            assert_eq!(auto.resolved_host_workers(0), 1);
        } else {
            // Under the CI matrix the env override must win over the
            // device count.
            let n: usize = std::env::var("MDMP_HOST_WORKERS")
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            assert_eq!(auto.resolved_host_workers(4), n);
        }
    }

    #[test]
    fn error_messages_render() {
        let e = MdmpError::DimensionalityMismatch {
            reference: 4,
            query: 8,
        };
        assert!(e.to_string().contains("4 dimensions"));
    }
}

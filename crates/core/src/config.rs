//! Run configuration and error types.

use crate::tiling::TileSchedule;
use mdmp_faults::FaultPlan;
use mdmp_gpu_sim::AllocError;
use mdmp_precision::{Format, PrecisionMode};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a matrix-profile computation (the tunables of
/// Pseudocode 1 + 2 plus the precision mode of §III-C).
#[derive(Debug, Clone)]
pub struct MdmpConfig {
    /// Segment (subsequence) length `m`.
    pub m: usize,
    /// Precision mode.
    pub mode: PrecisionMode,
    /// Number of tiles `n_tiles` (1 = single-tile algorithm). Tiles are laid
    /// out on a near-square 2-D grid over the distance matrix.
    pub n_tiles: usize,
    /// Clamp `1 − corr` at zero before the square root in Eq. 1 — guards
    /// against NaN distances when reduced-precision rounding pushes the
    /// correlation above 1 (the same guard SCAMP applies). On by default;
    /// the ablation benches toggle it.
    pub clamp: bool,
    /// For self-joins: trivial-match exclusion zone half-width. `None` for
    /// AB-joins (query ≠ reference), which is the paper's setting.
    pub exclusion_zone: Option<usize>,
    /// Tile→device scheduling policy (the paper uses static Round-robin).
    pub schedule: TileSchedule,
    /// Host worker threads executing independent tiles concurrently —
    /// the host-side mirror of the paper's one-stream-per-tile model.
    /// `0` means *auto*: the `MDMP_HOST_WORKERS` environment variable if
    /// set, otherwise one worker per simulated device.
    pub host_workers: usize,
    /// Fused per-row execution: run `dist_calc + sort_&_incl_scan +
    /// update_mat_prof` as a single dispatch per reference row
    /// (`kernels::fused`, DESIGN.md §10). `None` means *auto*: the
    /// `MDMP_FUSED_ROWS` environment variable if set (`0`/`false`
    /// disables), otherwise **on**. Fused output is bit-identical to the
    /// three-kernel pipeline in every precision mode.
    pub fused_rows: Option<bool>,
    /// Fault injection plan for chaos testing (DESIGN.md §9). `None` — the
    /// default — injects nothing and adds no per-tile overhead.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Per-tile retry budget: a failing tile kernel is re-attempted up to
    /// this many extra times (with capped exponential backoff and
    /// re-dispatch away from quarantined devices) before the run fails
    /// with [`MdmpError::TileFailed`].
    pub tile_retries: u32,
    /// First retry backoff; doubles per attempt up to
    /// [`MdmpConfig::tile_retry_cap`].
    pub tile_retry_base: Duration,
    /// Upper bound on the per-tile retry backoff.
    pub tile_retry_cap: Duration,
    /// Per-kernel deadline: a tile attempt whose wall time exceeds this is
    /// treated as a failed (stalled) kernel and retried. `None` disables
    /// the deadline.
    pub tile_deadline: Option<Duration>,
    /// Kernel failures on one simulated device before the health ledger
    /// quarantines it and re-dispatches its work to the survivors.
    pub quarantine_threshold: u32,
    /// Tensor-core accumulator chunk width for the TC precision modes
    /// (products summed per FP32 chunk *and* the GEMM row-panel height;
    /// must be 4, 8 or 16). `None` means *auto*: the `MDMP_TC_CHUNK_K`
    /// environment variable if set, otherwise the input format's hardware
    /// default (8 for FP16/BF16, 4 for TF32). Ignored by non-TC modes.
    pub tc_chunk_k: Option<usize>,
}

impl MdmpConfig {
    /// An AB-join configuration with a single tile.
    pub fn new(m: usize, mode: PrecisionMode) -> MdmpConfig {
        MdmpConfig {
            m,
            mode,
            n_tiles: 1,
            clamp: true,
            exclusion_zone: None,
            schedule: TileSchedule::RoundRobin,
            host_workers: 0,
            fused_rows: None,
            fault_plan: None,
            tile_retries: 2,
            tile_retry_base: Duration::from_millis(1),
            tile_retry_cap: Duration::from_millis(50),
            tile_deadline: None,
            quarantine_threshold: 3,
            tc_chunk_k: None,
        }
    }

    /// Set the tile count (builder style).
    pub fn with_tiles(mut self, n_tiles: usize) -> MdmpConfig {
        self.n_tiles = n_tiles;
        self
    }

    /// Select the tile scheduling policy (builder style).
    pub fn with_schedule(mut self, schedule: TileSchedule) -> MdmpConfig {
        self.schedule = schedule;
        self
    }

    /// Set the host worker-thread count (builder style); `0` restores the
    /// auto default (env `MDMP_HOST_WORKERS`, else the device count).
    pub fn with_host_workers(mut self, host_workers: usize) -> MdmpConfig {
        self.host_workers = host_workers;
        self
    }

    /// The effective worker count for a run on `n_devices` simulated
    /// devices: an explicit `host_workers` wins, then a positive
    /// `MDMP_HOST_WORKERS` environment override, then one worker per
    /// device (the paper's stream-per-tile concurrency, mirrored on the
    /// host).
    pub fn resolved_host_workers(&self, n_devices: usize) -> usize {
        if self.host_workers > 0 {
            return self.host_workers;
        }
        if let Ok(raw) = std::env::var("MDMP_HOST_WORKERS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        n_devices.max(1)
    }

    /// Force the fused row pipeline on or off (builder style); `None`
    /// restores the auto default (env `MDMP_FUSED_ROWS`, else on).
    pub fn with_fused_rows(mut self, fused: Option<bool>) -> MdmpConfig {
        self.fused_rows = fused;
        self
    }

    /// Whether this run executes the fused row pipeline: an explicit
    /// `fused_rows` wins, then the `MDMP_FUSED_ROWS` environment override
    /// (`0`, `false`, `off`, `no` disable; anything else enables), then the
    /// default **on** — mirroring [`MdmpConfig::resolved_host_workers`].
    pub fn resolved_fused_rows(&self) -> bool {
        if let Some(fused) = self.fused_rows {
            return fused;
        }
        if let Ok(raw) = std::env::var("MDMP_FUSED_ROWS") {
            let v = raw.trim().to_ascii_lowercase();
            return !matches!(v.as_str(), "0" | "false" | "off" | "no");
        }
        true
    }

    /// Set the tensor-core accumulator chunk width (builder style); `None`
    /// restores the auto default (env `MDMP_TC_CHUNK_K`, else the format's
    /// hardware chunk).
    pub fn with_tc_chunk_k(mut self, chunk_k: Option<usize>) -> MdmpConfig {
        self.tc_chunk_k = chunk_k;
        self
    }

    /// The effective MMA chunk width for a TC-mode run with the given input
    /// format: an explicit `tc_chunk_k` wins, then a valid `MDMP_TC_CHUNK_K`
    /// environment override, then the format's hardware default — mirroring
    /// [`MdmpConfig::resolved_host_workers`]. Values outside {4, 8, 16} are
    /// rejected by [`MdmpConfig::validate`] (explicit) or ignored (env).
    pub fn resolved_tc_chunk_k(&self, input: Format) -> usize {
        if let Some(k) = self.tc_chunk_k {
            return k;
        }
        if let Ok(raw) = std::env::var("MDMP_TC_CHUNK_K") {
            if let Ok(k) = raw.trim().parse::<usize>() {
                if mdmp_gpu_sim::MMA_CHUNK_SIZES.contains(&k) {
                    return k;
                }
            }
        }
        mdmp_gpu_sim::default_chunk_k(input)
    }

    /// Install a fault injection plan (builder style). `None` disables
    /// injection.
    pub fn with_fault_plan(mut self, plan: Option<Arc<FaultPlan>>) -> MdmpConfig {
        self.fault_plan = plan;
        self
    }

    /// Set the per-tile retry budget (builder style); `0` disables retries
    /// so the first tile failure fails the run.
    pub fn with_tile_retries(mut self, retries: u32) -> MdmpConfig {
        self.tile_retries = retries;
        self
    }

    /// Set the per-kernel deadline (builder style); `None` disables it.
    pub fn with_tile_deadline(mut self, deadline: Option<Duration>) -> MdmpConfig {
        self.tile_deadline = deadline;
        self
    }

    /// Set the retry backoff range (builder style): first backoff `base`,
    /// doubling per attempt, never above `cap`.
    pub fn with_tile_backoff(mut self, base: Duration, cap: Duration) -> MdmpConfig {
        self.tile_retry_base = base;
        self.tile_retry_cap = cap;
        self
    }

    /// Set the device quarantine threshold (builder style).
    pub fn with_quarantine_threshold(mut self, threshold: u32) -> MdmpConfig {
        self.quarantine_threshold = threshold;
        self
    }

    /// Configure a self-join with the standard `⌈m/4⌉` exclusion zone.
    pub fn self_join(mut self) -> MdmpConfig {
        self.exclusion_zone = Some(self.m.div_ceil(4).max(1));
        self
    }

    /// Validate against the input sizes.
    pub fn validate(&self, n_ref: usize, n_query: usize) -> Result<(), MdmpError> {
        if self.m < 2 {
            return Err(MdmpError::BadConfig(format!(
                "segment length m must be at least 2, got {}",
                self.m
            )));
        }
        if n_ref == 0 || n_query == 0 {
            return Err(MdmpError::BadConfig(
                "series shorter than the segment length".into(),
            ));
        }
        if self.n_tiles == 0 {
            return Err(MdmpError::BadConfig("n_tiles must be at least 1".into()));
        }
        if self.n_tiles > n_ref * n_query {
            return Err(MdmpError::BadConfig(format!(
                "n_tiles {} exceeds the number of distance-matrix cells",
                self.n_tiles
            )));
        }
        if let Some(k) = self.tc_chunk_k {
            if !mdmp_gpu_sim::MMA_CHUNK_SIZES.contains(&k) {
                return Err(MdmpError::BadConfig(format!(
                    "tc_chunk_k must be one of {:?}, got {k}",
                    mdmp_gpu_sim::MMA_CHUNK_SIZES
                )));
            }
        }
        Ok(())
    }
}

/// One failed attempt at executing a tile kernel — the typed failures the
/// fault-injection harness provokes and the retry loop absorbs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileError {
    /// The tile kernel aborted without producing a result plane.
    Kernel {
        /// Index of the failed tile.
        tile: usize,
    },
    /// The tile attempt exceeded its per-kernel deadline.
    Timeout {
        /// Index of the stalled tile.
        tile: usize,
        /// Wall milliseconds the attempt took.
        elapsed_ms: u64,
        /// The configured deadline in milliseconds.
        deadline_ms: u64,
    },
    /// The tile's result plane failed the NaN/Inf/bound validation gate.
    PoisonedPlane {
        /// Index of the poisoned tile.
        tile: usize,
        /// What the gate found.
        violation: crate::tile_exec::PlaneViolation,
    },
}

impl fmt::Display for TileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileError::Kernel { tile } => write!(f, "tile {tile}: kernel failed"),
            TileError::Timeout {
                tile,
                elapsed_ms,
                deadline_ms,
            } => write!(
                f,
                "tile {tile}: kernel stalled ({elapsed_ms} ms > {deadline_ms} ms deadline)"
            ),
            TileError::PoisonedPlane { tile, violation } => {
                write!(
                    f,
                    "tile {tile}: result plane failed validation ({violation})"
                )
            }
        }
    }
}

impl std::error::Error for TileError {}

/// Errors of the matrix-profile driver.
#[derive(Debug, Clone)]
pub enum MdmpError {
    /// Invalid configuration or input shape.
    BadConfig(String),
    /// A tile's working set exceeds device memory (tiling too coarse).
    OutOfDeviceMemory {
        /// Index of the offending tile.
        tile: usize,
        /// The underlying allocation failure.
        cause: AllocError,
    },
    /// Reference and query dimensionality differ.
    DimensionalityMismatch {
        /// Reference dimensionality.
        reference: usize,
        /// Query dimensionality.
        query: usize,
    },
    /// A tile kept failing after every allowed retry; the run was aborted
    /// rather than returning a partial profile.
    TileFailed {
        /// Index of the failed tile.
        tile: usize,
        /// Attempts made (1 + configured retries).
        attempts: u32,
        /// The final attempt's failure.
        source: TileError,
    },
    /// Tiles never reached the merge (a worker died without reporting) —
    /// the reorder buffer surfaces this instead of waiting forever or
    /// silently returning a partial profile.
    TilesMissing {
        /// Tiles merged before the pipeline drained.
        merged: usize,
        /// Tiles the run expected.
        expected: usize,
    },
}

impl fmt::Display for MdmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdmpError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MdmpError::OutOfDeviceMemory { tile, cause } => {
                write!(f, "tile {tile} does not fit in device memory: {cause}")
            }
            MdmpError::DimensionalityMismatch { reference, query } => write!(
                f,
                "reference has {reference} dimensions but query has {query}"
            ),
            MdmpError::TileFailed {
                tile,
                attempts,
                source,
            } => write!(f, "tile {tile} failed after {attempts} attempts: {source}"),
            MdmpError::TilesMissing { merged, expected } => write!(
                f,
                "only {merged} of {expected} tiles reached the merge (worker died without reporting)"
            ),
        }
    }
}

impl std::error::Error for MdmpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let cfg = MdmpConfig::new(64, PrecisionMode::Fp16);
        assert_eq!(cfg.m, 64);
        assert_eq!(cfg.n_tiles, 1);
        assert!(cfg.clamp);
        assert!(cfg.exclusion_zone.is_none());
        let tiled = cfg.clone().with_tiles(16);
        assert_eq!(tiled.n_tiles, 16);
        let sj = cfg.self_join();
        assert_eq!(sj.exclusion_zone, Some(16));
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let cfg = MdmpConfig::new(1, PrecisionMode::Fp64);
        assert!(matches!(cfg.validate(10, 10), Err(MdmpError::BadConfig(_))));
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64).with_tiles(0);
        assert!(cfg.validate(10, 10).is_err());
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64).with_tiles(1000);
        assert!(cfg.validate(4, 4).is_err());
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
        assert!(cfg.validate(10, 10).is_ok());
    }

    #[test]
    fn host_workers_resolution_order() {
        // Explicit setting wins regardless of the environment.
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64).with_host_workers(3);
        assert_eq!(cfg.resolved_host_workers(8), 3);
        // Auto without env: one worker per device.
        let auto = MdmpConfig::new(8, PrecisionMode::Fp64);
        assert_eq!(auto.host_workers, 0);
        if std::env::var("MDMP_HOST_WORKERS").is_err() {
            assert_eq!(auto.resolved_host_workers(4), 4);
            assert_eq!(auto.resolved_host_workers(0), 1);
        } else {
            // Under the CI matrix the env override must win over the
            // device count.
            let n: usize = std::env::var("MDMP_HOST_WORKERS")
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            assert_eq!(auto.resolved_host_workers(4), n);
        }
    }

    #[test]
    fn fused_rows_resolution_order() {
        // Explicit setting wins regardless of the environment.
        let on = MdmpConfig::new(8, PrecisionMode::Fp64).with_fused_rows(Some(true));
        assert!(on.resolved_fused_rows());
        let off = MdmpConfig::new(8, PrecisionMode::Fp64).with_fused_rows(Some(false));
        assert!(!off.resolved_fused_rows());
        // Auto: env override if present, else on.
        let auto = MdmpConfig::new(8, PrecisionMode::Fp64);
        match std::env::var("MDMP_FUSED_ROWS") {
            Err(_) => assert!(auto.resolved_fused_rows(), "default is on"),
            Ok(raw) => {
                let disabled = matches!(
                    raw.trim().to_ascii_lowercase().as_str(),
                    "0" | "false" | "off" | "no"
                );
                assert_eq!(auto.resolved_fused_rows(), !disabled);
            }
        }
    }

    #[test]
    fn tc_chunk_resolution_order() {
        // Explicit setting wins regardless of the environment.
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp16Tc).with_tc_chunk_k(Some(16));
        assert_eq!(cfg.resolved_tc_chunk_k(Format::Fp16), 16);
        // Invalid explicit widths are caught by validate.
        let bad = MdmpConfig::new(8, PrecisionMode::Fp16Tc).with_tc_chunk_k(Some(5));
        assert!(matches!(bad.validate(10, 10), Err(MdmpError::BadConfig(_))));
        // Auto: env override if valid, else the format's hardware chunk.
        let auto = MdmpConfig::new(8, PrecisionMode::Fp16Tc);
        match std::env::var("MDMP_TC_CHUNK_K") {
            Err(_) => {
                assert_eq!(auto.resolved_tc_chunk_k(Format::Fp16), 8);
                assert_eq!(auto.resolved_tc_chunk_k(Format::Bf16), 8);
                assert_eq!(auto.resolved_tc_chunk_k(Format::Tf32), 4);
            }
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(k) if mdmp_gpu_sim::MMA_CHUNK_SIZES.contains(&k) => {
                    assert_eq!(auto.resolved_tc_chunk_k(Format::Fp16), k);
                }
                _ => assert_eq!(auto.resolved_tc_chunk_k(Format::Fp16), 8),
            },
        }
    }

    #[test]
    fn error_messages_render() {
        let e = MdmpError::DimensionalityMismatch {
            reference: 4,
            query: 8,
        };
        assert!(e.to_string().contains("4 dimensions"));
    }
}

//! Anytime (SCRIMP-style) computation — the related work's third algorithm
//! family (Zhu et al., SCRIMP++ [25]; ScrimpCo [14]): evaluate the distance
//! matrix **diagonal by diagonal in random order**, so the profile is
//! usable after any prefix of the work and converges to the exact result.
//!
//! Structurally orthogonal to the row-wise pipeline of Pseudocode 1
//! (diagonals walk the Eq. 1 recurrence natively — each diagonal is one
//! independent streaming chain seeded by a single direct dot product), so
//! running it at `fraction = 1.0` cross-validates the row-wise kernels
//! through an entirely different evaluation order.
//!
//! Kept in FP64: the paper's reduced-precision modes live in the tiled
//! row-wise pipeline; this module provides the *anytime* capability and an
//! independent oracle.

use crate::profile::MatrixProfile;
use mdmp_data::MultiDimSeries;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

struct DimStats {
    mu: Vec<f64>,
    inv: Vec<f64>,
    df: Vec<f64>,
    dg: Vec<f64>,
}

fn dim_stats(x: &[f64], m: usize) -> DimStats {
    let n = x.len() - m + 1;
    let mu = mdmp_data::stats::rolling_mean(x, m);
    let sd = mdmp_data::stats::rolling_std(x, m);
    let inv: Vec<f64> = sd.iter().map(|&s| 1.0 / (s * (m as f64).sqrt())).collect();
    let mut df = vec![0.0; n];
    let mut dg = vec![0.0; n];
    for i in 1..n {
        df[i] = 0.5 * (x[i + m - 1] - x[i - 1]);
        dg[i] = (x[i + m - 1] - mu[i]) + (x[i - 1] - mu[i - 1]);
    }
    DimStats { mu, inv, df, dg }
}

/// Progress report of an anytime run.
#[derive(Debug, Clone, Copy)]
pub struct AnytimeProgress {
    /// Diagonals evaluated so far.
    pub diagonals_done: usize,
    /// Total diagonals of the distance matrix.
    pub diagonals_total: usize,
    /// Distance-matrix cells covered so far.
    pub cells_done: u64,
}

/// SCRIMP-style anytime matrix profile: evaluate a random `fraction` of the
/// distance-matrix diagonals (FP64). `fraction = 1.0` is exact. For
/// self-joins pass the trivial-match `exclusion` half-width.
///
/// Returns the (partial) profile and the coverage achieved.
///
/// ```
/// use mdmp_core::scrimp_anytime;
/// use mdmp_data::MultiDimSeries;
///
/// let s = MultiDimSeries::univariate(
///     (0..200).map(|t| (t as f64 * 0.21).sin() + 0.02 * t as f64).collect(),
/// );
/// let (half_profile, progress) = scrimp_anytime(&s, &s, 10, 0.5, Some(3), 1);
/// assert!(progress.diagonals_done < progress.diagonals_total);
/// let (full_profile, _) = scrimp_anytime(&s, &s, 10, 1.0, Some(3), 1);
/// // The partial profile is an upper bound of the exact one.
/// for j in 0..full_profile.n_query() {
///     assert!(half_profile.value(j, 0) >= full_profile.value(j, 0) - 1e-12);
/// }
/// ```
pub fn scrimp_anytime(
    reference: &MultiDimSeries,
    query: &MultiDimSeries,
    m: usize,
    fraction: f64,
    exclusion: Option<usize>,
    seed: u64,
) -> (MatrixProfile, AnytimeProgress) {
    assert_eq!(reference.dims(), query.dims(), "dimensionality mismatch");
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    assert!(m >= 2 && reference.len() >= m && query.len() >= m);
    let d = reference.dims();
    let n_r = reference.n_segments(m);
    let n_q = query.n_segments(m);
    let two_m = 2.0 * m as f64;

    let rstats: Vec<DimStats> = (0..d).map(|k| dim_stats(reference.dim(k), m)).collect();
    let qstats: Vec<DimStats> = (0..d).map(|k| dim_stats(query.dim(k), m)).collect();

    // Diagonals are indexed by offset δ = i − j ∈ [−(n_q−1), n_r−1].
    let mut offsets: Vec<i64> = (-(n_q as i64 - 1)..=(n_r as i64 - 1)).collect();
    let total = offsets.len();
    let mut rng = StdRng::seed_from_u64(seed);
    offsets.shuffle(&mut rng);
    let take = ((total as f64) * fraction).round() as usize;
    offsets.truncate(take);

    let mut profile = MatrixProfile::new_unset(n_q, d);
    let mut cells = 0u64;
    let mut qt = vec![0.0f64; d];
    let mut fiber = vec![0.0f64; d];

    for &delta in &offsets {
        // The diagonal starts at (i0, j0) and runs for `len` cells.
        let (i0, j0) = if delta >= 0 {
            (delta as usize, 0usize)
        } else {
            (0usize, (-delta) as usize)
        };
        let len = (n_r - i0).min(n_q - j0);
        for (k, slot) in qt.iter_mut().enumerate() {
            let rx = reference.dim(k);
            let qx = query.dim(k);
            *slot = (0..m)
                .map(|t| (rx[i0 + t] - rstats[k].mu[i0]) * (qx[j0 + t] - qstats[k].mu[j0]))
                .sum();
        }
        let (p_plane, i_plane) = profile.planes_mut();
        for step in 0..len {
            let i = i0 + step;
            let j = j0 + step;
            if step > 0 {
                for (k, slot) in qt.iter_mut().enumerate() {
                    *slot += rstats[k].df[i] * qstats[k].dg[j] + qstats[k].df[j] * rstats[k].dg[i];
                }
            }
            cells += 1;
            if let Some(excl) = exclusion {
                if i.abs_diff(j) < excl {
                    continue;
                }
            }
            for (k, slot) in fiber.iter_mut().enumerate() {
                let corr = qt[k] * rstats[k].inv[i] * qstats[k].inv[j];
                let gap = 1.0 - corr;
                let gap = if gap < 0.0 { 0.0 } else { gap };
                *slot = (two_m * gap).sqrt();
            }
            fiber.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let mut run = 0.0;
            for (k, &dist) in fiber.iter().enumerate() {
                run += dist;
                let avg = run / (k + 1) as f64;
                let idx = k * n_q + j;
                if avg < p_plane[idx] {
                    p_plane[idx] = avg;
                    i_plane[idx] = i as i64;
                }
            }
        }
    }
    (
        profile,
        AnytimeProgress {
            diagonals_done: take,
            diagonals_total: total,
            cells_done: cells,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force;
    use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
    use mdmp_metrics_free::recall_like;

    // Local helper: index agreement without pulling mdmp-metrics (which
    // depends on this crate).
    mod mdmp_metrics_free {
        use crate::profile::MatrixProfile;
        pub fn recall_like(a: &MatrixProfile, b: &MatrixProfile) -> f64 {
            let mut hit = 0usize;
            let mut total = 0usize;
            for k in 0..a.dims() {
                for (x, y) in a.index_dim(k).iter().zip(b.index_dim(k)) {
                    total += 1;
                    if x == y {
                        hit += 1;
                    }
                }
            }
            hit as f64 / total as f64
        }
    }

    fn pair(n: usize) -> mdmp_data::SyntheticPair {
        generate_pair(&SyntheticConfig {
            n_subsequences: n,
            dims: 3,
            m: 16,
            pattern: Pattern::GaussBump,
            embeddings: 2,
            noise: 0.3,
            pattern_amplitude: 1.2,
            seed: 77,
        })
    }

    #[test]
    fn full_fraction_matches_brute_force() {
        let p = pair(150);
        let (profile, progress) = scrimp_anytime(&p.reference, &p.query, 16, 1.0, None, 1);
        assert_eq!(progress.diagonals_done, progress.diagonals_total);
        let bf = brute_force(&p.reference, &p.query, 16, None);
        for k in 0..3 {
            for j in 0..profile.n_query() {
                assert!(
                    (profile.value(j, k) - bf.value(j, k)).abs() < 1e-7,
                    "P[{j}][{k}]"
                );
                assert_eq!(profile.index(j, k), bf.index(j, k), "I[{j}][{k}]");
            }
        }
        // Full coverage: every cell of the n_r x n_q matrix visited.
        let n_r = p.reference.n_segments(16) as u64;
        let n_q = p.query.n_segments(16) as u64;
        assert_eq!(progress.cells_done, n_r * n_q);
    }

    #[test]
    fn anytime_converges_with_fraction() {
        let p = pair(300);
        let exact = brute_force(&p.reference, &p.query, 16, None);
        let mut last = 0.0;
        for fraction in [0.1, 0.4, 1.0] {
            let (profile, _) = scrimp_anytime(&p.reference, &p.query, 16, fraction, None, 5);
            let agreement = recall_like(&exact, &profile);
            assert!(
                agreement >= last - 0.02,
                "agreement should grow with coverage: {agreement} after {last}"
            );
            last = agreement;
        }
        assert!(last > 0.999, "full fraction must be exact, got {last}");
    }

    #[test]
    fn partial_fraction_already_finds_strong_motifs() {
        // The embedded motif is an extreme value: even 30% of diagonals
        // usually cover it or a near-equivalent.
        let p = pair(400);
        let (profile, progress) = scrimp_anytime(&p.reference, &p.query, 16, 0.3, None, 9);
        assert!(progress.diagonals_done < progress.diagonals_total / 3 + 2);
        // At least half of the entries have been touched.
        assert!(profile.unset_fraction() < 0.5);
    }

    #[test]
    fn zero_fraction_returns_unset_profile() {
        let p = pair(100);
        let (profile, progress) = scrimp_anytime(&p.reference, &p.query, 16, 0.0, None, 3);
        assert_eq!(progress.diagonals_done, 0);
        assert_eq!(profile.unset_fraction(), 1.0);
    }

    #[test]
    fn self_join_exclusion_respected() {
        let p = pair(120);
        let s = &p.reference;
        let (profile, _) = scrimp_anytime(s, s, 16, 1.0, Some(4), 4);
        for j in 0..profile.n_query() {
            let i = profile.index(j, 0);
            assert!(i >= 0);
            assert!((i as usize).abs_diff(j) >= 4);
        }
    }
}

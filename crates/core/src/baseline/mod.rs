//! Baseline implementations the paper compares against:
//!
//! * [`brute`] — a direct O(n²·d·m) computation, used as an independent
//!   correctness oracle for the streaming kernels;
//! * [`mstamp`] — an mSTAMP/(MP)^N-style CPU implementation in FP64 (the
//!   "state-of-the-art CPU-based implementation" of the paper's
//!   comparisons), independently coded with a standard sort and serial
//!   scan so it cross-validates the custom Bitonic/fan-in kernels.

pub mod brute;
pub mod mstamp;

pub use brute::brute_force;
pub use mstamp::mstamp;

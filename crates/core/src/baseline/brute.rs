//! Brute-force multi-dimensional matrix profile: direct z-normalized
//! distances, per-fiber sort, inclusive averaging, min/argmin — no
//! streaming, no shared state with the optimized kernels. O(n_r·n_q·d·m).

use crate::profile::MatrixProfile;
use mdmp_data::stats::znorm_distance;
use mdmp_data::MultiDimSeries;
use rayon::prelude::*;

/// Compute the exact multi-dimensional matrix profile by brute force.
///
/// `exclusion` is the self-join trivial-match half-width (`None` = AB-join).
///
/// # Panics
/// Panics if dimensionalities differ or a series is shorter than `m`.
pub fn brute_force(
    reference: &MultiDimSeries,
    query: &MultiDimSeries,
    m: usize,
    exclusion: Option<usize>,
) -> MatrixProfile {
    assert_eq!(reference.dims(), query.dims(), "dimensionality mismatch");
    let d = reference.dims();
    let n_r = reference.n_segments(m);
    let n_q = query.n_segments(m);

    // Column-parallel: each query position is independent.
    let columns: Vec<(Vec<f64>, Vec<i64>)> = (0..n_q)
        .into_par_iter()
        .map(|j| {
            let mut best = vec![f64::INFINITY; d];
            let mut best_i = vec![-1i64; d];
            let mut ds = vec![0.0f64; d];
            for i in 0..n_r {
                if let Some(excl) = exclusion {
                    if i.abs_diff(j) < excl {
                        continue;
                    }
                }
                for (k, slot) in ds.iter_mut().enumerate() {
                    *slot = znorm_distance(&reference.dim(k)[i..i + m], &query.dim(k)[j..j + m]);
                }
                ds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let mut run = 0.0;
                for k in 0..d {
                    run += ds[k];
                    let avg = run / (k + 1) as f64;
                    if avg < best[k] {
                        best[k] = avg;
                        best_i[k] = i as i64;
                    }
                }
            }
            (best, best_i)
        })
        .collect();

    let mut p = vec![f64::INFINITY; n_q * d];
    let mut idx = vec![-1i64; n_q * d];
    for (j, (best, best_i)) in columns.into_iter().enumerate() {
        for k in 0..d {
            p[k * n_q + j] = best[k];
            idx[k * n_q + j] = best_i[k];
        }
    }
    MatrixProfile::from_raw(p, idx, n_q, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_dimensional_known_answer() {
        // Reference contains an exact (affine) copy of the query segment.
        let q = MultiDimSeries::univariate(vec![0.0, 1.0, 0.0, -1.0, 0.0, 1.0, 0.5, 0.2]);
        let mut r_samples = vec![0.3, -0.2, 0.25, 0.1, 0.15, -0.3, 0.05, 0.4, 0.1, 0.0];
        // Insert 2*q[0..4]+5 at reference position 4.
        for t in 0..4 {
            r_samples[4 + t] = 2.0 * q.dim(0)[t] + 5.0;
        }
        let r = MultiDimSeries::univariate(r_samples);
        let profile = brute_force(&r, &q, 4, None);
        assert!(profile.value(0, 0) < 1e-9, "exact match must be found");
        assert_eq!(profile.index(0, 0), 4);
    }

    #[test]
    fn self_join_exclusion_prevents_trivial_match() {
        let x: Vec<f64> = (0..40)
            .map(|t| (t as f64 * 0.4).sin() + 0.01 * t as f64)
            .collect();
        let s = MultiDimSeries::univariate(x);
        let with_excl = brute_force(&s, &s, 8, Some(4));
        let without = brute_force(&s, &s, 8, None);
        // Without exclusion every segment matches itself with distance 0.
        for j in 0..s.n_segments(8) {
            assert!(without.value(j, 0) < 1e-9);
            assert_eq!(without.index(j, 0), j as i64);
            assert_ne!(
                with_excl.index(j, 0),
                j as i64,
                "self-match must be excluded"
            );
        }
    }

    #[test]
    fn multi_dim_sorted_averaging() {
        // d = 2: P[:,0] uses the best single dimension, P[:,1] the average.
        let r = MultiDimSeries::from_dims(vec![
            (0..20).map(|t| (t as f64 * 0.7).sin()).collect(),
            (0..20).map(|t| (t as f64 * 1.3).cos()).collect(),
        ]);
        let q = MultiDimSeries::from_dims(vec![
            (0..15).map(|t| (t as f64 * 0.9).sin()).collect(),
            (0..15).map(|t| (t as f64 * 0.5).cos()).collect(),
        ]);
        let profile = brute_force(&r, &q, 6, None);
        for j in 0..q.n_segments(6) {
            // 1-dim profile ≤ 2-dim profile (inclusive average of sorted).
            assert!(profile.value(j, 0) <= profile.value(j, 1) + 1e-12);
        }
    }
}

//! mSTAMP/(MP)^N-style CPU baseline in FP64.
//!
//! This is the "state-of-the-art CPU-based implementation" the paper
//! benchmarks against (Raoofy et al. [13], built on Yeh et al.'s mSTAMP
//! [23]): the same Eq. 1/2/3 mathematics, partitioned over reference-row
//! blocks for multicore execution exactly as (MP)^N partitions its distance
//! matrix. Deliberately coded independently of the GPU kernels — standard
//! library sort, serial inclusive scan, per-block recurrence restart — so it
//! doubles as a cross-validation oracle.

use crate::profile::MatrixProfile;
use mdmp_data::stats::{rolling_mean, rolling_std};
use mdmp_data::MultiDimSeries;
use rayon::prelude::*;

struct DimStats {
    mu: Vec<f64>,
    inv: Vec<f64>,
    df: Vec<f64>,
    dg: Vec<f64>,
}

fn dim_stats(x: &[f64], m: usize) -> DimStats {
    let n = x.len() - m + 1;
    let mu = rolling_mean(x, m);
    let sd = rolling_std(x, m);
    let inv: Vec<f64> = sd.iter().map(|&s| 1.0 / (s * (m as f64).sqrt())).collect();
    let mut df = vec![0.0; n];
    let mut dg = vec![0.0; n];
    for i in 1..n {
        df[i] = 0.5 * (x[i + m - 1] - x[i - 1]);
        dg[i] = (x[i + m - 1] - mu[i]) + (x[i - 1] - mu[i - 1]);
    }
    DimStats { mu, inv, df, dg }
}

fn centered_dot(a: &[f64], mu_a: f64, b: &[f64], mu_b: f64) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - mu_a) * (y - mu_b))
        .sum()
}

/// Compute the multi-dimensional matrix profile on the CPU in FP64.
///
/// `block_rows` controls the reference-row partitioning (the (MP)^N
/// parallelization grain); `None` picks one block per rayon thread.
pub fn mstamp(
    reference: &MultiDimSeries,
    query: &MultiDimSeries,
    m: usize,
    exclusion: Option<usize>,
    block_rows: Option<usize>,
) -> MatrixProfile {
    assert_eq!(reference.dims(), query.dims(), "dimensionality mismatch");
    assert!(m >= 2, "segment length must be at least 2");
    assert!(
        reference.len() >= m && query.len() >= m,
        "series shorter than segment length"
    );
    let d = reference.dims();
    let n_r = reference.n_segments(m);
    let n_q = query.n_segments(m);
    let two_m = 2.0 * m as f64;

    let rstats: Vec<DimStats> = (0..d).map(|k| dim_stats(reference.dim(k), m)).collect();
    let qstats: Vec<DimStats> = (0..d).map(|k| dim_stats(query.dim(k), m)).collect();

    let block = block_rows
        .unwrap_or_else(|| n_r.div_ceil(rayon::current_num_threads()))
        .max(1);
    let blocks: Vec<usize> = (0..n_r).step_by(block).collect();

    let partials: Vec<MatrixProfile> = blocks
        .par_iter()
        .map(|&r0| {
            let rows = block.min(n_r - r0);
            let mut p = vec![f64::INFINITY; n_q * d];
            let mut idx = vec![-1i64; n_q * d];
            // Streaming QT per dimension, restarted at the block boundary.
            let mut qt = vec![0.0f64; d * n_q];
            let mut fiber = vec![0.0f64; d];
            for i in 0..rows {
                let gi = r0 + i;
                for k in 0..d {
                    let rs = &rstats[k];
                    let qs = &qstats[k];
                    let rx = reference.dim(k);
                    let qx = query.dim(k);
                    let qt_k = &mut qt[k * n_q..(k + 1) * n_q];
                    if i == 0 {
                        // Direct dot products for the block's first row.
                        for (j, slot) in qt_k.iter_mut().enumerate() {
                            *slot =
                                centered_dot(&rx[gi..gi + m], rs.mu[gi], &qx[j..j + m], qs.mu[j]);
                        }
                    } else {
                        // Streaming update, right-to-left so qt[j-1] is
                        // still the previous row's value.
                        for j in (1..n_q).rev() {
                            qt_k[j] = qt_k[j - 1] + rs.df[gi] * qs.dg[j] + qs.df[j] * rs.dg[gi];
                        }
                        qt_k[0] = centered_dot(&rx[gi..gi + m], rs.mu[gi], &qx[0..m], qs.mu[0]);
                    }
                }
                for j in 0..n_q {
                    if let Some(excl) = exclusion {
                        if gi.abs_diff(j) < excl {
                            continue;
                        }
                    }
                    for (k, slot) in fiber.iter_mut().enumerate() {
                        let corr = qt[k * n_q + j] * rstats[k].inv[gi] * qstats[k].inv[j];
                        *slot = (two_m * (1.0 - corr).max(0.0)).sqrt();
                    }
                    fiber.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                    let mut run = 0.0;
                    for k in 0..d {
                        run += fiber[k];
                        let avg = run / (k + 1) as f64;
                        if avg < p[k * n_q + j] {
                            p[k * n_q + j] = avg;
                            idx[k * n_q + j] = gi as i64;
                        }
                    }
                }
            }
            MatrixProfile::from_raw(p, idx, n_q, d)
        })
        .collect();

    let mut global = MatrixProfile::new_unset(n_q, d);
    for partial in &partials {
        global.merge_min(partial);
    }
    global
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force;

    fn series(seed: u64, d: usize, len: usize) -> MultiDimSeries {
        let dims: Vec<Vec<f64>> = (0..d)
            .map(|k| {
                (0..len)
                    .map(|t| {
                        let x = t as f64 * (0.19 + 0.03 * k as f64) + seed as f64 * 0.7;
                        x.sin() + 0.25 * (x * 1.7).cos() + 0.05 * (t % 5) as f64
                    })
                    .collect()
            })
            .collect();
        MultiDimSeries::from_dims(dims)
    }

    #[test]
    fn matches_brute_force() {
        let m = 9;
        let r = series(1, 3, 70);
        let q = series(4, 3, 60);
        let fast = mstamp(&r, &q, m, None, None);
        let slow = brute_force(&r, &q, m, None);
        for k in 0..3 {
            for j in 0..q.n_segments(m) {
                assert!(
                    (fast.value(j, k) - slow.value(j, k)).abs() < 1e-8,
                    "P[{j}][{k}]: {} vs {}",
                    fast.value(j, k),
                    slow.value(j, k)
                );
                assert_eq!(fast.index(j, k), slow.index(j, k), "I[{j}][{k}]");
            }
        }
    }

    #[test]
    fn block_size_does_not_change_results() {
        let m = 8;
        let r = series(2, 2, 90);
        let q = series(7, 2, 90);
        let a = mstamp(&r, &q, m, None, Some(7));
        let b = mstamp(&r, &q, m, None, Some(64));
        let c = mstamp(&r, &q, m, None, Some(1));
        for k in 0..2 {
            for j in 0..q.n_segments(m) {
                assert!((a.value(j, k) - b.value(j, k)).abs() < 1e-9);
                assert!((a.value(j, k) - c.value(j, k)).abs() < 1e-9);
                assert_eq!(a.index(j, k), b.index(j, k));
            }
        }
    }

    #[test]
    fn self_join_with_exclusion_matches_brute() {
        let m = 8;
        let s = series(3, 2, 80);
        let excl = Some(m / 4);
        let fast = mstamp(&s, &s, m, excl, None);
        let slow = brute_force(&s, &s, m, excl);
        for k in 0..2 {
            for j in 0..s.n_segments(m) {
                assert!((fast.value(j, k) - slow.value(j, k)).abs() < 1e-8);
                assert_eq!(fast.index(j, k), slow.index(j, k));
            }
        }
    }
}

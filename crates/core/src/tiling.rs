//! The tiling scheme of Pseudocode 2 (`compute_tile_list`).
//!
//! The distance matrix is partitioned into a near-square 2-D grid of
//! `n_tiles` tiles. Each tile is a standalone matrix profile over a
//! reference-row block and a query-column block, so (a) the device-memory
//! working set is decoupled from the problem size, (b) tiles parallelize
//! across GPUs, and (c) the precalculation restart at every tile boundary
//! bounds rounding-error propagation to the tile extent (§III-B).

use crate::config::MdmpError;

/// Tile→device scheduling policy.
///
/// The paper statically assigns tiles Round-robin (Pseudocode 2,
/// `assign_tile`), which is perfectly balanced only when the device count
/// divides the tile count — the cause of the efficiency dips at odd GPU
/// counts in Fig. 5. [`TileSchedule::Balanced`] is this reproduction's
/// ablation: greedy longest-processing-time-style assignment by accumulated
/// tile area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TileSchedule {
    /// Static Round-robin, as in the paper.
    #[default]
    RoundRobin,
    /// Greedy: each tile goes to the device with the least accumulated
    /// work (tile area as the work proxy).
    Balanced,
}

/// Assign each tile to a device index under the given policy.
///
/// Equal-speed devices use weight 1.0 each; heterogeneous systems pass a
/// throughput proxy per device (see [`assign_tiles_weighted`]).
pub fn assign_tiles(tiles: &[Tile], n_devices: usize, schedule: TileSchedule) -> Vec<usize> {
    assign_tiles_weighted(tiles, &vec![1.0; n_devices], schedule)
}

/// Weighted assignment: `weights[i]` is a relative throughput of device `i`
/// (e.g. its effective memory bandwidth). Round-robin ignores the weights
/// (the paper's static scheme is speed-oblivious); Balanced greedily sends
/// each tile to the device with the smallest *normalized* accumulated work
/// `load / weight` — which matters for odd tile distributions and for
/// mixed-generation (V100 + A100) systems.
pub fn assign_tiles_weighted(
    tiles: &[Tile],
    weights: &[f64],
    schedule: TileSchedule,
) -> Vec<usize> {
    let n_devices = weights.len();
    assert!(n_devices > 0, "need at least one device");
    assert!(
        weights.iter().all(|&w| w > 0.0),
        "device weights must be positive"
    );
    match schedule {
        TileSchedule::RoundRobin => tiles.iter().map(|t| t.index % n_devices).collect(),
        TileSchedule::Balanced => {
            let mut load = vec![0.0f64; n_devices];
            tiles
                .iter()
                .map(|t| {
                    let dev = (0..n_devices)
                        .min_by(|&a, &b| {
                            (load[a] / weights[a])
                                .partial_cmp(&(load[b] / weights[b]))
                                .unwrap()
                        })
                        .unwrap();
                    load[dev] += (t.rows as f64) * (t.cols as f64);
                    dev
                })
                .collect()
        }
    }
}

/// One tile of the distance matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Position in the tile list (assignment order).
    pub index: usize,
    /// First reference-segment row covered.
    pub row0: usize,
    /// Number of reference rows.
    pub rows: usize,
    /// First query-segment column covered.
    pub col0: usize,
    /// Number of query columns.
    pub cols: usize,
}

/// Factor `n_tiles` into a near-square `(grid_rows, grid_cols)` with
/// `grid_rows ≤ grid_cols` and `grid_rows · grid_cols = n_tiles`.
///
/// The paper sweeps powers of four (1, 4, 16, …, 1024 in Fig. 7/10), which
/// factor into exact squares; other counts get the divisor pair closest to
/// square.
pub fn grid_shape(n_tiles: usize) -> (usize, usize) {
    assert!(n_tiles > 0, "n_tiles must be positive");
    let mut best = (1, n_tiles);
    let mut r = 1;
    while r * r <= n_tiles {
        if n_tiles.is_multiple_of(r) {
            best = (r, n_tiles / r);
        }
        r += 1;
    }
    best
}

fn split_blocks(total: usize, parts: usize) -> Vec<(usize, usize)> {
    // Balanced contiguous blocks: the first (total % parts) blocks get one
    // extra element.
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push((start, len));
        start += len;
    }
    out
}

/// Partition an `n_r × n_q` distance matrix into `n_tiles` tiles
/// (Pseudocode 2, line 1). Tiles are ordered row-major, which is also the
/// deterministic merge order.
pub fn compute_tile_list(n_r: usize, n_q: usize, n_tiles: usize) -> Result<Vec<Tile>, MdmpError> {
    let (gr, gc) = grid_shape(n_tiles);
    if gr > n_r || gc > n_q {
        return Err(MdmpError::BadConfig(format!(
            "tile grid {gr}x{gc} does not fit a {n_r}x{n_q} distance matrix"
        )));
    }
    let row_blocks = split_blocks(n_r, gr);
    let col_blocks = split_blocks(n_q, gc);
    let mut tiles = Vec::with_capacity(n_tiles);
    for &(row0, rows) in &row_blocks {
        for &(col0, cols) in &col_blocks {
            tiles.push(Tile {
                index: tiles.len(),
                row0,
                rows,
                col0,
                cols,
            });
        }
    }
    Ok(tiles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_matches_pseudocode_2() {
        let tiles = compute_tile_list(64, 64, 16).unwrap();
        let assign = assign_tiles(&tiles, 3, TileSchedule::RoundRobin);
        assert_eq!(&assign[..6], &[0, 1, 2, 0, 1, 2]);
        let max_load = (0..3)
            .map(|d| assign.iter().filter(|&&a| a == d).count())
            .max()
            .unwrap();
        assert_eq!(max_load, 6, "16 tiles on 3 devices: worst gets 6");
    }

    #[test]
    fn balanced_schedule_evens_out_odd_device_counts() {
        let tiles = compute_tile_list(600, 600, 16).unwrap();
        for n_dev in [3usize, 5, 7] {
            let rr = assign_tiles(&tiles, n_dev, TileSchedule::RoundRobin);
            let bal = assign_tiles(&tiles, n_dev, TileSchedule::Balanced);
            let area = |assign: &[usize], dev: usize| -> usize {
                tiles
                    .iter()
                    .zip(assign)
                    .filter(|(_, &a)| a == dev)
                    .map(|(t, _)| t.rows * t.cols)
                    .sum()
            };
            let max_rr = (0..n_dev).map(|d| area(&rr, d)).max().unwrap();
            let max_bal = (0..n_dev).map(|d| area(&bal, d)).max().unwrap();
            assert!(
                max_bal <= max_rr,
                "{n_dev} devices: balanced {max_bal} worse than round-robin {max_rr}"
            );
        }
    }

    #[test]
    fn weighted_balanced_respects_device_speeds() {
        // Two devices, one 3x faster: it should receive ~3x the area.
        let tiles = compute_tile_list(1200, 1200, 16).unwrap();
        let assign = assign_tiles_weighted(&tiles, &[3.0, 1.0], TileSchedule::Balanced);
        let area = |dev: usize| -> f64 {
            tiles
                .iter()
                .zip(&assign)
                .filter(|(_, &a)| a == dev)
                .map(|(t, _)| (t.rows * t.cols) as f64)
                .sum()
        };
        let ratio = area(0) / area(1);
        assert!(
            (2.0..=4.5).contains(&ratio),
            "fast device should take ~3x the work, got {ratio:.2}"
        );
        // Round-robin ignores the weights entirely.
        let rr = assign_tiles_weighted(&tiles, &[3.0, 1.0], TileSchedule::RoundRobin);
        let rr_count0 = rr.iter().filter(|&&d| d == 0).count();
        assert_eq!(rr_count0, 8);
    }

    #[test]
    fn every_tile_gets_a_valid_device() {
        let tiles = compute_tile_list(100, 100, 9).unwrap();
        for schedule in [TileSchedule::RoundRobin, TileSchedule::Balanced] {
            let assign = assign_tiles(&tiles, 4, schedule);
            assert_eq!(assign.len(), 9);
            assert!(assign.iter().all(|&d| d < 4));
        }
    }

    #[test]
    fn grid_shapes_for_power_of_four() {
        assert_eq!(grid_shape(1), (1, 1));
        assert_eq!(grid_shape(4), (2, 2));
        assert_eq!(grid_shape(16), (4, 4));
        assert_eq!(grid_shape(1024), (32, 32));
    }

    #[test]
    fn grid_shapes_for_other_counts() {
        assert_eq!(grid_shape(2), (1, 2));
        assert_eq!(grid_shape(6), (2, 3));
        assert_eq!(grid_shape(12), (3, 4));
        assert_eq!(grid_shape(7), (1, 7));
    }

    #[test]
    fn tiles_partition_the_matrix_exactly() {
        let tiles = compute_tile_list(1000, 700, 12).unwrap();
        assert_eq!(tiles.len(), 12);
        // Coverage check: every cell covered exactly once.
        let row_sum: usize = tiles.iter().filter(|t| t.col0 == 0).map(|t| t.rows).sum();
        let col_sum: usize = tiles.iter().filter(|t| t.row0 == 0).map(|t| t.cols).sum();
        assert_eq!(row_sum, 1000);
        assert_eq!(col_sum, 700);
        let area: usize = tiles.iter().map(|t| t.rows * t.cols).sum();
        assert_eq!(area, 1000 * 700);
        // Balanced: extents differ by at most 1 per axis.
        let rmin = tiles.iter().map(|t| t.rows).min().unwrap();
        let rmax = tiles.iter().map(|t| t.rows).max().unwrap();
        assert!(rmax - rmin <= 1);
    }

    #[test]
    fn single_tile_covers_everything() {
        let tiles = compute_tile_list(64, 64, 1).unwrap();
        assert_eq!(tiles.len(), 1);
        assert_eq!(
            tiles[0],
            Tile {
                index: 0,
                row0: 0,
                rows: 64,
                col0: 0,
                cols: 64
            }
        );
    }

    #[test]
    fn uneven_split_spreads_remainder() {
        let tiles = compute_tile_list(10, 10, 9).unwrap(); // 3x3 grid
        let rows: Vec<usize> = tiles
            .iter()
            .filter(|t| t.col0 == 0)
            .map(|t| t.rows)
            .collect();
        assert_eq!(rows, vec![4, 3, 3]);
    }

    #[test]
    fn too_many_tiles_rejected() {
        assert!(compute_tile_list(2, 2, 16).is_err());
    }

    #[test]
    fn tile_order_is_row_major() {
        let tiles = compute_tile_list(100, 100, 4).unwrap();
        assert_eq!((tiles[0].row0, tiles[0].col0), (0, 0));
        assert_eq!((tiles[1].row0, tiles[1].col0), (0, 50));
        assert_eq!((tiles[2].row0, tiles[2].col0), (50, 0));
        assert_eq!((tiles[3].row0, tiles[3].col0), (50, 50));
        for (i, t) in tiles.iter().enumerate() {
            assert_eq!(t.index, i);
        }
    }
}

//! # mdmp-core
//!
//! The primary contribution of *Exploiting Reduced Precision for GPU-based
//! Time Series Mining* (Ju, Raoofy, Yang, Laure, Schulz — IPDPS 2022),
//! reproduced in Rust on the software GPU model of `mdmp-gpu-sim`:
//!
//! * the **single-tile algorithm** (Pseudocode 1): `precalculation` →
//!   n iterations of `dist_calc` → `sort_&_incl_scan` → `update_mat_prof`;
//! * the **multi-tile algorithm** (Pseudocode 2): 2-D tiling of the distance
//!   matrix, Round-robin assignment to GPUs, per-tile streams, CPU merge —
//!   which both parallelizes across devices and bounds rounding-error
//!   propagation by restarting the Eq. 1 recurrence at tile boundaries;
//! * the **five precision modes** (FP64, FP32, FP16, Mixed, FP16C) plus the
//!   BF16/TF32 extensions, selected by [`mdmp_precision::PrecisionMode`];
//! * **baselines**: a brute-force checker and an mSTAMP/(MP)^N-style CPU
//!   implementation (the paper's comparison target).
//!
//! ## Quick start
//!
//! ```
//! use mdmp_core::{MdmpConfig, run_with_mode};
//! use mdmp_data::synthetic::{generate_pair, SyntheticConfig};
//! use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
//! use mdmp_precision::PrecisionMode;
//!
//! let mut cfg_data = SyntheticConfig::paper_default();
//! cfg_data.n_subsequences = 256; // scaled for the doctest
//! cfg_data.dims = 4;
//! cfg_data.m = 16;
//! let pair = generate_pair(&cfg_data);
//!
//! let cfg = MdmpConfig::new(16, PrecisionMode::Fp32);
//! let mut system = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
//! let run = run_with_mode(&pair.reference, &pair.query, &cfg, &mut system).unwrap();
//! assert_eq!(run.profile.n_query(), 256);
//! assert_eq!(run.profile.dims(), 4);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod analysis;
pub mod anytime;
pub mod baseline;
pub mod config;
pub mod driver;
pub mod estimate;
pub mod kernels;
pub mod multinode;
pub mod precalc;
pub mod profile;
pub mod remote;
pub mod streaming;
pub mod tile_exec;
pub mod tiling;

pub use analysis::{motif_subspace, top_discords, top_motifs, Discord, Motif};
pub use anytime::{scrimp_anytime, AnytimeProgress};
pub use config::{MdmpConfig, MdmpError, TileError};
pub use driver::{run_with_mode, run_with_mode_cached, MdmpRun, PrecalcStore};
pub use estimate::{estimate_run, RunEstimate};
pub use multinode::{estimate_cluster, run_on_cluster, ClusterRun};
pub use precalc::{
    compute_stats, compute_stats_checkpointed, convert_qt, extend_stats, initial_qt,
    initial_qt_pooled, SeriesDevice, Stats, StatsCheckpoint,
};
pub use profile::MatrixProfile;
pub use remote::{
    job_tile_count, profile_planes_k_major, run_tile_subset, SubsetTileResult, TileSubsetRun,
};
pub use streaming::{StreamingProfile, StreamingStats};
pub use tile_exec::{
    apply_plane_fault, compute_tile_precalc, execute_tile, execute_tile_from_precalc,
    execute_tile_from_precalc_pooled, max_profile_value, validate_profile_plane, PlaneBuffers,
    PlaneViolation, TilePrecalc,
};
pub use tiling::{assign_tiles, assign_tiles_weighted, compute_tile_list, Tile, TileSchedule};

//! Remote-execution hooks: run an arbitrary *subset* of a job's tiles.
//!
//! The cluster coordinator (`mdmp-cluster`) shards one job's tiles across
//! worker nodes; each node executes its leased tiles through
//! [`run_tile_subset`] and ships the per-tile result planes back. The
//! subset runner reuses the exact per-tile pipeline of the local driver —
//! same precalculation, same fault injection, same retry/quarantine
//! machinery, same validation gate — over the *global* tiling
//! ([`crate::compute_tile_list`] of the full job), so a tile computed
//! remotely is bit-identical to the same tile computed locally and the
//! coordinator's in-order merge reproduces the single-node profile
//! exactly (DESIGN.md §12).
//!
//! Unlike [`crate::multinode`], which *models* an MPI-style cluster on
//! simulated interconnects, this module backs real remote execution: the
//! worker ships actual result planes, and only the per-tile device
//! seconds come from the cost model.

use crate::config::{MdmpConfig, MdmpError, TileError};
use crate::driver::{overlap_factor, retry_backoff, submit_tile_costs, PrecalcStore};
use crate::profile::MatrixProfile;
use crate::tile_exec::{
    apply_plane_fault, compute_tile_precalc, execute_tile_from_precalc_pooled, max_profile_value,
    validate_profile_plane, PlaneBuffers,
};
use crate::tiling::{assign_tiles_weighted, compute_tile_list, Tile};
use mdmp_data::MultiDimSeries;
use mdmp_faults::FaultKind;
use mdmp_gpu_sim::{DeviceHealth, GpuSystem};
use mdmp_precision::{Bf16, Fp8E4M3, Fp8E5M2, Half, PrecisionMode, Real, Tf32};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One remotely executed tile: its place in the global tiling, the result
/// planes, and the modelled device seconds it cost this node.
#[derive(Debug)]
pub struct SubsetTileResult {
    /// The tile's coordinates in the job's global tiling.
    pub tile: Tile,
    /// The tile's matrix profile over its query-column window
    /// (`tile.cols` columns, global reference indices).
    pub profile: MatrixProfile,
    /// Modelled device seconds this tile added to the node (makespan
    /// delta of the device it ran on).
    pub device_seconds: f64,
    /// Whether the precalculation came from the store.
    pub precalc_cached: bool,
}

/// The outcome of executing a tile subset on one node.
#[derive(Debug)]
pub struct TileSubsetRun {
    /// Per-tile results, in the order the indices were requested.
    pub results: Vec<SubsetTileResult>,
    /// Tiles served from the precalc store.
    pub precalc_hits: usize,
    /// Tiles whose precalculation was computed.
    pub precalc_misses: usize,
    /// Failed attempts that were retried.
    pub tile_retries: u64,
    /// Result planes rejected by the validation gate.
    pub plane_validation_failures: u64,
    /// Faults the configured plan injected.
    pub faults_injected: u64,
    /// Devices the health ledger quarantined while executing the subset.
    pub quarantined_devices: Vec<usize>,
}

/// Flatten a profile's value and index planes in k-major order (all of
/// dimension 0's columns, then dimension 1's, …) into the caller's
/// buffers — the layout every wire encoding of tile results uses, and the
/// order [`MatrixProfile::from_raw`] accepts on the way back in.
pub fn profile_planes_k_major(
    profile: &MatrixProfile,
    values: &mut Vec<f64>,
    indices: &mut Vec<i64>,
) {
    let (n_query, dims) = (profile.n_query(), profile.dims());
    values.clear();
    indices.clear();
    values.reserve(dims * n_query);
    indices.reserve(dims * n_query);
    for k in 0..dims {
        for j in 0..n_query {
            values.push(profile.value(j, k));
            indices.push(profile.index(j, k));
        }
    }
}

/// The number of tiles a job's configuration partitions into, after shape
/// validation — what a coordinator shards before any node runs anything.
pub fn job_tile_count(
    n_ref_segments: usize,
    n_query_segments: usize,
    cfg: &MdmpConfig,
) -> Result<usize, MdmpError> {
    cfg.validate(n_ref_segments, n_query_segments)?;
    Ok(compute_tile_list(n_ref_segments, n_query_segments, cfg.n_tiles)?.len())
}

/// Execute the tiles named by `indices` (positions in the job's global
/// tiling) on this node's leased devices, with the same retry, fault
/// injection, validation and quarantine behaviour as the local driver.
///
/// Indices may arrive in any order and need not be contiguous — the
/// coordinator decides sharding and work-stealing; this function treats
/// the list as a work queue. Duplicate indices are executed twice (the
/// coordinator's merge discards duplicates deterministically).
pub fn run_tile_subset(
    reference: &MultiDimSeries,
    query: &MultiDimSeries,
    cfg: &MdmpConfig,
    system: &mut GpuSystem,
    store: Option<&dyn PrecalcStore>,
    indices: &[usize],
) -> Result<TileSubsetRun, MdmpError> {
    match cfg.mode {
        PrecisionMode::Fp64 => {
            run_subset_generic::<f64, f64>(reference, query, cfg, system, false, store, indices)
        }
        PrecisionMode::Fp32 => {
            run_subset_generic::<f32, f32>(reference, query, cfg, system, false, store, indices)
        }
        PrecisionMode::Fp16 => {
            run_subset_generic::<Half, Half>(reference, query, cfg, system, false, store, indices)
        }
        PrecisionMode::Mixed => {
            run_subset_generic::<f32, Half>(reference, query, cfg, system, false, store, indices)
        }
        PrecisionMode::Fp16c => {
            run_subset_generic::<Half, Half>(reference, query, cfg, system, true, store, indices)
        }
        PrecisionMode::Bf16 => {
            run_subset_generic::<Bf16, Bf16>(reference, query, cfg, system, false, store, indices)
        }
        PrecisionMode::Tf32 => {
            run_subset_generic::<Tf32, Tf32>(reference, query, cfg, system, false, store, indices)
        }
        // FP8 extension modes: FP32 precalculation by construction.
        PrecisionMode::Fp8E4M3 => {
            run_subset_generic::<f32, Fp8E4M3>(reference, query, cfg, system, false, store, indices)
        }
        PrecisionMode::Fp8E5M2 => {
            run_subset_generic::<f32, Fp8E5M2>(reference, query, cfg, system, false, store, indices)
        }
        // Tensor-core GEMM modes: FP32 storage + accumulation.
        PrecisionMode::Fp16Tc | PrecisionMode::Bf16Tc | PrecisionMode::Tf32Tc => {
            run_subset_generic::<f32, f32>(reference, query, cfg, system, false, store, indices)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_subset_generic<P: Real, M: Real>(
    reference: &MultiDimSeries,
    query: &MultiDimSeries,
    cfg: &MdmpConfig,
    system: &mut GpuSystem,
    kahan: bool,
    store: Option<&dyn PrecalcStore>,
    indices: &[usize],
) -> Result<TileSubsetRun, MdmpError> {
    if reference.dims() != query.dims() {
        return Err(MdmpError::DimensionalityMismatch {
            reference: reference.dims(),
            query: query.dims(),
        });
    }
    if reference.len() < cfg.m || query.len() < cfg.m {
        return Err(MdmpError::BadConfig(
            "series shorter than the segment length".into(),
        ));
    }
    let n_r = reference.n_segments(cfg.m);
    let n_q = query.n_segments(cfg.m);
    cfg.validate(n_r, n_q)?;
    let tiles = compute_tile_list(n_r, n_q, cfg.n_tiles)?;
    if let Some(&bad) = indices.iter().find(|&&i| i >= tiles.len()) {
        return Err(MdmpError::BadConfig(format!(
            "tile index {bad} out of range (job has {} tiles)",
            tiles.len()
        )));
    }

    system.reset();
    let n_gpu = system.device_count();
    // Overlap mirrors the local driver's decision for the *whole* job so
    // a tile's modelled cost does not depend on which node ran it.
    let overlap = overlap_factor(tiles.len(), n_gpu.max(1));
    let weights: Vec<f64> = (0..n_gpu)
        .map(|i| {
            let spec = &system.device(i).spec;
            spec.mem_bandwidth * spec.mem_eff_fp64
        })
        .collect();
    let assignment = assign_tiles_weighted(&tiles, &weights, cfg.schedule);
    let health = DeviceHealth::new(n_gpu, cfg.quarantine_threshold);
    let value_bound = max_profile_value(cfg.m);

    let mut streams = vec![0usize; n_gpu];
    let mut bufs = PlaneBuffers::<M>::new();
    let mut results = Vec::with_capacity(indices.len());
    let mut precalc_hits = 0usize;
    let mut precalc_misses = 0usize;
    let mut tile_retries = 0u64;
    let mut plane_validation_failures = 0u64;
    let mut faults_injected = 0u64;

    for &index in indices {
        let tile = &tiles[index];
        let preferred = assignment[index];
        let mut attempt: u32 = 0;
        let (out, cached, dev) = loop {
            let dev = health.dispatch(preferred, attempt as usize);
            let attempt_result = (|| -> Result<_, TileError> {
                let start = Instant::now();
                let fault = cfg
                    .fault_plan
                    .as_deref()
                    .and_then(|plan| plan.tile_fault(tile.index, attempt));
                if fault.is_some() {
                    faults_injected += 1;
                }
                match fault {
                    Some(FaultKind::Kernel) => return Err(TileError::Kernel { tile: tile.index }),
                    Some(FaultKind::Stall { millis }) => {
                        std::thread::sleep(Duration::from_millis(millis))
                    }
                    _ => {}
                }
                let mut compute = || {
                    Arc::new(compute_tile_precalc::<P>(
                        reference, query, tile, cfg, kahan,
                    ))
                };
                let (pre, cached) = match store {
                    Some(s) => s.fetch_or_compute(tile.index, &mut compute),
                    None => (compute(), false),
                };
                let mut out = execute_tile_from_precalc_pooled::<M>(
                    &pre, tile, cfg, kahan, cached, &mut bufs,
                );
                if let Some(kind) = fault {
                    apply_plane_fault(&mut out.profile, kind);
                }
                if cfg.clamp {
                    if let Err(violation) = validate_profile_plane(&out.profile, value_bound) {
                        plane_validation_failures += 1;
                        return Err(TileError::PoisonedPlane {
                            tile: tile.index,
                            violation,
                        });
                    }
                }
                if let Some(deadline) = cfg.tile_deadline {
                    let elapsed = start.elapsed();
                    if elapsed > deadline {
                        return Err(TileError::Timeout {
                            tile: tile.index,
                            elapsed_ms: elapsed.as_millis() as u64,
                            deadline_ms: deadline.as_millis() as u64,
                        });
                    }
                }
                Ok((out, cached))
            })();
            match attempt_result {
                Ok((out, cached)) => break (out, cached, dev),
                Err(err) => {
                    health.record_failure(dev);
                    if attempt >= cfg.tile_retries {
                        return Err(MdmpError::TileFailed {
                            tile: tile.index,
                            attempts: cfg.tile_retries + 1,
                            source: err,
                        });
                    }
                    tile_retries += 1;
                    std::thread::sleep(retry_backoff(
                        cfg.tile_retry_base,
                        cfg.tile_retry_cap,
                        attempt,
                    ));
                    attempt += 1;
                }
            }
        };
        if cached {
            precalc_hits += 1;
        } else {
            precalc_misses += 1;
        }
        let before = system.device(dev).timeline.makespan();
        submit_tile_costs(
            system,
            dev,
            streams[dev],
            tile.index,
            &out.kernel_costs,
            out.h2d_bytes,
            out.d2h_bytes,
            out.device_bytes,
            overlap,
        )?;
        streams[dev] += 1;
        let device_seconds = system.device(dev).timeline.makespan() - before;
        results.push(SubsetTileResult {
            tile: *tile,
            profile: out.profile,
            device_seconds,
            precalc_cached: cached,
        });
    }

    Ok(TileSubsetRun {
        results,
        precalc_hits,
        precalc_misses,
        tile_retries,
        plane_validation_failures,
        faults_injected,
        quarantined_devices: health.quarantined(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_with_mode;
    use mdmp_data::synthetic::{generate_pair, SyntheticConfig};
    use mdmp_gpu_sim::DeviceSpec;

    fn small_pair(n: usize, d: usize, m: usize) -> (MultiDimSeries, MultiDimSeries) {
        let cfg = SyntheticConfig {
            n_subsequences: n,
            dims: d,
            m,
            pattern: mdmp_data::Pattern::Sine,
            embeddings: 2,
            noise: 0.3,
            pattern_amplitude: 1.0,
            seed: 77,
        };
        let pair = generate_pair(&cfg);
        (pair.reference, pair.query)
    }

    #[test]
    fn subset_union_reproduces_the_full_profile_bit_identically() {
        let (r, q) = small_pair(160, 2, 12);
        for mode in PrecisionMode::ALL {
            let cfg = MdmpConfig::new(12, mode).with_tiles(4);
            let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
            let local = run_with_mode(&r, &q, &cfg, &mut sys).unwrap();
            // Two disjoint shards, deliberately out of order.
            let mut sys_a = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
            let a = run_tile_subset(&r, &q, &cfg, &mut sys_a, None, &[3, 0]).unwrap();
            let mut sys_b = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
            let b = run_tile_subset(&r, &q, &cfg, &mut sys_b, None, &[1, 2]).unwrap();
            let mut merged = MatrixProfile::new_unset(local.profile.n_query(), r.dims());
            let mut all: Vec<&SubsetTileResult> =
                a.results.iter().chain(b.results.iter()).collect();
            all.sort_by_key(|t| t.tile.index);
            for t in all {
                merged.merge_min_columns(&t.profile, t.tile.col0);
            }
            assert_eq!(merged, local.profile, "{mode}: remote union differs");
        }
    }

    #[test]
    fn subset_respects_fault_plan_and_retries() {
        use mdmp_faults::FaultPlan;
        let (r, q) = small_pair(160, 2, 12);
        let plan = FaultPlan::new().with_fault(2, FaultKind::Kernel);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp32)
            .with_tiles(4)
            .with_fault_plan(Some(Arc::new(plan)));
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 2);
        let run = run_tile_subset(&r, &q, &cfg, &mut sys, None, &[2, 3]).unwrap();
        assert_eq!(run.faults_injected, 1);
        assert_eq!(run.tile_retries, 1);
        assert_eq!(run.results.len(), 2);
    }

    #[test]
    fn exhausted_retries_surface_typed_tile_failure() {
        use mdmp_faults::FaultPlan;
        let (r, q) = small_pair(160, 2, 12);
        let plan = FaultPlan::new().with_fault(1, FaultKind::Kernel).always();
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp64)
            .with_tiles(4)
            .with_fault_plan(Some(Arc::new(plan)))
            .with_tile_retries(1);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let err = run_tile_subset(&r, &q, &cfg, &mut sys, None, &[0, 1]).unwrap_err();
        assert!(matches!(err, MdmpError::TileFailed { tile: 1, .. }));
    }

    #[test]
    fn out_of_range_index_is_a_config_error() {
        let (r, q) = small_pair(128, 2, 8);
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64).with_tiles(4);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let err = run_tile_subset(&r, &q, &cfg, &mut sys, None, &[4]).unwrap_err();
        assert!(matches!(err, MdmpError::BadConfig(_)));
    }

    #[test]
    fn device_seconds_are_positive_and_deterministic() {
        let (r, q) = small_pair(160, 2, 12);
        let cfg = MdmpConfig::new(12, PrecisionMode::Fp16).with_tiles(4);
        let mut sys1 = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let run1 = run_tile_subset(&r, &q, &cfg, &mut sys1, None, &[0, 1, 2, 3]).unwrap();
        let mut sys2 = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let run2 = run_tile_subset(&r, &q, &cfg, &mut sys2, None, &[0, 1, 2, 3]).unwrap();
        for (a, b) in run1.results.iter().zip(run2.results.iter()) {
            assert!(a.device_seconds > 0.0);
            assert_eq!(a.device_seconds, b.device_seconds);
        }
    }

    #[test]
    fn job_tile_count_matches_tiling() {
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64).with_tiles(6);
        assert_eq!(job_tile_count(100, 80, &cfg).unwrap(), 6);
        let bad = MdmpConfig::new(1, PrecisionMode::Fp64);
        assert!(job_tile_count(100, 80, &bad).is_err());
    }
}

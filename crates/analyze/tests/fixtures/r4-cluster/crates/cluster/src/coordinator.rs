// R4 fixture: unwrap on the cluster request path.
use std::sync::Mutex;

pub fn claim(table: &Mutex<u64>) -> u64 {
    *table.lock().unwrap()
}

// R2 fixture: HashMap in a merge path.
use std::collections::HashMap;

pub fn merge(parts: HashMap<usize, f64>) -> Vec<f64> {
    parts.into_values().collect()
}

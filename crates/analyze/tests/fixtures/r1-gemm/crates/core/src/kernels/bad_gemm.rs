// R1 fixture: a GEMM-style accumulator doing its own narrowing instead of
// delegating to the blessed `gemm_accumulate` / simulated MMA unit.
pub fn rogue_gemm_accumulate(base: f64, a: &[f64], b: &[f64]) -> f64 {
    let mut acc = base as f32;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += (*x as f32) * (*y as f32);
    }
    acc as f64
}

// R2 fixture: HashMap in the cluster coordinator's merge path.
use std::collections::HashMap;

pub fn pending(tiles: HashMap<usize, u64>) -> Vec<u64> {
    tiles.into_values().collect()
}

// R5 fixture: float equality outside the precision crate.
pub fn is_unit(x: f64) -> bool {
    x == 1.0
}

// R4 fixture: unwrap on the streaming append path (reachable from the
// server's stream_append handler).
pub fn apply_append(samples: &[Vec<f64>]) -> usize {
    samples.first().unwrap().len()
}

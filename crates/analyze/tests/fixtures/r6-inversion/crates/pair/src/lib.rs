// R6 fixture: `alpha` and `beta` are acquired in opposite orders on two
// interprocedural paths — `forward` holds alpha while `bump_beta` takes
// beta, `backward` holds beta while `bump_alpha` takes alpha. Two threads
// running `forward` and `backward` concurrently deadlock meeting in the
// middle.
use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) {
        let a = self.alpha.lock().unwrap();
        self.bump_beta(*a);
    }

    fn bump_beta(&self, v: u64) {
        let mut b = self.beta.lock().unwrap();
        *b += v;
    }

    pub fn backward(&self) {
        let b = self.beta.lock().unwrap();
        self.bump_alpha(*b);
    }

    fn bump_alpha(&self, v: u64) {
        let mut a = self.alpha.lock().unwrap();
        *a += v;
    }
}

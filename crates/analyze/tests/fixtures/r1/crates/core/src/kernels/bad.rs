// R1 fixture: raw sqrt in kernel code outside the blessed call sites.
pub fn sneaky_distance(gap: f64, two_m: f64) -> f64 {
    (two_m * gap).sqrt()
}

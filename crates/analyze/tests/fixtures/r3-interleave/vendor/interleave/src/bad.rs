// R3 fixture: an unjustified Relaxed load inside the vendored model
// checker — its own atomics are in audit scope like everything else.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn peek(counter: &AtomicUsize) -> usize {
    counter.load(Ordering::Relaxed)
}

// The scanner requires a crates/ tree; this one is deliberately clean so
// the only finding comes from the vendored file.
pub fn nothing() {}

// R7 fixture: `drain` holds `outer` across `wait_ready`, which parks on
// a Condvar releasing only `inner` — so `outer` stays locked for the full
// wait, and a lost wakeup stalls every thread needing `outer` forever.
// (`wait_ready` on its own is the normal condvar protocol and is clean.)
use std::sync::{Condvar, Mutex};

pub struct Waiter {
    outer: Mutex<u64>,
    inner: Mutex<bool>,
    ready: Condvar,
}

impl Waiter {
    pub fn drain(&self) {
        let held = self.outer.lock().unwrap();
        self.wait_ready(*held);
    }

    fn wait_ready(&self, _token: u64) {
        let mut flag = self.inner.lock().unwrap();
        while !*flag {
            flag = self.ready.wait(flag).unwrap();
        }
    }
}

// R3 fixture: Relaxed atomic without a relaxed-ok justification.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(n: &AtomicUsize) -> usize {
    n.fetch_add(1, Ordering::Relaxed)
}

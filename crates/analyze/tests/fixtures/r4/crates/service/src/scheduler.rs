// R4 fixture: unwrap on a request path.
use std::sync::Mutex;

pub fn touch(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}

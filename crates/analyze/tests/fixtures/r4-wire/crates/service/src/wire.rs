// R4 fixture: unwrap while decoding a frame off the wire.
pub fn payload_len(header: &[u8]) -> u32 {
    u32::from_le_bytes(header[4..8].try_into().unwrap())
}

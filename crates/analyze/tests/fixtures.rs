//! Negative-fixture suite: each `tests/fixtures/rN/` tree contains one
//! minimal bad file; `mdmp-analyze` must flag it with rule `RN` and exit
//! nonzero. The real workspace tree (with its checked-in baseline) must
//! exit zero.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn run_analyze(root: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mdmp-analyze"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("run mdmp-analyze")
}

fn fixture_root(rule: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[track_caller]
fn assert_flags(rule: &str) {
    assert_flags_in(rule, &rule.to_uppercase());
}

#[track_caller]
fn assert_flags_in(dir: &str, rule: &str) {
    let out = run_analyze(&fixture_root(dir), &["--json"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "fixture {dir} must exit 1; stdout:\n{stdout}"
    );
    let marker = format!("\"rule\": \"{rule}\"");
    assert!(
        stdout.contains(&marker),
        "fixture {dir} must be flagged as {rule}; stdout:\n{stdout}"
    );
    // No cross-talk: the minimal fixture trips exactly one rule.
    for other in ["R1", "R2", "R3", "R4", "R5", "R6", "R7"] {
        if other != rule {
            assert!(
                !stdout.contains(&format!("\"rule\": \"{other}\"")),
                "fixture {dir} unexpectedly tripped {other}; stdout:\n{stdout}"
            );
        }
    }
}

#[test]
fn r1_precision_hygiene_fixture_is_flagged() {
    assert_flags("r1");
}

#[test]
fn r2_iteration_determinism_fixture_is_flagged() {
    assert_flags("r2");
}

#[test]
fn r3_relaxed_ordering_fixture_is_flagged() {
    assert_flags("r3");
}

#[test]
fn r4_panic_hygiene_fixture_is_flagged() {
    assert_flags("r4");
}

#[test]
fn r5_float_compare_fixture_is_flagged() {
    assert_flags("r5");
}

/// PR 6: the determinism rule must also cover the cluster crate — a
/// `HashMap` in the coordinator's merge path is exactly the bug the rule
/// exists for.
#[test]
fn r2_fires_inside_the_cluster_crate() {
    assert_flags_in("r2-cluster", "R2");
}

/// PR 6: the coordinator/client/lease modules are a request path — a
/// panic there kills a node thread mid-job.
#[test]
fn r4_fires_inside_the_cluster_crate() {
    assert_flags_in("r4-cluster", "R4");
}

/// PR 8: `streaming.rs` feeds the `stream_append` request path — a panic
/// there takes down a live session's server thread, so it joins the R4
/// scope.
#[test]
fn r4_fires_inside_the_streaming_module() {
    assert_flags_in("r4-streaming", "R4");
}

/// PR 9: the binary frame codec sits on every request a binary-wire
/// client sends — a panic while decoding attacker-controlled bytes kills
/// the connection thread, so `wire.rs` joins the R4 scope.
#[test]
fn r4_fires_inside_the_wire_module() {
    assert_flags_in("r4-wire", "R4");
}

/// PR 7: blessing `gemm_accumulate` must not open the door to *other*
/// functions doing their own GEMM-flavoured narrowing — a look-alike
/// accumulator with raw `as f32` casts is still flagged.
#[test]
fn r1_fires_on_unblessed_gemm_accumulator() {
    assert_flags_in("r1-gemm", "R1");
}

/// PR 10: lock-order inversion across two call chains. The diagnostic
/// must carry both directed acquisition chains, each at least two hops
/// (acquire → call → acquire), and trip nothing else.
#[test]
fn r6_inversion_fixture_is_flagged_with_interprocedural_chains() {
    assert_flags_in("r6-inversion", "R6");
    let out = run_analyze(&fixture_root("r6-inversion"), &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for hop in [
        "acquires `pair/lib.rs::alpha`",
        "calls `bump_beta`",
        "acquires `pair/lib.rs::beta`",
        "calls `bump_alpha`",
    ] {
        assert!(
            stdout.contains(hop),
            "R6 chain must show hop {hop:?}; stdout:\n{stdout}"
        );
    }
    assert!(
        stdout.contains("interleave model `lock_order_"),
        "R6 must name the interleave model to write; stdout:\n{stdout}"
    );
}

/// PR 10: a lock held across a Condvar wait on a *different* lock. The
/// chain must cross the call (acquire outer → call → wait), and the
/// callee's own wait loop must not be flagged.
#[test]
fn r7_hold_across_wait_fixture_is_flagged_with_chain() {
    assert_flags_in("r7-hold-across-wait", "R7");
    let out = run_analyze(&fixture_root("r7-hold-across-wait"), &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for hop in [
        "acquires `waiter/lib.rs::outer`",
        "calls `wait_ready`",
        "Condvar wait releasing `waiter/lib.rs::inner`",
    ] {
        assert!(
            stdout.contains(hop),
            "R7 chain must show hop {hop:?}; stdout:\n{stdout}"
        );
    }
    assert!(
        stdout.contains("interleave model `hold_"),
        "R7 must name the interleave model to write; stdout:\n{stdout}"
    );
}

/// PR 10: the vendored model checker's own atomics are in R3 scope.
#[test]
fn r3_fires_inside_vendored_interleave() {
    assert_flags_in("r3-interleave", "R3");
    let out = run_analyze(&fixture_root("r3-interleave"), &["--json"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("vendor/interleave/src/bad.rs"),
        "finding must point into the vendored tree; stdout:\n{stdout}"
    );
}

/// PR 10: `--emit sarif` produces a SARIF 2.1.0 document CI can upload
/// for code-scanning annotations.
#[test]
fn sarif_emit_mode_produces_annotatable_results() {
    let out = run_analyze(&fixture_root("r6-inversion"), &["--emit", "sarif"]);
    assert_eq!(out.status.code(), Some(1), "violations still gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"version\": \"2.1.0\"",
        "\"name\": \"mdmp-analyze\"",
        "\"ruleId\": \"R6\"",
        "\"uri\": \"crates/pair/src/lib.rs\"",
        "\"startLine\":",
    ] {
        assert!(
            stdout.contains(needle),
            "SARIF output missing {needle:?}; stdout:\n{stdout}"
        );
    }
}

/// PR 10: hardcoded scope lists can't rot silently — a tree where a
/// scoped crate exists but a listed file is gone warns, and
/// `--deny-warnings` turns that into a failure.
#[test]
fn stale_scope_path_warns_and_gates_under_deny_warnings() {
    let dir = std::env::temp_dir().join(format!("mdmp-analyze-scope-{}", std::process::id()));
    let src = dir.join("crates/service/src");
    std::fs::create_dir_all(&src).expect("mkdir fixture");
    // service/src exists but none of the scoped files do.
    std::fs::write(src.join("other.rs"), "pub fn nothing() {}\n").expect("write file");

    let lenient = run_analyze(&dir, &[]);
    assert_eq!(lenient.status.code(), Some(0), "stale scope is a warning");
    let stderr = String::from_utf8_lossy(&lenient.stderr);
    assert!(
        stderr.contains("stale scope path") && stderr.contains("crates/service/src/scheduler.rs"),
        "warning must name the rotted scope entry; stderr:\n{stderr}"
    );

    let strict = run_analyze(&dir, &["--deny-warnings"]);
    assert_eq!(
        strict.status.code(),
        Some(1),
        "--deny-warnings promotes stale scope paths to failures"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_workspace_tree_exits_zero() {
    let out = run_analyze(&workspace_root(), &["--deny-warnings"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace must be lint-clean\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
}

#[test]
fn human_output_carries_file_line_spans() {
    let out = run_analyze(&fixture_root("r3"), &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/core/src/bad.rs:5: R3"),
        "diagnostic must lead with file:line; stdout:\n{stdout}"
    );
}

#[test]
fn stale_baseline_entry_warns_and_gates_under_deny_warnings() {
    let dir = std::env::temp_dir().join(format!("mdmp-analyze-stale-{}", std::process::id()));
    let src = dir.join("crates/clean/src");
    std::fs::create_dir_all(&src).expect("mkdir fixture");
    std::fs::write(src.join("lib.rs"), "pub fn nothing() {}\n").expect("write clean file");
    let baseline = dir.join("baseline.toml");
    std::fs::write(
        &baseline,
        "[[allow]]\nrule = \"R5\"\nfile = \"crates/clean/src/lib.rs\"\ncontains = \"gone\"\nreason = \"obsolete\"\n",
    )
    .expect("write baseline");

    let lenient = run_analyze(&dir, &["--baseline", baseline.to_str().expect("utf8 path")]);
    assert_eq!(
        lenient.status.code(),
        Some(0),
        "stale entry is only a warning"
    );
    assert!(
        String::from_utf8_lossy(&lenient.stderr).contains("stale baseline entry"),
        "warning must name the stale entry"
    );

    let strict = run_analyze(
        &dir,
        &[
            "--baseline",
            baseline.to_str().expect("utf8 path"),
            "--deny-warnings",
        ],
    );
    assert_eq!(
        strict.status.code(),
        Some(1),
        "--deny-warnings promotes stale entries to failures"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_baseline_is_a_usage_error() {
    let dir = std::env::temp_dir().join(format!("mdmp-analyze-badbase-{}", std::process::id()));
    std::fs::create_dir_all(dir.join("crates/clean/src")).expect("mkdir fixture");
    std::fs::write(dir.join("crates/clean/src/lib.rs"), "pub fn nothing() {}\n")
        .expect("write clean file");
    let baseline = dir.join("baseline.toml");
    std::fs::write(&baseline, "[[allow]]\nrule = \"R5\"\n").expect("write baseline");
    let out = run_analyze(&dir, &["--baseline", baseline.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(2), "incomplete entry is rejected");
    std::fs::remove_dir_all(&dir).ok();
}

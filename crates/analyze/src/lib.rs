//! # mdmp-analyze — workspace invariant linter
//!
//! A static-analysis pass over `crates/*/src` (plus `vendor/interleave`
//! for R3) that enforces the invariants the paper's bit-identity claims
//! rest on (DESIGN.md §11, §16). Seven rules:
//!
//! | id | rule | protects |
//! |----|------|----------|
//! | R1 | precision hygiene: no raw `.sqrt()`/`.powi()`/`as f32`/`as f64` in `crates/core/src/kernels/*` outside the blessed `dist_value`/`dist_value_lanes`/`gemm_accumulate` call sites | every rounding decision happens in one audited expression |
//! | R2 | determinism: no `HashMap`/`HashSet` in merge/profile/serialization paths | iteration order never reaches results |
//! | R3 | atomic-ordering audit: every `Ordering::Relaxed` carries a `// relaxed-ok:` justification | each relaxed access is argued not to order data |
//! | R4 | panic hygiene: no `unwrap()`/`expect()`/`panic!` in service request-path modules | a bad request cannot take the worker down |
//! | R5 | float-compare: no `==`/`!=` on float operands outside `crates/precision` | bit-equality goes through the pinned helpers |
//! | R6 | lock-order: no two locks acquired in opposite orders on any two interprocedural paths | no schedule can deadlock two threads meeting in the middle |
//! | R7 | lock-across-blocking: no lock held across socket I/O, `join`, channel `recv`, sleep, or a `Condvar` wait on a different lock | a slow peer or lost wakeup cannot stall every thread needing the lock |
//!
//! R1–R5 are line-level token rules. R6/R7 are a two-phase
//! interprocedural analysis: [`facts`] extracts per-function events
//! (acquisitions with canonical lock identities, waits, blocking calls,
//! intra-crate callees, each with the held-lock set), [`callgraph`]
//! propagates summaries over the approximate call graph to a fixpoint,
//! and [`lockorder`] reports inversions and hold-across-blocking with
//! full `file:line` acquisition chains in [`Violation::path`].
//!
//! Escapes: an annotation comment on the same or previous line
//! (`precision-ok:`, `order-ok:`, `relaxed-ok:`, `panic-ok:`,
//! `float-eq-ok:`, `lock-order-ok:`, `lock-hold-ok:`) or a `[[allow]]`
//! entry in `analyze/baseline.toml`. `#[cfg(test)]` modules are exempt
//! from every rule.
//!
//! The scanner masks string literals and comments before matching, tracks
//! nested block comments and raw strings, and records the enclosing
//! function per line so R1 can bless the audited distance expressions.
//! All output (diagnostics, JSON, SARIF) is sorted, so the tool itself is
//! deterministic. Hardcoded scope lists (request-path modules, kernel
//! dir, blessed kernel fns, lock table files) are checked against the
//! tree on every run and rot is reported as a warning (an error under
//! `--deny-warnings`).

mod callgraph;
mod facts;
mod lockorder;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A lint rule's static description.
pub struct RuleInfo {
    /// Stable identifier (`R1`..`R5`).
    pub id: &'static str,
    /// Short human name.
    pub name: &'static str,
    /// The annotation marker that waives a finding in place.
    pub annotation: &'static str,
}

/// The rule table, in report order.
pub const RULES: [RuleInfo; 7] = [
    RuleInfo {
        id: "R1",
        name: "precision-hygiene",
        annotation: "precision-ok:",
    },
    RuleInfo {
        id: "R2",
        name: "iteration-determinism",
        annotation: "order-ok:",
    },
    RuleInfo {
        id: "R3",
        name: "relaxed-ordering-audit",
        annotation: "relaxed-ok:",
    },
    RuleInfo {
        id: "R4",
        name: "panic-hygiene",
        annotation: "panic-ok:",
    },
    RuleInfo {
        id: "R5",
        name: "float-compare",
        annotation: "float-eq-ok:",
    },
    RuleInfo {
        id: "R6",
        name: "lock-order-inversion",
        annotation: "lock-order-ok:",
    },
    RuleInfo {
        id: "R7",
        name: "lock-across-blocking",
        annotation: "lock-hold-ok:",
    },
];

/// Functions in `crates/core/src/kernels/` allowed to perform raw float
/// arithmetic: the audited distance expression, its lane form, and the
/// simulated-MMA accumulation choke point of the tensor-core GEMM path
/// (all narrowing there is delegated to `mdmp_gpu_sim::mma_dot`).
const BLESSED_KERNEL_FNS: [&str; 3] = ["dist_value", "dist_value_lanes", "gemm_accumulate"];

/// Service and cluster modules on the request path (R4 scope): code a
/// remote client's request flows through must return typed errors, never
/// panic.
const REQUEST_PATH_MODULES: [&str; 9] = [
    "crates/service/src/scheduler.rs",
    "crates/service/src/server.rs",
    "crates/service/src/session.rs",
    "crates/service/src/cache.rs",
    "crates/service/src/wire.rs",
    "crates/core/src/streaming.rs",
    "crates/cluster/src/coordinator.rs",
    "crates/cluster/src/client.rs",
    "crates/cluster/src/lease.rs",
];

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (`R1`..`R7`).
    pub rule: &'static str,
    /// What went wrong.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// For R6/R7: the acquisition chain (`file:line: what` per hop)
    /// leading to the finding. Empty for the line-level rules.
    pub path: Vec<String>,
}

/// One `[[allow]]` entry from the baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id the entry waives.
    pub rule: String,
    /// Repo-relative file the entry applies to.
    pub file: String,
    /// Substring of the offending line (stable under line drift).
    pub contains: String,
    /// Why the finding is benign.
    pub reason: String,
}

/// Parsed baseline: a list of allow entries.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parse the TOML subset used by `analyze/baseline.toml`:
    /// `[[allow]]` tables with `rule`/`file`/`contains`/`reason` string
    /// keys, `#` comments, blank lines. Anything else is an error.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        let mut current: Option<BTreeMap<String, String>> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(map) = current.take() {
                    entries.push(Self::finish_entry(map, lineno)?);
                }
                current = Some(BTreeMap::new());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "baseline line {lineno}: expected `key = \"value\"`"
                ));
            };
            let key = key.trim();
            let value = value.trim();
            if !value.starts_with('"') || !value.ends_with('"') || value.len() < 2 {
                return Err(format!(
                    "baseline line {lineno}: value for `{key}` must be a double-quoted string"
                ));
            }
            let unquoted = value[1..value.len() - 1]
                .replace("\\\"", "\"")
                .replace("\\\\", "\\");
            let Some(map) = current.as_mut() else {
                return Err(format!(
                    "baseline line {lineno}: `{key}` outside an [[allow]] table"
                ));
            };
            if map.insert(key.to_string(), unquoted).is_some() {
                return Err(format!("baseline line {lineno}: duplicate key `{key}`"));
            }
        }
        if let Some(map) = current.take() {
            entries.push(Self::finish_entry(map, text.lines().count())?);
        }
        Ok(Baseline { entries })
    }

    fn finish_entry(
        mut map: BTreeMap<String, String>,
        lineno: usize,
    ) -> Result<BaselineEntry, String> {
        let mut take = |key: &str| {
            map.remove(key)
                .ok_or_else(|| format!("baseline entry ending at line {lineno}: missing `{key}`"))
        };
        let entry = BaselineEntry {
            rule: take("rule")?,
            file: take("file")?,
            contains: take("contains")?,
            reason: take("reason")?,
        };
        if let Some(extra) = map.keys().next() {
            return Err(format!(
                "baseline entry ending at line {lineno}: unknown key `{extra}`"
            ));
        }
        if entry.reason.trim().is_empty() {
            return Err(format!(
                "baseline entry ending at line {lineno}: `reason` must not be empty"
            ));
        }
        Ok(entry)
    }
}

/// Result of a full analysis run.
#[derive(Debug)]
pub struct Analysis {
    /// Findings not waived by an annotation or the baseline, sorted.
    pub violations: Vec<Violation>,
    /// Baseline entries that matched nothing (stale).
    pub stale_baseline: Vec<BaselineEntry>,
    /// Scope-rot warnings: hardcoded scope paths that no longer exist on
    /// disk. Fatal under `--deny-warnings`.
    pub warnings: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Per-line scan product.
pub(crate) struct LineInfo {
    raw: String,
    masked: String,
    in_test: bool,
    func: Option<String>,
}

/// Mask string/char literals and comments with spaces, preserving line
/// structure and column positions, so rules match code tokens only.
pub(crate) fn mask_source(text: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,
        Block(usize),
        Str,
        RawStr(usize),
    }
    let bytes: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::Line;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    st = St::Block(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    st = St::Str;
                    out.push(' ');
                    i += 1;
                }
                'r' | 'b' => {
                    // Possible raw-string start: r", r#", br", b".
                    let mut j = i + 1;
                    if c == 'b' && bytes.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = (c == 'r' || (c == 'b' && bytes.get(i + 1) == Some(&'r')))
                        && bytes.get(j) == Some(&'"');
                    let is_byte_str = c == 'b' && hashes == 0 && bytes.get(i + 1) == Some(&'"');
                    if is_raw {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        st = St::RawStr(hashes);
                        i = j + 1;
                    } else if is_byte_str {
                        out.push_str("  ");
                        st = St::Str;
                        i += 2;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: 'x' or '\n' is a literal;
                    // 'a followed by non-quote is a lifetime.
                    if next == Some('\\') {
                        // Escape: mask until the closing quote.
                        out.push(' ');
                        i += 1;
                        while i < bytes.len() {
                            let e = bytes[i];
                            out.push(if e == '\n' { '\n' } else { ' ' });
                            i += 1;
                            if e == '\'' {
                                break;
                            }
                        }
                    } else if bytes.get(i + 2) == Some(&'\'') {
                        out.push_str("   ");
                        i += 3;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            St::Line => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            St::Block(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::Block(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::Block(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else {
                    if c == '"' {
                        st = St::Code;
                    }
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && bytes[i + 1..].iter().take(hashes).all(|&h| h == '#') && {
                    bytes.get(i + 1 + hashes).is_some() || i + 1 + hashes == bytes.len()
                } {
                    // Close only when exactly `hashes` hashes follow.
                    let closing = bytes[i + 1..].iter().take_while(|&&h| h == '#').count();
                    if closing >= hashes {
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        st = St::Code;
                        i += 1 + hashes;
                        continue;
                    }
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
    }
    out
}

/// Tokenize a masked line into identifier-ish tokens.
fn tokens(line: &str) -> Vec<&str> {
    line.split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|t| !t.is_empty())
        .collect()
}

/// Build per-line info: masked text, `#[cfg(test)]` membership, and the
/// enclosing function name (tracked by brace depth on masked lines).
pub(crate) fn scan_lines(text: &str) -> Vec<LineInfo> {
    let masked = mask_source(text);
    let raw_lines: Vec<&str> = text.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let mut out = Vec::with_capacity(raw_lines.len());

    let mut depth: i64 = 0;
    let mut pending_test = false;
    let mut test_depth: Option<i64> = None;
    let mut pending_fn: Option<String> = None;
    // Paren/bracket depth inside a pending signature, so `;` in `[T; N]`
    // or default args is not mistaken for a bodyless trait method.
    let mut sig_nest: i64 = 0;
    let mut fn_stack: Vec<(i64, String)> = Vec::new();

    for (idx, raw) in raw_lines.iter().enumerate() {
        let m = masked_lines.get(idx).copied().unwrap_or("");
        let mut in_test = test_depth.is_some() || pending_test;

        let toks = tokens(m);
        if let Some(pos) = toks.iter().position(|&t| t == "fn") {
            if let Some(name) = toks.get(pos + 1) {
                pending_fn = Some((*name).to_string());
                sig_nest = 0;
            }
        }
        if m.contains("#[cfg(test)]") {
            pending_test = true;
            in_test = true;
        }

        for c in m.chars() {
            match c {
                '{' => {
                    if pending_test && test_depth.is_none() {
                        test_depth = Some(depth);
                        pending_test = false;
                        in_test = true;
                    }
                    if let Some(name) = pending_fn.take() {
                        fn_stack.push((depth, name));
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_depth.is_some_and(|td| depth <= td) {
                        test_depth = None;
                    }
                    while fn_stack.last().is_some_and(|(d, _)| depth <= *d) {
                        fn_stack.pop();
                    }
                }
                '(' | '[' if pending_fn.is_some() => sig_nest += 1,
                ')' | ']' if pending_fn.is_some() => sig_nest -= 1,
                ';' if sig_nest == 0 => {
                    // `fn name(...);` in a trait: no body to enter.
                    pending_fn = None;
                }
                _ => {}
            }
        }

        out.push(LineInfo {
            raw: (*raw).to_string(),
            masked: m.to_string(),
            in_test,
            func: fn_stack.last().map(|(_, n)| n.clone()),
        });
    }
    out
}

/// Is the finding waived by an annotation on this line or in the
/// contiguous comment block directly above it?
pub(crate) fn annotated(lines: &[LineInfo], idx: usize, marker: &str) -> bool {
    if lines[idx].raw.contains(marker) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let prev = lines[i].raw.trim_start();
        if !prev.starts_with("//") {
            return false;
        }
        if prev.contains(marker) {
            return true;
        }
    }
    false
}

/// Extract the operand text immediately left/right of position `pos..pos+2`
/// (an `==`/`!=` operator) in a masked line.
fn operands(line: &str, pos: usize) -> (String, String) {
    let chars: Vec<char> = line.chars().collect();
    let is_operand = |c: char| {
        c.is_alphanumeric()
            || matches!(c, '_' | '.' | ':' | '(' | ')' | '[' | ']' | '-' | '*' | '&')
    };
    let mut l = pos;
    while l > 0 && chars[l - 1] == ' ' {
        l -= 1;
    }
    let left_end = l;
    while l > 0 && is_operand(chars[l - 1]) {
        l -= 1;
    }
    let left: String = chars[l..left_end].iter().collect();
    let mut r = pos + 2;
    while r < chars.len() && chars[r] == ' ' {
        r += 1;
    }
    let right_start = r;
    while r < chars.len() && is_operand(chars[r]) {
        r += 1;
    }
    let right: String = chars[right_start..r].iter().collect();
    (left, right)
}

/// Does an operand expression look like a float?
fn float_ish(op: &str) -> bool {
    // An operand funneled through `to_bits()` is the integer comparison
    // this rule recommends, whatever float names appear earlier in the
    // call chain (`Half::from_f64(v).to_f64().to_bits()`).
    if op.trim_end().ends_with(".to_bits()") {
        return false;
    }
    if op.contains("f32") || op.contains("f64") {
        return true;
    }
    if op.contains("NAN") || op.contains("INFINITY") || op.contains("EPSILON") {
        return true;
    }
    if op.contains(".fract(") || op.contains(".sqrt(") {
        return true;
    }
    // Float literal: a digit, a dot, then a digit (1.0, 0.25, 3.0e-2).
    let chars: Vec<char> = op.chars().collect();
    chars
        .windows(3)
        .any(|w| w[0].is_ascii_digit() && w[1] == '.' && (w[2].is_ascii_digit() || w[2] == 'e'))
        || {
            // Trailing `1.` form.
            chars.len() >= 2
                && chars[chars.len() - 1] == '.'
                && chars[chars.len() - 2].is_ascii_digit()
        }
}

/// Run the line-level rules (R1–R5) over one file. Vendored sources
/// (`vendor/interleave`) are in scope for R3 only: the model checker's
/// own atomics must be audited, but its internal style is its own.
fn check_file(rel: &str, text: &str, out: &mut Vec<Violation>) {
    let lines = scan_lines(text);
    let vendored = rel.starts_with("vendor/");
    let in_kernels = !vendored && rel.starts_with("crates/core/src/kernels/");
    let r2_scope = !vendored
        && (rel.starts_with("crates/core/src/")
            || rel.starts_with("crates/service/src/")
            || rel.starts_with("crates/cluster/src/")
            || rel.starts_with("crates/cli/src/"));
    let r4_scope = !vendored && REQUEST_PATH_MODULES.contains(&rel);
    let r5_scope = !vendored && !rel.starts_with("crates/precision/");

    for (idx, li) in lines.iter().enumerate() {
        if li.in_test {
            continue;
        }
        let line_no = idx + 1;
        let m = &li.masked;
        let push = |out: &mut Vec<Violation>, rule: &'static str, message: String| {
            out.push(Violation {
                file: rel.to_string(),
                line: line_no,
                rule,
                message,
                snippet: li.raw.trim().to_string(),
                path: Vec::new(),
            });
        };

        // R1: precision hygiene inside kernels.
        if in_kernels && !annotated(&lines, idx, "precision-ok:") {
            let blessed = li
                .func
                .as_deref()
                .is_some_and(|f| BLESSED_KERNEL_FNS.contains(&f));
            if !blessed {
                for tok in [".sqrt(", ".powi(", "as f32", "as f64"] {
                    if m.contains(tok) {
                        push(
                            out,
                            "R1",
                            format!(
                                "raw float operation `{}` in kernel code outside the blessed \
                                 dist_value/dist_value_lanes call sites",
                                tok.trim()
                            ),
                        );
                    }
                }
            }
        }

        // R2: HashMap/HashSet in determinism-sensitive crates.
        if r2_scope && !annotated(&lines, idx, "order-ok:") {
            for tok in ["HashMap", "HashSet"] {
                if tokens(m).contains(&tok) {
                    push(
                        out,
                        "R2",
                        format!(
                            "`{tok}` in a merge/profile/serialization path: iteration order is \
                             nondeterministic; use BTreeMap/BTreeSet/Vec"
                        ),
                    );
                }
            }
        }

        // R3: Relaxed atomics need a written justification.
        if m.contains("Ordering::Relaxed") && !annotated(&lines, idx, "relaxed-ok:") {
            push(
                out,
                "R3",
                "`Ordering::Relaxed` without a `// relaxed-ok:` justification".to_string(),
            );
        }

        // R4: request-path panic hygiene.
        if r4_scope && !annotated(&lines, idx, "panic-ok:") {
            for tok in [".unwrap()", ".expect(", "panic!(", "unreachable!("] {
                if m.contains(tok) {
                    push(
                        out,
                        "R4",
                        format!(
                            "`{}` on a service request path; return a typed error instead",
                            tok.trim_end_matches('(')
                        ),
                    );
                }
            }
        }

        // R5: float equality outside the precision crate.
        if r5_scope && !annotated(&lines, idx, "float-eq-ok:") {
            let bytes: Vec<char> = m.chars().collect();
            for pos in 0..bytes.len().saturating_sub(1) {
                let two: String = bytes[pos..pos + 2].iter().collect();
                if two != "==" && two != "!=" {
                    continue;
                }
                // Skip the middle of `===`-like runs and `<=`/`>=`/`=>`.
                if pos > 0 && matches!(bytes[pos - 1], '=' | '<' | '>' | '!') {
                    continue;
                }
                if bytes.get(pos + 2) == Some(&'=') {
                    continue;
                }
                let (left, right) = operands(m, pos);
                if float_ish(&left) || float_ish(&right) {
                    push(
                        out,
                        "R5",
                        format!(
                            "float equality `{left} {two} {right}`; use the precision crate's \
                             bit-equality helpers or compare to_bits()"
                        ),
                    );
                    break; // one R5 finding per line is enough
                }
            }
        }
    }
}

/// Walk `root/crates/*/src` — plus `root/vendor/interleave/src` when
/// present (R3 scope) — collecting `.rs` files, sorted by relative path
/// for deterministic output.
fn collect_sources(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk(&src, root, &mut out)?;
        }
    }
    let vendored = root.join("vendor/interleave/src");
    if vendored.is_dir() {
        walk(&vendored, root, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Analyze the tree at `root` against `baseline`: the line-level rules
/// R1–R5 per file, then the two-phase interprocedural R6/R7 pass over
/// the `crates/*/src` facts.
pub fn analyze(root: &Path, baseline: &Baseline) -> Result<Analysis, String> {
    let sources = collect_sources(root)?;
    let mut violations = Vec::new();
    let mut file_facts = Vec::new();
    let mut raw_lines: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut kernel_fns_seen: Vec<&'static str> = Vec::new();
    for (rel, path) in &sources {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        check_file(rel, &text, &mut violations);
        if rel.starts_with("crates/core/src/kernels/") {
            for f in BLESSED_KERNEL_FNS {
                if text.contains(&format!("fn {f}")) && !kernel_fns_seen.contains(&f) {
                    kernel_fns_seen.push(f);
                }
            }
        }
        // R6/R7 facts come from the workspace crates only; the vendored
        // model checker's own locking is out of scope by design.
        if rel.starts_with("crates/") {
            file_facts.push(facts::extract(rel, &text));
            raw_lines.insert(rel.clone(), text.lines().map(str::to_string).collect());
        }
    }
    let program = callgraph::build(&file_facts);
    violations.extend(lockorder::check(&program, &file_facts, &raw_lines));

    let scanned_kernels = sources
        .iter()
        .any(|(rel, _)| rel.starts_with("crates/core/src/kernels/"));
    let warnings = scope_warnings(root, scanned_kernels, &kernel_fns_seen);

    let mut used = vec![false; baseline.entries.len()];
    violations.retain(|v| {
        for (i, e) in baseline.entries.iter().enumerate() {
            if e.rule == v.rule && e.file == v.file && v.snippet.contains(&e.contains) {
                used[i] = true;
                return false;
            }
        }
        true
    });
    let stale_baseline = baseline
        .entries
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();

    violations.sort();
    Ok(Analysis {
        violations,
        stale_baseline,
        warnings,
        files_scanned: sources.len(),
    })
}

/// Stale-scope detection: every hardcoded scope path must still exist on
/// disk, so the lists cannot rot silently when files are renamed. Each
/// check is gated on its crate's `src` dir existing, so fixture trees
/// (which contain only the crates under test) stay warning-free.
fn scope_warnings(
    root: &Path,
    scanned_kernels: bool,
    kernel_fns_seen: &[&'static str],
) -> Vec<String> {
    let mut warnings = Vec::new();
    let crate_src_of = |rel: &str| -> Option<PathBuf> {
        let mut parts = rel.split('/');
        let (a, b) = (parts.next()?, parts.next()?);
        Some(root.join(a).join(b).join("src"))
    };
    let mut stale_file = |list_name: &str, rel: &str| {
        let Some(src) = crate_src_of(rel) else { return };
        if src.is_dir() && !root.join(rel).is_file() {
            warnings.push(format!(
                "stale scope path: {list_name} lists `{rel}` but it no longer exists on disk \
                 (renamed? update the list)"
            ));
        }
    };
    for rel in REQUEST_PATH_MODULES {
        stale_file("REQUEST_PATH_MODULES (R4)", rel);
    }
    for rel in facts::BLOCKING_IO_FILES {
        stale_file("BLOCKING_IO_FILES (R7)", rel);
    }
    let mut lock_files: Vec<&str> = facts::LOCK_TABLE.iter().map(|(f, _, _)| *f).collect();
    lock_files.sort_unstable();
    lock_files.dedup();
    for rel in lock_files {
        stale_file("LOCK_TABLE (R6/R7)", rel);
    }
    if root.join("crates/core/src").is_dir() && !root.join("crates/core/src/kernels").is_dir() {
        warnings.push(
            "stale scope path: R1 scopes `crates/core/src/kernels/` but the directory no longer \
             exists on disk"
                .to_string(),
        );
    }
    if scanned_kernels {
        for f in BLESSED_KERNEL_FNS {
            if !kernel_fns_seen.contains(&f) {
                warnings.push(format!(
                    "stale scope entry: BLESSED_KERNEL_FNS (R1) blesses `{f}` but no kernel file \
                     defines it (renamed? update the list)"
                ));
            }
        }
    }
    warnings
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the analysis as a JSON document (hand-rolled; the workspace
/// deliberately has no serde).
pub fn to_json(a: &Analysis) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"files_scanned\": ");
    let _ = write!(s, "{}", a.files_scanned);
    s.push_str(",\n  \"violations\": [");
    for (i, v) in a.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \
             \"snippet\": \"{}\", \"path\": [",
            v.rule,
            json_escape(&v.file),
            v.line,
            json_escape(&v.message),
            json_escape(&v.snippet)
        );
        for (j, hop) in v.path.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\"", json_escape(hop));
        }
        s.push_str("]}");
    }
    if !a.violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"stale_baseline\": [");
    for (i, e) in a.stale_baseline.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"contains\": \"{}\"}}",
            json_escape(&e.rule),
            json_escape(&e.file),
            json_escape(&e.contains)
        );
    }
    if !a.stale_baseline.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"warnings\": [");
    for (i, w) in a.warnings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\n    \"{}\"", json_escape(w));
    }
    if !a.warnings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Render the analysis as a SARIF 2.1.0 document so CI can surface
/// findings as code-scanning annotations. Same hand-rolled approach as
/// [`to_json`].
pub fn to_sarif(a: &Analysis) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n  \"runs\": [{\n");
    s.push_str("    \"tool\": {\"driver\": {\"name\": \"mdmp-analyze\", \"rules\": [");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "\n      {{\"id\": \"{}\", \"name\": \"{}\"}}",
            r.id, r.name
        );
    }
    s.push_str("\n    ]}},\n    \"results\": [");
    for (i, v) in a.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let mut text = v.message.clone();
        for hop in &v.path {
            text.push('\n');
            text.push_str(hop);
        }
        let _ = write!(
            s,
            "\n      {{\"ruleId\": \"{}\", \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\
             \"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}",
            v.rule,
            json_escape(&text),
            json_escape(&v.file),
            v.line.max(1)
        );
    }
    if !a.violations.is_empty() {
        s.push_str("\n    ");
    }
    s.push_str("]\n  }]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        check_file(rel, src, &mut out);
        out
    }

    #[test]
    fn masking_hides_strings_and_comments() {
        let masked = mask_source("let x = \"HashMap\"; // HashMap\n/* HashMap */ let y = 1;\n");
        assert!(!masked.contains("HashMap"));
        assert!(masked.contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_and_chars_are_masked() {
        let masked = mask_source("let s = r#\"Ordering::Relaxed\"#; let c = '\"'; let l: &'a u8;");
        assert!(!masked.contains("Relaxed"));
        assert!(masked.contains("let l: &"));
    }

    #[test]
    fn r1_fires_outside_blessed_fn_only() {
        let src = "pub fn dist_value(x: f64) -> f64 {\n    x.sqrt()\n}\npub fn other(x: f64) -> f64 {\n    x.sqrt()\n}\n";
        let v = run("crates/core/src/kernels/dist.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R1");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn r2_ignores_test_modules_and_annotations() {
        let src = "use std::collections::HashMap; // order-ok: keyed access only\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let v = run("crates/service/src/cache.rs", src);
        assert!(v.iter().all(|v| v.rule != "R2"), "{v:?}");
    }

    #[test]
    fn r3_requires_justification() {
        let src = "a.load(Ordering::Relaxed);\n// relaxed-ok: monotonic counter\nb.load(Ordering::Relaxed);\n";
        let v = run("crates/core/src/driver.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn r4_scope_is_request_path_modules_only() {
        let src = "let g = m.lock().unwrap();\n";
        assert_eq!(run("crates/service/src/scheduler.rs", src).len(), 1);
        assert_eq!(run("crates/core/src/streaming.rs", src).len(), 1);
        assert_eq!(run("crates/service/src/metrics.rs", src).len(), 0);
    }

    #[test]
    fn r5_catches_float_eq_and_skips_ints() {
        let v = run(
            "crates/data/src/stats.rs",
            "if sd == 0.0 { }\nif n == 0 { }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R5");
        let v = run(
            "crates/core/src/tile_exec.rs",
            "let unset = p == f64::INFINITY && i == -1;\n",
        );
        assert_eq!(v.len(), 1);
        assert!(run("crates/precision/src/f16.rs", "a.0 == b.0;\n").is_empty());
    }

    /// The `to_bits()` idiom R5's own message recommends must not trip
    /// the rule, even when the call chain names a float conversion.
    #[test]
    fn r5_accepts_to_bits_comparisons() {
        let src = "if Half::from_f64(v).to_f64().to_bits() != bits { }\n\
                   if ((v as f32) as f64).to_bits() != v.to_bits() { }\n";
        assert!(run("crates/service/src/codec.rs", src).is_empty());
    }

    #[test]
    fn baseline_round_trip_and_stale_detection() {
        let b = Baseline::parse(
            "# comment\n[[allow]]\nrule = \"R5\"\nfile = \"crates/x/src/lib.rs\"\ncontains = \"q == 0.0\"\nreason = \"exact sentinel\"\n",
        )
        .unwrap();
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.entries[0].rule, "R5");
        assert!(Baseline::parse("[[allow]]\nrule = \"R5\"\n").is_err());
        assert!(Baseline::parse("rule = \"R5\"\n").is_err());
    }

    #[test]
    fn json_output_is_valid_enough() {
        let a = Analysis {
            violations: vec![Violation {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: "R2",
                message: "msg \"quoted\"".into(),
                snippet: "let m: HashMap<u8, u8>;".into(),
                path: vec!["crates/x/src/lib.rs:3: acquires `x`".into()],
            }],
            stale_baseline: vec![],
            warnings: vec!["stale scope path: example".into()],
            files_scanned: 1,
        };
        let j = to_json(&a);
        assert!(j.contains("\"rule\": \"R2\""));
        assert!(j.contains("msg \\\"quoted\\\""));
        assert!(j.contains("\"path\": [\"crates/x/src/lib.rs:3: acquires `x`\"]"));
        assert!(j.contains("\"warnings\": [\n    \"stale scope path: example\"\n  ]"));
    }

    #[test]
    fn sarif_output_has_tool_rules_and_results() {
        let a = Analysis {
            violations: vec![Violation {
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                rule: "R6",
                message: "lock-order inversion".into(),
                snippet: "sync::lock(&s.b)".into(),
                path: vec!["crates/x/src/lib.rs:7: acquires `b`".into()],
            }],
            stale_baseline: vec![],
            warnings: vec![],
            files_scanned: 1,
        };
        let s = to_sarif(&a);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"mdmp-analyze\""));
        assert!(s.contains("\"id\": \"R6\", \"name\": \"lock-order-inversion\""));
        assert!(s.contains("\"ruleId\": \"R6\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("acquires `b`"));
    }
}

//! Phase 2 of the interprocedural lock analysis: resolve the call
//! references extracted by [`crate::facts`] into an approximate
//! intra-crate call graph and propagate per-function summaries to a
//! fixpoint.
//!
//! A function's [`Summary`] answers two questions for its callers:
//!
//! * **acquires** — which locks may be taken anywhere below this call,
//!   each with a first-witness `file:line` chain showing how;
//! * **blocks** — whether any path below this call may block, keyed by
//!   the lock a `Condvar` wait releases (`Some(lock)`) or `None` for
//!   unconditional blocking (join/recv/sleep/socket I/O). The key matters
//!   to R7: waiting on lock `L` is *not* a hold-across-wait violation for
//!   a caller that holds `L` itself (the wait releases it), but is for
//!   every other held lock.
//!
//! Resolution is deliberately conservative (miss rather than guess):
//!
//! * `self.name(...)` → a `fn name` in the same file;
//! * `recv.name(...)` → a `fn name` in `recv.rs` of the same crate (the
//!   field-stem idiom: `self.queue.pop()` → `queue.rs::pop`), else — for
//!   names not too generic — a `fn name` in the same file (the
//!   `report.absorb_wire(&client)` shape);
//! * `qual::name(...)` → a `fn name` in `qual.rs` of the same crate;
//! * `name(...)` → a `fn name` in the same file.
//!
//! Unresolved calls contribute nothing. Recursion is handled by the
//! fixpoint: summaries only grow, paths are first-witness (never
//! replaced), so iteration terminates.

use std::collections::BTreeMap;

use crate::facts::{CallRef, EventKind, FileFacts, FnFacts};

/// Longest `file:line` chain kept in a summary path. Deep chains are
/// truncated at the tail; the anchor (first steps) is what a reader needs.
const MAX_PATH: usize = 6;

/// One hop of a witness chain.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Step {
    pub file: String,
    pub line: usize,
    pub what: String,
}

impl Step {
    pub(crate) fn render(&self) -> String {
        format!("{}:{}: {}", self.file, self.line, self.what)
    }
}

/// What a call to this function may do, transitively.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Summary {
    /// Lock id → first-witness acquisition chain.
    pub acquires: BTreeMap<String, Vec<Step>>,
    /// Blocking behaviour keyed by the released lock (`None` = releases
    /// nothing). Value: human description + first-witness chain.
    pub blocks: BTreeMap<Option<String>, (String, Vec<Step>)>,
}

/// The resolved whole-program fact base.
pub(crate) struct Program {
    pub fns: Vec<FnFacts>,
    /// Per function, per event: resolved callee index (None for
    /// non-call events and unresolved calls).
    pub resolved: Vec<Vec<Option<usize>>>,
    pub summaries: Vec<Summary>,
}

fn crate_of(file: &str) -> &str {
    // "crates/<name>/src/..." → "<name>"; anything else keeps its first
    // two components so vendored trees never alias a workspace crate.
    let mut parts = file.splitn(3, '/');
    let root = parts.next().unwrap_or("");
    let name = parts.next().unwrap_or("");
    if root == "crates" {
        name
    } else {
        root
    }
}

fn stem_of(file: &str) -> &str {
    file.rsplit('/')
        .next()
        .unwrap_or(file)
        .trim_end_matches(".rs")
}

/// Method names too generic for the same-file fallback, so `inner.pop()`
/// inside `queue.rs` does not resolve to `queue.rs::pop` and fabricate
/// recursion through a container call.
fn too_generic(name: &str) -> bool {
    crate::facts::GENERIC_METHODS.contains(&name)
}

/// Build the program: resolve every call event and run the summary
/// fixpoint.
pub(crate) fn build(files: &[FileFacts]) -> Program {
    let mut fns: Vec<FnFacts> = Vec::new();
    for f in files {
        fns.extend(f.fns.iter().cloned());
    }

    // Indexes. Synthetic spawn roots contain "::<" and are never call
    // targets.
    let mut by_file_name: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    let mut by_crate_stem_name: BTreeMap<(&str, &str, &str), usize> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        if f.name.contains("::<") {
            continue;
        }
        by_file_name
            .entry((f.file.as_str(), f.name.as_str()))
            .or_insert(i);
        by_crate_stem_name
            .entry((crate_of(&f.file), stem_of(&f.file), f.name.as_str()))
            .or_insert(i);
    }

    let resolve = |file: &str, callee: &CallRef| -> Option<usize> {
        let krate = crate_of(file);
        match callee {
            CallRef::Method { recv, name } if recv == "self" => {
                by_file_name.get(&(file, name.as_str())).copied()
            }
            CallRef::Method { recv, name } => by_crate_stem_name
                .get(&(krate, recv.as_str(), name.as_str()))
                .copied()
                .or_else(|| {
                    if too_generic(name) {
                        None
                    } else {
                        by_file_name.get(&(file, name.as_str())).copied()
                    }
                }),
            CallRef::Path { qual, name } => by_crate_stem_name
                .get(&(krate, qual.as_str(), name.as_str()))
                .copied(),
            CallRef::Bare { name } => by_file_name.get(&(file, name.as_str())).copied(),
        }
    };

    let resolved: Vec<Vec<Option<usize>>> = fns
        .iter()
        .map(|f| {
            f.events
                .iter()
                .map(|e| match &e.kind {
                    EventKind::Call { callee } => resolve(&f.file, callee),
                    _ => None,
                })
                .collect()
        })
        .collect();

    let mut summaries = vec![Summary::default(); fns.len()];
    // Monotone fixpoint: entries are only ever added (first witness
    // wins), so this terminates; the iteration cap is a safety net.
    for _ in 0..64 {
        let mut changed = false;
        for fi in 0..fns.len() {
            let mut next = summaries[fi].clone();
            for (ei, ev) in fns[fi].events.iter().enumerate() {
                match &ev.kind {
                    EventKind::Acquire { lock } => {
                        next.acquires.entry(lock.clone()).or_insert_with(|| {
                            vec![Step {
                                file: fns[fi].file.clone(),
                                line: ev.line,
                                what: format!("acquires `{lock}`"),
                            }]
                        });
                    }
                    EventKind::Wait { lock } => {
                        next.blocks.entry(lock.clone()).or_insert_with(|| {
                            let desc = match lock {
                                Some(l) => format!("a Condvar wait releasing `{l}`"),
                                None => "a Condvar wait".to_string(),
                            };
                            (
                                desc.clone(),
                                vec![Step {
                                    file: fns[fi].file.clone(),
                                    line: ev.line,
                                    what: desc,
                                }],
                            )
                        });
                    }
                    EventKind::Blocking { what } => {
                        next.blocks.entry(None).or_insert_with(|| {
                            (
                                what.clone(),
                                vec![Step {
                                    file: fns[fi].file.clone(),
                                    line: ev.line,
                                    what: format!("blocks on {what}"),
                                }],
                            )
                        });
                    }
                    EventKind::Call { .. } => {
                        let Some(ci) = resolved[fi][ei] else { continue };
                        let call_step = Step {
                            file: fns[fi].file.clone(),
                            line: ev.line,
                            what: format!("calls `{}`", fns[ci].name),
                        };
                        let callee = summaries[ci].clone();
                        for (lock, path) in &callee.acquires {
                            next.acquires.entry(lock.clone()).or_insert_with(|| {
                                let mut p = vec![call_step.clone()];
                                p.extend(path.iter().cloned());
                                p.truncate(MAX_PATH);
                                p
                            });
                        }
                        for (rel, (desc, path)) in &callee.blocks {
                            next.blocks.entry(rel.clone()).or_insert_with(|| {
                                let mut p = vec![call_step.clone()];
                                p.extend(path.iter().cloned());
                                p.truncate(MAX_PATH);
                                (desc.clone(), p)
                            });
                        }
                    }
                }
            }
            if next != summaries[fi] {
                summaries[fi] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    Program {
        fns,
        resolved,
        summaries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract;

    fn program(files: &[(&str, &str)]) -> Program {
        let facts: Vec<FileFacts> = files.iter().map(|(rel, src)| extract(rel, src)).collect();
        build(&facts)
    }

    fn fn_idx(p: &Program, name: &str) -> usize {
        p.fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn field_stem_beats_same_file_for_method_calls() {
        // `self.queue.pop()` must resolve into queue.rs even though the
        // caller's own file also defines a `pop`.
        let p = program(&[
            (
                "crates/s/src/worker.rs",
                "fn run(s: &S) { s.queue.pop(); }\nfn pop() { other_marker(); }\n",
            ),
            (
                "crates/s/src/queue.rs",
                "pub fn pop(q: &Q) { let mut g = q.inner.lock().unwrap(); \
                 g = q.cv.wait(g).unwrap(); }\n",
            ),
        ]);
        let run = fn_idx(&p, "run");
        let queue_pop = p
            .fns
            .iter()
            .position(|f| f.name == "pop" && f.file.ends_with("queue.rs"))
            .expect("queue.rs::pop");
        assert_eq!(p.resolved[run][0], Some(queue_pop));
    }

    #[test]
    fn generic_names_never_resolve_same_file() {
        // `inner.pop()` inside queue.rs must NOT resolve to the file's own
        // `pop` (that would fabricate recursion through a container call).
        let p = program(&[(
            "crates/s/src/queue.rs",
            "pub fn pop(q: &Q) { q.items.pop(); marker(q); }\n",
        )]);
        let pop = fn_idx(&p, "pop");
        // The container pop stays unresolved (generic name, no `items.rs`)
        // and the `marker` bare call has no same-file target.
        assert!(p.resolved[pop].iter().all(|r| r.is_none()));
    }

    #[test]
    fn recursion_reaches_a_fixpoint_with_transitive_acquires() {
        let p = program(&[(
            "crates/s/src/a.rs",
            "fn f(s: &S) { g(s); }\n\
             fn g(s: &S) { let l = sync::lock(&s.thing); f(s); l.use_it(); }\n",
        )]);
        let f = fn_idx(&p, "f");
        let g = fn_idx(&p, "g");
        assert!(
            p.summaries[f].acquires.contains_key("s/a.rs::thing"),
            "f transitively acquires through g: {:?}",
            p.summaries[f]
        );
        assert!(p.summaries[g].acquires.contains_key("s/a.rs::thing"));
        // Witness path through the recursion stays bounded.
        for path in p.summaries[f].acquires.values() {
            assert!(path.len() <= MAX_PATH);
        }
    }

    #[test]
    fn wait_blocking_is_keyed_by_the_released_lock() {
        let p = program(&[(
            "crates/s/src/q.rs",
            "pub fn pop(q: &Q) {\n\
             let mut inner = q.inner.lock().unwrap();\n\
             inner = q.cv.wait(inner).unwrap();\n\
             }\n",
        )]);
        let pop = fn_idx(&p, "pop");
        let s = &p.summaries[pop];
        assert!(
            s.blocks.contains_key(&Some("s/q.rs::inner".to_string())),
            "{s:?}"
        );
        assert!(!s.blocks.contains_key(&None));
    }

    #[test]
    fn cross_crate_calls_stay_unresolved() {
        let p = program(&[
            ("crates/a/src/m.rs", "fn f(x: &X) { x.helper.enrich(); }\n"),
            (
                "crates/b/src/enrich.rs",
                "pub fn enrich(s: &S) { let g = sync::lock(&s.q); g.touch(); }\n",
            ),
        ]);
        let f = fn_idx(&p, "f");
        assert!(p.resolved[f].iter().all(|r| r.is_none()));
        assert!(p.summaries[f].acquires.is_empty());
    }
}

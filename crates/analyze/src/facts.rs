//! Phase 1 of the interprocedural lock analysis (R6/R7): extract
//! per-function *facts* from one source file — which locks a function
//! acquires (and where), where it waits on a `Condvar`, where it blocks
//! (TCP I/O, `join`, channel `recv`, `sleep`), and which intra-crate
//! functions it calls — each annotated with the set of locks held at that
//! point.
//!
//! The extractor is a token-level approximation, not a type checker. The
//! load-bearing design decisions:
//!
//! * **Canonical lock identity.** A lock is named by the last field
//!   component of the receiver expression (`self.cache.inflight` →
//!   `inflight`), then canonicalized through [`LOCK_TABLE`] keyed by
//!   `(file, field)`; unknown locks fall back to `"{file}::{field}"` with
//!   the `crates//src` noise stripped. Two syntactic paths to the same
//!   mutex (`self.flight.state` in a guard's `Drop`, `flight.state` in
//!   the follower path) therefore collide onto one identity.
//! * **Guard lifetimes.** A *bound* guard (`let g = <acquire>;` where the
//!   call chain after the acquisition is only guard-preserving —
//!   `unwrap`/`expect`/`unwrap_or_else`) lives until `drop(g)` or the end
//!   of the block it was born in. An *ephemeral* guard (a temporary:
//!   `sync::lock(&x).clear();`) dies at the next `;` or `}`. This is
//!   slightly over-long for plain-`if` condition temporaries and slightly
//!   short for `if let` temporaries; combined with the self-edge
//!   suppression in `lockorder` neither approximation produces findings
//!   on the current tree.
//! * **Condvar waits release their own lock.** `cv.wait(guard)` /
//!   `sync::wait_timeout(&cv, guard, d)` emit a [`EventKind::Wait`] whose
//!   held-set *excludes* the waited guard's lock (the mutex is released
//!   for the duration). The guard stays alive afterwards (it is
//!   reacquired), and a tuple rebinding (`let (g, _) = …`) aliases the new
//!   name onto the same guard.
//! * **Spawn closures are roots.** A closure passed to any `spawn(...)`
//!   call becomes a *synthetic root function*: its events do not inherit
//!   the spawner's held locks (the new thread starts with none), which is
//!   what keeps `Service::start` — which holds the `workers` lock while
//!   spawning workers that block on the job queue — from being a false
//!   R7.
//! * **`sync.rs` helpers are modeled at the call site.** Files named
//!   `sync.rs` are skipped entirely; `sync::lock(&x)` / `sync::wait(…)`
//!   call sites are consumed as acquisition/wait events instead, so the
//!   helpers' internal `m.lock().unwrap_or_else(…)` never pollutes the
//!   fact base.

use std::collections::BTreeSet;

use crate::{mask_source, scan_lines};

/// Canonical lock identity table: `(file, receiver field)` → stable name.
/// R6/R7 messages and interleave-model suggestions are keyed by these
/// names; the stale-scope detector warns when a listed file disappears.
pub(crate) const LOCK_TABLE: [(&str, &str, &str); 17] = [
    ("crates/service/src/cache.rs", "inner", "cache.map"),
    ("crates/service/src/cache.rs", "inflight", "cache.inflight"),
    ("crates/service/src/cache.rs", "state", "cache.flight_state"),
    ("crates/service/src/pool.rs", "free", "pool.free"),
    ("crates/service/src/queue.rs", "inner", "queue.state"),
    (
        "crates/service/src/scheduler.rs",
        "registry",
        "scheduler.registry",
    ),
    (
        "crates/service/src/scheduler.rs",
        "workers",
        "scheduler.workers",
    ),
    (
        "crates/service/src/scheduler.rs",
        "connection_faults",
        "scheduler.connection_faults",
    ),
    ("crates/service/src/session.rs", "sessions", "session.table"),
    ("crates/service/src/session.rs", "session", "session.entry"),
    (
        "crates/service/src/metrics.rs",
        "map",
        "metrics.labeled_bytes",
    ),
    (
        "crates/service/src/metrics.rs",
        "kernel_seconds",
        "metrics.kernel_seconds",
    ),
    (
        "crates/service/src/metrics.rs",
        "worker_busy_seconds",
        "metrics.worker_busy",
    ),
    (
        "crates/cluster/src/coordinator.rs",
        "table",
        "cluster.lease_table",
    ),
    ("crates/core/src/driver.rs", "0", "driver.precalc_store"),
    (
        "crates/core/src/kernels/sort_scan.rs",
        "cache",
        "sort_scan.schedules",
    ),
    ("crates/gpu-sim/src/health.rs", "inner", "health.state"),
];

/// Files whose raw socket/stream calls count as blocking (R7): the TCP
/// surface. Everything else reaches a socket only through these modules,
/// so the call graph propagates the blocking fact outward.
pub(crate) const BLOCKING_IO_FILES: [&str; 3] = [
    "crates/service/src/server.rs",
    "crates/service/src/wire.rs",
    "crates/cluster/src/client.rs",
];

const IO_NAMES: [&str; 10] = [
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "write_all",
    "write_fmt",
    "flush",
    "accept",
    "connect_timeout",
    "incoming",
];

/// Method names too generic to resolve by name alone: `callgraph` only
/// resolves one on a non-`self` receiver when the receiver matches a file
/// stem (`self.queue.pop()` → `queue.rs::pop`); the same-file fallback is
/// reserved for distinctive names so `inner.pop()` inside `queue.rs` never
/// fabricates recursion through a container call.
pub(crate) const GENERIC_METHODS: [&str; 78] = [
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "clone",
    "drain",
    "contains",
    "contains_key",
    "entry",
    "or_insert_with",
    "or_default",
    "extend",
    "retain",
    "clear",
    "take",
    "replace",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map",
    "map_err",
    "map_or",
    "and_then",
    "ok",
    "ok_or",
    "ok_or_else",
    "err",
    "to_string",
    "to_vec",
    "to_owned",
    "as_str",
    "as_ref",
    "as_mut",
    "as_deref",
    "send",
    "next",
    "last",
    "first",
    "min",
    "max",
    "sort",
    "sort_by",
    "sort_unstable",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "values",
    "keys",
    "sum",
    "count",
    "fold",
    "filter",
    "rev",
    "enumerate",
    "zip",
    "any",
    "all",
    "position",
    "find",
    "cloned",
    "copied",
    "collect",
    "join",
    "into_inner",
    "is_some_and",
    "notify_one",
    "notify_all",
    "elapsed",
];

const KEYWORDS: [&str; 20] = [
    "if", "while", "match", "for", "loop", "return", "in", "as", "move", "fn", "let", "mut", "ref",
    "break", "continue", "else", "impl", "pub", "use", "where",
];

/// How a call site names its target; resolution happens in `callgraph`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CallRef {
    /// `qual::name(...)` — resolved by file stem `qual` in the same crate.
    Path { qual: String, name: String },
    /// `recv.name(...)` — `recv == "self"` resolves same-file; otherwise
    /// by file stem `recv`, then (non-generic names only) same-file.
    Method { recv: String, name: String },
    /// `name(...)` — resolved same-file only.
    Bare { name: String },
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// A lock acquisition (by canonical lock id).
    Acquire { lock: String },
    /// A `Condvar` wait. `lock` is the waited guard's lock when the guard
    /// variable was tracked (that lock is released during the wait);
    /// `None` means an untracked wait, treated as plain blocking.
    Wait { lock: Option<String> },
    /// A blocking operation that is not a wait: join/recv/sleep/TCP I/O.
    Blocking { what: String },
    /// A call to a possibly-intra-crate function.
    Call { callee: CallRef },
}

/// One fact: something happened at `line` with `held` locks
/// (`(lock id, acquisition line)`, sorted, deduped, never containing the
/// lock the event itself acquires/waits on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Event {
    pub kind: EventKind,
    pub line: usize,
    pub held: Vec<(String, usize)>,
}

/// All facts for one function (or one synthetic spawn-closure root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FnFacts {
    /// Function name; synthetic roots are `"{fn}::<spawn@{line}>"` and are
    /// never resolvable as call targets.
    pub name: String,
    pub file: String,
    pub line: usize,
    pub events: Vec<Event>,
}

/// Facts for one file, plus the waiver line sets for the two lock rules.
#[derive(Debug, Clone, Default)]
pub(crate) struct FileFacts {
    pub file: String,
    pub fns: Vec<FnFacts>,
    /// 1-based lines waived by `lock-order-ok:` (R6).
    pub waive_r6: BTreeSet<usize>,
    /// 1-based lines waived by `lock-hold-ok:` (R7).
    pub waive_r7: BTreeSet<usize>,
}

/// Canonicalize a lock identity from `(file, receiver field)`.
pub(crate) fn lock_id(file: &str, field: &str) -> String {
    for (f, fld, canon) in LOCK_TABLE {
        if f == file && fld == field {
            return canon.to_string();
        }
    }
    let trimmed = file
        .strip_prefix("crates/")
        .unwrap_or(file)
        .replace("/src/", "/");
    format!("{trimmed}::{field}")
}

#[derive(Debug)]
struct Tok {
    text: String,
    line: usize,
}

fn lex(masked: &str) -> Vec<Tok> {
    let chars: Vec<char> = masked.chars().collect();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(Tok {
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c == ':' && chars.get(i + 1) == Some(&':') {
            toks.push(Tok {
                text: "::".into(),
                line,
            });
            i += 2;
            continue;
        }
        toks.push(Tok {
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

struct Guard {
    lock: String,
    vars: Vec<String>,
    /// Brace depth at acquisition; a bound guard dies when depth drops
    /// below this.
    depth: i64,
    line: usize,
    ephemeral: bool,
}

enum CtxKind {
    Fn,
    /// Closure passed to `spawn(...)`: pops when paren depth returns to
    /// the recorded level.
    Spawn {
        outer_paren: i64,
    },
}

struct Ctx {
    name: String,
    line: usize,
    start_depth: i64,
    kind: CtxKind,
    guards: Vec<Guard>,
    events: Vec<Event>,
}

impl Ctx {
    fn held_excluding(&self, lock: Option<&str>) -> Vec<(String, usize)> {
        let mut v: Vec<(String, usize)> = Vec::new();
        for g in &self.guards {
            if Some(g.lock.as_str()) == lock {
                continue;
            }
            if !v.iter().any(|(l, _)| l == &g.lock) {
                v.push((g.lock.clone(), g.line));
            }
        }
        v.sort();
        v
    }
}

fn is_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Extract facts from one file. `rel` is the repo-relative path.
pub(crate) fn extract(rel: &str, text: &str) -> FileFacts {
    let mut out = FileFacts {
        file: rel.to_string(),
        ..FileFacts::default()
    };
    let lines = scan_lines(text);
    for (idx, _) in lines.iter().enumerate() {
        if crate::annotated(&lines, idx, "lock-order-ok:") {
            out.waive_r6.insert(idx + 1);
        }
        if crate::annotated(&lines, idx, "lock-hold-ok:") {
            out.waive_r7.insert(idx + 1);
        }
    }
    // sync.rs poison-absorbing helpers are modeled at their call sites.
    if rel.ends_with("/sync.rs") {
        return out;
    }
    let in_test: Vec<bool> = lines.iter().map(|l| l.in_test).collect();
    let io_file = BLOCKING_IO_FILES.contains(&rel);
    let toks = lex(&mask_source(text));

    let mut brace: i64 = 0;
    let mut paren: i64 = 0;
    let mut pending_fn: Option<(String, usize, bool)> = None; // name, line, in_test
    let mut pending_paren: i64 = 0;
    let mut ctxs: Vec<Ctx> = Vec::new();
    // Token index where the current statement started (reset at ;/{/}).
    let mut stmt_start: usize = 0;

    let tok = |i: usize| -> &str { toks.get(i).map_or("", |t| t.text.as_str()) };
    let line_of = |i: usize| -> usize { toks.get(i).map_or(0, |t| t.line) };
    let tested = |i: usize| -> bool {
        let l = line_of(i);
        l >= 1 && in_test.get(l - 1).copied().unwrap_or(false)
    };

    let mut i = 0usize;
    while i < toks.len() {
        let t = tok(i);
        match t {
            "fn" => {
                if !tok(i + 1).is_empty() && tok(i + 1) != "(" {
                    pending_fn = Some((tok(i + 1).to_string(), line_of(i), tested(i)));
                    pending_paren = paren;
                }
            }
            "{" => {
                if let Some((name, line, test)) = pending_fn.take() {
                    if !test {
                        ctxs.push(Ctx {
                            name,
                            line,
                            start_depth: brace,
                            kind: CtxKind::Fn,
                            guards: Vec::new(),
                            events: Vec::new(),
                        });
                    }
                }
                brace += 1;
                stmt_start = i + 1;
            }
            "}" => {
                brace -= 1;
                for c in ctxs.iter_mut() {
                    c.guards.retain(|g| !(g.ephemeral || g.depth > brace));
                }
                while ctxs
                    .last()
                    .is_some_and(|c| matches!(c.kind, CtxKind::Fn) && brace <= c.start_depth)
                {
                    let done = ctxs.pop().expect("ctx");
                    out.fns.push(FnFacts {
                        name: done.name,
                        file: rel.to_string(),
                        line: done.line,
                        events: done.events,
                    });
                }
                stmt_start = i + 1;
            }
            ";" => {
                if pending_fn.is_some() && paren == pending_paren {
                    pending_fn = None; // trait method without a body
                }
                if let Some(c) = ctxs.last_mut() {
                    c.guards.retain(|g| !g.ephemeral);
                }
                stmt_start = i + 1;
            }
            "(" => paren += 1,
            ")" => {
                paren -= 1;
                while ctxs.last().is_some_and(
                    |c| matches!(c.kind, CtxKind::Spawn { outer_paren } if paren <= outer_paren),
                ) {
                    let done = ctxs.pop().expect("ctx");
                    out.fns.push(FnFacts {
                        name: done.name,
                        file: rel.to_string(),
                        line: done.line,
                        events: done.events,
                    });
                }
            }
            _ => {
                if !ctxs.is_empty() && !tested(i) {
                    i = scan_event(rel, io_file, &toks, i, stmt_start, &mut ctxs, brace, paren);
                    continue;
                }
            }
        }
        i += 1;
    }
    // Unterminated contexts (shouldn't happen on real code) still flush.
    while let Some(done) = ctxs.pop() {
        out.fns.push(FnFacts {
            name: done.name,
            file: rel.to_string(),
            line: done.line,
            events: done.events,
        });
    }
    out
}

/// `let`-statement binding variables: lowercase idents before the `=`.
fn stmt_let_vars(toks: &[Tok], stmt_start: usize, upto: usize) -> Option<Vec<String>> {
    if toks.get(stmt_start).map(|t| t.text.as_str()) != Some("let") {
        return None;
    }
    let mut vars = Vec::new();
    for t in &toks[stmt_start + 1..upto] {
        match t.text.as_str() {
            "=" => return Some(vars),
            "mut" | "_" => {}
            s if s.chars().next().is_some_and(|c| c.is_ascii_lowercase()) => {
                vars.push(s.to_string());
            }
            _ => {}
        }
    }
    None
}

/// Receiver field: walking back from `dot_idx` (the `.` before the method
/// name) over an `a.b.c` chain, return the last field component.
fn recv_field(toks: &[Tok], dot_idx: usize) -> Option<String> {
    let prev = toks.get(dot_idx.wrapping_sub(1))?;
    let is_ident = prev.text.chars().all(|c| c.is_alphanumeric() || c == '_');
    if is_ident && !prev.text.is_empty() {
        Some(prev.text.clone())
    } else {
        None
    }
}

/// Field component of the first `&expr` argument of `sync::lock(&a.b.c)`:
/// the last ident before the closing paren at the same level.
fn arg_field(toks: &[Tok], open_paren: usize) -> Option<(String, usize)> {
    let mut depth = 0i64;
    let mut last_ident: Option<String> = None;
    let mut j = open_paren;
    loop {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return last_ident.map(|s| (s, j));
                }
            }
            "," if depth == 1 => return last_ident.map(|s| (s, j)),
            s if s.chars().all(|c| c.is_alphanumeric() || c == '_') && !s.is_empty() => {
                last_ident = Some(s.to_string());
            }
            _ => {}
        }
        j += 1;
    }
}

/// First ident after the first top-level `,` inside the parens at
/// `open_paren` — the guard argument of `sync::wait(&cv, guard)`.
fn second_arg_ident(toks: &[Tok], open_paren: usize) -> Option<String> {
    let mut depth = 0i64;
    let mut seen_comma = false;
    let mut j = open_paren;
    loop {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            "," if depth == 1 => seen_comma = true,
            s if seen_comma
                && s.chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_') =>
            {
                return Some(s.to_string());
            }
            _ => {}
        }
        j += 1;
    }
}

/// First ident inside the parens at `open_paren`, before any `,`.
fn first_arg_ident(toks: &[Tok], open_paren: usize) -> Option<String> {
    let mut depth = 0i64;
    let mut j = open_paren;
    loop {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "(" => depth += 1,
            ")" | "," if depth <= 1 => return None,
            ")" => depth -= 1,
            s if depth == 1
                && s.chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_') =>
            {
                return Some(s.to_string());
            }
            _ => {}
        }
        j += 1;
    }
}

/// After the acquisition expression ends at token `after` (just past its
/// closing paren), is the rest of the statement only guard-preserving
/// method calls followed by `;`?
fn guard_preserving_chain(toks: &[Tok], mut after: usize) -> bool {
    loop {
        match toks.get(after).map(|t| t.text.as_str()) {
            Some(";") => return true,
            Some(".") => {
                let name = toks.get(after + 1).map(|t| t.text.as_str()).unwrap_or("");
                if !matches!(name, "unwrap" | "expect" | "unwrap_or_else") {
                    return false;
                }
                if toks.get(after + 2).map(|t| t.text.as_str()) != Some("(") {
                    return false;
                }
                // Skip the balanced argument list.
                let mut depth = 0i64;
                let mut j = after + 2;
                loop {
                    match toks.get(j).map(|t| t.text.as_str()) {
                        Some("(") => depth += 1,
                        Some(")") => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        None => return false,
                        _ => {}
                    }
                    j += 1;
                }
                after = j + 1;
            }
            _ => return false,
        }
    }
}

/// Record an acquisition at token `name_idx`, classifying the guard as
/// bound or ephemeral from the statement shape.
#[allow(clippy::too_many_arguments)]
fn push_acquire(
    toks: &[Tok],
    name_idx: usize,
    chain_from: usize,
    stmt_start: usize,
    lock: String,
    ctx: &mut Ctx,
    brace: i64,
) {
    let line = toks[name_idx].line;
    let held = ctx.held_excluding(Some(&lock));
    ctx.events.push(Event {
        kind: EventKind::Acquire { lock: lock.clone() },
        line,
        held,
    });
    let vars = stmt_let_vars(toks, stmt_start, name_idx);
    let bound = vars.is_some() && guard_preserving_chain(toks, chain_from);
    ctx.guards.push(Guard {
        lock,
        vars: vars.unwrap_or_default(),
        depth: brace,
        line,
        ephemeral: !bound,
    });
}

/// Scan one token position for an event; returns the next index.
#[allow(clippy::too_many_arguments)] // one cursor into one token stream
fn scan_event(
    rel: &str,
    io_file: bool,
    toks: &[Tok],
    i: usize,
    stmt_start: usize,
    ctxs: &mut Vec<Ctx>,
    brace: i64,
    paren: i64,
) -> usize {
    let tok = |k: usize| -> &str { toks.get(k).map_or("", |t| t.text.as_str()) };
    let t = tok(i);
    let prev = if i > 0 { tok(i - 1) } else { "" };
    let prev2 = if i > 1 { tok(i - 2) } else { "" };
    let next = tok(i + 1);
    let next2 = tok(i + 2);
    let line = toks[i].line;

    // `sync::lock(&expr)` — poison-absorbing helper acquisition.
    if t == "lock" && prev == "::" && prev2 == "sync" && next == "(" {
        if let Some((field, close)) = arg_field(toks, i + 1) {
            let lock = lock_id(rel, &field);
            let ctx = ctxs.last_mut().expect("ctx");
            push_acquire(toks, i, close + 1, stmt_start, lock, ctx, brace);
        }
        return i + 1;
    }
    // `expr.lock()` / RwLock `expr.read()` / `expr.write()` (no args).
    if matches!(t, "lock" | "read" | "write") && prev == "." && next == "(" && next2 == ")" {
        if let Some(field) = recv_field(toks, i - 1) {
            let lock = lock_id(rel, &field);
            let ctx = ctxs.last_mut().expect("ctx");
            push_acquire(toks, i, i + 3, stmt_start, lock, ctx, brace);
        }
        return i + 1;
    }
    // `sync::wait(&cv, guard)` / `sync::wait_timeout(&cv, guard, d)`.
    if matches!(t, "wait" | "wait_timeout") && prev == "::" && prev2 == "sync" && next == "(" {
        let guard_var = second_arg_ident(toks, i + 1);
        record_wait(toks, i, stmt_start, guard_var, ctxs);
        return i + 1;
    }
    // `cv.wait(guard)` / `cv.wait_timeout(guard, d)` / `cv.wait_while(…)`,
    // and any other blocking `.wait(…)` (e.g. `service.wait(id, dur)`).
    if matches!(t, "wait" | "wait_timeout" | "wait_while") && prev == "." && next == "(" {
        let guard_var = first_arg_ident(toks, i + 1);
        record_wait(toks, i, stmt_start, guard_var, ctxs);
        return i + 1;
    }
    // `handle.join()` — thread join (PathBuf::join takes an argument).
    if t == "join" && prev == "." && next == "(" && next2 == ")" {
        push_blocking(ctxs, line, "a thread join");
        return i + 1;
    }
    // Channel receives.
    if matches!(t, "recv" | "recv_timeout" | "recv_deadline") && prev == "." && next == "(" {
        push_blocking(ctxs, line, "a channel recv");
        return i + 1;
    }
    // `thread::sleep(...)` or a bare `sleep(...)`.
    if t == "sleep" && next == "(" && prev != "." {
        push_blocking(ctxs, line, "a sleep");
        return i + 1;
    }
    // Raw socket/stream operations, only inside the TCP surface files.
    if io_file && IO_NAMES.contains(&t) && next == "(" && (prev == "." || prev == "::") {
        push_blocking(ctxs, line, "socket I/O");
        return i + 1;
    }
    // `drop(g)` kills the guard; it is never treated as a call.
    if t == "drop" && prev != "." && prev != "::" && next == "(" {
        if let Some(var) = first_arg_ident(toks, i + 1) {
            for c in ctxs.iter_mut() {
                c.guards.retain(|g| !g.vars.contains(&var));
            }
        }
        return i + 1;
    }
    // `spawn(...)`: the closure inside runs on a fresh thread → synthetic
    // root context with an empty held-set.
    if t == "spawn" && next == "(" {
        let outer_fn = ctxs
            .iter()
            .rev()
            .find(|c| matches!(c.kind, CtxKind::Fn))
            .map_or_else(|| "?".to_string(), |c| c.name.clone());
        // The main loop increments the paren depth when it passes the
        // spawn's `(`; the context pops when it drops back to this level.
        ctxs.push(Ctx {
            name: format!("{outer_fn}::<spawn@{line}>"),
            line,
            start_depth: brace,
            kind: CtxKind::Spawn { outer_paren: paren },
            guards: Vec::new(),
            events: Vec::new(),
        });
        return i + 1;
    }
    // Plain calls.
    if next == "("
        && !t.is_empty()
        && t.chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && !KEYWORDS.contains(&t)
        && prev != "fn"
    {
        let callee = if prev == "." {
            recv_field(toks, i - 1).map(|recv| CallRef::Method {
                recv,
                name: t.to_string(),
            })
        } else if prev == "::" {
            let qual = prev2;
            if qual.is_empty() || is_upper(qual) {
                None
            } else {
                Some(CallRef::Path {
                    qual: qual.to_string(),
                    name: t.to_string(),
                })
            }
        } else {
            Some(CallRef::Bare {
                name: t.to_string(),
            })
        };
        if let Some(callee) = callee {
            let ctx = ctxs.last_mut().expect("ctx");
            let held = ctx.held_excluding(None);
            ctx.events.push(Event {
                kind: EventKind::Call { callee },
                line,
                held,
            });
        }
        return i + 1;
    }
    i + 1
}

/// Record a wait event. When the guard argument names a live tracked
/// guard, the wait releases that lock (excluded from the held-set) and
/// any `let (new, _) = …` binding aliases onto the same guard.
fn record_wait(
    toks: &[Tok],
    name_idx: usize,
    stmt_start: usize,
    guard_var: Option<String>,
    ctxs: &mut [Ctx],
) {
    let line = toks[name_idx].line;
    let ctx = ctxs.last_mut().expect("ctx");
    let waited = guard_var.and_then(|v| {
        ctx.guards
            .iter()
            .find(|g| g.vars.contains(&v))
            .map(|g| g.lock.clone())
    });
    let held = ctx.held_excluding(waited.as_deref());
    ctx.events.push(Event {
        kind: EventKind::Wait {
            lock: waited.clone(),
        },
        line,
        held,
    });
    if let (Some(lock), Some(vars)) = (waited, stmt_let_vars(toks, stmt_start, name_idx)) {
        for g in ctx.guards.iter_mut() {
            if g.lock == lock {
                for v in &vars {
                    if !g.vars.contains(v) {
                        g.vars.push(v.clone());
                    }
                }
            }
        }
    }
}

fn push_blocking(ctxs: &mut [Ctx], line: usize, what: &str) {
    let ctx = ctxs.last_mut().expect("ctx");
    let held = ctx.held_excluding(None);
    ctx.events.push(Event {
        kind: EventKind::Blocking {
            what: what.to_string(),
        },
        line,
        held,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> FileFacts {
        extract("crates/x/src/lib.rs", src)
    }

    fn fn_named<'a>(f: &'a FileFacts, name: &str) -> &'a FnFacts {
        f.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name} in {:?}", f.fns))
    }

    #[test]
    fn sync_lock_and_method_lock_share_an_identity() {
        let src = "impl S {\n\
                   fn a(&self) { let g = sync::lock(&self.q); use_it(&g); }\n\
                   fn b(&self) { let g = self.q.lock().unwrap(); use_it(&g); }\n\
                   }\n";
        let f = facts(src);
        let acq = |name: &str| {
            fn_named(&f, name)
                .events
                .iter()
                .find_map(|e| match &e.kind {
                    EventKind::Acquire { lock } => Some(lock.clone()),
                    _ => None,
                })
                .expect("acquire")
        };
        assert_eq!(acq("a"), acq("b"));
        assert_eq!(acq("a"), "x/lib.rs::q");
    }

    #[test]
    fn bare_self_lock_is_tracked_without_a_field() {
        let f = facts("impl S { fn a(&self) { let g = self.lock().unwrap(); touch(&g); } }\n");
        let ev = &fn_named(&f, "a").events[0];
        assert_eq!(
            ev.kind,
            EventKind::Acquire {
                lock: "x/lib.rs::self".into()
            }
        );
    }

    #[test]
    fn bound_guard_spans_statements_ephemeral_does_not() {
        let src = "fn a(s: &S) {\n\
                   let g = sync::lock(&s.first);\n\
                   sync::lock(&s.second).clear();\n\
                   sync::lock(&s.third);\n\
                   }\n";
        let f = facts(src);
        let evs = &fn_named(&f, "a").events;
        // second acquired while first held (bound guard alive)…
        assert_eq!(evs[1].held, vec![("x/lib.rs::first".into(), 2usize)]);
        // …but the ephemeral second guard is dead by the third statement.
        assert_eq!(evs[2].held, vec![("x/lib.rs::first".into(), 2usize)]);
    }

    #[test]
    fn drop_releases_a_bound_guard_and_is_not_a_call() {
        let src = "fn a(s: &S) {\n\
                   let g = sync::lock(&s.first);\n\
                   drop(g);\n\
                   sync::lock(&s.second);\n\
                   }\n";
        let f = facts(src);
        let evs = &fn_named(&f, "a").events;
        assert!(evs[1].held.is_empty(), "{evs:?}");
        assert!(!evs
            .iter()
            .any(|e| matches!(&e.kind, EventKind::Call { .. })));
    }

    #[test]
    fn block_scoped_guard_dies_at_block_end() {
        let src = "fn a(s: &S) {\n\
                   let v = {\n\
                   let g = sync::lock(&s.first);\n\
                   g.len()\n\
                   };\n\
                   sync::lock(&s.second);\n\
                   }\n";
        let f = facts(src);
        let evs = &fn_named(&f, "a").events;
        let second = evs
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Acquire { lock } if lock.ends_with("second")))
            .expect("second acquire");
        assert!(second.held.is_empty(), "{second:?}");
    }

    #[test]
    fn condvar_wait_releases_its_own_lock_and_rebinds() {
        let src = "fn pop(q: &Q) {\n\
                   let mut inner = q.inner.lock().unwrap();\n\
                   while inner.is_empty() {\n\
                   inner = q.nonempty.wait(inner).unwrap();\n\
                   }\n\
                   inner.take()\n\
                   }\n";
        let f = facts(src);
        let evs = &fn_named(&f, "pop").events;
        let wait = evs
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Wait { .. }))
            .expect("wait event");
        assert_eq!(
            wait.kind,
            EventKind::Wait {
                lock: Some("x/lib.rs::inner".into())
            }
        );
        assert!(wait.held.is_empty(), "wait releases its own lock: {wait:?}");
    }

    #[test]
    fn spawn_closures_are_roots_with_empty_held_sets() {
        let src = "fn start(s: &S) {\n\
                   let mut handles = sync::lock(&s.workers);\n\
                   handles.push(thread::Builder::new().spawn(move || s.worker_loop()).expect(\"x\"));\n\
                   }\n";
        let f = facts(src);
        let root = f
            .fns
            .iter()
            .find(|f| f.name.contains("<spawn@"))
            .expect("synthetic spawn root");
        assert!(root.name.starts_with("start::<spawn@"));
        let call = root
            .events
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { .. }))
            .expect("call inside closure");
        assert!(
            call.held.is_empty(),
            "spawned thread starts with no locks: {call:?}"
        );
        // The spawner's own fact list does not contain the closure's call
        // (its `push`/`expect` container calls are fine — resolution drops
        // those).
        assert!(!fn_named(&f, "start").events.iter().any(|e| matches!(
            &e.kind,
            EventKind::Call {
                callee: CallRef::Method { name, .. }
            } if name == "worker_loop"
        )));
    }

    #[test]
    fn method_calls_carry_receivers_for_resolution() {
        let src = "fn a(v: &mut Vec<u8>, q: &Q) { v.push(1); q.absorb(2); }\n";
        let f = facts(src);
        let calls: Vec<_> = fn_named(&f, "a")
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Call {
                    callee: CallRef::Method { recv, name },
                } => Some((recv.clone(), name.clone())),
                _ => None,
            })
            .collect();
        // Both are emitted; callgraph resolution decides that `v.push`
        // resolves nowhere (generic name, no `v.rs`) while `q.absorb`
        // may stem-match a `q.rs`.
        assert_eq!(
            calls,
            vec![
                ("v".to_string(), "push".to_string()),
                ("q".to_string(), "absorb".to_string())
            ]
        );
    }

    #[test]
    fn sync_helper_file_contributes_no_facts() {
        let f = extract(
            "crates/service/src/sync.rs",
            "pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n\
             m.lock().unwrap_or_else(PoisonError::into_inner)\n\
             }\n",
        );
        assert!(f.fns.iter().all(|f| f.events.is_empty()));
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   fn a(s: &S) { let g = sync::lock(&s.q); g.len(); }\n\
                   }\n";
        let f = facts(src);
        assert!(f.fns.iter().all(|f| f.events.is_empty()), "{f:?}");
    }

    #[test]
    fn lock_table_canonicalizes_known_fields() {
        assert_eq!(
            lock_id("crates/service/src/cache.rs", "inflight"),
            "cache.inflight"
        );
        assert_eq!(
            lock_id("crates/service/src/cache.rs", "state"),
            "cache.flight_state"
        );
        assert_eq!(
            lock_id("crates/other/src/m.rs", "thing"),
            "other/m.rs::thing"
        );
    }
}

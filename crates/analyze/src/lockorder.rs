//! R6/R7: turn the resolved fact base into findings.
//!
//! **R6 — lock-order inversion.** Every event records the locks held when
//! it ran; an acquisition of `B` (direct, or anywhere below a resolved
//! call) while `A` is held contributes a directed edge `A → B` with a
//! first-witness `file:line` chain. If both `A → B` and `B → A` exist on
//! *any* two interprocedural paths, two threads can deadlock by meeting
//! in the middle — exactly the schedule-dependent bug `vendor/interleave`
//! can only find if someone hand-models the component.
//!
//! **R7 — lock held across blocking.** Holding `A` while blocking —
//! socket I/O, `join`, channel `recv`, sleep, or a `Condvar` wait that
//! releases some *other* lock — stalls every thread that needs `A` for
//! as long as the blocking op takes (forever, for a lost wakeup). A wait
//! that releases `A` itself is the normal condvar protocol and is not
//! flagged; the self-edge `A → A` (guard rebinding in wait loops) is
//! likewise suppressed.
//!
//! Findings carry the acquisition chain in [`crate::Violation::path`] and
//! name the interleave model to write when the order is intentional; they
//! can be waived in place (`lock-order-ok:` / `lock-hold-ok:` on the
//! anchor line) or through `baseline.toml` like every other rule.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{Program, Step};
use crate::facts::{EventKind, FileFacts};
use crate::Violation;

/// Sanitize a lock id into an interleave-model-name fragment.
fn slug(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn held_step(file: &str, lock: &str, line: usize) -> Step {
    Step {
        file: file.to_string(),
        line,
        what: format!("acquires `{lock}`"),
    }
}

/// Run R6/R7 over the program. `waived` maps file → (R6 lines, R7 lines);
/// `raw` maps file → raw source lines for snippets.
pub(crate) fn check(
    program: &Program,
    files: &[FileFacts],
    raw: &BTreeMap<String, Vec<String>>,
) -> Vec<Violation> {
    let waived_r6: BTreeMap<&str, &BTreeSet<usize>> = files
        .iter()
        .map(|f| (f.file.as_str(), &f.waive_r6))
        .collect();
    let waived_r7: BTreeMap<&str, &BTreeSet<usize>> = files
        .iter()
        .map(|f| (f.file.as_str(), &f.waive_r7))
        .collect();

    // Directed acquisition-order edges, first witness wins. BTreeMap +
    // the sorted function list keep the output deterministic.
    let mut edges: BTreeMap<(String, String), Vec<Step>> = BTreeMap::new();
    // R7 witnesses keyed by (held lock, blocking anchor) to dedupe the
    // same hold reached through several callers.
    let mut holds: BTreeMap<(String, String, usize), (String, Vec<Step>)> = BTreeMap::new();

    for (fi, f) in program.fns.iter().enumerate() {
        for (ei, ev) in f.events.iter().enumerate() {
            match &ev.kind {
                EventKind::Acquire { lock } => {
                    for (a, aline) in &ev.held {
                        if a == lock {
                            continue;
                        }
                        edges.entry((a.clone(), lock.clone())).or_insert_with(|| {
                            vec![
                                held_step(&f.file, a, *aline),
                                Step {
                                    file: f.file.clone(),
                                    line: ev.line,
                                    what: format!("acquires `{lock}`"),
                                },
                            ]
                        });
                    }
                }
                EventKind::Wait { lock } => {
                    for (a, aline) in &ev.held {
                        if Some(a.as_str()) == lock.as_deref() {
                            continue;
                        }
                        let desc = match lock {
                            Some(l) => format!("a Condvar wait releasing `{l}`"),
                            None => "a Condvar wait".to_string(),
                        };
                        holds
                            .entry((a.clone(), f.file.clone(), ev.line))
                            .or_insert_with(|| {
                                (
                                    desc.clone(),
                                    vec![
                                        held_step(&f.file, a, *aline),
                                        Step {
                                            file: f.file.clone(),
                                            line: ev.line,
                                            what: format!("blocks on {desc}"),
                                        },
                                    ],
                                )
                            });
                    }
                }
                EventKind::Blocking { what } => {
                    for (a, aline) in &ev.held {
                        holds
                            .entry((a.clone(), f.file.clone(), ev.line))
                            .or_insert_with(|| {
                                (
                                    what.clone(),
                                    vec![
                                        held_step(&f.file, a, *aline),
                                        Step {
                                            file: f.file.clone(),
                                            line: ev.line,
                                            what: format!("blocks on {what}"),
                                        },
                                    ],
                                )
                            });
                    }
                }
                EventKind::Call { .. } => {
                    let Some(ci) = program.resolved[fi][ei] else {
                        continue;
                    };
                    if ev.held.is_empty() {
                        continue;
                    }
                    let callee = &program.summaries[ci];
                    let call_step = Step {
                        file: f.file.clone(),
                        line: ev.line,
                        what: format!("calls `{}`", program.fns[ci].name),
                    };
                    for (a, aline) in &ev.held {
                        for (b, path) in &callee.acquires {
                            if b == a {
                                continue;
                            }
                            edges.entry((a.clone(), b.clone())).or_insert_with(|| {
                                let mut p = vec![held_step(&f.file, a, *aline), call_step.clone()];
                                p.extend(path.iter().cloned());
                                p
                            });
                        }
                        for (released, (desc, path)) in &callee.blocks {
                            if released.as_deref() == Some(a.as_str()) {
                                continue;
                            }
                            holds
                                .entry((a.clone(), f.file.clone(), ev.line))
                                .or_insert_with(|| {
                                    let mut p =
                                        vec![held_step(&f.file, a, *aline), call_step.clone()];
                                    p.extend(path.iter().cloned());
                                    (desc.clone(), p)
                                });
                        }
                    }
                }
            }
        }
    }

    let mut out = Vec::new();

    // R6: a pair of locks with edges in both directions.
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for ((a, b), path_ab) in &edges {
        if a >= b {
            continue;
        }
        let Some(path_ba) = edges.get(&(b.clone(), a.clone())) else {
            continue;
        };
        if !reported.insert((a.clone(), b.clone())) {
            continue;
        }
        let anchor = path_ab.last().expect("nonempty path");
        if waived_r6
            .get(anchor.file.as_str())
            .is_some_and(|w| w.contains(&anchor.line))
        {
            continue;
        }
        let mut path: Vec<String> = Vec::new();
        path.push(format!("order `{a}` -> `{b}`:"));
        path.extend(path_ab.iter().map(Step::render));
        path.push(format!("order `{b}` -> `{a}`:"));
        path.extend(path_ba.iter().map(Step::render));
        out.push(Violation {
            file: anchor.file.clone(),
            line: anchor.line,
            rule: "R6",
            message: format!(
                "lock-order inversion: `{a}` and `{b}` are acquired in both orders on \
                 different paths (two threads meeting in the middle deadlock); pick one \
                 order, or prove this schedule safe in an interleave model \
                 `lock_order_{}_{}`",
                slug(a),
                slug(b)
            ),
            snippet: snippet_at(raw, &anchor.file, anchor.line),
            path,
        });
    }

    // R7: lock held across blocking.
    for ((lock, file, line), (desc, path)) in &holds {
        if waived_r7
            .get(file.as_str())
            .is_some_and(|w| w.contains(line))
        {
            continue;
        }
        out.push(Violation {
            file: file.clone(),
            line: *line,
            rule: "R7",
            message: format!(
                "`{lock}` is held across {desc}: every thread needing `{lock}` stalls for \
                 as long as the blocking op takes; release the guard first, or prove the \
                 hold safe in an interleave model `hold_{}_across_blocking`",
                slug(lock)
            ),
            snippet: snippet_at(raw, file, *line),
            path: path.iter().map(Step::render).collect(),
        });
    }

    out
}

fn snippet_at(raw: &BTreeMap<String, Vec<String>>, file: &str, line: usize) -> String {
    raw.get(file)
        .and_then(|lines| lines.get(line.saturating_sub(1)))
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::facts::extract;

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let facts: Vec<FileFacts> = files.iter().map(|(rel, src)| extract(rel, src)).collect();
        let program = build(&facts);
        let raw: BTreeMap<String, Vec<String>> = files
            .iter()
            .map(|(rel, src)| (rel.to_string(), src.lines().map(str::to_string).collect()))
            .collect();
        check(&program, &facts, &raw)
    }

    const INVERSION: &str = "impl P {\n\
        pub fn forward(&self) {\n\
        let a = self.alpha.lock().unwrap();\n\
        self.bump_beta(*a);\n\
        }\n\
        fn bump_beta(&self, v: u64) {\n\
        let mut b = self.beta.lock().unwrap();\n\
        *b += v;\n\
        }\n\
        pub fn backward(&self) {\n\
        let b = self.beta.lock().unwrap();\n\
        self.bump_alpha(*b);\n\
        }\n\
        fn bump_alpha(&self, v: u64) {\n\
        let mut a = self.alpha.lock().unwrap();\n\
        *a += v;\n\
        }\n\
        }\n";

    #[test]
    fn interprocedural_inversion_is_one_r6_with_both_chains() {
        let v = run(&[("crates/p/src/lib.rs", INVERSION)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R6");
        // Both directed chains are in the path, each at least two hops.
        let joined = v[0].path.join("\n");
        assert!(joined.contains("acquires `p/lib.rs::alpha`"), "{joined}");
        assert!(joined.contains("calls `bump_beta`"), "{joined}");
        assert!(joined.contains("calls `bump_alpha`"), "{joined}");
        assert!(
            v[0].message.contains("interleave model"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "impl P {\n\
            pub fn forward(&self) {\n\
            let a = self.alpha.lock().unwrap();\n\
            self.bump_beta(*a);\n\
            }\n\
            fn bump_beta(&self, v: u64) {\n\
            let mut b = self.beta.lock().unwrap();\n\
            *b += v;\n\
            }\n\
            }\n";
        assert!(run(&[("crates/p/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn hold_across_foreign_wait_is_r7_but_own_wait_is_not() {
        let src = "impl W {\n\
            pub fn drain(&self) {\n\
            let held = self.outer.lock().unwrap();\n\
            self.wait_ready(*held);\n\
            }\n\
            fn wait_ready(&self, t: u64) {\n\
            let mut flag = self.inner.lock().unwrap();\n\
            while !*flag {\n\
            flag = self.ready.wait(flag).unwrap();\n\
            }\n\
            }\n\
            }\n";
        let v = run(&[("crates/w/src/lib.rs", src)]);
        let r7: Vec<_> = v.iter().filter(|v| v.rule == "R7").collect();
        assert_eq!(r7.len(), 1, "{v:?}");
        assert!(
            r7[0].message.contains("w/lib.rs::outer"),
            "{}",
            r7[0].message
        );
        // The chain crosses the call: acquire outer -> call -> wait.
        assert!(r7[0].path.len() >= 3, "{:?}", r7[0].path);
    }

    #[test]
    fn guard_rebinding_wait_loop_is_clean() {
        let src = "pub fn lease(p: &P) {\n\
            let mut free = p.free.lock().unwrap();\n\
            while free.is_empty() {\n\
            free = p.available.wait(free).unwrap();\n\
            }\n\
            }\n";
        assert!(run(&[("crates/p/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn blocking_io_under_a_lock_is_r7() {
        let src = "pub fn push_frame(s: &S, stream: &mut TcpStream) {\n\
            let g = sync::lock(&s.state);\n\
            stream.write_all(&g.bytes);\n\
            }\n";
        let v = run(&[("crates/service/src/wire.rs", src)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R7");
    }

    #[test]
    fn anchor_line_waiver_suppresses_r7() {
        let src = "pub fn push_frame(s: &S, stream: &mut TcpStream) {\n\
            let g = sync::lock(&s.state);\n\
            // lock-hold-ok: single-writer socket, modeled in wire_hold\n\
            stream.write_all(&g.bytes);\n\
            }\n";
        assert!(run(&[("crates/service/src/wire.rs", src)]).is_empty());
    }

    #[test]
    fn spawning_workers_under_a_lock_is_clean() {
        // Service::start shape: the workers lock is held while spawning,
        // but the closure runs on a fresh thread with an empty held-set.
        let src = "impl S {\n\
            pub fn start(&self) {\n\
            let mut handles = sync::lock(&self.workers);\n\
            handles.push(thread::spawn(move || self.worker_loop()));\n\
            }\n\
            fn worker_loop(&self) {\n\
            let mut inner = self.queue.lock().unwrap();\n\
            while inner.is_empty() {\n\
            inner = self.nonempty.wait(inner).unwrap();\n\
            }\n\
            }\n\
            }\n";
        assert!(run(&[("crates/s/src/lib.rs", src)]).is_empty());
    }
}

//! `mdmp-analyze` CLI: run the workspace invariant linter.
//!
//! ```text
//! mdmp-analyze [--root PATH] [--baseline PATH] [--json] [--deny-warnings]
//! ```
//!
//! Exit codes: 0 clean, 1 violations (or stale baseline entries under
//! `--deny-warnings`), 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use mdmp_analyze::{analyze, to_json, Baseline, RULES};

struct Opts {
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: bool,
    deny_warnings: bool,
}

fn usage() -> &'static str {
    "usage: mdmp-analyze [--root PATH] [--baseline PATH] [--json] [--deny-warnings]\n\
     \n\
     Lints crates/*/src under --root (default: .) against rules R1-R5\n\
     (see DESIGN.md §11). --baseline defaults to <root>/analyze/baseline.toml\n\
     (missing file = empty baseline). --deny-warnings also fails on stale\n\
     baseline entries."
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        baseline: None,
        json: false,
        deny_warnings: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a value")?,
                ));
            }
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("mdmp-analyze: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("analyze/baseline.toml"));
    let baseline = if baseline_path.is_file() {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mdmp-analyze: cannot read {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("mdmp-analyze: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let analysis = match analyze(&opts.root, &baseline) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mdmp-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        print!("{}", to_json(&analysis));
    } else {
        for v in &analysis.violations {
            let name = RULES.iter().find(|r| r.id == v.rule).map_or("", |r| r.name);
            println!(
                "{}:{}: {} [{}]: {}",
                v.file, v.line, v.rule, name, v.message
            );
            println!("    {}", v.snippet);
        }
        for e in &analysis.stale_baseline {
            eprintln!(
                "warning: stale baseline entry: rule {} file {} contains {:?} (fix shipped? \
                 remove the entry)",
                e.rule, e.file, e.contains
            );
        }
        println!(
            "mdmp-analyze: {} file(s) scanned, {} violation(s), {} stale baseline entr{}",
            analysis.files_scanned,
            analysis.violations.len(),
            analysis.stale_baseline.len(),
            if analysis.stale_baseline.len() == 1 {
                "y"
            } else {
                "ies"
            }
        );
    }

    if !analysis.violations.is_empty()
        || (opts.deny_warnings && !analysis.stale_baseline.is_empty())
    {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

//! `mdmp-analyze` CLI: run the workspace invariant linter.
//!
//! ```text
//! mdmp-analyze [--root PATH] [--baseline PATH] [--emit human|json|sarif]
//!              [--json] [--deny-warnings]
//! ```
//!
//! Exit codes: 0 clean, 1 violations (or stale baseline entries /
//! stale-scope warnings under `--deny-warnings`), 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use mdmp_analyze::{analyze, to_json, to_sarif, Baseline, RULES};

#[derive(PartialEq)]
enum Emit {
    Human,
    Json,
    Sarif,
}

struct Opts {
    root: PathBuf,
    baseline: Option<PathBuf>,
    emit: Emit,
    deny_warnings: bool,
}

fn usage() -> &'static str {
    "usage: mdmp-analyze [--root PATH] [--baseline PATH] [--emit human|json|sarif]\n\
     \x20                 [--json] [--deny-warnings]\n\
     \n\
     Lints crates/*/src (plus vendor/interleave/src for R3) under --root\n\
     (default: .) against rules R1-R7 (see DESIGN.md §11, §16). --baseline\n\
     defaults to <root>/analyze/baseline.toml (missing file = empty\n\
     baseline). --json is shorthand for --emit json. --deny-warnings also\n\
     fails on stale baseline entries and stale-scope warnings."
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        baseline: None,
        emit: Emit::Human,
        deny_warnings: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a value")?,
                ));
            }
            "--emit" => {
                opts.emit = match args.next().ok_or("--emit needs a value")?.as_str() {
                    "human" => Emit::Human,
                    "json" => Emit::Json,
                    "sarif" => Emit::Sarif,
                    other => return Err(format!("unknown emit mode `{other}`")),
                };
            }
            "--json" => opts.emit = Emit::Json,
            "--deny-warnings" => opts.deny_warnings = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("mdmp-analyze: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("analyze/baseline.toml"));
    let baseline = if baseline_path.is_file() {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mdmp-analyze: cannot read {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("mdmp-analyze: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let analysis = match analyze(&opts.root, &baseline) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mdmp-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    match opts.emit {
        Emit::Json => print!("{}", to_json(&analysis)),
        Emit::Sarif => print!("{}", to_sarif(&analysis)),
        Emit::Human => {
            for v in &analysis.violations {
                let name = RULES.iter().find(|r| r.id == v.rule).map_or("", |r| r.name);
                println!(
                    "{}:{}: {} [{}]: {}",
                    v.file, v.line, v.rule, name, v.message
                );
                println!("    {}", v.snippet);
                for hop in &v.path {
                    println!("      {hop}");
                }
            }
            for e in &analysis.stale_baseline {
                eprintln!(
                    "warning: stale baseline entry: rule {} file {} contains {:?} (fix shipped? \
                     remove the entry)",
                    e.rule, e.file, e.contains
                );
            }
            for w in &analysis.warnings {
                eprintln!("warning: {w}");
            }
            println!(
                "mdmp-analyze: {} file(s) scanned, {} violation(s), {} stale baseline entr{}, \
                 {} warning(s)",
                analysis.files_scanned,
                analysis.violations.len(),
                analysis.stale_baseline.len(),
                if analysis.stale_baseline.len() == 1 {
                    "y"
                } else {
                    "ies"
                },
                analysis.warnings.len()
            );
        }
    }

    if !analysis.violations.is_empty()
        || (opts.deny_warnings
            && (!analysis.stale_baseline.is_empty() || !analysis.warnings.is_empty()))
    {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

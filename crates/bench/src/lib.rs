//! # mdmp-bench
//!
//! The reproduction harness. [`experiments`] contains one function per
//! table/figure of the paper's evaluation; the `repro` binary exposes them
//! as subcommands (`repro fig2`, `repro fig5`, `repro all`, …) and writes
//! each result table to `results/*.csv`.
//!
//! Two kinds of experiments coexist (see EXPERIMENTS.md):
//!
//! * **functional** — real computation in the selected precision at a
//!   scaled-down problem size (software binary16 is ~20× slower than native
//!   arithmetic), for every accuracy figure;
//! * **modelled** — the calibrated cost model at the paper's full problem
//!   sizes, for every performance figure.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
pub mod report;

pub use report::{print_table, save_table, BenchReport, BenchValue, ExperimentTable};

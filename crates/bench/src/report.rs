//! Result-table formatting and persistence.

use std::io;
use std::path::PathBuf;

/// A labelled table of experiment results: string row labels + numeric
/// columns.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    /// Experiment identifier ("fig2-n-sweep", …).
    pub name: String,
    /// Human description shown above the table and in the CSV comment.
    pub description: String,
    /// Column headers, first column is the row label.
    pub header: Vec<String>,
    /// Rows: label + numeric cells.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl ExperimentTable {
    /// Create an empty table.
    pub fn new(name: &str, description: &str, header: &[&str]) -> ExperimentTable {
        ExperimentTable {
            name: name.to_string(),
            description: description.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, label: impl Into<String>, cells: Vec<f64>) {
        assert_eq!(
            cells.len() + 1,
            self.header.len(),
            "row width must match header"
        );
        self.rows.push((label.into(), cells));
    }

    /// Fetch a cell by row label and column name (for assertions in tests).
    pub fn cell(&self, row_label: &str, column: &str) -> Option<f64> {
        let col = self.header.iter().position(|h| h == column)?;
        if col == 0 {
            return None;
        }
        let row = self.rows.iter().find(|(l, _)| l == row_label)?;
        row.1.get(col - 1).copied()
    }
}

/// Print a table to stdout in aligned columns.
pub fn print_table(table: &ExperimentTable) {
    println!("\n== {} — {}", table.name, table.description);
    let label_w = table
        .rows
        .iter()
        .map(|(l, _)| l.len())
        .chain([table.header[0].len()])
        .max()
        .unwrap_or(8)
        .max(8);
    print!("{:<label_w$}", table.header[0]);
    for h in &table.header[1..] {
        print!(" {h:>14}");
    }
    println!();
    for (label, cells) in &table.rows {
        print!("{label:<label_w$}");
        for c in cells {
            if c.abs() >= 1e5 || (c.abs() < 1e-3 && *c != 0.0) {
                print!(" {c:>14.4e}");
            } else {
                print!(" {c:>14.4}");
            }
        }
        println!();
    }
}

/// Directory for result CSVs (created on demand): `./results`.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Persist a table to `results/<name>.csv`.
pub fn save_table(table: &ExperimentTable) -> io::Result<PathBuf> {
    let path = results_dir().join(format!("{}.csv", table.name));
    let header: Vec<&str> = table.header.iter().map(|s| s.as_str()).collect();
    let file = std::fs::File::create(&path)?;
    use std::io::Write;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "# {}", table.description)?;
    writeln!(w, "{}", header.join(","))?;
    for (label, cells) in &table.rows {
        let mut line = vec![label.clone()];
        line.extend(cells.iter().map(|c| format!("{c}")));
        writeln!(w, "{}", line.join(","))?;
    }
    w.flush()?;
    Ok(path)
}

/// Print and save in one step; IO errors are reported but not fatal.
pub fn emit(table: &ExperimentTable) {
    print_table(table);
    match save_table(table) {
        Ok(path) => println!("   -> saved {}", path.display()),
        Err(e) => eprintln!("   !! could not save table: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip_and_cell_lookup() {
        let mut t = ExperimentTable::new("t", "test table", &["mode", "a", "b"]);
        t.push("FP64", vec![1.0, 2.0]);
        t.push("FP16", vec![3.0, 4.0]);
        assert_eq!(t.cell("FP16", "b"), Some(4.0));
        assert_eq!(t.cell("FP16", "mode"), None);
        assert_eq!(t.cell("FP8", "a"), None);
        assert_eq!(t.cell("FP64", "c"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = ExperimentTable::new("t", "d", &["mode", "a"]);
        t.push("x", vec![1.0, 2.0]);
    }
}

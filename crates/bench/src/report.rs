//! Result-table formatting and persistence.

use std::io;
use std::path::PathBuf;

/// A labelled table of experiment results: string row labels + numeric
/// columns.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    /// Experiment identifier ("fig2-n-sweep", …).
    pub name: String,
    /// Human description shown above the table and in the CSV comment.
    pub description: String,
    /// Column headers, first column is the row label.
    pub header: Vec<String>,
    /// Rows: label + numeric cells.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl ExperimentTable {
    /// Create an empty table.
    pub fn new(name: &str, description: &str, header: &[&str]) -> ExperimentTable {
        ExperimentTable {
            name: name.to_string(),
            description: description.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, label: impl Into<String>, cells: Vec<f64>) {
        assert_eq!(
            cells.len() + 1,
            self.header.len(),
            "row width must match header"
        );
        self.rows.push((label.into(), cells));
    }

    /// Fetch a cell by row label and column name (for assertions in tests).
    pub fn cell(&self, row_label: &str, column: &str) -> Option<f64> {
        let col = self.header.iter().position(|h| h == column)?;
        if col == 0 {
            return None;
        }
        let row = self.rows.iter().find(|(l, _)| l == row_label)?;
        row.1.get(col - 1).copied()
    }
}

/// Print a table to stdout in aligned columns.
pub fn print_table(table: &ExperimentTable) {
    println!("\n== {} — {}", table.name, table.description);
    let label_w = table
        .rows
        .iter()
        .map(|(l, _)| l.len())
        .chain([table.header[0].len()])
        .max()
        .unwrap_or(8)
        .max(8);
    print!("{:<label_w$}", table.header[0]);
    for h in &table.header[1..] {
        print!(" {h:>14}");
    }
    println!();
    for (label, cells) in &table.rows {
        print!("{label:<label_w$}");
        for c in cells {
            if c.abs() >= 1e5 || (c.abs() < 1e-3 && *c != 0.0) {
                print!(" {c:>14.4e}");
            } else {
                print!(" {c:>14.4}");
            }
        }
        println!();
    }
}

/// Directory for result CSVs (created on demand): `./results`.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Persist a table to `results/<name>.csv`.
pub fn save_table(table: &ExperimentTable) -> io::Result<PathBuf> {
    let path = results_dir().join(format!("{}.csv", table.name));
    let header: Vec<&str> = table.header.iter().map(|s| s.as_str()).collect();
    let file = std::fs::File::create(&path)?;
    use std::io::Write;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "# {}", table.description)?;
    writeln!(w, "{}", header.join(","))?;
    for (label, cells) in &table.rows {
        let mut line = vec![label.clone()];
        line.extend(cells.iter().map(|c| format!("{c}")));
        writeln!(w, "{}", line.join(","))?;
    }
    w.flush()?;
    Ok(path)
}

/// Print and save in one step; IO errors are reported but not fatal.
pub fn emit(table: &ExperimentTable) {
    print_table(table);
    match save_table(table) {
        Ok(path) => println!("   -> saved {}", path.display()),
        Err(e) => eprintln!("   !! could not save table: {e}"),
    }
}

/// One value in a benchmark JSON artifact, with explicit formatting so
/// every `BENCH_PR*.json` renders numbers the same way.
#[derive(Debug, Clone)]
pub enum BenchValue {
    /// Fixed-point float rendered with the given number of decimals.
    Num {
        /// The value.
        value: f64,
        /// Decimals to render.
        decimals: usize,
    },
    /// Integer counter.
    Int(u64),
    /// String field (quoted).
    Str(String),
}

impl BenchValue {
    /// Seconds-style value (6 decimals), the convention of every bench
    /// artifact in this repo.
    pub fn secs(value: f64) -> BenchValue {
        BenchValue::Num { value, decimals: 6 }
    }

    /// Ratio/speedup-style value (4 decimals).
    pub fn ratio(value: f64) -> BenchValue {
        BenchValue::Num { value, decimals: 4 }
    }

    /// Integer counter.
    pub fn int(value: u64) -> BenchValue {
        BenchValue::Int(value)
    }

    /// String field.
    pub fn str(value: impl Into<String>) -> BenchValue {
        BenchValue::Str(value.into())
    }

    fn render(&self) -> String {
        match self {
            BenchValue::Num { value, decimals } => format!("{value:.decimals$}"),
            BenchValue::Int(v) => v.to_string(),
            BenchValue::Str(s) => format!("\"{}\"", s.replace('"', "'")),
        }
    }
}

/// The shared schema of the committed `BENCH_PR*.json` artifacts:
/// `benchmark`, `description`, `host_cores`, optional named extra blocks
/// (e.g. a cross-referenced baseline), a `workload` object, and a
/// `results` array of uniform rows. Field order is preserved as inserted.
///
/// Earlier PRs hand-rolled this shape per benchmark and the row schemas
/// drifted; every new artifact must be emitted through this struct.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Benchmark identifier (`"driver_scaling"`, `"cluster_scaling"`, …).
    pub benchmark: String,
    /// Human description of what was measured and on what machine.
    pub description: String,
    /// Logical host cores the measurement ran on.
    pub host_cores: usize,
    /// Named extra objects rendered between `host_cores` and `workload`.
    pub extra: Vec<(String, Vec<(String, BenchValue)>)>,
    /// The workload the rows share.
    pub workload: Vec<(String, BenchValue)>,
    /// Result rows (key order should match across rows).
    pub results: Vec<Vec<(String, BenchValue)>>,
}

impl BenchReport {
    /// An empty report; `host_cores` defaults to this process's
    /// parallelism.
    pub fn new(benchmark: &str, description: &str) -> BenchReport {
        BenchReport {
            benchmark: benchmark.to_string(),
            description: description.to_string(),
            host_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            extra: Vec::new(),
            workload: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Add a workload field (builder-style).
    pub fn workload(mut self, key: &str, value: BenchValue) -> BenchReport {
        self.workload.push((key.to_string(), value));
        self
    }

    /// Add a named extra block (builder-style).
    pub fn extra_block(mut self, name: &str, fields: Vec<(String, BenchValue)>) -> BenchReport {
        self.extra.push((name.to_string(), fields));
        self
    }

    /// Append one result row.
    pub fn push_result(&mut self, row: Vec<(String, BenchValue)>) {
        self.results.push(row);
    }

    fn render_fields(fields: &[(String, BenchValue)]) -> String {
        fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {}", v.render()))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// The artifact's JSON text.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"benchmark\": \"{}\",\n  \"description\": \"{}\",\n  \"host_cores\": {},\n",
            self.benchmark.replace('"', "'"),
            self.description.replace('"', "'"),
            self.host_cores
        );
        for (name, fields) in &self.extra {
            out.push_str(&format!(
                "  \"{name}\": {{{}}},\n",
                Self::render_fields(fields)
            ));
        }
        out.push_str(&format!(
            "  \"workload\": {{{}}},\n  \"results\": [\n",
            Self::render_fields(&self.workload)
        ));
        for (i, row) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!("    {{{}}}", Self::render_fields(row)));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Write the artifact to `path`.
    pub fn write(&self, path: &std::path::Path) -> io::Result<PathBuf> {
        std::fs::write(path, self.to_json())?;
        Ok(path.to_path_buf())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_report_schema_is_stable() {
        let mut report = BenchReport::new("demo", "a \"quoted\" description")
            .workload("tiles", BenchValue::int(16))
            .workload("mode", BenchValue::str("fp32"))
            .extra_block(
                "baseline",
                vec![("wall_seconds".to_string(), BenchValue::secs(0.5))],
            );
        report.host_cores = 4;
        report.push_result(vec![
            ("workers".to_string(), BenchValue::int(1)),
            ("wall_seconds".to_string(), BenchValue::secs(0.25)),
            ("speedup".to_string(), BenchValue::ratio(2.0)),
        ]);
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"benchmark\": \"demo\",\n"));
        assert!(json.contains("\"description\": \"a 'quoted' description\""));
        assert!(json.contains("\"host_cores\": 4"));
        assert!(json.contains("\"baseline\": {\"wall_seconds\": 0.500000}"));
        assert!(json.contains("\"workload\": {\"tiles\": 16, \"mode\": \"fp32\"}"));
        assert!(
            json.contains("    {\"workers\": 1, \"wall_seconds\": 0.250000, \"speedup\": 2.0000}")
        );
        assert!(json.ends_with("  ]\n}\n"));
    }

    #[test]
    fn table_roundtrip_and_cell_lookup() {
        let mut t = ExperimentTable::new("t", "test table", &["mode", "a", "b"]);
        t.push("FP64", vec![1.0, 2.0]);
        t.push("FP16", vec![3.0, 4.0]);
        assert_eq!(t.cell("FP16", "b"), Some(4.0));
        assert_eq!(t.cell("FP16", "mode"), None);
        assert_eq!(t.cell("FP8", "a"), None);
        assert_eq!(t.cell("FP64", "c"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = ExperimentTable::new("t", "d", &["mode", "a"]);
        t.push("x", vec![1.0, 2.0]);
    }
}

//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <command> [--quick]
//!
//! commands:
//!   fig2        numerical accuracy sweeps (A, R vs n, d, m)      [functional]
//!   fig3        per-pattern embedded-motif recall P0-P7          [functional]
//!   fig4        kernel time breakdown vs n and d                 [modelled]
//!   fig5        DGX-1 (1-8 V100) scaling + efficiency            [modelled]
//!   fig6        CPU vs V100 vs A100 across n, d, m               [modelled]
//!   fig7        accuracy-performance tradeoff vs tile count      [both]
//!   fig9        HPC-ODA classification F-score + runtime         [functional]
//!   fig10       genome recall/time vs tile count                 [both]
//!   fig12       turbine relaxed recall per pair class            [functional]
//!   table1      turbine pair-category counts
//!   headline    the 54x / 41.6x / 1.4x / 3.8x headline numbers   [modelled]
//!   utilization Nsight-style per-kernel utilization              [modelled]
//!   fig8        classifier timeline strip (Fig. 8)               [functional]
//!   fig11       startup + primitive pattern shapes as CSV
//!   multinode   multi-node (MPI-like) scaling extension          [modelled]
//!   schedule    round-robin vs balanced tile scheduling ablation [modelled]
//!   modes-ext   all modes incl. BF16 / TF32 / FP8                [functional]
//!   clamp       correlation-overshoot clamp ablation             [functional]
//!   anytime     SCRIMP-style anytime convergence extension       [functional]
//!   scaling     host-worker scaling of the tile pipeline,
//!               also writes BENCH_PR4.json                       [measured]
//!   cluster     tile-sharding throughput vs worker node count,
//!               also writes BENCH_PR6.json                       [modelled]
//!   tc          tensor-core GEMM modes vs the FP64 pipeline,
//!               also writes BENCH_PR7.json                       [both]
//!   session_multiplex
//!               concurrent streaming sessions + incremental
//!               append cost, also writes BENCH_PR8.json          [measured]
//!   wire        binary frame wire protocol vs JSON lines,
//!               also writes BENCH_PR9.json                       [measured]
//!   all         everything above
//!
//! --quick shrinks the functional problem sizes (CI-friendly).
//! Tables are printed and saved to results/*.csv.
//! ```

use mdmp_bench::experiments::{
    accuracy, case_studies, cluster_scaling, driver_scaling, extensions, performance,
    session_multiplex, tc, tradeoff, wire,
};
use mdmp_bench::report::{self, ExperimentTable};
use std::time::Instant;

fn emit_all(tables: Vec<ExperimentTable>) {
    for t in &tables {
        report::print_table(t);
        match report::save_table(t) {
            Ok(path) => println!("   -> saved {}", path.display()),
            Err(e) => eprintln!("   !! could not save table: {e}"),
        }
    }
}

fn run(command: &str, quick: bool) -> bool {
    let start = Instant::now();
    match command {
        "fig2" => emit_all(accuracy::fig2(quick)),
        "fig3" => emit_all(vec![accuracy::fig3(quick)]),
        "fig4" => emit_all(performance::fig4()),
        "fig5" => emit_all(performance::fig5()),
        "fig6" => emit_all(performance::fig6()),
        "fig7" => emit_all(vec![tradeoff::fig7_time(), tradeoff::fig7_accuracy(quick)]),
        "fig9" => emit_all(vec![case_studies::fig9(quick)]),
        "fig10" => emit_all(case_studies::fig10(quick)),
        "fig12" => emit_all(case_studies::fig12(quick)),
        "table1" => emit_all(vec![case_studies::table1()]),
        "headline" => emit_all(vec![performance::headline()]),
        "utilization" => emit_all(vec![performance::utilization()]),
        "fig8" => emit_all(vec![extensions::fig8(quick)]),
        "fig11" => emit_all(extensions::fig11()),
        "multinode" => emit_all(vec![extensions::multinode()]),
        "schedule" => emit_all(vec![extensions::schedule_ablation()]),
        "modes-ext" => emit_all(vec![extensions::extended_modes(quick)]),
        "clamp" => emit_all(vec![extensions::clamp_ablation(quick)]),
        "anytime" => emit_all(vec![extensions::anytime_convergence(quick)]),
        "scaling" => {
            let table = driver_scaling::driver_scaling(quick);
            match driver_scaling::write_bench_json(&table, std::path::Path::new("BENCH_PR4.json")) {
                Ok(path) => println!("   -> wrote {}", path.display()),
                Err(e) => eprintln!("   !! could not write BENCH_PR4.json: {e}"),
            }
            emit_all(vec![table]);
        }
        "cluster" => {
            let table = cluster_scaling::cluster_scaling(quick);
            match cluster_scaling::write_bench_json(&table, std::path::Path::new("BENCH_PR6.json"))
            {
                Ok(path) => println!("   -> wrote {}", path.display()),
                Err(e) => eprintln!("   !! could not write BENCH_PR6.json: {e}"),
            }
            emit_all(vec![table]);
        }
        "tc" => {
            let table = tc::tc_sweep(quick);
            match tc::write_bench_json(&table, quick, std::path::Path::new("BENCH_PR7.json")) {
                Ok(path) => println!("   -> wrote {}", path.display()),
                Err(e) => eprintln!("   !! could not write BENCH_PR7.json: {e}"),
            }
            emit_all(vec![table]);
        }
        "session_multiplex" => {
            let outcome = session_multiplex::session_multiplex(quick);
            match session_multiplex::write_bench_json(
                &outcome,
                std::path::Path::new("BENCH_PR8.json"),
            ) {
                Ok(path) => println!("   -> wrote {}", path.display()),
                Err(e) => eprintln!("   !! could not write BENCH_PR8.json: {e}"),
            }
            println!(
                "   multiplex: {} sessions on {} threads, {:.0} appends/sec, {:.1}% reuse",
                outcome.sessions,
                outcome.threads,
                outcome.appends_per_sec,
                100.0 * outcome.reuse_ratio
            );
            emit_all(vec![outcome.table]);
        }
        "wire" => {
            let outcome = wire::wire_bench(quick);
            match wire::write_bench_json(&outcome, std::path::Path::new("BENCH_PR9.json")) {
                Ok(path) => println!("   -> wrote {}", path.display()),
                Err(e) => eprintln!("   !! could not write BENCH_PR9.json: {e}"),
            }
            println!(
                "   wire: fp32 planes {:.2}x smaller than JSON, 3-node binary scaling {:.4}",
                outcome.f32_reduction, outcome.scaling_vs_1_at_3
            );
            emit_all(vec![outcome.encoding, outcome.cluster]);
        }
        "all" => {
            for cmd in [
                "table1",
                "headline",
                "utilization",
                "fig4",
                "fig5",
                "fig6",
                "fig11",
                "multinode",
                "schedule",
                "fig2",
                "fig3",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "fig12",
                "modes-ext",
                "clamp",
                "anytime",
                "scaling",
                "cluster",
                "tc",
                "session_multiplex",
                "wire",
            ] {
                println!("\n########## repro {cmd} ##########");
                run(cmd, quick);
            }
        }
        other => {
            eprintln!("unknown command '{other}'");
            return false;
        }
    }
    println!(
        "\n[{command}] finished in {:.1} s",
        start.elapsed().as_secs_f64()
    );
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let commands: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if commands.is_empty() {
        eprintln!(
            "usage: repro <fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|table1|headline|utilization|multinode|schedule|modes-ext|clamp|anytime|scaling|cluster|tc|session_multiplex|wire|all> [--quick]"
        );
        std::process::exit(2);
    }
    let mut ok = true;
    for cmd in commands {
        ok &= run(cmd, quick);
    }
    if !ok {
        std::process::exit(2);
    }
}

//! Extension studies beyond the paper's evaluation:
//!
//! * [`multinode`] — the §VII "extend to multiple nodes via MPI" outlook,
//!   on the cluster model;
//! * [`schedule_ablation`] — static Round-robin (the paper) vs greedy
//!   balanced tile scheduling at the odd GPU counts where Fig. 5 dips;
//! * [`extended_modes`] — accuracy and modeled time of **all** precision
//!   modes including BF16, TF32 (named as future work in §VII) and the
//!   FP8 variants;
//! * [`clamp_ablation`] — the `1 − corr ≥ 0` clamp before the square root:
//!   what reduced precision does without it;
//! * [`fig8`] — the classifier timeline of Fig. 8 as a letter-coded strip;
//! * [`fig11`] — the turbine startup shapes (and the P0–P7 primitives of
//!   Fig. 3) exported as CSV.

use super::run_profile;
use crate::report::ExperimentTable;
use mdmp_core::baseline::mstamp;
use mdmp_core::{estimate_cluster, estimate_run, run_with_mode, MdmpConfig, TileSchedule};
use mdmp_data::hpcoda::{self, AppClass, HpcOdaConfig};
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_data::turbine::Startup;
use mdmp_gpu_sim::{ClusterSystem, DeviceSpec, GpuSystem, Interconnect};
use mdmp_metrics::{nn_classify, recall_rate, relative_accuracy};
use mdmp_precision::PrecisionMode;

/// Multi-node strong scaling (modeled): 1–8 nodes of 4×A100 over
/// n = 2¹⁷, d = 2⁶, 256 tiles, FP64 — with the communication breakdown.
pub fn multinode() -> ExperimentTable {
    let n = 1 << 17;
    let d = 64;
    let cfg = MdmpConfig::new(64, PrecisionMode::Fp64).with_tiles(256);
    let mut table = ExperimentTable::new(
        "ext_multinode_scaling",
        "Extension (paper VII): modeled multi-node scaling, 4xA100 per node, n=2^17, d=2^6, 256 tiles, FP64, 100 Gbit/s interconnect",
        &["nodes", "total_s", "compute_s", "broadcast_s", "reduce_s", "efficiency"],
    );
    let mut t1 = 0.0;
    for nodes in 1..=8usize {
        let mut cluster =
            ClusterSystem::homogeneous(DeviceSpec::a100(), nodes, 4, Interconnect::default());
        let run = estimate_cluster(n, n, d, &cfg, &mut cluster).unwrap();
        if nodes == 1 {
            t1 = run.modeled_seconds;
        }
        let compute = run.node_makespans.iter().copied().fold(0.0, f64::max);
        table.push(
            format!("{nodes}"),
            vec![
                run.modeled_seconds,
                compute,
                run.broadcast_seconds,
                run.reduce_seconds,
                t1 / (nodes as f64 * run.modeled_seconds),
            ],
        );
    }
    table
}

/// Round-robin (the paper's static scheme, speed-oblivious) vs the
/// speed-weighted balanced scheduler on **heterogeneous** systems mixing
/// V100 and A100 GPUs — where static assignment leaves the faster devices
/// idle. On homogeneous systems with the paper's equal-size tiles the two
/// policies coincide (the right mitigation there is more tiles, as the
/// paper notes); the table includes one homogeneous row to show that.
pub fn schedule_ablation() -> ExperimentTable {
    let n = 1 << 16;
    let d = 64;
    let mut table = ExperimentTable::new(
        "ext_schedule_ablation",
        "Ablation: static Round-robin vs speed-weighted Balanced tile scheduling on mixed V100/A100 systems (n=2^16, d=2^6, FP64, 64 tiles)",
        &["system", "t_roundrobin_s", "t_balanced_s", "balanced_gain"],
    );
    let time = |specs: Vec<DeviceSpec>, schedule: TileSchedule| {
        let mut sys = GpuSystem::new(specs);
        let cfg = MdmpConfig::new(64, PrecisionMode::Fp64)
            .with_tiles(64)
            .with_schedule(schedule);
        estimate_run(n, n, d, &cfg, &mut sys)
            .unwrap()
            .modeled_seconds
    };
    let systems: Vec<(&str, Vec<DeviceSpec>)> = vec![
        ("4xA100", vec![DeviceSpec::a100(); 4]),
        (
            "2xA100+2xV100",
            vec![
                DeviceSpec::a100(),
                DeviceSpec::a100(),
                DeviceSpec::v100(),
                DeviceSpec::v100(),
            ],
        ),
        (
            "1xA100+3xV100",
            vec![
                DeviceSpec::a100(),
                DeviceSpec::v100(),
                DeviceSpec::v100(),
                DeviceSpec::v100(),
            ],
        ),
        (
            "3xA100+1xV100",
            vec![
                DeviceSpec::a100(),
                DeviceSpec::a100(),
                DeviceSpec::a100(),
                DeviceSpec::v100(),
            ],
        ),
    ];
    for (label, specs) in systems {
        let rr = time(specs.clone(), TileSchedule::RoundRobin);
        let bal = time(specs, TileSchedule::Balanced);
        table.push(label, vec![rr, bal, rr / bal]);
    }
    table
}

/// Accuracy (vs the FP64 CPU reference) and modeled A100 time of every
/// supported precision mode, including the BF16/TF32/FP8 extensions.
pub fn extended_modes(quick: bool) -> ExperimentTable {
    let (n, d, m) = if quick { (512, 4, 16) } else { (1024, 8, 32) };
    let pair = generate_pair(&SyntheticConfig {
        n_subsequences: n,
        dims: d,
        m,
        pattern: Pattern::Sine,
        embeddings: 4,
        noise: 0.3,
        pattern_amplitude: 1.0,
        seed: 0xE87,
    });
    let reference = mstamp(&pair.reference, &pair.query, m, None, None);
    let mut table = ExperimentTable::new(
        "ext_all_modes",
        &format!("Extension: all precision modes incl. BF16/TF32 (paper VII) and FP8 (n={n}, d={d}, m={m}; modeled time at n=2^16, d=2^6)"),
        &["mode", "A_pct", "R_pct", "modeled_paper_scale_s"],
    );
    for mode in PrecisionMode::ALL {
        let profile = run_profile(&pair.reference, &pair.query, m, mode, 16);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let est = estimate_run(
            1 << 16,
            1 << 16,
            64,
            &MdmpConfig::new(64, mode).with_tiles(16),
            &mut sys,
        )
        .unwrap();
        table.push(
            mode.label(),
            vec![
                relative_accuracy(&reference, &profile) * 100.0,
                recall_rate(&reference, &profile) * 100.0,
                est.modeled_seconds,
            ],
        );
    }
    table
}

/// Ablation of the `max(1 − corr, 0)` clamp: on data with **exact repeats**
/// (here: genome sequences with unmutated gene copies, where the true best
/// correlation is exactly 1), reduced-precision rounding pushes `corr`
/// above 1; without the clamp the square root yields NaN, the true best
/// match can never win the min-update, and the recall of precisely those
/// best matches collapses.
pub fn clamp_ablation(quick: bool) -> ExperimentTable {
    use mdmp_data::genome::{self, GenomeConfig};
    let len = 1024 + 127;
    let gcfg = GenomeConfig {
        len,
        channels: if quick { 4 } else { 8 },
        gene_len: 128,
        genes: 4,
        mutation_rate: 0.0, // exact copies: corr = 1 exactly
        seed: 0xC1A,
    };
    let ds = genome::generate(&gcfg);
    let m = gcfg.gene_len;
    let reference = mstamp(&ds.series, &ds.series, m, None, None);
    let mut table = ExperimentTable::new(
        "ext_clamp_ablation",
        &format!("Ablation: correlation-overshoot clamp on/off per mode, exact-repeat genome data (n={}, d={}, m={m})", ds.series.n_segments(m), ds.series.dims()),
        &["mode_clamp", "A_pct", "R_pct", "unset_pct"],
    );
    for mode in [
        PrecisionMode::Fp32,
        PrecisionMode::Fp16,
        PrecisionMode::Mixed,
    ] {
        for clamp in [true, false] {
            let mut cfg = MdmpConfig::new(m, mode);
            cfg.clamp = clamp;
            let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
            let run = run_with_mode(&ds.series, &ds.series, &cfg, &mut sys).unwrap();
            table.push(
                format!("{}_{}", mode.label(), if clamp { "on" } else { "off" }),
                vec![
                    relative_accuracy(&reference, &run.profile) * 100.0,
                    recall_rate(&reference, &run.profile) * 100.0,
                    run.profile.unset_fraction() * 100.0,
                ],
            );
        }
    }
    table
}

/// Fig. 8: a letter-coded timeline of the NN classifier's predictions over
/// the query half, against the ground truth — printed, plus a per-segment
/// CSV of (truth, prediction) class ids.
pub fn fig8(quick: bool) -> ExperimentTable {
    let cfg = if quick {
        HpcOdaConfig {
            sensors: 16,
            phase_len: 64,
            phases: 16,
            noise: 0.08,
            seed: 0x0DA,
        }
    } else {
        HpcOdaConfig {
            sensors: 16,
            phase_len: 128,
            phases: 16,
            noise: 0.08,
            seed: 0x0DA,
        }
    };
    let m = if quick { 16 } else { 32 };
    let ds = hpcoda::generate(&cfg);
    let (reference, query) = ds.split_half();
    let d = reference.series.dims();
    let run_cfg = MdmpConfig::new(m, PrecisionMode::Mixed);
    let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
    let run = run_with_mode(&reference.series, &query.series, &run_cfg, &mut sys).unwrap();
    let predicted = nn_classify(&run.profile, d - 1, &reference.labels);

    let letter = |c: AppClass| match c {
        AppClass::None => '.',
        AppClass::Kripke => 'K',
        AppClass::Lammps => 'L',
        AppClass::Linpack => 'H',
        AppClass::Amg => 'A',
        AppClass::Pennant => 'P',
        AppClass::Quicksilver => 'Q',
    };
    let n_q = query.series.n_segments(m);
    let stride = (n_q / 120).max(1);
    let truth_strip: String = (0..n_q)
        .step_by(stride)
        .map(|j| letter(query.labels[j]))
        .collect();
    let pred_strip: String = (0..n_q)
        .step_by(stride)
        .map(|j| predicted[j].map_or('?', letter))
        .collect();
    println!("\nFig. 8 timeline (Mixed mode; . = idle, letters = applications):");
    println!("  truth: {truth_strip}");
    println!("  pred : {pred_strip}");

    let mut table = ExperimentTable::new(
        "fig8_timeline",
        "Fig. 8: per-query-segment ground truth vs Mixed-mode NN prediction (class ids: 0=None 1=Kripke 2=LAMMPS 3=linpack 4=AMG 5=PENNANT 6=Quicksilver; -1 = no match)",
        &["segment", "truth", "predicted"],
    );
    let class_id = |c: AppClass| AppClass::ALL.iter().position(|&a| a == c).unwrap() as f64;
    for j in (0..n_q).step_by(stride) {
        table.push(
            format!("{j}"),
            vec![
                class_id(query.labels[j]),
                predicted[j].map_or(-1.0, class_id),
            ],
        );
    }
    table
}

/// SCRIMP-style anytime convergence (related work [25]/[14]): agreement
/// with the exact profile after evaluating a random fraction of the
/// distance-matrix diagonals.
pub fn anytime_convergence(quick: bool) -> ExperimentTable {
    use mdmp_core::scrimp_anytime;
    let (n, d, m) = if quick { (512, 3, 16) } else { (1024, 4, 32) };
    let pair = generate_pair(&SyntheticConfig {
        n_subsequences: n,
        dims: d,
        m,
        pattern: Pattern::DampedOsc,
        embeddings: 4,
        noise: 0.3,
        pattern_amplitude: 1.2,
        seed: 0xA27,
    });
    let exact = mstamp(&pair.reference, &pair.query, m, None, None);
    let mut table = ExperimentTable::new(
        "ext_anytime_convergence",
        &format!("Extension: SCRIMP-style anytime convergence (n={n}, d={d}, m={m}, FP64) — index agreement vs fraction of diagonals evaluated"),
        &["fraction", "index_agreement_pct", "value_accuracy_pct", "cells_covered_pct"],
    );
    for fraction in [0.05, 0.1, 0.25, 0.5, 1.0] {
        let (profile, progress) =
            scrimp_anytime(&pair.reference, &pair.query, m, fraction, None, 11);
        let total_cells = (pair.reference.n_segments(m) as u64) * (pair.query.n_segments(m) as u64);
        table.push(
            format!("{fraction}"),
            vec![
                recall_rate(&exact, &profile) * 100.0,
                relative_accuracy(&exact, &profile) * 100.0,
                100.0 * progress.cells_done as f64 / total_cells as f64,
            ],
        );
    }
    table
}

/// Fig. 11 (and the Fig. 3 inset): export the turbine startup shapes and
/// the eight primitive patterns as CSV series.
pub fn fig11() -> Vec<ExperimentTable> {
    let mut startups = ExperimentTable::new(
        "fig11_startup_shapes",
        "Fig. 11: the two turbine startup patterns over a 2048-sample window (speed in % of rated)",
        &["t", "P1", "P2"],
    );
    let p1 = Startup::P1.render(2048);
    let p2 = Startup::P2.render(2048);
    for t in (0..2048).step_by(8) {
        startups.push(format!("{t}"), vec![p1[t], p2[t]]);
    }

    let mut primitives = ExperimentTable::new(
        "fig3_pattern_shapes",
        "Fig. 3 inset: the eight primitive injected patterns P0-P7 over one window (normalized to [-1, 1])",
        &["t", "P0", "P1", "P2", "P3", "P4", "P5", "P6", "P7"],
    );
    let rendered: Vec<Vec<f64>> = Pattern::ALL.iter().map(|p| p.render(256)).collect();
    for t in 0..256 {
        primitives.push(format!("{t}"), rendered.iter().map(|r| r[t]).collect());
    }
    vec![startups, primitives]
}

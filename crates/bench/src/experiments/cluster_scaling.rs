//! Cluster tile-sharding throughput: tiles/sec vs worker node count
//! (PR 6's `mdmp-cluster` coordinator), written as `BENCH_PR6.json`
//! through the shared [`BenchReport`] schema.
//!
//! For 1, 2 and 3 in-process worker nodes the same ≥12-tile FP32 job is
//! sharded, stolen and merged; throughput is reported on the **modelled
//! device clock** (per-tile device seconds come from the calibrated cost
//! model and are node-independent, so the makespan — the busiest node's
//! accumulated device seconds — is machine-independent and
//! CI-assertable). A final chaos row re-runs the 3-node configuration
//! with one node killed mid-job to record the re-dispatch machinery in
//! the artifact.
//!
//! Every configuration's merged profile is asserted bit-identical to the
//! single-node run — the bench doubles as the cluster determinism check.

use crate::report::{BenchReport, BenchValue, ExperimentTable};
use mdmp_cluster::{run_cluster, ClusterConfig, ClusterRun};
use mdmp_service::{serve, JobInput, JobSpec, Priority, Server, Service, ServiceConfig};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Tiles in the benchmark job: divisible by 1, 2 and 3 so every node
/// count gets balanced shards.
const TILES: usize = 12;

fn spec(quick: bool) -> JobSpec {
    JobSpec {
        input: JobInput::Synthetic {
            n: if quick { 192 } else { 384 },
            d: 2,
            pattern: 1,
            noise: 0.3,
            seed: 2022,
        },
        m: 16,
        mode: "fp32".parse().expect("mode"),
        tiles: TILES,
        gpus: 1,
        priority: Priority::Normal,
        max_retries: 0,
        fault_plan: None,
        tile_retries: 2,
        fused_rows: None,
        tc_chunk_k: None,
        tile_deadline_ms: None,
        deadline_ms: None,
    }
}

fn start_nodes(n: usize) -> (Vec<Server>, Vec<String>) {
    let mut servers = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let service = Service::start(ServiceConfig {
            workers: 1,
            devices: 1,
            ..ServiceConfig::default()
        });
        let server = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind bench node");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    (servers, addrs)
}

fn run_on(addrs: &[String], spec: &JobSpec, faults: &str) -> ClusterRun {
    let mut cluster = ClusterConfig::new(addrs.to_vec());
    cluster.request_timeout = Duration::from_secs(60);
    if !faults.is_empty() {
        cluster.fault_plan = faults.parse().expect("bench fault plan");
    }
    run_cluster(spec, &cluster).expect("cluster bench run")
}

/// The `cluster_scaling` experiment table: throughput and resilience
/// counters per node count, plus the chaos configuration.
pub fn cluster_scaling(quick: bool) -> ExperimentTable {
    let spec = spec(quick);
    let mut table = ExperimentTable::new(
        "cluster_scaling",
        &format!(
            "cluster tiles/sec vs node count, {TILES}-tile FP32 job on in-process worker \
             nodes; modelled device clock (machine-independent); '3+kill' loses one node \
             mid-job",
        ),
        &[
            "config",
            "nodes",
            "wall_seconds",
            "makespan_s",
            "tiles_per_s",
            "scaling_vs_1",
            "steals",
            "redispatch",
            "dup_dropped",
        ],
    );
    let mut baseline_tps = 0.0;
    for (label, nodes, faults) in [
        ("1", 1usize, ""),
        ("2", 2, ""),
        ("3", 3, ""),
        // One node killed on its second request: leases re-dispatched,
        // job completes on the survivors.
        ("3+kill", 3, "nodekill@2:1"),
    ] {
        let (_servers, addrs) = start_nodes(nodes);
        let run = run_on(&addrs, &spec, faults);
        assert_eq!(run.tiles_total, TILES);
        let tps = run.modelled_tiles_per_second();
        if label == "1" {
            baseline_tps = tps;
        }
        table.push(
            label,
            vec![
                nodes as f64,
                run.wall_seconds,
                run.modelled_makespan_seconds(),
                tps,
                if baseline_tps > 0.0 {
                    tps / baseline_tps
                } else {
                    0.0
                },
                run.steals as f64,
                run.redispatches as f64,
                run.duplicates_dropped as f64,
            ],
        );
        if faults.is_empty() {
            assert!(
                run.quarantined_nodes().is_empty(),
                "clean bench run must not quarantine"
            );
        } else {
            assert!(
                run.redispatches >= 1,
                "chaos bench run must exercise re-dispatch"
            );
        }
    }
    table
}

/// Serialize the scaling table as `BENCH_PR6.json` (pass the repo root's
/// `BENCH_PR6.json` to commit it).
pub fn write_bench_json(table: &ExperimentTable, path: &Path) -> io::Result<PathBuf> {
    let mut report = BenchReport::new("cluster_scaling", &table.description)
        .workload("tiles", BenchValue::int(TILES as u64))
        .workload("mode", BenchValue::str("fp32"))
        .workload("gpus_per_node", BenchValue::int(1));
    for (label, cells) in &table.rows {
        report.push_result(vec![
            ("config".to_string(), BenchValue::str(label)),
            ("nodes".to_string(), BenchValue::int(cells[0] as u64)),
            ("wall_seconds".to_string(), BenchValue::secs(cells[1])),
            (
                "modelled_makespan_seconds".to_string(),
                BenchValue::secs(cells[2]),
            ),
            ("tiles_per_second".to_string(), BenchValue::ratio(cells[3])),
            ("scaling_vs_1".to_string(), BenchValue::ratio(cells[4])),
            ("steals".to_string(), BenchValue::int(cells[5] as u64)),
            ("redispatches".to_string(), BenchValue::int(cells[6] as u64)),
            (
                "duplicates_dropped".to_string(),
                BenchValue::int(cells[7] as u64),
            ),
        ]);
    }
    report.write(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The modelled clock makes the scaling assertion machine-independent:
    /// near-equal shards + stealing must put 3 nodes at >= 1.8x one node.
    #[test]
    fn three_nodes_scale_past_1_8x_on_the_modelled_clock() {
        let table = cluster_scaling(true);
        let scaling = table.cell("3", "scaling_vs_1").expect("3-node row");
        assert!(scaling >= 1.8, "3-node scaling {scaling} < 1.8");
        let chaos = table.cell("3+kill", "redispatch").expect("chaos row");
        assert!(chaos >= 1.0);
        let json = write_bench_json(
            &table,
            &crate::report::results_dir().join("BENCH_PR6_test.json"),
        )
        .expect("write");
        let text = std::fs::read_to_string(json).expect("read back");
        assert!(text.contains("\"benchmark\": \"cluster_scaling\""));
        assert!(text.contains("\"config\": \"3+kill\""));
        assert!(text.contains("\"redispatches\":"));
    }
}

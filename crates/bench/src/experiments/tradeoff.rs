//! Fig. 7: the accuracy–performance tradeoff when increasing the number of
//! tiles from 1 to 1024.
//!
//! Two coupled tables: the modelled execution time at the paper's scale
//! (n=2¹⁶, d=2⁶, m=2⁶ on one A100), and the functional accuracy at a
//! scaled problem size — more tiles restart the Eq. 1 recurrence more
//! often, so the FP16-family accuracy climbs with the tile count while the
//! time first dips (stream overlap) and then rises (merge overhead).

use super::run_profile;
use crate::report::ExperimentTable;
use mdmp_core::baseline::mstamp;
use mdmp_core::{estimate_run, MdmpConfig};
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_metrics::{embedded_recall, relative_accuracy};
use mdmp_precision::PrecisionMode;

/// The modes Fig. 7 covers: the paper's five plus the tensor-core GEMM
/// modes (PR 7 extension).
fn swept_modes() -> impl Iterator<Item = PrecisionMode> {
    PrecisionMode::PAPER_MODES
        .into_iter()
        .chain(PrecisionMode::TC_MODES)
}

/// Modelled time vs tile count at paper scale, per mode.
pub fn fig7_time() -> ExperimentTable {
    let mut header: Vec<String> = vec!["tiles".into()];
    for mode in swept_modes() {
        header.push(format!("t_{mode}_s"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = ExperimentTable::new(
        "fig7_time_vs_tiles",
        "Fig. 7 x-axis: modeled execution time vs tile count (A100, n=2^16, d=2^6, m=2^6)",
        &header_refs,
    );
    for tiles in [1usize, 4, 16, 64, 256, 1024] {
        let mut cells = Vec::new();
        for mode in swept_modes() {
            let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
            let cfg = MdmpConfig::new(64, mode).with_tiles(tiles);
            cells.push(
                estimate_run(1 << 16, 1 << 16, 64, &cfg, &mut sys)
                    .unwrap()
                    .modeled_seconds,
            );
        }
        table.push(format!("{tiles}"), cells);
    }
    table
}

/// Functional accuracy vs tile count at scaled size, per mode: relative
/// accuracy `A` and embedded-motif recall.
pub fn fig7_accuracy(quick: bool) -> ExperimentTable {
    let (n, d, m) = if quick { (512, 4, 16) } else { (1024, 8, 32) };
    let tile_counts: &[usize] = if quick {
        &[1, 4, 16, 64]
    } else {
        &[1, 4, 16, 64, 256]
    };
    let cfg = SyntheticConfig {
        n_subsequences: n,
        dims: d,
        m,
        pattern: Pattern::Sine,
        embeddings: 4,
        noise: 0.3,
        pattern_amplitude: 1.0,
        seed: 0xF16,
    };
    let pair = generate_pair(&cfg);
    let reference = mstamp(&pair.reference, &pair.query, m, None, None);

    let mut header: Vec<String> = vec!["tiles".into()];
    for mode in swept_modes() {
        header.push(format!("A_{mode}"));
        header.push(format!("Remb_{mode}"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = ExperimentTable::new(
        "fig7_accuracy_vs_tiles",
        &format!("Fig. 7 y-axis: functional accuracy vs tile count (n={n}, d={d}, m={m}; paper scale n=2^16, d=2^6, m=2^6)"),
        &header_refs,
    );
    for &tiles in tile_counts {
        let mut cells = Vec::new();
        for mode in swept_modes() {
            let profile = run_profile(&pair.reference, &pair.query, m, mode, tiles);
            cells.push(relative_accuracy(&reference, &profile) * 100.0);
            let (recall, _, _) =
                embedded_recall(&profile, d - 1, &pair.query_locs, &pair.reference_locs, 0);
            cells.push(recall * 100.0);
        }
        table.push(format!("{tiles}"), cells);
    }
    table
}

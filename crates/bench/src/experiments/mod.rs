//! One module per group of paper results.
//!
//! | module | regenerates |
//! |---|---|
//! | [`accuracy`] | Fig. 2 (numerical accuracy sweeps), Fig. 3 (per-pattern recall) |
//! | [`performance`] | Fig. 4 (kernel breakdown), Fig. 5 (multi-GPU scaling), Fig. 6 (machine comparison), headline speedups, §V-C utilization |
//! | [`tradeoff`] | Fig. 7 (accuracy–performance vs tile count) |
//! | [`case_studies`] | Fig. 9 (HPC-ODA), Fig. 10 (genome), Fig. 12 + Table I (turbines) |
//! | [`extensions`] | beyond-paper studies: multi-node, scheduling & clamp ablations, all-modes table, Fig. 8 timeline, Fig. 11 shapes |
//! | [`driver_scaling`] | fused-vs-unfused row pipeline scaling across host workers (BENCH_PR4.json) |
//! | [`cluster_scaling`] | tile-sharding throughput vs worker node count (BENCH_PR6.json) |
//! | [`tc`] | simulated tensor-core GEMM modes vs the FP64 pipeline (BENCH_PR7.json) |
//! | [`session_multiplex`] | concurrent streaming sessions + incremental-vs-recompute append cost (BENCH_PR8.json) |
//! | [`wire`] | binary frame wire protocol vs JSON lines: plane bytes + cluster rerun (BENCH_PR9.json) |

pub mod accuracy;
pub mod case_studies;
pub mod cluster_scaling;
pub mod driver_scaling;
pub mod extensions;
pub mod performance;
pub mod session_multiplex;
pub mod tc;
pub mod tradeoff;
pub mod wire;

use mdmp_core::{run_with_mode, MatrixProfile, MdmpConfig};
use mdmp_data::MultiDimSeries;
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_precision::PrecisionMode;

/// A single simulated A100 (the workhorse of the functional experiments).
pub fn a100() -> GpuSystem {
    GpuSystem::homogeneous(DeviceSpec::a100(), 1)
}

/// Run one mode functionally on a fresh single-A100 system and return the
/// profile (panics on configuration errors — experiment parameters are
/// static).
pub fn run_profile(
    reference: &MultiDimSeries,
    query: &MultiDimSeries,
    m: usize,
    mode: PrecisionMode,
    n_tiles: usize,
) -> MatrixProfile {
    let cfg = MdmpConfig::new(m, mode).with_tiles(n_tiles);
    let mut system = a100();
    run_with_mode(reference, query, &cfg, &mut system)
        .unwrap_or_else(|e| panic!("run failed ({mode}, {n_tiles} tiles): {e}"))
        .profile
}

//! Host-worker scaling of the concurrent tile pipeline (PR 2).
//!
//! Sweeps the `host_workers` knob over {1, 2, 4, N} for a ≥16-tile
//! functional workload and reports real wall-clock (`wall_seconds`) per
//! worker count, the speedup over the 1-worker baseline, and the
//! buffer-pool accounting. Modelled device time is asserted invariant —
//! the worker pool changes host wall-clock only, never the simulated
//! schedule.
//!
//! These are *measured* numbers: the speedup attainable depends on the
//! machine running the benchmark (`host_cores` in the emitted JSON). On a
//! single-core container the parallel runs cannot beat the sequential one
//! and the table records that honestly; on a ≥4-core host the 4-worker
//! wall time lands at or below half the 1-worker wall time.

use crate::report::ExperimentTable;
use mdmp_core::{run_with_mode, MdmpConfig, MdmpRun};
use mdmp_data::synthetic::{generate_pair, SyntheticConfig};
use mdmp_data::MultiDimSeries;
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_precision::PrecisionMode;
use std::io;
use std::path::{Path, PathBuf};

/// Worker counts to sweep (the final entry is the host's parallelism).
pub fn worker_sweep() -> Vec<usize> {
    let n = host_cores();
    let mut sweep = vec![1, 2, 4];
    if !sweep.contains(&n) {
        sweep.push(n);
    }
    sweep
}

/// Logical cores available to this process.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn workload(quick: bool) -> (MultiDimSeries, MultiDimSeries) {
    let m = 32;
    let cfg = SyntheticConfig {
        n_subsequences: if quick { 256 } else { 1024 },
        dims: if quick { 4 } else { 8 },
        m,
        pattern: mdmp_data::Pattern::Sine,
        embeddings: if quick { 2 } else { 4 },
        noise: 0.3,
        pattern_amplitude: 1.0,
        seed: 2022,
    };
    let pair = generate_pair(&cfg);
    (pair.reference, pair.query)
}

fn timed_run(r: &MultiDimSeries, q: &MultiDimSeries, workers: usize, repeats: usize) -> MdmpRun {
    // 16 tiles (the acceptance workload) on 4 simulated devices.
    let cfg = MdmpConfig::new(32, PrecisionMode::Fp32)
        .with_tiles(16)
        .with_host_workers(workers);
    let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 4);
    let mut best: Option<MdmpRun> = None;
    for _ in 0..repeats {
        let run = run_with_mode(r, q, &cfg, &mut sys).expect("scaling run failed");
        if best
            .as_ref()
            .map(|b| run.wall_seconds < b.wall_seconds)
            .unwrap_or(true)
        {
            best = Some(run);
        }
    }
    best.expect("at least one repeat")
}

/// The `driver_scaling` experiment: wall-clock per worker count.
pub fn driver_scaling(quick: bool) -> ExperimentTable {
    let (r, q) = workload(quick);
    let repeats = if quick { 1 } else { 3 };
    let mut table = ExperimentTable::new(
        "driver_scaling",
        &format!(
            "host wall-clock vs worker count, 16-tile FP32 workload on {} host cores \
             (best of {repeats}); modelled device time is worker-invariant",
            host_cores()
        ),
        &[
            "workers",
            "wall_seconds",
            "speedup_vs_1",
            "modeled_s",
            "buffer_reuses",
            "buffer_allocs",
            "busy_max_s",
        ],
    );
    let mut baseline_wall = None;
    for workers in worker_sweep() {
        let run = timed_run(&r, &q, workers, repeats);
        let baseline = *baseline_wall.get_or_insert(run.wall_seconds);
        let busy_max = run.worker_busy_seconds.iter().copied().fold(0.0, f64::max);
        table.push(
            format!("{workers}"),
            vec![
                run.wall_seconds,
                baseline / run.wall_seconds,
                run.modeled_seconds,
                run.buffer_pool_reuses as f64,
                run.buffer_pool_allocs as f64,
                busy_max,
            ],
        );
    }
    table
}

/// Serialize the scaling table as `BENCH_PR2.json` next to `path`'s parent
/// (pass the repo root to commit it). The JSON records the host core count
/// so the numbers are interpretable off-machine.
pub fn write_bench_json(table: &ExperimentTable, path: &Path) -> io::Result<PathBuf> {
    let mut rows = String::new();
    for (i, (label, cells)) in table.rows.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"workers\": {label}, \"wall_seconds\": {:.6}, \"speedup_vs_1\": {:.4}, \
             \"modeled_seconds\": {:.6}, \"buffer_reuses\": {}, \"buffer_allocs\": {}}}",
            cells[0], cells[1], cells[2], cells[3] as u64, cells[4] as u64
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"driver_scaling\",\n  \"description\": \"{}\",\n  \
         \"host_cores\": {},\n  \"workload\": {{\"tiles\": 16, \"mode\": \"fp32\", \
         \"devices\": 4}},\n  \"results\": [\n{rows}\n  ]\n}}\n",
        table.description.replace('"', "'"),
        host_cores()
    );
    std::fs::write(path, json)?;
    Ok(path.to_path_buf())
}

//! Host pipeline scaling: fused vs unfused row execution across worker
//! counts (PR 2's worker sweep, extended by PR 4's fused row pipeline).
//!
//! For each worker count in {1, 2, 4, N} the ≥16-tile functional workload
//! runs twice — once with the three-dispatch-per-row pipeline
//! (`fused_rows(false)`) and once with the fused single-dispatch pass —
//! and reports real wall-clock, the fused-over-unfused speedup at equal
//! workers, and the dispatch/pool accounting. Modelled device time is
//! asserted invariant: neither the worker pool nor row fusion changes the
//! simulated schedule, only host wall-clock.
//!
//! These are *measured* numbers: the attainable speedup depends on the
//! machine running the benchmark (`host_cores` in the emitted JSON). On a
//! single-core container the parallel runs cannot beat the sequential one
//! and the table records that honestly; the fused-vs-unfused ratio is
//! meaningful at every core count because both sides run on the same pool.

use crate::report::{BenchReport, BenchValue, ExperimentTable};
use mdmp_core::{run_with_mode, MdmpConfig, MdmpRun};
use mdmp_data::synthetic::{generate_pair, SyntheticConfig};
use mdmp_data::MultiDimSeries;
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_precision::PrecisionMode;
use std::io;
use std::path::{Path, PathBuf};

/// Worker counts to sweep (the final entry is the host's parallelism).
pub fn worker_sweep() -> Vec<usize> {
    let n = host_cores();
    let mut sweep = vec![1, 2, 4];
    if !sweep.contains(&n) {
        sweep.push(n);
    }
    sweep
}

/// Logical cores available to this process.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn workload(quick: bool) -> (MultiDimSeries, MultiDimSeries) {
    let m = 32;
    let cfg = SyntheticConfig {
        n_subsequences: if quick { 256 } else { 1024 },
        dims: if quick { 4 } else { 8 },
        m,
        pattern: mdmp_data::Pattern::Sine,
        embeddings: if quick { 2 } else { 4 },
        noise: 0.3,
        pattern_amplitude: 1.0,
        seed: 2022,
    };
    let pair = generate_pair(&cfg);
    (pair.reference, pair.query)
}

/// One measured configuration: best-of-`repeats` wall clock for a worker
/// count and pipeline choice on the 16-tile FP32 acceptance workload.
fn timed_run(
    r: &MultiDimSeries,
    q: &MultiDimSeries,
    workers: usize,
    fused: bool,
    repeats: usize,
) -> MdmpRun {
    // 16 tiles (the acceptance workload) on 4 simulated devices.
    let cfg = MdmpConfig::new(32, PrecisionMode::Fp32)
        .with_tiles(16)
        .with_host_workers(workers)
        .with_fused_rows(Some(fused));
    let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 4);
    let mut best: Option<MdmpRun> = None;
    for _ in 0..repeats {
        let run = run_with_mode(r, q, &cfg, &mut sys).expect("scaling run failed");
        if best
            .as_ref()
            .map(|b| run.wall_seconds < b.wall_seconds)
            .unwrap_or(true)
        {
            best = Some(run);
        }
    }
    best.expect("at least one repeat")
}

/// The `driver_scaling` experiment: fused vs unfused wall-clock per worker
/// count. Panics if the two pipelines disagree on the profile or the
/// modelled schedule — the bench doubles as an end-to-end identity check.
pub fn driver_scaling(quick: bool) -> ExperimentTable {
    // Let the pool actually grow past the container's core count: on a
    // narrow (1-core) host the vendored pool otherwise caps every run at
    // one inline worker, so `pool_thread_reuses` would read 0 and the
    // sweep would not exercise reuse at all (the PR 4 artifact bug).
    rayon::set_global_threads(host_cores().max(2));
    let (r, q) = workload(quick);
    let repeats = if quick { 1 } else { 3 };
    let mut table = ExperimentTable::new(
        "driver_scaling",
        &format!(
            "host wall-clock, fused vs unfused row pipeline per worker count, 16-tile FP32 \
             workload on {} host cores (best of {repeats}); modelled device time is invariant",
            host_cores()
        ),
        &[
            "pipeline/workers",
            "wall_seconds",
            "fused_speedup",
            "modeled_s",
            "elim_dispatch",
            "pool_reuses",
            "busy_max_s",
        ],
    );
    for workers in worker_sweep() {
        let unfused = timed_run(&r, &q, workers, false, repeats);
        let fused = timed_run(&r, &q, workers, true, repeats);
        assert_eq!(
            unfused.profile, fused.profile,
            "fused and unfused profiles must be bit-identical"
        );
        assert_eq!(
            unfused.modeled_seconds, fused.modeled_seconds,
            "fusion must not change the modelled schedule"
        );
        for (label, run) in [("unfused", &unfused), ("fused", &fused)] {
            // A multi-worker run over ≥16 tiles dispatches many times per
            // worker; if no thread was ever reused the pool is broken (or
            // silently capped) and the wall-clock column is meaningless.
            if workers >= 2 {
                assert!(
                    run.pool_thread_reuses > 0,
                    "{label}/{workers}: pool recorded zero thread reuses"
                );
            }
            let busy_max = run.worker_busy_seconds.iter().copied().fold(0.0, f64::max);
            table.push(
                format!("{label}/{workers}"),
                vec![
                    run.wall_seconds,
                    unfused.wall_seconds / run.wall_seconds,
                    run.modeled_seconds,
                    run.eliminated_dispatches as f64,
                    run.pool_thread_reuses as f64,
                    busy_max,
                ],
            );
        }
    }
    rayon::set_global_threads(0);
    table
}

/// Serialize the scaling table as `BENCH_PR4.json` (pass the repo root's
/// `BENCH_PR4.json` to commit it), through the shared [`BenchReport`]
/// schema. The JSON records the host core count so the numbers are
/// interpretable off-machine.
pub fn write_bench_json(table: &ExperimentTable, path: &Path) -> io::Result<PathBuf> {
    let mut report = BenchReport::new("driver_scaling", &table.description)
        .workload("tiles", BenchValue::int(16))
        .workload("mode", BenchValue::str("fp32"))
        .workload("devices", BenchValue::int(4));
    report.host_cores = host_cores();
    // Cross-reference the committed PR 2 baseline (spawn-per-dispatch,
    // unfused) when it sits next to the output file, so the headline
    // "fused+pooled vs PR 2" ratio is recorded in the artifact itself.
    let baseline = path
        .parent()
        .map(|dir| dir.join("BENCH_PR2.json"))
        .filter(|p| p.exists())
        .and_then(|p| std::fs::read_to_string(p).ok())
        .and_then(|text| pr2_single_worker_wall(&text));
    if let (Some(pr2_wall), Some((_, cells))) =
        (baseline, table.rows.iter().find(|(l, _)| l == "fused/1"))
    {
        report = report.extra_block(
            "pr2_unfused_baseline",
            vec![
                ("wall_seconds".to_string(), BenchValue::secs(pr2_wall)),
                (
                    "fused_speedup_vs_pr2".to_string(),
                    BenchValue::ratio(pr2_wall / cells[0]),
                ),
            ],
        );
    }
    for (label, cells) in &table.rows {
        let (pipeline, workers) = label.split_once('/').unwrap_or((label.as_str(), "1"));
        report.push_result(vec![
            ("pipeline".to_string(), BenchValue::str(pipeline)),
            (
                "workers".to_string(),
                BenchValue::int(workers.parse().unwrap_or(1)),
            ),
            ("wall_seconds".to_string(), BenchValue::secs(cells[0])),
            (
                "fused_speedup_vs_unfused".to_string(),
                BenchValue::ratio(cells[1]),
            ),
            ("modeled_seconds".to_string(), BenchValue::secs(cells[2])),
            (
                "eliminated_dispatches".to_string(),
                BenchValue::int(cells[3] as u64),
            ),
            (
                "pool_thread_reuses".to_string(),
                BenchValue::int(cells[4] as u64),
            ),
        ]);
    }
    report.write(path)
}

/// The 1-worker `wall_seconds` from the PR 2 benchmark JSON (first result
/// row with `"workers": 1`). Minimal extraction, not a JSON parser.
fn pr2_single_worker_wall(text: &str) -> Option<f64> {
    text.split("{\"workers\": 1,")
        .nth(1)?
        .split("\"wall_seconds\": ")
        .nth(1)?
        .split(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

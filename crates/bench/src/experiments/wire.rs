//! Wire-protocol payload cost: bytes-on-wire for a tile result plane
//! under the JSON-lines transport vs the binary frame encoding (wide and
//! precision-narrowed), plus a rerun of the PR 6 cluster scaling job over
//! both transports, written as `BENCH_PR9.json` through the shared
//! [`BenchReport`] schema.
//!
//! The encoding table serializes the *same* profile planes three ways —
//! the exact `tile_exec` reply shapes the server emits — so the byte
//! counts are the real wire costs, not synthetic estimates. The cluster
//! table re-runs the 12-tile FP32 job of `cluster_scaling` with the
//! coordinator forced onto JSON lines and with the binary upgrade
//! negotiated; the modelled device clock keeps `scaling_vs_1`
//! machine-independent (3 nodes = 2.4000, the PR 6 value, regardless of
//! transport) while the per-node byte counters expose the transport
//! difference.
//!
//! CI gates (asserted by the in-module test and the workflow):
//! * FP32-mode planes shrink **>= 4x** under the narrowed binary frames.
//! * 3-node `scaling_vs_1` on the binary wire stays **>= 2.40**.

use crate::report::{BenchReport, BenchValue, ExperimentTable};
use mdmp_cluster::{run_cluster, ClusterConfig, ClusterRun};
use mdmp_service::{
    encode_index_plane_hex, encode_plane_hex, narrowest_width, serve, Chunk, FrameCodec, JobInput,
    JobSpec, Json, Message, Priority, Server, Service, ServiceConfig, WirePreference,
};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tiles in the cluster rerun: the PR 6 job, divisible by 1 and 3.
const TILES: usize = 12;

/// The PR 6 cluster job, reused verbatim so `scaling_vs_1` reproduces the
/// committed BENCH_PR6 value; `mode` is overridden for the encoding rows.
fn spec(quick: bool, mode: &str) -> JobSpec {
    JobSpec {
        input: JobInput::Synthetic {
            n: if quick { 192 } else { 384 },
            d: 2,
            pattern: 1,
            noise: 0.3,
            seed: 2022,
        },
        m: 16,
        mode: mode.parse().expect("mode"),
        tiles: TILES,
        gpus: 1,
        priority: Priority::Normal,
        max_retries: 0,
        fault_plan: None,
        tile_retries: 2,
        fused_rows: None,
        tc_chunk_k: None,
        tile_deadline_ms: None,
        deadline_ms: None,
    }
}

/// Everything the `wire` experiment produces: the two printed tables plus
/// the gate values the CI workflow asserts on.
pub struct WireOutcome {
    /// Per-mode bytes-on-wire for one full profile's planes.
    pub encoding: ExperimentTable,
    /// Cluster rerun over both transports.
    pub cluster: ExperimentTable,
    /// JSON bytes / narrowed-binary bytes for the FP32-mode planes.
    pub f32_reduction: f64,
    /// Modelled 3-node scaling on the binary wire (PR 6 metric).
    pub scaling_vs_1_at_3: f64,
}

/// Run one mode locally and return its profile planes in the k-major
/// order `tile_exec` ships them.
fn planes(quick: bool, mode: &str) -> (Vec<f64>, Vec<i64>) {
    let spec = spec(quick, mode);
    let (reference, query) = spec.materialize().expect("materialize");
    let profile = crate::experiments::run_profile(&reference, &query, spec.m, spec.mode, 1);
    let mut values = Vec::new();
    let mut indices = Vec::new();
    mdmp_core::profile_planes_k_major(&profile, &mut values, &mut indices);
    (values, indices)
}

/// The JSON-lines form of a tile result carrying these planes, exactly as
/// [`mdmp_service`]'s `tile_exec` emits it (header fields + hex planes).
fn json_reply(values: &[f64], indices: &[i64]) -> String {
    let obj = Json::obj(vec![
        ("tile", Json::num(0.0)),
        ("col0", Json::num(0.0)),
        ("n_query", Json::num((values.len() / 2) as f64)),
        ("dims", Json::num(2.0)),
        ("p_hex", Json::str(encode_plane_hex(values))),
        ("i_hex", Json::str(encode_index_plane_hex(indices))),
    ]);
    let mut line = obj.to_string();
    line.push('\n');
    line
}

/// The binary-frame form of the same tile result (chunk-referenced
/// planes), encoded wide or narrowed.
fn frame_reply(codec: &mut FrameCodec, values: &[f64], indices: &[i64], narrow: bool) -> usize {
    let msg = Message {
        json: Json::obj(vec![
            ("tile", Json::num(0.0)),
            ("col0", Json::num(0.0)),
            ("n_query", Json::num((values.len() / 2) as f64)),
            ("dims", Json::num(2.0)),
            ("p_chunk", Json::num(0.0)),
            ("i_chunk", Json::num(1.0)),
        ]),
        chunks: vec![Chunk::F64(values.to_vec()), Chunk::I64(indices.to_vec())],
    };
    codec
        .encode(&msg, narrow)
        .expect("encode bench frame")
        .len()
}

/// Encoding-cost table: one row per precision family, measuring the same
/// planes under all three serializations. Returns the table and the
/// FP32-mode reduction factor (the gated number).
fn encoding_table(quick: bool) -> (ExperimentTable, f64) {
    let mut table = ExperimentTable::new(
        "wire_encoding",
        "bytes on the wire for one profile's planes: JSON-lines hex vs binary frame \
         (wide) vs binary frame narrowed to the mode's bit-exact width; encode_us is \
         the narrowed-frame encode time",
        &[
            "mode",
            "elements",
            "narrow_width",
            "json_bytes",
            "binary_bytes",
            "binary_narrow_bytes",
            "reduction_vs_json",
            "encode_us",
        ],
    );
    let mut codec = FrameCodec::new();
    let mut f32_reduction = 0.0;
    for mode in ["fp64", "fp32", "fp16"] {
        let (values, indices) = planes(quick, mode);
        let json_bytes = json_reply(&values, &indices).len();
        let wide = frame_reply(&mut codec, &values, &indices, false);
        let narrow = frame_reply(&mut codec, &values, &indices, true);
        let start = Instant::now();
        let reps = 32;
        for _ in 0..reps {
            frame_reply(&mut codec, &values, &indices, true);
        }
        let encode_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let reduction = json_bytes as f64 / narrow as f64;
        if mode == "fp32" {
            f32_reduction = reduction;
        }
        table.push(
            mode,
            vec![
                values.len() as f64,
                narrowest_width(&values) as f64,
                json_bytes as f64,
                wide as f64,
                narrow as f64,
                reduction,
                encode_us,
            ],
        );
    }
    (table, f32_reduction)
}

fn start_nodes(n: usize) -> (Vec<Server>, Vec<String>) {
    let mut servers = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let service = Service::start(ServiceConfig {
            workers: 1,
            devices: 1,
            ..ServiceConfig::default()
        });
        let server = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind bench node");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    (servers, addrs)
}

fn run_on(addrs: &[String], spec: &JobSpec, wire: WirePreference) -> ClusterRun {
    let mut cluster = ClusterConfig::new(addrs.to_vec());
    cluster.request_timeout = Duration::from_secs(60);
    cluster.wire = wire;
    run_cluster(spec, &cluster).expect("cluster bench run")
}

/// Cluster rerun table: the PR 6 job at 1 and 3 nodes, with the 3-node
/// configuration run over both transports. Returns the table and the
/// binary-wire 3-node `scaling_vs_1` (the gated number).
fn cluster_table(quick: bool) -> (ExperimentTable, f64) {
    let spec = spec(quick, "fp32");
    let mut table = ExperimentTable::new(
        "wire_cluster",
        &format!(
            "the {TILES}-tile FP32 cluster job of BENCH_PR6 rerun over JSON lines and \
             the negotiated binary frames; modelled device clock keeps scaling_vs_1 \
             transport-independent while wire_bytes shows the transport cost",
        ),
        &[
            "config",
            "nodes",
            "binary_nodes",
            "wall_seconds",
            "makespan_s",
            "tiles_per_s",
            "scaling_vs_1",
            "wire_bytes_sent",
            "wire_bytes_received",
        ],
    );
    let mut baseline_tps = 0.0;
    let mut scaling_at_3 = 0.0;
    for (label, nodes, wire) in [
        ("1-binary", 1usize, WirePreference::Auto),
        ("3-binary", 3, WirePreference::Auto),
        ("3-json", 3, WirePreference::Json),
    ] {
        let (_servers, addrs) = start_nodes(nodes);
        let run = run_on(&addrs, &spec, wire);
        assert_eq!(run.tiles_total, TILES);
        let expect_binary = if wire == WirePreference::Auto {
            nodes
        } else {
            0
        };
        assert_eq!(
            run.binary_wire_nodes(),
            expect_binary,
            "{label}: unexpected binary-wire node count"
        );
        let tps = run.modelled_tiles_per_second();
        if label == "1-binary" {
            baseline_tps = tps;
        }
        let scaling = if baseline_tps > 0.0 {
            tps / baseline_tps
        } else {
            0.0
        };
        if label == "3-binary" {
            scaling_at_3 = scaling;
        }
        table.push(
            label,
            vec![
                nodes as f64,
                run.binary_wire_nodes() as f64,
                run.wall_seconds,
                run.modelled_makespan_seconds(),
                tps,
                scaling,
                run.wire_bytes_sent() as f64,
                run.wire_bytes_received() as f64,
            ],
        );
    }
    (table, scaling_at_3)
}

/// The full `wire` experiment: encoding costs + cluster rerun + gates.
pub fn wire_bench(quick: bool) -> WireOutcome {
    let (encoding, f32_reduction) = encoding_table(quick);
    let (cluster, scaling_vs_1_at_3) = cluster_table(quick);
    WireOutcome {
        encoding,
        cluster,
        f32_reduction,
        scaling_vs_1_at_3,
    }
}

/// Serialize the outcome as `BENCH_PR9.json` (pass the repo root's
/// `BENCH_PR9.json` to commit it). The `gates` block carries the two
/// CI-asserted numbers next to their thresholds.
pub fn write_bench_json(outcome: &WireOutcome, path: &Path) -> io::Result<PathBuf> {
    let mut report = BenchReport::new(
        "wire_protocol",
        "binary frame wire protocol vs JSON lines: per-mode plane bytes and the \
         PR6 cluster job over both transports",
    )
    .workload("tiles", BenchValue::int(TILES as u64))
    .workload("cluster_mode", BenchValue::str("fp32"))
    .workload("gpus_per_node", BenchValue::int(1))
    .extra_block(
        "gates",
        vec![
            (
                "f32_bytes_reduction".to_string(),
                BenchValue::ratio(outcome.f32_reduction),
            ),
            (
                "f32_bytes_reduction_min".to_string(),
                BenchValue::ratio(4.0),
            ),
            (
                "scaling_vs_1_at_3".to_string(),
                BenchValue::ratio(outcome.scaling_vs_1_at_3),
            ),
            ("scaling_vs_1_at_3_min".to_string(), BenchValue::ratio(2.40)),
        ],
    );
    for (label, cells) in &outcome.encoding.rows {
        report.push_result(vec![
            ("row".to_string(), BenchValue::str("encoding")),
            ("mode".to_string(), BenchValue::str(label)),
            ("elements".to_string(), BenchValue::int(cells[0] as u64)),
            ("narrow_width".to_string(), BenchValue::int(cells[1] as u64)),
            ("json_bytes".to_string(), BenchValue::int(cells[2] as u64)),
            ("binary_bytes".to_string(), BenchValue::int(cells[3] as u64)),
            (
                "binary_narrow_bytes".to_string(),
                BenchValue::int(cells[4] as u64),
            ),
            ("reduction_vs_json".to_string(), BenchValue::ratio(cells[5])),
            (
                "encode_seconds".to_string(),
                BenchValue::secs(cells[6] / 1e6),
            ),
        ]);
    }
    for (label, cells) in &outcome.cluster.rows {
        report.push_result(vec![
            ("row".to_string(), BenchValue::str("cluster")),
            ("config".to_string(), BenchValue::str(label)),
            ("nodes".to_string(), BenchValue::int(cells[0] as u64)),
            ("binary_nodes".to_string(), BenchValue::int(cells[1] as u64)),
            ("wall_seconds".to_string(), BenchValue::secs(cells[2])),
            (
                "modelled_makespan_seconds".to_string(),
                BenchValue::secs(cells[3]),
            ),
            ("tiles_per_second".to_string(), BenchValue::ratio(cells[4])),
            ("scaling_vs_1".to_string(), BenchValue::ratio(cells[5])),
            (
                "wire_bytes_sent".to_string(),
                BenchValue::int(cells[6] as u64),
            ),
            (
                "wire_bytes_received".to_string(),
                BenchValue::int(cells[7] as u64),
            ),
        ]);
    }
    report.write(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two CI gates hold on the quick problem size: FP32 planes shrink
    /// at least 4x under narrowed frames, and the modelled 3-node scaling
    /// on the binary wire reproduces the PR 6 value.
    #[test]
    fn wire_gates_hold_on_the_quick_size() {
        let outcome = wire_bench(true);
        assert!(
            outcome.f32_reduction >= 4.0,
            "fp32 reduction {} < 4x",
            outcome.f32_reduction
        );
        // The modelled ratio is exactly 2.4 up to f64 rounding; compare
        // with a whisker of slack so 2.3999999999999995 passes.
        assert!(
            outcome.scaling_vs_1_at_3 >= 2.40 - 1e-9,
            "3-node binary scaling {} < 2.40",
            outcome.scaling_vs_1_at_3
        );
        let json_bytes = outcome
            .cluster
            .cell("3-json", "wire_bytes_received")
            .expect("json row");
        let bin_bytes = outcome
            .cluster
            .cell("3-binary", "wire_bytes_received")
            .expect("binary row");
        assert!(
            bin_bytes * 2.0 < json_bytes,
            "binary cluster run received {bin_bytes} B vs JSON {json_bytes} B"
        );
        let json = write_bench_json(
            &outcome,
            &crate::report::results_dir().join("BENCH_PR9_test.json"),
        )
        .expect("write");
        let text = std::fs::read_to_string(json).expect("read back");
        assert!(text.contains("\"benchmark\": \"wire_protocol\""));
        assert!(text.contains("\"f32_bytes_reduction\":"));
        assert!(text.contains("\"config\": \"3-json\""));
    }
}

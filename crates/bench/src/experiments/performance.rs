//! Modelled performance experiments at the paper's full problem sizes:
//! Fig. 4 (kernel breakdown), Fig. 5 (DGX-1 scaling), Fig. 6 (machine
//! comparison), the §I/§V-C headline speedups and the §V-C utilization
//! report.

use crate::report::ExperimentTable;
use mdmp_core::{estimate_run, MdmpConfig};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem, KernelClass, UtilizationReport};
use mdmp_precision::PrecisionMode;

fn estimate_seconds(
    spec: DeviceSpec,
    gpus: usize,
    n: usize,
    d: usize,
    m: usize,
    mode: PrecisionMode,
    tiles: usize,
) -> f64 {
    let mut sys = GpuSystem::homogeneous(spec, gpus);
    let cfg = MdmpConfig::new(m, mode).with_tiles(tiles);
    estimate_run(n, n, d, &cfg, &mut sys)
        .expect("estimate failed")
        .modeled_seconds
}

/// Fig. 4: kernel execution time of the single-tile implementation on one
/// A100 (FP64), sweeping n (d=2⁶, m=2⁶) and d (n=2¹⁶, m=2⁶).
pub fn fig4() -> Vec<ExperimentTable> {
    let header = [
        "point",
        "precalc_s",
        "dist_calc_s",
        "sort_scan_s",
        "update_s",
        "total_s",
    ];
    let mut by_n = ExperimentTable::new(
        "fig4_kernel_time_vs_n",
        "Fig. 4 left: kernel time breakdown vs n (A100, FP64, 1 tile, d=2^6, m=2^6)",
        &header,
    );
    let mut by_d = ExperimentTable::new(
        "fig4_kernel_time_vs_d",
        "Fig. 4 right: kernel time breakdown vs d (A100, FP64, 1 tile, n=2^16, m=2^6)",
        &header,
    );
    let cfg = MdmpConfig::new(64, PrecisionMode::Fp64);
    for n_pow in 13..=16u32 {
        let n = 1usize << n_pow;
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let est = estimate_run(n, n, 64, &cfg, &mut sys).unwrap();
        by_n.push(
            format!("n=2^{n_pow}"),
            breakdown_cells(&est.ledger, est.modeled_seconds),
        );
    }
    for d_pow in 3..=6u32 {
        let d = 1usize << d_pow;
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let est = estimate_run(1 << 16, 1 << 16, d, &cfg, &mut sys).unwrap();
        by_d.push(
            format!("d=2^{d_pow}"),
            breakdown_cells(&est.ledger, est.modeled_seconds),
        );
    }
    vec![by_n, by_d]
}

fn breakdown_cells(ledger: &mdmp_gpu_sim::CostLedger, total: f64) -> Vec<f64> {
    vec![
        ledger.seconds(KernelClass::Precalc),
        ledger.seconds(KernelClass::DistCalc),
        ledger.seconds(KernelClass::SortScan),
        ledger.seconds(KernelClass::UpdateProfile),
        total,
    ]
}

/// Fig. 5: execution time and parallel efficiency on the DGX-1 (1–8 V100)
/// with 16 tiles (n=2¹⁶, d=2⁸), for all five precision modes.
pub fn fig5() -> Vec<ExperimentTable> {
    let n = 1 << 16;
    let d = 256;
    let m = 64;
    let tiles = 16;

    let mut header: Vec<String> = vec!["gpus".into()];
    for mode in PrecisionMode::PAPER_MODES {
        header.push(format!("t_{mode}_s"));
    }
    header.push("efficiency_FP64".into());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut scaling = ExperimentTable::new(
        "fig5_dgx1_scaling",
        "Fig. 5: execution time on 1-8 V100 GPUs, 16 tiles (n=2^16, d=2^8) and FP64 parallel efficiency",
        &header_refs,
    );

    let mut t1_fp64 = 0.0;
    for gpus in 1..=8usize {
        let mut cells = Vec::new();
        let mut eff = 0.0;
        for mode in PrecisionMode::PAPER_MODES {
            let t = estimate_seconds(DeviceSpec::v100(), gpus, n, d, m, mode, tiles);
            if mode == PrecisionMode::Fp64 {
                if gpus == 1 {
                    t1_fp64 = t;
                }
                eff = t1_fp64 / (gpus as f64 * t);
            }
            cells.push(t);
        }
        cells.push(eff);
        scaling.push(format!("{gpus}"), cells);
    }

    // Kernel breakdown per mode on one V100 (the left bar stack of Fig. 5).
    let mut breakdown = ExperimentTable::new(
        "fig5_kernel_breakdown",
        "Fig. 5 inset: kernel breakdown per precision mode on one V100 (n=2^16, d=2^8, 16 tiles)",
        &[
            "mode",
            "precalc_s",
            "dist_calc_s",
            "sort_scan_s",
            "update_s",
            "total_s",
        ],
    );
    for mode in PrecisionMode::PAPER_MODES {
        let mut sys = GpuSystem::homogeneous(DeviceSpec::v100(), 1);
        let cfg = MdmpConfig::new(m, mode).with_tiles(tiles);
        let est = estimate_run(n, n, d, &cfg, &mut sys).unwrap();
        breakdown.push(
            mode.label(),
            breakdown_cells(&est.ledger, est.modeled_seconds),
        );
    }
    vec![scaling, breakdown]
}

/// Fig. 6: FP64 execution time across the 16-core CPU, V100 and A100,
/// sweeping n, d, and m.
pub fn fig6() -> Vec<ExperimentTable> {
    let machines: [(&str, DeviceSpec); 3] = [
        ("CPU", DeviceSpec::skylake_16c()),
        ("V100", DeviceSpec::v100()),
        ("A100", DeviceSpec::a100()),
    ];
    let header = ["point", "CPU_s", "V100_s", "A100_s"];

    let mut by_n = ExperimentTable::new(
        "fig6_machines_vs_n",
        "Fig. 6 left: FP64 time vs n (d=2^6, m=2^6) on CPU / V100 / A100",
        &header,
    );
    for n_pow in 12..=16u32 {
        let n = 1usize << n_pow;
        let cells: Vec<f64> = machines
            .iter()
            .map(|(_, spec)| estimate_seconds(spec.clone(), 1, n, 64, 64, PrecisionMode::Fp64, 1))
            .collect();
        by_n.push(format!("n=2^{n_pow}"), cells);
    }

    let mut by_d = ExperimentTable::new(
        "fig6_machines_vs_d",
        "Fig. 6 middle: FP64 time vs d (n=2^16, m=2^6)",
        &header,
    );
    for d_pow in 3..=6u32 {
        let d = 1usize << d_pow;
        let cells: Vec<f64> = machines
            .iter()
            .map(|(_, spec)| {
                estimate_seconds(spec.clone(), 1, 1 << 16, d, 64, PrecisionMode::Fp64, 1)
            })
            .collect();
        by_d.push(format!("d=2^{d_pow}"), cells);
    }

    let mut by_m = ExperimentTable::new(
        "fig6_machines_vs_m",
        "Fig. 6 right: FP64 time vs m (n=2^16, d=2^6) — flat, m-independent",
        &header,
    );
    for m_pow in 3..=6u32 {
        let m = 1usize << m_pow;
        let cells: Vec<f64> = machines
            .iter()
            .map(|(_, spec)| {
                estimate_seconds(spec.clone(), 1, 1 << 16, 64, m, PrecisionMode::Fp64, 1)
            })
            .collect();
        by_m.push(format!("m=2^{m_pow}"), cells);
    }
    vec![by_n, by_d, by_m]
}

/// The headline numbers of §I: speedups at (n=2¹⁶, d=2⁶, m=2⁶).
pub fn headline() -> ExperimentTable {
    let n = 1 << 16;
    let (d, m) = (64, 64);
    let t_cpu = estimate_seconds(
        DeviceSpec::skylake_16c(),
        1,
        n,
        d,
        m,
        PrecisionMode::Fp64,
        1,
    );
    let t_v100 = estimate_seconds(DeviceSpec::v100(), 1, n, d, m, PrecisionMode::Fp64, 1);
    let t_a100 = estimate_seconds(DeviceSpec::a100(), 1, n, d, m, PrecisionMode::Fp64, 1);
    let t_a100_16 = estimate_seconds(DeviceSpec::a100(), 1, n, d, m, PrecisionMode::Fp16, 1);
    let t1 = estimate_seconds(DeviceSpec::a100(), 1, n, d, m, PrecisionMode::Fp64, 16);
    let t4 = estimate_seconds(DeviceSpec::a100(), 4, n, d, m, PrecisionMode::Fp64, 16);

    let mut t = ExperimentTable::new(
        "headline_speedups",
        "Headline results (n=2^16, d=2^6, m=2^6): paper reports 54x (A100/CPU), 41.6x (V100/CPU), 1.4x (FP16/FP64 on A100), 3.8x (4 A100s, 16 tiles)",
        &["quantity", "modeled", "paper"],
    );
    t.push("A100_vs_CPU_FP64", vec![t_cpu / t_a100, 54.0]);
    t.push("V100_vs_CPU_FP64", vec![t_cpu / t_v100, 41.6]);
    t.push("FP16_vs_FP64_A100", vec![t_a100 / t_a100_16, 1.4]);
    t.push("4xA100_speedup", vec![t1 / t4, 3.8]);
    t.push("4xA100_efficiency", vec![t1 / (4.0 * t4), 0.95]);
    t
}

/// §V-C "Resource Utilization": Nsight-Compute-style achieved-throughput
/// report per kernel per mode on one A100 at (n=2¹⁶, d=2⁶, m=2⁶).
pub fn utilization() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "utilization",
        "V-C resource utilization on A100 (n=2^16, d=2^6): achieved DRAM %% of peak and SM op-rate %% per kernel; paper: dist/update >80%% DRAM in FP64, ~60%% FP32, ~30%% FP16; sort ~70%% compute",
        &["kernel_mode", "time_s", "dram_pct", "sm_pct"],
    );
    for mode in [
        PrecisionMode::Fp64,
        PrecisionMode::Fp32,
        PrecisionMode::Fp16,
    ] {
        let spec = DeviceSpec::a100();
        let mut sys = GpuSystem::homogeneous(spec.clone(), 1);
        let cfg = MdmpConfig::new(64, mode);
        let est = estimate_run(1 << 16, 1 << 16, 64, &cfg, &mut sys).unwrap();
        let report = UtilizationReport::from_ledger(&spec, &est.ledger);
        for class in [
            KernelClass::DistCalc,
            KernelClass::SortScan,
            KernelClass::UpdateProfile,
        ] {
            if let Some(row) = report.class(class) {
                table.push(
                    format!("{}_{}", class.label(), mode.label()),
                    vec![
                        row.seconds,
                        row.dram_fraction * 100.0,
                        row.sm_fraction * 100.0,
                    ],
                );
            }
        }
    }
    table
}

//! PR 8: concurrent streaming-session benchmark (`BENCH_PR8.json`).
//!
//! Two phases:
//!
//! 1. **Multiplex** — a [`SessionManager`] serving many concurrent
//!    streams (thousands in the full run) fed small appends from a worker
//!    thread pool; per-session locking means appends only serialize
//!    within a stream. Reports aggregate appends/sec and the measured
//!    cache-reuse ratio, which is deterministic: a query append of `new`
//!    segments reuses exactly `n_r` cached reference segments and
//!    computes only `new` fresh ones.
//!
//! 2. **Append cost** — one representative stream advanced through the
//!    same arrival sequence three ways: *incremental* (cached side
//!    statistics, the PR 8 engine), *scratch_delta* (per-append delta
//!    tile with inline precalculation over the whole series), and
//!    *full_recompute* (arrival-tiled batch rerun over the entire grown
//!    series per append — what a service without streaming support would
//!    do). All three must be **bit-identical**; the bench panics
//!    otherwise.
//!
//! The headline gate is **spec-derived**: a full recompute of append `i`
//! touches `n_r · n_q(i)` distance cells where the delta tile touches
//! only `n_r · new`, so the arrival plan itself predicts the
//! incremental-vs-full speedup. The measured wall-clock ratio must reach
//! [`GATE_FRACTION`] of that prediction (slack for the O(n·m) precalc
//! terms the cell count ignores). CI re-checks the same numbers from
//! `BENCH_PR8.json`.

use crate::report::{BenchReport, BenchValue, ExperimentTable};
use mdmp_core::{MatrixProfile, MdmpConfig, StreamingProfile};
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_data::MultiDimSeries;
use mdmp_precision::PrecisionMode;
use mdmp_service::{AppendSide, SessionManager};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Fraction of the cell-count-predicted incremental-vs-full speedup the
/// measured wall-clock ratio must reach. The cell count ignores the
/// per-append constant costs (profile merge, cache bookkeeping) which
/// dominate at the CI-friendly quick sizes, so the floor leaves real
/// headroom: quick runs measure ~6-8x against a ~25x prediction.
const GATE_FRACTION: f64 = 0.15;

/// Incremental appends must not regress against the scratch-delta path
/// (they compute strictly less per append; the floor leaves noise room
/// because at quick sizes both are a few ms and timer jitter is real).
const SCRATCH_FLOOR: f64 = 0.5;

/// Aggregate multiplex throughput floor (appends/sec) — deliberately
/// conservative so loaded CI machines pass with an order of magnitude to
/// spare.
const APPENDS_PER_SEC_FLOOR: f64 = 25.0;

const M: usize = 16;
const APPEND_SAMPLES: usize = 8;

struct Workload {
    sessions: usize,
    threads: usize,
    rounds: usize,
    /// Initial samples per session series.
    initial: usize,
    /// Appends in the single-stream cost phase.
    cost_appends: usize,
}

fn workload(quick: bool) -> Workload {
    if quick {
        Workload {
            sessions: 64,
            threads: 8,
            rounds: 4,
            initial: 160,
            cost_appends: 12,
        }
    } else {
        Workload {
            sessions: 2000,
            threads: 16,
            rounds: 6,
            initial: 256,
            cost_appends: 24,
        }
    }
}

/// A 1-dim pair whose query is `initial + tail` samples long; sessions
/// start on the first `initial` samples and stream the rest in.
fn stream_pair(seed: u64, initial: usize, tail: usize) -> (MultiDimSeries, MultiDimSeries) {
    let pair = generate_pair(&SyntheticConfig {
        n_subsequences: initial + tail - M + 1,
        dims: 1,
        m: M,
        pattern: Pattern::Sine,
        embeddings: 1,
        noise: 0.3,
        pattern_amplitude: 1.0,
        seed,
    });
    (pair.reference.window(0, initial), pair.query)
}

fn chunk(series: &MultiDimSeries, start: usize, len: usize) -> Vec<Vec<f64>> {
    (0..series.dims())
        .map(|k| series.dim(k)[start..start + len].to_vec())
        .collect()
}

/// Phase 1: many sessions, a worker pool, small in-order appends per
/// stream. Returns (wall seconds, appends applied, reused segments,
/// fresh segments).
fn multiplex(w: &Workload) -> (f64, u64, u64, u64) {
    let mgr = SessionManager::new();
    let cfg = MdmpConfig::new(M, PrecisionMode::Fp64);
    let tail = w.rounds * APPEND_SAMPLES;
    let mut ids = Vec::with_capacity(w.sessions);
    let mut tails = Vec::with_capacity(w.sessions);
    for s in 0..w.sessions {
        let (r, q) = stream_pair(7000 + s as u64, w.initial, tail);
        let summary = mgr
            .open(r, q.window(0, w.initial), cfg.clone())
            .expect("open session");
        ids.push(summary.id);
        tails.push(q);
    }
    let applied = AtomicU64::new(0);
    let reused = AtomicU64::new(0);
    let fresh = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..w.threads {
            let (mgr, ids, tails) = (&mgr, &ids, &tails);
            let (applied, reused, fresh) = (&applied, &reused, &fresh);
            let (threads, rounds, initial) = (w.threads, w.rounds, w.initial);
            scope.spawn(move || {
                // Thread t owns every t-th session: each stream's appends
                // arrive in order while distinct streams run in parallel
                // (the per-session locks are what make that possible).
                for s in (t..ids.len()).step_by(threads) {
                    for round in 0..rounds {
                        let at = initial + round * APPEND_SAMPLES;
                        let report = mgr
                            .append(
                                ids[s],
                                AppendSide::Query,
                                &chunk(&tails[s], at, APPEND_SAMPLES),
                            )
                            .expect("append");
                        assert!(report.reused_precalc, "append must hit the side cache");
                        // relaxed-ok: pure tally counters, only read after
                        // the scope joins every worker thread.
                        applied.fetch_add(1, Ordering::Relaxed);
                        // relaxed-ok: tally, read after join.
                        reused.fetch_add(report.reused_segments, Ordering::Relaxed);
                        // relaxed-ok: tally, read after join.
                        fresh.fetch_add(report.fresh_segments, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let wall = started.elapsed().as_secs_f64();
    // relaxed-ok: all writers joined at scope exit above.
    (
        wall,
        applied.load(Ordering::Relaxed), // relaxed-ok: writers joined
        reused.load(Ordering::Relaxed),  // relaxed-ok: writers joined
        fresh.load(Ordering::Relaxed),   // relaxed-ok: writers joined
    )
}

/// Phase 2 engine variants.
#[derive(Clone, Copy)]
enum Variant {
    Incremental,
    ScratchDelta,
    FullRecompute,
}

impl Variant {
    fn label(self) -> &'static str {
        match self {
            Variant::Incremental => "incremental",
            Variant::ScratchDelta => "scratch_delta",
            Variant::FullRecompute => "full_recompute",
        }
    }
}

/// Advance one representative stream through `cost_appends` appends under
/// a variant; returns (total append seconds, final profile).
fn append_cost(w: &Workload, variant: Variant) -> (f64, MatrixProfile) {
    let tail = w.cost_appends * APPEND_SAMPLES;
    let (r, q) = stream_pair(42, w.initial, tail);
    let cfg = MdmpConfig::new(M, PrecisionMode::Fp64);
    let head = q.window(0, w.initial);
    let mut sp = match variant {
        Variant::Incremental => StreamingProfile::new(r.clone(), head, cfg.clone()),
        _ => StreamingProfile::new_scratch(r.clone(), head, cfg.clone()),
    }
    .expect("open stream");
    let mut seconds = 0.0;
    for i in 0..w.cost_appends {
        let at = w.initial + i * APPEND_SAMPLES;
        let started = Instant::now();
        match variant {
            Variant::FullRecompute => {
                // No streaming support: replay the whole arrival tiling
                // over the grown series from scratch. (Arrival tiling —
                // rather than one fused batch — keeps the result
                // bit-comparable with the streamed runs.)
                let mut batch =
                    StreamingProfile::new_scratch(r.clone(), q.window(0, w.initial), cfg.clone())
                        .expect("batch head");
                let mut j = w.initial;
                while j < at + APPEND_SAMPLES {
                    batch
                        .append_query(&chunk(&q, j, APPEND_SAMPLES))
                        .expect("batch append");
                    j += APPEND_SAMPLES;
                }
                sp = batch;
            }
            _ => {
                sp.append_query(&chunk(&q, at, APPEND_SAMPLES))
                    .expect("append");
            }
        }
        seconds += started.elapsed().as_secs_f64();
    }
    (seconds, sp.profile().clone())
}

/// Cell-count model of the incremental-vs-full speedup for the phase-2
/// arrival plan: full recompute of append `i` executes every tile up to
/// arrival `i` (`n_r · n_q(i)` cells), the delta append only the new tile
/// (`n_r · new`).
fn predicted_full_speedup(w: &Workload) -> f64 {
    let n_r = (w.initial - M + 1) as f64;
    let new = APPEND_SAMPLES as f64;
    let (mut full_cells, mut delta_cells) = (0.0, 0.0);
    for i in 0..w.cost_appends {
        let n_q = (w.initial + (i + 1) * APPEND_SAMPLES - M + 1) as f64;
        full_cells += n_r * n_q;
        delta_cells += n_r * new;
    }
    full_cells / delta_cells
}

fn assert_bit_identical(a: &MatrixProfile, b: &MatrixProfile, what: &str) {
    assert_eq!(a.n_query(), b.n_query(), "{what}: shape");
    for k in 0..a.dims() {
        for j in 0..a.n_query() {
            assert_eq!(
                a.value(j, k).to_bits(),
                b.value(j, k).to_bits(),
                "{what}: bits differ at dim {k} column {j}"
            );
            assert_eq!(a.index(j, k), b.index(j, k), "{what}: index at {k} {j}");
        }
    }
}

/// Bench results carried into the JSON artifact alongside the table.
pub struct MultiplexOutcome {
    /// The printable table (one row per engine variant).
    pub table: ExperimentTable,
    /// Phase-1 aggregate appends/sec across all sessions and threads.
    pub appends_per_sec: f64,
    /// Phase-1 reuse ratio: reused / (reused + fresh) segments.
    pub reuse_ratio: f64,
    /// Sessions driven concurrently.
    pub sessions: usize,
    /// Worker threads in the multiplex phase.
    pub threads: usize,
    /// Measured incremental-vs-full-recompute wall speedup.
    pub speedup_vs_full: f64,
    /// Measured incremental-vs-scratch-delta wall speedup.
    pub speedup_vs_scratch: f64,
    /// Cell-count-predicted incremental-vs-full speedup.
    pub predicted_speedup: f64,
}

/// The `session_multiplex` experiment (see module docs); asserts the
/// bit-identity and performance gates before returning.
pub fn session_multiplex(quick: bool) -> MultiplexOutcome {
    let w = workload(quick);

    let (wall, applied, reused, fresh) = multiplex(&w);
    let appends_per_sec = applied as f64 / wall.max(1e-9);
    let reuse_ratio = reused as f64 / (reused + fresh).max(1) as f64;
    // Deterministic accounting: every query append reuses the n_r cached
    // reference segments and computes APPEND_SAMPLES fresh ones.
    let n_r = (w.initial - M + 1) as f64;
    let expected_reuse = n_r / (n_r + APPEND_SAMPLES as f64);
    assert!(
        (reuse_ratio - expected_reuse).abs() < 1e-9,
        "reuse ratio {reuse_ratio} disagrees with the deterministic {expected_reuse}"
    );
    assert!(
        appends_per_sec >= APPENDS_PER_SEC_FLOOR,
        "multiplex throughput {appends_per_sec:.1} appends/sec under the \
         {APPENDS_PER_SEC_FLOOR} floor"
    );

    let (inc_s, inc_p) = append_cost(&w, Variant::Incremental);
    let (scr_s, scr_p) = append_cost(&w, Variant::ScratchDelta);
    let (full_s, full_p) = append_cost(&w, Variant::FullRecompute);
    assert_bit_identical(&inc_p, &scr_p, "incremental vs scratch-delta");
    assert_bit_identical(&inc_p, &full_p, "incremental vs full-recompute");

    let speedup_vs_full = full_s / inc_s.max(1e-12);
    let speedup_vs_scratch = scr_s / inc_s.max(1e-12);
    let predicted = predicted_full_speedup(&w);
    assert!(
        speedup_vs_full >= GATE_FRACTION * predicted,
        "incremental appends only {speedup_vs_full:.1}x over full recompute; the arrival \
         plan predicts {predicted:.1}x and the gate floor is {:.1}x",
        GATE_FRACTION * predicted
    );
    assert!(
        speedup_vs_scratch >= SCRATCH_FLOOR,
        "incremental appends regressed to {speedup_vs_scratch:.2}x of the scratch-delta path"
    );

    let mut table = ExperimentTable::new(
        "session_multiplex",
        &format!(
            "streaming appends: {} sessions x {} appends on {} threads, then one stream's \
             append cost per engine variant (bit-identical outputs enforced)",
            w.sessions, w.rounds, w.threads
        ),
        &["variant", "append_s", "speedup_vs_full", "reuse_pct"],
    );
    table.push(
        Variant::Incremental.label(),
        vec![inc_s, speedup_vs_full, 100.0 * expected_reuse],
    );
    table.push(
        Variant::ScratchDelta.label(),
        vec![scr_s, full_s / scr_s.max(1e-12), 0.0],
    );
    table.push(Variant::FullRecompute.label(), vec![full_s, 1.0, 0.0]);

    MultiplexOutcome {
        table,
        appends_per_sec,
        reuse_ratio,
        sessions: w.sessions,
        threads: w.threads,
        speedup_vs_full,
        speedup_vs_scratch,
        predicted_speedup: predicted,
    }
}

/// Serialize the outcome as `BENCH_PR8.json`, embedding the gate block
/// the CI python check re-validates.
pub fn write_bench_json(outcome: &MultiplexOutcome, path: &Path) -> io::Result<PathBuf> {
    let mut report = BenchReport::new("session_multiplex", &outcome.table.description)
        .workload("sessions", BenchValue::int(outcome.sessions as u64))
        .workload("threads", BenchValue::int(outcome.threads as u64))
        .workload("m", BenchValue::int(M as u64))
        .workload("append_samples", BenchValue::int(APPEND_SAMPLES as u64))
        .extra_block(
            "gates",
            vec![
                (
                    "speedup_vs_full".to_string(),
                    BenchValue::ratio(outcome.speedup_vs_full),
                ),
                (
                    "predicted_speedup".to_string(),
                    BenchValue::ratio(outcome.predicted_speedup),
                ),
                (
                    "gate_fraction".to_string(),
                    BenchValue::ratio(GATE_FRACTION),
                ),
                (
                    "speedup_vs_scratch".to_string(),
                    BenchValue::ratio(outcome.speedup_vs_scratch),
                ),
                (
                    "scratch_floor".to_string(),
                    BenchValue::ratio(SCRATCH_FLOOR),
                ),
                (
                    "appends_per_sec".to_string(),
                    BenchValue::ratio(outcome.appends_per_sec),
                ),
                (
                    "appends_per_sec_floor".to_string(),
                    BenchValue::ratio(APPENDS_PER_SEC_FLOOR),
                ),
                (
                    "reuse_ratio".to_string(),
                    BenchValue::ratio(outcome.reuse_ratio),
                ),
            ],
        );
    for (label, cells) in &outcome.table.rows {
        report.push_result(vec![
            ("variant".to_string(), BenchValue::str(label.as_str())),
            ("append_seconds".to_string(), BenchValue::secs(cells[0])),
            ("speedup_vs_full".to_string(), BenchValue::ratio(cells[1])),
            ("reuse_pct".to_string(), BenchValue::ratio(cells[2])),
        ]);
    }
    report.write(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A micro-size run exercises the whole experiment: both phases, the
    /// deterministic reuse accounting, and the three-way bit-identity.
    #[test]
    fn micro_session_multiplex_passes_its_own_gates() {
        let w = Workload {
            sessions: 6,
            threads: 3,
            rounds: 2,
            initial: 48,
            cost_appends: 3,
        };
        let (wall, applied, reused, fresh) = multiplex(&w);
        assert!(wall > 0.0);
        assert_eq!(applied, 12);
        let n_r = (w.initial - M + 1) as u64;
        assert_eq!(reused, applied * n_r);
        assert_eq!(fresh, applied * APPEND_SAMPLES as u64);

        let (_, inc_p) = append_cost(&w, Variant::Incremental);
        let (_, scr_p) = append_cost(&w, Variant::ScratchDelta);
        let (_, full_p) = append_cost(&w, Variant::FullRecompute);
        assert_bit_identical(&inc_p, &scr_p, "incremental vs scratch");
        assert_bit_identical(&inc_p, &full_p, "incremental vs full");
        assert!(predicted_full_speedup(&w) > 1.0);
    }
}

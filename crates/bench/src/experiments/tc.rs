//! PR 7: simulated tensor-core GEMM benchmark (`BENCH_PR7.json`).
//!
//! The 16-tile acceptance workload runs once per tensor-core mode
//! (FP16-TC / BF16-TC / TF32-TC) and once in FP64 with the classic
//! unfused three-kernel pipeline. For each mode the table reports the
//! modelled `dist_calc` ledger seconds, the speedup over the FP64
//! pipeline, functional recall against the mSTAMP CPU reference, and the
//! MMA accumulator chunk width the run used.
//!
//! The headline number is **gated against the device spec**: the measured
//! FP16-TC/FP64 dist_calc ratio must reach at least 95% of the ratio the
//! A100 [`TimingModel`] predicts for the very same cost descriptors
//! ([`gemm_cost`] vs the per-row [`dist_cost`]). If the GEMM path ever
//! stops being charged to the tensor cores — a regression in the cost
//! plumbing rather than in the kernels — the bench panics instead of
//! silently reporting vector-mode numbers.

use crate::report::{BenchReport, BenchValue, ExperimentTable};
use mdmp_core::baseline::mstamp;
use mdmp_core::kernels::{dist_cost, gemm_cost};
use mdmp_core::{compute_tile_list, run_with_mode, MdmpConfig, MdmpRun};
use mdmp_data::synthetic::{generate_pair, SyntheticConfig};
use mdmp_data::MultiDimSeries;
use mdmp_gpu_sim::{DeviceSpec, GpuSystem, KernelClass, TimingModel};
use mdmp_metrics::recall_rate;
use mdmp_precision::{Format, PrecisionMode};
use std::io;
use std::path::{Path, PathBuf};

/// The acceptance workload's tile count (matches the driver-scaling bench
/// and the ISSUE 7 acceptance criterion).
const TILES: usize = 16;

/// Fraction of the spec-derived FP16-TC/FP64 ratio the measured ledger
/// ratio must reach (slack for tile-remainder rounding).
const GATE_FRACTION: f64 = 0.95;

fn segment_len(quick: bool) -> usize {
    let _ = quick;
    32
}

fn workload(quick: bool) -> (MultiDimSeries, MultiDimSeries) {
    let cfg = SyntheticConfig {
        n_subsequences: if quick { 256 } else { 1024 },
        dims: if quick { 4 } else { 8 },
        m: segment_len(quick),
        pattern: mdmp_data::Pattern::Sine,
        embeddings: if quick { 2 } else { 4 },
        noise: 0.3,
        pattern_amplitude: 1.0,
        seed: 2022,
    };
    let pair = generate_pair(&cfg);
    (pair.reference, pair.query)
}

fn run_mode(r: &MultiDimSeries, q: &MultiDimSeries, quick: bool, mode: PrecisionMode) -> MdmpRun {
    // FP64 runs the unfused three-kernel pipeline so its ledger carries a
    // `dist_calc` row to compare against (the fused pass books the whole
    // row as `fused_row`); the TC modes ignore the flag and always GEMM.
    let cfg = MdmpConfig::new(segment_len(quick), mode)
        .with_tiles(TILES)
        .with_fused_rows(Some(false));
    let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
    run_with_mode(r, q, &cfg, &mut sys).expect("tc bench run failed")
}

/// The FP16-TC/FP64 `dist_calc` ratio the A100 spec predicts for this
/// workload: both cost descriptors pushed through the [`TimingModel`] with
/// the driver's launch-overlap discount applied, summed over the actual
/// tile list. This is the model-side twin of the measured ledger ratio.
pub fn spec_ratio(n_r: usize, n_q: usize, d: usize, chunk_k: usize) -> f64 {
    let model = TimingModel::new(DeviceSpec::a100());
    let tiles = compute_tile_list(n_r, n_q, TILES).expect("acceptance tiling");
    // All 16 tiles sit on one device: full stream pipelining, so the
    // driver divides per-launch overhead by the overlap cap. Mirror it.
    let overlap = mdmp_core::driver::OVERHEAD_OVERLAP_CAP;
    let (mut t64, mut ttc) = (0.0, 0.0);
    for t in &tiles {
        let mut c64 = dist_cost(t.cols, d, Format::Fp64).repeated(t.rows as u64);
        c64.launches /= overlap;
        t64 += model.kernel_seconds(&c64);
        let mut ctc = gemm_cost(t.rows, t.cols, d, chunk_k, Format::Fp16);
        ctc.launches /= overlap;
        ttc += model.kernel_seconds(&ctc);
    }
    t64 / ttc
}

/// The `tc` experiment: modelled dist_calc time, FP64 speedup, recall and
/// chunk width per tensor-core mode, gated against the spec-derived ratio.
pub fn tc_sweep(quick: bool) -> ExperimentTable {
    let (r, q) = workload(quick);
    let m = segment_len(quick);
    let d = r.dims();
    let reference = mstamp(&r, &q, m, None, None);

    let mut table = ExperimentTable::new(
        "tc_modes",
        &format!(
            "simulated tensor-core GEMM vs FP64 pipeline: modelled dist_calc seconds, \
             speedup, recall vs mSTAMP and MMA chunk width ({TILES}-tile workload, 1x A100)"
        ),
        &["mode", "dist_s", "speedup_vs_fp64", "recall", "chunk_k"],
    );

    let base = run_mode(&r, &q, quick, PrecisionMode::Fp64);
    let dist64 = base.ledger.seconds(KernelClass::DistCalc);
    assert!(dist64 > 0.0, "FP64 baseline booked no dist_calc time");
    table.push(
        PrecisionMode::Fp64.to_string(),
        vec![
            dist64,
            1.0,
            recall_rate(&reference, &base.profile) * 100.0,
            0.0,
        ],
    );

    for mode in PrecisionMode::TC_MODES {
        let run = run_mode(&r, &q, quick, mode);
        let dist_s = run.ledger.seconds(KernelClass::DistCalc);
        let chunk_k = run
            .tc_chunk_k
            .unwrap_or_else(|| panic!("{mode} run reported no chunk width"));
        let speedup = dist64 / dist_s;
        if mode == PrecisionMode::Fp16Tc {
            let spec = spec_ratio(r.n_segments(m), q.n_segments(m), d, chunk_k);
            assert!(
                speedup >= GATE_FRACTION * spec,
                "FP16-TC dist_calc speedup {speedup:.2}x fell below {GATE_FRACTION} of \
                 the spec-derived {spec:.2}x — GEMM is no longer charged to the tensor cores"
            );
        }
        table.push(
            mode.to_string(),
            vec![
                dist_s,
                speedup,
                recall_rate(&reference, &run.profile) * 100.0,
                chunk_k as f64,
            ],
        );
    }
    table
}

/// Serialize the TC table as `BENCH_PR7.json` through the shared
/// [`BenchReport`] schema, embedding the A100 tensor-core spec constants
/// and the spec-derived ratio the gate compared against.
pub fn write_bench_json(table: &ExperimentTable, quick: bool, path: &Path) -> io::Result<PathBuf> {
    let spec = DeviceSpec::a100();
    let tc = spec.tc.as_ref().expect("A100 models tensor cores");
    let (n, d) = if quick { (256, 4) } else { (1024, 8) };
    let chunk_k = table
        .cell("FP16-TC", "chunk_k")
        .expect("FP16-TC row present") as usize;
    let report = BenchReport::new("tc_modes", &table.description)
        .extra_block(
            "device_spec",
            vec![
                ("device".to_string(), BenchValue::str(spec.name)),
                (
                    "tc_fp16_flops".to_string(),
                    BenchValue::Num {
                        value: tc.fp16_flops,
                        decimals: 0,
                    },
                ),
                (
                    "tc_tf32_flops".to_string(),
                    BenchValue::Num {
                        value: tc.tf32_flops.unwrap_or(0.0),
                        decimals: 0,
                    },
                ),
                (
                    "frag_bandwidth".to_string(),
                    BenchValue::Num {
                        value: tc.frag_bandwidth,
                        decimals: 0,
                    },
                ),
                (
                    "spec_ratio_fp16tc_vs_fp64".to_string(),
                    BenchValue::ratio(spec_ratio(n, n, d, chunk_k)),
                ),
                (
                    "gate_fraction".to_string(),
                    BenchValue::ratio(GATE_FRACTION),
                ),
            ],
        )
        .workload("tiles", BenchValue::int(TILES as u64))
        .workload("n_subsequences", BenchValue::int(n as u64))
        .workload("dims", BenchValue::int(d as u64))
        .workload("m", BenchValue::int(segment_len(quick) as u64))
        .workload("devices", BenchValue::int(1));
    let mut report = report;
    for (label, cells) in &table.rows {
        report.push_result(vec![
            ("mode".to_string(), BenchValue::str(label)),
            ("dist_seconds".to_string(), BenchValue::secs(cells[0])),
            ("speedup_vs_fp64".to_string(), BenchValue::ratio(cells[1])),
            ("recall_pct".to_string(), BenchValue::ratio(cells[2])),
            ("chunk_k".to_string(), BenchValue::int(cells[3] as u64)),
        ]);
    }
    report.write(path)
}

//! Fig. 2 (numerical accuracy of the single-tile implementation vs the
//! CPU-based reference, sweeping n, d and m) and Fig. 3 (practical recall
//! per injected pattern P0–P7).
//!
//! These are **functional** experiments: every arithmetic operation runs in
//! the selected precision. Problem sizes are scaled down from the paper's
//! (documented per table in EXPERIMENTS.md); the trends — which mode
//! degrades, in which direction a sweep moves accuracy — are the
//! reproduction target.

use super::run_profile;
use crate::report::ExperimentTable;
use mdmp_core::baseline::mstamp;
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_metrics::{embedded_recall, recall_rate, relative_accuracy};
use mdmp_precision::PrecisionMode;

fn synthetic_cfg(n: usize, d: usize, m: usize, pattern: Pattern, seed: u64) -> SyntheticConfig {
    SyntheticConfig {
        n_subsequences: n,
        dims: d,
        m,
        pattern,
        embeddings: 4,
        noise: 0.3,
        pattern_amplitude: 1.0,
        seed,
    }
}

/// The modes the Fig. 2 sweeps cover: the paper's five plus the three
/// simulated tensor-core GEMM modes (PR 7 extension — the paper's Fig. 2
/// with three extra columns per sweep).
fn swept_modes() -> impl Iterator<Item = PrecisionMode> {
    PrecisionMode::PAPER_MODES
        .into_iter()
        .chain(PrecisionMode::TC_MODES)
}

/// One Fig. 2 sweep: for each parameter value, run all swept modes against
/// the mSTAMP CPU reference and report relative accuracy `A` and recall `R`.
fn sweep(
    name: &str,
    description: &str,
    points: &[(String, usize, usize, usize)], // (label, n, d, m)
) -> ExperimentTable {
    let mut header: Vec<String> = vec!["point".into()];
    for mode in swept_modes() {
        header.push(format!("A_{mode}"));
        header.push(format!("R_{mode}"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = ExperimentTable::new(name, description, &header_refs);

    for (label, n, d, m) in points {
        let cfg = synthetic_cfg(*n, *d, *m, Pattern::Sine, 42 + *n as u64);
        let pair = generate_pair(&cfg);
        let reference = mstamp(&pair.reference, &pair.query, *m, None, None);
        let mut cells = Vec::new();
        for mode in swept_modes() {
            let profile = run_profile(&pair.reference, &pair.query, *m, mode, 1);
            cells.push(relative_accuracy(&reference, &profile) * 100.0);
            cells.push(recall_rate(&reference, &profile) * 100.0);
        }
        table.push(label.clone(), cells);
    }
    table
}

/// Fig. 2: numerical accuracy (A, R in %) of the single-tile implementation
/// vs the CPU-based reference, sweeping the number of subsequences `n`, the
/// dimensionality `d` and the segment length `m`.
pub fn fig2(quick: bool) -> Vec<ExperimentTable> {
    let (n_vals, d_vals, m_vals, base_n, base_d, base_m): (
        Vec<usize>,
        Vec<usize>,
        Vec<usize>,
        usize,
        usize,
        usize,
    ) = if quick {
        (
            vec![256, 512, 1024],
            vec![4, 8, 16],
            vec![8, 16, 32],
            512,
            8,
            16,
        )
    } else {
        // Sized for a single-core functional run (software FP16); the
        // paper-scale n=2^16 error behaviour is covered analytically by
        // mdmp_precision::analysis (EXPERIMENTS.md, deviation 1).
        (
            vec![512, 1024, 2048, 4096],
            vec![8, 16, 32, 64],
            vec![8, 16, 32, 64],
            1024,
            16,
            16,
        )
    };

    let n_points: Vec<(String, usize, usize, usize)> = n_vals
        .iter()
        .map(|&n| (format!("n={n}"), n, base_d, base_m))
        .collect();
    let d_points: Vec<(String, usize, usize, usize)> = d_vals
        .iter()
        .map(|&d| (format!("d={d}"), base_n, d, base_m))
        .collect();
    let m_points: Vec<(String, usize, usize, usize)> = m_vals
        .iter()
        .map(|&m| (format!("m={m}"), base_n, base_d, m))
        .collect();

    vec![
        sweep(
            "fig2_n_sweep",
            &format!("Fig. 2 rows 1: accuracy vs number of subsequences (d={base_d}, m={base_m}; paper: d=2^6, m=2^6, n up to 2^16)"),
            &n_points,
        ),
        sweep(
            "fig2_d_sweep",
            &format!("Fig. 2 rows 2: accuracy vs dimensionality (n={base_n}, m={base_m}; paper: n=2^16, m=2^6)"),
            &d_points,
        ),
        sweep(
            "fig2_m_sweep",
            &format!("Fig. 2 rows 3: accuracy vs segment length (n={base_n}, d={base_d}; paper: n=2^16, d=2^6)"),
            &m_points,
        ),
    ]
}

/// Fig. 3: practical accuracy (R_embedded, %) of pattern detection for the
/// eight injected pattern shapes, per precision mode. Strict tolerance
/// (exact index match), as in the paper.
pub fn fig3(quick: bool) -> ExperimentTable {
    let (n, d, m) = if quick { (512, 4, 32) } else { (1024, 4, 64) };
    let repeats: u64 = if quick { 3 } else { 5 };
    let mut header: Vec<String> = vec!["pattern".into()];
    for mode in PrecisionMode::PAPER_MODES {
        header.push(format!("Remb_{mode}"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = ExperimentTable::new(
        "fig3_pattern_recall",
        &format!("Fig. 3: embedded-motif recall per pattern P0-P7 (n={n}, d={d}, m={m}, 4 embeddings, strict tolerance)"),
        &header_refs,
    );
    for pattern in Pattern::ALL {
        // Arithmetic average over repeated experiments, as in §V-A
        // ("we repeat each experiment five times and analyze the
        // arithmetic average").
        let mut cells = vec![0.0; PrecisionMode::PAPER_MODES.len()];
        for rep in 0..repeats {
            let mut cfg = synthetic_cfg(n, d, m, pattern, 7_000 + pattern as u64 + 131 * rep);
            // Low-complexity shapes (ramps) z-normalize close to smooth
            // noise trends; a slightly stronger embedding keeps the FP64
            // ground truth at ~100% recall as in the paper, so the table
            // isolates precision effects.
            cfg.pattern_amplitude = 1.4;
            let pair = generate_pair(&cfg);
            for (mi, mode) in PrecisionMode::PAPER_MODES.iter().enumerate() {
                let profile = run_profile(&pair.reference, &pair.query, m, *mode, 1);
                // Full-dimensional profile (k = d−1): the embedding spans
                // all dimensions, so the d-dimensional profile is the
                // detector.
                let (recall, _, _) =
                    embedded_recall(&profile, d - 1, &pair.query_locs, &pair.reference_locs, 0);
                cells[mi] += recall * 100.0 / repeats as f64;
            }
        }
        table.push(pattern.label(), cells);
    }
    table
}

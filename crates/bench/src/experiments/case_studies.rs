//! The three real-world case studies of §VI, run on the synthetic stand-in
//! datasets (substitutions documented in DESIGN.md):
//!
//! * Fig. 9 — application classification on HPC-ODA-like sensor data;
//! * Fig. 10 — genome mining (GIAB-like) accuracy/time vs tile count;
//! * Fig. 12 + Table I — turbine startup detection with relaxed recall.

use super::run_profile;
use crate::report::ExperimentTable;
use mdmp_core::baseline::mstamp;
use mdmp_core::{estimate_run, run_with_mode, MdmpConfig};
use mdmp_data::genome::{self, GenomeConfig};
use mdmp_data::hpcoda::{self, HpcOdaConfig};
use mdmp_data::turbine::{self, pair_kinds, table1_counts, PairClass, SeriesKind, TurbineConfig};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_metrics::{f_score, nn_classify, recall_rate, relaxed_tolerance};
use mdmp_precision::PrecisionMode;

/// Fig. 9: F-score and runtime of the nearest-neighbour application
/// classifier per precision mode.
pub fn fig9(quick: bool) -> ExperimentTable {
    let cfg = if quick {
        HpcOdaConfig {
            sensors: 16,
            phase_len: 64,
            phases: 16,
            noise: 0.08,
            seed: 0x0DA,
        }
    } else {
        HpcOdaConfig {
            sensors: 16,
            phase_len: 128,
            phases: 20,
            noise: 0.08,
            seed: 0x0DA,
        }
    };
    let m = if quick { 16 } else { 32 };
    let ds = hpcoda::generate(&cfg);
    let (reference, query) = ds.split_half();
    let d = reference.series.dims();
    let n_q = query.series.n_segments(m);

    // Ground truth per query segment. Segments straddling a phase boundary
    // mix two applications and have no single true class; the real HPC-ODA
    // phases are hours long so such segments are negligible there, but at
    // reproduction scale they would dominate the error — they are excluded
    // from scoring (documented in EXPERIMENTS.md).
    let pure: Vec<usize> = (0..n_q)
        .filter(|&j| {
            let first = query.labels[j];
            query.labels[j..j + m].iter().all(|&l| l == first)
        })
        .collect();
    let truth: Vec<_> = pure.iter().map(|&j| query.labels[j]).collect();

    let mut table = ExperimentTable::new(
        "fig9_hpcoda_classification",
        &format!("Fig. 9: NN-classifier F-score and runtime per mode (16 sensors, m={m}, n_q={n_q}; synthetic HPC-ODA stand-in)"),
        &["mode", "f_score", "accuracy", "modeled_runtime_s", "wall_s"],
    );
    for mode in PrecisionMode::PAPER_MODES {
        let run_cfg = MdmpConfig::new(m, mode);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        let run = run_with_mode(&reference.series, &query.series, &run_cfg, &mut sys)
            .expect("hpcoda run failed");
        let all_predicted = nn_classify(&run.profile, d - 1, &reference.labels);
        let predicted: Vec<_> = pure.iter().map(|&j| all_predicted[j]).collect();
        let report = mdmp_metrics::ClassificationReport::new(&predicted, &truth);
        table.push(
            mode.label(),
            vec![
                f_score(&predicted, &truth),
                report.accuracy(),
                run.modeled_seconds,
                run.wall_seconds,
            ],
        );
    }
    table
}

/// Fig. 10: numerical recall of the matrix-profile index and execution time
/// on the genome dataset when increasing the tile count.
pub fn fig10(quick: bool) -> Vec<ExperimentTable> {
    let len = if quick { 1024 + 127 } else { 2048 + 127 };
    let gcfg = GenomeConfig::default_case_study(len);
    let ds = genome::generate(&gcfg);
    let m = gcfg.gene_len; // 128, the paper's m = 2^7
                           // Self-similarity mining: reference = query (AB-join of the series with
                           // itself across channels; the paper pairs trio datasets).
    let reference = mstamp(&ds.series, &ds.series, m, None, None);
    let tile_counts: &[usize] = if quick { &[1, 4, 16] } else { &[1, 4, 16, 64] };

    let mut header: Vec<String> = vec!["tiles".into()];
    for mode in PrecisionMode::PAPER_MODES {
        header.push(format!("R_{mode}"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut acc = ExperimentTable::new(
        "fig10_genome_recall_vs_tiles",
        &format!("Fig. 10 left: recall of the matrix profile index vs tile count on the genome dataset (n={}, d={}, m={m}; paper: n=2^18, d=2^4, m=2^7)", ds.series.n_segments(m), ds.series.dims()),
        &header_refs,
    );
    for &tiles in tile_counts {
        let mut cells = Vec::new();
        for mode in PrecisionMode::PAPER_MODES {
            let profile = run_profile(&ds.series, &ds.series, m, mode, tiles);
            cells.push(recall_rate(&reference, &profile) * 100.0);
        }
        acc.push(format!("{tiles}"), cells);
    }

    // Modelled time at the paper's scale (n=2^18, d=2^4, m=2^7, A100).
    let mut time = ExperimentTable::new(
        "fig10_genome_time_vs_tiles",
        "Fig. 10 right: modeled execution time vs tile count at paper scale (A100, n=2^18, d=2^4, m=2^7)",
        &header_refs,
    );
    for &tiles in &[1usize, 4, 16, 64, 256, 1024] {
        let mut cells = Vec::new();
        for mode in PrecisionMode::PAPER_MODES {
            let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
            let cfg = MdmpConfig::new(128, mode).with_tiles(tiles);
            cells.push(
                estimate_run(1 << 18, 1 << 18, 16, &cfg, &mut sys)
                    .unwrap()
                    .modeled_seconds,
            );
        }
        time.push(format!("{tiles}"), cells);
    }
    vec![acc, time]
}

/// Table I: the pair-category counts of the turbine case study.
pub fn table1() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "table1_pair_categories",
        "Table I: number of input time series pairs per category (65 P1-, 65 P2-, 5 both-series per turbine)",
        &["category", "GT1", "GT2", "GT1-GT2"],
    );
    for (class, gt1, gt2, cross) in table1_counts() {
        table.push(class.label(), vec![gt1 as f64, gt2 as f64, cross as f64]);
    }
    table
}

/// Fig. 12: relaxed recall (r = 5%) of startup detection per pair category
/// and precision mode, for pairs within GT1 and across both turbines.
pub fn fig12(quick: bool) -> Vec<ExperimentTable> {
    let (n, m, pairs_per_class) = if quick {
        (1024, 128, 2)
    } else {
        (2048, 256, 3)
    };
    let tol = relaxed_tolerance(0.05, m);

    let mut out = Vec::new();
    for (table_name, description, turbines) in [
        (
            "fig12_gt1",
            "Fig. 12 left: relaxed recall (r=5%) per pair class, signals from turbine GT1",
            (1u8, 1u8),
        ),
        (
            "fig12_cross",
            "Fig. 12 right: relaxed recall (r=5%) per pair class, signals from both turbines",
            (1u8, 2u8),
        ),
    ] {
        let mut header: Vec<String> = vec!["class".into()];
        for mode in PrecisionMode::PAPER_MODES {
            header.push(format!("Rr_{mode}"));
        }
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = ExperimentTable::new(table_name, description, &header_refs);

        for class in PairClass::ALL {
            let (query_kind, ref_kind) = pair_kinds(class);
            let mut cells = vec![0.0; PrecisionMode::PAPER_MODES.len()];
            let mut totals = vec![0usize; PrecisionMode::PAPER_MODES.len()];
            for p in 0..pairs_per_class {
                let qcfg = TurbineConfig::default_case_study(
                    n,
                    m,
                    turbines.0,
                    9_000 + p as u64 * 17 + class as u64,
                );
                let rcfg = TurbineConfig::default_case_study(
                    n,
                    m,
                    turbines.1,
                    5_000 + p as u64 * 23 + class as u64,
                );
                let q = turbine::generate_series(query_kind, &qcfg);
                let r = turbine::generate_series(ref_kind, &rcfg);
                for (mi, mode) in PrecisionMode::PAPER_MODES.iter().enumerate() {
                    let profile = run_profile(&r.series, &q.series, m, *mode, 1);
                    // Detect each query startup whose kind also exists in
                    // the reference: the matched index must fall within the
                    // tolerance of a same-kind reference startup.
                    for &(kind, q_loc) in &q.events {
                        let ref_locs: Vec<usize> = r
                            .events
                            .iter()
                            .filter(|(rk, _)| *rk == kind)
                            .map(|&(_, loc)| loc)
                            .collect();
                        if ref_locs.is_empty() {
                            continue;
                        }
                        totals[mi] += 1;
                        let found = profile.index(q_loc, 0);
                        if found >= 0
                            && ref_locs
                                .iter()
                                .any(|&rl| (found as usize).abs_diff(rl) <= tol)
                        {
                            cells[mi] += 1.0;
                        }
                    }
                }
            }
            let recalls: Vec<f64> = cells
                .iter()
                .zip(&totals)
                .map(|(&hits, &total)| {
                    if total == 0 {
                        0.0
                    } else {
                        100.0 * hits / total as f64
                    }
                })
                .collect();
            table.push(class.label(), recalls);
        }
        out.push(table);
    }
    out
}

/// Convenience for `repro`: the kinds involved in a class, for display.
pub fn class_kinds(class: PairClass) -> (SeriesKind, SeriesKind) {
    pair_kinds(class)
}

//! End-to-end functional runs per precision mode and per tile count — the
//! wall-clock counterpart of Fig. 5/7. Software-emulated binary16 is
//! expected to be *slower* than f64 on the host; the modelled GPU times
//! (printed by `repro fig7`) carry the paper's performance story.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdmp_core::{run_with_mode, MdmpConfig};
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_precision::PrecisionMode;
use std::hint::black_box;

fn bench_modes(c: &mut Criterion) {
    let data_cfg = SyntheticConfig {
        n_subsequences: 512,
        dims: 8,
        m: 16,
        pattern: Pattern::Sine,
        embeddings: 2,
        noise: 0.3,
        pattern_amplitude: 1.0,
        seed: 3,
    };
    let pair = generate_pair(&data_cfg);
    let mut group = c.benchmark_group("full_run_modes");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for mode in PrecisionMode::PAPER_MODES {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, &mode| {
            let cfg = MdmpConfig::new(16, mode);
            let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
            b.iter(|| {
                run_with_mode(
                    black_box(&pair.reference),
                    black_box(&pair.query),
                    &cfg,
                    &mut sys,
                )
                .unwrap()
                .profile
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("full_run_tiles");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for tiles in [1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(tiles), &tiles, |b, &tiles| {
            let cfg = MdmpConfig::new(16, PrecisionMode::Fp32).with_tiles(tiles);
            let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
            b.iter(|| {
                run_with_mode(&pair.reference, &pair.query, &cfg, &mut sys)
                    .unwrap()
                    .profile
            })
        });
    }
    group.finish();
}

criterion_group!(mode_benches, bench_modes);
criterion_main!(mode_benches);

//! Ablation of the data-layout design choice (§III-A "Data Layout"): the
//! paper stores the active row-planes dimension-wise (elements of one
//! dimension contiguous). On the GPU that choice drives memory coalescing;
//! on the host it decides cache-line utilization, so the wall-clock
//! contrast between the two layouts is measurable here too.
//!
//! The bench compares the production dimension-major `dist`-style update +
//! fiber gather against a time-major (interleaved, `j`-major) variant of
//! the same arithmetic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

struct Inputs {
    n_q: usize,
    d: usize,
    dfq: Vec<f64>,
    dgq: Vec<f64>,
    inv_q: Vec<f64>,
    qt_prev: Vec<f64>,
}

fn inputs(n_q: usize, d: usize) -> Inputs {
    let gen = |off: usize| -> Vec<f64> {
        (0..n_q * d)
            .map(|i| (((i * 2654435761 + off) % 1000) as f64) / 1000.0 + 0.1)
            .collect()
    };
    Inputs {
        n_q,
        d,
        dfq: gen(1),
        dgq: gen(2),
        inv_q: gen(3),
        qt_prev: gen(4),
    }
}

/// Production layout: dimension-major (`k * n_q + j`) — unit-stride inner
/// loop over `j`.
fn dist_dimension_major(inp: &Inputs, qt_next: &mut [f64], dist: &mut [f64]) {
    let (n_q, d) = (inp.n_q, inp.d);
    for k in 0..d {
        let base = k * n_q;
        let dfr = 0.37;
        let dgr = 0.53;
        let inv_r = 1.21;
        for j in 1..n_q {
            let qt = inp.qt_prev[base + j - 1] + dfr * inp.dgq[base + j] + inp.dfq[base + j] * dgr;
            qt_next[base + j] = qt;
            let gap = (1.0 - qt * inv_r * inp.inv_q[base + j]).max(0.0);
            dist[base + j] = (32.0 * gap).sqrt();
        }
    }
}

/// Time-major layout (`j * d + k`) — stride-`d` access per dimension, the
/// layout the paper rejects.
fn dist_time_major(inp: &Inputs, qt_next: &mut [f64], dist: &mut [f64]) {
    let (n_q, d) = (inp.n_q, inp.d);
    for k in 0..d {
        let dfr = 0.37;
        let dgr = 0.53;
        let inv_r = 1.21;
        for j in 1..n_q {
            let idx = j * d + k;
            let prev = (j - 1) * d + k;
            let qt = inp.qt_prev[prev] + dfr * inp.dgq[idx] + inp.dfq[idx] * dgr;
            qt_next[idx] = qt;
            let gap = (1.0 - qt * inv_r * inp.inv_q[idx]).max(0.0);
            dist[idx] = (32.0 * gap).sqrt();
        }
    }
}

fn bench_layouts(c: &mut Criterion) {
    for (n_q, d) in [(1usize << 14, 16usize), (1 << 12, 64)] {
        let inp = inputs(n_q, d);
        let mut qt_next = vec![0.0; n_q * d];
        let mut dist = vec![0.0; n_q * d];
        let mut group = c.benchmark_group(format!("layout_n{n_q}_d{d}"));
        group.throughput(Throughput::Elements((n_q * d) as u64));
        group.sample_size(30);
        group.bench_function(BenchmarkId::from_parameter("dimension_major"), |b| {
            b.iter(|| dist_dimension_major(black_box(&inp), &mut qt_next, &mut dist))
        });
        group.bench_function(BenchmarkId::from_parameter("time_major"), |b| {
            b.iter(|| dist_time_major(black_box(&inp), &mut qt_next, &mut dist))
        });
        group.finish();
    }
}

criterion_group!(layout_benches, bench_layouts);
criterion_main!(layout_benches);

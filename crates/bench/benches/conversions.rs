//! Throughput of the software float formats — the conversion and arithmetic
//! primitives every functional reduced-precision experiment is built on.
//! Useful for spotting regressions in the `from_f64` rounding fast path,
//! which dominates functional run time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdmp_precision::{Bf16, Flex, Half, Real, Tf32};
use std::hint::black_box;

fn bench_conversions(c: &mut Criterion) {
    let inputs: Vec<f64> = (0..4096)
        .map(|i| ((i as f64) * 0.37).sin() * 100.0 + 0.001 * i as f64)
        .collect();

    fn round_trip<T: Real>(xs: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &x in xs {
            acc += T::from_f64(x).to_f64();
        }
        acc
    }

    let mut group = c.benchmark_group("round_trip_4096");
    group.throughput(Throughput::Elements(4096));
    group.bench_function(BenchmarkId::from_parameter("f32"), |b| {
        b.iter(|| round_trip::<f32>(black_box(&inputs)))
    });
    group.bench_function(BenchmarkId::from_parameter("half"), |b| {
        b.iter(|| round_trip::<Half>(black_box(&inputs)))
    });
    group.bench_function(BenchmarkId::from_parameter("bf16"), |b| {
        b.iter(|| round_trip::<Bf16>(black_box(&inputs)))
    });
    group.bench_function(BenchmarkId::from_parameter("tf32"), |b| {
        b.iter(|| round_trip::<Tf32>(black_box(&inputs)))
    });
    group.bench_function(BenchmarkId::from_parameter("flex_5_10"), |b| {
        b.iter(|| round_trip::<Flex<5, 10>>(black_box(&inputs)))
    });
    group.finish();

    fn fma_chain<T: Real>(xs: &[f64]) -> f64 {
        let mut acc = T::zero();
        let a = T::from_f64(0.999);
        for &x in xs {
            acc = acc.mul_add(a, T::from_f64(x));
        }
        acc.to_f64()
    }

    let mut group = c.benchmark_group("fma_chain_4096");
    group.throughput(Throughput::Elements(4096));
    group.bench_function(BenchmarkId::from_parameter("f64"), |b| {
        b.iter(|| fma_chain::<f64>(black_box(&inputs)))
    });
    group.bench_function(BenchmarkId::from_parameter("half"), |b| {
        b.iter(|| fma_chain::<Half>(black_box(&inputs)))
    });
    group.finish();
}

criterion_group!(conversion_benches, bench_conversions);
criterion_main!(conversion_benches);

//! Host wall-clock comparison of the three implementations of the same
//! computation: the simulated-GPU FP64 pipeline, the mSTAMP/(MP)^N CPU
//! baseline, and the brute-force oracle — the sanity check that the
//! optimized streaming formulation is asymptotically ahead of brute force
//! (O(n²·d) vs O(n²·d·m)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdmp_core::baseline::{brute_force, mstamp};
use mdmp_core::{run_with_mode, MdmpConfig};
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_precision::PrecisionMode;
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let data_cfg = SyntheticConfig {
        n_subsequences: 192,
        dims: 4,
        m: 32,
        pattern: Pattern::Sine,
        embeddings: 2,
        noise: 0.3,
        pattern_amplitude: 1.0,
        seed: 5,
    };
    let pair = generate_pair(&data_cfg);
    let m = data_cfg.m;

    let mut group = c.benchmark_group("implementations_fp64");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function(BenchmarkId::new("gpu_pipeline", "fp64"), |b| {
        let cfg = MdmpConfig::new(m, PrecisionMode::Fp64);
        let mut sys = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
        b.iter(|| {
            run_with_mode(black_box(&pair.reference), &pair.query, &cfg, &mut sys)
                .unwrap()
                .profile
        })
    });
    group.bench_function(BenchmarkId::new("mstamp_cpu", "fp64"), |b| {
        b.iter(|| mstamp(black_box(&pair.reference), &pair.query, m, None, None))
    });
    group.bench_function(BenchmarkId::new("brute_force", "fp64"), |b| {
        b.iter(|| brute_force(black_box(&pair.reference), &pair.query, m, None))
    });
    group.finish();
}

criterion_group!(baseline_benches, bench_baselines);
criterion_main!(baseline_benches);

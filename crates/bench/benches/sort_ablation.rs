//! Ablation bench for the sorting design choice of §III-A/§IV: the paper's
//! custom Bitonic network (cooperative, O(log² d) depth) versus the
//! "batch-based" alternative where one thread sorts one fiber with a
//! general comparison sort. On the host the batch variant is the standard
//! library sort; the relevant signal is the relative cost across fiber
//! widths d.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdmp_core::kernels::bitonic_sort;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn fibers(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-10.0..10.0)).collect())
        .collect()
}

fn bench_sorts(c: &mut Criterion) {
    let n = 4096;
    for d in [8usize, 64, 256] {
        let data = fibers(n, d, d as u64);
        let mut group = c.benchmark_group(format!("sort_d{d}"));
        group.throughput(Throughput::Elements((n * d) as u64));
        group.sample_size(20);
        group.bench_with_input(BenchmarkId::new("bitonic", d), &data, |b, data| {
            b.iter(|| {
                let mut work = data.clone();
                for fiber in &mut work {
                    bitonic_sort(black_box(fiber));
                }
                work
            })
        });
        group.bench_with_input(BenchmarkId::new("std_unstable", d), &data, |b, data| {
            b.iter(|| {
                let mut work = data.clone();
                for fiber in &mut work {
                    fiber.sort_unstable_by(|a, b| a.total_cmp(b));
                }
                work
            })
        });
        group.finish();
    }
}

criterion_group!(sort_benches, bench_sorts);
criterion_main!(sort_benches);

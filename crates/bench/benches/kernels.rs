//! Wall-clock Criterion benches of the three per-iteration kernels in the
//! host (functional) implementation, per precision. These measure the
//! *simulator's* host performance — the paper-scale GPU timings come from
//! the calibrated model (`repro fig4` etc.); this harness tracks that the
//! functional engine itself stays fast enough for the accuracy experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdmp_core::kernels::{dist_row, sort_scan_row, update_profile_row, DistParams};
use mdmp_core::precalc::{compute_stats, initial_qt, SeriesDevice};
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_data::MultiDimSeries;
use mdmp_precision::{Half, Real};
use std::hint::black_box;

fn test_pair(n: usize, d: usize, m: usize) -> (MultiDimSeries, MultiDimSeries) {
    let cfg = SyntheticConfig {
        n_subsequences: n,
        dims: d,
        m,
        pattern: Pattern::Sine,
        embeddings: 2,
        noise: 0.3,
        pattern_amplitude: 1.0,
        seed: 11,
    };
    let pair = generate_pair(&cfg);
    (pair.reference, pair.query)
}

fn bench_row_kernels<T: Real>(c: &mut Criterion, label: &str) {
    let (n, d, m) = (4096usize, 16usize, 32usize);
    let (r, q) = test_pair(n, d, m);
    let rd = SeriesDevice::<T>::load(&r, 0, r.len());
    let qd = SeriesDevice::<T>::load(&q, 0, q.len());
    let rs = compute_stats(&rd, m, false);
    let qs = compute_stats(&qd, m, false);
    let (row0, col0) = initial_qt(&rd, &rs, &qd, &qs, m, false);
    let params = DistParams::<T>::new(m, true, 0, 0, None);
    let d_pad = d.next_power_of_two();

    let mut qt_prev = vec![T::zero(); n * d];
    let mut qt_next = vec![T::zero(); n * d];
    let mut dist = vec![T::zero(); n * d];
    let mut scanned = vec![T::zero(); n * d_pad];
    let mut p_plane = vec![T::infinity(); n * d];
    let mut i_plane = vec![-1i64; n * d];

    let mut group = c.benchmark_group("row_kernels");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("dist_calc", label), |b| {
        b.iter(|| {
            dist_row(
                black_box(1),
                &row0,
                &col0,
                &qt_prev,
                &mut qt_next,
                &mut dist,
                &rs,
                &qs,
                &params,
            );
        })
    });
    group.bench_function(BenchmarkId::new("sort_incl_scan", label), |b| {
        b.iter(|| sort_scan_row(black_box(&dist), &mut scanned, n, d))
    });
    group.bench_function(BenchmarkId::new("update_mat_prof", label), |b| {
        b.iter(|| update_profile_row(black_box(&scanned), &mut p_plane, &mut i_plane, n, d, 1))
    });
    group.finish();
    std::mem::swap(&mut qt_prev, &mut qt_next);
}

fn bench_precalc(c: &mut Criterion) {
    let (n, d, m) = (8192usize, 16usize, 64usize);
    let (r, _) = test_pair(n, d, m);
    let mut group = c.benchmark_group("precalculation");
    group.sample_size(20);
    group.bench_function("fp64_plain", |b| {
        let dev = SeriesDevice::<f64>::load(&r, 0, r.len());
        b.iter(|| compute_stats(black_box(&dev), m, false))
    });
    group.bench_function("fp16_plain", |b| {
        let dev = SeriesDevice::<Half>::load(&r, 0, r.len());
        b.iter(|| compute_stats(black_box(&dev), m, false))
    });
    group.bench_function("fp16_kahan", |b| {
        let dev = SeriesDevice::<Half>::load(&r, 0, r.len());
        b.iter(|| compute_stats(black_box(&dev), m, true))
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_row_kernels::<f64>(c, "fp64");
    bench_row_kernels::<f32>(c, "fp32");
    bench_row_kernels::<Half>(c, "fp16");
    bench_precalc(c);
}

criterion_group!(kernel_benches, benches);
criterion_main!(kernel_benches);

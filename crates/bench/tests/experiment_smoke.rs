//! Smoke tests of the reproduction harness: every experiment runs in quick
//! mode and its table carries the paper's qualitative structure.

use mdmp_bench::experiments::{accuracy, case_studies, extensions, performance, tradeoff};

#[test]
fn headline_table_reproduces_paper_bands() {
    let t = performance::headline();
    let a100 = t.cell("A100_vs_CPU_FP64", "modeled").unwrap();
    assert!((40.0..=70.0).contains(&a100), "A100/CPU {a100}");
    let v100 = t.cell("V100_vs_CPU_FP64", "modeled").unwrap();
    assert!((30.0..=55.0).contains(&v100), "V100/CPU {v100}");
    let fp16 = t.cell("FP16_vs_FP64_A100", "modeled").unwrap();
    assert!((1.2..=1.9).contains(&fp16), "FP16 gain {fp16}");
    let four = t.cell("4xA100_speedup", "modeled").unwrap();
    assert!((3.5..=4.05).contains(&four), "4-GPU {four}");
}

#[test]
fn fig4_breakdown_has_crossover() {
    let tables = performance::fig4();
    let by_d = &tables[1];
    // Small d: dist_calc dominates; large d: sort dominates (Fig. 4).
    let dist_small = by_d.cell("d=2^3", "dist_calc_s").unwrap();
    let sort_small = by_d.cell("d=2^3", "sort_scan_s").unwrap();
    assert!(dist_small > sort_small);
    let dist_big = by_d.cell("d=2^6", "dist_calc_s").unwrap();
    let sort_big = by_d.cell("d=2^6", "sort_scan_s").unwrap();
    assert!(sort_big > dist_big);
}

#[test]
fn fig5_efficiency_dips_at_odd_counts() {
    let tables = performance::fig5();
    let scaling = &tables[0];
    let eff = |g: &str| scaling.cell(g, "efficiency_FP64").unwrap();
    assert!(eff("2") > 0.95);
    assert!(eff("4") > 0.95);
    assert!(eff("3") < eff("2"));
    assert!(eff("5") < eff("4"));
    // Reduced precision is faster at every GPU count.
    for g in ["1", "4", "8"] {
        let t64 = scaling.cell(g, "t_FP64_s").unwrap();
        let t16 = scaling.cell(g, "t_FP16_s").unwrap();
        assert!(t16 < t64, "{g} GPUs: FP16 {t16} not below FP64 {t64}");
    }
}

#[test]
fn fig6_machine_ordering_and_m_independence() {
    let tables = performance::fig6();
    for t in &tables {
        for (label, _) in &t.rows {
            let cpu = t.cell(label, "CPU_s").unwrap();
            let v100 = t.cell(label, "V100_s").unwrap();
            let a100 = t.cell(label, "A100_s").unwrap();
            assert!(cpu > v100 && v100 > a100, "{label}: {cpu} {v100} {a100}");
        }
    }
    // m sweep is flat.
    let by_m = &tables[2];
    let t_small = by_m.cell("m=2^3", "A100_s").unwrap();
    let t_large = by_m.cell("m=2^6", "A100_s").unwrap();
    assert!((t_small - t_large).abs() / t_small < 0.05);
}

#[test]
fn fig7_time_dips_then_rises() {
    let t = tradeoff::fig7_time();
    let t1 = t.cell("1", "t_FP16_s").unwrap();
    let t16 = t.cell("16", "t_FP16_s").unwrap();
    let t1024 = t.cell("1024", "t_FP16_s").unwrap();
    assert!(t16 < t1, "some tiles beat one tile");
    assert!(t1024 > t16, "1024 tiles pay merge overhead");
}

#[test]
fn fig2_quick_has_precision_hierarchy() {
    let tables = accuracy::fig2(true);
    let n_sweep = &tables[0];
    for (label, _) in &n_sweep.rows {
        let a64 = n_sweep.cell(label, "A_FP64").unwrap();
        let a16 = n_sweep.cell(label, "A_FP16").unwrap();
        let a_mixed = n_sweep.cell(label, "A_Mixed").unwrap();
        assert!(a64 > 99.999, "{label}: FP64 accuracy {a64}");
        assert!(a_mixed >= a16 - 0.2, "{label}: Mixed below FP16");
        assert!(a16 > 90.0, "{label}: FP16 accuracy collapsed: {a16}");
    }
}

#[test]
fn table1_matches_paper_counts() {
    let t = case_studies::table1();
    assert_eq!(t.cell("P1-P1", "GT1"), Some(4160.0));
    assert_eq!(t.cell("both-P2", "GT1-GT2"), Some(650.0));
}

#[test]
fn multinode_scales_and_schedule_helps_heterogeneous() {
    let mn = extensions::multinode();
    let e2 = mn.cell("2", "efficiency").unwrap();
    let e8 = mn.cell("8", "efficiency").unwrap();
    assert!(e2 > 0.9, "2-node efficiency {e2}");
    assert!(e8 > 0.75, "8-node efficiency {e8}");

    let sched = extensions::schedule_ablation();
    let gain_homog = sched.cell("4xA100", "balanced_gain").unwrap();
    assert!((gain_homog - 1.0).abs() < 0.01, "homogeneous: no gain");
    let gain_mixed = sched.cell("2xA100+2xV100", "balanced_gain").unwrap();
    assert!(gain_mixed > 1.1, "heterogeneous gain {gain_mixed}");
}

#[test]
fn clamp_ablation_shows_overshoot_damage() {
    let t = extensions::clamp_ablation(true);
    let on = t.cell("FP16_on", "R_pct").unwrap();
    let off = t.cell("FP16_off", "R_pct").unwrap();
    assert!(
        on > off + 20.0,
        "clamp must rescue exact-repeat recall: on {on} vs off {off}"
    );
}

#[test]
fn extended_modes_rank_by_mantissa_width() {
    let t = extensions::extended_modes(true);
    let a = |mode: &str| t.cell(mode, "A_pct").unwrap();
    assert!(a("FP64") >= a("FP16") - 1e-9);
    assert!(
        a("FP16") > a("BF16"),
        "FP16 {} vs BF16 {}",
        a("FP16"),
        a("BF16")
    );
    assert!(a("BF16") > a("FP8-E4M3"));
    assert!(a("FP8-E4M3") > a("FP8-E5M2"));
    // TF32 matches FP16 accuracy (same 11-bit significand) but not worse.
    assert!((a("TF32") - a("FP16")).abs() < 5.0);
}

#[test]
fn driver_scaling_sweeps_pipelines_with_invariant_model_time() {
    use mdmp_bench::experiments::driver_scaling;
    let t = driver_scaling::driver_scaling(true);
    // One unfused + one fused row per worker count, at least {1, 2, 4}.
    assert!(
        t.rows.len() >= 6,
        "sweep covers both pipelines x {{1, 2, 4}}"
    );
    let modeled_1 = t.cell("unfused/1", "modeled_s").unwrap();
    for (label, _) in &t.rows {
        let wall = t.cell(label, "wall_seconds").unwrap();
        assert!(wall > 0.0, "{label}: wall {wall}");
        let modeled = t.cell(label, "modeled_s").unwrap();
        assert_eq!(
            modeled.to_bits(),
            modeled_1.to_bits(),
            "{label}: modelled time must depend on neither pool nor fusion"
        );
    }
    assert_eq!(t.cell("unfused/1", "fused_speedup"), Some(1.0));
    // Fusion eliminates two dispatches per reference row; the unfused
    // pipeline eliminates none.
    for (label, _) in &t.rows {
        let eliminated = t.cell(label, "elim_dispatch").unwrap();
        if label.starts_with("fused") {
            assert!(eliminated > 0.0, "{label}: no dispatches eliminated");
        } else {
            assert_eq!(eliminated, 0.0, "{label}");
        }
    }
}

//! The job scheduler: a worker pool draining the bounded submission queue,
//! leasing devices from the shared pool, consulting the precalc cache, and
//! recording every lifecycle transition in the metrics registry.
//!
//! Lifecycle: `queued → running → done | failed | cancelled`, with
//! per-job retries (capped exponential backoff) between `running`
//! attempts. Shutdown comes in two flavours: *drain* finishes everything
//! already admitted; *abort* cancels queued jobs and finishes only the
//! in-flight ones.

use crate::cache::{CacheKey, PrecalcCache};
use crate::job::{JobId, JobOutcome, JobSpec, JobState, JobStatus};
use crate::metrics::MetricsRegistry;
use crate::pool::DevicePool;
use crate::queue::{JobQueue, SubmitError};
use crate::session::SessionManager;
use crate::sync;
use mdmp_core::{run_tile_subset, run_with_mode_cached, TileSubsetRun};
use mdmp_gpu_sim::DeviceSpec;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tunables of a service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bounded queue capacity (admission control).
    pub queue_capacity: usize,
    /// Device spec of the simulated pool.
    pub device: DeviceSpec,
    /// Devices in the pool.
    pub devices: usize,
    /// Precalc cache budget in bytes.
    pub cache_bytes: u64,
    /// Host worker threads per run for the concurrent tile pipeline;
    /// `0` = auto (env `MDMP_HOST_WORKERS`, else one per leased device).
    pub host_workers: usize,
    /// First retry backoff; doubles per attempt.
    pub retry_base: Duration,
    /// Backoff cap.
    pub retry_cap: Duration,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            device: DeviceSpec::a100(),
            devices: 2,
            cache_bytes: 256 << 20,
            host_workers: 0,
            retry_base: Duration::from_millis(10),
            retry_cap: Duration::from_secs(1),
        }
    }
}

#[derive(Debug)]
struct JobRecord {
    spec: JobSpec,
    state: JobState,
    attempts: u32,
    submitted: Instant,
    started: Option<Instant>,
    finished: Option<Instant>,
    error: Option<String>,
    outcome: Option<JobOutcome>,
}

/// The concurrent matrix-profile job service.
#[derive(Debug)]
pub struct Service {
    cfg: ServiceConfig,
    queue: JobQueue,
    registry: Mutex<BTreeMap<JobId, JobRecord>>,
    state_changed: Condvar,
    next_id: AtomicU64,
    /// The shared precalculation cache.
    pub cache: PrecalcCache,
    pool: DevicePool,
    /// Counters, gauges and histograms.
    pub metrics: MetricsRegistry,
    /// Streaming sessions.
    pub sessions: SessionManager,
    shutting_down: AtomicBool,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Jobs whose fault plan asks the server to drop the client connection
    /// once mid-job (consumed by the first `wait` on the job).
    connection_faults: Mutex<BTreeSet<JobId>>,
}

impl Service {
    /// Start a service: spawns the worker pool and returns a shared handle.
    pub fn start(cfg: ServiceConfig) -> Arc<Service> {
        assert!(cfg.workers > 0, "need at least one worker");
        let service = Arc::new(Service {
            queue: JobQueue::new(cfg.queue_capacity),
            registry: Mutex::new(BTreeMap::new()),
            state_changed: Condvar::new(),
            next_id: AtomicU64::new(0),
            cache: PrecalcCache::new(cfg.cache_bytes),
            pool: DevicePool::new(cfg.device.clone(), cfg.devices),
            metrics: MetricsRegistry::default(),
            sessions: SessionManager::new(),
            shutting_down: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
            connection_faults: Mutex::new(BTreeSet::new()),
            cfg,
        });
        let mut handles = sync::lock(&service.workers);
        for i in 0..service.cfg.workers {
            let svc = Arc::clone(&service);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mdmp-worker-{i}"))
                    .spawn(move || svc.worker_loop())
                    // panic-ok: startup path, before any request is
                    // admitted — failing to spawn the pool is fatal.
                    .expect("spawn worker"),
            );
        }
        drop(handles);
        service
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Submit a job. Non-blocking: a full queue rejects with
    /// [`SubmitError::QueueFull`] — that is the backpressure signal.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        if spec.m < 2 {
            return Err(SubmitError::BadSpec("m must be at least 2".into()));
        }
        if spec.tiles == 0 {
            return Err(SubmitError::BadSpec("tiles must be at least 1".into()));
        }
        if spec.gpus == 0 || spec.gpus > self.pool.total() {
            return Err(SubmitError::BadSpec(format!(
                "gpus must be in 1..={}",
                self.pool.total()
            )));
        }
        // relaxed-ok: id allocation only needs uniqueness; the registry
        // insert below is ordered by its mutex.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let priority = spec.priority;
        if spec
            .fault_plan
            .as_deref()
            .is_some_and(|plan| plan.drops_connection())
        {
            sync::lock(&self.connection_faults).insert(id);
        }
        {
            let mut registry = sync::lock(&self.registry);
            registry.insert(
                id,
                JobRecord {
                    spec,
                    state: JobState::Queued,
                    attempts: 0,
                    submitted: Instant::now(),
                    started: None,
                    finished: None,
                    error: None,
                    outcome: None,
                },
            );
        }
        match self.queue.push(id, priority) {
            Ok(()) => {
                self.metrics.jobs_submitted.inc();
                self.metrics.queue_depth.inc();
                Ok(id)
            }
            Err(e) => {
                sync::lock(&self.registry).remove(&id);
                self.metrics.jobs_rejected.inc();
                Err(e)
            }
        }
    }

    /// A status snapshot, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let registry = sync::lock(&self.registry);
        registry.get(&id).map(|r| Self::snapshot(id, r))
    }

    fn snapshot(id: JobId, r: &JobRecord) -> JobStatus {
        let queue_seconds = match r.started {
            Some(t) => t.duration_since(r.submitted).as_secs_f64(),
            None => r.submitted.elapsed().as_secs_f64(),
        };
        let run_seconds = r.started.map(|s| match r.finished {
            Some(f) => f.duration_since(s).as_secs_f64(),
            None => s.elapsed().as_secs_f64(),
        });
        JobStatus {
            id,
            state: r.state,
            priority: r.spec.priority,
            attempts: r.attempts,
            queue_seconds,
            run_seconds,
            error: r.error.clone(),
            outcome: r.outcome.clone(),
        }
    }

    /// Cancel a queued job. Running or finished jobs are not touched;
    /// returns whether the job was cancelled.
    pub fn cancel(&self, id: JobId) -> bool {
        if !self.queue.remove(id) {
            return false;
        }
        let mut registry = sync::lock(&self.registry);
        let Some(record) = registry.get_mut(&id) else {
            return false;
        };
        record.state = JobState::Cancelled;
        record.finished = Some(Instant::now());
        drop(registry);
        self.metrics.queue_depth.dec();
        self.metrics.jobs_cancelled.inc();
        self.state_changed.notify_all();
        true
    }

    /// Block until the job reaches a terminal state (or the deadline
    /// passes), returning the final status.
    pub fn wait(&self, id: JobId, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        let mut registry = sync::lock(&self.registry);
        loop {
            let status = registry.get(&id).map(|r| Self::snapshot(id, r))?;
            if status.state.is_terminal() {
                return Some(status);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(status);
            }
            let (guard, _) = sync::wait_timeout(&self.state_changed, registry, deadline - now);
            registry = guard;
        }
    }

    /// Consume a pending injected connection drop for `id`: `true` exactly
    /// once for a job whose fault plan carries `drop`, after which the
    /// connection behaves normally again.
    pub fn take_connection_fault(&self, id: JobId) -> bool {
        let fired = sync::lock(&self.connection_faults).remove(&id);
        if fired {
            self.metrics.connection_drops_injected.inc();
        }
        fired
    }

    /// Open a streaming session and account for it in the streaming
    /// metrics.
    pub fn stream_open(
        &self,
        reference: mdmp_data::MultiDimSeries,
        query: mdmp_data::MultiDimSeries,
        cfg: mdmp_core::MdmpConfig,
    ) -> Result<crate::session::SessionSummary, String> {
        let summary = self.sessions.open(reference, query, cfg)?;
        self.metrics.stream_opens.inc();
        self.metrics
            .stream_sessions_open
            .set(self.sessions.len() as i64);
        Ok(summary)
    }

    /// Append to a streaming session, folding the append's reuse accounting
    /// into the streaming metrics.
    pub fn stream_append(
        &self,
        id: crate::session::SessionId,
        side: crate::session::AppendSide,
        samples: &[Vec<f64>],
    ) -> Result<crate::session::AppendReport, String> {
        match self.sessions.append(id, side, samples) {
            Ok(report) => {
                self.metrics.stream_appends.inc();
                self.metrics.stream_append_seconds.observe(report.seconds);
                if report.reused_precalc {
                    self.metrics.stream_precalc_reuses.inc();
                }
                self.metrics
                    .stream_segments_reused
                    .add(report.reused_segments);
                self.metrics
                    .stream_segments_fresh
                    .add(report.fresh_segments);
                Ok(report)
            }
            Err(e) => {
                self.metrics.stream_append_failures.inc();
                Err(e)
            }
        }
    }

    /// Close a streaming session, keeping the open-sessions gauge in step.
    pub fn stream_close(&self, id: crate::session::SessionId) -> bool {
        let existed = self.sessions.close(id);
        self.metrics
            .stream_sessions_open
            .set(self.sessions.len() as i64);
        existed
    }

    /// A metrics snapshot.
    pub fn stats(&self) -> crate::metrics::ServiceStats {
        self.sync_cache_metrics();
        self.metrics.stats()
    }

    /// The Prometheus-style metrics page.
    pub fn metrics_text(&self) -> String {
        self.sync_cache_metrics();
        self.metrics.render_text()
    }

    fn sync_cache_metrics(&self) {
        let c = self.cache.stats();
        self.metrics.cache_bytes.set(c.bytes as i64);
        let seen = self.metrics.single_flight_waits.get();
        self.metrics
            .single_flight_waits
            .add(c.single_flight_waits.saturating_sub(seen));
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        // relaxed-ok: advisory flag; the authoritative shutdown signal is
        // the queue closing (mutex-ordered in JobQueue).
        self.shutting_down.load(Ordering::Relaxed)
    }

    /// Stop the service. With `drain = true` every admitted job still runs
    /// to completion; with `drain = false` queued jobs are cancelled and
    /// only in-flight ones finish. Blocks until all workers exit.
    pub fn shutdown(&self, drain: bool) {
        // relaxed-ok: advisory flag (see is_shutting_down).
        self.shutting_down.store(true, Ordering::Relaxed);
        if drain {
            self.queue.close();
        } else {
            let dropped = self.queue.close_and_drain();
            let mut registry = sync::lock(&self.registry);
            for id in dropped {
                if let Some(record) = registry.get_mut(&id) {
                    record.state = JobState::Cancelled;
                    record.finished = Some(Instant::now());
                    self.metrics.queue_depth.dec();
                    self.metrics.jobs_cancelled.inc();
                }
            }
            drop(registry);
            self.state_changed.notify_all();
        }
        let handles: Vec<_> = sync::lock(&self.workers).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn worker_loop(&self) {
        while let Some(id) = self.queue.pop() {
            self.metrics.queue_depth.dec();
            // Claim: queued → running (skip if cancelled in between).
            let spec = {
                let mut registry = sync::lock(&self.registry);
                let Some(record) = registry.get_mut(&id) else {
                    continue;
                };
                if record.state != JobState::Queued {
                    continue;
                }
                record.state = JobState::Running;
                record.started = Some(Instant::now());
                record.spec.clone()
            };
            self.metrics.jobs_running.inc();
            self.state_changed.notify_all();
            let started = Instant::now();
            let queue_wait = {
                let registry = sync::lock(&self.registry);
                registry
                    .get(&id)
                    .map(|r| started.duration_since(r.submitted).as_secs_f64())
                    .unwrap_or(0.0)
            };
            self.metrics.queue_wait.observe(queue_wait);

            let result = self.run_with_retries(id, &spec);

            let finished = Instant::now();
            self.metrics
                .run_seconds
                .observe(finished.duration_since(started).as_secs_f64());
            self.metrics.jobs_running.dec();
            let mut registry = sync::lock(&self.registry);
            if let Some(record) = registry.get_mut(&id) {
                record.finished = Some(finished);
                match result {
                    Ok(outcome) => {
                        record.state = JobState::Done;
                        record.outcome = Some(outcome);
                        self.metrics.jobs_completed.inc();
                    }
                    Err(message) => {
                        record.state = JobState::Failed;
                        record.error = Some(message);
                        self.metrics.jobs_failed.inc();
                    }
                }
            }
            drop(registry);
            self.state_changed.notify_all();
        }
    }

    /// Execute a subset of a job's tiles synchronously on this node, on
    /// behalf of a cluster coordinator (the worker half of the tile-lease
    /// protocol, DESIGN.md §12). Bypasses the job queue — the coordinator
    /// owns scheduling — but leases devices from the same pool and shares
    /// the fingerprint-keyed precalc cache, so repeated shards of the same
    /// job reuse bit-identical precalc.
    pub fn execute_tile_subset(
        &self,
        spec: &JobSpec,
        tiles: &[usize],
    ) -> Result<TileSubsetRun, String> {
        self.metrics.tile_exec_requests.inc();
        let run = self.execute_tile_subset_inner(spec, tiles);
        match &run {
            Ok(run) => self.metrics.tiles_served.add(run.results.len() as u64),
            Err(_) => self.metrics.tile_exec_failures.inc(),
        }
        run
    }

    fn execute_tile_subset_inner(
        &self,
        spec: &JobSpec,
        tiles: &[usize],
    ) -> Result<TileSubsetRun, String> {
        if spec.gpus == 0 || spec.gpus > self.pool.total() {
            return Err(format!("gpus must be in 1..={}", self.pool.total()));
        }
        let (reference, query) = spec.materialize()?;
        let cfg = spec.config().with_host_workers(self.cfg.host_workers);
        let key = CacheKey::for_job(&reference, &query, spec.m, spec.mode, spec.tiles);
        let mut system = self.pool.lease(spec.gpus);
        self.metrics.devices_leased.add(spec.gpus as i64);
        let store = self.cache.store_for(key);
        let run = run_tile_subset(&reference, &query, &cfg, &mut system, Some(&store), tiles);
        self.metrics.devices_leased.add(-(spec.gpus as i64));
        self.pool.release(system);
        let run = run.map_err(|e| e.to_string())?;
        self.metrics.cache_hits.add(run.precalc_hits as u64);
        self.metrics.cache_misses.add(run.precalc_misses as u64);
        self.metrics.tile_retries.add(run.tile_retries);
        self.metrics
            .plane_validation_failures
            .add(run.plane_validation_failures);
        self.metrics
            .devices_quarantined
            .add(run.quarantined_devices.len() as u64);
        Ok(run)
    }

    fn run_with_retries(&self, id: JobId, spec: &JobSpec) -> Result<JobOutcome, String> {
        // Materialization failures (bad path, bad shape) are permanent —
        // no retry.
        let (reference, query) = spec.materialize()?;
        // Service-level host-worker setting applies to every job; `0`
        // leaves the core driver's auto resolution in charge.
        let cfg = spec.config().with_host_workers(self.cfg.host_workers);
        let key = CacheKey::for_job(&reference, &query, spec.m, spec.mode, spec.tiles);
        let job_deadline = spec.deadline_ms.map(Duration::from_millis);
        let job_start = Instant::now();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            {
                let mut registry = sync::lock(&self.registry);
                if let Some(record) = registry.get_mut(&id) {
                    record.attempts = attempt;
                }
            }
            let system = self.pool.lease(spec.gpus);
            self.metrics.devices_leased.add(spec.gpus as i64);
            let mut system = system;
            let store = self.cache.store_for(key.clone());
            let run = run_with_mode_cached(&reference, &query, &cfg, &mut system, Some(&store));
            self.metrics.devices_leased.add(-(spec.gpus as i64));
            self.pool.release(system);
            match run {
                Ok(run) => {
                    self.metrics.cache_hits.add(run.precalc_hits as u64);
                    self.metrics.cache_misses.add(run.precalc_misses as u64);
                    self.metrics.tile_retries.add(run.tile_retries);
                    self.metrics
                        .plane_validation_failures
                        .add(run.plane_validation_failures);
                    self.metrics
                        .devices_quarantined
                        .add(run.quarantined_devices.len() as u64);
                    self.metrics.host_workers.set(run.host_workers as i64);
                    self.metrics
                        .fused_rows_enabled
                        .set(i64::from(run.fused_rows));
                    self.metrics
                        .tc_chunk_k
                        .set(run.tc_chunk_k.unwrap_or(0) as i64);
                    self.metrics
                        .eliminated_dispatches
                        .add(run.eliminated_dispatches);
                    self.metrics.pool_thread_reuses.add(run.pool_thread_reuses);
                    self.metrics.buffer_pool_reuses.add(run.buffer_pool_reuses);
                    self.metrics.buffer_pool_allocs.add(run.buffer_pool_allocs);
                    self.metrics.absorb_worker_busy(&run.worker_busy_seconds);
                    let cache = self.cache.stats();
                    self.metrics.cache_evictions.add(
                        cache.evictions - self.metrics.cache_evictions.get().min(cache.evictions),
                    );
                    self.metrics.absorb_ledger(&run.ledger);
                    return Ok(JobOutcome {
                        profile: Arc::new(run.profile),
                        modeled_seconds: run.modeled_seconds,
                        wall_seconds: run.wall_seconds,
                        precalc_hits: run.precalc_hits,
                        precalc_misses: run.precalc_misses,
                    });
                }
                Err(e) => {
                    if attempt > spec.max_retries {
                        return Err(e.to_string());
                    }
                    if let Some(deadline) = job_deadline {
                        let elapsed = job_start.elapsed();
                        if elapsed >= deadline {
                            return Err(format!(
                                "job deadline exceeded after {} ms ({} attempts); last error: {e}",
                                elapsed.as_millis(),
                                attempt
                            ));
                        }
                    }
                    self.metrics.jobs_retried.inc();
                    let backoff = self
                        .cfg
                        .retry_base
                        .saturating_mul(1 << (attempt - 1).min(16))
                        .min(self.cfg.retry_cap);
                    std::thread::sleep(backoff);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobInput, Priority};
    use mdmp_data::MultiDimSeries;
    use mdmp_precision::PrecisionMode;

    fn pair(n: usize) -> (Arc<MultiDimSeries>, Arc<MultiDimSeries>) {
        let wave = |off: usize| {
            (0..n)
                .map(|t| ((t + off) as f64 * 0.17).sin() + 0.02 * (t % 11) as f64)
                .collect::<Vec<f64>>()
        };
        (
            Arc::new(MultiDimSeries::univariate(wave(0))),
            Arc::new(MultiDimSeries::univariate(wave(31))),
        )
    }

    fn quick_service(workers: usize, queue: usize) -> Arc<Service> {
        Service::start(ServiceConfig {
            workers,
            queue_capacity: queue,
            devices: workers.max(1),
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn submit_wait_done_round_trip() {
        let svc = quick_service(2, 8);
        let (r, q) = pair(96);
        let id = svc
            .submit(JobSpec::in_memory(r, q, 8, PrecisionMode::Fp64))
            .unwrap();
        let status = svc.wait(id, Duration::from_secs(30)).unwrap();
        assert_eq!(status.state, JobState::Done, "error: {:?}", status.error);
        let outcome = status.outcome.unwrap();
        assert_eq!(outcome.profile.n_query(), 89);
        assert_eq!(outcome.precalc_misses, 1);
        svc.shutdown(true);
    }

    #[test]
    fn invalid_specs_rejected_at_submission() {
        let svc = quick_service(1, 4);
        let (r, q) = pair(64);
        let mut spec = JobSpec::in_memory(r, q, 8, PrecisionMode::Fp64);
        spec.gpus = 99;
        assert!(matches!(
            svc.submit(spec.clone()),
            Err(SubmitError::BadSpec(_))
        ));
        spec.gpus = 1;
        spec.m = 1;
        assert!(matches!(svc.submit(spec), Err(SubmitError::BadSpec(_))));
        svc.shutdown(true);
    }

    #[test]
    fn materialization_failure_fails_the_job() {
        let svc = quick_service(1, 4);
        let id = svc
            .submit(JobSpec {
                input: JobInput::Csv {
                    reference: "/nonexistent/series.csv".into(),
                    query: None,
                },
                m: 8,
                mode: PrecisionMode::Fp64,
                tiles: 1,
                gpus: 1,
                priority: Priority::Normal,
                max_retries: 3,
                fault_plan: None,
                tile_retries: 2,
                fused_rows: None,
                tc_chunk_k: None,
                tile_deadline_ms: None,
                deadline_ms: None,
            })
            .unwrap();
        let status = svc.wait(id, Duration::from_secs(30)).unwrap();
        assert_eq!(status.state, JobState::Failed);
        assert!(status.error.is_some());
        // Materialization failures must not burn retries.
        assert_eq!(svc.stats().jobs_retried, 0);
        svc.shutdown(true);
    }

    #[test]
    fn unknown_job_status_is_none() {
        let svc = quick_service(1, 4);
        assert!(svc.status(12345).is_none());
        assert!(svc.wait(12345, Duration::from_millis(10)).is_none());
        svc.shutdown(true);
    }
}

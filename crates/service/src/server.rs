//! The TCP front end: a JSON-lines protocol over `std::net` — one request
//! object per line in, one response object per line out, connections
//! served by one thread each.
//!
//! Every request carries an `"op"`; every response carries `"ok"` (bool)
//! plus either the op's payload or an `"error"` string. Ops:
//!
//! | op              | request fields                                         |
//! |-----------------|--------------------------------------------------------|
//! | `ping`          | —                                                      |
//! | `submit`        | `job` object (see [`parse_job_spec`])                  |
//! | `status`        | `id`                                                   |
//! | `wait`          | `id`, optional `timeout_seconds`                       |
//! | `cancel`        | `id`                                                   |
//! | `stats`         | —                                                      |
//! | `metrics`       | — (returns the Prometheus text page as a string)       |
//! | `stream_open`   | `m`, `mode`, `reference`, `query` (arrays of arrays)   |
//! | `stream_append` | `session`, `side`, `samples` (array per dimension)     |
//! | `stream_status` | `session`                                              |
//! | `stream_close`  | `session`                                              |
//! | `tile_exec`     | `job` object, `tiles` (array of tile indices)          |
//! | `wire_upgrade`  | `version` — switch the connection to binary frames     |
//! | `shutdown`      | optional `drain` (default true)                        |
//!
//! `tile_exec` is the worker half of the cluster tile-lease protocol
//! (DESIGN.md §12): it executes the listed tiles of the job synchronously
//! and returns one entry per tile with the partial profile planes. On the
//! JSON transport value planes travel as hex-encoded `f64` bit patterns
//! ([`encode_plane_hex`]) because JSON has no `+Inf` and the unset
//! sentinel must survive the trip bit-exactly; index planes use the same
//! cell shape ([`encode_index_plane_hex`]). After a `wire_upgrade`
//! (DESIGN.md §15, [`crate::wire`]) both planes instead ride as binary
//! chunks referenced by `p_chunk`/`i_chunk` indices, and streaming series
//! ride as one chunk per dimension counted by `reference_chunks`/
//! `query_chunks`/`samples_chunks`.

use crate::job::{JobInput, JobOutcome, JobSpec, JobStatus, Priority};
use crate::proto::Json;
use crate::scheduler::Service;
use crate::session::{AppendSide, SessionSummary};
use crate::wire::{Chunk, FrameCodec, Message, WireError, WIRE_VERSION};
use mdmp_core::MdmpConfig;
use mdmp_data::MultiDimSeries;
use mdmp_faults::FaultPlan;
use mdmp_precision::PrecisionMode;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running TCP front end.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served_shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl Server {
    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// True once a `shutdown` request has been fully served: the service
    /// finished shutting down (drained or aborted) AND the response line
    /// was flushed back to the client. A host process that exits as soon
    /// as shutdown *starts* would sever the connection mid-drain; wait on
    /// this instead.
    pub fn shutdown_served(&self) -> bool {
        self.served_shutdown.load(Ordering::SeqCst)
    }

    /// Stop accepting connections and join the accept loop. Does not shut
    /// the service itself down.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve the JSON-lines protocol on
/// it until [`Server::stop`] or service shutdown.
pub fn serve(service: Arc<Service>, addr: &str) -> io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let served_shutdown = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let served2 = Arc::clone(&served_shutdown);
    let accept_thread = std::thread::Builder::new()
        .name("mdmp-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let svc = Arc::clone(&service);
                let stop3 = Arc::clone(&stop2);
                let served3 = Arc::clone(&served2);
                let _ = std::thread::Builder::new()
                    .name("mdmp-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(&svc, stream, &stop3, &served3);
                    });
            }
        })?;
    Ok(Server {
        local_addr,
        stop,
        served_shutdown,
        accept_thread: Some(accept_thread),
    })
}

/// The metric label for a request's op — a fixed vocabulary so the
/// labeled byte counters can use `&'static str` keys without leaking
/// attacker-chosen label values into the metrics page.
fn op_label(json: Option<&Json>) -> &'static str {
    match json.and_then(|j| j.get("op")).and_then(Json::as_str) {
        Some("ping") => "ping",
        Some("submit") => "submit",
        Some("status") => "status",
        Some("wait") => "wait",
        Some("cancel") => "cancel",
        Some("stats") => "stats",
        Some("metrics") => "metrics",
        Some("stream_open") => "stream_open",
        Some("stream_append") => "stream_append",
        Some("stream_status") => "stream_status",
        Some("stream_close") => "stream_close",
        Some("tile_exec") => "tile_exec",
        Some("wire_upgrade") => "wire_upgrade",
        Some("shutdown") => "shutdown",
        Some(_) => "other",
        None => "invalid",
    }
}

fn handle_connection(
    service: &Service,
    stream: TcpStream,
    stop: &AtomicBool,
    served_shutdown: &AtomicBool,
) -> io::Result<()> {
    // Request/response traffic: Nagle delays hurt and help nothing.
    let _ = stream.set_nodelay(true);
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Json::parse(line.trim());
        let label = op_label(parsed.as_ref().ok());
        service
            .metrics
            .wire_bytes_received
            .add("json", label, line.len() as u64);
        if label == "wire_upgrade" {
            let version = parsed
                .as_ref()
                .ok()
                .and_then(|r| r.get("version"))
                .and_then(Json::as_u64)
                .unwrap_or(u64::from(WIRE_VERSION));
            if version != u64::from(WIRE_VERSION) {
                let response = error_response(&format!("unsupported wire version {version}"));
                write_json_line(service, &mut writer, &response, label)?;
                continue;
            }
            let response = ok_response(vec![
                ("wire", Json::str("binary")),
                ("version", Json::num(f64::from(WIRE_VERSION))),
            ]);
            write_json_line(service, &mut writer, &response, label)?;
            // From here on the connection speaks frames until it closes.
            service.metrics.wire_binary_sessions.inc();
            let result = serve_binary(service, &mut reader, &mut writer, stop, served_shutdown);
            service.metrics.wire_binary_sessions.dec();
            return result;
        }
        let mut shutdown_done = false;
        let response = match &parsed {
            Ok(request) => match dispatch(service, request, stop) {
                // An injected connection fault: sever the stream without a
                // response line, as a crashed server would.
                Reply::Drop => return Ok(()),
                Reply::Json(response) => {
                    shutdown_done = label == "shutdown"
                        && response.get("ok").and_then(Json::as_bool) == Some(true);
                    response
                }
            },
            Err(e) => error_response(&format!("bad request: {e}")),
        };
        let written = write_json_line(service, &mut writer, &response, label);
        if shutdown_done {
            // Mark the shutdown as served only after the response reached
            // the socket (or the write definitively failed), so a host
            // waiting on `Server::shutdown_served` never exits while the
            // reply is still in flight.
            served_shutdown.store(true, Ordering::SeqCst);
            return written;
        }
        written?;
    }
}

fn write_json_line(
    service: &Service,
    writer: &mut BufWriter<TcpStream>,
    response: &Json,
    label: &'static str,
) -> io::Result<()> {
    let text = response.to_string();
    // Account before the write so a client that has read the reply always
    // sees the counter bumped (a failed write overcounts by one frame,
    // which is the lesser evil).
    service
        .metrics
        .wire_bytes_sent
        .add("json", label, text.len() as u64 + 1);
    writer.write_all(text.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    Ok(())
}

/// The binary half of a connection after a successful `wire_upgrade`:
/// read frames, dispatch, answer with frames. Error containment follows
/// the [`WireError`] taxonomy — a corrupt frame gets a typed error reply
/// and the connection continues; lost framing gets one error reply and
/// the connection closes; either way the server stays up.
fn serve_binary(
    service: &Service,
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    stop: &AtomicBool,
    served_shutdown: &AtomicBool,
) -> io::Result<()> {
    let mut codec = FrameCodec::new();
    loop {
        match codec.read(reader) {
            Ok(None) => return Ok(()),
            Err(WireError::Io(e)) => {
                // EOF mid-frame or a dead socket: nothing to answer on.
                return Err(e);
            }
            Err(WireError::Desync(e)) => {
                service.metrics.wire_frame_errors.inc();
                let reply = Message::json(error_response(&format!("framing lost: {e}")));
                let _ = write_frame(service, &mut codec, writer, &reply, "invalid");
                return Ok(());
            }
            Err(WireError::Corrupt(e)) => {
                service.metrics.wire_frame_errors.inc();
                let reply = Message::json(error_response(&format!("corrupt frame: {e}")));
                write_frame(service, &mut codec, writer, &reply, "invalid")?;
            }
            Ok(Some((msg, frame_bytes))) => {
                let label = op_label(Some(&msg.json));
                service
                    .metrics
                    .wire_bytes_received
                    .add("binary", label, frame_bytes);
                let reply = match dispatch_binary(service, msg, stop) {
                    BinaryReply::Drop => return Ok(()),
                    BinaryReply::Message(reply) => reply,
                };
                let shutdown_done = label == "shutdown"
                    && reply.json.get("ok").and_then(Json::as_bool) == Some(true);
                let written = write_frame(service, &mut codec, writer, &reply, label);
                if shutdown_done {
                    served_shutdown.store(true, Ordering::SeqCst);
                    return written;
                }
                written?;
            }
        }
    }
}

fn write_frame(
    service: &Service,
    codec: &mut FrameCodec,
    writer: &mut BufWriter<TcpStream>,
    reply: &Message,
    label: &'static str,
) -> io::Result<()> {
    let frame = codec
        .encode(reply, true)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    // Account before the write: see `write_json_line`.
    service
        .metrics
        .wire_bytes_sent
        .add("binary", label, frame.len() as u64);
    writer.write_all(frame)?;
    writer.flush()?;
    Ok(())
}

/// What a dispatched request produces: a response line, or an instruction
/// to drop the connection without replying (injected connection fault).
enum Reply {
    Json(Json),
    Drop,
}

fn error_response(message: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::str(message)),
    ])
}

fn ok_response(mut payload: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.append(&mut payload);
    Json::obj(pairs)
}

fn dispatch(service: &Service, request: &Json, stop: &AtomicBool) -> Reply {
    let Some(op) = request.get("op").and_then(Json::as_str) else {
        return Reply::Json(error_response("missing 'op'"));
    };
    Reply::Json(match op {
        "ping" => ok_response(vec![("pong", Json::Bool(true))]),
        "submit" => {
            let Some(job) = request.get("job") else {
                return Reply::Json(error_response("missing 'job'"));
            };
            match parse_job_spec(job) {
                Err(e) => error_response(&e),
                Ok(spec) => match service.submit(spec) {
                    Ok(id) => ok_response(vec![("id", Json::num(id as f64))]),
                    Err(e) => error_response(&e.to_string()),
                },
            }
        }
        "status" => match request.get("id").and_then(Json::as_u64) {
            None => error_response("missing numeric 'id'"),
            Some(id) => match service.status(id) {
                None => error_response(&format!("unknown job {id}")),
                Some(status) => ok_response(vec![("job", status_json(&status))]),
            },
        },
        "wait" => match request.get("id").and_then(Json::as_u64) {
            None => error_response("missing numeric 'id'"),
            Some(id) => {
                let timeout = request
                    .get("timeout_seconds")
                    .and_then(Json::as_f64)
                    .unwrap_or(60.0)
                    .clamp(0.0, 3600.0);
                let status = service.wait(id, Duration::from_secs_f64(timeout));
                // The job's fault plan may ask for the connection carrying
                // its completion to be severed — once, after the wait, so
                // the client observes a drop exactly where it hurts most.
                if service.take_connection_fault(id) {
                    return Reply::Drop;
                }
                match status {
                    None => error_response(&format!("unknown job {id}")),
                    Some(status) => ok_response(vec![("job", status_json(&status))]),
                }
            }
        },
        "cancel" => match request.get("id").and_then(Json::as_u64) {
            None => error_response("missing numeric 'id'"),
            Some(id) => ok_response(vec![("cancelled", Json::Bool(service.cancel(id)))]),
        },
        "stats" => ok_response(vec![("stats", stats_json(service))]),
        "metrics" => ok_response(vec![("text", Json::str(service.metrics_text()))]),
        "stream_open" => stream_open(service, request),
        "stream_append" => stream_append(service, request),
        "stream_status" => match request.get("session").and_then(Json::as_u64) {
            None => error_response("missing numeric 'session'"),
            Some(id) => match service.sessions.summary(id) {
                None => error_response(&format!("unknown session {id}")),
                Some(summary) => ok_response(vec![("session", summary_json(&summary))]),
            },
        },
        "stream_close" => match request.get("session").and_then(Json::as_u64) {
            None => error_response("missing numeric 'session'"),
            Some(id) => ok_response(vec![("closed", Json::Bool(service.stream_close(id)))]),
        },
        "tile_exec" => tile_exec(service, request),
        "shutdown" => {
            let drain = request.get("drain").and_then(Json::as_bool).unwrap_or(true);
            stop.store(true, Ordering::SeqCst);
            service.shutdown(drain);
            ok_response(vec![("stopped", Json::Bool(true))])
        }
        other => error_response(&format!("unknown op '{other}'")),
    })
}

/// What a binary-mode dispatch produces: a response frame, or an
/// instruction to drop the connection (injected connection fault).
enum BinaryReply {
    Message(Message),
    Drop,
}

/// Dispatch one decoded frame. Bulk ops (`tile_exec`, `stream_open`,
/// `stream_append`) get chunk-aware handling; everything else reuses the
/// JSON dispatch wrapped in a chunkless frame. Takes the message by value
/// so chunk planes move instead of copying.
fn dispatch_binary(service: &Service, msg: Message, stop: &AtomicBool) -> BinaryReply {
    match msg.json.get("op").and_then(Json::as_str) {
        Some("tile_exec") => BinaryReply::Message(tile_exec_binary(service, &msg.json)),
        Some("stream_open") if msg.json.get("reference_chunks").is_some() => {
            BinaryReply::Message(Message::json(stream_open_binary(service, msg)))
        }
        Some("stream_append") if msg.json.get("samples_chunks").is_some() => {
            BinaryReply::Message(Message::json(stream_append_binary(service, msg)))
        }
        _ => match dispatch(service, &msg.json, stop) {
            Reply::Drop => BinaryReply::Drop,
            Reply::Json(response) => BinaryReply::Message(Message::json(response)),
        },
    }
}

/// Parse the wire form of a job spec.
///
/// ```json
/// {"input": {"kind": "synthetic", "n": 512, "d": 2, "pattern": 0,
///            "noise": 0.3, "seed": 7},
///  "m": 64, "mode": "fp16", "tiles": 4, "gpus": 1,
///  "priority": "normal", "max_retries": 1}
/// ```
///
/// A CSV input instead reads `{"kind": "csv", "reference": "...",
/// "query": "..."}` (omit `query` for a self-join).
///
/// Resilience fields (all optional): `fault_plan` is a fault-plan spec
/// string (e.g. `"seed=7,kernel@0,stall@3:40"`), `tile_retries` the
/// per-tile retry budget (default 2), `tile_deadline_ms` the per-kernel
/// deadline, `deadline_ms` the whole-job deadline.
pub fn parse_job_spec(job: &Json) -> Result<JobSpec, String> {
    let input = job.get("input").ok_or("missing 'input'")?;
    let kind = input
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing input 'kind'")?;
    let input = match kind {
        "synthetic" => JobInput::Synthetic {
            n: input
                .get("n")
                .and_then(Json::as_u64)
                .ok_or("synthetic input needs 'n'")? as usize,
            d: input.get("d").and_then(Json::as_u64).unwrap_or(1) as usize,
            pattern: input.get("pattern").and_then(Json::as_u64).unwrap_or(0) as usize,
            noise: input.get("noise").and_then(Json::as_f64).unwrap_or(0.3),
            seed: input.get("seed").and_then(Json::as_u64).unwrap_or(42),
        },
        "csv" => JobInput::Csv {
            reference: input
                .get("reference")
                .and_then(Json::as_str)
                .ok_or("csv input needs 'reference'")?
                .into(),
            query: input
                .get("query")
                .and_then(Json::as_str)
                .map(std::path::PathBuf::from),
        },
        other => return Err(format!("unknown input kind '{other}'")),
    };
    let mode = match job.get("mode").and_then(Json::as_str) {
        Some(s) => s.parse::<PrecisionMode>()?,
        None => PrecisionMode::Fp64,
    };
    let priority = match job.get("priority").and_then(Json::as_str) {
        Some(s) => s.parse::<Priority>()?,
        None => Priority::Normal,
    };
    let fault_plan = match job.get("fault_plan").and_then(Json::as_str) {
        Some(spec) => Some(Arc::new(
            spec.parse::<FaultPlan>()
                .map_err(|e| format!("fault_plan: {e}"))?,
        )),
        None => None,
    };
    Ok(JobSpec {
        input,
        m: job.get("m").and_then(Json::as_u64).ok_or("missing 'm'")? as usize,
        mode,
        tiles: job.get("tiles").and_then(Json::as_u64).unwrap_or(1) as usize,
        gpus: job.get("gpus").and_then(Json::as_u64).unwrap_or(1) as usize,
        priority,
        max_retries: job.get("max_retries").and_then(Json::as_u64).unwrap_or(0) as u32,
        fault_plan,
        tile_retries: job.get("tile_retries").and_then(Json::as_u64).unwrap_or(2) as u32,
        fused_rows: job.get("fused_rows").and_then(Json::as_bool),
        tc_chunk_k: job
            .get("tc_chunk_k")
            .and_then(Json::as_u64)
            .map(|k| k as usize),
        tile_deadline_ms: job.get("tile_deadline_ms").and_then(Json::as_u64),
        deadline_ms: job.get("deadline_ms").and_then(Json::as_u64),
    })
}

fn status_json(status: &JobStatus) -> Json {
    let mut pairs = vec![
        ("id", Json::num(status.id as f64)),
        ("state", Json::str(status.state.label())),
        ("priority", Json::str(status.priority.label())),
        ("attempts", Json::num(status.attempts as f64)),
        ("queue_seconds", Json::num(status.queue_seconds)),
    ];
    if let Some(run) = status.run_seconds {
        pairs.push(("run_seconds", Json::num(run)));
    }
    if let Some(error) = &status.error {
        pairs.push(("error", Json::str(error.clone())));
    }
    if let Some(outcome) = &status.outcome {
        pairs.push(("outcome", outcome_json(outcome)));
    }
    Json::obj(pairs)
}

/// The wire summary of a finished job: profile shape plus the per-dimension
/// best match (motif). The full profile stays on the server.
fn outcome_json(outcome: &JobOutcome) -> Json {
    let profile = &outcome.profile;
    let mut motifs = Vec::new();
    for k in 0..profile.dims() {
        let mut best = (f64::INFINITY, -1i64, 0usize);
        for j in 0..profile.n_query() {
            let v = profile.value(j, k);
            if v < best.0 {
                best = (v, profile.index(j, k), j);
            }
        }
        motifs.push(Json::obj(vec![
            ("dim", Json::num(k as f64)),
            ("query", Json::num(best.2 as f64)),
            ("reference", Json::num(best.1 as f64)),
            ("distance", Json::num(best.0)),
        ]));
    }
    Json::obj(vec![
        ("n_query", Json::num(profile.n_query() as f64)),
        ("dims", Json::num(profile.dims() as f64)),
        ("unset_fraction", Json::num(profile.unset_fraction())),
        ("modeled_seconds", Json::num(outcome.modeled_seconds)),
        ("wall_seconds", Json::num(outcome.wall_seconds)),
        ("precalc_hits", Json::num(outcome.precalc_hits as f64)),
        ("precalc_misses", Json::num(outcome.precalc_misses as f64)),
        ("motifs", Json::Arr(motifs)),
    ])
}

fn stats_json(service: &Service) -> Json {
    let s = service.stats();
    Json::obj(vec![
        ("jobs_submitted", Json::num(s.jobs_submitted as f64)),
        ("jobs_rejected", Json::num(s.jobs_rejected as f64)),
        ("jobs_completed", Json::num(s.jobs_completed as f64)),
        ("jobs_failed", Json::num(s.jobs_failed as f64)),
        ("jobs_cancelled", Json::num(s.jobs_cancelled as f64)),
        ("jobs_retried", Json::num(s.jobs_retried as f64)),
        ("queue_depth", Json::num(s.queue_depth as f64)),
        ("jobs_running", Json::num(s.jobs_running as f64)),
        ("devices_leased", Json::num(s.devices_leased as f64)),
        ("precalc_cache_hits", Json::num(s.precalc_cache_hits as f64)),
        (
            "precalc_cache_misses",
            Json::num(s.precalc_cache_misses as f64),
        ),
        (
            "precalc_cache_evictions",
            Json::num(s.precalc_cache_evictions as f64),
        ),
        (
            "precalc_cache_bytes",
            Json::num(s.precalc_cache_bytes as f64),
        ),
        (
            "precalc_cache_hit_rate",
            Json::num(s.precalc_cache_hit_rate),
        ),
        (
            "precalc_single_flight_waits",
            Json::num(s.precalc_single_flight_waits as f64),
        ),
        ("host_workers", Json::num(s.host_workers as f64)),
        (
            "fused_rows_enabled",
            Json::num(f64::from(u8::from(s.fused_rows_enabled))),
        ),
        (
            "eliminated_dispatches",
            Json::num(s.eliminated_dispatches as f64),
        ),
        ("tc_chunk_k", Json::num(s.tc_chunk_k as f64)),
        ("pool_thread_reuses", Json::num(s.pool_thread_reuses as f64)),
        ("buffer_pool_reuses", Json::num(s.buffer_pool_reuses as f64)),
        ("buffer_pool_allocs", Json::num(s.buffer_pool_allocs as f64)),
        ("tile_retries", Json::num(s.tile_retries as f64)),
        (
            "plane_validation_failures",
            Json::num(s.plane_validation_failures as f64),
        ),
        (
            "devices_quarantined",
            Json::num(s.devices_quarantined as f64),
        ),
        (
            "connection_drops_injected",
            Json::num(s.connection_drops_injected as f64),
        ),
        ("stream_opens", Json::num(s.stream_opens as f64)),
        ("stream_appends", Json::num(s.stream_appends as f64)),
        (
            "stream_append_failures",
            Json::num(s.stream_append_failures as f64),
        ),
        (
            "stream_precalc_reuses",
            Json::num(s.stream_precalc_reuses as f64),
        ),
        (
            "stream_segments_reused",
            Json::num(s.stream_segments_reused as f64),
        ),
        (
            "stream_segments_fresh",
            Json::num(s.stream_segments_fresh as f64),
        ),
        (
            "stream_sessions_open",
            Json::num(s.stream_sessions_open as f64),
        ),
        ("wire_bytes_sent", Json::num(s.wire_bytes_sent as f64)),
        (
            "wire_bytes_received",
            Json::num(s.wire_bytes_received as f64),
        ),
        (
            "wire_binary_sessions",
            Json::num(s.wire_binary_sessions as f64),
        ),
        ("wire_frame_errors", Json::num(s.wire_frame_errors as f64)),
        (
            "mean_stream_append_seconds",
            Json::num(s.mean_stream_append_seconds),
        ),
        (
            "worker_busy_seconds",
            Json::Arr(
                s.worker_busy_seconds
                    .iter()
                    .map(|&b| Json::num(b))
                    .collect(),
            ),
        ),
        (
            "mean_queue_wait_seconds",
            Json::num(s.mean_queue_wait_seconds),
        ),
        ("mean_run_seconds", Json::num(s.mean_run_seconds)),
        (
            "kernel_seconds",
            Json::Obj(
                s.kernel_seconds
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::num(*v)))
                    .collect(),
            ),
        ),
    ])
}

/// Encode a value plane as the concatenated hex `f64` bit patterns, 16
/// lowercase hex chars per element. JSON numbers cannot carry `+Inf` (the
/// profile's unset sentinel) or guarantee bit-exact round-trips, so the
/// tile-lease protocol ships value planes through this encoding.
pub fn encode_plane_hex(plane: &[f64]) -> String {
    let mut out = String::with_capacity(plane.len() * 16);
    for v in plane {
        out.push_str(&format!("{:016x}", v.to_bits()));
    }
    out
}

/// Decode a value plane produced by [`encode_plane_hex`], checking the
/// expected element count.
pub fn decode_plane_hex(hex: &str, len: usize) -> Result<Vec<f64>, String> {
    if hex.len() != len * 16 {
        return Err(format!(
            "plane hex length {} does not match {} elements",
            hex.len(),
            len
        ));
    }
    let bytes = hex.as_bytes();
    let mut out = Vec::with_capacity(len);
    for chunk in bytes.chunks_exact(16) {
        let s = std::str::from_utf8(chunk).map_err(|_| "plane hex is not ASCII".to_string())?;
        let bits = u64::from_str_radix(s, 16).map_err(|_| format!("bad plane hex chunk `{s}`"))?;
        out.push(f64::from_bits(bits));
    }
    Ok(out)
}

/// Encode an index plane as concatenated hex `i64` bit patterns — the
/// same 16-char cell as [`encode_plane_hex`], so the JSON fallback stops
/// shipping (and parsing) one JSON number token per cell.
pub fn encode_index_plane_hex(plane: &[i64]) -> String {
    let mut out = String::with_capacity(plane.len() * 16);
    for v in plane {
        out.push_str(&format!("{:016x}", *v as u64));
    }
    out
}

/// Decode an index plane produced by [`encode_index_plane_hex`], checking
/// the expected element count.
pub fn decode_index_plane_hex(hex: &str, len: usize) -> Result<Vec<i64>, String> {
    if hex.len() != len * 16 {
        return Err(format!(
            "index hex length {} does not match {} elements",
            hex.len(),
            len
        ));
    }
    let bytes = hex.as_bytes();
    let mut out = Vec::with_capacity(len);
    for chunk in bytes.chunks_exact(16) {
        let s = std::str::from_utf8(chunk).map_err(|_| "index hex is not ASCII".to_string())?;
        let bits = u64::from_str_radix(s, 16).map_err(|_| format!("bad index hex chunk `{s}`"))?;
        out.push(bits as i64);
    }
    Ok(out)
}

/// Parse a `tile_exec` request's job spec and tile list (shared by the
/// JSON and binary transports).
fn parse_tile_exec(request: &Json) -> Result<(JobSpec, Vec<usize>), String> {
    let job = request.get("job").ok_or("missing 'job'")?;
    let spec = parse_job_spec(job)?;
    let tiles = request
        .get("tiles")
        .and_then(Json::as_arr)
        .ok_or("missing 'tiles' array")?;
    if tiles.is_empty() {
        return Err("'tiles' must name at least one tile".into());
    }
    let mut indices = Vec::with_capacity(tiles.len());
    for t in tiles {
        match t.as_u64() {
            Some(i) => indices.push(i as usize),
            None => return Err("tile indices must be non-negative integers".into()),
        }
    }
    Ok((spec, indices))
}

/// The response trailer shared by both `tile_exec` transports.
fn tile_exec_trailer(run: &mdmp_core::TileSubsetRun) -> Vec<(&'static str, Json)> {
    vec![
        ("precalc_hits", Json::num(run.precalc_hits as f64)),
        ("precalc_misses", Json::num(run.precalc_misses as f64)),
        ("tile_retries", Json::num(run.tile_retries as f64)),
        (
            "plane_validation_failures",
            Json::num(run.plane_validation_failures as f64),
        ),
        (
            "quarantined_devices",
            Json::Arr(
                run.quarantined_devices
                    .iter()
                    .map(|&d| Json::num(d as f64))
                    .collect(),
            ),
        ),
    ]
}

/// Serve a `tile_exec` request: parse the job spec and tile list, execute
/// the subset synchronously, and return the per-tile partial profiles.
fn tile_exec(service: &Service, request: &Json) -> Json {
    let (spec, indices) = match parse_tile_exec(request) {
        Ok(parsed) => parsed,
        Err(e) => return error_response(&e),
    };
    match service.execute_tile_subset(&spec, &indices) {
        Err(e) => error_response(&e),
        Ok(run) => {
            let tiles: Vec<Json> = run.results.iter().map(tile_result_json).collect();
            let mut payload = vec![("tiles", Json::Arr(tiles))];
            payload.append(&mut tile_exec_trailer(&run));
            ok_response(payload)
        }
    }
}

/// Serve a `tile_exec` request on the binary transport: the per-tile
/// planes ride as frame chunks referenced by `p_chunk`/`i_chunk` indices
/// instead of ASCII encodings.
fn tile_exec_binary(service: &Service, request: &Json) -> Message {
    let (spec, indices) = match parse_tile_exec(request) {
        Ok(parsed) => parsed,
        Err(e) => return Message::json(error_response(&e)),
    };
    match service.execute_tile_subset(&spec, &indices) {
        Err(e) => Message::json(error_response(&e)),
        Ok(run) => {
            let mut chunks = Vec::with_capacity(run.results.len() * 2);
            let mut tiles = Vec::with_capacity(run.results.len());
            let mut values = Vec::new();
            let mut indices = Vec::new();
            for result in &run.results {
                let profile = &result.profile;
                mdmp_core::profile_planes_k_major(profile, &mut values, &mut indices);
                let p_chunk = chunks.len();
                chunks.push(Chunk::F64(std::mem::take(&mut values)));
                let i_chunk = chunks.len();
                chunks.push(Chunk::I64(std::mem::take(&mut indices)));
                tiles.push(Json::obj(vec![
                    ("tile", Json::num(result.tile.index as f64)),
                    ("col0", Json::num(result.tile.col0 as f64)),
                    ("n_query", Json::num(profile.n_query() as f64)),
                    ("dims", Json::num(profile.dims() as f64)),
                    ("p_chunk", Json::num(p_chunk as f64)),
                    ("i_chunk", Json::num(i_chunk as f64)),
                    ("device_seconds", Json::num(result.device_seconds)),
                    ("precalc_hit", Json::Bool(result.precalc_cached)),
                ]));
            }
            let mut payload = vec![("tiles", Json::Arr(tiles))];
            payload.append(&mut tile_exec_trailer(&run));
            Message {
                json: ok_response(payload),
                chunks,
            }
        }
    }
}

/// The wire form of one executed tile: identity (`tile`, `col0`), shape
/// (`n_query`, `dims`), both planes as hex bit patterns (k-major, the
/// [`mdmp_core::MatrixProfile::from_raw`] order), and the modelled device
/// seconds the tile cost.
fn tile_result_json(result: &mdmp_core::SubsetTileResult) -> Json {
    let profile = &result.profile;
    let mut values = Vec::new();
    let mut indices = Vec::new();
    mdmp_core::profile_planes_k_major(profile, &mut values, &mut indices);
    Json::obj(vec![
        ("tile", Json::num(result.tile.index as f64)),
        ("col0", Json::num(result.tile.col0 as f64)),
        ("n_query", Json::num(profile.n_query() as f64)),
        ("dims", Json::num(profile.dims() as f64)),
        ("p_hex", Json::str(encode_plane_hex(&values))),
        ("i_hex", Json::str(encode_index_plane_hex(&indices))),
        ("device_seconds", Json::num(result.device_seconds)),
        ("precalc_hit", Json::Bool(result.precalc_cached)),
    ])
}

fn summary_json(summary: &SessionSummary) -> Json {
    Json::obj(vec![
        ("session", Json::num(summary.id as f64)),
        ("n_query", Json::num(summary.n_query as f64)),
        ("n_reference", Json::num(summary.n_reference as f64)),
        ("dims", Json::num(summary.dims as f64)),
    ])
}

fn parse_series(value: &Json) -> Result<MultiDimSeries, String> {
    // `from_dims` asserts equal lengths; a ragged wire payload must be a
    // typed error, not a dropped connection.
    series_from_dims(parse_samples(value)?)
}

/// Parse per-dimension sample slices without requiring equal lengths — the
/// session layer reports shape mismatches as typed errors.
fn parse_samples(value: &Json) -> Result<Vec<Vec<f64>>, String> {
    let dims = value.as_arr().ok_or("series must be an array of arrays")?;
    if dims.is_empty() {
        return Err("series needs at least one dimension".into());
    }
    let mut out = Vec::with_capacity(dims.len());
    for dim in dims {
        let samples = dim.as_arr().ok_or("each dimension must be an array")?;
        let mut xs = Vec::with_capacity(samples.len());
        for s in samples {
            xs.push(s.as_f64().ok_or("samples must be numbers")?);
        }
        out.push(xs);
    }
    Ok(out)
}

/// Parse the `m` and `mode` fields shared by both `stream_open`
/// transports.
fn parse_stream_config(request: &Json) -> Result<(usize, PrecisionMode), String> {
    let m = match request.get("m").and_then(Json::as_u64) {
        Some(m) if m >= 2 => m as usize,
        _ => return Err("missing 'm' (>= 2)".into()),
    };
    let mode = match request.get("mode").and_then(Json::as_str) {
        Some(s) => s.parse::<PrecisionMode>()?,
        None => PrecisionMode::Fp64,
    };
    Ok((m, mode))
}

fn stream_open(service: &Service, request: &Json) -> Json {
    let (m, mode) = match parse_stream_config(request) {
        Ok(config) => config,
        Err(e) => return error_response(&e),
    };
    let reference = match request.get("reference").map(parse_series) {
        Some(Ok(series)) => series,
        Some(Err(e)) => return error_response(&format!("reference: {e}")),
        None => return error_response("missing 'reference'"),
    };
    let query = match request.get("query").map(parse_series) {
        Some(Ok(series)) => series,
        Some(Err(e)) => return error_response(&format!("query: {e}")),
        None => reference.clone(),
    };
    match service.stream_open(reference, query, MdmpConfig::new(m, mode)) {
        Ok(summary) => ok_response(vec![("session", summary_json(&summary))]),
        Err(e) => error_response(&e),
    }
}

fn append_report_json(report: &crate::session::AppendReport) -> Json {
    ok_response(vec![
        ("session", summary_json(&report.summary)),
        ("reused_precalc", Json::Bool(report.reused_precalc)),
        ("reused_segments", Json::num(report.reused_segments as f64)),
        ("fresh_segments", Json::num(report.fresh_segments as f64)),
    ])
}

fn stream_append(service: &Service, request: &Json) -> Json {
    let Some(id) = request.get("session").and_then(Json::as_u64) else {
        return error_response("missing numeric 'session'");
    };
    let side = match request.get("side").and_then(Json::as_str) {
        Some(s) => match s.parse::<AppendSide>() {
            Ok(side) => side,
            Err(e) => return error_response(&e),
        },
        None => AppendSide::Query,
    };
    let samples = match request.get("samples").map(parse_samples) {
        Some(Ok(samples)) => samples,
        Some(Err(e)) => return error_response(&format!("samples: {e}")),
        None => return error_response("missing 'samples'"),
    };
    match service.stream_append(id, side, &samples) {
        Ok(report) => append_report_json(&report),
        Err(e) => error_response(&e),
    }
}

/// Pull `count` float chunks off the frame as per-dimension sample
/// slices.
fn chunk_series(
    chunks: &mut std::vec::IntoIter<Chunk>,
    count: usize,
    what: &str,
) -> Result<Vec<Vec<f64>>, String> {
    if count == 0 {
        return Err(format!("{what} needs at least one dimension"));
    }
    // The declared count is client-controlled (any u64 the JSON header
    // carries); cap it by what the frame actually holds before sizing
    // the allocation.
    if count > chunks.len() {
        return Err(format!("{what}: frame carries fewer chunks than declared"));
    }
    let mut dims = Vec::with_capacity(count);
    for _ in 0..count {
        match chunks.next() {
            Some(Chunk::F64(samples)) => dims.push(samples),
            Some(Chunk::I64(_)) => return Err(format!("{what}: expected float chunks")),
            None => return Err(format!("{what}: frame carries fewer chunks than declared")),
        }
    }
    Ok(dims)
}

/// Build a series from per-dimension slices, reporting raggedness as a
/// typed error (`from_dims` asserts equal lengths).
fn series_from_dims(dims: Vec<Vec<f64>>) -> Result<MultiDimSeries, String> {
    let len = dims.first().map_or(0, Vec::len);
    if dims.iter().any(|d| d.len() != len) {
        return Err("all dimensions must have the same length".into());
    }
    Ok(MultiDimSeries::from_dims(dims))
}

/// Serve a `stream_open` whose series arrive as binary chunks — one float
/// chunk per dimension, `reference_chunks` of them, then `query_chunks`
/// (omit for a self-join).
fn stream_open_binary(service: &Service, msg: Message) -> Json {
    let request = &msg.json;
    let (m, mode) = match parse_stream_config(request) {
        Ok(config) => config,
        Err(e) => return error_response(&e),
    };
    let Some(ref_count) = request.get("reference_chunks").and_then(Json::as_u64) else {
        return error_response("missing numeric 'reference_chunks'");
    };
    let query_count = request.get("query_chunks").and_then(Json::as_u64);
    let mut chunks = msg.chunks.into_iter();
    let reference = match chunk_series(&mut chunks, ref_count as usize, "reference")
        .and_then(series_from_dims)
    {
        Ok(series) => series,
        Err(e) => return error_response(&format!("reference: {e}")),
    };
    let query = match query_count {
        Some(count) => {
            match chunk_series(&mut chunks, count as usize, "query").and_then(series_from_dims) {
                Ok(series) => series,
                Err(e) => return error_response(&format!("query: {e}")),
            }
        }
        None => reference.clone(),
    };
    if chunks.next().is_some() {
        return error_response("frame carries more chunks than declared");
    }
    match service.stream_open(reference, query, MdmpConfig::new(m, mode)) {
        Ok(summary) => ok_response(vec![("session", summary_json(&summary))]),
        Err(e) => error_response(&e),
    }
}

/// Serve a `stream_append` whose samples arrive as binary chunks — one
/// float chunk per dimension, `samples_chunks` of them.
fn stream_append_binary(service: &Service, msg: Message) -> Json {
    let request = &msg.json;
    let Some(id) = request.get("session").and_then(Json::as_u64) else {
        return error_response("missing numeric 'session'");
    };
    let side = match request.get("side").and_then(Json::as_str) {
        Some(s) => match s.parse::<AppendSide>() {
            Ok(side) => side,
            Err(e) => return error_response(&e),
        },
        None => AppendSide::Query,
    };
    let Some(count) = request.get("samples_chunks").and_then(Json::as_u64) else {
        return error_response("missing numeric 'samples_chunks'");
    };
    let mut chunks = msg.chunks.into_iter();
    let samples = match chunk_series(&mut chunks, count as usize, "samples") {
        Ok(samples) => samples,
        Err(e) => return error_response(&format!("samples: {e}")),
    };
    if chunks.next().is_some() {
        return error_response("frame carries more chunks than declared");
    }
    match service.stream_append(id, side, &samples) {
        Ok(report) => append_report_json(&report),
        Err(e) => error_response(&e),
    }
}

/// One-shot client helper: connect, send `request` as one line, read one
/// response line.
pub fn request(addr: &str, request: &Json) -> io::Result<Json> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    writeln!(stream, "{request}")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Json::parse(line.trim()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServiceConfig;

    fn wave(offset: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| ((t + offset) as f64 * 0.23).sin() + 0.01 * (t % 7) as f64)
            .collect()
    }

    #[test]
    fn ping_submit_wait_over_tcp() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            devices: 1,
            ..ServiceConfig::default()
        });
        let mut server = serve(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();

        let pong = request(&addr, &Json::obj(vec![("op", Json::str("ping"))])).unwrap();
        assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));

        let job = Json::obj(vec![
            (
                "input",
                Json::obj(vec![
                    ("kind", Json::str("synthetic")),
                    ("n", Json::num(48.0)),
                    ("d", Json::num(1.0)),
                    ("seed", Json::num(7.0)),
                ]),
            ),
            ("m", Json::num(8.0)),
            ("mode", Json::str("fp32")),
        ]);
        let submitted = request(
            &addr,
            &Json::obj(vec![("op", Json::str("submit")), ("job", job)]),
        )
        .unwrap();
        assert_eq!(submitted.get("ok"), Some(&Json::Bool(true)), "{submitted}");
        let id = submitted.get("id").unwrap().as_u64().unwrap();

        let done = request(
            &addr,
            &Json::obj(vec![
                ("op", Json::str("wait")),
                ("id", Json::num(id as f64)),
                ("timeout_seconds", Json::num(30.0)),
            ]),
        )
        .unwrap();
        let job = done.get("job").unwrap();
        assert_eq!(job.get("state").unwrap().as_str(), Some("done"), "{done}");
        let outcome = job.get("outcome").unwrap();
        assert!(outcome.get("n_query").unwrap().as_u64().unwrap() > 0);

        server.stop();
        service.shutdown(true);
    }

    #[test]
    fn streaming_session_over_tcp() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            devices: 1,
            ..ServiceConfig::default()
        });
        let mut server = serve(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();

        let series = |off: usize, n: usize| {
            Json::Arr(vec![Json::Arr(
                wave(off, n).into_iter().map(Json::num).collect(),
            )])
        };
        let opened = request(
            &addr,
            &Json::obj(vec![
                ("op", Json::str("stream_open")),
                ("m", Json::num(8.0)),
                ("reference", series(0, 80)),
                ("query", series(29, 48)),
            ]),
        )
        .unwrap();
        assert_eq!(opened.get("ok"), Some(&Json::Bool(true)), "{opened}");
        let session = opened
            .get("session")
            .unwrap()
            .get("session")
            .unwrap()
            .as_u64()
            .unwrap();

        let appended = request(
            &addr,
            &Json::obj(vec![
                ("op", Json::str("stream_append")),
                ("session", Json::num(session as f64)),
                ("side", Json::str("query")),
                ("samples", series(77, 16)),
            ]),
        )
        .unwrap();
        assert_eq!(appended.get("ok"), Some(&Json::Bool(true)), "{appended}");
        let n_query = appended
            .get("session")
            .unwrap()
            .get("n_query")
            .unwrap()
            .as_u64()
            .unwrap();
        assert_eq!(n_query, (48 - 8 + 1) + 16);
        assert_eq!(
            appended.get("reused_precalc"),
            Some(&Json::Bool(true)),
            "{appended}"
        );

        let closed = request(
            &addr,
            &Json::obj(vec![
                ("op", Json::str("stream_close")),
                ("session", Json::num(session as f64)),
            ]),
        )
        .unwrap();
        assert_eq!(closed.get("closed"), Some(&Json::Bool(true)));

        server.stop();
        service.shutdown(true);
    }

    #[test]
    fn plane_hex_round_trips_inf_and_nan_bits() {
        let plane = vec![f64::INFINITY, -1.5, 0.0, f64::NAN, 1e-300];
        let hex = encode_plane_hex(&plane);
        assert_eq!(hex.len(), plane.len() * 16);
        let back = decode_plane_hex(&hex, plane.len()).unwrap();
        for (a, b) in plane.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_plane_hex(&hex, 4).is_err());
        assert!(decode_plane_hex("zz", 0).is_err());
    }

    #[test]
    fn tile_exec_round_trips_partial_profiles() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            devices: 1,
            ..ServiceConfig::default()
        });
        let mut server = serve(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();

        let job = Json::obj(vec![
            (
                "input",
                Json::obj(vec![
                    ("kind", Json::str("synthetic")),
                    ("n", Json::num(96.0)),
                    ("d", Json::num(2.0)),
                    ("seed", Json::num(7.0)),
                ]),
            ),
            ("m", Json::num(8.0)),
            ("mode", Json::str("fp32")),
            ("tiles", Json::num(4.0)),
        ]);
        let reply = request(
            &addr,
            &Json::obj(vec![
                ("op", Json::str("tile_exec")),
                ("job", job),
                ("tiles", Json::Arr(vec![Json::num(1.0), Json::num(3.0)])),
            ]),
        )
        .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        let tiles = reply.get("tiles").unwrap().as_arr().unwrap();
        assert_eq!(tiles.len(), 2);
        for (expect, tile) in [1.0, 3.0].iter().zip(tiles) {
            assert_eq!(tile.get("tile").unwrap().as_f64(), Some(*expect));
            let n_query = tile.get("n_query").unwrap().as_u64().unwrap() as usize;
            let dims = tile.get("dims").unwrap().as_u64().unwrap() as usize;
            let hex = tile.get("p_hex").unwrap().as_str().unwrap();
            let plane = decode_plane_hex(hex, n_query * dims).unwrap();
            assert!(plane.iter().all(|v| v.is_finite() || *v == f64::INFINITY));
            let i_hex = tile.get("i_hex").unwrap().as_str().unwrap();
            let index_plane = decode_index_plane_hex(i_hex, n_query * dims).unwrap();
            assert_eq!(index_plane.len(), n_query * dims);
            assert!(index_plane.iter().all(|&i| i >= -1));
            assert!(tile.get("device_seconds").unwrap().as_f64().unwrap() > 0.0);
        }
        assert_eq!(service.stats().tile_exec_requests, 1);
        assert_eq!(service.stats().tiles_served, 2);

        // Bad requests: missing tiles, empty tiles, out-of-range index.
        let job = || {
            Json::obj(vec![
                (
                    "input",
                    Json::obj(vec![
                        ("kind", Json::str("synthetic")),
                        ("n", Json::num(96.0)),
                    ]),
                ),
                ("m", Json::num(8.0)),
                ("tiles", Json::num(4.0)),
            ])
        };
        let r = request(
            &addr,
            &Json::obj(vec![("op", Json::str("tile_exec")), ("job", job())]),
        )
        .unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        let r = request(
            &addr,
            &Json::obj(vec![
                ("op", Json::str("tile_exec")),
                ("job", job()),
                ("tiles", Json::Arr(vec![Json::num(99.0)])),
            ]),
        )
        .unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(service.stats().tile_exec_failures, 1);

        server.stop();
        service.shutdown(true);
    }

    #[test]
    fn stream_append_malformed_payloads_get_typed_errors() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            devices: 1,
            ..ServiceConfig::default()
        });
        let mut server = serve(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();

        let dim =
            |off: usize, n: usize| Json::Arr(wave(off, n).into_iter().map(Json::num).collect());

        // Ragged open payload: typed error, connection stays alive.
        let r = request(
            &addr,
            &Json::obj(vec![
                ("op", Json::str("stream_open")),
                ("m", Json::num(8.0)),
                ("reference", Json::Arr(vec![dim(0, 64), dim(3, 63)])),
            ]),
        )
        .unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r}");
        assert!(
            r.get("error").unwrap().as_str().unwrap().contains("length"),
            "{r}"
        );

        // A healthy two-dimensional session to append against.
        let opened = request(
            &addr,
            &Json::obj(vec![
                ("op", Json::str("stream_open")),
                ("m", Json::num(8.0)),
                ("reference", Json::Arr(vec![dim(0, 64), dim(7, 64)])),
            ]),
        )
        .unwrap();
        assert_eq!(opened.get("ok"), Some(&Json::Bool(true)), "{opened}");
        let session = opened
            .get("session")
            .unwrap()
            .get("session")
            .unwrap()
            .as_u64()
            .unwrap();
        let append = |samples: Json, id: u64| {
            request(
                &addr,
                &Json::obj(vec![
                    ("op", Json::str("stream_append")),
                    ("session", Json::num(id as f64)),
                    ("samples", samples),
                ]),
            )
            .unwrap()
        };

        // Mismatched dimension count.
        let r = append(Json::Arr(vec![dim(0, 8)]), session);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r}");
        assert!(
            r.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("dimension"),
            "{r}"
        );
        // Unequal slice lengths.
        let r = append(Json::Arr(vec![dim(0, 8), dim(1, 7)]), session);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r}");
        assert!(
            r.get("error").unwrap().as_str().unwrap().contains("equal"),
            "{r}"
        );
        // Empty append.
        let r = append(
            Json::Arr(vec![Json::Arr(vec![]), Json::Arr(vec![])]),
            session,
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r}");
        assert!(
            r.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("no samples"),
            "{r}"
        );
        // Unknown session.
        let r = append(Json::Arr(vec![dim(0, 8), dim(1, 8)]), 4040);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r}");
        assert!(
            r.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("unknown session"),
            "{r}"
        );

        // The server is still up and a well-formed append succeeds and
        // shows on the metrics surfaces.
        let r = append(Json::Arr(vec![dim(64, 8), dim(71, 8)]), session);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
        let stats = service.stats();
        assert_eq!(stats.stream_opens, 1);
        assert_eq!(stats.stream_appends, 1);
        assert_eq!(stats.stream_append_failures, 4);
        assert_eq!(stats.stream_precalc_reuses, 1);
        assert_eq!(stats.stream_sessions_open, 1);
        assert!(stats.stream_segments_reused > 0);
        assert!(stats.mean_stream_append_seconds > 0.0);
        let text = request(&addr, &Json::obj(vec![("op", Json::str("metrics"))]))
            .unwrap()
            .get("text")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert!(text.contains("mdmp_stream_appends_total 1"), "{text}");
        assert!(text.contains("mdmp_stream_append_failures_total 4"));
        assert!(text.contains("mdmp_stream_sessions_open 1"));

        server.stop();
        service.shutdown(true);
    }

    #[test]
    fn bad_requests_get_errors() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            devices: 1,
            ..ServiceConfig::default()
        });
        let mut server = serve(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();

        let r = request(&addr, &Json::obj(vec![("op", Json::str("nope"))])).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        let r = request(&addr, &Json::obj(vec![("x", Json::num(1.0))])).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        let r = request(
            &addr,
            &Json::obj(vec![("op", Json::str("status")), ("id", Json::num(404.0))]),
        )
        .unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));

        server.stop();
        service.shutdown(true);
    }
}

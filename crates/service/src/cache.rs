//! The precalculation cache: per-tile [`TilePrecalc`] blocks keyed by the
//! exact inputs of the `precalculation` kernel — the two series'
//! fingerprints, the window `m`, the precalc precision (format + Kahan
//! flag) and the tile count. A repeated query finds every tile's precalc
//! in the cache and the driver skips the `Precalc` kernel entirely (see
//! [`mdmp_core::run_with_mode_cached`]).
//!
//! Because [`TilePrecalc`] stores the P-precision values exactly in f64,
//! modes sharing a precalc configuration share entries: FP32, Mixed and
//! both FP8 modes all precalculate in FP32, so a Mixed job warms the cache
//! for a later FP8 job over the same series.
//!
//! Eviction is LRU under a byte budget, whole runs at a time.

use mdmp_core::{PrecalcStore, TilePrecalc};
use mdmp_data::MultiDimSeries;
use mdmp_precision::{Format, PrecisionMode};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// 64-bit FNV-1a over a series' shape and raw f64 bit patterns.
pub fn series_fingerprint(series: &MultiDimSeries) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(series.dims() as u64);
    eat(series.len() as u64);
    for k in 0..series.dims() {
        for &x in series.dim(k) {
            eat(x.to_bits());
        }
    }
    h
}

/// Everything the `precalculation` kernel's output depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Reference series fingerprint.
    pub reference: u64,
    /// Query series fingerprint.
    pub query: u64,
    /// Window length `m`.
    pub m: usize,
    /// Precalculation format of the mode.
    pub precalc_format: Format,
    /// Whether the precalculation is Kahan-compensated.
    pub kahan: bool,
    /// Tile count (tile boundaries are derived from it deterministically).
    pub n_tiles: usize,
}

impl CacheKey {
    /// The key for a job over the given series and configuration.
    pub fn for_job(
        reference: &MultiDimSeries,
        query: &MultiDimSeries,
        m: usize,
        mode: PrecisionMode,
        n_tiles: usize,
    ) -> CacheKey {
        CacheKey {
            reference: series_fingerprint(reference),
            query: series_fingerprint(query),
            m,
            precalc_format: mode.precalc_format(),
            kahan: mode.compensated_precalc(),
            n_tiles,
        }
    }
}

#[derive(Debug)]
struct CacheEntry {
    tiles: HashMap<usize, Arc<TilePrecalc>>,
    bytes: u64,
    last_used: u64,
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a tile.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Runs evicted by the byte budget.
    pub evictions: u64,
    /// Current size in bytes.
    pub bytes: u64,
    /// Cached runs.
    pub entries: usize,
}

/// A thread-safe LRU cache of per-run tile precalculations.
#[derive(Debug)]
pub struct PrecalcCache {
    inner: Mutex<HashMap<CacheKey, CacheEntry>>,
    budget_bytes: u64,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PrecalcCache {
    /// A cache bounded by `budget_bytes` of precalc payload.
    pub fn new(budget_bytes: u64) -> PrecalcCache {
        PrecalcCache {
            inner: Mutex::new(HashMap::new()),
            budget_bytes,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up one tile's precalc.
    pub fn lookup(&self, key: &CacheKey, tile_index: usize) -> Option<Arc<TilePrecalc>> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = self.inner.lock().unwrap();
        let found = map.get_mut(key).and_then(|entry| {
            entry.last_used = stamp;
            entry.tiles.get(&tile_index).cloned()
        });
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert one tile's precalc, evicting least-recently-used runs if the
    /// byte budget is exceeded (the incoming run is never evicted).
    pub fn insert(&self, key: &CacheKey, tile_index: usize, pre: &Arc<TilePrecalc>) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let added = pre.approx_bytes();
        let mut map = self.inner.lock().unwrap();
        let entry = map.entry(key.clone()).or_insert_with(|| CacheEntry {
            tiles: HashMap::new(),
            bytes: 0,
            last_used: stamp,
        });
        entry.last_used = stamp;
        if entry.tiles.insert(tile_index, Arc::clone(pre)).is_none() {
            entry.bytes += added;
        }
        // Evict whole runs, oldest first, until within budget.
        while Self::total_bytes(&map) > self.budget_bytes {
            let Some(victim) = map
                .iter()
                .filter(|(k, _)| *k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break; // only the incoming run remains; keep it
            };
            map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn total_bytes(map: &HashMap<CacheKey, CacheEntry>) -> u64 {
        map.values().map(|e| e.bytes).sum()
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let map = self.inner.lock().unwrap();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: Self::total_bytes(&map),
            entries: map.len(),
        }
    }

    /// Drop every entry.
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }

    /// A [`PrecalcStore`] view of this cache scoped to one run's key, for
    /// passing to [`mdmp_core::run_with_mode_cached`].
    pub fn store_for<'a>(&'a self, key: CacheKey) -> RunStore<'a> {
        RunStore { cache: self, key }
    }
}

/// A per-run adapter binding the shared cache to one [`CacheKey`].
pub struct RunStore<'a> {
    cache: &'a PrecalcCache,
    key: CacheKey,
}

impl PrecalcStore for RunStore<'_> {
    fn lookup(&mut self, tile_index: usize) -> Option<Arc<TilePrecalc>> {
        self.cache.lookup(&self.key, tile_index)
    }

    fn store(&mut self, tile_index: usize, pre: &Arc<TilePrecalc>) {
        self.cache.insert(&self.key, tile_index, pre);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdmp_core::{compute_tile_precalc, MdmpConfig, Tile};

    fn series(seed: u64, d: usize, len: usize) -> MultiDimSeries {
        let dims = (0..d)
            .map(|k| {
                (0..len)
                    .map(|t| ((t + k) as f64 * 0.21 + seed as f64).sin())
                    .collect()
            })
            .collect();
        MultiDimSeries::from_dims(dims)
    }

    fn sample_precalc(len: usize) -> Arc<TilePrecalc> {
        let r = series(1, 1, len);
        let q = series(2, 1, len);
        let tile = Tile {
            index: 0,
            row0: 0,
            rows: len - 7,
            col0: 0,
            cols: len - 7,
        };
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
        Arc::new(compute_tile_precalc::<f64>(&r, &q, &tile, &cfg, false))
    }

    #[test]
    fn fingerprint_distinguishes_series() {
        let a = series(1, 2, 64);
        let b = series(2, 2, 64);
        assert_ne!(series_fingerprint(&a), series_fingerprint(&b));
        assert_eq!(series_fingerprint(&a), series_fingerprint(&a.clone()));
    }

    #[test]
    fn shared_precalc_format_shares_keys() {
        let r = series(1, 2, 64);
        let q = series(2, 2, 64);
        // FP32 and Mixed both precalculate in FP32 without Kahan.
        let k32 = CacheKey::for_job(&r, &q, 8, PrecisionMode::Fp32, 4);
        let kmx = CacheKey::for_job(&r, &q, 8, PrecisionMode::Mixed, 4);
        assert_eq!(k32, kmx);
        // FP16 and FP16C differ in the Kahan flag.
        let k16 = CacheKey::for_job(&r, &q, 8, PrecisionMode::Fp16, 4);
        let k16c = CacheKey::for_job(&r, &q, 8, PrecisionMode::Fp16c, 4);
        assert_ne!(k16, k16c);
    }

    #[test]
    fn lookup_miss_then_hit() {
        let cache = PrecalcCache::new(u64::MAX);
        let r = series(1, 1, 64);
        let q = series(2, 1, 64);
        let key = CacheKey::for_job(&r, &q, 8, PrecisionMode::Fp64, 1);
        assert!(cache.lookup(&key, 0).is_none());
        let pre = sample_precalc(64);
        cache.insert(&key, 0, &pre);
        assert!(cache.lookup(&key, 0).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(stats.bytes > 0);
    }

    #[test]
    fn lru_eviction_under_byte_budget() {
        let pre = sample_precalc(64);
        let budget = pre.approx_bytes() * 2 + 1;
        let cache = PrecalcCache::new(budget);
        let r = series(1, 1, 64);
        let mk = |seed| {
            let q = series(seed, 1, 64);
            CacheKey::for_job(&r, &q, 8, PrecisionMode::Fp64, 1)
        };
        let (k1, k2, k3) = (mk(10), mk(20), mk(30));
        cache.insert(&k1, 0, &pre);
        cache.insert(&k2, 0, &pre);
        // Touch k1 so k2 is the LRU when k3 arrives.
        assert!(cache.lookup(&k1, 0).is_some());
        cache.insert(&k3, 0, &pre);
        assert!(cache.lookup(&k1, 0).is_some(), "recently used survives");
        assert!(cache.lookup(&k2, 0).is_none(), "LRU run evicted");
        assert!(cache.lookup(&k3, 0).is_some(), "incoming run kept");
        assert_eq!(cache.stats().evictions, 1);
    }
}

//! The precalculation cache: per-tile [`TilePrecalc`] blocks keyed by the
//! exact inputs of the `precalculation` kernel — the two series'
//! fingerprints, the window `m`, the precalc precision (format + Kahan
//! flag) and the tile count. A repeated query finds every tile's precalc
//! in the cache and the driver skips the `Precalc` kernel entirely (see
//! [`mdmp_core::run_with_mode_cached`]).
//!
//! Because [`TilePrecalc`] stores the P-precision values exactly in f64,
//! modes sharing a precalc configuration share entries: FP32, Mixed and
//! both FP8 modes all precalculate in FP32, so a Mixed job warms the cache
//! for a later FP8 job over the same series.
//!
//! Eviction is LRU under a byte budget, whole runs at a time.

use crate::sync;
use mdmp_core::{PrecalcStore, TilePrecalc};
use mdmp_data::MultiDimSeries;
use mdmp_precision::{Format, PrecisionMode};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// 64-bit FNV-1a over a series' shape and raw f64 bit patterns.
pub fn series_fingerprint(series: &MultiDimSeries) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(series.dims() as u64);
    eat(series.len() as u64);
    for k in 0..series.dims() {
        for &x in series.dim(k) {
            eat(x.to_bits());
        }
    }
    h
}

/// Everything the `precalculation` kernel's output depends on.
///
/// `Ord` so the cache maps can be `BTreeMap`s: eviction scans iterate
/// them, and ordered iteration keeps LRU tie-breaks deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    /// Reference series fingerprint.
    pub reference: u64,
    /// Query series fingerprint.
    pub query: u64,
    /// Window length `m`.
    pub m: usize,
    /// Precalculation format of the mode.
    pub precalc_format: Format,
    /// Whether the precalculation is Kahan-compensated.
    pub kahan: bool,
    /// Tile count (tile boundaries are derived from it deterministically).
    pub n_tiles: usize,
}

impl CacheKey {
    /// The key for a job over the given series and configuration.
    pub fn for_job(
        reference: &MultiDimSeries,
        query: &MultiDimSeries,
        m: usize,
        mode: PrecisionMode,
        n_tiles: usize,
    ) -> CacheKey {
        CacheKey {
            reference: series_fingerprint(reference),
            query: series_fingerprint(query),
            m,
            precalc_format: mode.precalc_format(),
            kahan: mode.compensated_precalc(),
            n_tiles,
        }
    }
}

#[derive(Debug)]
struct CacheEntry {
    tiles: BTreeMap<usize, Arc<TilePrecalc>>,
    bytes: u64,
    last_used: u64,
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a tile.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Runs evicted by the byte budget.
    pub evictions: u64,
    /// Current size in bytes.
    pub bytes: u64,
    /// Cached runs.
    pub entries: usize,
    /// Concurrent misses coalesced by single-flight: lookups that waited
    /// for another thread's in-progress computation instead of repeating
    /// it.
    pub single_flight_waits: u64,
}

/// A computation in progress for one `(run, tile)` pair; followers block
/// on `ready` until the leader publishes `Done` (or `Poisoned`, if the
/// leader panicked mid-compute).
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    ready: Condvar,
}

#[derive(Debug)]
enum FlightState {
    Pending,
    Done(Arc<TilePrecalc>),
    Poisoned,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            state: Mutex::new(FlightState::Pending),
            ready: Condvar::new(),
        }
    }
}

enum FlightRole {
    Leader(Arc<Flight>),
    Follower(Arc<Flight>),
}

/// Publishes the leader's outcome when dropped — `Done` on success, the
/// default `Poisoned` if `compute` unwound — then wakes all followers and
/// retires the flight.
struct FlightGuard<'a> {
    cache: &'a PrecalcCache,
    key: &'a CacheKey,
    tile_index: usize,
    flight: &'a Flight,
    publish: FlightState,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let outcome = std::mem::replace(&mut self.publish, FlightState::Poisoned);
        *sync::lock(&self.flight.state) = outcome;
        self.flight.ready.notify_all();
        sync::lock(&self.cache.inflight).remove(&(self.key.clone(), self.tile_index));
    }
}

/// A thread-safe LRU cache of per-run tile precalculations.
#[derive(Debug)]
pub struct PrecalcCache {
    inner: Mutex<BTreeMap<CacheKey, CacheEntry>>,
    inflight: Mutex<BTreeMap<(CacheKey, usize), Arc<Flight>>>,
    budget_bytes: u64,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    single_flight_waits: AtomicU64,
}

impl PrecalcCache {
    /// A cache bounded by `budget_bytes` of precalc payload.
    pub fn new(budget_bytes: u64) -> PrecalcCache {
        PrecalcCache {
            inner: Mutex::new(BTreeMap::new()),
            inflight: Mutex::new(BTreeMap::new()),
            budget_bytes,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            single_flight_waits: AtomicU64::new(0),
        }
    }

    /// Look up one tile's precalc, touching LRU state and counting a hit
    /// or miss.
    pub fn lookup(&self, key: &CacheKey, tile_index: usize) -> Option<Arc<TilePrecalc>> {
        let found = self.peek(key, tile_index);
        match &found {
            // relaxed-ok: hit/miss tallies are reported, never ordered
            // against the cached data (the map mutex orders that).
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed), // relaxed-ok: same
        };
        found
    }

    /// [`PrecalcCache::lookup`] without hit/miss accounting (still touches
    /// LRU recency) — the single-flight path does its own counting so a
    /// coalesced miss is recorded exactly once.
    fn peek(&self, key: &CacheKey, tile_index: usize) -> Option<Arc<TilePrecalc>> {
        // relaxed-ok: the clock only needs unique monotone stamps for LRU
        // recency; it orders no other data.
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = sync::lock(&self.inner);
        map.get_mut(key).and_then(|entry| {
            entry.last_used = stamp;
            entry.tiles.get(&tile_index).cloned()
        })
    }

    /// Single-flight fetch: return the cached precalc for `(key,
    /// tile_index)` or compute it exactly once, no matter how many threads
    /// miss concurrently. The first thread to miss (the *leader*) runs
    /// `compute`, stores the result, and records one miss; every
    /// concurrent caller (a *follower*) blocks until the result is
    /// published and records a hit. Returns the precalc and whether this
    /// caller was served without computing (`true`) or computed it itself
    /// (`false`).
    ///
    /// If the leader panics, the flight is poisoned and a waiting follower
    /// takes over as the new leader.
    pub fn get_or_compute(
        &self,
        key: &CacheKey,
        tile_index: usize,
        compute: &mut dyn FnMut() -> Arc<TilePrecalc>,
    ) -> (Arc<TilePrecalc>, bool) {
        loop {
            let role = {
                let mut inflight = sync::lock(&self.inflight);
                // Re-check the cache under the inflight lock so a result
                // that landed between iterations can't be missed.
                if let Some(pre) = self.peek(key, tile_index) {
                    // relaxed-ok: reporting-only tally (see lookup).
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (pre, true);
                }
                match inflight.entry((key.clone(), tile_index)) {
                    Entry::Occupied(e) => FlightRole::Follower(Arc::clone(e.get())),
                    Entry::Vacant(v) => {
                        let f = Arc::new(Flight::new());
                        v.insert(Arc::clone(&f));
                        FlightRole::Leader(f)
                    }
                }
            };
            match role {
                FlightRole::Leader(flight) => {
                    // relaxed-ok: reporting-only tally (see lookup).
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let mut guard = FlightGuard {
                        cache: self,
                        key,
                        tile_index,
                        flight: &flight,
                        publish: FlightState::Poisoned,
                    };
                    let pre = compute();
                    self.insert(key, tile_index, &pre);
                    guard.publish = FlightState::Done(Arc::clone(&pre));
                    drop(guard);
                    return (pre, false);
                }
                FlightRole::Follower(flight) => {
                    // relaxed-ok: reporting-only tally (see lookup).
                    self.single_flight_waits.fetch_add(1, Ordering::Relaxed);
                    let mut state = sync::lock(&flight.state);
                    while matches!(*state, FlightState::Pending) {
                        state = sync::wait(&flight.ready, state);
                    }
                    match &*state {
                        FlightState::Done(pre) => {
                            // relaxed-ok: reporting-only tally (see lookup).
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return (Arc::clone(pre), true);
                        }
                        // Leader panicked: loop around and try to become
                        // the new leader.
                        FlightState::Poisoned => continue,
                        // panic-ok: the wait loop above only exits once the
                        // state left Pending; this arm cannot run.
                        FlightState::Pending => unreachable!(),
                    }
                }
            }
        }
    }

    /// Insert one tile's precalc, evicting least-recently-used runs if the
    /// byte budget is exceeded (the incoming run is never evicted).
    pub fn insert(&self, key: &CacheKey, tile_index: usize, pre: &Arc<TilePrecalc>) {
        // relaxed-ok: LRU recency stamp only (see peek).
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let added = pre.approx_bytes();
        let mut map = sync::lock(&self.inner);
        let entry = map.entry(key.clone()).or_insert_with(|| CacheEntry {
            tiles: BTreeMap::new(),
            bytes: 0,
            last_used: stamp,
        });
        entry.last_used = stamp;
        if entry.tiles.insert(tile_index, Arc::clone(pre)).is_none() {
            entry.bytes += added;
        }
        // Evict whole runs, oldest first, until within budget. The map is
        // a BTreeMap, so a last_used tie always evicts the same (lowest)
        // key — eviction order is deterministic.
        while Self::total_bytes(&map) > self.budget_bytes {
            let Some(victim) = map
                .iter()
                .filter(|(k, _)| *k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break; // only the incoming run remains; keep it
            };
            map.remove(&victim);
            // relaxed-ok: reporting-only tally (see lookup).
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn total_bytes(map: &BTreeMap<CacheKey, CacheEntry>) -> u64 {
        map.values().map(|e| e.bytes).sum()
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let map = sync::lock(&self.inner);
        CacheStats {
            // relaxed-ok: point-in-time reporting reads of independent
            // tallies; slight skew between them is acceptable.
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed), // relaxed-ok: same
            evictions: self.evictions.load(Ordering::Relaxed), // relaxed-ok: same
            bytes: Self::total_bytes(&map),
            entries: map.len(),
            // relaxed-ok: same point-in-time reporting read.
            single_flight_waits: self.single_flight_waits.load(Ordering::Relaxed),
        }
    }

    /// Drop every entry.
    pub fn clear(&self) {
        sync::lock(&self.inner).clear();
    }

    /// A [`PrecalcStore`] view of this cache scoped to one run's key, for
    /// passing to [`mdmp_core::run_with_mode_cached`].
    pub fn store_for<'a>(&'a self, key: CacheKey) -> RunStore<'a> {
        RunStore { cache: self, key }
    }
}

/// A per-run adapter binding the shared cache to one [`CacheKey`].
pub struct RunStore<'a> {
    cache: &'a PrecalcCache,
    key: CacheKey,
}

impl PrecalcStore for RunStore<'_> {
    fn lookup(&self, tile_index: usize) -> Option<Arc<TilePrecalc>> {
        self.cache.lookup(&self.key, tile_index)
    }

    fn store(&self, tile_index: usize, pre: &Arc<TilePrecalc>) {
        self.cache.insert(&self.key, tile_index, pre);
    }

    /// Route through the cache's single-flight path: concurrent misses on
    /// the same tile — whether from one run's workers or two runs over the
    /// same series — compute once and record exactly one miss.
    fn fetch_or_compute(
        &self,
        tile_index: usize,
        compute: &mut dyn FnMut() -> Arc<TilePrecalc>,
    ) -> (Arc<TilePrecalc>, bool) {
        self.cache.get_or_compute(&self.key, tile_index, compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdmp_core::{compute_tile_precalc, MdmpConfig, Tile};

    fn series(seed: u64, d: usize, len: usize) -> MultiDimSeries {
        let dims = (0..d)
            .map(|k| {
                (0..len)
                    .map(|t| ((t + k) as f64 * 0.21 + seed as f64).sin())
                    .collect()
            })
            .collect();
        MultiDimSeries::from_dims(dims)
    }

    fn sample_precalc(len: usize) -> Arc<TilePrecalc> {
        let r = series(1, 1, len);
        let q = series(2, 1, len);
        let tile = Tile {
            index: 0,
            row0: 0,
            rows: len - 7,
            col0: 0,
            cols: len - 7,
        };
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
        Arc::new(compute_tile_precalc::<f64>(&r, &q, &tile, &cfg, false))
    }

    #[test]
    fn fingerprint_distinguishes_series() {
        let a = series(1, 2, 64);
        let b = series(2, 2, 64);
        assert_ne!(series_fingerprint(&a), series_fingerprint(&b));
        assert_eq!(series_fingerprint(&a), series_fingerprint(&a.clone()));
    }

    #[test]
    fn shared_precalc_format_shares_keys() {
        let r = series(1, 2, 64);
        let q = series(2, 2, 64);
        // FP32 and Mixed both precalculate in FP32 without Kahan.
        let k32 = CacheKey::for_job(&r, &q, 8, PrecisionMode::Fp32, 4);
        let kmx = CacheKey::for_job(&r, &q, 8, PrecisionMode::Mixed, 4);
        assert_eq!(k32, kmx);
        // FP16 and FP16C differ in the Kahan flag.
        let k16 = CacheKey::for_job(&r, &q, 8, PrecisionMode::Fp16, 4);
        let k16c = CacheKey::for_job(&r, &q, 8, PrecisionMode::Fp16c, 4);
        assert_ne!(k16, k16c);
    }

    #[test]
    fn lookup_miss_then_hit() {
        let cache = PrecalcCache::new(u64::MAX);
        let r = series(1, 1, 64);
        let q = series(2, 1, 64);
        let key = CacheKey::for_job(&r, &q, 8, PrecisionMode::Fp64, 1);
        assert!(cache.lookup(&key, 0).is_none());
        let pre = sample_precalc(64);
        cache.insert(&key, 0, &pre);
        assert!(cache.lookup(&key, 0).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(stats.bytes > 0);
    }

    #[test]
    fn lru_eviction_under_byte_budget() {
        let pre = sample_precalc(64);
        let budget = pre.approx_bytes() * 2 + 1;
        let cache = PrecalcCache::new(budget);
        let r = series(1, 1, 64);
        let mk = |seed| {
            let q = series(seed, 1, 64);
            CacheKey::for_job(&r, &q, 8, PrecisionMode::Fp64, 1)
        };
        let (k1, k2, k3) = (mk(10), mk(20), mk(30));
        cache.insert(&k1, 0, &pre);
        cache.insert(&k2, 0, &pre);
        // Touch k1 so k2 is the LRU when k3 arrives.
        assert!(cache.lookup(&k1, 0).is_some());
        cache.insert(&k3, 0, &pre);
        assert!(cache.lookup(&k1, 0).is_some(), "recently used survives");
        assert!(cache.lookup(&k2, 0).is_none(), "LRU run evicted");
        assert!(cache.lookup(&k3, 0).is_some(), "incoming run kept");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn concurrent_misses_compute_once_and_record_one_miss() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;

        let cache = PrecalcCache::new(u64::MAX);
        let r = series(1, 1, 64);
        let q = series(2, 1, 64);
        let key = CacheKey::for_job(&r, &q, 8, PrecisionMode::Fp64, 1);
        let computes = AtomicUsize::new(0);
        let n_threads = 4;
        let barrier = Barrier::new(n_threads);

        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n_threads)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        let mut compute = || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough for the
                            // other threads to become followers.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            sample_precalc(64)
                        };
                        cache.get_or_compute(&key, 0, &mut compute)
                    })
                })
                .collect();
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let leaders = results.iter().filter(|(_, cached)| !cached).count();
            assert_eq!(leaders, 1, "exactly one thread computes");
            // All threads got the same block.
            for (pre, _) in &results[1..] {
                assert!(Arc::ptr_eq(pre, &results[0].0));
            }
        });

        assert_eq!(computes.load(Ordering::SeqCst), 1, "single-flight");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "coalesced misses count once");
        assert_eq!(stats.hits as usize, n_threads - 1);
    }

    #[test]
    fn poisoned_flight_elects_new_leader() {
        use std::sync::atomic::AtomicUsize;

        let cache = Arc::new(PrecalcCache::new(u64::MAX));
        let r = series(1, 1, 64);
        let q = series(2, 1, 64);
        let key = CacheKey::for_job(&r, &q, 8, PrecisionMode::Fp64, 1);

        // Leader panics mid-compute.
        {
            let cache = Arc::clone(&cache);
            let key = key.clone();
            let _ = std::thread::spawn(move || {
                let mut compute = || -> Arc<TilePrecalc> { panic!("simulated leader crash") };
                cache.get_or_compute(&key, 0, &mut compute)
            })
            .join();
        }

        // The flight must be retired, not wedged: the next caller becomes
        // a fresh leader and computes.
        let computes = AtomicUsize::new(0);
        let mut compute = || {
            computes.fetch_add(1, Ordering::SeqCst);
            sample_precalc(64)
        };
        let (_, cached) = cache.get_or_compute(&key, 0, &mut compute);
        assert!(!cached, "new leader computes after poison");
        assert_eq!(computes.load(Ordering::SeqCst), 1);
    }
}

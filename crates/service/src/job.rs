//! Job model: what a client submits, the lifecycle a job moves through,
//! and the status snapshots the service reports back.

use mdmp_core::{MatrixProfile, MdmpConfig};
use mdmp_data::synthetic::{Pattern, SyntheticConfig};
use mdmp_data::MultiDimSeries;
use mdmp_faults::FaultPlan;
use mdmp_precision::PrecisionMode;
use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

/// Job identifier (monotone, assigned at submission).
pub type JobId = u64;

/// Scheduling priority: higher classes drain first, FIFO within a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Served before everything else.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Served only when nothing else waits.
    Low,
}

impl Priority {
    /// All classes in drain order.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

impl FromStr for Priority {
    type Err = String;

    fn from_str(s: &str) -> Result<Priority, String> {
        match s.to_ascii_lowercase().as_str() {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!("unknown priority '{other}' (high, normal, low)")),
        }
    }
}

/// Where a job's input series come from.
#[derive(Debug, Clone)]
pub enum JobInput {
    /// Generate a synthetic reference/query pair on the server.
    Synthetic {
        /// Number of segments.
        n: usize,
        /// Dimensionality.
        d: usize,
        /// Embedded pattern index into [`Pattern::ALL`].
        pattern: usize,
        /// Background noise amplitude.
        noise: f64,
        /// Generator seed — part of the cache identity.
        seed: u64,
    },
    /// Read CSV series from the server's filesystem.
    Csv {
        /// Reference series path.
        reference: PathBuf,
        /// Query series path; `None` means self-join.
        query: Option<PathBuf>,
    },
    /// Series already in memory (in-process submissions only).
    InMemory {
        /// Reference series.
        reference: Arc<MultiDimSeries>,
        /// Query series.
        query: Arc<MultiDimSeries>,
    },
}

/// A full job description.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Input series source.
    pub input: JobInput,
    /// Segment length `m`.
    pub m: usize,
    /// Precision mode.
    pub mode: PrecisionMode,
    /// Tile count.
    pub tiles: usize,
    /// Devices to lease for this job.
    pub gpus: usize,
    /// Scheduling priority.
    pub priority: Priority,
    /// Additional attempts after a failed run.
    pub max_retries: u32,
    /// Fault injection plan for this job (chaos testing); `None` injects
    /// nothing.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Per-tile retry budget inside a run (see
    /// [`MdmpConfig::with_tile_retries`]).
    pub tile_retries: u32,
    /// Force the fused row pipeline on or off for this job; `None` uses
    /// the auto default (env `MDMP_FUSED_ROWS`, else on).
    pub fused_rows: Option<bool>,
    /// MMA accumulator chunk width for the tensor-core modes (4, 8 or 16);
    /// `None` uses the auto default (env `MDMP_TC_CHUNK_K`, else the input
    /// format's hardware shape). Ignored by the vector modes.
    pub tc_chunk_k: Option<usize>,
    /// Per-kernel deadline in milliseconds; `None` disables it.
    pub tile_deadline_ms: Option<u64>,
    /// Whole-job deadline in milliseconds: once exceeded, the scheduler
    /// stops retrying and fails the job. `None` disables it.
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// A job over in-memory series with defaults (1 tile, 1 GPU, normal
    /// priority, no retries).
    pub fn in_memory(
        reference: Arc<MultiDimSeries>,
        query: Arc<MultiDimSeries>,
        m: usize,
        mode: PrecisionMode,
    ) -> JobSpec {
        JobSpec {
            input: JobInput::InMemory { reference, query },
            m,
            mode,
            tiles: 1,
            gpus: 1,
            priority: Priority::Normal,
            max_retries: 0,
            fault_plan: None,
            tile_retries: 2,
            fused_rows: None,
            tc_chunk_k: None,
            tile_deadline_ms: None,
            deadline_ms: None,
        }
    }

    /// The core configuration this spec maps to.
    pub fn config(&self) -> MdmpConfig {
        MdmpConfig::new(self.m, self.mode)
            .with_tiles(self.tiles)
            .with_fault_plan(self.fault_plan.clone())
            .with_tile_retries(self.tile_retries)
            .with_fused_rows(self.fused_rows)
            .with_tc_chunk_k(self.tc_chunk_k)
            .with_tile_deadline(self.tile_deadline_ms.map(Duration::from_millis))
    }

    /// Materialize the input series (generation or file I/O happens here,
    /// on the worker, not at submission).
    pub fn materialize(&self) -> Result<(Arc<MultiDimSeries>, Arc<MultiDimSeries>), String> {
        match &self.input {
            JobInput::InMemory { reference, query } => {
                Ok((Arc::clone(reference), Arc::clone(query)))
            }
            JobInput::Synthetic {
                n,
                d,
                pattern,
                noise,
                seed,
            } => {
                if *pattern >= Pattern::ALL.len() {
                    return Err(format!("pattern index {pattern} out of range"));
                }
                let pair = mdmp_data::synthetic::generate_pair(&SyntheticConfig {
                    n_subsequences: *n,
                    dims: *d,
                    m: self.m,
                    pattern: Pattern::ALL[*pattern],
                    embeddings: 2,
                    noise: *noise,
                    pattern_amplitude: 1.0,
                    seed: *seed,
                });
                Ok((Arc::new(pair.reference), Arc::new(pair.query)))
            }
            JobInput::Csv { reference, query } => {
                let r = mdmp_data::io::read_csv(reference).map_err(|e| e.to_string())?;
                let q = match query {
                    Some(p) => mdmp_data::io::read_csv(p).map_err(|e| e.to_string())?,
                    None => r.clone(),
                };
                Ok((Arc::new(r), Arc::new(q)))
            }
        }
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished successfully.
    Done,
    /// Exhausted its retries.
    Failed,
    /// Cancelled before it ran.
    Cancelled,
}

impl JobState {
    /// Terminal states never change again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The result of a successfully finished job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The computed matrix profile.
    pub profile: Arc<MatrixProfile>,
    /// Modelled GPU seconds (makespan + merge).
    pub modeled_seconds: f64,
    /// Host wall seconds of the functional execution.
    pub wall_seconds: f64,
    /// Tiles whose precalculation came from the cache.
    pub precalc_hits: usize,
    /// Tiles whose precalculation was computed.
    pub precalc_misses: usize,
}

/// A status snapshot of one job, safe to ship over the wire.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id.
    pub id: JobId,
    /// Lifecycle state at snapshot time.
    pub state: JobState,
    /// Scheduling priority.
    pub priority: Priority,
    /// Execution attempts so far (1 = first run).
    pub attempts: u32,
    /// Seconds spent queued (until start, or until now if still queued).
    pub queue_seconds: f64,
    /// Seconds spent running, if started.
    pub run_seconds: Option<f64>,
    /// Failure message, if failed.
    pub error: Option<String>,
    /// Successful outcome, if done.
    pub outcome: Option<JobOutcome>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_parses_and_orders() {
        assert_eq!("high".parse::<Priority>().unwrap(), Priority::High);
        assert!("urgent".parse::<Priority>().is_err());
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
    }

    #[test]
    fn synthetic_materialization_is_deterministic() {
        let spec = JobSpec {
            input: JobInput::Synthetic {
                n: 64,
                d: 2,
                pattern: 0,
                noise: 0.2,
                seed: 9,
            },
            m: 8,
            mode: PrecisionMode::Fp32,
            tiles: 1,
            gpus: 1,
            priority: Priority::Normal,
            max_retries: 0,
            fault_plan: None,
            tile_retries: 2,
            fused_rows: None,
            tc_chunk_k: None,
            tile_deadline_ms: None,
            deadline_ms: None,
        };
        let (r1, q1) = spec.materialize().unwrap();
        let (r2, q2) = spec.materialize().unwrap();
        assert_eq!(r1.dim(0), r2.dim(0));
        assert_eq!(q1.dim(1), q2.dim(1));
    }

    #[test]
    fn terminal_states() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
    }
}

//! Streaming sessions: long-lived [`StreamingProfile`]s owned by the
//! service, fed by append requests. Each session wraps
//! [`mdmp_core::streaming`] — FP64 sessions therefore match the batch
//! result exactly no matter how arrivals are chunked.

use crate::sync;
use mdmp_core::{MatrixProfile, MdmpConfig, StreamingProfile};
use mdmp_data::MultiDimSeries;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Session identifier.
pub type SessionId = u64;

/// Which series an append extends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendSide {
    /// Extend the query series (adds profile columns).
    Query,
    /// Extend the reference series (can improve every column).
    Reference,
}

impl std::str::FromStr for AppendSide {
    type Err = String;

    fn from_str(s: &str) -> Result<AppendSide, String> {
        match s.to_ascii_lowercase().as_str() {
            "query" => Ok(AppendSide::Query),
            "reference" => Ok(AppendSide::Reference),
            other => Err(format!("unknown side '{other}' (query, reference)")),
        }
    }
}

/// A shape snapshot of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSummary {
    /// Session id.
    pub id: SessionId,
    /// Profile columns (query segments).
    pub n_query: usize,
    /// Reference segments.
    pub n_reference: usize,
    /// Dimensionality.
    pub dims: usize,
}

/// The service's open streaming sessions.
#[derive(Debug, Default)]
pub struct SessionManager {
    next_id: AtomicU64,
    sessions: Mutex<BTreeMap<SessionId, StreamingProfile>>,
}

impl SessionManager {
    /// An empty manager.
    pub fn new() -> SessionManager {
        SessionManager::default()
    }

    /// Open a session over initial series; the first batch is computed
    /// immediately.
    pub fn open(
        &self,
        reference: MultiDimSeries,
        query: MultiDimSeries,
        cfg: MdmpConfig,
    ) -> Result<SessionSummary, String> {
        let sp = StreamingProfile::new(reference, query, cfg).map_err(|e| e.to_string())?;
        // relaxed-ok: id allocation only needs uniqueness; the table
        // insert below is ordered by its mutex.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let summary = SessionSummary {
            id,
            n_query: sp.n_query(),
            n_reference: sp.n_reference(),
            dims: sp.profile().dims(),
        };
        sync::lock(&self.sessions).insert(id, sp);
        Ok(summary)
    }

    /// Append per-dimension samples to one side of a session.
    pub fn append(
        &self,
        id: SessionId,
        side: AppendSide,
        samples: &[Vec<f64>],
    ) -> Result<SessionSummary, String> {
        let mut sessions = sync::lock(&self.sessions);
        let sp = sessions
            .get_mut(&id)
            .ok_or_else(|| format!("unknown session {id}"))?;
        if samples.len() != sp.profile().dims() {
            return Err(format!(
                "append carries {} dimensions, session has {}",
                samples.len(),
                sp.profile().dims()
            ));
        }
        match side {
            AppendSide::Query => sp.append_query(samples),
            AppendSide::Reference => sp.append_reference(samples),
        }
        Ok(SessionSummary {
            id,
            n_query: sp.n_query(),
            n_reference: sp.n_reference(),
            dims: sp.profile().dims(),
        })
    }

    /// The session's current profile (cloned snapshot).
    pub fn profile(&self, id: SessionId) -> Option<MatrixProfile> {
        sync::lock(&self.sessions)
            .get(&id)
            .map(|sp| sp.profile().clone())
    }

    /// The session's shape.
    pub fn summary(&self, id: SessionId) -> Option<SessionSummary> {
        sync::lock(&self.sessions)
            .get(&id)
            .map(|sp| SessionSummary {
                id,
                n_query: sp.n_query(),
                n_reference: sp.n_reference(),
                dims: sp.profile().dims(),
            })
    }

    /// Close a session; returns whether it existed.
    pub fn close(&self, id: SessionId) -> bool {
        sync::lock(&self.sessions).remove(&id).is_some()
    }

    /// Open sessions right now.
    pub fn len(&self) -> usize {
        sync::lock(&self.sessions).len()
    }

    /// Whether no session is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdmp_precision::PrecisionMode;

    fn wave(offset: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| ((t + offset) as f64 * 0.31).sin() + 0.01 * (t + offset) as f64)
            .collect()
    }

    #[test]
    fn open_append_close_lifecycle() {
        let mgr = SessionManager::new();
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
        let s = mgr
            .open(
                MultiDimSeries::univariate(wave(0, 96)),
                MultiDimSeries::univariate(wave(30, 64)),
                cfg,
            )
            .unwrap();
        assert_eq!(s.n_query, 57);
        let s2 = mgr
            .append(s.id, AppendSide::Query, &[wave(94, 16)])
            .unwrap();
        assert_eq!(s2.n_query, 57 + 16);
        let s3 = mgr
            .append(s.id, AppendSide::Reference, &[wave(200, 12)])
            .unwrap();
        assert_eq!(s3.n_reference, s.n_reference + 12);
        assert!(mgr.profile(s.id).is_some());
        assert!(mgr.close(s.id));
        assert!(!mgr.close(s.id));
        assert!(mgr.is_empty());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mgr = SessionManager::new();
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
        let s = mgr
            .open(
                MultiDimSeries::univariate(wave(0, 64)),
                MultiDimSeries::univariate(wave(9, 64)),
                cfg,
            )
            .unwrap();
        let err = mgr
            .append(s.id, AppendSide::Query, &[wave(0, 8), wave(1, 8)])
            .unwrap_err();
        assert!(err.contains("dimensions"));
        assert!(mgr.append(999, AppendSide::Query, &[wave(0, 8)]).is_err());
    }
}
